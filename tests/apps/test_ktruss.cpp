#include "apps/ktruss.hpp"

#include <gtest/gtest.h>

#include "framework/runner.hpp"
#include "graph/builder.hpp"
#include "gen/rmat.hpp"

namespace tcgpu::apps {
namespace {

KTrussResult decompose(const graph::Coo& coo) {
  const auto pg = tcgpu::framework::prepare_graph("kt", coo);
  return ktruss_decompose(pg.dag, simt::GpuSpec::v100());
}

graph::Coo complete(graph::VertexId n) {
  graph::Coo g;
  g.num_vertices = n;
  for (graph::VertexId i = 0; i < n; ++i) {
    for (graph::VertexId j = i + 1; j < n; ++j) g.edges.push_back({i, j});
  }
  return g;
}

TEST(KTruss, CompleteGraphIsAnNTruss) {
  const auto r = decompose(complete(6));
  EXPECT_EQ(r.max_k, 6u);
  for (const auto t : r.trussness) EXPECT_EQ(t, 6u);
}

TEST(KTruss, TriangleFreeGraphPeaksAtTwo) {
  graph::Coo path;
  path.num_vertices = 30;
  for (graph::VertexId i = 0; i + 1 < 30; ++i) path.edges.push_back({i, i + 1});
  const auto r = decompose(path);
  EXPECT_EQ(r.max_k, 2u);
  for (const auto t : r.trussness) EXPECT_EQ(t, 2u);
}

TEST(KTruss, SingleTriangleIsAThreeTruss) {
  graph::Coo tri;
  tri.num_vertices = 3;
  tri.edges = {{0, 1}, {1, 2}, {0, 2}};
  const auto r = decompose(tri);
  EXPECT_EQ(r.max_k, 3u);
  for (const auto t : r.trussness) EXPECT_EQ(t, 3u);
}

TEST(KTruss, TriangleWithPendantEdge) {
  graph::Coo g;
  g.num_vertices = 4;
  g.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  const auto r = decompose(g);
  EXPECT_EQ(r.max_k, 3u);
  int twos = 0, threes = 0;
  for (const auto t : r.trussness) {
    twos += t == 2;
    threes += t == 3;
  }
  EXPECT_EQ(twos, 1);    // the pendant edge
  EXPECT_EQ(threes, 3);  // the triangle
}

TEST(KTruss, K5PlusWeakTriangleSeparatesLevels) {
  // K5 (a 5-truss) plus a disjoint triangle (a 3-truss).
  graph::Coo g = complete(5);
  g.num_vertices = 8;
  g.edges.push_back({5, 6});
  g.edges.push_back({6, 7});
  g.edges.push_back({5, 7});
  const auto r = decompose(g);
  EXPECT_EQ(r.max_k, 5u);
  int fives = 0, threes = 0;
  for (const auto t : r.trussness) {
    fives += t == 5;
    threes += t == 3;
  }
  EXPECT_EQ(fives, 10);
  EXPECT_EQ(threes, 3);
}

TEST(KTruss, TrussnessIsMonotoneUnderKQuery) {
  gen::RmatParams p;
  p.scale = 9;
  p.edges = 3000;
  const auto pg = tcgpu::framework::prepare_graph("kt", gen::generate_rmat(p, 6));
  const auto r = ktruss_decompose(pg.dag, simt::GpuSpec::v100());
  EXPECT_GE(r.max_k, 3u);  // RMAT graphs have triangles
  std::size_t prev = r.trussness.size() + 1;
  for (std::uint32_t k = 2; k <= r.max_k + 1; ++k) {
    const auto edges = ktruss_edges(r, k);
    EXPECT_LE(edges.size(), prev);
    prev = edges.size();
  }
  EXPECT_EQ(ktruss_edges(r, 2).size(), pg.dag.num_edges());
  EXPECT_TRUE(ktruss_edges(r, r.max_k + 1).empty());
}

TEST(KTruss, KTrussEdgesSatisfySupportInvariant) {
  // Every edge of the k-truss closes >= k-2 triangles inside the k-truss.
  gen::RmatParams p;
  p.scale = 9;
  p.edges = 2500;
  const auto pg = tcgpu::framework::prepare_graph("kt", gen::generate_rmat(p, 8));
  const auto r = ktruss_decompose(pg.dag, simt::GpuSpec::v100());
  const std::uint32_t k = r.max_k;
  const auto keep = ktruss_edges(r, k);
  ASSERT_FALSE(keep.empty());
  // Rebuild the k-truss subgraph and check supports on the CPU.
  std::vector<graph::Edge> edges;
  {
    std::uint32_t e = 0;
    std::vector<bool> in(pg.dag.num_edges(), false);
    for (const auto id : keep) in[id] = true;
    for (graph::VertexId u = 0; u < pg.dag.num_vertices(); ++u) {
      for (const graph::VertexId v : pg.dag.neighbors(u)) {
        if (in[e]) edges.emplace_back(u, v);
        ++e;
      }
    }
  }
  const auto sub = graph::build_directed_csr(pg.dag.num_vertices(), edges);
  for (graph::VertexId u = 0; u < sub.num_vertices(); ++u) {
    for (const graph::VertexId v : sub.neighbors(u)) {
      // Support of (u,v) inside the subgraph, over all three triangle roles.
      std::uint32_t support = 0;
      for (graph::VertexId w = 0; w < sub.num_vertices(); ++w) {
        const bool uw = w > u ? sub.has_edge(u, w) : sub.has_edge(w, u);
        const bool vw = w > v ? sub.has_edge(v, w) : sub.has_edge(w, v);
        if (w != u && w != v && uw && vw) ++support;
      }
      EXPECT_GE(support + 2, k) << u << "-" << v;
    }
  }
}

}  // namespace
}  // namespace tcgpu::apps
