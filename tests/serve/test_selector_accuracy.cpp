// Selector-accuracy regression gate (slow): runs the twelve-kernel
// selection pool x dataset grid at the default edge cap and asserts the
// shipped cost model keeps routing near-optimal — the chosen kernel's
// measured time within 10% of the per-graph best on at least 17 of the 19
// pinned datasets, with the paper's GroupTC/TRUST small-vs-large crossover
// reproduced. If a kernel or simulator change shifts the landscape, rerun
// bench/selector_fit and refresh Selector::default_models().
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "framework/engine.hpp"
#include "serve/selector.hpp"

namespace tcgpu::serve {
namespace {

struct Grid {
  std::vector<framework::SweepRow> rows;
  Selector selector;

  Grid()
      : selector(Selector::Config{simt::GpuSpec::v100(), /*refine=*/false}) {
    framework::Engine::Config cfg;  // defaults = the pinned suite
    framework::Engine engine(cfg);
    std::ostringstream progress;
    rows = engine.sweep(framework::pool_algorithms(), progress);
    EXPECT_TRUE(engine.all_valid());
  }

  double measured(const framework::SweepRow& row, const std::string& algo) const {
    for (const auto& out : row.outcomes) {
      if (out.algorithm == algo) return out.result.total.time_ms;
    }
    ADD_FAILURE() << algo << " missing from sweep";
    return 0.0;
  }

  double best(const framework::SweepRow& row) const {
    double t = row.outcomes.front().result.total.time_ms;
    for (const auto& out : row.outcomes) t = std::min(t, out.result.total.time_ms);
    return t;
  }
};

const Grid& grid() {
  static Grid g;  // one sweep shared by every case in this binary
  return g;
}

TEST(SelectorAccuracy, PicksWithinTenPercentOfBestOnMostOfTheSuite) {
  const auto& g = grid();
  ASSERT_EQ(g.rows.size(), 19u);
  std::size_t within = 0;
  std::string misses;
  for (const auto& row : g.rows) {
    const auto pick = g.selector.choose(row.graph->stats);
    const double ratio = g.measured(row, pick.algorithm) / g.best(row);
    if (ratio <= 1.10) {
      ++within;
    } else {
      misses += " " + row.graph->name + "(" + pick.algorithm + ")";
    }
  }
  // >= 17 of 19 datasets over the enlarged pool; misses listed for the log.
  EXPECT_GE(within, 17u) << "near-optimal on only " << within
                         << "/19; misses:" << misses;
}

TEST(SelectorAccuracy, ChosenKernelAlwaysValidatesAndNeverDisastrous) {
  const auto& g = grid();
  for (const auto& row : g.rows) {
    const auto pick = g.selector.choose(row.graph->stats);
    for (const auto& out : row.outcomes) {
      if (out.algorithm == pick.algorithm) {
        EXPECT_TRUE(out.valid);
      }
    }
    // Even a miss must not route to a pathological kernel.
    EXPECT_LE(g.measured(row, pick.algorithm) / g.best(row), 1.5)
        << row.graph->name;
  }
}

TEST(SelectorAccuracy, GroupTcTrustCrossoverMatchesMeasurement) {
  const auto& g = grid();
  auto modeled = [&](const framework::SweepRow& row, const char* algo) {
    for (const auto& c : g.selector.score(row.graph->stats)) {
      if (c.algorithm == algo) return c.cost.modeled_ms;
    }
    ADD_FAILURE() << algo << " not scored";
    return 0.0;
  };
  const framework::SweepRow* small = nullptr;
  const framework::SweepRow* large = nullptr;
  for (const auto& row : g.rows) {
    if (row.graph->name == "As-Caida") small = &row;
    if (row.graph->name == "Web-BerkStan") large = &row;
  }
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  // Measured: GroupTC wins the small graph, TRUST the large one...
  EXPECT_LT(g.measured(*small, "GroupTC"), g.measured(*small, "TRUST"));
  EXPECT_LT(g.measured(*large, "TRUST"), g.measured(*large, "GroupTC"));
  // ...and the a-priori model reproduces both sides of the crossover.
  EXPECT_LT(modeled(*small, "GroupTC"), modeled(*small, "TRUST"));
  EXPECT_LT(modeled(*large, "TRUST"), modeled(*large, "GroupTC"));
}

TEST(SelectorAccuracy, CanonicalPicksArePinned) {
  // The three routing decisions CI pins in the serve smoke job. If these
  // move after an intentional model refresh, update .github/workflows/ci.yml
  // and the README table alongside this test.
  const std::map<std::string, std::string> pinned = {
      {"As-Caida", "Polak"},   // small, low degree: single-kernel merge
      {"Soc-Pokec", "BSR"},    // mid-size: compressed rows beat TRUST's hash
      {"Com-Orkut", "BSR"},    // densest: 32x row compression dominates
  };
  const auto& g = grid();
  for (const auto& row : g.rows) {
    const auto it = pinned.find(row.graph->name);
    if (it == pinned.end()) continue;
    EXPECT_EQ(g.selector.choose(row.graph->stats).algorithm, it->second)
        << row.graph->name;
  }
}

}  // namespace
}  // namespace tcgpu::serve
