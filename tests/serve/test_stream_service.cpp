// Serve-layer streaming integration: mutations ride the same admission
// queue as count queries, bump the dataset version, and invalidate every
// stale layer (engine cache, pooled device image, selector refinement,
// sticky picks). Count queries answer against the current snapshot.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tcgpu::serve {
namespace {

framework::Engine::Config small_engine() {
  framework::Engine::Config cfg;
  cfg.max_edges = 2'000;
  cfg.seed = 42;
  return cfg;
}

QueryRequest count_query(std::string name) {
  QueryRequest req;
  req.dataset = std::move(name);
  return req;
}

/// A mutation guaranteed to be effective: an edge between two fresh
/// vertices (the graph grows, the version must bump).
QueryRequest growing_mutation(framework::Engine& engine,
                              const std::string& name) {
  const auto v = engine.prepare(name)->stats.num_vertices;
  QueryRequest req;
  req.dataset = name;
  req.insert_edges = {{v, v + 1}};
  return req;
}

TEST(StreamService, MutationReplyCarriesVersionAndExactDelta) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  const auto before = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(before.status, QueryStatus::kOk);
  EXPECT_EQ(before.version, 0u);

  QueryRequest mutate;
  mutate.dataset = "As-Caida";
  mutate.insert_edges = {{1, 2}, {2, 3}, {1, 3}};
  const auto delta = service.submit(std::move(mutate)).get();
  ASSERT_EQ(delta.status, QueryStatus::kOk);
  EXPECT_EQ(delta.algorithm, "stream-delta");
  EXPECT_TRUE(delta.valid);
  EXPECT_EQ(delta.triangles,
            before.triangles + static_cast<std::uint64_t>(delta.delta_triangles));

  // The post-mutation count runs a full kernel against the materialized
  // snapshot and must agree with the maintained count.
  const auto after = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(after.status, QueryStatus::kOk);
  EXPECT_TRUE(after.valid);
  EXPECT_EQ(after.version, delta.version);
  EXPECT_EQ(after.triangles, delta.triangles);

  const auto c = service.counters();
  EXPECT_EQ(c.mutations, 1u);
  EXPECT_GE(c.stream_queries, 1u);
}

TEST(StreamService, NoOpMutationKeepsTheVersion) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  QueryRequest mutate;
  mutate.dataset = "As-Caida";
  mutate.insert_edges = {{7, 7}};  // self-loop: normalized away
  const auto reply = service.submit(std::move(mutate)).get();
  ASSERT_EQ(reply.status, QueryStatus::kOk);
  EXPECT_EQ(reply.version, 0u);
  EXPECT_EQ(reply.delta_triangles, 0);
  EXPECT_EQ(service.dataset_version("As-Caida"), 0u);
}

TEST(StreamService, VersionBumpInvalidatesEveryStaleLayer) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  // Warmup: latches a v0 pick and folds one refinement observation.
  ASSERT_EQ(service.submit(count_query("As-Caida")).get().status,
            QueryStatus::kOk);
  EXPECT_GE(service.selector().observations(), 1u);
  EXPECT_EQ(engine.resident_graphs(), 1u);
  auto table = service.decision_table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].first, "As-Caida");  // version-0 entries print bare

  const auto mut =
      service.submit(growing_mutation(engine, "As-Caida")).get();
  ASSERT_EQ(mut.status, QueryStatus::kOk);
  ASSERT_EQ(mut.version, 1u);
  EXPECT_EQ(service.dataset_version("As-Caida"), 1u);

  // The pre-mutation layers are all gone: cached prepares, refinement
  // ratios for the old stats, and the v0 sticky pick.
  EXPECT_EQ(engine.resident_graphs(), 0u);
  EXPECT_EQ(service.selector().observations(), 0u);
  EXPECT_TRUE(service.decision_table().empty());

  // The next count re-scores and re-latches at v1.
  const auto recount = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(recount.status, QueryStatus::kOk);
  EXPECT_EQ(recount.version, 1u);
  EXPECT_TRUE(recount.valid);
  table = service.decision_table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].first, "As-Caida@v1");
  // Streamed answers never re-ran the prepare pipeline: the engine cache
  // stayed empty (the snapshot is materialized service-side).
  EXPECT_EQ(engine.resident_graphs(), 0u);
}

TEST(StreamService, MutationsRequireANamedDataset) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  QueryRequest req;
  req.name = "inline-mut";
  req.edges.num_vertices = 4;
  req.edges.edges = {{0, 1}, {1, 2}};
  req.insert_edges = {{0, 2}};
  const auto reply = service.submit(std::move(req)).get();
  EXPECT_EQ(reply.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(reply.error.find("named dataset"), std::string::npos);

  // Unknown datasets fail with the registry's error, like count queries.
  QueryRequest unknown;
  unknown.dataset = "No-Such-Graph";
  unknown.insert_edges = {{0, 1}};
  const auto bad = service.submit(std::move(unknown)).get();
  EXPECT_EQ(bad.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(bad.error.find("No-Such-Graph"), std::string::npos);
}

TEST(StreamService, MixedBatchAppliesInSubmissionOrder) {
  framework::Engine engine(small_engine());
  QueryService::Config cfg;
  cfg.workers = 1;  // one worker => same-key requests fuse into one batch
  QueryService service(engine, cfg);

  const auto v = engine.prepare("Wiki-Talk")->stats.num_vertices;
  std::vector<std::future<QueryReply>> futures;
  futures.push_back(service.submit(count_query("Wiki-Talk")));
  QueryRequest grow;
  grow.dataset = "Wiki-Talk";
  grow.insert_edges = {{v, v + 1}};
  futures.push_back(service.submit(std::move(grow)));
  futures.push_back(service.submit(count_query("Wiki-Talk")));

  std::vector<QueryReply> replies;
  for (auto& f : futures) replies.push_back(f.get());
  for (const auto& r : replies) ASSERT_EQ(r.status, QueryStatus::kOk);
  // Replies resolve in submission order within the batch; the trailing
  // count sees the mutation's version whenever they fused.
  EXPECT_EQ(replies[1].algorithm, "stream-delta");
  EXPECT_EQ(replies[2].version, replies[1].version);
  EXPECT_EQ(replies[2].triangles, replies[1].triangles);
  EXPECT_TRUE(replies[2].valid);
}

TEST(StreamServicePinned, VersionPinnedQueryTimeTravels) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  const auto v0 = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(v0.status, QueryStatus::kOk);
  ASSERT_EQ(service.submit(growing_mutation(engine, "As-Caida")).get().status,
            QueryStatus::kOk);
  QueryRequest close;
  close.dataset = "As-Caida";
  close.insert_edges = {{1, 2}, {2, 3}, {1, 3}};
  const auto v2 = service.submit(std::move(close)).get();
  ASSERT_EQ(v2.status, QueryStatus::kOk);
  ASSERT_EQ(v2.version, 2u);

  // Head answers at v2; a pinned read answers against the retained v1
  // snapshot — exact, validated, and labeled with the pinned version.
  auto pinned = count_query("As-Caida");
  pinned.version = 1;
  const auto old = service.submit(std::move(pinned)).get();
  ASSERT_EQ(old.status, QueryStatus::kOk);
  EXPECT_EQ(old.version, 1u);
  EXPECT_TRUE(old.valid);
  EXPECT_EQ(old.triangles, v0.triangles);  // the growth insert closed nothing

  const auto head = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(head.status, QueryStatus::kOk);
  EXPECT_EQ(head.version, 2u);
  EXPECT_EQ(head.triangles, v2.triangles);

  // Pinned picks latch under their own version label.
  bool saw_pinned = false;
  for (const auto& [key, algo] : service.decision_table()) {
    if (key == "As-Caida@v1") saw_pinned = true;
  }
  EXPECT_TRUE(saw_pinned);
}

TEST(StreamServicePinned, PinErrorsAreOneLiners) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  // No mutation history at all.
  auto no_history = count_query("As-Caida");
  no_history.version = 1;
  const auto a = service.submit(std::move(no_history)).get();
  EXPECT_EQ(a.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(a.error.find("no mutation history"), std::string::npos);

  // Outside the retained window (history keeps the last 4 by default).
  // Each batch inserts a distinct fresh edge so every commit is effective.
  const auto v = engine.prepare("As-Caida")->stats.num_vertices;
  for (graph::VertexId i = 0; i < 6; ++i) {
    QueryRequest grow;
    grow.dataset = "As-Caida";
    grow.insert_edges = {{v + 2 * i, v + 2 * i + 1}};
    const auto r = service.submit(std::move(grow)).get();
    ASSERT_EQ(r.status, QueryStatus::kOk);
    ASSERT_EQ(r.version, i + 1u);
  }
  auto aged_out = count_query("As-Caida");
  aged_out.version = 1;
  const auto b = service.submit(std::move(aged_out)).get();
  EXPECT_EQ(b.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(b.error.find("outside history window"), std::string::npos);

  // Pinning composes with neither mutations nor inline graphs.
  auto mut = growing_mutation(engine, "As-Caida");
  mut.version = 2;
  const auto c = service.submit(std::move(mut)).get();
  EXPECT_EQ(c.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(c.error.find("head version"), std::string::npos);

  QueryRequest inline_pin;
  inline_pin.edges.num_vertices = 3;
  inline_pin.edges.edges = {{0, 1}, {1, 2}, {0, 2}};
  inline_pin.version = 1;
  const auto d = service.submit(std::move(inline_pin)).get();
  EXPECT_EQ(d.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(d.error.find("no version history"), std::string::npos);
}

TEST(StreamServiceCommitMode, HugeBatchesRecountSmallBatchesDelta) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  // A single-op batch is firmly on the delta side of the cost model.
  const auto small = service.submit(growing_mutation(engine, "As-Caida")).get();
  ASSERT_EQ(small.status, QueryStatus::kOk);
  EXPECT_EQ(small.algorithm, "stream-delta");

  // A batch far past the crossover commits as a full recount — and the
  // maintained state stays exact either way.
  const auto before = service.submit(count_query("As-Caida")).get();
  const auto v = engine.prepare("As-Caida")->stats.num_vertices;
  QueryRequest bulk;
  bulk.dataset = "As-Caida";
  for (graph::VertexId i = 0; i < 4'000; ++i) {
    bulk.insert_edges.push_back({v + 2 + i, v + 2 + i + 1});
  }
  const auto huge = service.submit(std::move(bulk)).get();
  ASSERT_EQ(huge.status, QueryStatus::kOk);
  EXPECT_EQ(huge.algorithm, "stream-recount");
  EXPECT_EQ(huge.triangles, before.triangles);  // a path chain closes nothing

  const auto after = service.submit(count_query("As-Caida")).get();
  ASSERT_EQ(after.status, QueryStatus::kOk);
  EXPECT_TRUE(after.valid);
  EXPECT_EQ(after.triangles, huge.triangles);
}

TEST(StreamServiceCommitMode, DisabledModelAlwaysTakesTheDelta) {
  framework::Engine engine(small_engine());
  QueryService::Config cfg;
  cfg.mutation_model = false;
  QueryService service(engine, cfg);
  const auto v = engine.prepare("As-Caida")->stats.num_vertices;
  QueryRequest bulk;
  bulk.dataset = "As-Caida";
  for (graph::VertexId i = 0; i < 4'000; ++i) {
    bulk.insert_edges.push_back({v + 2 + i, v + 2 + i + 1});
  }
  const auto reply = service.submit(std::move(bulk)).get();
  ASSERT_EQ(reply.status, QueryStatus::kOk);
  EXPECT_EQ(reply.algorithm, "stream-delta");
}

}  // namespace
}  // namespace tcgpu::serve
