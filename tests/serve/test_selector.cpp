#include "serve/selector.hpp"

#include <gtest/gtest.h>

#include "framework/registry.hpp"

namespace tcgpu::serve {
namespace {

/// Stats shaped like the small end of the suite (As-Caida at the default
/// cap): low degree, mild skew.
graph::GraphStats small_stats() {
  graph::GraphStats s;
  s.num_vertices = 15'548;
  s.num_undirected_edges = 43'000;
  s.avg_out_degree = 2.77;
  s.max_out_degree = 10;
  s.sum_out_degree_sq = 140'448;
  s.out_degree_skew = 3.6;
  return s;
}

/// Stats shaped like the dense end (Web-BerkStan at the default cap).
graph::GraphStats large_stats() {
  graph::GraphStats s;
  s.num_vertices = 8'172;
  s.num_undirected_edges = 100'000;
  s.avg_out_degree = 12.24;
  s.max_out_degree = 91;
  s.sum_out_degree_sq = 3'137'952;
  s.out_degree_skew = 7.4;
  return s;
}

TEST(SelectorModels, DefaultUniverseMatchesRegistry) {
  const auto models = Selector::default_models();
  const auto& algos = framework::pool_algorithms();
  ASSERT_EQ(models.size(), algos.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_EQ(models[i].name, algos[i].name);  // same names, same order
  }
}

TEST(SelectorScore, RanksEveryAlgorithmAscending) {
  Selector sel;
  const auto ranked = sel.score(small_stats());
  ASSERT_EQ(ranked.size(), Selector::default_models().size());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].cost.modeled_ms, ranked[i].cost.modeled_ms);
  }
  for (const auto& c : ranked) {
    EXPECT_GT(c.cost.modeled_ms, 0.0);
    EXPECT_GT(c.cost.work, 0.0);
    EXPECT_GE(c.cost.launch_ms, 0.0);
  }
}

TEST(SelectorChoose, ReturnsArgminOfScore) {
  Selector sel;
  const auto ranked = sel.score(small_stats());
  const auto pick = sel.choose(small_stats());
  EXPECT_EQ(pick.algorithm, ranked.front().algorithm);
  EXPECT_DOUBLE_EQ(pick.cost.modeled_ms, ranked.front().cost.modeled_ms);
}

TEST(SelectorHints, AccuracyExcludesFragileAlgorithms) {
  Selector sel;
  for (const auto& c : sel.score(large_stats(), Hint::kAccuracy)) {
    EXPECT_NE(c.algorithm, "H-INDEX");  // the paper's mis-counting kernel
  }
  // kAuto and kLatency score the full registry.
  EXPECT_EQ(sel.score(large_stats(), Hint::kAuto).size(),
            sel.score(large_stats(), Hint::kLatency).size());
}

TEST(SelectorChoose, ThrowsWhenHintFiltersEverything) {
  std::vector<AlgoModel> only_fragile = {
      {"H-INDEX", AlgoModel::Work::kHash, 1, 0.8, 0.1, 0.0, 1.0,
       /*fragile=*/true}};
  Selector sel(only_fragile, Selector::Config{});
  EXPECT_NO_THROW(sel.choose(small_stats(), Hint::kAuto));
  EXPECT_THROW(sel.choose(small_stats(), Hint::kAccuracy), std::logic_error);
}

TEST(SelectorModel, GroupTcTrustCrossover) {
  // The paper's headline matchup: TRUST's bucketed hash has the flatter
  // work curve but degrades with table load, GroupTC's chunked binary
  // search wins the small graphs. The model must reproduce the crossover.
  Selector sel;
  auto cost_of = [&](const char* name, const graph::GraphStats& st) {
    for (const auto& c : sel.score(st)) {
      if (c.algorithm == name) return c.cost.modeled_ms;
    }
    ADD_FAILURE() << name << " not scored";
    return 0.0;
  };
  EXPECT_LT(cost_of("GroupTC", small_stats()), cost_of("TRUST", small_stats()));
  EXPECT_LT(cost_of("TRUST", large_stats()), cost_of("GroupTC", large_stats()));
}

TEST(SelectorRefine, ObservationsFoldDeterministically) {
  Selector::Config cfg;
  cfg.refine = true;
  Selector a(cfg), b(cfg);
  const auto small = small_stats();
  const auto large = large_stats();
  EXPECT_DOUBLE_EQ(a.refinement("Polak", small), 1.0);  // no data yet

  simt::KernelStats fast;  // measured 2x faster than modeled
  fast.time_ms = a.choose(small).cost.modeled_ms * 0.5;
  simt::KernelStats slow;
  slow.time_ms = a.choose(large).cost.modeled_ms * 2.0;

  const std::string algo = a.choose(small).algorithm;
  // Same observations, opposite arrival order: identical folded state.
  a.observe(algo, small, fast);
  a.observe(algo, large, slow);
  b.observe(algo, large, slow);
  b.observe(algo, small, fast);
  EXPECT_DOUBLE_EQ(a.refinement(algo, small), b.refinement(algo, small));
  EXPECT_DOUBLE_EQ(a.refinement(algo, large), b.refinement(algo, large));
  EXPECT_EQ(a.observations(), 2u);

  // Corrections are exact per graph: the fast small-graph run pulls that
  // graph's score down without touching the large graph's, and vice versa.
  EXPECT_LT(a.refinement(algo, small), 1.0);
  EXPECT_GT(a.refinement(algo, large), 1.0);

  // Re-observing the same (algorithm, graph) replaces, not accumulates.
  a.observe(algo, small, fast);
  EXPECT_EQ(a.observations(), 2u);
  EXPECT_DOUBLE_EQ(a.refinement(algo, small), b.refinement(algo, small));
}

TEST(SelectorRefine, RefinementShiftsScoresButStaysClamped) {
  Selector::Config cfg;
  cfg.refine = true;
  Selector sel(cfg);
  const auto st = small_stats();
  const auto before = sel.choose(st);

  simt::KernelStats crawl;  // measured wildly slower than modeled
  crawl.time_ms = before.cost.modeled_ms * 1000.0;
  sel.observe(before.algorithm, st, crawl);
  EXPECT_LE(sel.refinement(before.algorithm, st), 4.0);  // clamped
  // The chosen algorithm's refined score went up on this graph...
  for (const auto& c : sel.score(st)) {
    if (c.algorithm == before.algorithm) {
      EXPECT_GT(c.cost.modeled_ms, before.cost.modeled_ms);
    }
  }
  // ...while an unseen graph's scores are untouched (no cross-graph bleed).
  EXPECT_DOUBLE_EQ(sel.refinement(before.algorithm, large_stats()), 1.0);
}

TEST(SelectorRefine, DisabledConfigIgnoresObservations) {
  Selector::Config cfg;
  cfg.refine = false;
  Selector sel(cfg);
  simt::KernelStats s;
  s.time_ms = 100.0;
  sel.observe("Polak", small_stats(), s);
  EXPECT_EQ(sel.observations(), 0u);
  EXPECT_DOUBLE_EQ(sel.refinement("Polak", small_stats()), 1.0);
}

TEST(SelectorMutation, AsCaidaCrossoverLandsNearBatch1024) {
  // The pinned calibration contract: at the default cap, As-Caida commits
  // small batches as deltas and flips to a full recount at batch 1024 —
  // where bench/stream_churn measures the break-even.
  Selector sel;
  const auto st = small_stats();  // As-Caida at the default cap, exactly
  EXPECT_TRUE(sel.mutation_cost(st, 1).use_delta);
  EXPECT_TRUE(sel.mutation_cost(st, 512).use_delta);
  EXPECT_FALSE(sel.mutation_cost(st, 1024).use_delta);
  EXPECT_FALSE(sel.mutation_cost(st, 100'000).use_delta);
}

TEST(SelectorMutation, DeltaCostIsLinearInTheBatch) {
  Selector sel;
  const auto st = small_stats();
  const auto one = sel.mutation_cost(st, 1);
  const auto many = sel.mutation_cost(st, 1'000);
  EXPECT_GT(many.delta_ms, one.delta_ms);
  // Recount cost is a property of the graph, not the batch.
  EXPECT_DOUBLE_EQ(many.recount_ms, one.recount_ms);
}

TEST(SelectorSharded, OneDeviceIsAPassthrough) {
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto pc = sel.sharded_cost(best.algorithm, best.cost, 1,
                                   large_stats(),
                                   simt::InterconnectSpec::nvlink());
  EXPECT_EQ(pc.devices, 1u);
  EXPECT_DOUBLE_EQ(pc.total_ms, best.cost.modeled_ms);
  EXPECT_DOUBLE_EQ(pc.comm_ms, 0.0);
}

TEST(SelectorSharded, KernelShrinksCommGrowsWithWidth) {
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto net = simt::InterconnectSpec::nvlink();
  double prev_kernel = best.cost.modeled_ms;
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const auto pc =
        sel.sharded_cost(best.algorithm, best.cost, k, large_stats(), net);
    EXPECT_LT(pc.kernel_ms, prev_kernel) << k;  // sub-linear but monotone
    EXPECT_GT(pc.comm_ms, 0.0) << k;
    EXPECT_DOUBLE_EQ(pc.total_ms, pc.kernel_ms + pc.comm_ms) << k;
    prev_kernel = pc.kernel_ms;
  }
}

TEST(SelectorSharded, SlowerLinksCostMore) {
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto nv = sel.sharded_cost(best.algorithm, best.cost, 4,
                                   large_stats(),
                                   simt::InterconnectSpec::nvlink());
  const auto pcie = sel.sharded_cost(best.algorithm, best.cost, 4,
                                     large_stats(),
                                     simt::InterconnectSpec::pcie3());
  EXPECT_GT(pcie.comm_ms, nv.comm_ms);
  EXPECT_DOUBLE_EQ(pcie.kernel_ms, nv.kernel_ms);  // the link moves only comm
}

TEST(SelectorShardedCluster, WidthFittingOneHostMatchesFlatPricing) {
  // A shard set that never leaves its host pays only the intra link; the
  // cluster overload must reproduce the flat overload field for field.
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto cluster = simt::ClusterSpec::ethernet(2, 4);
  for (std::uint32_t k : {1u, 2u, 4u}) {
    const auto flat = sel.sharded_cost(best.algorithm, best.cost, k,
                                       large_stats(), cluster.host.intra);
    const auto two = sel.sharded_cost(best.algorithm, best.cost, k,
                                      large_stats(), cluster);
    EXPECT_EQ(two.hosts, 1u) << k;
    EXPECT_EQ(two.devices, flat.devices) << k;
    EXPECT_DOUBLE_EQ(two.kernel_ms, flat.kernel_ms) << k;
    EXPECT_DOUBLE_EQ(two.comm_ms, flat.comm_ms) << k;
    EXPECT_DOUBLE_EQ(two.total_ms, flat.total_ms) << k;
  }
}

TEST(SelectorShardedCluster, CrossingHostsCostsMoreThanStayingIntra) {
  // Width 4 over 2x2 hosts rides the network for half its peers; the same
  // width inside one NVLink host does not. Kernel time is width-only.
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto split = simt::ClusterSpec::ethernet(2, 2);
  const auto whole = simt::ClusterSpec::single_host(4);
  const auto cross =
      sel.sharded_cost(best.algorithm, best.cost, 4, large_stats(), split);
  const auto intra =
      sel.sharded_cost(best.algorithm, best.cost, 4, large_stats(), whole);
  EXPECT_EQ(cross.hosts, 2u);
  EXPECT_EQ(intra.hosts, 1u);
  EXPECT_DOUBLE_EQ(cross.kernel_ms, intra.kernel_ms);
  EXPECT_GT(cross.comm_ms, intra.comm_ms);
  EXPECT_GT(cross.total_ms, intra.total_ms);
}

TEST(SelectorShardedCluster, RejectsWidthsBeyondTheCluster) {
  Selector sel;
  const auto ranked = sel.score(large_stats());
  const auto& best = ranked.front();
  const auto cluster = simt::ClusterSpec::ethernet(2, 2);  // 4 devices
  EXPECT_THROW(sel.sharded_cost(best.algorithm, best.cost, 8, large_stats(),
                                cluster),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcgpu::serve
