#include "serve/admission.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>

namespace tcgpu::serve {
namespace {

TEST(BoundedQueue, FifoPushPop) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  const auto c = q.counters();
  EXPECT_EQ(c.admitted, 3u);
  EXPECT_EQ(c.dequeued, 3u);
}

TEST(BoundedQueue, NonBlockingModeShedsLoadWhenFull) {
  BoundedQueue<int> q(2, /*block_when_full=*/false);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.push(3));  // full -> rejected, not blocked
  EXPECT_EQ(q.counters().rejected_full, 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1, /*block_when_full=*/true);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });  // blocks: full
  // Wait until the producer is provably parked, then free a slot.
  while (q.counters().blocked_pushes == 0) std::this_thread::yield();
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.counters().blocked_pushes, 1u);
}

TEST(BoundedQueue, CloseDrainsBacklogThenSignalsShutdown) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // no admission after close
  EXPECT_EQ(q.counters().rejected_closed, 1u);
  // Queued items still come out; then nullopt = shutdown signal.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays terminal
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, TakeMatchingExtractsBatchInOrder) {
  BoundedQueue<std::string> q(8);
  for (const char* s : {"a1", "b1", "a2", "a3", "b2"}) {
    EXPECT_TRUE(q.push(std::string(s)));
  }
  auto batch = q.take_matching(
      [](const std::string& s) { return s[0] == 'a'; }, /*max=*/2);
  ASSERT_EQ(batch.size(), 2u);  // capped at max, FIFO order
  EXPECT_EQ(batch[0], "a1");
  EXPECT_EQ(batch[1], "a2");
  // Non-matching items keep their relative order.
  EXPECT_EQ(q.pop().value(), "b1");
  EXPECT_EQ(q.pop().value(), "a3");
  EXPECT_EQ(q.pop().value(), "b2");
}

TEST(BoundedQueue, TakeMatchingOnEmptyDoesNotBlock) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.take_matching([](int) { return true; }, 4).empty());
}

TEST(BoundedQueue, MoveOnlyPayloadsWork) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.push(std::make_unique<int>(7)));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

}  // namespace
}  // namespace tcgpu::serve
