#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <vector>

#include "gen/er.hpp"

namespace tcgpu::serve {
namespace {

framework::Engine::Config small_engine() {
  framework::Engine::Config cfg;
  cfg.max_edges = 2'000;
  cfg.seed = 42;
  return cfg;
}

QueryRequest dataset_query(std::string name) {
  QueryRequest req;
  req.dataset = std::move(name);
  return req;
}

TEST(ServiceBasics, DatasetQueryRunsSelectsAndValidates) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  const auto reply = service.submit(dataset_query("As-Caida")).get();
  EXPECT_EQ(reply.status, QueryStatus::kOk);
  EXPECT_TRUE(reply.valid);
  EXPECT_TRUE(reply.selected);
  EXPECT_FALSE(reply.algorithm.empty());
  EXPECT_GT(reply.modeled.modeled_ms, 0.0);
  EXPECT_GT(reply.stats.time_ms, 0.0);
  EXPECT_EQ(reply.triangles, engine.prepare("As-Caida")->reference_triangles);
  // The trace covers the whole pipeline in order.
  EXPECT_GE(reply.trace.queue_ms(), 0.0);
  EXPECT_GE(reply.trace.prepare_ms(), 0.0);
  EXPECT_GE(reply.trace.run_ms(), 0.0);
  EXPECT_GE(reply.trace.total_ms(), reply.trace.run_ms());
}

TEST(ServiceBasics, ForcedAlgorithmSkipsSelection) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  auto req = dataset_query("As-Caida");
  req.algorithm = "Polak";
  const auto reply = service.submit(std::move(req)).get();
  EXPECT_EQ(reply.status, QueryStatus::kOk);
  EXPECT_EQ(reply.algorithm, "Polak");
  EXPECT_FALSE(reply.selected);
  EXPECT_TRUE(reply.valid);
}

TEST(ServiceBasics, InlineEdgeListQueryCounts) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  QueryRequest req;
  req.edges = gen::generate_er(200, 1'200, 3);
  req.name = "er-200";
  const auto reply = service.submit(std::move(req)).get();
  EXPECT_EQ(reply.status, QueryStatus::kOk);
  EXPECT_EQ(reply.dataset, "er-200");
  EXPECT_TRUE(reply.valid);
  EXPECT_GT(reply.triangles, 0u);
}

TEST(ServiceErrors, TerminalStatusesNeverAbandonTheFuture) {
  framework::Engine engine(small_engine());
  QueryService service(engine);

  // Empty request: no dataset, no edges.
  const auto empty = service.submit(QueryRequest{}).get();
  EXPECT_EQ(empty.status, QueryStatus::kInvalidRequest);
  EXPECT_FALSE(empty.error.empty());

  // Unknown dataset name: the reply carries the registry's error text.
  const auto unknown = service.submit(dataset_query("No-Such-Graph")).get();
  EXPECT_EQ(unknown.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(unknown.error.find("No-Such-Graph"), std::string::npos);
  EXPECT_NE(unknown.error.find("As-Caida"), std::string::npos);  // names valid

  // Unknown forced kernel.
  auto bad_algo = dataset_query("As-Caida");
  bad_algo.algorithm = "Polka";
  const auto reply = service.submit(std::move(bad_algo)).get();
  EXPECT_EQ(reply.status, QueryStatus::kInvalidRequest);
  EXPECT_NE(reply.error.find("Polka"), std::string::npos);

  const auto c = service.counters();
  EXPECT_GE(c.errors, 3u);
}

TEST(ServiceDeadline, ExpiredQueriesAreDroppedBeforeDispatch) {
  framework::Engine engine(small_engine());
  QueryService service(engine);
  auto req = dataset_query("As-Caida");
  req.deadline_ms = 1e-6;  // expires between enqueue and dispatch
  const auto reply = service.submit(std::move(req)).get();
  EXPECT_EQ(reply.status, QueryStatus::kDeadlineExpired);
  EXPECT_EQ(service.counters().expired, 1u);
}

TEST(ServiceShutdown, DrainsBacklogAndRefusesNewWork) {
  framework::Engine engine(small_engine());
  std::vector<std::future<QueryReply>> futures;
  {
    QueryService service(engine);
    for (int i = 0; i < 6; ++i) {
      futures.push_back(service.submit(dataset_query("As-Caida")));
    }
    service.shutdown();
    // Admitted queries were drained, not dropped.
    const auto late = service.submit(dataset_query("As-Caida")).get();
    EXPECT_EQ(late.status, QueryStatus::kShutdown);
  }  // destructor: second shutdown is a no-op
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
}

TEST(ServiceBackpressure, NonBlockingModeShedsLoad) {
  framework::Engine engine(small_engine());
  QueryService::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.block_when_full = false;
  QueryService service(engine, cfg);
  std::vector<std::future<QueryReply>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(service.submit(dataset_query("As-Caida")));
  }
  std::size_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (reply.status == QueryStatus::kOk) ++ok;
    if (reply.status == QueryStatus::kRejected) ++rejected;
  }
  EXPECT_EQ(ok + rejected, 50u);
  EXPECT_GT(ok, 0u);        // the queue made progress
  EXPECT_GT(rejected, 0u);  // and a 1-deep queue shed load under a burst
  EXPECT_EQ(service.counters().rejected, rejected);
}

TEST(ServiceBatching, SameGraphQueriesShareOnePrepare) {
  framework::Engine engine(small_engine());
  QueryService::Config cfg;
  cfg.workers = 1;
  QueryService service(engine, cfg);
  std::vector<std::future<QueryReply>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.submit(dataset_query("Wiki-Talk")));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, QueryStatus::kOk);
  }
  const auto c = service.counters();
  EXPECT_EQ(c.served, 12u);
  EXPECT_EQ(c.batches + c.batched, 12u);  // every query rode some batch
  // Whatever the batching pattern, the engine prepared the graph once.
  EXPECT_EQ(engine.counters().prepares, 1u);
  EXPECT_EQ(engine.counters().uploads, 1u);
}

TEST(ServiceDeterminism, DecisionTableAndCountsAreReproducible) {
  const std::vector<std::string> workload = {"As-Caida", "Wiki-Talk",
                                             "RoadNet-CA"};
  auto run_service = [&](bool reversed) {
    framework::Engine engine(small_engine());
    QueryService service(engine);
    // Warmup serially in fixed order: pins the decision table.
    for (const auto& ds : workload) {
      EXPECT_EQ(service.submit(dataset_query(ds)).get().status,
                QueryStatus::kOk);
    }
    // Then a burst in a different order must not change anything.
    auto burst = workload;
    if (reversed) std::reverse(burst.begin(), burst.end());
    std::vector<std::future<QueryReply>> futures;
    for (int round = 0; round < 3; ++round) {
      for (const auto& ds : burst) {
        futures.push_back(service.submit(dataset_query(ds)));
      }
    }
    std::vector<std::pair<std::string, std::uint64_t>> results;
    for (auto& f : futures) {
      auto reply = f.get();
      EXPECT_EQ(reply.status, QueryStatus::kOk);
      results.emplace_back(reply.dataset + "/" + reply.algorithm,
                           reply.triangles);
    }
    std::sort(results.begin(), results.end());
    return std::make_pair(service.decision_table(), results);
  };
  const auto a = run_service(false);
  const auto b = run_service(true);
  EXPECT_EQ(a.first, b.first);    // same picks per graph
  EXPECT_EQ(a.second, b.second);  // same (graph, algorithm, count) triples
}

TEST(ServiceEviction, CappedEngineStaysBoundedUnderRotation) {
  auto cfg = small_engine();
  cfg.max_resident = 2;
  framework::Engine engine(cfg);
  QueryService service(engine);
  const std::vector<std::string> rotation = {"As-Caida", "Wiki-Talk",
                                             "RoadNet-CA", "Com-Dblp"};
  for (int round = 0; round < 2; ++round) {
    for (const auto& ds : rotation) {
      EXPECT_EQ(service.submit(dataset_query(ds)).get().status,
                QueryStatus::kOk);
    }
  }
  EXPECT_LE(engine.resident_graphs(), 2u);
  EXPECT_GT(engine.counters().evictions, 0u);
}

}  // namespace
}  // namespace tcgpu::serve
