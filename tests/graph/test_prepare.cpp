// Equivalence gates for the parallel prepare pipeline (graph/prepare.hpp):
// every stage against an independent std::set / vector-of-vectors oracle,
// under varying OMP thread counts and all four orientation policies. The
// builder wrappers delegate here, so these are the invariants the
// fig11/12/13 byte-identity guarantee rests on.
#include "graph/prepare.hpp"

#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <set>
#include <vector>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "graph/orientation.hpp"

namespace tcgpu::graph {
namespace {

/// Independent clean oracle: std::set dedup, then monotone id compaction.
Coo oracle_clean(const Coo& raw) {
  std::set<Edge> dedup;
  for (const auto& [u, v] : raw.edges) {
    if (u == v) continue;
    dedup.insert({std::min(u, v), std::max(u, v)});
  }
  std::vector<VertexId> remap(raw.num_vertices, kInvalidVertex);
  for (const auto& [u, v] : dedup) remap[u] = remap[v] = 0;
  VertexId next = 0;
  for (VertexId v = 0; v < raw.num_vertices; ++v) {
    if (remap[v] != kInvalidVertex) remap[v] = next++;
  }
  Coo out;
  out.num_vertices = next;
  for (const auto& [u, v] : dedup) out.edges.emplace_back(remap[u], remap[v]);
  return out;
}

/// Independent CSR oracle: vector-of-vectors adjacency, rows sorted.
Csr oracle_undirected_csr(const Coo& clean) {
  std::vector<std::vector<VertexId>> adj(clean.num_vertices);
  for (const auto& [u, v] : clean.edges) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::vector<EdgeIndex> row_ptr(clean.num_vertices + 1, 0);
  std::vector<VertexId> col;
  for (VertexId v = 0; v < clean.num_vertices; ++v) {
    std::sort(adj[v].begin(), adj[v].end());
    col.insert(col.end(), adj[v].begin(), adj[v].end());
    row_ptr[v + 1] = static_cast<EdgeIndex>(col.size());
  }
  return Csr(std::move(row_ptr), std::move(col));
}

/// The legacy composition the fused pipeline replaced, built from oracle
/// parts plus the unchanged orient/stats modules.
PreparedDag oracle_prepare(const Coo& raw, OrientationPolicy policy,
                           std::uint64_t seed = 0) {
  const Coo clean = oracle_clean(raw);
  const Csr undirected = oracle_undirected_csr(clean);
  PreparedDag out;
  out.stats = compute_stats(undirected);
  auto oriented = orient(undirected, policy, seed);
  out.dag = std::move(oriented.dag);
  out.new_to_old = std::move(oriented.new_to_old);
  fold_dag_stats(out.dag, out.stats);
  return out;
}

void expect_stats_eq(const GraphStats& got, const GraphStats& want) {
  EXPECT_EQ(got.num_vertices, want.num_vertices);
  EXPECT_EQ(got.num_undirected_edges, want.num_undirected_edges);
  EXPECT_EQ(got.avg_degree, want.avg_degree);
  EXPECT_EQ(got.max_degree, want.max_degree);
  EXPECT_EQ(got.median_degree, want.median_degree);
  EXPECT_EQ(got.p99_degree, want.p99_degree);
  EXPECT_EQ(got.max_out_degree, want.max_out_degree);
  EXPECT_EQ(got.p99_out_degree, want.p99_out_degree);
  EXPECT_EQ(got.avg_out_degree, want.avg_out_degree);
  EXPECT_EQ(got.sum_out_degree_sq, want.sum_out_degree_sq);
  EXPECT_EQ(got.out_degree_skew, want.out_degree_skew);
}

/// Messy raw inputs: self-loops, duplicates, reversals, isolated vertices.
std::vector<Coo> messy_graphs() {
  std::vector<Coo> graphs;
  {
    Coo g;
    g.num_vertices = 8;  // 5 and 6 stay isolated
    g.edges = {{0, 1}, {1, 0}, {0, 0}, {2, 1}, {1, 2}, {2, 1},
               {3, 4}, {7, 3}, {4, 3}, {7, 7}, {0, 2}};
    graphs.push_back(std::move(g));
  }
  graphs.push_back(gen::generate_er(300, 2'000, 7));
  gen::RmatParams rmat;
  rmat.scale = 10;
  rmat.edges = 6'000;
  graphs.push_back(gen::generate_rmat(rmat, 11));
  graphs.push_back(Coo{});  // empty
  return graphs;
}

TEST(PreparePipeline, CleanMatchesSetOracle) {
  for (const Coo& raw : messy_graphs()) {
    Coo copy = raw;
    const Coo got = clean_edges_inplace(std::move(copy));
    const Coo want = oracle_clean(raw);
    EXPECT_EQ(got.num_vertices, want.num_vertices);
    EXPECT_EQ(got.edges, want.edges);
  }
}

TEST(PreparePipeline, UndirectedCsrMatchesOracle) {
  for (const Coo& raw : messy_graphs()) {
    const Coo clean = oracle_clean(raw);
    EXPECT_EQ(build_undirected_csr_parallel(clean), oracle_undirected_csr(clean));
  }
}

TEST(PreparePipeline, PrepareDagMatchesLegacyCompositionAllPolicies) {
  for (const auto policy :
       {OrientationPolicy::kByDegree, OrientationPolicy::kById,
        OrientationPolicy::kByCore, OrientationPolicy::kRandom}) {
    for (const Coo& raw : messy_graphs()) {
      Coo copy = raw;
      const PreparedDag got = prepare_dag(std::move(copy), policy, 5);
      const PreparedDag want = oracle_prepare(raw, policy, 5);
      EXPECT_EQ(got.dag, want.dag);
      EXPECT_EQ(got.new_to_old, want.new_to_old);
      expect_stats_eq(got.stats, want.stats);
    }
  }
}

TEST(PreparePipeline, OutputIsThreadCountInvariant) {
  gen::RmatParams rmat;
  rmat.scale = 11;
  rmat.edges = 12'000;
  const Coo raw = gen::generate_rmat(rmat, 3);
  const int saved = omp_get_max_threads();
  std::vector<PreparedDag> runs;
  for (const int threads : {1, 2, 4}) {
    omp_set_num_threads(threads);
    Coo copy = raw;
    runs.push_back(prepare_dag(std::move(copy), OrientationPolicy::kByDegree));
  }
  omp_set_num_threads(saved);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].dag, runs[0].dag);
    EXPECT_EQ(runs[i].new_to_old, runs[0].new_to_old);
    expect_stats_eq(runs[i].stats, runs[0].stats);
  }
}

TEST(PreparePipeline, RejectsOutOfRangeIds) {
  Coo raw;
  raw.num_vertices = 2;
  raw.edges = {{0, 5}};
  EXPECT_THROW(clean_edges_inplace(std::move(raw)), std::invalid_argument);
}

TEST(SymmetrizeDag, RebuildsTheUndirectedAdjacency) {
  const Coo raw = gen::generate_er(250, 1'500, 9);
  Coo copy = raw;
  const PreparedDag prepared =
      prepare_dag(std::move(copy), OrientationPolicy::kByDegree);
  const Csr sym = symmetrize_dag(prepared.dag);

  // The DAG is id-oriented after relabeling, so symmetrizing it must equal
  // the undirected CSR of its own edge list.
  Coo dag_edges;
  dag_edges.num_vertices = prepared.dag.num_vertices();
  for (VertexId u = 0; u < prepared.dag.num_vertices(); ++u) {
    for (const VertexId v : prepared.dag.neighbors(u)) {
      dag_edges.edges.emplace_back(u, v);
    }
  }
  EXPECT_EQ(sym, oracle_undirected_csr(dag_edges));
}

TEST(SymmetrizeDag, RejectsUnorientedInput) {
  // 1 -> 0 violates the u < v contract.
  const Csr bad = build_directed_csr_parallel(2, {{1, 0}});
  EXPECT_THROW(symmetrize_dag(bad), std::invalid_argument);
}

}  // namespace
}  // namespace tcgpu::graph
