#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gen/er.hpp"
#include "graph/builder.hpp"

namespace tcgpu::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tcgpu_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static Coo sample() { return gen::generate_er(200, 800, 5); }

  static void expect_same_edges(const Coo& a, const Coo& b) {
    EXPECT_EQ(a.num_vertices, b.num_vertices);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    EXPECT_EQ(a.edges, b.edges);
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextEdgeListRoundTrip) {
  const Coo g = sample();
  write_text_edge_list(path("g.txt"), g);
  expect_same_edges(g, read_text_edge_list(path("g.txt")));
}

TEST_F(IoTest, TextReaderSkipsCommentsAndBlankLines) {
  std::ofstream(path("c.txt")) << "# comment\n\n% another\n0 1\n1 2\n";
  const Coo g = read_text_edge_list(path("c.txt"));
  EXPECT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.num_vertices, 3u);
}

TEST_F(IoTest, TextReaderRejectsMalformedLine) {
  std::ofstream(path("bad.txt")) << "0 1\nnot an edge\n";
  EXPECT_THROW(read_text_edge_list(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, TextReaderRejectsHugeIds) {
  std::ofstream(path("huge.txt")) << "0 8589934592\n";  // 2^33
  EXPECT_THROW(read_text_edge_list(path("huge.txt")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_text_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary_edge_list(path("nope.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryEdgeListRoundTrip) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  expect_same_edges(g, read_binary_edge_list(path("g.bin")));
}

TEST_F(IoTest, BinaryEdgeListRejectsBadMagic) {
  std::ofstream(path("bad.bin"), std::ios::binary) << "JUNKJUNKJUNKJUNK";
  EXPECT_THROW(read_binary_edge_list(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryEdgeListRejectsTruncation) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  std::filesystem::resize_file(path("g.bin"), 24);
  EXPECT_THROW(read_binary_edge_list(path("g.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryCsrRoundTrip) {
  const Csr g = build_undirected_csr(clean_edges(sample()));
  write_binary_csr(path("g.csr"), g);
  EXPECT_EQ(g, read_binary_csr(path("g.csr")));
}

TEST_F(IoTest, BinaryCsrRoundTripsEmptyGraph) {
  const Csr empty;  // V = 0, row_ptr = {0}
  write_binary_csr(path("e.csr"), empty);
  const Csr back = read_binary_csr(path("e.csr"));
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
  EXPECT_EQ(empty, back);
}

TEST_F(IoTest, BinaryCsrRoundTripsSingleEdge) {
  Coo g;
  g.num_vertices = 2;
  g.edges = {{0, 1}};
  const Csr csr = build_undirected_csr(clean_edges(g));
  write_binary_csr(path("s.csr"), csr);
  const Csr back = read_binary_csr(path("s.csr"));
  EXPECT_EQ(back.num_vertices(), 2u);
  EXPECT_EQ(back.num_edges(), 2u);  // undirected: stored both ways
  EXPECT_EQ(csr, back);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  const Coo g = sample();
  write_matrix_market(path("g.mtx"), g);
  expect_same_edges(g, read_matrix_market(path("g.mtx")));
}

TEST_F(IoTest, MatrixMarketRejectsMissingBanner) {
  std::ofstream(path("bad.mtx")) << "3 3 1\n1 2\n";
  EXPECT_THROW(read_matrix_market(path("bad.mtx")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsZeroBasedEntries) {
  std::ofstream(path("zero.mtx"))
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 2\n";
  EXPECT_THROW(read_matrix_market(path("zero.mtx")), std::runtime_error);
}

TEST_F(IoTest, EmptyGraphRoundTripsEverywhere) {
  const Coo g{};
  write_text_edge_list(path("e.txt"), g);
  EXPECT_EQ(read_text_edge_list(path("e.txt")).edges.size(), 0u);
  write_binary_edge_list(path("e.bin"), g);
  EXPECT_EQ(read_binary_edge_list(path("e.bin")).edges.size(), 0u);
  write_matrix_market(path("e.mtx"), g);
  EXPECT_EQ(read_matrix_market(path("e.mtx")).edges.size(), 0u);
}

}  // namespace
}  // namespace tcgpu::graph
