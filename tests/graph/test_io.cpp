#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "gen/er.hpp"
#include "graph/builder.hpp"

namespace tcgpu::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("tcgpu_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  static Coo sample() { return gen::generate_er(200, 800, 5); }

  static void expect_same_edges(const Coo& a, const Coo& b) {
    EXPECT_EQ(a.num_vertices, b.num_vertices);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    EXPECT_EQ(a.edges, b.edges);
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextEdgeListRoundTrip) {
  const Coo g = sample();
  write_text_edge_list(path("g.txt"), g);
  expect_same_edges(g, read_text_edge_list(path("g.txt")));
}

TEST_F(IoTest, TextReaderSkipsCommentsAndBlankLines) {
  std::ofstream(path("c.txt")) << "# comment\n\n% another\n0 1\n1 2\n";
  const Coo g = read_text_edge_list(path("c.txt"));
  EXPECT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.num_vertices, 3u);
}

TEST_F(IoTest, TextReaderRejectsMalformedLine) {
  std::ofstream(path("bad.txt")) << "0 1\nnot an edge\n";
  EXPECT_THROW(read_text_edge_list(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, TextReaderRejectsHugeIds) {
  std::ofstream(path("huge.txt")) << "0 8589934592\n";  // 2^33
  EXPECT_THROW(read_text_edge_list(path("huge.txt")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_text_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary_edge_list(path("nope.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryEdgeListRoundTrip) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  expect_same_edges(g, read_binary_edge_list(path("g.bin")));
}

TEST_F(IoTest, BinaryEdgeListRejectsBadMagic) {
  std::ofstream(path("bad.bin"), std::ios::binary) << "JUNKJUNKJUNKJUNK";
  EXPECT_THROW(read_binary_edge_list(path("bad.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryEdgeListRejectsTruncation) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  std::filesystem::resize_file(path("g.bin"), 24);
  EXPECT_THROW(read_binary_edge_list(path("g.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryCsrRoundTrip) {
  const Csr g = build_undirected_csr(clean_edges(sample()));
  write_binary_csr(path("g.csr"), g);
  EXPECT_EQ(g, read_binary_csr(path("g.csr")));
}

TEST_F(IoTest, BinaryCsrRoundTripsEmptyGraph) {
  const Csr empty;  // V = 0, row_ptr = {0}
  write_binary_csr(path("e.csr"), empty);
  const Csr back = read_binary_csr(path("e.csr"));
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
  EXPECT_EQ(empty, back);
}

TEST_F(IoTest, BinaryCsrRoundTripsSingleEdge) {
  Coo g;
  g.num_vertices = 2;
  g.edges = {{0, 1}};
  const Csr csr = build_undirected_csr(clean_edges(g));
  write_binary_csr(path("s.csr"), csr);
  const Csr back = read_binary_csr(path("s.csr"));
  EXPECT_EQ(back.num_vertices(), 2u);
  EXPECT_EQ(back.num_edges(), 2u);  // undirected: stored both ways
  EXPECT_EQ(csr, back);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  const Coo g = sample();
  write_matrix_market(path("g.mtx"), g);
  expect_same_edges(g, read_matrix_market(path("g.mtx")));
}

TEST_F(IoTest, MatrixMarketRejectsMissingBanner) {
  std::ofstream(path("bad.mtx")) << "3 3 1\n1 2\n";
  EXPECT_THROW(read_matrix_market(path("bad.mtx")), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsZeroBasedEntries) {
  std::ofstream(path("zero.mtx"))
      << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 2\n";
  EXPECT_THROW(read_matrix_market(path("zero.mtx")), std::runtime_error);
}

TEST_F(IoTest, EmptyGraphRoundTripsEverywhere) {
  const Coo g{};
  write_text_edge_list(path("e.txt"), g);
  EXPECT_EQ(read_text_edge_list(path("e.txt")).edges.size(), 0u);
  write_binary_edge_list(path("e.bin"), g);
  EXPECT_EQ(read_binary_edge_list(path("e.bin")).edges.size(), 0u);
  write_matrix_market(path("e.mtx"), g);
  EXPECT_EQ(read_matrix_market(path("e.mtx")).edges.size(), 0u);
}

TEST_F(IoTest, TextReaderHandlesCrlfLineEndings) {
  std::ofstream(path("crlf.txt"), std::ios::binary)
      << "# comment\r\n0 1\r\n\r\n% note\r\n1 2\r\n";
  const Coo g = read_text_edge_list(path("crlf.txt"));
  EXPECT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[0], Edge(0, 1));
  EXPECT_EQ(g.edges[1], Edge(1, 2));
}

TEST_F(IoTest, TextReaderHandlesMissingFinalNewlineAndTabs) {
  std::ofstream(path("tail.txt")) << "0\t1\n  2   3";  // no trailing \n
  const Coo g = read_text_edge_list(path("tail.txt"));
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[1], Edge(2, 3));
}

TEST_F(IoTest, TextReaderPreservesDuplicateAndReversedEdges) {
  // The reader is a verbatim loader: dedup/canonicalization is the prepare
  // pipeline's job, so duplicates and reversals must survive loading.
  std::ofstream(path("dup.txt")) << "0 1\n1 0\n0 1\n2 1\n";
  const Coo g = read_text_edge_list(path("dup.txt"));
  const std::vector<Edge> want = {{0, 1}, {1, 0}, {0, 1}, {2, 1}};
  EXPECT_EQ(g.edges, want);
}

TEST_F(IoTest, TextReaderErrorNamesTheOffendingLine) {
  std::ofstream(path("bad2.txt")) << "0 1\n# fine\n3,4\n5 6\n";
  try {
    read_text_edge_list(path("bad2.txt"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, TextReaderReportsTheEarliestMalformedLine) {
  // Spread malformed lines across a file big enough to split into multiple
  // parse chunks; the reported line must be the first one in file order,
  // regardless of which chunk's thread trips first.
  {
    std::ofstream out(path("big.txt"));
    for (int i = 0; i < 300'000; ++i) {
      if (i == 123'456 || i == 250'000) {
        out << "oops\n";
      } else {
        out << i % 971 << ' ' << i % 877 << '\n';
      }
    }
  }
  try {
    read_text_edge_list(path("big.txt"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 123457"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, TextReaderMultiChunkMatchesSmallFileParse) {
  // > 1 MiB so the chunked reader actually splits; content round-trips.
  Coo g;
  g.num_vertices = 100'000;
  for (std::uint32_t i = 0; i < 200'000; ++i) {
    g.edges.emplace_back(i % 100'000, (i * 7 + 13) % 100'000);
  }
  write_text_edge_list(path("big2.txt"), g);
  expect_same_edges(g, read_text_edge_list(path("big2.txt")));
}

TEST_F(IoTest, BinaryEdgeListSourceStreamsAndSkips) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  BinaryEdgeListSource src(path("g.bin"));
  EXPECT_EQ(src.num_vertices(), g.num_vertices);
  EXPECT_EQ(src.num_edges(), static_cast<EdgeCount>(g.edges.size()));

  std::vector<Edge> buf(10);
  ASSERT_EQ(src.next(buf), 10u);
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), g.edges.begin()));
  EXPECT_EQ(src.skip(5), 5);
  ASSERT_EQ(src.next({buf.data(), 1}), 1u);
  EXPECT_EQ(buf[0], g.edges[15]);
  // Over-skip clamps at end of stream; next() then reports exhaustion.
  EXPECT_EQ(src.skip(static_cast<EdgeCount>(g.edges.size())),
            static_cast<EdgeCount>(g.edges.size()) - 16);
  EXPECT_EQ(src.next(buf), 0u);
}

TEST_F(IoTest, BinaryEdgeListSourceRejectsTruncatedPayload) {
  const Coo g = sample();
  write_binary_edge_list(path("t.bin"), g);
  std::filesystem::resize_file(path("t.bin"),
                               std::filesystem::file_size(path("t.bin")) - 3);
  BinaryEdgeListSource src(path("t.bin"));
  std::vector<Edge> buf(g.edges.size());
  EXPECT_THROW(src.next(buf), std::runtime_error);
}

TEST_F(IoTest, LoadEdgeStreamWithinCapIsVerbatim) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  BinaryEdgeListSource src(path("g.bin"));
  const StreamLoadResult res = load_edge_stream(src, g.edges.size() + 10);
  EXPECT_FALSE(res.downsampled);
  EXPECT_EQ(res.edges_seen, static_cast<EdgeCount>(g.edges.size()));
  expect_same_edges(g, res.graph);
}

TEST_F(IoTest, LoadEdgeStreamDownsamplesDeterministically) {
  const Coo g = gen::generate_er(500, 5'000, 3);
  write_binary_edge_list(path("g.bin"), g);

  auto load = [&](std::uint64_t seed) {
    BinaryEdgeListSource src(path("g.bin"));
    return load_edge_stream(src, 800, seed);
  };
  const StreamLoadResult a = load(42);
  EXPECT_TRUE(a.downsampled);
  EXPECT_EQ(a.edges_seen, static_cast<EdgeCount>(g.edges.size()));
  ASSERT_EQ(a.graph.edges.size(), 800u);
  for (const auto& [u, v] : a.graph.edges) {
    EXPECT_LT(u, a.graph.num_vertices);
    EXPECT_LT(v, a.graph.num_vertices);
  }

  const StreamLoadResult b = load(42);
  EXPECT_EQ(a.graph.edges, b.graph.edges);  // same seed, same sample
  const StreamLoadResult c = load(43);
  EXPECT_NE(a.graph.edges, c.graph.edges);  // different seed, different sample
}

TEST_F(IoTest, LoadEdgeStreamZeroCapConsumesNothing) {
  const Coo g = sample();
  write_binary_edge_list(path("g.bin"), g);
  BinaryEdgeListSource src(path("g.bin"));
  const StreamLoadResult res = load_edge_stream(src, 0);
  EXPECT_TRUE(res.graph.edges.empty());
  EXPECT_EQ(res.graph.num_vertices, 0u);
  EXPECT_EQ(res.edges_seen, 0);
  EXPECT_FALSE(res.downsampled);
}

}  // namespace
}  // namespace tcgpu::graph
