// The 2^31 boundary gate: load_edge_stream must downsample a stream longer
// than INT32_MAX edges without overflowing any edge counter (EdgeCount is
// 64-bit end to end). A synthetic EdgeSource with O(1) skip makes this
// cheap — Algorithm L touches O(k log(n/k)) edges of the 2.2 billion — but
// the test still carries the slow label because a buggy (32-bit or
// drain-through) skip path would degrade it to hours of streaming.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>

#include "graph/io.hpp"

namespace tcgpu::graph {
namespace {

/// Deterministic synthetic stream: edge i is a cheap mix of i. Seekable, so
/// reservoir skips are O(1) counter bumps.
class SyntheticEdgeSource final : public EdgeSource {
 public:
  explicit SyntheticEdgeSource(EdgeCount total) : total_(total) {}

  std::size_t next(std::span<Edge> out) override {
    const EdgeCount left = total_ - pos_;
    const std::size_t n =
        static_cast<std::size_t>(std::min<EdgeCount>(left, out.size()));
    for (std::size_t i = 0; i < n; ++i) out[i] = edge_at(pos_ + i);
    pos_ += n;
    return n;
  }

  EdgeCount skip(EdgeCount n) override {
    const EdgeCount hop = std::min(n, total_ - pos_);
    pos_ += hop;
    return hop;
  }

  EdgeCount consumed() const { return pos_; }

 private:
  static Edge edge_at(EdgeCount i) {
    auto x = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
    x ^= x >> 29;
    return {static_cast<VertexId>(x % 1'000'003),
            static_cast<VertexId>((x >> 32) % 1'000'003)};
  }

  EdgeCount total_;
  EdgeCount pos_ = 0;
};

TEST(LoadEdgeStreamSlow, SamplesPastTheInt32Boundary) {
  // 2^31 + a margin: every edge index, skip length, and the seen-count
  // itself exceed INT32_MAX before the stream ends.
  const EdgeCount total = (EdgeCount{1} << 31) + 10'000'000;
  SyntheticEdgeSource src(total);
  const std::size_t cap = 100'000;
  const StreamLoadResult res = load_edge_stream(src, cap, 7);

  EXPECT_EQ(res.edges_seen, total);
  EXPECT_EQ(src.consumed(), total);
  EXPECT_TRUE(res.downsampled);
  ASSERT_EQ(res.graph.edges.size(), cap);
  for (const auto& [u, v] : res.graph.edges) {
    EXPECT_LT(u, res.graph.num_vertices);
    EXPECT_LT(v, res.graph.num_vertices);
  }

  // Same stream, same seed: bit-identical sample.
  SyntheticEdgeSource again(total);
  const StreamLoadResult rerun = load_edge_stream(again, cap, 7);
  EXPECT_EQ(res.graph.edges, rerun.graph.edges);
}

TEST(LoadEdgeStreamSlow, DefaultSkipDrainsThroughNext) {
  // A source that never overrides skip() must still work (the default
  // drains via next) and still count every edge in 64 bits.
  class DrainOnly final : public EdgeSource {
   public:
    explicit DrainOnly(EdgeCount total) : total_(total) {}
    std::size_t next(std::span<Edge> out) override {
      const EdgeCount left = total_ - pos_;
      const std::size_t n =
          static_cast<std::size_t>(std::min<EdgeCount>(left, out.size()));
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = {static_cast<VertexId>((pos_ + i) % 4096),
                  static_cast<VertexId>((pos_ + i) % 4093)};
      }
      pos_ += n;
      return n;
    }

   private:
    EdgeCount total_;
    EdgeCount pos_ = 0;
  };

  DrainOnly src(500'000);
  const StreamLoadResult res = load_edge_stream(src, 1'000, 3);
  EXPECT_EQ(res.edges_seen, 500'000);
  EXPECT_TRUE(res.downsampled);
  EXPECT_EQ(res.graph.edges.size(), 1'000u);
}

}  // namespace
}  // namespace tcgpu::graph
