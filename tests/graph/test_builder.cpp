#include "graph/builder.hpp"

#include <gtest/gtest.h>

namespace tcgpu::graph {
namespace {

TEST(CleanEdges, DropsSelfLoops) {
  Coo raw;
  raw.num_vertices = 3;
  raw.edges = {{0, 0}, {0, 1}, {2, 2}};
  const Coo clean = clean_edges(raw);
  ASSERT_EQ(clean.edges.size(), 1u);
  EXPECT_EQ(clean.edges[0], Edge(0, 1));
}

TEST(CleanEdges, MergesDuplicatesAndReverseDuplicates) {
  Coo raw;
  raw.num_vertices = 4;
  raw.edges = {{0, 1}, {1, 0}, {0, 1}, {2, 3}};
  const Coo clean = clean_edges(raw);
  EXPECT_EQ(clean.edges.size(), 2u);
}

TEST(CleanEdges, CompactsIsolatedVertices) {
  Coo raw;
  raw.num_vertices = 10;  // only 2, 7 touch edges
  raw.edges = {{7, 2}};
  const Coo clean = clean_edges(raw);
  EXPECT_EQ(clean.num_vertices, 2u);
  EXPECT_EQ(clean.edges[0], Edge(0, 1));
}

TEST(CleanEdges, CanonicalizesLowHigh) {
  Coo raw;
  raw.num_vertices = 5;
  raw.edges = {{4, 1}, {3, 2}};
  const Coo clean = clean_edges(raw);
  for (const auto& [u, v] : clean.edges) EXPECT_LT(u, v);
}

TEST(CleanEdges, RejectsOutOfRangeIds) {
  Coo raw;
  raw.num_vertices = 2;
  raw.edges = {{0, 5}};
  EXPECT_THROW(clean_edges(raw), std::invalid_argument);
}

TEST(CleanEdges, EmptyInputYieldsEmptyGraph) {
  const Coo clean = clean_edges(Coo{});
  EXPECT_EQ(clean.num_vertices, 0u);
  EXPECT_TRUE(clean.edges.empty());
}

TEST(BuildUndirectedCsr, SymmetricSortedAdjacency) {
  Coo clean;
  clean.num_vertices = 4;
  clean.edges = {{0, 2}, {0, 1}, {1, 3}};
  const Csr g = build_undirected_csr(clean);
  EXPECT_EQ(g.num_edges(), 6u);  // both directions
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(BuildDirectedCsr, KeepsOnlyGivenDirections) {
  const Csr g = build_directed_csr(3, {{0, 1}, {0, 2}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(BuildDirectedCsr, SortsNeighborLists) {
  const Csr g = build_directed_csr(4, {{0, 3}, {0, 1}, {0, 2}});
  const auto n = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

}  // namespace
}  // namespace tcgpu::graph
