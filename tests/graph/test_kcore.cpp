#include <gtest/gtest.h>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/cpu_reference.hpp"
#include "graph/orientation.hpp"

namespace tcgpu::graph {
namespace {

Csr from_edges(VertexId n, std::vector<Edge> edges) {
  Coo coo;
  coo.num_vertices = n;
  coo.edges = std::move(edges);
  return build_undirected_csr(clean_edges(coo));
}

TEST(CoreNumbers, CompleteGraphIsUniform) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 7; ++i) {
    for (VertexId j = i + 1; j < 7; ++j) edges.push_back({i, j});
  }
  const auto core = core_numbers(from_edges(7, edges));
  for (const auto c : core) EXPECT_EQ(c, 6u);
}

TEST(CoreNumbers, PathIsOneCore) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i + 1 < 10; ++i) edges.push_back({i, i + 1});
  const auto core = core_numbers(from_edges(10, edges));
  for (const auto c : core) EXPECT_EQ(c, 1u);
}

TEST(CoreNumbers, CycleIsTwoCore) {
  std::vector<Edge> edges;
  for (VertexId i = 0; i < 8; ++i) edges.push_back({i, (i + 1) % 8});
  const auto core = core_numbers(from_edges(8, edges));
  for (const auto c : core) EXPECT_EQ(c, 2u);
}

TEST(CoreNumbers, TriangleWithTailSeparates) {
  // Triangle 0-1-2 plus tail 2-3-4: triangle is 2-core, tail is 1-core.
  const auto g = from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto core = core_numbers(g);
  // clean_edges compacts ids but this graph has no isolated vertices, and
  // ids are preserved.
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[4], 1u);
}

TEST(CoreNumbers, SatisfiesCoreDefinitionOnRandomGraph) {
  // Every vertex of the k-core induced subgraph has >= k neighbors in it.
  gen::RmatParams p;
  p.scale = 10;
  p.edges = 6000;
  const Csr g = build_undirected_csr(clean_edges(gen::generate_rmat(p, 77)));
  const auto core = core_numbers(g);
  EdgeIndex kmax = 0;
  for (const auto c : core) kmax = std::max(kmax, c);
  ASSERT_GT(kmax, 1u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EdgeIndex inside = 0;
    for (const VertexId w : g.neighbors(v)) inside += core[w] >= core[v];
    EXPECT_GE(inside, core[v]) << "vertex " << v;
  }
}

TEST(CoreNumbers, CoreIsAtMostDegree) {
  gen::RmatParams p;
  p.scale = 9;
  p.edges = 3000;
  const Csr g = build_undirected_csr(clean_edges(gen::generate_rmat(p, 13)));
  const auto core = core_numbers(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_LE(core[v], g.degree(v));
}

TEST(ParallelForward, AgreesWithSerialReference) {
  gen::RmatParams p;
  p.scale = 11;
  p.edges = 12000;
  const Csr und = build_undirected_csr(clean_edges(gen::generate_rmat(p, 21)));
  const auto dag = orient(und, OrientationPolicy::kByDegree).dag;
  EXPECT_EQ(count_triangles_forward_parallel(dag), count_triangles_forward(dag));
}

TEST(ParallelForward, EmptyGraph) {
  EXPECT_EQ(count_triangles_forward_parallel(Csr{}), 0u);
}

}  // namespace
}  // namespace tcgpu::graph
