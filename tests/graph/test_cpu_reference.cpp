#include "graph/cpu_reference.hpp"

#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/orientation.hpp"

namespace tcgpu::graph {
namespace {

std::uint64_t forward_count_of(const Coo& raw) {
  const Csr und = build_undirected_csr(clean_edges(raw));
  return count_triangles_forward(orient(und, OrientationPolicy::kByDegree).dag);
}

Coo complete_graph(VertexId n) {
  Coo g;
  g.num_vertices = n;
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) g.edges.push_back({i, j});
  }
  return g;
}

TEST(CpuReference, CompleteGraphHasNChoose3) {
  EXPECT_EQ(forward_count_of(complete_graph(4)), 4u);
  EXPECT_EQ(forward_count_of(complete_graph(10)), 120u);
  EXPECT_EQ(forward_count_of(complete_graph(25)), 2300u);
}

TEST(CpuReference, TreesAndCyclesHaveNone) {
  Coo path;
  path.num_vertices = 10;
  for (VertexId i = 0; i + 1 < 10; ++i) path.edges.push_back({i, i + 1});
  EXPECT_EQ(forward_count_of(path), 0u);

  Coo cycle = path;
  cycle.edges.push_back({9, 0});
  EXPECT_EQ(forward_count_of(cycle), 0u);

  Coo c3;
  c3.num_vertices = 3;
  c3.edges = {{0, 1}, {1, 2}, {2, 0}};
  EXPECT_EQ(forward_count_of(c3), 1u);
}

TEST(CpuReference, BipartiteGraphHasNone) {
  Coo g;
  g.num_vertices = 12;
  for (VertexId a = 0; a < 6; ++a) {
    for (VertexId b = 6; b < 12; ++b) g.edges.push_back({a, b});
  }
  EXPECT_EQ(forward_count_of(g), 0u);
}

TEST(CpuReference, PetersenGraphHasNoTriangles) {
  // Classic: 3-regular, girth 5.
  Coo g;
  g.num_vertices = 10;
  for (VertexId i = 0; i < 5; ++i) {
    g.edges.push_back({i, (i + 1) % 5});          // outer cycle
    g.edges.push_back({i, i + 5});                // spokes
    g.edges.push_back({i + 5, (i + 2) % 5 + 5});  // inner pentagram
  }
  EXPECT_EQ(forward_count_of(g), 0u);
}

TEST(CpuReference, TwoMethodsAgreeOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    gen::RmatParams p;
    p.scale = 11;
    p.edges = 8000;
    const Csr und = build_undirected_csr(clean_edges(gen::generate_rmat(p, seed)));
    const auto dag = orient(und, OrientationPolicy::kByDegree).dag;
    EXPECT_EQ(count_triangles_forward(dag), count_triangles_stamped(dag))
        << "seed " << seed;
  }
}

TEST(CpuReference, EmptyGraphCountsZero) {
  EXPECT_EQ(count_triangles_forward(Csr{}), 0u);
  EXPECT_EQ(count_triangles_stamped(Csr{}), 0u);
}

TEST(SortedIntersectionSize, Basics) {
  const std::vector<VertexId> a = {1, 3, 5, 7};
  const std::vector<VertexId> b = {2, 3, 4, 7, 9};
  EXPECT_EQ(sorted_intersection_size(a, b), 2u);
  EXPECT_EQ(sorted_intersection_size(a, {}), 0u);
  EXPECT_EQ(sorted_intersection_size(a, a), 4u);
}

TEST(CpuReference, AddingEdgeAddsItsIntersectionSize) {
  // Property: inserting edge (u,v) into a graph adds exactly
  // |N(u) ∩ N(v)| triangles (degree-orientation recomputed each time).
  gen::RmatParams p;
  p.scale = 9;
  p.edges = 1500;
  Coo coo = clean_edges(gen::generate_rmat(p, 3));
  const Csr und = build_undirected_csr(coo);
  // Find a non-edge with common neighbors.
  for (VertexId u = 0; u < und.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < und.num_vertices(); ++v) {
      if (und.has_edge(u, v)) continue;
      const auto common =
          sorted_intersection_size(und.neighbors(u), und.neighbors(v));
      if (common == 0) continue;
      const std::uint64_t before = forward_count_of(coo);
      Coo bigger = coo;
      bigger.edges.push_back({u, v});
      EXPECT_EQ(forward_count_of(bigger), before + common);
      return;  // one instance suffices
    }
  }
  FAIL() << "no candidate non-edge found";
}

}  // namespace
}  // namespace tcgpu::graph
