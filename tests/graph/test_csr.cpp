#include "graph/csr.hpp"

#include <gtest/gtest.h>

namespace tcgpu::graph {
namespace {

Csr triangle_csr() {
  // 0->{1,2}, 1->{2}, 2->{}
  return Csr({0, 2, 3, 3}, {1, 2, 2});
}

TEST(Csr, EmptyGraphHasZeroVerticesAndEdges) {
  Csr g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, NeighborsAndDegrees) {
  const Csr g = triangle_csr();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 0u);
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(Csr, HasEdgeBinarySearches) {
  const Csr g = triangle_csr();
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(2, 0));
}

TEST(Csr, RejectsEmptyRowPtr) {
  EXPECT_THROW(Csr({}, {}), std::invalid_argument);
}

TEST(Csr, RejectsNonZeroFirstOffset) {
  EXPECT_THROW(Csr({1, 2}, {0, 0}), std::invalid_argument);
}

TEST(Csr, RejectsDecreasingRowPtr) {
  EXPECT_THROW(Csr({0, 2, 1}, {0, 1}), std::invalid_argument);
}

TEST(Csr, RejectsRowPtrColMismatch) {
  EXPECT_THROW(Csr({0, 2}, {0}), std::invalid_argument);
}

TEST(Csr, EqualityIsStructural) {
  EXPECT_EQ(triangle_csr(), triangle_csr());
  EXPECT_NE(triangle_csr(), Csr({0, 1, 3, 3}, {1, 0, 2}));
}

}  // namespace
}  // namespace tcgpu::graph
