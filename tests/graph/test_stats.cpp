#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"

namespace tcgpu::graph {
namespace {

Csr star_plus_edge() {
  // Star center 0 with leaves 1..4, plus edge (1,2).
  Coo coo;
  coo.num_vertices = 5;
  coo.edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}};
  return build_undirected_csr(clean_edges(coo));
}

TEST(Stats, CountsVerticesAndUndirectedEdges) {
  const GraphStats s = compute_stats(star_plus_edge());
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_undirected_edges, 5u);
}

TEST(Stats, AvgDegreeIsTwoEOverV) {
  const GraphStats s = compute_stats(star_plus_edge());
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
}

TEST(Stats, MaxAndMedianDegree) {
  const GraphStats s = compute_stats(star_plus_edge());
  EXPECT_EQ(s.max_degree, 4u);  // the hub
  EXPECT_EQ(s.median_degree, 2u);
}

TEST(Stats, EmptyGraph) {
  const GraphStats s = compute_stats(Csr{});
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_undirected_edges, 0u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 0.0);
}

TEST(DegreeHistogram, SumsToVertexCount) {
  const Csr g = star_plus_edge();
  const auto hist = degree_histogram(g);
  std::uint64_t total = 0;
  for (const auto h : hist) total += h;
  EXPECT_EQ(total, g.num_vertices());
  ASSERT_EQ(hist.size(), 5u);  // max degree 4
  EXPECT_EQ(hist[4], 1u);      // one hub
  EXPECT_EQ(hist[1], 2u);      // leaves 3 and 4
}

}  // namespace
}  // namespace tcgpu::graph
