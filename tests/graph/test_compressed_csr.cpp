// CompressedCsr (graph/csr.hpp): LEB128 delta adjacency round-trips, varint
// width boundaries, and the contract violations the encoder rejects.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gen/er.hpp"
#include "graph/csr.hpp"
#include "graph/orientation.hpp"
#include "graph/prepare.hpp"

namespace tcgpu::graph {
namespace {

Csr csr_of_rows(const std::vector<std::vector<VertexId>>& rows) {
  std::vector<EdgeIndex> row_ptr(rows.size() + 1, 0);
  std::vector<VertexId> col;
  for (std::size_t v = 0; v < rows.size(); ++v) {
    col.insert(col.end(), rows[v].begin(), rows[v].end());
    row_ptr[v + 1] = static_cast<EdgeIndex>(col.size());
  }
  return Csr(std::move(row_ptr), std::move(col));
}

TEST(CompressedCsr, RoundTripsSmallRows) {
  const Csr g = csr_of_rows({{1, 2, 5}, {3}, {}, {4, 1000, 1000000}, {}});
  EXPECT_EQ(CompressedCsr::compress(g).decompress(), g);
}

TEST(CompressedCsr, RoundTripsEmptyGraph) {
  const Csr g = csr_of_rows({});
  const CompressedCsr c = CompressedCsr::compress(g);
  EXPECT_EQ(c.decompress(), g);
  EXPECT_EQ(c.num_edges(), 0u);
  EXPECT_TRUE(c.data().empty());
}

TEST(CompressedCsr, RoundTripsVarintWidthBoundaries) {
  // Encoded value is gap-1, so gaps of 128/129 and 16384/16385 straddle the
  // 1->2 and 2->3 byte LEB128 boundaries; the base (first neighbor) is raw.
  std::vector<VertexId> row;
  VertexId v = 7;
  for (const VertexId gap : {1u, 127u, 128u, 129u, 16383u, 16384u, 16385u,
                             (1u << 21), (1u << 28)}) {
    v += gap;
    row.push_back(v);
  }
  const Csr g = csr_of_rows({{}, row});
  EXPECT_EQ(CompressedCsr::compress(g).decompress(), g);
}

TEST(CompressedCsr, RoundTripsMaxVertexId) {
  const Csr g = csr_of_rows({{0xFFFFFFFEu}, {0, 0xFFFFFFFEu}});
  EXPECT_EQ(CompressedCsr::compress(g).decompress(), g);
}

TEST(CompressedCsr, DenseRowsCompressBelowRawBytes) {
  // Gap-1 deltas of a contiguous run are all zero: one byte per neighbor
  // after the base, vs 4 raw.
  std::vector<VertexId> run(1000);
  for (VertexId i = 0; i < 1000; ++i) run[i] = 10 + i;
  const Csr g = csr_of_rows({run});
  const CompressedCsr c = CompressedCsr::compress(g);
  EXPECT_LT(c.adjacency_bytes(), static_cast<std::uint64_t>(g.num_edges()) * 4);
  EXPECT_EQ(c.decompress(), g);
}

TEST(CompressedCsr, RejectsUnsortedAndDuplicateRows) {
  EXPECT_THROW(CompressedCsr::compress(csr_of_rows({{2, 1}})),
               std::invalid_argument);
  EXPECT_THROW(CompressedCsr::compress(csr_of_rows({{1, 1}})),
               std::invalid_argument);
}

TEST(CompressedCsr, RoundTripsAPreparedDag) {
  Coo raw = gen::generate_er(500, 4'000, 21);
  const PreparedDag prepared =
      prepare_dag(std::move(raw), OrientationPolicy::kByDegree);
  EXPECT_EQ(CompressedCsr::compress(prepared.dag).decompress(), prepared.dag);
}

TEST(VarintAppend, EncodesCanonicalLeb128) {
  std::vector<std::uint8_t> buf;
  varint_append(buf, 0);
  varint_append(buf, 127);
  varint_append(buf, 128);
  varint_append(buf, 300);
  const std::vector<std::uint8_t> want = {0x00, 0x7F, 0x80, 0x01, 0xAC, 0x02};
  EXPECT_EQ(buf, want);
}

}  // namespace
}  // namespace tcgpu::graph
