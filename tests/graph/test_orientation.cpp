#include "graph/orientation.hpp"

#include <gtest/gtest.h>

#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/cpu_reference.hpp"

namespace tcgpu::graph {
namespace {

Csr sample_undirected() {
  gen::RmatParams p;
  p.scale = 10;
  p.edges = 4000;
  return build_undirected_csr(clean_edges(gen::generate_rmat(p, 99)));
}

class OrientationPolicies : public ::testing::TestWithParam<OrientationPolicy> {};

TEST_P(OrientationPolicies, EveryEdgePointsLowToHigh) {
  const Csr und = sample_undirected();
  const auto oriented = orient(und, GetParam(), 5);
  const Csr& dag = oriented.dag;
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (const VertexId v : dag.neighbors(u)) EXPECT_LT(u, v);
  }
}

TEST_P(OrientationPolicies, KeepsExactlyHalfTheDirectedEdges) {
  const Csr und = sample_undirected();
  const auto oriented = orient(und, GetParam(), 5);
  EXPECT_EQ(oriented.dag.num_edges(), und.num_edges() / 2);
  EXPECT_EQ(oriented.dag.num_vertices(), und.num_vertices());
}

TEST_P(OrientationPolicies, RelabelingIsAPermutation) {
  const Csr und = sample_undirected();
  const auto oriented = orient(und, GetParam(), 5);
  std::vector<bool> seen(und.num_vertices(), false);
  for (const VertexId old : oriented.new_to_old) {
    ASSERT_LT(old, und.num_vertices());
    EXPECT_FALSE(seen[old]);
    seen[old] = true;
  }
}

TEST_P(OrientationPolicies, TriangleCountIsOrientationInvariant) {
  const Csr und = sample_undirected();
  const auto by_id = orient(und, OrientationPolicy::kById);
  const auto mine = orient(und, GetParam(), 17);
  EXPECT_EQ(count_triangles_forward(by_id.dag), count_triangles_forward(mine.dag));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, OrientationPolicies,
                         ::testing::Values(OrientationPolicy::kByDegree,
                                           OrientationPolicy::kById,
                                           OrientationPolicy::kRandom,
                                           OrientationPolicy::kByCore),
                         [](const auto& info) { return to_string(info.param); });

TEST(Orientation, ByDegreeBoundsOutDegreeOnStars) {
  // Star K_{1,100}: center degree 100, leaves degree 1. Degree orientation
  // points every edge leaf -> center, so max out-degree is 1.
  Coo star;
  star.num_vertices = 101;
  for (VertexId leaf = 1; leaf <= 100; ++leaf) star.edges.push_back({0, leaf});
  const Csr und = build_undirected_csr(clean_edges(star));
  const auto oriented = orient(und, OrientationPolicy::kByDegree);
  EdgeIndex max_out = 0;
  for (VertexId u = 0; u < oriented.dag.num_vertices(); ++u) {
    max_out = std::max(max_out, oriented.dag.degree(u));
  }
  EXPECT_EQ(max_out, 1u);
}

TEST(Orientation, RandomPolicyIsSeedDeterministic) {
  const Csr und = sample_undirected();
  const auto a = orient(und, OrientationPolicy::kRandom, 123);
  const auto b = orient(und, OrientationPolicy::kRandom, 123);
  const auto c = orient(und, OrientationPolicy::kRandom, 124);
  EXPECT_EQ(a.dag, b.dag);
  EXPECT_NE(a.dag, c.dag);
}

TEST(Orientation, IdPolicyKeepsIds) {
  const Csr und = sample_undirected();
  const auto oriented = orient(und, OrientationPolicy::kById);
  for (VertexId v = 0; v < und.num_vertices(); ++v) {
    EXPECT_EQ(oriented.new_to_old[v], v);
  }
}

}  // namespace
}  // namespace tcgpu::graph
