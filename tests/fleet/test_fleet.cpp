#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/placer.hpp"
#include "fleet/service.hpp"
#include "serve/selector.hpp"
#include "serve/service.hpp"

namespace tcgpu::fleet {
namespace {

framework::Engine::Config small_engine() {
  framework::Engine::Config cfg;
  cfg.max_edges = 2'000;
  cfg.seed = 42;
  return cfg;
}

serve::QueryRequest dataset_query(std::string name) {
  serve::QueryRequest req;
  req.dataset = std::move(name);
  return req;
}

/// An interconnect so fast that sharding always models as a win — lets the
/// tiny test graphs exercise the sharded path deterministically.
simt::InterconnectSpec free_link() {
  simt::InterconnectSpec net;
  net.name = "test-free";
  net.peer_bandwidth_gbps = 1e9;
  net.latency_us = 0.0;
  return net;
}

// --- M=1 bit-identity against the backend-less service ---------------------

TEST(FleetIdentity, SingleDeviceMatchesPlainServiceExactly) {
  const std::vector<std::string> datasets = {"As-Caida", "Email-EuAll",
                                             "P2p-Gnutella31"};

  framework::Engine plain_engine(small_engine());
  serve::QueryService plain(plain_engine);

  framework::Engine fleet_engine(small_engine());
  Fleet::Config fc;
  fc.devices = 1;
  Fleet fleet(fleet_engine, fc);
  serve::QueryService::Config sc;
  sc.backend = &fleet;
  serve::QueryService backed(fleet_engine, sc);

  for (const auto& name : datasets) {
    const auto a = plain.submit(dataset_query(name)).get();
    const auto b = backed.submit(dataset_query(name)).get();
    ASSERT_EQ(a.status, serve::QueryStatus::kOk) << name;
    ASSERT_EQ(b.status, serve::QueryStatus::kOk) << name;
    // Same pick, same count, same modeled score, same simulated KernelStats
    // — the M=1 fleet path runs the identical Engine::run.
    EXPECT_EQ(a.algorithm, b.algorithm) << name;
    EXPECT_EQ(a.triangles, b.triangles) << name;
    EXPECT_EQ(a.modeled.modeled_ms, b.modeled.modeled_ms) << name;
    EXPECT_EQ(a.stats, b.stats) << name;  // bit-level KernelStats equality
    EXPECT_TRUE(b.valid) << name;
    EXPECT_FALSE(b.sharded) << name;
    EXPECT_EQ(b.placement, "single") << name;
  }
  EXPECT_EQ(plain.decision_table(), backed.decision_table());
  EXPECT_EQ(fleet.counters().sharded_runs, 0u);
}

// --- placement --------------------------------------------------------------

TEST(FleetPlacement, TableIsDeterministicAcrossWorkerCounts) {
  const std::vector<std::string> datasets = {"As-Caida", "Email-EuAll",
                                             "Com-Dblp"};
  std::vector<std::vector<std::pair<std::string, std::string>>> tables;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    framework::Engine engine(small_engine());
    Fleet::Config fc;
    fc.devices = 4;
    fc.shard_min_kernel_ms = 0.0;
    fc.interconnect = free_link();
    Fleet fleet(engine, fc);
    serve::QueryService::Config sc;
    sc.workers = workers;
    sc.backend = &fleet;
    serve::QueryService service(engine, sc);
    // Concurrent submissions; placement must not depend on arrival order.
    std::vector<std::future<serve::QueryReply>> futures;
    for (int round = 0; round < 3; ++round) {
      for (const auto& name : datasets) {
        futures.push_back(service.submit(dataset_query(name)));
      }
    }
    for (auto& f : futures) EXPECT_EQ(f.get().status, serve::QueryStatus::kOk);
    tables.push_back(fleet.placement_table());
  }
  EXPECT_EQ(tables[0], tables[1]);
  EXPECT_EQ(tables[0], tables[2]);
}

TEST(FleetPlacement, ShardedRunCountsExactly) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  fc.devices = 4;
  fc.shard_min_kernel_ms = 0.0;
  fc.min_speedup = 1.0;
  fc.interconnect = free_link();
  Fleet fleet(engine, fc);
  serve::QueryService::Config sc;
  sc.backend = &fleet;
  serve::QueryService service(engine, sc);

  const auto reply = service.submit(dataset_query("As-Caida")).get();
  ASSERT_EQ(reply.status, serve::QueryStatus::kOk);
  EXPECT_TRUE(reply.sharded);
  EXPECT_GT(reply.devices, 1u);
  EXPECT_TRUE(reply.valid);
  EXPECT_EQ(reply.triangles,
            engine.prepare("As-Caida")->reference_triangles);
  EXPECT_EQ(reply.placement.rfind("shard", 0), 0u) << reply.placement;
  EXPECT_EQ(fleet.counters().sharded_runs, 1u);

  // The shard kernel time was charged to the participating slots.
  double busy = 0.0;
  std::uint64_t runs = 0;
  for (const auto& slot : fleet.slots()) {
    busy += slot.busy_ms;
    runs += slot.runs;
  }
  EXPECT_GT(busy, 0.0);
  EXPECT_EQ(runs, reply.devices);
}

TEST(FleetPlacement, TinyKernelsStaySingle) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  fc.devices = 8;  // plenty of peers, but nothing clears the admission bar
  Fleet fleet(engine, fc);
  serve::QueryService::Config sc;
  sc.backend = &fleet;
  serve::QueryService service(engine, sc);
  const auto reply = service.submit(dataset_query("As-Caida")).get();
  ASSERT_EQ(reply.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(reply.sharded);
  EXPECT_EQ(reply.placement, "single");
}

// --- Placer: load-aware scoring and cluster pricing --------------------------

/// Stats dense enough that sharding models as a clear win on a free link
/// (the shape of Web-BerkStan at the default cap).
graph::GraphStats dense_stats() {
  graph::GraphStats s;
  s.num_vertices = 8'172;
  s.num_undirected_edges = 100'000;
  s.avg_out_degree = 12.24;
  s.max_out_degree = 91;
  s.sum_out_degree_sq = 3'137'952;
  s.out_degree_skew = 7.4;
  return s;
}

/// A placer config where every width is admissible: free link, no bars.
Placer::Config open_placer(std::uint32_t devices) {
  Placer::Config pc;
  pc.devices = devices;
  pc.shard_min_kernel_ms = 0.0;
  pc.min_speedup = 1.0;
  pc.interconnect = free_link();
  return pc;
}

TEST(PlacerConfigTest, HostsMustDivideDevices) {
  serve::Selector sel;
  Placer::Config pc;
  pc.devices = 4;
  pc.hosts = 3;
  EXPECT_THROW(Placer(sel, pc), std::invalid_argument);
  pc.hosts = 0;
  EXPECT_THROW(Placer(sel, pc), std::invalid_argument);
  pc.hosts = 2;
  EXPECT_NO_THROW(Placer(sel, pc));
}

TEST(PlacerLoad, IdleFleetReproducesThePureDecision) {
  // The load-aware overload with no queued work is the determinism-contract
  // decide(): same placement, same modeled cost, bit for bit.
  serve::Selector sel;
  Placer placer(sel, open_placer(8));
  const auto ranked = sel.score(dense_stats());
  const auto& best = ranked.front();
  const Placement pure = placer.decide(best.algorithm, best.cost, dense_stats());
  const Placement zeros = placer.decide(best.algorithm, best.cost,
                                        dense_stats(),
                                        std::vector<double>(8, 0.0));
  EXPECT_TRUE(pure.sharded);  // free link, no bars: going wide always models
  EXPECT_EQ(pure.describe(), zeros.describe());
  EXPECT_EQ(pure.shards, zeros.shards);
  EXPECT_DOUBLE_EQ(pure.cost.total_ms, zeros.cost.total_ms);
}

TEST(PlacerLoad, SkewedQueuesPullThePlacementOntoIdleDevices) {
  // Seven devices buried under queued work, one idle: a width-k shard waits
  // for the k-th least-busy device, so every sharded width pays the mountain
  // and the single-device placement (idle device, zero wait) wins — the
  // decision the pure function would never make here.
  serve::Selector sel;
  Placer placer(sel, open_placer(8));
  const auto ranked = sel.score(dense_stats());
  const auto& best = ranked.front();
  std::vector<double> busy(8, 1e9);
  busy[0] = 0.0;
  const Placement loaded =
      placer.decide(best.algorithm, best.cost, dense_stats(), busy);
  EXPECT_FALSE(loaded.sharded);
  EXPECT_EQ(loaded.describe(), "single");
  // Admissibility stayed load-free: the same call on an idle fleet shards.
  EXPECT_TRUE(placer.decide(best.algorithm, best.cost, dense_stats()).sharded);
}

TEST(PlacerCluster, SlowInterHostLinkKeepsPlacementsWithinAHost) {
  serve::Selector sel;
  const auto ranked = sel.score(dense_stats());
  const auto& best = ranked.front();

  Placer flat_placer(sel, open_placer(8));
  const Placement flat = flat_placer.decide(best.algorithm, best.cost,
                                            dense_stats());
  EXPECT_EQ(flat.shards, 8u);  // free flat link: widest width wins

  // Same fleet split 2 x 4 behind a dreadful network: widths that fit one
  // host still price on the free intra link, width 8 pays the inter link —
  // the placer stops at the host boundary.
  Placer::Config cc = open_placer(8);
  cc.hosts = 2;
  cc.inter.name = "test-molasses";
  cc.inter.peer_bandwidth_gbps = 1e-6;
  cc.inter.latency_us = 1e6;
  Placer cluster_placer(sel, cc);
  const Placement within = cluster_placer.decide(best.algorithm, best.cost,
                                                 dense_stats());
  EXPECT_TRUE(within.sharded);
  EXPECT_EQ(within.shards, 4u);
  EXPECT_EQ(within.cost.hosts, 1u);
  EXPECT_EQ(within.describe(), "shard4:range");  // no host suffix intra-host
}

TEST(PlacerCluster, FastInterLinkGoesWideAndLabelsTheHosts) {
  serve::Selector sel;
  const auto ranked = sel.score(dense_stats());
  const auto& best = ranked.front();
  Placer::Config cc = open_placer(8);
  cc.hosts = 2;
  cc.inter = free_link();  // crossing hosts costs nothing
  Placer placer(sel, cc);
  const Placement wide = placer.decide(best.algorithm, best.cost,
                                       dense_stats());
  EXPECT_TRUE(wide.sharded);
  EXPECT_EQ(wide.shards, 8u);
  EXPECT_EQ(wide.cost.hosts, 2u);
  EXPECT_EQ(wide.describe(), "shard8:range:2h");
}

TEST(FleetPlacement, LoadAwareDefaultsOffAndOffTableIsLoadBlind) {
  EXPECT_FALSE(Fleet::Config{}.load_aware);
  // Load-blind fleets latch the same placement table no matter how much (or
  // how unevenly) traffic preceded each decision — the contract the CI
  // placement pins rely on. Run the same datasets through two fleets with
  // very different traffic histories and compare tables.
  const std::vector<std::string> datasets = {"As-Caida", "Email-EuAll",
                                             "Com-Dblp"};
  auto make_config = [] {
    Fleet::Config fc;
    fc.devices = 4;
    fc.shard_min_kernel_ms = 0.0;
    fc.min_speedup = 1.0;
    fc.interconnect = free_link();
    fc.result_cache = false;  // every repeat runs a kernel and charges slots
    return fc;
  };

  framework::Engine cold_engine(small_engine());
  Fleet cold(cold_engine, make_config());
  serve::QueryService::Config sc_cold;
  sc_cold.backend = &cold;
  serve::QueryService cold_service(cold_engine, sc_cold);
  for (const auto& name : datasets) {
    ASSERT_EQ(cold_service.submit(dataset_query(name)).get().status,
              serve::QueryStatus::kOk);
  }

  framework::Engine hot_engine(small_engine());
  Fleet hot(hot_engine, make_config());
  serve::QueryService::Config sc_hot;
  sc_hot.backend = &hot;
  serve::QueryService hot_service(hot_engine, sc_hot);
  // Pile work onto the hot fleet's slots before each new dataset decides.
  for (const auto& name : datasets) {
    for (int round = 0; round < 3; ++round) {
      ASSERT_EQ(hot_service.submit(dataset_query("P2p-Gnutella31")).get().status,
                serve::QueryStatus::kOk);
    }
    ASSERT_EQ(hot_service.submit(dataset_query(name)).get().status,
              serve::QueryStatus::kOk);
  }

  std::vector<std::pair<std::string, std::string>> cold_table;
  for (const auto& row : cold.placement_table()) {
    if (row.first != "P2p-Gnutella31") cold_table.push_back(row);
  }
  std::vector<std::pair<std::string, std::string>> hot_table;
  for (const auto& row : hot.placement_table()) {
    if (row.first != "P2p-Gnutella31") hot_table.push_back(row);
  }
  EXPECT_EQ(cold_table, hot_table);
}

// --- result cache -----------------------------------------------------------

TEST(FleetCache, RepeatHitsSkipTheDeviceAndMutationInvalidates) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  fc.devices = 2;
  Fleet fleet(engine, fc);
  serve::QueryService::Config sc;
  sc.backend = &fleet;
  serve::QueryService service(engine, sc);

  const auto first = service.submit(dataset_query("As-Caida")).get();
  ASSERT_EQ(first.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(first.cache_hit);

  const auto second = service.submit(dataset_query("As-Caida")).get();
  ASSERT_EQ(second.status, serve::QueryStatus::kOk);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.triangles, first.triangles);
  EXPECT_EQ(fleet.cache_counters().hits, 1u);
  // The hit ran no kernel: single_runs stays at the first query's one.
  EXPECT_EQ(fleet.counters().single_runs, 1u);

  // A mutation bumps the version and explicitly invalidates the key...
  auto mut = dataset_query("As-Caida");
  mut.insert_edges = {{0, 1}, {0, 2}, {1, 2}};
  const auto committed = service.submit(std::move(mut)).get();
  ASSERT_EQ(committed.status, serve::QueryStatus::kOk);
  EXPECT_GE(fleet.counters().invalidations, 1u);

  // ...so the next read recomputes at the new version instead of replaying.
  const auto after = service.submit(dataset_query("As-Caida")).get();
  ASSERT_EQ(after.status, serve::QueryStatus::kOk);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.version, committed.version);
  EXPECT_TRUE(after.valid);
}

// --- device slots / capacity ------------------------------------------------

TEST(FleetSlots, CapacityBoundEvictsColdImages) {
  const std::vector<std::string> datasets = {"As-Caida", "Email-EuAll",
                                             "Com-Dblp", "P2p-Gnutella31"};
  // Measure the real accounted image bytes first (upload via one run each),
  // then budget the slot one byte short of all four: at least one eviction
  // is forced, and no single image can exceed the budget.
  std::uint64_t total_bytes = 0;
  {
    framework::Engine probe(small_engine());
    for (const auto& name : datasets) {
      const auto pg = probe.prepare(name);
      probe.run("Polak", pg);
      total_bytes += probe.device_image_bytes(pg);
    }
  }
  ASSERT_GT(total_bytes, 0u);

  framework::Engine engine(small_engine());
  Fleet::Config fc;
  fc.devices = 1;
  fc.device_capacity_bytes = total_bytes - 1;
  Fleet fleet(engine, fc);
  serve::QueryService::Config sc;
  sc.backend = &fleet;
  serve::QueryService service(engine, sc);

  for (const auto& name : datasets) {
    ASSERT_EQ(service.submit(dataset_query(name)).get().status,
              serve::QueryStatus::kOk);
  }
  const auto slot = fleet.slots().at(0);
  EXPECT_GT(slot.evictions, 0u);
  EXPECT_LE(slot.resident_bytes, slot.capacity_bytes);
  EXPECT_EQ(slot.runs, 4u);
}

// --- FleetService: fairness and deadlines ----------------------------------

TEST(FleetServiceTest, ShedsPerTenantAtTheQueueBound) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  Fleet fleet(engine, fc);
  FleetService::Config cfg;
  cfg.dispatchers = 1;
  FleetService service(engine, fleet, cfg);
  TenantPolicy tight;
  tight.queue_limit = 1;
  tight.block_when_full = false;
  service.set_tenant_policy("bounded", tight);

  // Saturate: submissions outpace the single dispatcher; the bounded
  // tenant's overflow sheds with a terminal kRejected reply.
  std::vector<std::future<serve::QueryReply>> futures;
  for (int i = 0; i < 12; ++i) {
    auto req = dataset_query("As-Caida");
    req.tenant = "bounded";
    futures.push_back(service.submit(std::move(req)));
  }
  std::uint64_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (reply.status == serve::QueryStatus::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(reply.status, serve::QueryStatus::kRejected);
      EXPECT_EQ(reply.error, "tenant queue full (shed)");
      EXPECT_EQ(reply.tenant, "bounded");
      ++shed;
    }
  }
  EXPECT_GT(ok, 0u);
  const auto stats = service.tenant_stats().at("bounded");
  EXPECT_EQ(stats.ok, ok);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.ok + stats.shed, 12u);
}

TEST(FleetServiceTest, ExpiredDeadlinesShedBeforeTheKernel) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  Fleet fleet(engine, fc);
  FleetService::Config cfg;
  cfg.dispatchers = 1;
  FleetService service(engine, fleet, cfg);

  // Sub-microsecond deadlines expire in the scheduler queue with certainty;
  // the first query may still win the race to the dispatcher, so assert on
  // the backlog, not every reply.
  std::vector<std::future<serve::QueryReply>> futures;
  for (int i = 0; i < 8; ++i) {
    auto req = dataset_query("As-Caida");
    req.tenant = "slo";
    req.deadline_ms = 1e-6;
    futures.push_back(service.submit(std::move(req)));
  }
  std::uint64_t expired = 0;
  for (auto& f : futures) {
    const auto reply = f.get();
    if (reply.status == serve::QueryStatus::kDeadlineExpired) ++expired;
  }
  EXPECT_GT(expired, 0u);
  EXPECT_EQ(service.tenant_stats().at("slo").expired, expired);
}

TEST(FleetServiceTest, MixedTenantsAllComplete) {
  framework::Engine engine(small_engine());
  Fleet::Config fc;
  fc.devices = 2;
  Fleet fleet(engine, fc);
  FleetService::Config cfg;
  cfg.dispatchers = 2;
  FleetService service(engine, fleet, cfg);
  service.set_tenant_policy("a", TenantPolicy{2.0, 0, true});
  service.set_tenant_policy("b", TenantPolicy{1.0, 0, true});

  std::vector<std::future<serve::QueryReply>> futures;
  for (int i = 0; i < 10; ++i) {
    auto req = dataset_query(i % 2 ? "As-Caida" : "Email-EuAll");
    req.tenant = std::string(i % 2 ? "a" : "b");
    futures.push_back(service.submit(std::move(req)));
  }
  for (auto& f : futures) {
    const auto reply = f.get();
    EXPECT_EQ(reply.status, serve::QueryStatus::kOk);
    EXPECT_TRUE(reply.valid || reply.cache_hit);
  }
  const auto stats = service.tenant_stats();
  EXPECT_EQ(stats.at("a").ok, 5u);
  EXPECT_EQ(stats.at("b").ok, 5u);
}

}  // namespace
}  // namespace tcgpu::fleet
