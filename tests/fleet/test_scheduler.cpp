#include "fleet/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace tcgpu::fleet {
namespace {

TenantPolicy shedding(std::size_t limit, double weight = 1.0) {
  TenantPolicy p;
  p.weight = weight;
  p.queue_limit = limit;
  p.block_when_full = false;
  return p;
}

/// Pushes `n` items for `tenant`, values tenant:index.
void push_n(Scheduler<std::string>& s, const std::string& tenant, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(s.push(tenant, 0, tenant + ":" + std::to_string(i)),
              AdmitResult::kAdmitted);
  }
}

TEST(SchedulerWfq, SaturatedSharesFollowWeights) {
  Scheduler<std::string> s;
  s.set_policy("heavy", shedding(0, 3.0));
  s.set_policy("light", shedding(0, 1.0));
  // Backlog both tenants fully before any dispatch: the pop order is then a
  // pure function of the tags, independent of arrival interleaving.
  push_n(s, "light", 12);
  push_n(s, "heavy", 12);

  std::map<std::string, int> share;
  for (int i = 0; i < 8; ++i) {
    auto v = s.pop();
    ASSERT_TRUE(v.has_value());
    share[v->substr(0, v->find(':'))]++;
  }
  // First 8 dispatch slots split 3:1 — tags advance by 1/3 vs 1.
  EXPECT_EQ(share["heavy"], 6);
  EXPECT_EQ(share["light"], 2);
}

TEST(SchedulerWfq, DispatchOrderIsDeterministic) {
  // Same admission sequence twice -> identical dispatch sequence.
  std::vector<std::string> first, second;
  for (std::vector<std::string>* out : {&first, &second}) {
    Scheduler<std::string> s;
    s.set_policy("a", shedding(0, 2.0));
    s.set_policy("b", shedding(0, 1.0));
    for (int i = 0; i < 6; ++i) {
      std::string payload = "x";
      payload += std::to_string(i);
      ASSERT_EQ(s.push(i % 2 ? "a" : "b", 0, std::move(payload)),
                AdmitResult::kAdmitted);
    }
    while (out->size() < 6) out->push_back(*s.pop());
  }
  EXPECT_EQ(first, second);
}

TEST(SchedulerWfq, IdleTenantBanksNoCredit) {
  Scheduler<std::string> s;
  s.set_policy("busy", shedding(0));
  s.set_policy("late", shedding(0));
  // "busy" runs alone for a while, raising the virtual-time floor.
  push_n(s, "busy", 8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(s.pop().has_value());
  // A late joiner restarts at the floor: with equal weights the next window
  // alternates instead of draining the idle tenant's "saved up" share.
  push_n(s, "busy", 4);
  push_n(s, "late", 4);
  std::map<std::string, int> first_four;
  for (int i = 0; i < 4; ++i) {
    first_four[s.pop()->substr(0, 4)]++;
  }
  EXPECT_EQ(first_four["busy"], 2);
  EXPECT_EQ(first_four["late"], 2);
}

TEST(SchedulerEdf, DeadlineItemsJumpBulkWork) {
  Scheduler<std::string> s;
  s.set_policy("bulk", shedding(0));
  s.set_policy("slo", shedding(0));
  push_n(s, "bulk", 5);
  ASSERT_EQ(s.push("slo", 200, "slo:late"), AdmitResult::kAdmitted);
  ASSERT_EQ(s.push("slo", 100, "slo:urgent"), AdmitResult::kAdmitted);
  // EDF dispatches the deadline heads before any bulk item. Heads pop in
  // per-tenant FIFO order, so "late" (the queue head) goes first, then
  // "urgent" — after which bulk resumes.
  EXPECT_EQ(*s.pop(), "slo:late");
  EXPECT_EQ(*s.pop(), "slo:urgent");
  EXPECT_EQ(s.pop()->substr(0, 4), "bulk");
}

TEST(SchedulerEdf, EarliestDeadlineAcrossTenantsWins) {
  Scheduler<std::string> s;
  ASSERT_EQ(s.push("a", 300, "a:300"), AdmitResult::kAdmitted);
  ASSERT_EQ(s.push("b", 100, "b:100"), AdmitResult::kAdmitted);
  ASSERT_EQ(s.push("c", 200, "c:200"), AdmitResult::kAdmitted);
  EXPECT_EQ(*s.pop(), "b:100");
  EXPECT_EQ(*s.pop(), "c:200");
  EXPECT_EQ(*s.pop(), "a:300");
}

TEST(SchedulerBackpressure, ShedIsPerTenant) {
  Scheduler<std::string> s;
  s.set_policy("bounded", shedding(2));
  s.set_policy("other", shedding(2));
  ASSERT_EQ(s.push("bounded", 0, "1"), AdmitResult::kAdmitted);
  ASSERT_EQ(s.push("bounded", 0, "2"), AdmitResult::kAdmitted);
  // The bound sheds only this tenant's overflow...
  EXPECT_EQ(s.push("bounded", 0, "3"), AdmitResult::kShed);
  // ...while another tenant still admits.
  EXPECT_EQ(s.push("other", 0, "x"), AdmitResult::kAdmitted);

  const auto counters = s.counters();
  EXPECT_EQ(counters.at("bounded").admitted, 2u);
  EXPECT_EQ(counters.at("bounded").shed, 1u);
  EXPECT_EQ(counters.at("other").admitted, 1u);
  EXPECT_EQ(counters.at("other").shed, 0u);
}

TEST(SchedulerBackpressure, BlockingPushWaitsForPop) {
  Scheduler<std::string> s;
  TenantPolicy blocking;
  blocking.queue_limit = 1;
  blocking.block_when_full = true;
  s.set_policy("t", blocking);
  ASSERT_EQ(s.push("t", 0, "first"), AdmitResult::kAdmitted);

  std::thread pusher([&] {
    EXPECT_EQ(s.push("t", 0, "second"), AdmitResult::kAdmitted);
  });
  // The blocked pusher completes once a slot frees.
  EXPECT_EQ(*s.pop(), "first");
  pusher.join();
  EXPECT_EQ(*s.pop(), "second");
}

TEST(SchedulerShutdown, CloseDrainsThenSignalsEnd) {
  Scheduler<std::string> s;
  push_n(s, "t", 3);
  s.close();
  EXPECT_EQ(s.push("t", 0, "late"), AdmitResult::kClosed);
  // Queued work stays poppable after close; then pop() reports drained.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(s.pop().has_value());
  EXPECT_FALSE(s.pop().has_value());
}

}  // namespace
}  // namespace tcgpu::fleet
