// Direct unit tests of the warp aggregator — lane traces constructed by
// hand, so every grouping rule is pinned without a kernel in the loop.
#include "simt/warp_trace.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

GpuSpec unit_spec() {
  GpuSpec s = GpuSpec::v100();
  s.issue_cycles = 1.0;
  s.global_cycles_per_transaction = 10.0;
  s.l1_hit_cycles = 1.0;
  s.shared_cycles_per_access = 1.0;
  return s;
}

Event ev(std::uint64_t addr, std::uint32_t site, AccessKind kind,
         std::uint8_t size = 4) {
  return {addr, site, kind, size};
}

TEST(WarpAggregator, EmptyFlushCostsNothing) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(agg.flush(m), 0.0);
  EXPECT_EQ(m.warp_steps, 0u);
}

TEST(WarpAggregator, SameSiteSameOccurrenceIsOneRequest) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 32; ++l) {
    agg.lane(l).events.push_back(ev(l * 4, 7, AccessKind::kGlobalLoad));
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 1u);
  EXPECT_EQ(m.global_load_transactions, 4u);  // 128 contiguous bytes
  EXPECT_EQ(m.warp_steps, 1u);
  EXPECT_EQ(m.active_lane_steps, 32u);
}

TEST(WarpAggregator, DifferentSitesAreSeparateRequests) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  agg.lane(0).events.push_back(ev(0, 1, AccessKind::kGlobalLoad));
  agg.lane(1).events.push_back(ev(4, 2, AccessKind::kGlobalLoad));
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 2u);
  EXPECT_EQ(m.warp_steps, 2u);
  EXPECT_EQ(m.active_lane_steps, 2u);
}

TEST(WarpAggregator, OccurrencesAlignInProgramOrder) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  // Two lanes, each issuing two loads at the same site: the first loads of
  // both lanes group, then the second loads.
  agg.lane(0).events.push_back(ev(0, 3, AccessKind::kGlobalLoad));
  agg.lane(0).events.push_back(ev(1024, 3, AccessKind::kGlobalLoad));
  agg.lane(1).events.push_back(ev(4, 3, AccessKind::kGlobalLoad));
  agg.lane(1).events.push_back(ev(1028, 3, AccessKind::kGlobalLoad));
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 2u);
  // Each aligned pair is contiguous -> one sector per request.
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, DivergentLaneCountsGiveMaxSteps) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (int k = 0; k < 5; ++k) {
    agg.lane(0).events.push_back(ev(k * 4, 9, AccessKind::kGlobalLoad));
  }
  agg.lane(1).events.push_back(ev(0, 9, AccessKind::kGlobalLoad));
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.warp_steps, 5u);         // max lane occurrence count
  EXPECT_EQ(m.active_lane_steps, 6u);  // 5 + 1
}

TEST(WarpAggregator, ComputeStepsUseMaxAcrossLanes) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  agg.lane(0).compute_steps = 10;
  agg.lane(5).compute_steps = 4;
  KernelMetrics m;
  const double cycles = agg.flush(m);
  EXPECT_EQ(m.warp_steps, 10u);
  EXPECT_EQ(m.active_lane_steps, 14u);
  EXPECT_DOUBLE_EQ(cycles, 10.0);  // issue-only
}

TEST(WarpAggregator, CacheHitsAreCheaperThanMisses) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  agg.lane(0).events.push_back(ev(0, 11, AccessKind::kGlobalLoad));
  const double miss_cycles = agg.flush(m);
  agg.lane(0).events.push_back(ev(0, 11, AccessKind::kGlobalLoad));
  const double hit_cycles = agg.flush(m);
  EXPECT_GT(miss_cycles, hit_cycles);
  EXPECT_EQ(m.global_dram_transactions, 1u);
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, ResetCacheForcesMissAgain) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  agg.lane(0).events.push_back(ev(0, 13, AccessKind::kGlobalLoad));
  agg.flush(m);
  agg.reset_cache();
  agg.lane(0).events.push_back(ev(0, 13, AccessKind::kGlobalLoad));
  agg.flush(m);
  EXPECT_EQ(m.global_dram_transactions, 2u);
}

TEST(WarpAggregator, SharedConflictDegreeCharged) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  // Four lanes hit bank 0 at distinct words: offsets 0, 128, 256, 384.
  for (std::uint32_t l = 0; l < 4; ++l) {
    agg.lane(l).events.push_back(ev(l * 128, 17, AccessKind::kSharedLoad));
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.shared_load_requests, 1u);
  EXPECT_EQ(m.shared_conflict_cycles, 3u);  // degree 4 => 3 replays
}

TEST(WarpAggregator, AtomicsCountedSeparately) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  agg.lane(0).events.push_back(ev(0, 19, AccessKind::kGlobalAtomic, 8));
  agg.lane(0).events.push_back(ev(64, 21, AccessKind::kSharedAtomic));
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_atomic_requests, 1u);
  EXPECT_EQ(m.shared_atomic_requests, 1u);
  EXPECT_EQ(m.global_load_requests, 0u);
}

TEST(WarpAggregator, LanesAreClearedAfterFlush) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  agg.lane(0).events.push_back(ev(0, 23, AccessKind::kGlobalLoad));
  agg.lane(0).compute_steps = 3;
  KernelMetrics m;
  agg.flush(m);
  EXPECT_TRUE(agg.lane(0).empty());
  const std::uint64_t steps_before = m.warp_steps;
  agg.flush(m);  // nothing recorded since
  EXPECT_EQ(m.warp_steps, steps_before);
}

}  // namespace
}  // namespace tcgpu::simt
