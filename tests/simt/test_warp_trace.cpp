// Direct unit tests of the warp aggregator — lane traces constructed by
// hand, so every grouping rule is pinned without a kernel in the loop.
#include "simt/warp_trace.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

GpuSpec unit_spec() {
  GpuSpec s = GpuSpec::v100();
  s.issue_cycles = 1.0;
  s.global_cycles_per_transaction = 10.0;
  s.l1_hit_cycles = 1.0;
  s.shared_cycles_per_access = 1.0;
  return s;
}

void push(WarpAggregator& agg, std::uint32_t l, std::uint64_t addr,
          std::uint32_t site, AccessKind kind, std::uint8_t size = 4) {
  agg.lane(l).push(addr, site, kind, size);
}

TEST(WarpAggregator, EmptyFlushCostsNothing) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(agg.flush(m), 0.0);
  EXPECT_EQ(m.warp_steps, 0u);
}

TEST(WarpAggregator, SameSiteSameOccurrenceIsOneRequest) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 32; ++l) {
    push(agg, l, l * 4, 7, AccessKind::kGlobalLoad);
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 1u);
  EXPECT_EQ(m.global_load_transactions, 4u);  // 128 contiguous bytes
  EXPECT_EQ(m.warp_steps, 1u);
  EXPECT_EQ(m.active_lane_steps, 32u);
}

TEST(WarpAggregator, DifferentSitesAreSeparateRequests) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  push(agg, 0, 0, 1, AccessKind::kGlobalLoad);
  push(agg, 1, 4, 2, AccessKind::kGlobalLoad);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 2u);
  EXPECT_EQ(m.warp_steps, 2u);
  EXPECT_EQ(m.active_lane_steps, 2u);
}

TEST(WarpAggregator, OccurrencesAlignInProgramOrder) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  // Two lanes, each issuing two loads at the same site: the first loads of
  // both lanes group, then the second loads.
  push(agg, 0, 0, 3, AccessKind::kGlobalLoad);
  push(agg, 0, 1024, 3, AccessKind::kGlobalLoad);
  push(agg, 1, 4, 3, AccessKind::kGlobalLoad);
  push(agg, 1, 1028, 3, AccessKind::kGlobalLoad);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 2u);
  // Each aligned pair is contiguous -> one sector per request.
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, DivergentLaneCountsGiveMaxSteps) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (int k = 0; k < 5; ++k) {
    push(agg, 0, k * 4, 9, AccessKind::kGlobalLoad);
  }
  push(agg, 1, 0, 9, AccessKind::kGlobalLoad);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.warp_steps, 5u);         // max lane occurrence count
  EXPECT_EQ(m.active_lane_steps, 6u);  // 5 + 1
}

TEST(WarpAggregator, ComputeStepsUseMaxAcrossLanes) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  agg.lane(0).compute_steps = 10;
  agg.lane(5).compute_steps = 4;
  KernelMetrics m;
  const double cycles = agg.flush(m);
  EXPECT_EQ(m.warp_steps, 10u);
  EXPECT_EQ(m.active_lane_steps, 14u);
  EXPECT_DOUBLE_EQ(cycles, 10.0);  // issue-only
}

TEST(WarpAggregator, CacheHitsAreCheaperThanMisses) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  push(agg, 0, 0, 11, AccessKind::kGlobalLoad);
  const double miss_cycles = agg.flush(m);
  push(agg, 0, 0, 11, AccessKind::kGlobalLoad);
  const double hit_cycles = agg.flush(m);
  EXPECT_GT(miss_cycles, hit_cycles);
  EXPECT_EQ(m.global_dram_transactions, 1u);
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, ResetCacheForcesMissAgain) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  push(agg, 0, 0, 13, AccessKind::kGlobalLoad);
  agg.flush(m);
  agg.reset_cache();
  push(agg, 0, 0, 13, AccessKind::kGlobalLoad);
  agg.flush(m);
  EXPECT_EQ(m.global_dram_transactions, 2u);
}

TEST(WarpAggregator, GenerationStampedResetIsSoundAcrossManyResets) {
  // The O(1) reset must behave exactly like a full invalidation every time:
  // the same sector misses once per generation, and entries installed in an
  // old generation are never read back as live.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  KernelMetrics m;
  for (int block = 0; block < 5; ++block) {
    agg.reset_cache();
    push(agg, 0, 0, 13, AccessKind::kGlobalLoad);
    agg.flush(m);
    push(agg, 0, 0, 13, AccessKind::kGlobalLoad);  // same generation: a hit
    agg.flush(m);
  }
  EXPECT_EQ(m.global_dram_transactions, 5u);
  EXPECT_EQ(m.global_load_transactions, 10u);
}

TEST(WarpAggregator, SharedConflictDegreeCharged) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  // Four lanes hit bank 0 at distinct words: offsets 0, 128, 256, 384.
  for (std::uint32_t l = 0; l < 4; ++l) {
    push(agg, l, l * 128, 17, AccessKind::kSharedLoad);
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.shared_load_requests, 1u);
  EXPECT_EQ(m.shared_conflict_cycles, 3u);  // degree 4 => 3 replays
}

TEST(WarpAggregator, BroadcastSharedAccessIsConflictFree) {
  // All 32 lanes reading the same word broadcasts: degree 1, no replays.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 32; ++l) {
    push(agg, l, 64, 18, AccessKind::kSharedLoad);
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.shared_load_requests, 1u);
  EXPECT_EQ(m.shared_conflict_cycles, 0u);
}

TEST(WarpAggregator, MixedBroadcastAndConflictCountsDistinctWords) {
  // 8 lanes on word 0, 8 lanes on word 32 (same bank, different word),
  // 16 lanes on word 1 (another bank): bank 0 serves two distinct words.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 8; ++l) push(agg, l, 0, 19, AccessKind::kSharedLoad);
  for (std::uint32_t l = 8; l < 16; ++l)
    push(agg, l, 32 * 4, 19, AccessKind::kSharedLoad);
  for (std::uint32_t l = 16; l < 32; ++l)
    push(agg, l, 4, 19, AccessKind::kSharedLoad);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.shared_load_requests, 1u);
  EXPECT_EQ(m.shared_conflict_cycles, 1u);  // degree 2 on bank 0
}

TEST(WarpAggregator, StraddlingAccessTouchesBothSectors) {
  // An 8-byte load at byte 28 crosses the 32-byte sector boundary: nvprof
  // counts one transaction per touched sector.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  push(agg, 0, 28, 20, AccessKind::kGlobalLoad, 8);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 1u);
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, StraddlingGroupDedupsSharedSectors) {
  // Lanes 0..15 issue 8-byte loads at 16-byte stride: bytes [16k, 16k+8).
  // 256 bytes touched => 8 distinct sectors, each shared by two lanes.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 16; ++l) {
    push(agg, l, l * 16, 21, AccessKind::kGlobalLoad, 8);
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 1u);
  EXPECT_EQ(m.global_load_transactions, 8u);
}

TEST(WarpAggregator, ScatteredSectorsStillDedupExactly) {
  // Addresses spread far beyond the dedup bitmap's span (and duplicated):
  // the wide-span fallback must still count each distinct sector once.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  const std::uint64_t far = 1ull << 40;  // ~2^35 sectors away
  push(agg, 0, 0, 22, AccessKind::kGlobalLoad);
  push(agg, 1, far, 22, AccessKind::kGlobalLoad);
  push(agg, 2, 0, 22, AccessKind::kGlobalLoad);
  push(agg, 3, far + 4, 22, AccessKind::kGlobalLoad);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 1u);
  EXPECT_EQ(m.global_load_transactions, 2u);
}

TEST(WarpAggregator, ConvergedInterleavedSitesGroupBySite) {
  // Every lane issues [site A, site B, site A] — eligible for the converged
  // fast path. Grouping must still be per (site, occurrence): 2 requests at
  // A, 1 at B, and the A groups stay coalesced.
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  for (std::uint32_t l = 0; l < 32; ++l) {
    push(agg, l, l * 4, 31, AccessKind::kGlobalLoad);
    push(agg, l, 4096 + l * 4, 33, AccessKind::kGlobalLoad);
    push(agg, l, 8192 + l * 4, 31, AccessKind::kGlobalLoad);
  }
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_load_requests, 3u);
  EXPECT_EQ(m.global_load_transactions, 12u);  // 3 groups x 4 sectors
  EXPECT_EQ(m.warp_steps, 3u);
  EXPECT_EQ(m.active_lane_steps, 96u);
}

TEST(WarpAggregator, ConvergedAndDivergentOrderingsAgree) {
  // The same logical warp once fully converged and once with one lane's
  // trailing event withheld (forcing the sorted path): request totals match
  // apart from the one missing lane-31 contribution.
  const GpuSpec spec = unit_spec();
  auto run = [&](bool withhold) {
    WarpAggregator agg(spec);
    KernelMetrics m;
    for (std::uint32_t l = 0; l < 32; ++l) {
      push(agg, l, l * 4, 41, AccessKind::kGlobalLoad);
      if (withhold && l == 31) continue;
      push(agg, l, 4096 + l * 4, 43, AccessKind::kGlobalLoad);
    }
    agg.flush(m);
    return m;
  };
  const KernelMetrics fast = run(false);
  const KernelMetrics sorted = run(true);
  EXPECT_EQ(fast.global_load_requests, 2u);
  EXPECT_EQ(sorted.global_load_requests, 2u);
  EXPECT_EQ(fast.warp_steps, sorted.warp_steps);
  EXPECT_EQ(fast.active_lane_steps, sorted.active_lane_steps + 1);
}

TEST(WarpAggregator, AtomicsCountedSeparately) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  push(agg, 0, 0, 19, AccessKind::kGlobalAtomic, 8);
  push(agg, 0, 64, 21, AccessKind::kSharedAtomic);
  KernelMetrics m;
  agg.flush(m);
  EXPECT_EQ(m.global_atomic_requests, 1u);
  EXPECT_EQ(m.shared_atomic_requests, 1u);
  EXPECT_EQ(m.global_load_requests, 0u);
}

TEST(WarpAggregator, LanesAreClearedAfterFlush) {
  const GpuSpec spec = unit_spec();
  WarpAggregator agg(spec);
  push(agg, 0, 0, 23, AccessKind::kGlobalLoad);
  agg.lane(0).compute_steps = 3;
  KernelMetrics m;
  agg.flush(m);
  EXPECT_TRUE(agg.lane(0).empty());
  const std::uint64_t steps_before = m.warp_steps;
  agg.flush(m);  // nothing recorded since
  EXPECT_EQ(m.warp_steps, steps_before);
}

}  // namespace
}  // namespace tcgpu::simt
