#include "simt/device.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

TEST(Device, AllocReturnsZeroInitializedBuffer) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(100);
  ASSERT_EQ(buf.size(), 100u);
  for (auto v : buf.host_span()) EXPECT_EQ(v, 0u);
}

TEST(Device, BasesAre128ByteAlignedAndDisjoint) {
  Device dev;
  auto a = dev.alloc<std::uint32_t>(3);   // 12 bytes, padded
  auto b = dev.alloc<std::uint64_t>(5);   // 40 bytes
  auto c = dev.alloc<std::uint8_t>(1);
  EXPECT_EQ(a.base_addr() % 128, 0u);
  EXPECT_EQ(b.base_addr() % 128, 0u);
  EXPECT_EQ(c.base_addr() % 128, 0u);
  // No two allocations may share a 32-byte sector.
  EXPECT_GE(b.base_addr(), a.base_addr() + 32);
  EXPECT_GE(c.base_addr(), b.base_addr() + 5 * 8 + 32 - 1);
}

TEST(Device, AddrOfScalesByElementSize) {
  Device dev;
  auto buf = dev.alloc<std::uint64_t>(4);
  EXPECT_EQ(buf.addr_of(0), buf.base_addr());
  EXPECT_EQ(buf.addr_of(3), buf.base_addr() + 24);
}

TEST(Device, HostWritesAreVisibleThroughView) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(8);
  buf.host_span()[5] = 42;
  EXPECT_EQ(buf.host_data()[5], 42u);
}

TEST(Device, TracksBytesAllocated) {
  Device dev;
  dev.alloc<std::uint32_t>(100);
  dev.alloc<std::uint8_t>(7);
  EXPECT_EQ(dev.bytes_allocated(), 407u);
  EXPECT_EQ(dev.allocation_count(), 2u);
  dev.free_all();
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Device, ZeroSizedAllocationIsValid) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Device, AllocationsAreZeroInitialized) {
  Device dev;
  auto buf = dev.alloc<std::uint64_t>(257);
  for (const auto v : buf.host_span()) EXPECT_EQ(v, 0u);
}

TEST(Device, ReleaseToMarkRewindsTheAddressSpace) {
  Device dev;
  dev.alloc<std::uint32_t>(100);
  const auto m = dev.mark();
  auto scratch = dev.alloc<std::uint64_t>(50);
  const std::uint64_t scratch_base = scratch.base_addr();
  dev.release_to(m);
  EXPECT_EQ(dev.allocation_count(), m.allocation_count);
  EXPECT_EQ(dev.bytes_allocated(), m.bytes_allocated);
  // The next allocation lands exactly where the released one did: repeated
  // mark/release cycles replay the same address stream.
  auto again = dev.alloc<std::uint64_t>(50);
  EXPECT_EQ(again.base_addr(), scratch_base);
}

TEST(Device, ReleaseToStaleMarkThrows) {
  Device dev;
  dev.alloc<std::uint32_t>(4);
  const auto m = dev.mark();
  dev.free_all();  // m now names more allocations than exist
  EXPECT_THROW(dev.release_to(m), std::invalid_argument);
}

TEST(Device, ExplicitBaseAddressIsAlignedUpAndSurvivesFreeAll) {
  Device dev(0x12345);  // not 128-byte aligned
  auto a = dev.alloc<std::uint32_t>(1);
  EXPECT_EQ(a.base_addr() % 128, 0u);
  EXPECT_GE(a.base_addr(), 0x12345u);
  EXPECT_LT(a.base_addr(), 0x12345u + 128u);
  const std::uint64_t first = a.base_addr();
  dev.alloc<std::uint32_t>(9);
  dev.free_all();
  // free_all returns to the configured base, not the default one.
  EXPECT_EQ(dev.alloc<std::uint32_t>(1).base_addr(), first);
}

}  // namespace
}  // namespace tcgpu::simt
