#include "simt/device.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

TEST(Device, AllocReturnsZeroInitializedBuffer) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(100);
  ASSERT_EQ(buf.size(), 100u);
  for (auto v : buf.host_span()) EXPECT_EQ(v, 0u);
}

TEST(Device, BasesAre128ByteAlignedAndDisjoint) {
  Device dev;
  auto a = dev.alloc<std::uint32_t>(3);   // 12 bytes, padded
  auto b = dev.alloc<std::uint64_t>(5);   // 40 bytes
  auto c = dev.alloc<std::uint8_t>(1);
  EXPECT_EQ(a.base_addr() % 128, 0u);
  EXPECT_EQ(b.base_addr() % 128, 0u);
  EXPECT_EQ(c.base_addr() % 128, 0u);
  // No two allocations may share a 32-byte sector.
  EXPECT_GE(b.base_addr(), a.base_addr() + 32);
  EXPECT_GE(c.base_addr(), b.base_addr() + 5 * 8 + 32 - 1);
}

TEST(Device, AddrOfScalesByElementSize) {
  Device dev;
  auto buf = dev.alloc<std::uint64_t>(4);
  EXPECT_EQ(buf.addr_of(0), buf.base_addr());
  EXPECT_EQ(buf.addr_of(3), buf.base_addr() + 24);
}

TEST(Device, HostWritesAreVisibleThroughView) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(8);
  buf.host_span()[5] = 42;
  EXPECT_EQ(buf.host_data()[5], 42u);
}

TEST(Device, TracksBytesAllocated) {
  Device dev;
  dev.alloc<std::uint32_t>(100);
  dev.alloc<std::uint8_t>(7);
  EXPECT_EQ(dev.bytes_allocated(), 407u);
  EXPECT_EQ(dev.allocation_count(), 2u);
  dev.free_all();
  EXPECT_EQ(dev.bytes_allocated(), 0u);
}

TEST(Device, ZeroSizedAllocationIsValid) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

}  // namespace
}  // namespace tcgpu::simt
