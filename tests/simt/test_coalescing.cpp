// Pins the memory-model math: requests, transactions, sector dedup, cache
// behaviour, and bank conflicts for known access patterns.
#include <gtest/gtest.h>

#include "simt/launch.hpp"

namespace tcgpu::simt {
namespace {

GpuSpec test_spec() {
  GpuSpec s = GpuSpec::v100();
  s.launch_overhead_us = 0.0;
  return s;
}

TEST(Coalescing, FullyCoalescedWordLoadsAreFourSectorsPerRequest) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1024);
  auto stats = launch_threads(test_spec(), 1, 32, 32, [&](ThreadCtx& ctx,
                                                          std::uint64_t i) {
    (void)ctx.load(buf, i);  // 32 lanes x 4B contiguous = 128B = 4 sectors
  });
  EXPECT_EQ(stats.metrics.global_load_requests, 1u);
  EXPECT_EQ(stats.metrics.global_load_transactions, 4u);
  EXPECT_DOUBLE_EQ(stats.metrics.gld_transactions_per_request(), 4.0);
}

TEST(Coalescing, StrideEightWordsTouches32Sectors) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(32 * 8);
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t i) {
                                (void)ctx.load(buf, i * 8);  // one sector each
                              });
  EXPECT_EQ(stats.metrics.global_load_requests, 1u);
  EXPECT_EQ(stats.metrics.global_load_transactions, 32u);
}

TEST(Coalescing, BroadcastLoadIsOneTransaction) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(64);
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t) {
                                (void)ctx.load(buf, 7);  // same address, all lanes
                              });
  EXPECT_EQ(stats.metrics.global_load_requests, 1u);
  EXPECT_EQ(stats.metrics.global_load_transactions, 1u);
}

TEST(Coalescing, EightByteLoadsDoubleTheSectors) {
  Device dev;
  auto buf = dev.alloc<std::uint64_t>(64);
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t i) {
                                (void)ctx.load(buf, i);  // 32 x 8B = 8 sectors
                              });
  EXPECT_EQ(stats.metrics.global_load_transactions, 8u);
}

TEST(Coalescing, MisalignedStraddleCountsBothSectors) {
  Device dev;
  auto buf = dev.alloc<std::uint8_t>(256);
  // A single 4-byte-wide access... the byte buffer lets us hit offset 30,
  // straddling the sector boundary at 32.
  auto stats = launch_threads(test_spec(), 1, 32, 1,
                              [&](ThreadCtx& ctx, std::uint64_t) {
                                (void)ctx.load(buf, 30);
                                (void)ctx.load(buf, 33);
                              });
  // Two requests, each entirely within one sector apiece... offset 30 is a
  // 1-byte access here (uint8), so: 2 requests, sectors {0} and {1}.
  EXPECT_EQ(stats.metrics.global_load_requests, 2u);
  EXPECT_EQ(stats.metrics.global_load_transactions, 2u);
}

TEST(Coalescing, OccurrenceAlignmentGroupsKthIterationAcrossLanes) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(32 * 4);
  // Lane i loads 4 consecutive words starting at i*4: iteration k across the
  // warp touches addresses {i*4+k} — stride-4 pattern, 16 sectors per step.
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t i) {
                                for (std::uint32_t k = 0; k < 4; ++k) {
                                  (void)ctx.load(buf, i * 4 + k);
                                }
                              });
  EXPECT_EQ(stats.metrics.global_load_requests, 4u);
  EXPECT_EQ(stats.metrics.global_load_transactions, 4u * 16u);
}

TEST(Coalescing, DivergentTrailingLanesShrinkLaterGroups) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(1024);
  // Lane i performs i+1 loads: occurrence k is only issued by lanes >= k.
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t i) {
                                for (std::uint64_t k = 0; k <= i; ++k) {
                                  (void)ctx.load(buf, i);
                                }
                              });
  EXPECT_EQ(stats.metrics.global_load_requests, 32u);  // max lane count
  // Sum of active lanes = 32+31+...+1 = 528 over 32 steps.
  EXPECT_NEAR(stats.metrics.warp_execution_efficiency(), 528.0 / (32.0 * 32.0),
              1e-9);
}

TEST(Cache, RepeatedSectorHitsDoNotReachDram) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(8);
  auto stats = launch_threads(test_spec(), 1, 32, 32,
                              [&](ThreadCtx& ctx, std::uint64_t) {
                                (void)ctx.load(buf, 0);
                                (void)ctx.load(buf, 1);  // same sector again
                              });
  EXPECT_EQ(stats.metrics.global_load_transactions, 2u);
  EXPECT_EQ(stats.metrics.global_dram_transactions, 1u);
}

TEST(Cache, EachBlockStartsCold) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(8);
  auto stats = launch_threads(test_spec(), 4, 32, 4 * 32,
                              [&](ThreadCtx& ctx, std::uint64_t) {
                                (void)ctx.load(buf, 0);
                              });
  // Same sector, but 4 blocks x cold cache = 4 DRAM transactions.
  EXPECT_EQ(stats.metrics.global_dram_transactions, 4u);
}

TEST(SharedBanks, ConflictFreeRowCostsNoExtraCycles) {
  Device dev;
  LaunchConfig cfg{1, 32, 32};
  auto stats = launch_items<NoState>(
      test_spec(), cfg, 1, [&](ThreadCtx& ctx, NoState&, std::uint64_t) {
        auto arr = ctx.shared_array_tagged<std::uint32_t>(0, 64);
        ctx.shared_store(arr, ctx.lane(), ctx.lane());  // one word per bank
      });
  EXPECT_EQ(stats.metrics.shared_store_requests, 1u);
  EXPECT_EQ(stats.metrics.shared_conflict_cycles, 0u);
}

TEST(SharedBanks, StrideTwoWordsIsTwoWayConflict) {
  Device dev;
  LaunchConfig cfg{1, 32, 32};
  auto stats = launch_items<NoState>(
      test_spec(), cfg, 1, [&](ThreadCtx& ctx, NoState&, std::uint64_t) {
        auto arr = ctx.shared_array_tagged<std::uint32_t>(0, 64);
        ctx.shared_store(arr, ctx.lane() * 2, 1u);  // banks 0,2,4,... twice
      });
  EXPECT_EQ(stats.metrics.shared_conflict_cycles, 1u);  // degree 2 => 1 extra
}

TEST(SharedBanks, SameWordBroadcastIsConflictFree) {
  Device dev;
  LaunchConfig cfg{1, 32, 32};
  auto stats = launch_items<NoState>(
      test_spec(), cfg, 1, [&](ThreadCtx& ctx, NoState&, std::uint64_t) {
        auto arr = ctx.shared_array_tagged<std::uint32_t>(0, 64);
        (void)ctx.shared_load(arr, 5);  // every lane, same word
      });
  EXPECT_EQ(stats.metrics.shared_conflict_cycles, 0u);
}

}  // namespace
}  // namespace tcgpu::simt
