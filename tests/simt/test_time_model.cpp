// The execution-time cost model: monotonicity and the knobs that matter.
#include <gtest/gtest.h>

#include "simt/launch.hpp"
#include "simt/profiler.hpp"

#include <sstream>

namespace tcgpu::simt {
namespace {

GpuSpec no_overhead() {
  GpuSpec s = GpuSpec::v100();
  s.launch_overhead_us = 0.0;
  return s;
}

double run_loads(const GpuSpec& spec, std::uint32_t grid, std::uint64_t items,
                 std::uint32_t stride) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(items * stride);
  auto stats = launch_threads(spec, grid, 128, items,
                              [&](ThreadCtx& ctx, std::uint64_t i) {
                                (void)ctx.load(buf, i * stride);
                              });
  return stats.time_ms;
}

TEST(TimeModel, MoreWorkTakesLonger) {
  const auto spec = no_overhead();
  EXPECT_LT(run_loads(spec, 256, 100'000, 1), run_loads(spec, 256, 400'000, 1));
}

TEST(TimeModel, UncoalescedCostsMoreThanCoalesced) {
  const auto spec = no_overhead();
  EXPECT_LT(run_loads(spec, 256, 100'000, 1), run_loads(spec, 256, 100'000, 9));
}

TEST(TimeModel, MoreSmsRunFaster) {
  GpuSpec few = no_overhead();
  few.sm_count = 8;
  GpuSpec many = no_overhead();
  many.sm_count = 80;
  EXPECT_GT(run_loads(few, 320, 400'000, 1), run_loads(many, 320, 400'000, 1));
}

TEST(TimeModel, HigherClockRunsFaster) {
  GpuSpec slow = no_overhead();
  slow.clock_ghz = 1.0;
  GpuSpec fast = no_overhead();
  fast.clock_ghz = 2.0;
  EXPECT_GT(run_loads(slow, 256, 200'000, 1), run_loads(fast, 256, 200'000, 1));
}

TEST(TimeModel, LaunchOverheadIsCharged) {
  GpuSpec spec = no_overhead();
  spec.launch_overhead_us = 100.0;
  const double t = run_loads(spec, 1, 32, 1);
  EXPECT_GE(t, 0.1);  // 100 us = 0.1 ms floor
}

TEST(TimeModel, BandwidthBoundKicksInForStreamingKernels) {
  GpuSpec narrow = no_overhead();
  narrow.mem_bandwidth_gbps = 1.0;  // absurdly narrow DRAM
  const double t_narrow = run_loads(narrow, 256, 400'000, 9);
  const double t_wide = run_loads(no_overhead(), 256, 400'000, 9);
  EXPECT_GT(t_narrow, t_wide * 5);
}

TEST(TimeModel, PresetsDiffer) {
  const auto v100 = GpuSpec::v100();
  const auto ada = GpuSpec::rtx4090();
  EXPECT_NE(v100.sm_count, ada.sm_count);
  EXPECT_GT(ada.shared_mem_per_block, v100.shared_mem_per_block);
  EXPECT_GT(v100.bytes_per_cycle(), 0.0);
}

TEST(Profiler, ReportsPerLaunchAndTotals) {
  Profiler prof;
  KernelStats a;
  a.time_ms = 1.0;
  a.metrics.global_load_requests = 10;
  a.metrics.global_load_transactions = 40;
  KernelStats b;
  b.time_ms = 2.0;
  b.metrics.global_load_requests = 30;
  b.metrics.global_load_transactions = 30;
  prof.record("k1", a);
  prof.record("k2", b);
  EXPECT_EQ(prof.launch_count(), 2u);
  const auto total = prof.total();
  EXPECT_DOUBLE_EQ(total.time_ms, 3.0);
  EXPECT_EQ(total.metrics.global_load_requests, 40u);
  std::ostringstream os;
  prof.report(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("k1"), std::string::npos);
  EXPECT_NE(s.find("k2"), std::string::npos);
  EXPECT_NE(s.find("[total]"), std::string::npos);
}

}  // namespace
}  // namespace tcgpu::simt
