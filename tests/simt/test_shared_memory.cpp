#include "simt/shared_memory.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

TEST(SharedArena, SameSiteReturnsSameStorage) {
  SharedArena arena(1024);
  auto [p1, o1] = arena.get(7, 64, 4);
  auto [p2, o2] = arena.get(7, 64, 4);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(arena.used(), 64u);
}

TEST(SharedArena, DistinctSitesGetDisjointStorage) {
  SharedArena arena(1024);
  auto [p1, o1] = arena.get(1, 100, 4);
  auto [p2, o2] = arena.get(2, 100, 4);
  EXPECT_NE(p1, p2);
  EXPECT_GE(o2, o1 + 100);
}

TEST(SharedArena, RespectsAlignment) {
  SharedArena arena(1024);
  arena.get(1, 3, 1);
  auto [p, off] = arena.get(2, 8, 8);
  (void)p;
  EXPECT_EQ(off % 8, 0u);
}

TEST(SharedArena, ThrowsWhenExhausted) {
  SharedArena arena(128);
  arena.get(1, 100, 4);
  EXPECT_THROW(arena.get(2, 64, 4), std::length_error);
}

TEST(SharedArena, ThrowsOnGrowingResize) {
  SharedArena arena(1024);
  arena.get(1, 64, 4);
  EXPECT_THROW(arena.get(1, 128, 4), std::length_error);
}

TEST(SharedArena, ResetForgetsAllocationsKeepsCapacity) {
  SharedArena arena(256);
  arena.get(1, 200, 4);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_NO_THROW(arena.get(2, 200, 4));
  EXPECT_EQ(arena.capacity(), 256u);
}

TEST(SharedView, OffsetsScaleByElementSize) {
  SharedArena arena(256);
  auto [p, off] = arena.get(1, 64, 8);
  SharedView<std::uint64_t> view(reinterpret_cast<std::uint64_t*>(p), off, 8);
  EXPECT_EQ(view.offset_of(0), off);
  EXPECT_EQ(view.offset_of(3), off + 24u);
  EXPECT_EQ(view.size(), 8u);
}

}  // namespace
}  // namespace tcgpu::simt
