// Launcher semantics: item coverage, phases-as-barriers, group scopes,
// per-item state, atomics, and fault handling.
#include <gtest/gtest.h>

#include <numeric>

#include "simt/launch.hpp"

namespace tcgpu::simt {
namespace {

GpuSpec test_spec() {
  GpuSpec s = GpuSpec::v100();
  s.launch_overhead_us = 0.0;
  return s;
}

TEST(Launch, EveryItemVisitedExactlyOnceThreadScope) {
  Device dev;
  const std::uint64_t n = 10'000;
  auto visits = dev.alloc<std::uint32_t>(n);
  launch_threads(test_spec(), 7, 96, n, [&](ThreadCtx& ctx, std::uint64_t i) {
    ctx.atomic_add(visits, i, 1u);
  });
  for (auto v : visits.host_span()) EXPECT_EQ(v, 1u);
}

TEST(Launch, EveryItemVisitedOncePerLaneWarpScope) {
  Device dev;
  const std::uint64_t n = 300;
  auto visits = dev.alloc<std::uint32_t>(n);
  LaunchConfig cfg{3, 64, 32};
  launch_items<NoState>(test_spec(), cfg, n,
                        [&](ThreadCtx& ctx, NoState&, std::uint64_t i) {
                          ctx.atomic_add(visits, i, 1u);
                        });
  for (auto v : visits.host_span()) EXPECT_EQ(v, 32u);
}

TEST(Launch, EveryItemVisitedOncePerThreadBlockScope) {
  Device dev;
  const std::uint64_t n = 17;
  auto visits = dev.alloc<std::uint32_t>(n);
  LaunchConfig cfg{4, 128, 128};
  launch_items<NoState>(test_spec(), cfg, n,
                        [&](ThreadCtx& ctx, NoState&, std::uint64_t i) {
                          ctx.atomic_add(visits, i, 1u);
                        });
  for (auto v : visits.host_span()) EXPECT_EQ(v, 128u);
}

TEST(Launch, SubWarpGroupsShareAWarpAcrossItems) {
  Device dev;
  const std::uint64_t n = 64;
  auto owner = dev.alloc<std::uint32_t>(n);
  LaunchConfig cfg{1, 32, 8};  // 4 groups per warp
  launch_items<NoState>(test_spec(), cfg, n,
                        [&](ThreadCtx& ctx, NoState&, std::uint64_t i) {
                          if (ctx.group_lane() == 0) {
                            ctx.store(owner, i, ctx.thread_in_block() / 8);
                          }
                        });
  // 4 groups stride over 64 items: item i handled by group i % 4.
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(owner.host_span()[i], i % 4) << "item " << i;
  }
}

TEST(Launch, PhasesActAsBlockBarrier) {
  Device dev;
  const std::uint64_t items = 5;
  auto ok = dev.alloc<std::uint32_t>(items);
  LaunchConfig cfg{2, 64, 64};
  struct State {};
  // Phase 1: thread t writes t into shared[t]. Phase 2: thread t checks the
  // value written by a *different* thread — only correct if all of phase 1
  // completed first.
  launch_items<State>(
      test_spec(), cfg, items,
      [&](ThreadCtx& ctx, State&, std::uint64_t item) {
        auto arr = ctx.shared_array_tagged<std::uint32_t>(0, 64);
        ctx.shared_store(arr, ctx.thread_in_block(),
                         ctx.thread_in_block() + static_cast<std::uint32_t>(item));
      },
      [&](ThreadCtx& ctx, State&, std::uint64_t item) {
        auto arr = ctx.shared_array_tagged<std::uint32_t>(0, 64);
        const std::uint32_t peer = 63 - ctx.thread_in_block();
        const std::uint32_t got = ctx.shared_load(arr, peer);
        if (ctx.thread_in_block() == 0 &&
            got == peer + static_cast<std::uint32_t>(item)) {
          ctx.atomic_add(ok, item, 1u);
        }
      });
  for (std::uint64_t i = 0; i < items; ++i) {
    EXPECT_EQ(ok.host_span()[i], 1u) << "item " << i;
  }
}

TEST(Launch, StateIsValueInitializedPerItem) {
  Device dev;
  auto bad = dev.alloc<std::uint32_t>(1);
  struct State {
    std::uint32_t touched = 0;
  };
  LaunchConfig cfg{1, 32, 32};
  launch_items<State>(
      test_spec(), cfg, 10,
      [&](ThreadCtx& ctx, State& st, std::uint64_t) {
        if (st.touched != 0) ctx.atomic_add(bad, 0, 1u);
        st.touched = 1;
      },
      [&](ThreadCtx& ctx, State& st, std::uint64_t) {
        // ...but persists across phases of the same item.
        if (st.touched != 1) ctx.atomic_add(bad, 0, 1u);
      });
  EXPECT_EQ(bad.host_span()[0], 0u);
}

TEST(Launch, AtomicAddReturnsPriorValue) {
  Device dev;
  auto counter = dev.alloc<std::uint32_t>(1);
  auto seen = dev.alloc<std::uint32_t>(64);
  launch_threads(test_spec(), 1, 64, 64, [&](ThreadCtx& ctx, std::uint64_t i) {
    const std::uint32_t prior = ctx.atomic_add(counter, 0, 1u);
    ctx.store(seen, i, prior);
  });
  // All prior values distinct and in [0, 64).
  std::vector<std::uint32_t> priors(seen.host_span().begin(), seen.host_span().end());
  std::sort(priors.begin(), priors.end());
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(priors[i], i);
}

TEST(Launch, AtomicOrSetsBits) {
  Device dev;
  auto word = dev.alloc<std::uint32_t>(1);
  launch_threads(test_spec(), 1, 32, 32, [&](ThreadCtx& ctx, std::uint64_t i) {
    ctx.atomic_or(word, 0, 1u << i);
  });
  EXPECT_EQ(word.host_span()[0], 0xFFFFFFFFu);
}

TEST(Launch, AtomicCasReturnsOldValue) {
  Device dev;
  auto cell = dev.alloc<std::uint32_t>(1);
  cell.host_span()[0] = 5;
  auto out = dev.alloc<std::uint32_t>(2);
  launch_threads(test_spec(), 1, 32, 1, [&](ThreadCtx& ctx, std::uint64_t) {
    ctx.store(out, 0, ctx.atomic_cas(cell, 0, 5u, 9u));  // succeeds, old 5
    ctx.store(out, 1, ctx.atomic_cas(cell, 0, 5u, 7u));  // fails, old 9
  });
  EXPECT_EQ(out.host_span()[0], 5u);
  EXPECT_EQ(out.host_span()[1], 9u);
  EXPECT_EQ(cell.host_span()[0], 9u);
}

TEST(Launch, OutOfBoundsLoadFaults) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(4);
  EXPECT_THROW(launch_threads(test_spec(), 1, 32, 1,
                              [&](ThreadCtx& ctx, std::uint64_t) {
                                (void)ctx.load(buf, 4);
                              }),
               std::runtime_error);
}

TEST(Launch, SharedOverCapacityFaults) {
  GpuSpec spec = test_spec();
  spec.shared_mem_per_block = 64;
  LaunchConfig cfg{1, 32, 32};
  EXPECT_THROW(
      launch_items<NoState>(spec, cfg, 1,
                            [&](ThreadCtx& ctx, NoState&, std::uint64_t) {
                              (void)ctx.shared_array_tagged<std::uint32_t>(0, 1000);
                            }),
      std::runtime_error);
}

TEST(Launch, BadConfigsRejected) {
  auto noop = [](ThreadCtx&, NoState&, std::uint64_t) {};
  EXPECT_THROW(launch_items<NoState>(test_spec(), LaunchConfig{0, 32, 1}, 1, noop),
               std::invalid_argument);
  EXPECT_THROW(launch_items<NoState>(test_spec(), LaunchConfig{1, 33, 1}, 1, noop),
               std::invalid_argument);
  EXPECT_THROW(launch_items<NoState>(test_spec(), LaunchConfig{1, 64, 3}, 1, noop),
               std::invalid_argument);
  EXPECT_THROW(launch_items<NoState>(test_spec(), LaunchConfig{1, 2048, 2048}, 1, noop),
               std::invalid_argument);
}

TEST(Launch, ZeroItemsIsANoOp) {
  auto stats = launch_threads(test_spec(), 4, 64, 0,
                              [&](ThreadCtx&, std::uint64_t) { FAIL(); });
  EXPECT_EQ(stats.metrics.global_load_requests, 0u);
  EXPECT_DOUBLE_EQ(stats.time_ms, 0.0);
}

TEST(Launch, MetricsAreDeterministicAcrossRuns) {
  Device dev;
  auto buf = dev.alloc<std::uint32_t>(4096);
  auto run = [&] {
    return launch_threads(test_spec(), 16, 128, 4096,
                          [&](ThreadCtx& ctx, std::uint64_t i) {
                            (void)ctx.load(buf, (i * 37) % 4096);
                          });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.metrics.global_load_transactions, b.metrics.global_load_transactions);
  EXPECT_EQ(a.metrics.warp_steps, b.metrics.warp_steps);
  EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
}

}  // namespace
}  // namespace tcgpu::simt
