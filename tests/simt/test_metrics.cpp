#include "simt/metrics.hpp"

#include <gtest/gtest.h>

namespace tcgpu::simt {
namespace {

TEST(Metrics, WarpEfficiencyDefinition) {
  KernelMetrics m;
  m.warp_steps = 10;
  m.active_lane_steps = 160;  // 16 active lanes on average
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency(), 0.5);
}

TEST(Metrics, WarpEfficiencyOfEmptyKernelIsOne) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.warp_execution_efficiency(), 1.0);
}

TEST(Metrics, TransactionsPerRequestDefinition) {
  KernelMetrics m;
  m.global_load_requests = 4;
  m.global_load_transactions = 32;
  EXPECT_DOUBLE_EQ(m.gld_transactions_per_request(), 8.0);
}

TEST(Metrics, TransactionsPerRequestZeroWhenNoLoads) {
  KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.gld_transactions_per_request(), 0.0);
}

TEST(Metrics, AccumulationSumsEveryCounter) {
  KernelMetrics a, b;
  a.global_load_requests = 1;
  a.global_load_transactions = 2;
  a.global_store_requests = 3;
  a.global_store_transactions = 4;
  a.global_atomic_requests = 5;
  a.global_atomic_transactions = 6;
  a.shared_load_requests = 7;
  a.shared_store_requests = 8;
  a.shared_atomic_requests = 9;
  a.shared_conflict_cycles = 10;
  a.warp_steps = 11;
  a.active_lane_steps = 12;
  a.warps_launched = 13;
  b = a;
  b += a;
  EXPECT_EQ(b.global_load_requests, 2u);
  EXPECT_EQ(b.global_load_transactions, 4u);
  EXPECT_EQ(b.global_store_requests, 6u);
  EXPECT_EQ(b.global_store_transactions, 8u);
  EXPECT_EQ(b.global_atomic_requests, 10u);
  EXPECT_EQ(b.global_atomic_transactions, 12u);
  EXPECT_EQ(b.shared_load_requests, 14u);
  EXPECT_EQ(b.shared_store_requests, 16u);
  EXPECT_EQ(b.shared_atomic_requests, 18u);
  EXPECT_EQ(b.shared_conflict_cycles, 20u);
  EXPECT_EQ(b.warp_steps, 22u);
  EXPECT_EQ(b.active_lane_steps, 24u);
  EXPECT_EQ(b.warps_launched, 26u);
}

TEST(Metrics, GlobalTransactionsTotalSpansLoadStoreAtomic) {
  KernelMetrics m;
  m.global_load_transactions = 1;
  m.global_store_transactions = 2;
  m.global_atomic_transactions = 4;
  EXPECT_EQ(m.global_transactions_total(), 7u);
}

TEST(KernelStats, LaunchTimesAdd) {
  KernelStats a, b;
  a.time_ms = 1.5;
  b.time_ms = 2.25;
  a += b;
  EXPECT_DOUBLE_EQ(a.time_ms, 3.75);
}

}  // namespace
}  // namespace tcgpu::simt
