#include "simt/site.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace tcgpu::simt {
namespace {

std::uint32_t id_here() { return site_id(std::source_location::current()); }

TEST(Site, SameCallSiteSameId) {
  std::uint32_t a = 0, b = 0;
  for (int i = 0; i < 3; ++i) {
    const auto id = site_id(std::source_location::current());
    if (i == 0) {
      a = id;
    } else {
      b = id;
      EXPECT_EQ(a, b);
    }
  }
}

TEST(Site, DistinctCallSitesDistinctIds) {
  const auto a = site_id(std::source_location::current());
  const auto b = site_id(std::source_location::current());
  EXPECT_NE(a, b);
}

TEST(Site, StableThroughHelperFunction) {
  const auto a = id_here();
  const auto b = id_here();
  EXPECT_EQ(a, b);
}

TEST(Site, IdsAreSmallDenseIntegers) {
  const auto id = site_id(std::source_location::current());
  EXPECT_GT(id, 0u);
  EXPECT_LT(id, 0x80000000u);  // never collides with tagged shared arrays
  EXPECT_LE(id, site_count());
}

TEST(Site, ConcurrentInterningIsConsistent) {
  constexpr int kThreads = 8;
  const std::source_location loc = std::source_location::current();
  std::vector<std::uint32_t> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { ids[t] = site_id(loc); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[0], ids[t]);
}

}  // namespace
}  // namespace tcgpu::simt
