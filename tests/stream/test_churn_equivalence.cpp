// Randomized churn equivalence: after every committed batch the maintained
// state must equal a from-scratch recompute of the materialized graph —
// global count (CPU forward reference), per-edge support
// (tc::cpu_edge_support), and the version sequence. Plus the determinism
// contract: commits are bit-identical across OMP thread counts, the same
// property tests/tc/test_determinism.cpp pins for the static kernels.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <vector>

#include "framework/runner.hpp"
#include "gen/chung_lu.hpp"
#include "gen/rmat.hpp"
#include "graph/cpu_reference.hpp"
#include "stream/churn.hpp"
#include "stream/dynamic_graph.hpp"
#include "tc/support.hpp"

namespace tcgpu::stream {
namespace {

/// Restores the global OpenMP thread count on scope exit so a failing
/// assertion cannot leak a 1-thread setting into later tests.
class ThreadCountGuard {
 public:
  ThreadCountGuard() {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
#endif
  }
  ~ThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }
  void set(int n) {
#ifdef _OPENMP
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

 private:
  int saved_ = 1;
};

framework::PreparedGraph make_graph(const std::string& family) {
  if (family == "rmat") {
    gen::RmatParams p;
    p.scale = 10;
    p.edges = 8'000;
    return framework::prepare_graph("rmat_churn", gen::generate_rmat(p, 9));
  }
  gen::ChungLuParams p;
  p.vertices = 1'200;
  p.edges = 8'000;
  return framework::prepare_graph("chung_lu_churn",
                                  gen::generate_chung_lu(p, 9));
}

class ChurnEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(ChurnEquivalence, EveryVersionMatchesFreshRecount) {
  const auto pg = make_graph(GetParam());
  DynamicGraph dyn(pg.dag);
  ChurnGenerator churn(2026);

  std::uint64_t expected_version = 0;
  for (int round = 0; round < 6; ++round) {
    const auto ops = churn.next_batch(*dyn.snapshot(), 64);
    const auto cr = dyn.commit(ops);
    if (cr.changed) ++expected_version;
    ASSERT_EQ(cr.version, expected_version);

    const auto snap = dyn.snapshot();
    const auto dag = snap->materialize_dag();
    // Global count: the maintained delta chain vs a fresh CPU reference.
    ASSERT_EQ(dyn.triangles(), graph::count_triangles_forward(dag))
        << GetParam() << " diverged at round " << round;
    ASSERT_EQ(cr.triangles, dyn.triangles());
    // Per-edge support: the folded wedge credits vs a fresh full pass.
    ASSERT_EQ(snap->materialize_support(), tc::cpu_edge_support(dag))
        << GetParam() << " support diverged at round " << round;
  }
}

TEST_P(ChurnEquivalence, DeleteEverythingReachesTheEmptyGraph) {
  const auto pg = make_graph(GetParam());
  DynamicGraph dyn(pg.dag);
  // Drain the graph by deleting its remaining edges in 128-op batches,
  // re-enumerated from the live snapshot each round.
  while (dyn.snapshot()->num_edges() > 0) {
    const auto snap = dyn.snapshot();
    std::vector<EdgeOp> ops;
    for (graph::VertexId u = 0;
         u < snap->num_vertices() && ops.size() < 128; ++u) {
      for (const auto v : snap->neighbors(u)) {
        if (v <= u) continue;  // each undirected edge once
        ops.push_back({u, v, false});
        if (ops.size() == 128) break;
      }
    }
    ASSERT_FALSE(ops.empty());
    const auto cr = dyn.commit(ops);
    ASSERT_EQ(cr.removed, ops.size());
  }
  EXPECT_EQ(dyn.triangles(), 0u);
  EXPECT_EQ(dyn.snapshot()->stats().sum_out_degree_sq, 0u);
  EXPECT_EQ(dyn.snapshot()->stats().max_degree, 0u);
}

TEST_P(ChurnEquivalence, CommitsBitIdenticalAcrossOmpThreadCounts) {
  const auto pg = make_graph(GetParam());

  ThreadCountGuard guard;
  std::vector<std::vector<CommitResult>> runs;
  for (const int threads : {1, 2, 8}) {
    guard.set(threads);
    DynamicGraph dyn(pg.dag);
    ChurnGenerator churn(4242);  // identical op stream per run
    std::vector<CommitResult> commits;
    for (int round = 0; round < 4; ++round) {
      commits.push_back(dyn.commit(churn.next_batch(*dyn.snapshot(), 64)));
    }
    runs.push_back(std::move(commits));
  }

  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[r].size(); ++i) {
      EXPECT_EQ(runs[r][i].triangles, runs[0][i].triangles);
      EXPECT_EQ(runs[r][i].delta_triangles, runs[0][i].delta_triangles);
      EXPECT_EQ(runs[r][i].version, runs[0][i].version);
      // operator== is defaulted: every counter and the double time_ms
      // compare exactly — any schedule-dependent accumulation shows here.
      EXPECT_TRUE(runs[r][i].stats == runs[0][i].stats)
          << GetParam() << ": delta-kernel stats differ at commit " << i
          << " between 1 thread and run " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowerLawFamilies, ChurnEquivalence,
                         ::testing::Values("rmat", "chung_lu"));

}  // namespace
}  // namespace tcgpu::stream
