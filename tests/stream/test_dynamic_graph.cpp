#include "stream/dynamic_graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "framework/runner.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/cpu_reference.hpp"
#include "graph/stats.hpp"
#include "stream/churn.hpp"
#include "tc/support.hpp"

namespace tcgpu::stream {
namespace {

/// Every field, exactly — snapshots must carry the same stats a fresh
/// prepare would compute (the selector re-scores mutated graphs from them).
void expect_stats_eq(const graph::GraphStats& got, const graph::GraphStats& want) {
  EXPECT_EQ(got.num_vertices, want.num_vertices);
  EXPECT_EQ(got.num_undirected_edges, want.num_undirected_edges);
  EXPECT_EQ(got.avg_degree, want.avg_degree);
  EXPECT_EQ(got.max_degree, want.max_degree);
  EXPECT_EQ(got.median_degree, want.median_degree);
  EXPECT_EQ(got.p99_degree, want.p99_degree);
  EXPECT_EQ(got.max_out_degree, want.max_out_degree);
  EXPECT_EQ(got.p99_out_degree, want.p99_out_degree);
  EXPECT_EQ(got.avg_out_degree, want.avg_out_degree);
  EXPECT_EQ(got.sum_out_degree_sq, want.sum_out_degree_sq);
  EXPECT_EQ(got.out_degree_skew, want.out_degree_skew);
}

/// Path 0-1-2 as an id-oriented DAG: one wedge, no triangle.
graph::Csr path_dag() {
  return graph::build_directed_csr(3, {{0, 1}, {1, 2}});
}

framework::PreparedGraph rmat_graph() {
  gen::RmatParams p;
  p.scale = 11;
  p.edges = 15'000;
  return framework::prepare_graph("rmat_stream", gen::generate_rmat(p, 77));
}

TEST(DynamicGraphSeed, MatchesPreparedGraphExactly) {
  const auto pg = rmat_graph();
  DynamicGraph dyn(pg.dag);
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(dyn.triangles(), pg.reference_triangles);
  const auto snap = dyn.snapshot();
  EXPECT_EQ(snap->num_edges(), pg.dag.num_edges());
  EXPECT_EQ(snap->num_vertices(), pg.dag.num_vertices());
  expect_stats_eq(snap->stats(), pg.stats);
  // Round trip: the materialized DAG is the seed DAG.
  EXPECT_EQ(snap->materialize_dag(), pg.dag);
  EXPECT_EQ(snap->materialize_support(), tc::cpu_edge_support(pg.dag));
}

TEST(DynamicGraphSeed, RejectsUnorientedInput) {
  // 1 -> 0 violates the id-orientation contract.
  const auto bad = graph::build_directed_csr(2, {{1, 0}});
  EXPECT_THROW(DynamicGraph dyn(bad), std::invalid_argument);
}

TEST(DynamicGraphCommit, SingleInsertClosesTheWedge) {
  DynamicGraph dyn(path_dag());
  const std::vector<EdgeOp> ops = {{0, 2, true}};
  const auto cr = dyn.commit(ops);
  EXPECT_TRUE(cr.changed);
  EXPECT_EQ(cr.version, 1u);
  EXPECT_EQ(cr.inserted, 1u);
  EXPECT_EQ(cr.delta_triangles, 1);
  EXPECT_EQ(cr.triangles, 1u);
  EXPECT_GT(cr.wedge_jobs, 0u);
  EXPECT_GT(cr.stats.time_ms, 0.0);  // the delta kernel really ran (metered)

  const auto snap = dyn.snapshot();
  EXPECT_TRUE(snap->has_edge(0, 2));
  // Every triangle edge carries support 1.
  EXPECT_EQ(snap->support(0, 1), 1u);
  EXPECT_EQ(snap->support(1, 2), 1u);
  EXPECT_EQ(snap->support(0, 2), 1u);
}

TEST(DynamicGraphCommit, SingleDeleteOpensTheTriangle) {
  const auto tri = graph::build_directed_csr(3, {{0, 1}, {0, 2}, {1, 2}});
  DynamicGraph dyn(tri);
  EXPECT_EQ(dyn.triangles(), 1u);
  const std::vector<EdgeOp> ops = {{1, 0, false}};  // order-insensitive
  const auto cr = dyn.commit(ops);
  EXPECT_EQ(cr.removed, 1u);
  EXPECT_EQ(cr.delta_triangles, -1);
  EXPECT_EQ(cr.triangles, 0u);
  const auto snap = dyn.snapshot();
  EXPECT_FALSE(snap->has_edge(0, 1));
  EXPECT_EQ(snap->support(1, 2), 0u);
  EXPECT_EQ(snap->support(0, 2), 0u);
}

TEST(DynamicGraphCommit, InsertDeleteReinsertWithinOneBatchIsExact) {
  DynamicGraph dyn(path_dag());
  const std::vector<EdgeOp> ops = {
      {0, 2, true}, {0, 2, false}, {0, 2, true}};
  const auto cr = dyn.commit(ops);
  EXPECT_EQ(cr.inserted, 2u);
  EXPECT_EQ(cr.removed, 1u);
  EXPECT_EQ(cr.skipped, 0u);
  EXPECT_EQ(cr.delta_triangles, 1);
  EXPECT_EQ(cr.triangles, 1u);
  EXPECT_EQ(dyn.snapshot()->support(0, 2), 1u);
}

TEST(DynamicGraphCommit, NoOpBatchDoesNotMoveTheVersion) {
  DynamicGraph dyn(path_dag());
  const std::vector<EdgeOp> ops = {
      {1, 1, true},    // self-loop
      {0, 1, true},    // duplicate insert
      {0, 2, false},   // delete of an absent edge
  };
  const auto cr = dyn.commit(ops);
  EXPECT_FALSE(cr.changed);
  EXPECT_EQ(cr.skipped, 3u);
  EXPECT_EQ(cr.version, 0u);
  EXPECT_EQ(dyn.version(), 0u);
  EXPECT_EQ(cr.delta_triangles, 0);
}

TEST(DynamicGraphSnapshots, CopyOnWriteSharesUntouchedSegments) {
  const auto pg = rmat_graph();
  DynamicGraph dyn(pg.dag);
  const auto before = dyn.snapshot();
  ASSERT_GE(before->num_segments(), 2u);

  // A deterministic fresh edge inside segment 0.
  graph::VertexId v = 1;
  while (before->has_edge(0, v)) ++v;
  const std::vector<EdgeOp> ops = {{0, v, true}};
  ASSERT_TRUE(dyn.commit(ops).changed);
  const auto after = dyn.snapshot();

  ASSERT_EQ(after->num_segments(), before->num_segments());
  std::size_t shared = 0;
  for (std::size_t i = 0; i < after->num_segments(); ++i) {
    if (after->segment(i).get() == before->segment(i).get()) ++shared;
  }
  // Segment 0 (both endpoints live there) was rebuilt; the bulk of the
  // graph rode along untouched.
  EXPECT_NE(after->segment(0).get(), before->segment(0).get());
  EXPECT_GT(shared, 0u);
}

TEST(DynamicGraphSnapshots, OldVersionsStayConsistent) {
  DynamicGraph dyn(path_dag());
  const auto v0 = dyn.snapshot();
  const std::vector<EdgeOp> ops = {{0, 2, true}};
  dyn.commit(ops);
  // The reader holding v0 sees the pre-mutation graph, bit for bit.
  EXPECT_EQ(v0->version(), 0u);
  EXPECT_EQ(v0->triangles(), 0u);
  EXPECT_FALSE(v0->has_edge(0, 2));
  EXPECT_EQ(dyn.snapshot()->triangles(), 1u);
}

TEST(DynamicGraphSnapshots, HistoryWindowTrimsOldestVersions) {
  DynamicGraph::Config cfg;
  cfg.history = 2;
  DynamicGraph dyn(path_dag(), cfg);
  for (const graph::VertexId v : {3, 4, 5}) {
    const std::vector<EdgeOp> ops = {{2, v, true}};
    ASSERT_TRUE(dyn.commit(ops).changed);
  }
  EXPECT_EQ(dyn.version(), 3u);
  EXPECT_EQ(dyn.snapshot_at(3)->version(), 3u);  // head
  ASSERT_NE(dyn.snapshot_at(2), nullptr);        // retained
  ASSERT_NE(dyn.snapshot_at(1), nullptr);        // retained
  EXPECT_EQ(dyn.snapshot_at(0), nullptr);        // aged out (history = 2)
}

TEST(DynamicGraphGrowth, InsertBeyondVertexCountGrowsTheGraph) {
  DynamicGraph dyn(path_dag());
  const std::vector<EdgeOp> grow = {{2, 5, true}};
  ASSERT_TRUE(dyn.commit(grow).changed);
  const auto snap = dyn.snapshot();
  EXPECT_EQ(snap->num_vertices(), 6u);
  EXPECT_EQ(snap->stats().num_vertices, 6u);
  EXPECT_EQ(snap->degree(5), 1u);
  EXPECT_EQ(snap->triangles(), 0u);
  // The grown vertex participates in later triangles like any other.
  const std::vector<EdgeOp> close = {{1, 5, true}};
  EXPECT_EQ(dyn.commit(close).delta_triangles, 1);  // {1, 2, 5}
}

TEST(DynamicGraphRecount, RecountCommitIsBitIdenticalToDelta) {
  // Same seed, same churn sequence; one instance commits via the delta
  // kernel, the other recounts from scratch every batch. The contract: both
  // publish bit-identical snapshots (count, stats, DAG, per-edge support) —
  // what lets the serving layer flip modes per batch on pure cost grounds.
  const auto pg = rmat_graph();
  DynamicGraph delta(pg.dag);
  DynamicGraph recount(pg.dag);
  ChurnGenerator churn_a(123), churn_b(123);
  for (int round = 0; round < 3; ++round) {
    const auto batch = churn_a.next_batch(*delta.snapshot(), 64);
    const auto same = churn_b.next_batch(*recount.snapshot(), 64);
    const auto dr = delta.commit(batch, CommitMode::kDelta);
    const auto rr = recount.commit(same, CommitMode::kRecount);
    EXPECT_FALSE(dr.recounted);
    EXPECT_TRUE(rr.recounted);
    EXPECT_EQ(dr.version, rr.version);
    EXPECT_EQ(dr.triangles, rr.triangles);
    EXPECT_EQ(dr.delta_triangles, rr.delta_triangles);
    EXPECT_EQ(dr.inserted, rr.inserted);
    EXPECT_EQ(dr.removed, rr.removed);
  }
  const auto a = delta.snapshot();
  const auto b = recount.snapshot();
  expect_stats_eq(a->stats(), b->stats());
  const auto dag_a = a->materialize_dag();
  const auto dag_b = b->materialize_dag();
  ASSERT_EQ(dag_a.row_ptr(), dag_b.row_ptr());
  ASSERT_EQ(dag_a.col(), dag_b.col());
  EXPECT_EQ(a->materialize_support(), b->materialize_support());
}

TEST(DynamicGraphRecount, RecountNoOpBatchKeepsTheVersion) {
  DynamicGraph dyn(path_dag());
  const std::vector<EdgeOp> noop = {{0, 1, true},  // duplicate insert
                                    {0, 2, false}};  // absent delete
  const auto before = dyn.version();
  const auto res = dyn.commit(noop, CommitMode::kRecount);
  EXPECT_FALSE(res.changed);
  EXPECT_EQ(dyn.version(), before);
}

TEST(DynamicGraphStats, MatchFreshComputeAfterChurn) {
  const auto pg = rmat_graph();
  DynamicGraph dyn(pg.dag);
  ChurnGenerator churn(123);
  for (int round = 0; round < 4; ++round) {
    dyn.commit(churn.next_batch(*dyn.snapshot(), 48));
  }
  const auto snap = dyn.snapshot();
  const auto dag = snap->materialize_dag();

  graph::Coo coo;
  coo.num_vertices = dag.num_vertices();
  for (graph::VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (const auto v : dag.neighbors(u)) coo.edges.emplace_back(u, v);
  }
  auto fresh = graph::compute_stats(graph::build_undirected_csr(coo));
  graph::fold_dag_stats(dag, fresh);
  expect_stats_eq(snap->stats(), fresh);
}

}  // namespace
}  // namespace tcgpu::stream
