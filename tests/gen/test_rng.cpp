#include "gen/rng.hpp"

#include <gtest/gtest.h>

namespace tcgpu::gen {
namespace {

TEST(Rng, SameSeedSameStream) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRealIsInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsRoughlyHalf) {
  SplitMix64 rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  SplitMix64 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace tcgpu::gen
