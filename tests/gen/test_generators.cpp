#include <gtest/gtest.h>

#include "gen/chung_lu.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/star_burst.hpp"
#include "graph/builder.hpp"
#include "graph/stats.hpp"

namespace tcgpu::gen {
namespace {

using graph::build_undirected_csr;
using graph::clean_edges;
using graph::compute_stats;

TEST(Er, ProducesExactlyRequestedDistinctEdges) {
  const auto g = generate_er(1000, 5000, 1);
  EXPECT_EQ(g.edges.size(), 5000u);
  const auto clean = clean_edges(g);
  EXPECT_EQ(clean.edges.size(), 5000u);  // already distinct and loop-free
}

TEST(Er, IsSeedDeterministic) {
  const auto a = generate_er(500, 2000, 9);
  const auto b = generate_er(500, 2000, 9);
  const auto c = generate_er(500, 2000, 10);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(Er, RejectsImpossibleRequests) {
  EXPECT_THROW(generate_er(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(generate_er(10, 100, 0), std::invalid_argument);  // > C(10,2)
}

TEST(Er, CanSaturateTheCompleteGraph) {
  const auto g = generate_er(10, 45, 3);
  EXPECT_EQ(g.edges.size(), 45u);
}

TEST(Rmat, HitsEdgeTargetAndIdRange) {
  RmatParams p;
  p.scale = 12;
  p.edges = 30000;
  const auto g = generate_rmat(p, 4);
  EXPECT_EQ(g.edges.size(), 30000u);
  for (const auto& [u, v] : g.edges) {
    EXPECT_LT(u, 1u << 12);
    EXPECT_LT(v, 1u << 12);
    EXPECT_NE(u, v);
  }
}

TEST(Rmat, SkewedParametersProduceSkewedDegrees) {
  RmatParams p;
  p.scale = 12;
  p.edges = 30000;
  const auto stats =
      compute_stats(build_undirected_csr(clean_edges(generate_rmat(p, 4))));
  // A power-law graph's max degree dwarfs its average.
  EXPECT_GT(stats.max_degree, stats.avg_degree * 10);
}

TEST(Rmat, FoldPinsVertexCount) {
  RmatParams p;
  p.scale = 13;
  p.edges = 30000;
  p.fold_to = 3000;
  const auto g = generate_rmat(p, 4);
  for (const auto& [u, v] : g.edges) {
    EXPECT_LT(u, 3000u);
    EXPECT_LT(v, 3000u);
  }
  const auto stats = compute_stats(build_undirected_csr(clean_edges(g)));
  // Heavy skew still leaves a small share of folded ids untouched; the point
  // is that V lands near the target instead of at the 2^scale id-space size.
  EXPECT_NEAR(static_cast<double>(stats.num_vertices), 3000.0, 450.0);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatParams p;
  p.a = 0.5;
  p.b = 0.3;
  p.c = 0.2;  // sums to 1.0
  EXPECT_THROW(generate_rmat(p, 1), std::invalid_argument);
}

TEST(ChungLu, HitsEdgeTarget) {
  ChungLuParams p;
  p.vertices = 5000;
  p.edges = 20000;
  const auto g = generate_chung_lu(p, 8);
  EXPECT_EQ(g.edges.size(), 20000u);
}

TEST(ChungLu, SteeperExponentMeansMilderTail) {
  ChungLuParams mild;
  mild.vertices = 8000;
  mild.edges = 30000;
  mild.exponent = 2.2;
  ChungLuParams steep = mild;
  steep.exponent = 3.5;
  const auto s_mild =
      compute_stats(build_undirected_csr(clean_edges(generate_chung_lu(mild, 5))));
  const auto s_steep =
      compute_stats(build_undirected_csr(clean_edges(generate_chung_lu(steep, 5))));
  EXPECT_GT(s_mild.max_degree, s_steep.max_degree);
}

TEST(Road, AvgDegreeNearLatticeTarget) {
  RoadParams p;
  p.vertices = 10000;
  const auto stats =
      compute_stats(build_undirected_csr(clean_edges(generate_road(p, 6))));
  EXPECT_GT(stats.avg_degree, 2.0);
  EXPECT_LT(stats.avg_degree, 4.5);
  EXPECT_LE(stats.max_degree, 8u);  // lattices have no hubs
}

TEST(StarBurst, ProducesHubs) {
  StarBurstParams p;
  p.vertices = 20000;
  p.edges = 80000;
  const auto stats =
      compute_stats(build_undirected_csr(clean_edges(generate_star_burst(p, 7))));
  EXPECT_GT(stats.max_degree, 1000u);   // hub
  EXPECT_LE(stats.median_degree, 6u);   // most vertices are leaves
}

TEST(Generators, AllAreSeedDeterministic) {
  RmatParams r;
  r.scale = 10;
  r.edges = 5000;
  EXPECT_EQ(generate_rmat(r, 2).edges, generate_rmat(r, 2).edges);
  ChungLuParams c;
  c.vertices = 2000;
  c.edges = 5000;
  EXPECT_EQ(generate_chung_lu(c, 2).edges, generate_chung_lu(c, 2).edges);
  RoadParams rd;
  rd.vertices = 2000;
  EXPECT_EQ(generate_road(rd, 2).edges, generate_road(rd, 2).edges);
  StarBurstParams s;
  s.vertices = 2000;
  s.edges = 5000;
  EXPECT_EQ(generate_star_burst(s, 2).edges, generate_star_burst(s, 2).edges);
}

}  // namespace
}  // namespace tcgpu::gen
