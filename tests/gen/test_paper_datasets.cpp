#include "gen/paper_datasets.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/stats.hpp"

namespace tcgpu::gen {
namespace {

TEST(PaperDatasets, HasAllNineteenInEdgeOrder) {
  const auto all = paper_datasets();
  ASSERT_EQ(all.size(), 19u);
  EXPECT_EQ(all.front().name, "As-Caida");
  EXPECT_EQ(all.back().name, "Com-Friendster");
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].paper_edges, all[i].paper_edges) << all[i].name;
  }
}

TEST(PaperDatasets, TableTwoSpotChecks) {
  const auto& caida = dataset_by_name("As-Caida");
  EXPECT_EQ(caida.paper_vertices, 16'000u);
  EXPECT_EQ(caida.paper_edges, 43'000u);
  const auto& twitter = dataset_by_name("Twitter");
  EXPECT_EQ(twitter.paper_edges, 1'200'000'000u);
  EXPECT_EQ(dataset_by_name("RoadNet-CA").family, Family::kRoad);
}

TEST(PaperDatasets, LookupThrowsOnUnknownName) {
  EXPECT_THROW(dataset_by_name("Nope"), std::out_of_range);
}

TEST(PaperDatasets, ScaleIsOneBelowCapAndProportionalAbove) {
  const auto& caida = dataset_by_name("As-Caida");
  EXPECT_DOUBLE_EQ(dataset_scale(caida, 100'000), 1.0);
  EXPECT_DOUBLE_EQ(dataset_scale(caida, 0), 1.0);  // 0 = uncapped
  const auto& orkut = dataset_by_name("Com-Orkut");
  EXPECT_NEAR(dataset_scale(orkut, 117'000), 0.001, 1e-6);
}

TEST(PaperDatasets, GenerationRespectsEdgeCap) {
  for (const auto& ds : paper_datasets()) {
    const auto raw = generate_dataset(ds, 50'000, 1);
    const auto clean = graph::clean_edges(raw);
    EXPECT_LE(clean.edges.size(), 55'000u) << ds.name;  // small cleaning slack
    EXPECT_GE(clean.edges.size(), 20'000u) << ds.name;
  }
}

TEST(PaperDatasets, UncappedSmallDatasetMatchesTableTwo) {
  const auto& caida = dataset_by_name("As-Caida");
  const auto stats = graph::compute_stats(
      graph::build_undirected_csr(graph::clean_edges(generate_dataset(caida, 0, 1))));
  EXPECT_NEAR(static_cast<double>(stats.num_undirected_edges), 43'000.0, 4300.0);
  EXPECT_NEAR(static_cast<double>(stats.num_vertices), 16'000.0, 4000.0);
  EXPECT_NEAR(stats.avg_degree, 5.2, 1.5);
}

TEST(PaperDatasets, CappedDatasetsOfSameFamilyAreDistinct) {
  // Regression: same family + same cap must not collapse to one graph.
  const auto a = generate_dataset(dataset_by_name("Com-Lj"), 50'000, 1);
  const auto b = generate_dataset(dataset_by_name("Soc-LiveJ"), 50'000, 1);
  EXPECT_NE(a.edges, b.edges);
}

TEST(PaperDatasets, GenerationIsSeedDeterministic) {
  const auto a = generate_dataset(dataset_by_name("Wiki-Talk"), 50'000, 3);
  const auto b = generate_dataset(dataset_by_name("Wiki-Talk"), 50'000, 3);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(PaperDatasets, DegreeOrderingSurvivesTheCap) {
  // The x-axis story of Figures 11-15: low-degree road vs high-degree
  // social keeps its ordering under a uniform cap.
  const auto road = graph::compute_stats(graph::build_undirected_csr(
      graph::clean_edges(generate_dataset(dataset_by_name("RoadNet-CA"), 60'000, 1))));
  const auto orkut = graph::compute_stats(graph::build_undirected_csr(
      graph::clean_edges(generate_dataset(dataset_by_name("Com-Orkut"), 60'000, 1))));
  EXPECT_LT(road.avg_degree, 4.0);
  EXPECT_GT(orkut.avg_degree, 20.0);
}

TEST(PaperDatasets, FamilyNamesRoundTrip) {
  EXPECT_STREQ(to_string(Family::kRoad), "road");
  EXPECT_STREQ(to_string(Family::kSocial), "social");
  EXPECT_STREQ(to_string(Family::kCommunication), "communication");
}

}  // namespace
}  // namespace tcgpu::gen
