#include "framework/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tcgpu::framework {
namespace {

TEST(ResultTable, RejectsWrongWidthRows) {
  ResultTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_NO_THROW(t.add_row({"x", "y"}));
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(ResultTable, CsvOutput) {
  ResultTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nalpha,1\nbeta,2\n");
}

TEST(ResultTable, JsonOutput) {
  ResultTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"be\"ta", "2"});
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"name\": \"alpha\", \"value\": \"1\"},\n"
            "  {\"name\": \"be\\\"ta\", \"value\": \"2\"}\n"
            "]\n");
}

TEST(ResultTable, AlignedOutputPadsColumns) {
  ResultTable t({"n", "value"});
  t.add_row({"longest-name", "7"});
  std::ostringstream os;
  t.print_aligned(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longest-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);  // header rule
}

TEST(ResultTable, FmtControlsPrecision) {
  EXPECT_EQ(ResultTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(ResultTable::fmt(2.0, 0), "2");
  EXPECT_EQ(ResultTable::fmt(0.5, 4), "0.5000");
}

TEST(ResultTable, RowAccess) {
  ResultTable t({"a"});
  t.add_row({"v"});
  EXPECT_EQ(t.row(0)[0], "v");
}

}  // namespace
}  // namespace tcgpu::framework
