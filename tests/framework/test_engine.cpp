#include "framework/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "framework/sweep.hpp"
#include "gen/er.hpp"

namespace tcgpu::framework {
namespace {

Engine::Config small_config(std::size_t workers = 1) {
  Engine::Config cfg;
  cfg.max_edges = 2'000;
  cfg.seed = 42;
  cfg.workers = workers;
  return cfg;
}

TEST(EngineCache, PrepareRunsPipelineOncePerKey) {
  Engine engine(small_config());
  const auto a = engine.prepare("As-Caida");
  const auto b = engine.prepare("As-Caida");
  EXPECT_EQ(a.get(), b.get());  // the same PreparedGraph, not a copy
  const auto c = engine.counters();
  EXPECT_EQ(c.prepares, 1u);
  EXPECT_EQ(c.prepare_hits, 1u);

  engine.prepare("Wiki-Talk");  // different dataset -> different key
  EXPECT_EQ(engine.counters().prepares, 2u);
}

TEST(EngineCache, KeyIsSensitiveToEveryField) {
  const PrepareKey base{"As-Caida", 2'000, 42, graph::OrientationPolicy::kByDegree};
  PrepareKey k = base;
  EXPECT_EQ(k, base);
  k.dataset = "Wiki-Talk";
  EXPECT_NE(k, base);
  k = base;
  k.max_edges = 2'001;
  EXPECT_NE(k, base);
  k = base;
  k.seed = 43;
  EXPECT_NE(k, base);
  k = base;
  k.policy = graph::OrientationPolicy::kById;
  EXPECT_NE(k, base);
}

TEST(EngineCache, DifferentSeedsPrepareDifferentGraphs) {
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.seed = 7;
  Engine ea(cfg_a), eb(cfg_b);
  const auto ga = ea.prepare("As-Caida");
  const auto gb = eb.prepare("As-Caida");
  EXPECT_NE(ga->dag.col(), gb->dag.col());  // different generated edges
}

TEST(EnginePool, DeviceGraphIsUploadedOnceAcrossAlgorithms) {
  Engine engine(small_config());
  const auto pg = engine.prepare("As-Caida");
  const auto polak = engine.run("Polak", pg);
  const auto trust = engine.run("TRUST", pg);
  EXPECT_TRUE(polak.valid);
  EXPECT_TRUE(trust.valid);
  const auto c = engine.counters();
  EXPECT_EQ(c.uploads, 1u);      // one resident DAG serves both runs
  EXPECT_EQ(c.upload_hits, 1u);  // the second run reused it
  EXPECT_EQ(c.cells, 2u);
}

TEST(EnginePool, TracksBytesUploadedPerResidentImage) {
  Engine engine(small_config());
  const auto pg = engine.prepare("As-Caida");
  EXPECT_EQ(engine.counters().bytes_uploaded, 0u);  // nothing resident yet

  engine.run("Polak", pg);
  const std::uint64_t after_one = engine.counters().bytes_uploaded;
  EXPECT_GT(after_one, 0u);
  engine.run("TRUST", pg);  // pool hit: no new upload, no new bytes
  EXPECT_EQ(engine.counters().bytes_uploaded, after_one);

  const auto pg2 = engine.prepare("Wiki-Talk");
  engine.run("Polak", pg2);  // second resident image adds its own bytes
  EXPECT_GT(engine.counters().bytes_uploaded, after_one);
}

TEST(EnginePool, ResidencyIsUploadedMinusReleasedAtAllTimes) {
  // Regression: bytes_uploaded used to be the only byte counter, so
  // residency could only be inferred as a ratchet. The invariant now is
  // bytes_resident == bytes_uploaded - bytes_released across upload, evict
  // and release — what fleet::DeviceSlot accounting trusts.
  Engine engine(small_config());
  const auto check_invariant = [&] {
    const auto c = engine.counters();
    EXPECT_EQ(c.bytes_resident, c.bytes_uploaded - c.bytes_released);
  };

  const auto pg = engine.prepare("As-Caida");
  EXPECT_EQ(engine.counters().bytes_resident, 0u);
  engine.run("Polak", pg);
  const auto one = engine.counters();
  EXPECT_GT(one.bytes_resident, 0u);
  EXPECT_EQ(one.bytes_released, 0u);
  EXPECT_EQ(engine.device_image_bytes(pg), one.bytes_resident);
  check_invariant();

  const auto pg2 = engine.prepare("Wiki-Talk");
  engine.run("Polak", pg2);
  const auto two = engine.counters();
  EXPECT_GT(two.bytes_resident, one.bytes_resident);
  check_invariant();

  // Releasing one image folds its bytes out of residency — and into the
  // cumulative released counter, never out of bytes_uploaded.
  engine.release_device(pg);
  const auto after_release = engine.counters();
  EXPECT_EQ(after_release.bytes_released, one.bytes_resident);
  EXPECT_EQ(after_release.bytes_resident,
            two.bytes_resident - one.bytes_resident);
  EXPECT_EQ(after_release.bytes_uploaded, two.bytes_uploaded);
  EXPECT_EQ(engine.device_image_bytes(pg), 0u);
  check_invariant();

  // Evicting the cache entry drops the remaining image the same way.
  engine.invalidate("Wiki-Talk");
  const auto after_evict = engine.counters();
  EXPECT_EQ(after_evict.bytes_resident, 0u);
  EXPECT_EQ(after_evict.bytes_released, after_evict.bytes_uploaded);
  check_invariant();

  // Double release is a no-op, not a double subtraction.
  engine.release_device(pg);
  check_invariant();
}

TEST(EnginePool, PooledRunMatchesFreshDeviceRunBitIdentically) {
  // The pool bases per-run scratch at the resident device's mark, so the
  // simulated address stream — and therefore every metric and the modeled
  // time — must equal the legacy fresh-device-per-run path exactly.
  Engine engine(small_config());
  const auto pg = engine.prepare("As-Caida");
  engine.run("TRUST", pg);  // warm the pool; TRUST scratch must not disturb
  const auto pooled = engine.run("GroupTC", pg);
  const auto fresh =
      run_algorithm(*make_algorithm("GroupTC"), *pg, engine.config().spec);
  EXPECT_EQ(pooled.result.triangles, fresh.result.triangles);
  EXPECT_EQ(pooled.result.total, fresh.result.total);
  ASSERT_EQ(pooled.result.launches.size(), fresh.result.launches.size());
  for (std::size_t i = 0; i < pooled.result.launches.size(); ++i) {
    EXPECT_EQ(pooled.result.launches[i].second, fresh.result.launches[i].second);
  }
}

TEST(EngineSweep, PreparesAndUploadsEachDatasetExactlyOnce) {
  auto cfg = small_config();
  cfg.datasets = {"As-Caida", "Wiki-Talk", "RoadNet-CA"};

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    cfg.workers = workers;
    Engine engine(cfg);
    std::ostringstream progress;
    const auto rows = engine.sweep(all_algorithms(), progress);
    ASSERT_EQ(rows.size(), 3u);
    const std::size_t cells = rows.size() * all_algorithms().size();
    const auto c = engine.counters();
    // The exactly-once guarantees: the CPU pipeline ran once per graph and
    // each DAG went to the device once, serial or parallel.
    EXPECT_EQ(c.prepares, 3u) << "workers=" << workers;
    EXPECT_EQ(c.uploads, 3u) << "workers=" << workers;
    EXPECT_EQ(c.upload_hits, cells - 3u) << "workers=" << workers;
    EXPECT_EQ(c.cells, cells) << "workers=" << workers;
    EXPECT_TRUE(engine.all_valid());
    EXPECT_EQ(engine.exit_code(), 0);
  }
}

TEST(EngineSweep, ParallelCellsAreBitIdenticalToSerial) {
  auto serial_cfg = small_config(1);
  auto parallel_cfg = small_config(4);
  serial_cfg.datasets = {"As-Caida", "Wiki-Talk"};
  parallel_cfg.datasets = serial_cfg.datasets;

  Engine serial(serial_cfg), parallel(parallel_cfg);
  std::ostringstream serial_log, parallel_log;
  const auto s = serial.sweep(headline_algorithms(), serial_log);
  const auto p = parallel.sweep(headline_algorithms(), parallel_log);

  ASSERT_EQ(s.size(), p.size());
  for (std::size_t r = 0; r < s.size(); ++r) {
    EXPECT_EQ(s[r].graph->name, p[r].graph->name);
    ASSERT_EQ(s[r].outcomes.size(), p[r].outcomes.size());
    for (std::size_t c = 0; c < s[r].outcomes.size(); ++c) {
      const auto& so = s[r].outcomes[c];
      const auto& po = p[r].outcomes[c];
      EXPECT_EQ(so.algorithm, po.algorithm);
      EXPECT_EQ(so.result.triangles, po.result.triangles);
      EXPECT_EQ(so.valid, po.valid);
      // Bit-identical simulator stats, including the modeled time.
      EXPECT_EQ(so.result.total, po.result.total);
    }
  }
  // Same cells, same order, same text: the progress streams agree too.
  EXPECT_EQ(serial_log.str(), parallel_log.str());
}

TEST(EngineValidation, CountMismatchLatchesAllValidAndExitCode) {
  // An algorithm that is simply wrong: reports 0 triangles for any graph.
  class WrongCounter final : public tc::TriangleCounter {
   public:
    std::string name() const override { return "Wrong"; }
    tc::AlgoTraits traits() const override { return {"edge", "Merge", "fine", 0}; }
    tc::AlgoResult count(simt::Device&, const simt::GpuSpec&,
                         const tc::DeviceGraph&) const override {
      return {};
    }
  };

  Engine engine(small_config());
  const auto pg = engine.prepare_raw("er", gen::generate_er(200, 1'200, 3));
  ASSERT_GT(pg->reference_triangles, 0u);
  EXPECT_TRUE(engine.all_valid());
  const auto out = engine.run(WrongCounter{}, pg);
  EXPECT_FALSE(out.valid);
  EXPECT_FALSE(engine.all_valid());
  EXPECT_EQ(engine.exit_code(), 1);
  // A later valid run must not clear the latch.
  EXPECT_TRUE(engine.run("Polak", pg).valid);
  EXPECT_FALSE(engine.all_valid());
}

TEST(EngineCache, ConcurrentPreparesOfOneKeyRunPipelineOnce) {
  // N threads race prepare() on the same key: the per-entry latch must
  // collapse them into one pipeline run, every thread must get the same
  // PreparedGraph, and a run against the shared handle must be bit-identical
  // to a run in a serial engine.
  constexpr std::size_t kThreads = 8;
  Engine engine(small_config());
  std::vector<Engine::GraphHandle> handles(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { handles[i] = engine.prepare("As-Caida"); });
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& h : handles) {
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h.get(), handles.front().get());
  }
  const auto c = engine.counters();
  EXPECT_EQ(c.prepares, 1u);
  EXPECT_EQ(c.prepare_hits, kThreads - 1);

  Engine serial(small_config());
  const auto hammered = engine.run("Polak", handles.front());
  const auto reference = serial.run("Polak", serial.prepare("As-Caida"));
  EXPECT_EQ(hammered.result.triangles, reference.result.triangles);
  EXPECT_EQ(hammered.result.total, reference.result.total);  // bit-identical
}

TEST(EngineEviction, EvictDropsCacheEntryAndDeviceImage) {
  Engine engine(small_config());
  const auto pg = engine.prepare("As-Caida");
  engine.run("Polak", pg);
  EXPECT_EQ(engine.resident_graphs(), 1u);

  EXPECT_TRUE(engine.evict("As-Caida"));
  EXPECT_EQ(engine.resident_graphs(), 0u);
  EXPECT_EQ(engine.counters().evictions, 1u);
  EXPECT_FALSE(engine.evict("As-Caida"));  // already gone

  // The handle given out before eviction keeps working (re-upload).
  EXPECT_TRUE(engine.run("Polak", pg).valid);
  // Re-preparing reruns the pipeline.
  engine.prepare("As-Caida");
  EXPECT_EQ(engine.counters().prepares, 2u);
}

TEST(EngineEviction, MaxResidentCapEvictsLeastRecentlyUsed) {
  auto cfg = small_config();
  cfg.max_resident = 2;
  Engine engine(cfg);
  engine.prepare("As-Caida");
  engine.prepare("Wiki-Talk");
  EXPECT_EQ(engine.resident_graphs(), 2u);

  engine.prepare("As-Caida");     // touch: As-Caida is now most recent
  engine.prepare("RoadNet-CA");   // pushes past the cap
  EXPECT_EQ(engine.resident_graphs(), 2u);
  EXPECT_EQ(engine.counters().evictions, 1u);

  // Wiki-Talk (least recently used) was the victim; As-Caida survived.
  const auto before = engine.counters().prepares;
  engine.prepare("As-Caida");
  EXPECT_EQ(engine.counters().prepares, before);  // still cached
  engine.prepare("Wiki-Talk");
  EXPECT_EQ(engine.counters().prepares, before + 1);  // was evicted
}

TEST(EngineEviction, ReleaseDeviceDropsPooledImageOfRawGraph) {
  Engine engine(small_config());
  const auto pg = engine.prepare_raw("er", gen::generate_er(100, 400, 3));
  engine.run("Polak", pg);
  EXPECT_EQ(engine.counters().uploads, 1u);

  EXPECT_TRUE(engine.release_device(pg));
  EXPECT_FALSE(engine.release_device(pg));  // already released

  // The next run re-uploads; counts stay correct.
  EXPECT_TRUE(engine.run("Polak", pg).valid);
  EXPECT_EQ(engine.counters().uploads, 2u);
}

TEST(EngineSweep, UnknownDatasetSelectionThrows) {
  auto cfg = small_config();
  cfg.datasets = {"As-Caida", "No-Such-Graph"};
  Engine engine(cfg);
  std::ostringstream progress;
  EXPECT_THROW(engine.sweep(headline_algorithms(), progress), std::out_of_range);
}

TEST(EngineCompat, RunSweepWrapperStillServesLegacyCallers) {
  BenchOptions opt;
  opt.max_edges = 2'000;
  opt.datasets = {"As-Caida"};
  opt.jobs = 1;
  std::vector<AlgorithmEntry> algos = {all_algorithms()[1]};  // Polak
  std::ostringstream progress;
  const auto rows = run_sweep(opt, algos, progress);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].graph->name, "As-Caida");
  EXPECT_TRUE(rows[0].all_valid());
}

}  // namespace
}  // namespace tcgpu::framework
