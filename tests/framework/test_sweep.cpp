#include "framework/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tcgpu::framework {
namespace {

TEST(Sweep, RunsSelectedDatasetsAgainstSelectedAlgorithms) {
  BenchOptions opt;
  opt.max_edges = 5'000;
  opt.datasets = {"As-Caida", "RoadNet-CA"};
  std::vector<AlgorithmEntry> algos;
  for (const auto& e : all_algorithms()) {
    if (e.name == "Polak" || e.name == "TRUST") algos.push_back(e);
  }
  std::ostringstream progress;
  const auto rows = run_sweep(opt, algos, progress);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].graph->name, "As-Caida");
  EXPECT_EQ(rows[1].graph->name, "RoadNet-CA");
  for (const auto& row : rows) {
    ASSERT_EQ(row.outcomes.size(), 2u);
    for (const auto& out : row.outcomes) {
      EXPECT_TRUE(out.valid) << out.algorithm << " on " << out.dataset;
      EXPECT_GT(out.result.total.time_ms, 0.0);
    }
  }
  // Progress log names both datasets and both algorithms.
  const std::string log = progress.str();
  EXPECT_NE(log.find("As-Caida"), std::string::npos);
  EXPECT_NE(log.find("TRUST"), std::string::npos);
}

TEST(Sweep, KeepsPaperDatasetOrder) {
  BenchOptions opt;
  opt.max_edges = 2'000;
  opt.datasets = {"Wiki-Talk", "As-Caida"};  // selection order must not matter
  std::vector<AlgorithmEntry> algos = {all_algorithms()[1]};  // Polak
  std::ostringstream progress;
  const auto rows = run_sweep(opt, algos, progress);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].graph->name, "As-Caida");  // registry order
  EXPECT_EQ(rows[1].graph->name, "Wiki-Talk");
}

TEST(Sweep, EmptySelectionMeansAllNineteen) {
  BenchOptions opt;
  opt.max_edges = 1'000;
  std::vector<AlgorithmEntry> algos = {all_algorithms()[1]};  // Polak only
  std::ostringstream progress;
  const auto rows = run_sweep(opt, algos, progress);
  EXPECT_EQ(rows.size(), 19u);
}

}  // namespace
}  // namespace tcgpu::framework
