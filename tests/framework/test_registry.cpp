#include "framework/registry.hpp"

#include <gtest/gtest.h>

namespace tcgpu::framework {
namespace {

TEST(Registry, HasAllNineAlgorithms) {
  const auto& all = all_algorithms();
  ASSERT_EQ(all.size(), 9u);
  // Table I order (publication year), GroupTC appended.
  EXPECT_EQ(all.front().name, "Green");
  EXPECT_EQ(all[7].name, "TRUST");
  EXPECT_EQ(all.back().name, "GroupTC");
}

TEST(Registry, FactoriesProduceWorkingCounters) {
  for (const auto& e : all_algorithms()) {
    const auto algo = e.make();
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), e.name);
  }
}

TEST(Registry, TraitsMatchTableOne) {
  const auto check = [](const std::string& name, const std::string& iterator,
                        const std::string& intersection,
                        const std::string& granularity, int year) {
    const auto t = make_algorithm(name)->traits();
    EXPECT_EQ(t.iterator, iterator) << name;
    EXPECT_EQ(t.intersection, intersection) << name;
    EXPECT_EQ(t.granularity, granularity) << name;
    EXPECT_EQ(t.year, year) << name;
  };
  check("Green", "edge", "Merge", "fine", 2014);
  check("Polak", "edge", "Merge", "coarse", 2016);
  check("Bisson", "vertex", "BitMap", "coarse", 2017);
  check("TriCore", "edge", "Bin-Search", "fine", 2018);
  check("Fox", "edge", "Merge/Bin-Search", "fine", 2018);
  check("Hu", "vertex", "Bin-Search", "fine", 2019);
  check("H-INDEX", "edge", "Hash", "fine", 2019);
  check("TRUST", "vertex", "Hash", "fine", 2021);
  check("GroupTC", "edge", "Bin-Search", "fine", 2024);
}

TEST(Registry, HeadlineTrioForFigure15) {
  const auto& trio = headline_algorithms();
  ASSERT_EQ(trio.size(), 3u);
  EXPECT_EQ(trio[0].name, "Polak");
  EXPECT_EQ(trio[1].name, "TRUST");
  EXPECT_EQ(trio[2].name, "GroupTC");
}

TEST(Registry, ExtendedSetAppendsVariantsAndLibraryKernels) {
  const auto& ext = extended_algorithms();
  ASSERT_EQ(ext.size(), all_algorithms().size() + 6);
  EXPECT_EQ(ext[all_algorithms().size()].name, "GroupTC-H");
  EXPECT_EQ(ext[all_algorithms().size() + 1].name, "MergePath");
  EXPECT_EQ(ext[all_algorithms().size() + 2].name, "BSR");
  EXPECT_EQ(ext[all_algorithms().size() + 3].name, "BFS-LA");
  EXPECT_EQ(ext[all_algorithms().size() + 4].name, "CMerge");
  EXPECT_EQ(ext.back().name, "CStage");
  const auto algo = make_algorithm("GroupTC-H");
  EXPECT_EQ(algo->traits().intersection, "Hash");
}

TEST(Registry, LibraryKernelTraitsFillTaxonomyCells) {
  const auto check = [](const std::string& name, const std::string& iterator,
                        const std::string& intersection,
                        const std::string& granularity, int year) {
    const auto t = make_algorithm(name)->traits();
    EXPECT_EQ(t.iterator, iterator) << name;
    EXPECT_EQ(t.intersection, intersection) << name;
    EXPECT_EQ(t.granularity, granularity) << name;
    EXPECT_EQ(t.year, year) << name;
  };
  check("MergePath", "edge", "Merge", "fine", 2014);
  check("BSR", "vertex", "BitMap", "coarse", 2019);
  check("BFS-LA", "vertex", "Merge", "coarse", 2019);
  // The compressed-CSR decoders stay in the merge family: decode is a
  // sequential stream read, the same access shape the merge loop already has.
  check("CMerge", "vertex", "Merge", "coarse", 2024);
  check("CStage", "vertex", "Merge", "coarse", 2024);
}

TEST(Registry, PoolIsPaperNinePlusLibraryKernels) {
  const auto& pool = pool_algorithms();
  ASSERT_EQ(pool.size(), all_algorithms().size() + 5);
  for (std::size_t i = 0; i < all_algorithms().size(); ++i) {
    EXPECT_EQ(pool[i].name, all_algorithms()[i].name);
  }
  EXPECT_EQ(pool.back().name, "CStage");
  // GroupTC-H is an ablation variant, not a selectable kernel.
  for (const auto& e : pool) EXPECT_NE(e.name, "GroupTC-H");
}

TEST(Registry, NamePredicateAndValidListAgree) {
  EXPECT_TRUE(is_algorithm_name("Polak"));
  EXPECT_TRUE(is_algorithm_name("BSR"));
  EXPECT_FALSE(is_algorithm_name("cuGraph"));
  const auto& list = valid_algorithm_list();
  for (const auto& e : extended_algorithms()) {
    EXPECT_NE(list.find(e.name), std::string::npos) << e.name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("cuGraph"), std::out_of_range);
}

}  // namespace
}  // namespace tcgpu::framework
