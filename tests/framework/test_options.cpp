#include "framework/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace tcgpu::framework {
namespace {

BenchOptions parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "bench";
  argv.push_back(prog.data());
  for (auto& a : args) argv.push_back(a.data());
  return BenchOptions::parse(static_cast<int>(argv.size()), argv.data());
}

class OptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("TCGPU_EDGE_CAP");
    ::unsetenv("TCGPU_SEED");
    ::unsetenv("TCGPU_JOBS");
  }
};

TEST_F(OptionsTest, Defaults) {
  const auto opt = parse({});
  EXPECT_EQ(opt.max_edges, 100'000u);
  EXPECT_EQ(opt.seed, 42u);
  EXPECT_FALSE(opt.csv);
  EXPECT_EQ(opt.gpu, "v100");
  EXPECT_TRUE(opt.datasets.empty());
}

TEST_F(OptionsTest, ParsesEveryFlag) {
  const auto opt = parse({"--max-edges=1234", "--seed=9", "--csv",
                          "--gpu=rtx4090", "--datasets=As-Caida,Wiki-Talk"});
  EXPECT_EQ(opt.max_edges, 1234u);
  EXPECT_EQ(opt.seed, 9u);
  EXPECT_TRUE(opt.csv);
  EXPECT_EQ(opt.gpu, "rtx4090");
  ASSERT_EQ(opt.datasets.size(), 2u);
  EXPECT_EQ(opt.datasets[0], "As-Caida");
  EXPECT_EQ(opt.datasets[1], "Wiki-Talk");
}

TEST_F(OptionsTest, FullDisablesCap) {
  EXPECT_EQ(parse({"--full"}).max_edges, 0u);
}

TEST_F(OptionsTest, SchedulerAndOutputDefaults) {
  const auto opt = parse({});
  EXPECT_EQ(opt.jobs, 0u);  // auto
  EXPECT_FALSE(opt.json);
}

TEST_F(OptionsTest, ParsesJobsSerialAndJson) {
  EXPECT_EQ(parse({"--jobs=3"}).jobs, 3u);
  EXPECT_EQ(parse({"--serial"}).jobs, 1u);
  EXPECT_TRUE(parse({"--json"}).json);
  // --serial after --jobs wins (last flag, as elsewhere).
  EXPECT_EQ(parse({"--jobs=3", "--serial"}).jobs, 1u);
}

TEST_F(OptionsTest, JobsEnvironmentFallback) {
  ::setenv("TCGPU_JOBS", "2", 1);
  EXPECT_EQ(parse({}).jobs, 2u);
  EXPECT_EQ(parse({"--jobs=5"}).jobs, 5u);  // flag beats env
  ::unsetenv("TCGPU_JOBS");
}

TEST_F(OptionsTest, EnvironmentFallbacks) {
  ::setenv("TCGPU_EDGE_CAP", "777", 1);
  ::setenv("TCGPU_SEED", "5", 1);
  const auto opt = parse({});
  EXPECT_EQ(opt.max_edges, 777u);
  EXPECT_EQ(opt.seed, 5u);
  // Explicit flags beat the environment.
  EXPECT_EQ(parse({"--max-edges=11"}).max_edges, 11u);
  ::unsetenv("TCGPU_EDGE_CAP");
  ::unsetenv("TCGPU_SEED");
}

TEST_F(OptionsTest, UnknownFlagFailsLoudly) {
  EXPECT_THROW(parse({"--max-edgez=5"}), std::invalid_argument);
}

TEST_F(OptionsTest, BadNumbersFailLoudly) {
  EXPECT_THROW(parse({"--max-edges=abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--seed=1x"}), std::invalid_argument);
}

TEST_F(OptionsTest, BadGpuFailsLoudly) {
  EXPECT_THROW(parse({"--gpu=tpu"}), std::invalid_argument);
}

TEST_F(OptionsTest, UnknownDatasetFailsLoudly) {
  // A typo'd selection must not become an empty sweep that exits 0.
  EXPECT_THROW(parse({"--datasets=As-Ciada"}), std::out_of_range);
  EXPECT_THROW(parse({"--datasets=As-Caida,Nope"}), std::out_of_range);
}

TEST_F(OptionsTest, MultiGpuDefaultsMeanSweepEverything) {
  const auto opt = parse({});
  EXPECT_EQ(opt.gpus, 0u);          // 0 = sweep the default device counts
  EXPECT_TRUE(opt.partition.empty());  // "" = all strategies
}

TEST_F(OptionsTest, ParsesGpusAndPartition) {
  const auto opt = parse({"--gpus=4", "--partition=hash"});
  EXPECT_EQ(opt.gpus, 4u);
  EXPECT_EQ(opt.partition, "hash");
  EXPECT_EQ(parse({"--partition=range"}).partition, "range");
  EXPECT_EQ(parse({"--partition=2d"}).partition, "2d");
  EXPECT_EQ(parse({"--gpus=1"}).gpus, 1u);
  EXPECT_EQ(parse({"--gpus=64"}).gpus, 64u);
}

TEST_F(OptionsTest, GpusOutOfRangeFailsLoudly) {
  EXPECT_THROW(parse({"--gpus=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--gpus=65"}), std::invalid_argument);
  EXPECT_THROW(parse({"--gpus=two"}), std::invalid_argument);
}

TEST_F(OptionsTest, BadPartitionFailsLoudly) {
  EXPECT_THROW(parse({"--partition=random"}), std::invalid_argument);
  EXPECT_THROW(parse({"--partition="}), std::invalid_argument);
  EXPECT_THROW(parse({"--partition=RANGE"}), std::invalid_argument);
}

TEST_F(OptionsTest, GoogleBenchmarkFlagsPassThrough) {
  EXPECT_NO_THROW(parse({"--benchmark_filter=BM_Merge"}));
}

TEST_F(OptionsTest, ParsesAlgorithmSelection) {
  const auto opt = parse({"--algos=Polak,TRUST"});
  ASSERT_EQ(opt.algos.size(), 2u);
  EXPECT_EQ(opt.algos[0], "Polak");
  EXPECT_EQ(opt.algos[1], "TRUST");
  // --algo appends a single name; repeatable.
  const auto single = parse({"--algo=GroupTC", "--algo=Polak"});
  ASSERT_EQ(single.algos.size(), 2u);
  EXPECT_EQ(single.algos[0], "GroupTC");
}

TEST_F(OptionsTest, UnknownAlgorithmFailsLoudlyNamingChoices) {
  // A typo'd kernel must fail with the valid names, not run a default.
  try {
    parse({"--algos=Polka"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("Polka"), std::string::npos);
    EXPECT_NE(msg.find("Polak"), std::string::npos);  // lists valid names
  }
  EXPECT_THROW(parse({"--algo=trust"}), std::invalid_argument);  // case matters
}

TEST_F(OptionsTest, UnknownDatasetErrorNamesValidChoices) {
  try {
    parse({"--datasets=As-Ciada"});
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("As-Ciada"), std::string::npos);
    EXPECT_NE(msg.find("As-Caida"), std::string::npos);  // lists valid names
  }
}

TEST_F(OptionsTest, BadNumericErrorNamesFlagAndValue) {
  try {
    parse({"--max-edges=12q"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("max-edges"), std::string::npos);
    EXPECT_NE(msg.find("12q"), std::string::npos);
  }
}

TEST_F(OptionsTest, ParsesPartitionHost) {
  EXPECT_EQ(parse({"--partition=host"}).partition, "host");
  try {
    parse({"--partition=rack"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("host"), std::string::npos);
  }
}

TEST_F(OptionsTest, ParsesHostsAndHostsTimesDevices) {
  const auto def = parse({});
  EXPECT_EQ(def.hosts, 0u);  // 0 = bench default shape
  EXPECT_EQ(parse({"--hosts=2"}).hosts, 2u);
  EXPECT_EQ(parse({"--hosts=2"}).gpus, 0u);  // bare H leaves gpus alone
  // The HostSpec x DeviceSpec spelling pins both dimensions.
  const auto grid = parse({"--hosts=2x4"});
  EXPECT_EQ(grid.hosts, 2u);
  EXPECT_EQ(grid.gpus, 8u);
  const auto wide = parse({"--hosts=8x8"});
  EXPECT_EQ(wide.hosts, 8u);
  EXPECT_EQ(wide.gpus, 64u);
}

TEST_F(OptionsTest, MalformedHostsFailLoudly) {
  EXPECT_THROW(parse({"--hosts=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=65"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=two"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=x4"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=2x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=2x0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--hosts=8x9"}), std::invalid_argument);  // H*D > 64
}

TEST_F(OptionsTest, ParsesInterconnectAndRejectsTyposNamingPresets) {
  EXPECT_TRUE(parse({}).interconnect.empty());  // "" = bench default link
  EXPECT_EQ(parse({"--interconnect=nvlink"}).interconnect, "nvlink");
  EXPECT_EQ(parse({"--interconnect=pcie3"}).interconnect, "pcie3");
  EXPECT_EQ(parse({"--interconnect=eth10g"}).interconnect, "eth10g");
  EXPECT_EQ(parse({"--interconnect=ib-edr"}).interconnect, "ib-edr");
  try {
    parse({"--interconnect=token-ring"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("token-ring"), std::string::npos);
    EXPECT_NE(msg.find("nvlink"), std::string::npos);  // lists the presets
    EXPECT_NE(msg.find("ib-edr"), std::string::npos);
  }
}

TEST_F(OptionsTest, ParsesServeFlags) {
  const auto opt = parse({"--max-resident=3", "--clients=8", "--queries=500",
                          "--check-picks=As-Caida:Polak,Soc-Pokec:TRUST"});
  EXPECT_EQ(opt.max_resident, 3u);
  EXPECT_EQ(opt.clients, 8u);
  EXPECT_EQ(opt.queries, 500u);
  EXPECT_EQ(opt.check_picks, "As-Caida:Polak,Soc-Pokec:TRUST");
  // Defaults leave them off.
  const auto def = parse({});
  EXPECT_EQ(def.max_resident, 0u);
  EXPECT_EQ(def.clients, 0u);
  EXPECT_EQ(def.queries, 0u);
  EXPECT_TRUE(def.check_picks.empty());
  EXPECT_TRUE(def.algos.empty());
}

TEST_F(OptionsTest, ParsesStreamFlags) {
  const auto opt =
      parse({"--mutations=4096", "--stream-batch=1,16,128", "--snapshots=8"});
  EXPECT_EQ(opt.mutations, 4096u);
  ASSERT_EQ(opt.stream_batch.size(), 3u);
  EXPECT_EQ(opt.stream_batch[0], 1u);
  EXPECT_EQ(opt.stream_batch[1], 16u);
  EXPECT_EQ(opt.stream_batch[2], 128u);
  EXPECT_EQ(opt.snapshots, 8u);
  // Defaults leave the bench shape to the binary.
  const auto def = parse({});
  EXPECT_EQ(def.mutations, 0u);
  EXPECT_TRUE(def.stream_batch.empty());
  EXPECT_EQ(def.snapshots, 0u);
}

TEST_F(OptionsTest, StreamFlagsOutOfRangeFailLoudly) {
  EXPECT_THROW(parse({"--mutations=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--mutations=many"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stream-batch="}), std::invalid_argument);
  EXPECT_THROW(parse({"--stream-batch=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stream-batch=16,1048577"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stream-batch=16,x"}), std::invalid_argument);
  EXPECT_THROW(parse({"--snapshots=0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--snapshots=65"}), std::invalid_argument);
}

}  // namespace
}  // namespace tcgpu::framework
