#include "framework/runner.hpp"

#include <gtest/gtest.h>

#include "framework/registry.hpp"
#include "gen/er.hpp"

namespace tcgpu::framework {
namespace {

TEST(Runner, PrepareGraphCleansOrientsAndCounts) {
  graph::Coo raw;
  raw.num_vertices = 6;  // one triangle + junk to clean
  raw.edges = {{0, 1}, {1, 2}, {2, 0}, {0, 0}, {1, 0}, {5, 5}};
  const auto pg = prepare_graph("t", raw);
  EXPECT_EQ(pg.name, "t");
  EXPECT_EQ(pg.stats.num_vertices, 3u);
  EXPECT_EQ(pg.stats.num_undirected_edges, 3u);
  EXPECT_EQ(pg.reference_triangles, 1u);
  for (graph::VertexId u = 0; u < pg.dag.num_vertices(); ++u) {
    for (const graph::VertexId v : pg.dag.neighbors(u)) EXPECT_LT(u, v);
  }
}

TEST(Runner, PrepareDatasetAppliesEdgeCap) {
  const auto& ds = gen::dataset_by_name("Com-Orkut");
  const auto pg = prepare_dataset(ds, 20'000, 7);
  EXPECT_LE(pg.stats.num_undirected_edges, 22'000u);
  EXPECT_GT(pg.stats.num_undirected_edges, 15'000u);
}

TEST(Runner, RunAlgorithmValidatesAgainstReference) {
  const auto pg = prepare_graph("er", gen::generate_er(500, 3000, 3));
  const auto algo = make_algorithm("Polak");
  const auto out = run_algorithm(*algo, pg, simt::GpuSpec::v100());
  EXPECT_TRUE(out.valid);
  EXPECT_EQ(out.result.triangles, pg.reference_triangles);
  EXPECT_EQ(out.algorithm, "Polak");
  EXPECT_EQ(out.dataset, "er");
  EXPECT_GT(out.host_seconds, 0.0);
}

TEST(Runner, SpecForKnowsBothCards) {
  EXPECT_EQ(spec_for("v100").name, "Tesla V100");
  EXPECT_EQ(spec_for("rtx4090").name, "RTX 4090");
  EXPECT_THROW(spec_for("h100"), std::invalid_argument);
}

}  // namespace
}  // namespace tcgpu::framework
