// Capacity instrumentation (framework/capacity.hpp): RSS readings on the
// platforms that expose them, prepare timing/footprint fields on
// PreparedGraph, and the capacity footer of the emit() overload in every
// output format.
#include "framework/capacity.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "framework/report.hpp"
#include "framework/runner.hpp"
#include "gen/er.hpp"

namespace tcgpu::framework {
namespace {

TEST(Capacity, PeakAndCurrentRssArePlausibleOnLinux) {
#if defined(__linux__)
  const double cur = current_rss_mb();
  const double peak = peak_rss_mb();
  EXPECT_GT(cur, 0.0);
  EXPECT_GT(peak, 0.0);
  EXPECT_GE(peak + 0.5, cur);  // watermark can't sit below current (slack
                               // for a racing allocation between reads)
#else
  EXPECT_EQ(current_rss_mb(), 0.0);
  EXPECT_EQ(peak_rss_mb(), 0.0);
#endif
}

TEST(Capacity, ResetIsolatesAStageWhenSupported) {
  if (!reset_peak_rss()) GTEST_SKIP() << "clear_refs not writable here";
  // Touch ~8 MiB; the post-reset watermark must register a growth of at
  // least a few MiB over the post-reset floor.
  const double floor_mb = peak_rss_mb();
  std::vector<char> block(8u << 20, 1);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 2;
  const double after = peak_rss_mb();
  EXPECT_GE(after - floor_mb, 4.0);
}

TEST(Capacity, PreparedGraphCarriesPrepareCost) {
  const graph::Coo raw = gen::generate_er(300, 2'000, 5);
  const PreparedGraph pg = prepare_graph("er", raw);
  EXPECT_GT(pg.prepare_seconds, 0.0);
#if defined(__linux__)
  EXPECT_GT(pg.peak_rss_mb, 0.0);
#endif
}

TEST(Capacity, MoveAndCopyPrepareProduceTheSameGraph) {
  const graph::Coo raw = gen::generate_er(300, 2'000, 9);
  graph::Coo consumed = raw;
  const PreparedGraph a = prepare_graph("er", raw);
  const PreparedGraph b = prepare_graph("er", std::move(consumed));
  EXPECT_EQ(a.dag, b.dag);
  EXPECT_EQ(a.reference_triangles, b.reference_triangles);
}

TEST(CapacityEmit, AppendsAFooterWithoutTouchingThePayload) {
  ResultTable table({"a", "b"});
  table.add_row({"1", "2"});
  const CapacityReport cap{12.5, 4096};

  for (const auto& [flag_json, flag_csv] :
       std::vector<std::pair<bool, bool>>{{false, false}, {false, true},
                                          {true, false}}) {
    BenchOptions opt;
    opt.json = flag_json;
    opt.csv = flag_csv;
    std::ostringstream plain, with_cap;
    emit(table, opt, plain, "t");
    emit(table, opt, with_cap, cap, "t");
    // The footer-less render must be a strict prefix: the table payload is
    // byte-identical and the capacity line only appends.
    ASSERT_EQ(with_cap.str().rfind(plain.str(), 0), 0u);
    const std::string footer = with_cap.str().substr(plain.str().size());
    EXPECT_NE(footer.find("12.5"), std::string::npos) << footer;
    EXPECT_NE(footer.find("4096"), std::string::npos) << footer;
  }
}

}  // namespace
}  // namespace tcgpu::framework
