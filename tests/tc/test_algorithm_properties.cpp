// Property-style invariants that must hold for every algorithm.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/rmat.hpp"

namespace tcgpu::tc {
namespace {

graph::Coo base_graph(std::uint64_t seed = 77) {
  gen::RmatParams p;
  p.scale = 10;
  p.edges = 8000;
  return gen::generate_rmat(p, seed);
}

class EveryAlgorithm : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryAlgorithm, CountIsInvariantUnderVertexRelabeling) {
  const graph::Coo original = base_graph();
  graph::Coo relabeled = original;
  std::vector<graph::VertexId> perm(original.num_vertices);
  std::iota(perm.begin(), perm.end(), graph::VertexId{0});
  std::mt19937_64 rng(5);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (auto& [u, v] : relabeled.edges) {
    u = perm[u];
    v = perm[v];
  }

  const auto algo = framework::make_algorithm(GetParam());
  const auto a = framework::run_algorithm(
      *algo, framework::prepare_graph("orig", original), simt::GpuSpec::v100());
  const auto b = framework::run_algorithm(
      *algo, framework::prepare_graph("perm", relabeled), simt::GpuSpec::v100());
  EXPECT_TRUE(a.valid);
  EXPECT_TRUE(b.valid);
  EXPECT_EQ(a.result.triangles, b.result.triangles);
}

TEST_P(EveryAlgorithm, CountIsInvariantUnderOrientationPolicy) {
  const graph::Coo coo = base_graph();
  const auto algo = framework::make_algorithm(GetParam());
  std::uint64_t counts[3];
  int i = 0;
  for (const auto policy :
       {graph::OrientationPolicy::kByDegree, graph::OrientationPolicy::kById,
        graph::OrientationPolicy::kRandom}) {
    const auto pg = framework::prepare_graph("g", coo, policy);
    const auto out = framework::run_algorithm(*algo, pg, simt::GpuSpec::v100());
    EXPECT_TRUE(out.valid) << to_string(policy);
    counts[i++] = out.result.triangles;
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
}

TEST_P(EveryAlgorithm, RunsAreFullyDeterministic) {
  const auto pg = framework::prepare_graph("g", base_graph());
  const auto algo = framework::make_algorithm(GetParam());
  const auto a = framework::run_algorithm(*algo, pg, simt::GpuSpec::v100());
  const auto b = framework::run_algorithm(*algo, pg, simt::GpuSpec::v100());
  EXPECT_EQ(a.result.triangles, b.result.triangles);
  EXPECT_EQ(a.result.total.metrics.global_load_requests,
            b.result.total.metrics.global_load_requests);
  EXPECT_EQ(a.result.total.metrics.global_load_transactions,
            b.result.total.metrics.global_load_transactions);
  EXPECT_EQ(a.result.total.metrics.warp_steps, b.result.total.metrics.warp_steps);
  EXPECT_DOUBLE_EQ(a.result.total.time_ms, b.result.total.time_ms);
}

TEST_P(EveryAlgorithm, DisjointUnionCountsAdd) {
  // Triangles of G1 ⊔ G2 = triangles(G1) + triangles(G2).
  const graph::Coo g1 = base_graph(101);
  const graph::Coo g2 = base_graph(202);
  graph::Coo both;
  both.num_vertices = g1.num_vertices + g2.num_vertices;
  both.edges = g1.edges;
  for (const auto& [u, v] : g2.edges) {
    both.edges.push_back({u + g1.num_vertices, v + g1.num_vertices});
  }
  const auto algo = framework::make_algorithm(GetParam());
  const auto a = framework::run_algorithm(
      *algo, framework::prepare_graph("g1", g1), simt::GpuSpec::v100());
  const auto b = framework::run_algorithm(
      *algo, framework::prepare_graph("g2", g2), simt::GpuSpec::v100());
  const auto ab = framework::run_algorithm(
      *algo, framework::prepare_graph("g1+g2", both), simt::GpuSpec::v100());
  EXPECT_EQ(ab.result.triangles, a.result.triangles + b.result.triangles);
}

TEST_P(EveryAlgorithm, ReportsAtLeastOneLaunchWithWork) {
  const auto pg = framework::prepare_graph("g", base_graph());
  const auto out = framework::run_algorithm(*framework::make_algorithm(GetParam()),
                                            pg, simt::GpuSpec::v100());
  ASSERT_FALSE(out.result.launches.empty());
  EXPECT_GT(out.result.total.metrics.global_load_requests, 0u);
  EXPECT_GT(out.result.total.metrics.warps_launched, 0u);
  EXPECT_GT(out.result.total.time_ms, 0.0);
  const double eff = out.result.total.metrics.warp_execution_efficiency();
  EXPECT_GT(eff, 0.0);
  EXPECT_LE(eff, 1.0);
}

std::vector<std::string> names() {
  std::vector<std::string> v;
  for (const auto& e : framework::extended_algorithms()) v.push_back(e.name);
  return v;
}

INSTANTIATE_TEST_SUITE_P(All, EveryAlgorithm, ::testing::ValuesIn(names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace tcgpu::tc
