// Bit-identical KernelStats regression gate: one kernel per intersection
// family, pinned against checked-in counter seeds on a fixed R-MAT graph.
//
// The tc/intersect/ library's porting contract is that composing a kernel
// from the shared policies leaves its per-lane event sequence — and
// therefore every simulated counter — exactly as the pre-library kernel
// produced it. These seeds were captured from that baseline; any drift in a
// policy's load/store/atomic placement shows up here as an off-by-N, not as
// a vague perf delta. time_ms is intentionally not pinned (it follows from
// the counters via the time model, which may be retuned independently).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/rmat.hpp"

namespace tcgpu::tc {
namespace {

struct PinnedMetrics {
  const char* algorithm;  // one per Table I intersection family
  const char* launch;
  std::uint64_t gld_req, gld_tx, gst_req, gst_tx, gatom_req, gatom_tx, dram;
  std::uint64_t sld_req, sst_req, satom_req, conflict;
  std::uint64_t warp_steps, lane_steps, warps;
};

// Captured on rmat(scale=11, edges=15000, seed=77), GpuSpec::v100(),
// default kernel configs, one fresh Device per kernel (DRAM sector counts
// depend on cache state, so each kernel is pinned cold); the graph counts
// 80612 triangles.
constexpr PinnedMetrics kPinned[] = {
    {"Polak", "polak_merge",  // Merge family
     35255, 321769, 0, 0, 461, 461, 30827, 0, 0, 0, 0, 35716, 645209, 640},
    {"GroupTC", "grouptc_chunk",  // Bin-Search family
     45375, 225870, 0, 0, 464, 464, 31283, 125319, 6608, 0, 2788, 177766,
     5579159, 640},
    {"TRUST", "trust_warp",  // Hash family
     63322, 108886, 1, 1, 1168, 1168, 36450, 19911, 4020, 1371, 8051, 100997,
     2861400, 1328},
    {"Bisson", "bisson_warp",  // BitMap family
     116786, 395043, 1648, 2925, 2816, 4093, 34010, 0, 0, 0, 0, 121250,
     1024482, 640},
};

TEST(StatsPinned, OneKernelPerFamilyBitIdentical) {
  gen::RmatParams p;
  p.scale = 11;
  p.edges = 15'000;
  const auto pg = framework::prepare_graph("rmat_pin", gen::generate_rmat(p, 77));
  const simt::GpuSpec spec = simt::GpuSpec::v100();

  for (const auto& pin : kPinned) {
    simt::Device dev;  // fresh device: every kernel is pinned on a cold cache
    const DeviceGraph g = DeviceGraph::upload(dev, pg.dag);
    const auto algo = framework::make_algorithm(pin.algorithm);
    const AlgoResult r = algo->count(dev, spec, g);
    EXPECT_EQ(r.triangles, 80'612u) << pin.algorithm;

    const simt::KernelMetrics* m = nullptr;
    for (const auto& [name, stats] : r.launches) {
      if (name == pin.launch) m = &stats.metrics;
    }
    ASSERT_NE(m, nullptr) << pin.algorithm << " lost launch " << pin.launch;

    EXPECT_EQ(m->global_load_requests, pin.gld_req) << pin.algorithm;
    EXPECT_EQ(m->global_load_transactions, pin.gld_tx) << pin.algorithm;
    EXPECT_EQ(m->global_store_requests, pin.gst_req) << pin.algorithm;
    EXPECT_EQ(m->global_store_transactions, pin.gst_tx) << pin.algorithm;
    EXPECT_EQ(m->global_atomic_requests, pin.gatom_req) << pin.algorithm;
    EXPECT_EQ(m->global_atomic_transactions, pin.gatom_tx) << pin.algorithm;
    EXPECT_EQ(m->global_dram_transactions, pin.dram) << pin.algorithm;
    EXPECT_EQ(m->shared_load_requests, pin.sld_req) << pin.algorithm;
    EXPECT_EQ(m->shared_store_requests, pin.sst_req) << pin.algorithm;
    EXPECT_EQ(m->shared_atomic_requests, pin.satom_req) << pin.algorithm;
    EXPECT_EQ(m->shared_conflict_cycles, pin.conflict) << pin.algorithm;
    EXPECT_EQ(m->warp_steps, pin.warp_steps) << pin.algorithm;
    EXPECT_EQ(m->active_lane_steps, pin.lane_steps) << pin.algorithm;
    EXPECT_EQ(m->warps_launched, pin.warps) << pin.algorithm;
  }
}

}  // namespace
}  // namespace tcgpu::tc
