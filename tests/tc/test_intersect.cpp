// tc/intersect/ policy tests: every intersection policy against
// std::set_intersection on adversarial list shapes, plus the metering
// contract — each policy's TCGPU_SITE()s are its own, so the KernelStats a
// policy produces are deterministic and distinguish it from its siblings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simt/launch.hpp"
#include "tc/intersect/binsearch.hpp"
#include "tc/intersect/bitmap.hpp"
#include "tc/intersect/hash.hpp"
#include "tc/intersect/merge.hpp"

namespace tcgpu::tc::intersect {
namespace {

simt::GpuSpec test_spec() {
  simt::GpuSpec s = simt::GpuSpec::v100();
  s.launch_overhead_us = 0.0;
  return s;
}

/// Sorted duplicate-free operand pairs covering the shapes that break
/// cursor/boundary logic: emptiness, disjointness, identity, heavy length
/// skew, matches pinned to both ends, and dense same-word runs (BSR).
struct Shape {
  const char* name;
  std::vector<std::uint32_t> a, b;
};

std::vector<Shape> shapes() {
  std::vector<std::uint32_t> ramp, odds, sparse_hits;
  for (std::uint32_t i = 0; i < 400; ++i) ramp.push_back(3 * i + 1);
  for (std::uint32_t i = 0; i < 64; ++i) odds.push_back(2 * i + 1);
  for (std::uint32_t i = 0; i < 5; ++i) sparse_hits.push_back(3 * (80 * i) + 1);
  return {
      {"both_empty", {}, {}},
      {"a_empty", {}, {5, 9, 12}},
      {"b_empty", {4, 7}, {}},
      {"disjoint_interleaved", {0, 2, 4, 6, 8}, {1, 3, 5, 7, 9}},
      {"identical", odds, odds},
      {"singleton_hit", {33}, odds},
      {"singleton_miss", {34}, odds},
      {"first_and_last_only", {1, 500, 1000}, {1, 600, 700, 1000}},
      {"skewed_lengths", sparse_hits, ramp},
      {"dense_same_word", {64, 65, 66, 67, 68, 95}, {64, 66, 68, 70, 95}},
      {"b_exhausts_first", {10, 20, 30, 40, 50}, {5, 15, 25}},
  };
}

std::uint64_t ref_count(const Shape& s) {
  std::vector<std::uint32_t> out;
  std::set_intersection(s.a.begin(), s.a.end(), s.b.begin(), s.b.end(),
                        std::back_inserter(out));
  return out.size();
}

struct RunResult {
  std::uint64_t count = 0;
  simt::KernelStats stats;
};

/// Uploads the operands and runs `body(ctx, a, b)` on a single thread.
template <class Body>
RunResult run_single(const Shape& s, Body&& body) {
  simt::Device dev;
  auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
  auto db = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.b.size()));
  std::copy(s.a.begin(), s.a.end(), da.host_data());
  std::copy(s.b.begin(), s.b.end(), db.host_data());
  auto out = dev.alloc<std::uint64_t>(1);

  RunResult r;
  r.stats = simt::launch_threads(
      test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
        const ListRef a{&da, 0, static_cast<std::uint32_t>(s.a.size())};
        const ListRef b{&db, 0, static_cast<std::uint32_t>(s.b.size())};
        ctx.atomic_add(out, 0, body(ctx, a, b), TCGPU_SITE());
      });
  r.count = out.host_span()[0];
  return r;
}

template <class Policy>
RunResult run_policy(const Shape& s) {
  return run_single(s, [](simt::ThreadCtx& ctx, ListRef a, ListRef b) {
    return Policy::count(ctx, a, b);
  });
}

TEST(IntersectMerge, SequentialMatchesStdSetIntersection) {
  for (const auto& s : shapes()) {
    EXPECT_EQ(run_policy<MergeSequential>(s).count, ref_count(s)) << s.name;
  }
}

TEST(IntersectMerge, RegisterCachedMatchesStdSetIntersection) {
  for (const auto& s : shapes()) {
    EXPECT_EQ(run_policy<MergeRegisterCached>(s).count, ref_count(s)) << s.name;
  }
}

TEST(IntersectMerge, ChunkedMatchesStdSetIntersection) {
  // MergeChunked's contract requires a non-empty chunk (the composing
  // kernels only form chunks from non-empty lists).
  for (const auto& s : shapes()) {
    if (s.a.empty()) continue;
    EXPECT_EQ(run_policy<MergeChunked>(s).count, ref_count(s)) << s.name;
  }
}

TEST(IntersectBinSearch, SweepMatchesStdSetIntersection) {
  for (const auto& s : shapes()) {
    EXPECT_EQ(run_policy<BinSearchSweep>(s).count, ref_count(s)) << s.name;
  }
}

TEST(IntersectMergePath, WarpPartitionMatchesStdSetIntersection) {
  // Full 32-lane diagonal partition, as the MergePath kernel runs it: each
  // lane splits its diagonals and merges its window; ties across a diagonal
  // must be counted exactly once.
  for (const auto& s : shapes()) {
    simt::Device dev;
    auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
    auto db = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.b.size()));
    std::copy(s.a.begin(), s.a.end(), da.host_data());
    std::copy(s.b.begin(), s.b.end(), db.host_data());
    auto out = dev.alloc<std::uint64_t>(1);

    simt::LaunchConfig cfg{1, 32, 32};
    simt::launch_items<simt::NoState>(
        test_spec(), cfg, 1,
        [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
          const ListRef a{&da, 0, static_cast<std::uint32_t>(s.a.size())};
          const ListRef b{&db, 0, static_cast<std::uint32_t>(s.b.size())};
          const std::uint32_t t = ctx.group_lane();
          const std::uint32_t total = a.size() + b.size();
          const std::uint32_t d0 = total * t / 32;
          const std::uint32_t d1 = total * (t + 1) / 32;
          if (d0 >= d1) return;
          const std::uint32_t ai0 = MergePath::split(ctx, a, b, d0);
          const std::uint32_t ai1 = MergePath::split(ctx, a, b, d1);
          const std::uint64_t local = MergePath::count_window(
              ctx, a, a.lo + ai0, a.lo + ai1, b, b.lo + (d0 - ai0));
          ctx.atomic_add(out, 0, local, TCGPU_SITE());
        });
    EXPECT_EQ(out.host_span()[0], ref_count(s)) << s.name;
  }
}

TEST(IntersectBinSearch, HeapSearchMatchesStdSetIntersection) {
  // Heap-ordered probes over B, exactly as TriCore walks its cached tree:
  // probe (k, mid) must see the same element at heap node k (via the host
  // heap_node_index layout) as at sorted index mid.
  for (const auto& s : shapes()) {
    if (s.b.empty()) {
      continue;  // heap layout undefined for an empty table
    }
    const std::uint32_t len = static_cast<std::uint32_t>(s.b.size());
    // The walk's 1-based heap id covers the complete tree over the search
    // range, which extends below the last full level — size for the whole
    // tree, not just len (heap_node_index clamps below-leaf nodes).
    std::uint32_t tree = 1;
    while (tree < len + 1) tree <<= 1;
    std::vector<std::uint32_t> heap(2 * tree - 1);
    for (std::uint32_t k = 1; k <= heap.size(); ++k) {
      heap[k - 1] = s.b[heap_node_index(k, len)];
    }
    simt::Device dev;
    auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
    auto dheap = dev.alloc<std::uint32_t>(heap.size());
    std::copy(s.a.begin(), s.a.end(), da.host_data());
    std::copy(heap.begin(), heap.end(), dheap.host_data());
    auto out = dev.alloc<std::uint64_t>(1);

    simt::launch_threads(
        test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
          std::uint64_t local = 0;
          for (std::uint32_t i = 0; i < s.a.size(); ++i) {
            const std::uint32_t key = ctx.load(da, i, TCGPU_SITE());
            const bool hit = heap_search_probe(
                len, key, [&](std::uint64_t k, std::uint32_t) {
                  return ctx.load(dheap, static_cast<std::size_t>(k - 1),
                                  TCGPU_SITE());
                });
            if (hit) ++local;
          }
          ctx.atomic_add(out, 0, local, TCGPU_SITE());
        });
    EXPECT_EQ(out.host_span()[0], ref_count(s)) << s.name;
  }
}

TEST(IntersectBinSearch, HeapNodeIndexVisitsEveryProbePath) {
  // Host-side layout check: walking every key of a sorted table through a
  // plain binary search visits exactly the node heap_node_index names.
  const std::vector<std::uint32_t> table = {2, 3, 5, 8, 13, 21, 34, 55, 89};
  const std::uint32_t len = static_cast<std::uint32_t>(table.size());
  for (const std::uint32_t key : table) {
    std::uint32_t lo = 0, hi = len;
    std::uint64_t k = 1;
    bool found = false;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      ASSERT_EQ(heap_node_index(static_cast<std::uint32_t>(k), len), mid);
      if (table[mid] == key) {
        found = true;
        break;
      }
      if (table[mid] < key) {
        lo = mid + 1;
        k = 2 * k + 1;
      } else {
        hi = mid;
        k = 2 * k;
      }
    }
    EXPECT_TRUE(found) << key;
  }
}

TEST(IntersectBinSearch, MonotoneSearchCountsAndResumes) {
  for (const auto& s : shapes()) {
    const auto r = run_single(s, [&](simt::ThreadCtx& ctx, ListRef a, ListRef b) {
      // Ascending keys of A against B with GroupTC's resume-point reuse.
      std::uint64_t local = 0;
      std::uint32_t resume = b.lo;
      for (std::uint32_t i = a.lo; i < a.hi; ++i) {
        const std::uint32_t key = ctx.load(*a.buf, i, TCGPU_SITE());
        const auto hit = monotone_search(ctx, *b.buf, resume, b.hi, key);
        if (hit.found) ++local;
        resume = hit.resume;
      }
      return local;
    });
    EXPECT_EQ(r.count, ref_count(s)) << s.name;
  }
}

TEST(IntersectHash, BucketedHashMatchesStdSetIntersection) {
  // Small table (4 buckets x 2 slots) so the adversarial shapes exercise
  // both the shared slots and the global overflow spill path.
  constexpr std::uint32_t kBuckets = 4, kSlots = 2, kOvfCap = 512;
  for (const auto& s : shapes()) {
    simt::Device dev;
    auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
    auto db = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.b.size()));
    std::copy(s.a.begin(), s.a.end(), da.host_data());
    std::copy(s.b.begin(), s.b.end(), db.host_data());
    auto overflow = dev.alloc<std::uint32_t>(kOvfCap);
    auto out = dev.alloc<std::uint64_t>(1);

    simt::launch_threads(
        test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
          BucketedHash h;
          h.len = ctx.shared_array_tagged<std::uint32_t>(0, kBuckets);
          h.table = ctx.shared_array_tagged<std::uint32_t>(1, kSlots * kBuckets);
          h.ovf = ctx.shared_array_tagged<std::uint32_t>(2, 1);
          h.overflow = &overflow;
          h.buckets = kBuckets;
          h.slots = kSlots;
          h.ovf_cap = kOvfCap;
          h.reset_slice(ctx, 0, 1);
          for (std::uint32_t i = 0; i < s.b.size(); ++i) {
            h.insert(ctx, ctx.load(db, i, TCGPU_SITE()));
          }
          std::uint64_t local = 0;
          for (std::uint32_t i = 0; i < s.a.size(); ++i) {
            if (h.contains(ctx, ctx.load(da, i, TCGPU_SITE()))) ++local;
          }
          ctx.atomic_add(out, 0, local, TCGPU_SITE());
        });
    EXPECT_EQ(out.host_span()[0], ref_count(s)) << s.name;
  }
}

TEST(IntersectHash, LinearProbeMatchesStdSetIntersection) {
  for (const auto& s : shapes()) {
    const std::uint32_t cap =
        pow2_at_least(2 * static_cast<std::uint32_t>(s.b.size()) + 2);
    simt::Device dev;
    auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
    auto db = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.b.size()));
    std::copy(s.a.begin(), s.a.end(), da.host_data());
    std::copy(s.b.begin(), s.b.end(), db.host_data());
    auto out = dev.alloc<std::uint64_t>(1);

    simt::launch_threads(
        test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
          auto pool = ctx.shared_array_tagged<std::uint32_t>(0, cap);
          linear_probe_clear(ctx, pool, 0, cap);
          for (std::uint32_t i = 0; i < s.b.size(); ++i) {
            linear_probe_insert(ctx, pool, 0, cap, ctx.load(db, i, TCGPU_SITE()));
          }
          std::uint64_t local = 0;
          for (std::uint32_t i = 0; i < s.a.size(); ++i) {
            const std::uint32_t key = ctx.load(da, i, TCGPU_SITE());
            if (linear_probe_contains(ctx, pool, 0, cap, key)) ++local;
          }
          ctx.atomic_add(out, 0, local, TCGPU_SITE());
        });
    EXPECT_EQ(out.host_span()[0], ref_count(s)) << s.name;
  }
}

TEST(IntersectBitmap, VertexBitmapMatchesInBothResidences) {
  // Build the bitmap from B, probe with A — in shared memory and again in
  // the global-scratch spill residence; both must agree with the reference.
  for (const bool in_shared : {true, false}) {
    for (const auto& s : shapes()) {
      const std::uint32_t maxv =
          1 + std::max(s.a.empty() ? 0u : s.a.back(),
                       s.b.empty() ? 0u : s.b.back());
      const std::uint32_t words = bit_word(maxv) + 1;
      simt::Device dev;
      auto da = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.a.size()));
      auto db = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, s.b.size()));
      std::copy(s.a.begin(), s.a.end(), da.host_data());
      std::copy(s.b.begin(), s.b.end(), db.host_data());
      auto scratch = dev.alloc<std::uint32_t>(words);
      auto out = dev.alloc<std::uint64_t>(1);

      simt::launch_threads(
          test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
            VertexBitmap bm;
            bm.in_shared = in_shared;
            if (in_shared) {
              bm.sm = ctx.shared_array_tagged<std::uint32_t>(0, words);
            }
            bm.gm = &scratch;
            bm.base = 0;
            for (std::uint32_t i = 0; i < s.b.size(); ++i) {
              bm.set(ctx, ctx.load(db, i, TCGPU_SITE()));
            }
            std::uint64_t local = 0;
            for (std::uint32_t i = 0; i < s.a.size(); ++i) {
              if (bm.test(ctx, ctx.load(da, i, TCGPU_SITE()))) ++local;
            }
            for (std::uint32_t i = 0; i < s.b.size(); ++i) {
              bm.clear(ctx, ctx.load(db, i, TCGPU_SITE()));
            }
            ctx.atomic_add(out, 0, local, TCGPU_SITE());
          });
      EXPECT_EQ(out.host_span()[0], ref_count(s))
          << s.name << (in_shared ? " (shared)" : " (global)");
    }
  }
}

TEST(IntersectBitmap, BsrAndCountMatchesStdSetIntersection) {
  auto compress = [](const std::vector<std::uint32_t>& list,
                     std::vector<std::uint32_t>* base,
                     std::vector<std::uint32_t>* word) {
    for (const std::uint32_t v : list) {
      if (base->empty() || base->back() != bit_word(v)) {
        base->push_back(bit_word(v));
        word->push_back(0);
      }
      word->back() |= bit_mask(v);
    }
  };
  for (const auto& s : shapes()) {
    std::vector<std::uint32_t> ab, aw, bb, bw;
    compress(s.a, &ab, &aw);
    compress(s.b, &bb, &bw);
    simt::Device dev;
    auto d_ab = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, ab.size()));
    auto d_aw = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, aw.size()));
    auto d_bb = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, bb.size()));
    auto d_bw = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, bw.size()));
    std::copy(ab.begin(), ab.end(), d_ab.host_data());
    std::copy(aw.begin(), aw.end(), d_aw.host_data());
    std::copy(bb.begin(), bb.end(), d_bb.host_data());
    std::copy(bw.begin(), bw.end(), d_bw.host_data());
    auto out = dev.alloc<std::uint64_t>(1);

    simt::launch_threads(
        test_spec(), 1, 32, 1, [&](simt::ThreadCtx& ctx, std::uint64_t) {
          const BsrRef ra{&d_ab, &d_aw, 0, static_cast<std::uint32_t>(ab.size())};
          const BsrRef rb{&d_bb, &d_bw, 0, static_cast<std::uint32_t>(bb.size())};
          ctx.atomic_add(out, 0, bsr_and_count(ctx, ra, rb), TCGPU_SITE());
        });
    EXPECT_EQ(out.host_span()[0], ref_count(s)) << s.name;
  }
}

TEST(IntersectMetering, PolicyLoadCountsAreTheirOwn) {
  // The metering contract behind the library's bit-identity guarantee: each
  // policy issues loads from its own TCGPU_SITE()s, so two policies with
  // different event shapes are distinguishable in KernelStats even on the
  // same operands. On a=[1,3,5] x b=[2,3,4]: the sequential merge reloads
  // both cursors each of its 4 iterations (8 loads), while the
  // register-cached merge reloads only what advanced (6 loads).
  const Shape s{"pinned", {1, 3, 5}, {2, 3, 4}};
  const auto seq = run_policy<MergeSequential>(s);
  const auto reg = run_policy<MergeRegisterCached>(s);
  EXPECT_EQ(seq.count, 1u);
  EXPECT_EQ(reg.count, 1u);
  EXPECT_EQ(seq.stats.metrics.global_load_requests, 8u);
  EXPECT_EQ(reg.stats.metrics.global_load_requests, 6u);
}

TEST(IntersectMetering, PolicyStatsAreDeterministic) {
  const Shape s{"det", {1, 4, 9, 16, 25, 36}, {2, 4, 8, 16, 32}};
  const auto a1 = run_policy<MergeSequential>(s);
  const auto a2 = run_policy<MergeSequential>(s);
  EXPECT_EQ(a1.stats, a2.stats);
  const auto b1 = run_policy<BinSearchSweep>(s);
  const auto b2 = run_policy<BinSearchSweep>(s);
  EXPECT_EQ(b1.stats, b2.stats);
}

TEST(MergeCollect, MatchesSetIntersectionOnEveryShape) {
  // merge_collect_probed is the stream delta kernel's workhorse: besides
  // counting, it must surface every common value (and its positions in both
  // operands) exactly once, in ascending order.
  for (const auto& s : shapes()) {
    std::vector<std::uint32_t> expected;
    std::set_intersection(s.a.begin(), s.a.end(), s.b.begin(), s.b.end(),
                          std::back_inserter(expected));
    std::vector<std::uint32_t> values;
    const auto count = merge_collect_probed(
        static_cast<std::uint32_t>(s.a.size()),
        static_cast<std::uint32_t>(s.b.size()),
        [&](std::uint32_t i) { return s.a[i]; },
        [&](std::uint32_t j) { return s.b[j]; },
        [&](std::uint32_t value, std::uint32_t i, std::uint32_t j) {
          EXPECT_EQ(s.a[i], value) << s.name;
          EXPECT_EQ(s.b[j], value) << s.name;
          values.push_back(value);
        });
    EXPECT_EQ(count, expected.size()) << s.name;
    EXPECT_EQ(values, expected) << s.name;
  }
}

}  // namespace
}  // namespace tcgpu::tc::intersect
