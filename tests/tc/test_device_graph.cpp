#include "tc/device_graph.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/orientation.hpp"

namespace tcgpu::tc {
namespace {

DeviceGraph upload_sample(simt::Device& dev) {
  graph::Coo coo;
  coo.num_vertices = 5;
  coo.edges = {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {2, 4}};
  const auto und = graph::build_undirected_csr(graph::clean_edges(coo));
  const auto dag = graph::orient(und, graph::OrientationPolicy::kById).dag;
  return DeviceGraph::upload(dev, dag);
}

TEST(DeviceGraph, CopiesCsrFaithfully) {
  simt::Device dev;
  const DeviceGraph g = upload_sample(dev);
  EXPECT_EQ(g.num_vertices, 5u);
  EXPECT_EQ(g.num_edges, 6u);
  EXPECT_EQ(g.row_ptr.size(), 6u);
  EXPECT_EQ(g.col.size(), 6u);
  EXPECT_EQ(g.row_ptr.host_data()[0], 0u);
  EXPECT_EQ(g.row_ptr.host_data()[5], 6u);
}

TEST(DeviceGraph, EdgeListIsInCsrOrderWithUlessV) {
  simt::Device dev;
  const DeviceGraph g = upload_sample(dev);
  for (std::uint32_t e = 0; e < g.num_edges; ++e) {
    EXPECT_LT(g.edge_u.host_data()[e], g.edge_v.host_data()[e]) << "edge " << e;
    if (e > 0) {
      EXPECT_LE(g.edge_u.host_data()[e - 1], g.edge_u.host_data()[e]);
    }
  }
}

TEST(DeviceGraph, EdgeListMatchesAdjacency) {
  simt::Device dev;
  const DeviceGraph g = upload_sample(dev);
  for (std::uint32_t e = 0; e < g.num_edges; ++e) {
    const std::uint32_t u = g.edge_u.host_data()[e];
    const std::uint32_t v = g.edge_v.host_data()[e];
    const std::uint32_t lo = g.row_ptr.host_data()[u];
    const std::uint32_t hi = g.row_ptr.host_data()[u + 1];
    bool found = false;
    for (std::uint32_t i = lo; i < hi; ++i) found |= g.col.host_data()[i] == v;
    EXPECT_TRUE(found) << "edge " << e;
  }
}

TEST(DeviceGraph, TracksMaxOutDegree) {
  simt::Device dev;
  const DeviceGraph g = upload_sample(dev);
  EXPECT_EQ(g.max_out_degree, 2u);  // vertices 0 and 2 have out-degree 2
}

TEST(DeviceGraph, EmptyGraphUploads) {
  simt::Device dev;
  const DeviceGraph g = DeviceGraph::upload(dev, graph::Csr{});
  EXPECT_EQ(g.num_vertices, 0u);
  EXPECT_EQ(g.num_edges, 0u);
  EXPECT_EQ(g.max_out_degree, 0u);
}

}  // namespace
}  // namespace tcgpu::tc
