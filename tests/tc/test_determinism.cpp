// Determinism contract of the simulator: KernelStats must be bit-identical
// regardless of how many host threads execute the launch. The launcher
// parallelizes over blocks with per-thread aggregators and merges commutative
// integer counters, while cycle costs are accumulated per block — so thread
// count and schedule must be invisible in every counter and in time_ms down
// to the last bit.
//
// One kernel per intersection family (Table I taxonomy), so the merge/
// bin-search/hash/bitmap event shapes are all pinned.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/rmat.hpp"

namespace tcgpu::tc {
namespace {

/// Restores the global OpenMP thread count on scope exit so a failing
/// assertion cannot leak a 1-thread setting into later tests.
class ThreadCountGuard {
 public:
  ThreadCountGuard() {
#ifdef _OPENMP
    saved_ = omp_get_max_threads();
#endif
  }
  ~ThreadCountGuard() {
#ifdef _OPENMP
    omp_set_num_threads(saved_);
#endif
  }
  void set(int n) {
#ifdef _OPENMP
    omp_set_num_threads(n);
#else
    (void)n;
#endif
  }

 private:
  int saved_ = 1;
};

class DeterminismAcrossThreads : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismAcrossThreads, KernelStatsBitIdenticalAtOmp128) {
  const std::string algo_name = GetParam();

  gen::RmatParams p;
  p.scale = 11;
  p.edges = 15000;
  const auto pg = framework::prepare_graph("rmat_det", gen::generate_rmat(p, 77));
  const auto algo = framework::make_algorithm(algo_name);

  ThreadCountGuard guard;
  std::vector<framework::RunOutcome> outs;
  for (const int threads : {1, 2, 8}) {
    guard.set(threads);
    outs.push_back(framework::run_algorithm(*algo, pg, simt::GpuSpec::v100()));
  }

  for (std::size_t i = 1; i < outs.size(); ++i) {
    EXPECT_EQ(outs[i].result.triangles, outs[0].result.triangles);
    // operator== is defaulted: every counter and the double time_ms compare
    // exactly. Any schedule-dependent accumulation shows up here.
    EXPECT_TRUE(outs[i].result.total == outs[0].result.total)
        << algo_name << ": stats differ between 1 thread and run " << i;
    ASSERT_EQ(outs[i].result.launches.size(), outs[0].result.launches.size());
    for (std::size_t k = 0; k < outs[i].result.launches.size(); ++k) {
      EXPECT_EQ(outs[i].result.launches[k].first, outs[0].result.launches[k].first);
      EXPECT_TRUE(outs[i].result.launches[k].second ==
                  outs[0].result.launches[k].second)
          << algo_name << " launch " << outs[0].result.launches[k].first
          << ": per-kernel stats differ";
    }
  }
}

// One representative per intersection family:
//   Polak — Merge, Bisson — Bin-Search, TRUST — Hash, H-INDEX — BitMap.
INSTANTIATE_TEST_SUITE_P(OnePerIntersectionFamily, DeterminismAcrossThreads,
                         ::testing::Values("Polak", "Bisson", "TRUST", "H-INDEX"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace tcgpu::tc
