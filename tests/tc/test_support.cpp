#include "tc/support.hpp"

#include <gtest/gtest.h>

#include "framework/runner.hpp"
#include "gen/rmat.hpp"
#include "graph/cpu_reference.hpp"

namespace tcgpu::tc {
namespace {

/// CPU reference for per-edge support on the oriented DAG.
std::vector<std::uint32_t> cpu_support(const graph::Csr& dag) {
  std::vector<std::uint32_t> sup(dag.num_edges(), 0);
  // Edge id of (a,b): position of b in a's sorted list + row offset.
  auto edge_id = [&](graph::VertexId a, graph::VertexId b) -> std::uint32_t {
    const auto nb = dag.neighbors(a);
    const auto it = std::lower_bound(nb.begin(), nb.end(), b);
    return dag.row_ptr()[a] + static_cast<std::uint32_t>(it - nb.begin());
  };
  for (graph::VertexId u = 0; u < dag.num_vertices(); ++u) {
    for (const graph::VertexId v : dag.neighbors(u)) {
      for (const graph::VertexId w : dag.neighbors(v)) {
        if (dag.has_edge(u, w)) {
          sup[edge_id(u, v)]++;
          sup[edge_id(u, w)]++;
          sup[edge_id(v, w)]++;
        }
      }
    }
  }
  return sup;
}

std::vector<std::uint32_t> gpu_support(const graph::Csr& dag,
                                       std::uint32_t chunk = 256) {
  simt::Device dev;
  const DeviceGraph g = DeviceGraph::upload(dev, dag);
  auto support = dev.alloc<std::uint32_t>(g.num_edges, "support");
  count_edge_support(dev, simt::GpuSpec::v100(), g, support, chunk);
  return {support.host_data(), support.host_data() + g.num_edges};
}

TEST(EdgeSupport, MatchesCpuReferenceOnRmat) {
  gen::RmatParams p;
  p.scale = 10;
  p.edges = 6000;
  const auto pg = framework::prepare_graph("sup", gen::generate_rmat(p, 3));
  EXPECT_EQ(gpu_support(pg.dag), cpu_support(pg.dag));
}

TEST(EdgeSupport, SumIsThreeTimesTriangles) {
  gen::RmatParams p;
  p.scale = 11;
  p.edges = 10000;
  const auto pg = framework::prepare_graph("sup", gen::generate_rmat(p, 9));
  simt::Device dev;
  const DeviceGraph g = DeviceGraph::upload(dev, pg.dag);
  auto support = dev.alloc<std::uint32_t>(g.num_edges, "support");
  const auto r = count_edge_support(dev, simt::GpuSpec::v100(), g, support);
  EXPECT_EQ(r.triangles, pg.reference_triangles);
}

TEST(EdgeSupport, CompleteGraphEdgesAllHaveNMinus2) {
  graph::Coo k;
  k.num_vertices = 9;
  for (graph::VertexId i = 0; i < 9; ++i) {
    for (graph::VertexId j = i + 1; j < 9; ++j) k.edges.push_back({i, j});
  }
  const auto pg = framework::prepare_graph("k9", k);
  for (const std::uint32_t s : gpu_support(pg.dag)) EXPECT_EQ(s, 7u);
}

TEST(EdgeSupport, TriangleFreeGraphIsAllZero) {
  graph::Coo g;
  g.num_vertices = 20;
  for (graph::VertexId i = 0; i + 1 < 20; ++i) g.edges.push_back({i, i + 1});
  const auto pg = framework::prepare_graph("path", g);
  for (const std::uint32_t s : gpu_support(pg.dag)) EXPECT_EQ(s, 0u);
}

TEST(EdgeSupport, ChunkSizeDoesNotChangeResults) {
  gen::RmatParams p;
  p.scale = 9;
  p.edges = 3000;
  const auto pg = framework::prepare_graph("sup", gen::generate_rmat(p, 4));
  const auto base = gpu_support(pg.dag, 256);
  EXPECT_EQ(base, gpu_support(pg.dag, 64));
  EXPECT_EQ(base, gpu_support(pg.dag, 1024));
}

TEST(EdgeSupport, RejectsUndersizedBuffer) {
  gen::RmatParams p;
  p.scale = 8;
  p.edges = 1000;
  const auto pg = framework::prepare_graph("sup", gen::generate_rmat(p, 5));
  simt::Device dev;
  const DeviceGraph g = DeviceGraph::upload(dev, pg.dag);
  auto tiny = dev.alloc<std::uint32_t>(1, "tiny");
  EXPECT_THROW(count_edge_support(dev, simt::GpuSpec::v100(), g, tiny),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcgpu::tc
