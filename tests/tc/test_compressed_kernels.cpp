// The compressed-image execution path: CMerge/CStage running against a
// DeviceGraph::upload_compressed vertex-iterator image (no col/edge arrays
// resident) must count exactly, match their self-staging raw-image runs,
// and the image itself must undercut the raw upload's bytes on real DAGs.
#include <gtest/gtest.h>

#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "graph/cpu_reference.hpp"
#include "graph/orientation.hpp"
#include "graph/prepare.hpp"
#include "tc/cmerge.hpp"
#include "tc/cstage.hpp"
#include "tc/device_graph.hpp"

namespace tcgpu::tc {
namespace {

graph::Csr sample_dag(std::uint64_t seed, std::uint64_t edges = 4'000) {
  gen::RmatParams p;
  p.scale = 10;
  p.edges = edges;
  graph::Coo raw = gen::generate_rmat(p, seed);
  return graph::prepare_dag(std::move(raw), graph::OrientationPolicy::kByDegree)
      .dag;
}

TEST(CompressedImage, CMergeCountsExactlyOnCompressedUpload) {
  const graph::Csr dag = sample_dag(5);
  const std::uint64_t want = graph::count_triangles_forward(dag);

  simt::Device dev;
  const DeviceGraph g =
      DeviceGraph::upload_compressed(dev, graph::CompressedCsr::compress(dag));
  ASSERT_TRUE(g.has_compressed);
  const auto res = CMergeCounter().count(dev, simt::GpuSpec::v100(), g);
  EXPECT_EQ(res.triangles, want);
}

TEST(CompressedImage, CStageCountsExactlyOnCompressedUpload) {
  const graph::Csr dag = sample_dag(6);
  const std::uint64_t want = graph::count_triangles_forward(dag);

  simt::Device dev;
  const DeviceGraph g =
      DeviceGraph::upload_compressed(dev, graph::CompressedCsr::compress(dag));
  ASSERT_TRUE(g.has_compressed);
  const auto res = CStageCounter().count(dev, simt::GpuSpec::v100(), g);
  EXPECT_EQ(res.triangles, want);
}

TEST(CompressedImage, MatchesTheSelfStagedRawImageCount) {
  const graph::Csr dag = sample_dag(7);

  simt::Device raw_dev;
  const DeviceGraph raw = DeviceGraph::upload(raw_dev, dag);
  ASSERT_FALSE(raw.has_compressed);

  simt::Device cmp_dev;
  const DeviceGraph cmp = DeviceGraph::upload_compressed(
      cmp_dev, graph::CompressedCsr::compress(dag));

  const auto spec = simt::GpuSpec::v100();
  EXPECT_EQ(CMergeCounter().count(raw_dev, spec, raw).triangles,
            CMergeCounter().count(cmp_dev, spec, cmp).triangles);
  EXPECT_EQ(CStageCounter().count(raw_dev, spec, raw).triangles,
            CStageCounter().count(cmp_dev, spec, cmp).triangles);
}

TEST(CompressedImage, UploadIsSmallerThanRawForRealDags) {
  const graph::Csr dag = sample_dag(8, 20'000);

  simt::Device raw_dev;
  const DeviceGraph raw = DeviceGraph::upload(raw_dev, dag);
  simt::Device cmp_dev;
  const DeviceGraph cmp = DeviceGraph::upload_compressed(
      cmp_dev, graph::CompressedCsr::compress(dag));

  EXPECT_GT(cmp.compressed_bytes, 0u);
  EXPECT_LT(cmp_dev.mark().bytes_allocated, raw_dev.mark().bytes_allocated);
  EXPECT_EQ(cmp.num_vertices, raw.num_vertices);
  EXPECT_EQ(cmp.num_edges, raw.num_edges);
  EXPECT_EQ(cmp.max_out_degree, raw.max_out_degree);
}

TEST(CompressedImage, HandlesEmptyAndEdgelessGraphs) {
  const graph::Csr empty;
  simt::Device dev;
  const DeviceGraph g =
      DeviceGraph::upload_compressed(dev, graph::CompressedCsr::compress(empty));
  const auto spec = simt::GpuSpec::v100();
  EXPECT_EQ(CMergeCounter().count(dev, spec, g).triangles, 0u);
  EXPECT_EQ(CStageCounter().count(dev, spec, g).triangles, 0u);
}

}  // namespace
}  // namespace tcgpu::tc
