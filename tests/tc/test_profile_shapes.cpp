// Qualitative reproduction checks: the relative metric shapes §IV-A derives
// from the nvprof data must fall out of the simulator on a skewed
// medium-size graph. These are the claims EXPERIMENTS.md reports against.
#include <gtest/gtest.h>

#include <map>

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/rmat.hpp"

namespace tcgpu::tc {
namespace {

const std::map<std::string, framework::RunOutcome>& outcomes() {
  static const std::map<std::string, framework::RunOutcome> result = [] {
    gen::RmatParams p;
    p.scale = 12;
    p.edges = 30000;  // skewed, medium-size: the regime the analysis targets
    const auto pg = framework::prepare_graph("shape", gen::generate_rmat(p, 123));
    std::map<std::string, framework::RunOutcome> m;
    for (const auto& e : framework::all_algorithms()) {
      m[e.name] = framework::run_algorithm(*e.make(), pg, simt::GpuSpec::v100());
    }
    return m;
  }();
  return result;
}

std::uint64_t loads(const std::string& a) {
  return outcomes().at(a).result.total.metrics.global_load_requests;
}
double eff(const std::string& a) {
  return outcomes().at(a).result.total.metrics.warp_execution_efficiency();
}
double txreq(const std::string& a) {
  return outcomes().at(a).result.total.metrics.gld_transactions_per_request();
}

TEST(ProfileShapes, AllCountsValid) {
  for (const auto& [name, out] : outcomes()) EXPECT_TRUE(out.valid) << name;
}

// "its simple design requires much fewer memory accesses than the other
// methods" — Polak's loads are the (near-)minimum of the eight.
TEST(ProfileShapes, PolakIssuesFewLoads) {
  for (const char* other : {"Green", "Bisson", "TriCore", "Hu", "H-INDEX"}) {
    EXPECT_LT(loads("Polak"), loads(other)) << other;
  }
}

// "Hu experiences the highest number of memory accesses."
TEST(ProfileShapes, HuIssuesTheMostLoads) {
  for (const auto& [name, out] : outcomes()) {
    if (name == "Hu") continue;
    EXPECT_GT(loads("Hu"), out.result.total.metrics.global_load_requests) << name;
  }
}

// "Hu's fine-grained approach enables high warp execution efficiency."
// "both TRUST and H-INDEX show very high warp execution efficiency."
TEST(ProfileShapes, FineGrainedCodesHaveHighEfficiency) {
  EXPECT_GT(eff("Hu"), 0.9);
  EXPECT_GT(eff("TRUST"), 0.75);
  EXPECT_GT(eff("GroupTC"), 0.9);  // §V: "very high"
}

// Polak/Bisson: "below-average warp execution efficiency".
TEST(ProfileShapes, CoarseGrainedCodesDivergeMore) {
  EXPECT_LT(eff("Polak"), eff("Hu"));
  EXPECT_LT(eff("Bisson"), eff("Hu"));
  EXPECT_LT(eff("Bisson"), 0.6);
}

// "GroupTC['s] ... global load requests are very low" — lowest overall.
TEST(ProfileShapes, GroupTcLowestLoadsAmongFineGrained) {
  for (const char* other : {"Green", "TriCore", "Fox", "Hu", "H-INDEX", "TRUST"}) {
    EXPECT_LT(loads("GroupTC"), loads(other)) << other;
  }
}

// "the gld_transactions_per_request being high" for GroupTC; Polak's
// sequential merges are likewise uncoalesced; hash/fine-grained codes
// coalesce well.
TEST(ProfileShapes, TransactionsPerRequestOrdering) {
  EXPECT_GT(txreq("Polak"), txreq("TRUST"));
  EXPECT_GT(txreq("GroupTC"), txreq("TRUST"));
  EXPECT_GT(txreq("Polak"), txreq("Hu"));
  EXPECT_LT(txreq("Hu"), 2.0);  // strided adjacent access
}

// Fox: "memory access efficiency is very low" (lanes on non-adjacent edges)
// relative to the coalesced fine-grained codes.
TEST(ProfileShapes, FoxCoalescesWorseThanHu) {
  EXPECT_GT(txreq("Fox"), txreq("Hu"));
}

// Fox's binning exists to balance warps: efficiency above Polak's.
TEST(ProfileShapes, FoxBalancesBetterThanPolak) {
  EXPECT_GT(eff("Fox"), eff("Polak"));
}

}  // namespace
}  // namespace tcgpu::tc
