// Config-space correctness: every documented knob of every algorithm must
// preserve exactness (the paper's "Program configuration" section tries
// several of these per implementation).
#include <gtest/gtest.h>

#include "framework/runner.hpp"
#include "gen/rmat.hpp"
#include "tc/bisson.hpp"
#include "tc/fox.hpp"
#include "tc/green.hpp"
#include "tc/grouptc.hpp"
#include "tc/hindex.hpp"
#include "tc/hu.hpp"
#include "tc/polak.hpp"
#include "tc/tricore.hpp"
#include "tc/trust.hpp"

namespace tcgpu::tc {
namespace {

const framework::PreparedGraph& test_graph() {
  static const framework::PreparedGraph pg = [] {
    gen::RmatParams p;
    p.scale = 11;
    p.edges = 12000;
    return framework::prepare_graph("cfg_rmat", gen::generate_rmat(p, 55));
  }();
  return pg;
}

template <class Counter>
void expect_exact(const Counter& algo, const std::string& what) {
  const auto out =
      framework::run_algorithm(algo, test_graph(), simt::GpuSpec::v100());
  EXPECT_TRUE(out.valid) << what << ": got " << out.result.triangles << " want "
                         << test_graph().reference_triangles;
}

TEST(PolakConfig, BlockSizes) {
  for (const std::uint32_t block : {32u, 64u, 512u, 1024u}) {
    PolakCounter::Config c;
    c.block = block;
    expect_exact(PolakCounter(c), "block=" + std::to_string(block));
  }
}

TEST(GreenConfig, TeamSizes) {
  for (const std::uint32_t team : {2u, 4u, 8u, 16u, 32u}) {
    GreenCounter::Config c;
    c.threads_per_edge = team;
    expect_exact(GreenCounter(c), "team=" + std::to_string(team));
  }
}

TEST(BissonConfig, AllThreeGranularities) {
  {  // force block-per-vertex
    BissonCounter::Config c;
    c.block_threshold = 0.0;
    expect_exact(BissonCounter(c), "block mode");
  }
  {  // force warp-per-vertex
    BissonCounter::Config c;
    c.block_threshold = 1e9;
    c.warp_threshold = 0.0;
    expect_exact(BissonCounter(c), "warp mode");
  }
  {  // force thread-per-vertex
    BissonCounter::Config c;
    c.block_threshold = 1e9;
    c.warp_threshold = 1e9;
    expect_exact(BissonCounter(c), "thread mode");
  }
}

TEST(BissonConfig, GlobalBitmapFallbackOnTinySharedMemory) {
  BissonCounter::Config c;
  c.block_threshold = 0.0;  // block mode
  BissonCounter algo(c);
  simt::GpuSpec spec = simt::GpuSpec::v100();
  spec.shared_mem_per_block = 256;  // V bits cannot fit -> global scratch
  const auto out = framework::run_algorithm(algo, test_graph(), spec);
  EXPECT_TRUE(out.valid);
}

TEST(TriCoreConfig, CachedLevels) {
  for (const std::uint32_t levels : {1u, 2u, 3u, 4u, 5u}) {
    TriCoreCounter::Config c;
    c.cached_levels = levels;
    expect_exact(TriCoreCounter(c), "levels=" + std::to_string(levels));
  }
}

TEST(TriCoreConfig, NoCachingForSmallTables) {
  TriCoreCounter::Config c;
  c.min_table_for_cache = 0xFFFFFFFFu;  // never cache
  expect_exact(TriCoreCounter(c), "cache disabled");
}

TEST(FoxConfig, BinCounts) {
  for (const std::uint32_t bins : {1u, 2u, 4u, 6u}) {
    FoxCounter::Config c;
    c.num_bins = bins;
    expect_exact(FoxCounter(c), "bins=" + std::to_string(bins));
  }
}

TEST(HuConfig, TinySharedCacheStillExact) {
  HuCounter::Config c;
  c.cache_entries = 16;  // nearly everything falls back to global search
  expect_exact(HuCounter(c), "cache_entries=16");
}

TEST(HuConfig, BlockSizes) {
  for (const std::uint32_t block : {64u, 512u}) {
    HuCounter::Config c;
    c.block = block;
    expect_exact(HuCounter(c), "block=" + std::to_string(block));
  }
}

TEST(HIndexConfig, BlockPerEdgeVariantIsCorrectHere) {
  // The paper found the authors' block configuration produced wrong
  // results; this reimplementation must not.
  HIndexCounter::Config c;
  c.block_per_edge = true;
  c.buckets = 256;
  expect_exact(HIndexCounter(c), "block per edge");
}

TEST(HIndexConfig, SingleSharedSlotForcesOverflowPath) {
  HIndexCounter::Config c;
  c.shared_slots = 1;
  expect_exact(HIndexCounter(c), "shared_slots=1");
}

TEST(HIndexConfig, BucketCounts) {
  for (const std::uint32_t buckets : {8u, 16u, 64u}) {
    HIndexCounter::Config c;
    c.buckets = buckets;
    expect_exact(HIndexCounter(c), "buckets=" + std::to_string(buckets));
  }
}

TEST(TrustConfig, ThresholdExtremes) {
  {  // everything through the block kernel
    TrustCounter::Config c;
    c.block_threshold = 1;
    expect_exact(TrustCounter(c), "all block");
  }
  {  // everything through the warp kernel
    TrustCounter::Config c;
    c.block_threshold = 0xFFFFFFFFu;
    expect_exact(TrustCounter(c), "all warp");
  }
}

TEST(TrustConfig, BucketAndSlotVariants) {
  TrustCounter::Config c;
  c.block_buckets = 256;
  c.block_slots = 2;
  c.warp_buckets = 16;
  c.warp_slots = 2;
  expect_exact(TrustCounter(c), "small tables");
}

TEST(GroupTcConfig, EachOptimizationToggles) {
  for (int mask = 0; mask < 8; ++mask) {
    GroupTcCounter::Config c;
    c.prefix_skip = mask & 1;
    c.monotone_offset = mask & 2;
    c.table_flip = mask & 4;
    expect_exact(GroupTcCounter(c), "opt mask " + std::to_string(mask));
  }
}

TEST(GroupTcConfig, ChunkSizes) {
  for (const std::uint32_t chunk : {32u, 64u, 512u, 1024u}) {
    GroupTcCounter::Config c;
    c.block = chunk;
    expect_exact(GroupTcCounter(c), "chunk=" + std::to_string(chunk));
  }
}

TEST(GroupTcConfig, FlipRatios) {
  for (const std::uint32_t ratio : {1u, 2u, 16u, 1024u}) {
    GroupTcCounter::Config c;
    c.flip_ratio = ratio;
    expect_exact(GroupTcCounter(c), "flip_ratio=" + std::to_string(ratio));
  }
}

}  // namespace
}  // namespace tcgpu::tc
