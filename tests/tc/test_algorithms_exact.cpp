// Exactness: every algorithm must reproduce the CPU reference count on a
// grid of structured and random graphs (TEST_P over algorithm x graph).
#include <gtest/gtest.h>

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/chung_lu.hpp"
#include "gen/er.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/star_burst.hpp"

namespace tcgpu::tc {
namespace {

struct GraphCase {
  std::string name;
  graph::Coo coo;
};

std::vector<GraphCase> graph_cases() {
  std::vector<GraphCase> cases;

  {  // complete graph: C(16,3) = 560 triangles, max density
    graph::Coo k;
    k.num_vertices = 16;
    for (graph::VertexId i = 0; i < 16; ++i) {
      for (graph::VertexId j = i + 1; j < 16; ++j) k.edges.push_back({i, j});
    }
    cases.push_back({"K16", std::move(k)});
  }
  {  // single edge: smallest non-empty graph
    graph::Coo g;
    g.num_vertices = 2;
    g.edges = {{0, 1}};
    cases.push_back({"single_edge", std::move(g)});
  }
  {  // path: zero triangles, max divergence between endpoints
    graph::Coo g;
    g.num_vertices = 50;
    for (graph::VertexId i = 0; i + 1 < 50; ++i) g.edges.push_back({i, i + 1});
    cases.push_back({"path50", std::move(g)});
  }
  {  // star: one hub, no triangles — the workload-imbalance worst case
    graph::Coo g;
    g.num_vertices = 200;
    for (graph::VertexId leaf = 1; leaf < 200; ++leaf) g.edges.push_back({0, leaf});
    cases.push_back({"star199", std::move(g)});
  }
  {  // two triangles sharing an edge
    graph::Coo g;
    g.num_vertices = 4;
    g.edges = {{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}};
    cases.push_back({"bowtie", std::move(g)});
  }
  {  // bipartite: wedges everywhere, triangles nowhere
    graph::Coo g;
    g.num_vertices = 40;
    for (graph::VertexId a = 0; a < 20; ++a) {
      for (graph::VertexId b = 20; b < 40; b += 3) g.edges.push_back({a, b});
    }
    cases.push_back({"bipartite", std::move(g)});
  }
  cases.push_back({"er", gen::generate_er(800, 6000, 21)});
  {
    gen::RmatParams p;
    p.scale = 11;
    p.edges = 15000;
    cases.push_back({"rmat_skew", gen::generate_rmat(p, 22)});
  }
  {
    gen::RoadParams p;
    p.vertices = 3000;
    cases.push_back({"road", gen::generate_road(p, 23)});
  }
  {
    gen::StarBurstParams p;
    p.vertices = 4000;
    p.edges = 16000;
    cases.push_back({"star_burst", gen::generate_star_burst(p, 24)});
  }
  {
    gen::ChungLuParams p;
    p.vertices = 3000;
    p.edges = 12000;
    cases.push_back({"chung_lu", gen::generate_chung_lu(p, 25)});
  }
  return cases;
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& e : framework::extended_algorithms()) names.push_back(e.name);
  return names;
}

class AlgorithmExactness
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(AlgorithmExactness, MatchesCpuReference) {
  const auto& [algo_name, case_idx] = GetParam();
  static const std::vector<GraphCase> cases = graph_cases();
  const GraphCase& gc = cases[case_idx];

  const auto pg = framework::prepare_graph(gc.name, gc.coo);
  const auto algo = framework::make_algorithm(algo_name);
  const auto out = framework::run_algorithm(*algo, pg, simt::GpuSpec::v100());
  EXPECT_TRUE(out.valid) << algo_name << " on " << gc.name << ": got "
                         << out.result.triangles << ", want "
                         << pg.reference_triangles;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllGraphs, AlgorithmExactness,
    ::testing::Combine(::testing::ValuesIn(algorithm_names()),
                       ::testing::Range<std::size_t>(0, graph_cases().size())),
    [](const auto& info) {
      static const std::vector<GraphCase> cases = graph_cases();
      std::string name = std::get<0>(info.param) + "_" +
                         cases[std::get<1>(info.param)].name;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AlgorithmEdgeCases, EmptyGraphCountsZeroEverywhere) {
  graph::Coo empty;
  const auto pg = framework::prepare_graph("empty", empty);
  for (const auto& e : framework::extended_algorithms()) {
    const auto out =
        framework::run_algorithm(*e.make(), pg, simt::GpuSpec::v100());
    EXPECT_EQ(out.result.triangles, 0u) << e.name;
    EXPECT_TRUE(out.valid) << e.name;
  }
}

TEST(AlgorithmEdgeCases, RawInputWithLoopsAndDupsIsHandledByPipeline) {
  graph::Coo messy;
  messy.num_vertices = 6;
  messy.edges = {{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 0}, {2, 0}, {5, 5}};
  const auto pg = framework::prepare_graph("messy", messy);
  EXPECT_EQ(pg.reference_triangles, 1u);
  for (const auto& e : framework::extended_algorithms()) {
    EXPECT_TRUE(
        framework::run_algorithm(*e.make(), pg, simt::GpuSpec::v100()).valid)
        << e.name;
  }
}

TEST(AlgorithmEdgeCases, Rtx4090SpecCountsIdentically) {
  gen::RmatParams p;
  p.scale = 10;
  p.edges = 6000;
  const auto pg =
      framework::prepare_graph("rmat4090", gen::generate_rmat(p, 31));
  for (const auto& e : framework::extended_algorithms()) {
    EXPECT_TRUE(
        framework::run_algorithm(*e.make(), pg, simt::GpuSpec::rtx4090()).valid)
        << e.name;
  }
}

}  // namespace
}  // namespace tcgpu::tc
