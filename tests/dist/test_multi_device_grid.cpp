// The tentpole correctness grid (labeled `slow` in ctest): every algorithm
// x every partition strategy x several paper datasets, on device counts
// that exercise both the 1-D strategies and a proper 2-D grid. The
// aggregated multi-device count must equal the single-device count, which
// the engine already validates against the CPU reference.
#include <gtest/gtest.h>

#include "dist/runner.hpp"
#include "framework/registry.hpp"

namespace tcgpu::dist {
namespace {

TEST(MultiDeviceGrid, EveryAlgorithmEveryStrategyMatchesTheCpuReference) {
  framework::Engine::Config cfg;
  cfg.max_edges = 2000;
  cfg.workers = 1;
  framework::Engine engine(cfg);

  const std::vector<std::string> datasets = {"As-Caida", "P2p-Gnutella31",
                                             "RoadNet-CA"};
  const std::vector<std::uint32_t> device_counts = {3, 4};  // 1x3 and 2x2 grids

  for (const auto& ds : datasets) {
    const auto graph = engine.prepare(ds);
    for (const auto strategy : all_partition_strategies()) {
      for (const std::uint32_t n : device_counts) {
        MultiDeviceRunner runner(
            engine, {n, strategy, simt::InterconnectSpec::nvlink()});
        for (const auto& entry : framework::extended_algorithms()) {
          const auto algo = entry.make();
          const MultiRunResult multi = runner.run(*algo, graph);
          const framework::RunOutcome single = engine.run(*algo, graph);

          EXPECT_TRUE(single.valid) << entry.name << " on " << ds;
          EXPECT_TRUE(multi.valid)
              << entry.name << " on " << ds << " " << to_string(strategy)
              << " x" << n;
          EXPECT_EQ(multi.triangles, single.result.triangles)
              << entry.name << " on " << ds << " " << to_string(strategy)
              << " x" << n;
          EXPECT_EQ(multi.triangles, graph->reference_triangles);
        }
      }
    }
  }
  EXPECT_TRUE(engine.all_valid());
}

}  // namespace
}  // namespace tcgpu::dist
