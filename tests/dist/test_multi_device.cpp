#include "dist/runner.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "framework/registry.hpp"
#include "framework/runner.hpp"

namespace tcgpu::dist {
namespace {

framework::Engine::Config small_config() {
  framework::Engine::Config cfg;
  cfg.max_edges = 2000;
  cfg.workers = 1;
  return cfg;
}

TEST(MultiDeviceRunner, ZeroDevicesIsRejected) {
  framework::Engine engine(small_config());
  EXPECT_THROW(MultiDeviceRunner(engine, MultiRunConfig{0}),
               std::invalid_argument);
}

TEST(MultiDeviceRunner, SingleDeviceRunIsBitIdenticalToLegacyPath) {
  // N == 1 must be the single-device engine in disguise: same triangle
  // count and the exact same simulator metrics (the shard image reproduces
  // upload()'s allocation layout, so the address stream is identical).
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  for (const auto s : all_partition_strategies()) {
    MultiDeviceRunner runner(
        engine, {1, s, simt::InterconnectSpec::nvlink()});
    for (const auto& entry : framework::extended_algorithms()) {
      const auto algo = entry.make();
      const auto legacy =
          framework::run_algorithm(*algo, *graph, engine.config().spec);
      const MultiRunResult multi = runner.run(*algo, graph);
      EXPECT_TRUE(multi.valid) << entry.name;
      EXPECT_EQ(multi.triangles, legacy.result.triangles) << entry.name;
      EXPECT_EQ(multi.combined, legacy.result.total) << entry.name;
      ASSERT_EQ(multi.devices.size(), 1u);
      EXPECT_EQ(multi.devices[0].stats, legacy.result.total) << entry.name;
      // One device has nothing to exchange or reduce.
      EXPECT_EQ(multi.ghost_exchange, simt::TransferStats{});
      EXPECT_EQ(multi.count_reduce, simt::TransferStats{});
      EXPECT_DOUBLE_EQ(multi.comm_ms, 0.0);
      EXPECT_DOUBLE_EQ(multi.total_ms, multi.device_ms);
      EXPECT_DOUBLE_EQ(multi.speedup, 1.0);
    }
  }
}

TEST(MultiDeviceRunner, ModelsInterconnectTrafficAcrossDevices) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  MultiDeviceRunner runner(
      engine, {4, PartitionStrategy::kHash, simt::InterconnectSpec::nvlink()});
  const MultiRunResult r = runner.run("Polak", graph);

  EXPECT_TRUE(r.valid);
  EXPECT_EQ(r.triangles, graph->reference_triangles);
  ASSERT_EQ(r.devices.size(), 4u);

  // Hashing a connected graph over four devices replicates rows, so ghosts
  // must move; the count all-reduce moves 2*(N-1) eight-byte payloads.
  EXPECT_GT(r.ghost_exchange.bytes, 0u);
  EXPECT_GT(r.comm_ms, 0.0);
  EXPECT_EQ(r.count_reduce.messages, 6u);
  EXPECT_EQ(r.count_reduce.bytes, 6 * sizeof(std::uint64_t));
  EXPECT_DOUBLE_EQ(r.total_ms, r.device_ms + r.comm_ms);

  EXPECT_GE(r.load_imbalance, 1.0);
  EXPECT_GT(r.speedup, 0.0);
  EXPECT_GT(r.partition.replication_factor, 1.0);
  EXPECT_EQ(r.partition.num_devices, 4u);

  // Per-device shares must reassemble the whole problem.
  std::uint64_t triangles = 0, edges = 0, anchors = 0;
  for (const DeviceRun& d : r.devices) {
    triangles += d.triangles;
    edges += d.owned_edges;
    anchors += d.anchor_vertices;
  }
  EXPECT_EQ(triangles, r.triangles);
  EXPECT_EQ(edges, graph->dag.num_edges());
  EXPECT_EQ(anchors, graph->dag.num_vertices());
}

TEST(MultiDeviceRunner, RepeatedRunsAreDeterministic) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("P2p-Gnutella31");
  MultiDeviceRunner runner(
      engine, {3, PartitionStrategy::kRange, simt::InterconnectSpec::pcie3()});
  const MultiRunResult a = runner.run("TRUST", graph);
  const MultiRunResult b = runner.run("TRUST", graph);
  EXPECT_EQ(a.triangles, b.triangles);
  EXPECT_EQ(a.combined, b.combined);  // bit-identical stats
  EXPECT_EQ(a.ghost_exchange, b.ghost_exchange);
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
}

TEST(MultiDeviceRunner, AllValidStartsTrueAndSurvivesValidRuns) {
  framework::Engine engine(small_config());
  MultiDeviceRunner runner(engine, MultiRunConfig{2});
  EXPECT_TRUE(runner.all_valid());
  runner.run("Green", engine.prepare("As-Caida"));
  EXPECT_TRUE(runner.all_valid());
}

}  // namespace
}  // namespace tcgpu::dist
