#include "simt/interconnect.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tcgpu::simt {
namespace {

TEST(InterconnectSpec, PresetsMatchTheirLinkClasses) {
  const auto nv = InterconnectSpec::nvlink();
  EXPECT_EQ(nv.name, "nvlink");
  EXPECT_DOUBLE_EQ(nv.peer_bandwidth_gbps, 25.0);
  const auto pcie = InterconnectSpec::pcie3();
  EXPECT_EQ(pcie.name, "pcie3");
  // PCIe has both less bandwidth and more latency than NVLink.
  EXPECT_LT(pcie.peer_bandwidth_gbps, nv.peer_bandwidth_gbps);
  EXPECT_GT(pcie.latency_us, nv.latency_us);
}

TEST(InterconnectSpec, TransferTimeIsLatencyPlusBandwidthTerm) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 10.0;  // 10 GB/s
  s.latency_us = 5.0;
  // 10 MB at 10 GB/s = 1 ms, plus 0.005 ms latency.
  EXPECT_DOUBLE_EQ(s.transfer_ms(10'000'000), 1.005);
  // Zero bytes still pays the message latency.
  EXPECT_DOUBLE_EQ(s.transfer_ms(0), 0.005);
}

TEST(Interconnect, ScatterSumsTrafficAndTakesSlowestDevice) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 1.0;  // 1 GB/s => 1 byte = 1e-6 ms
  s.latency_us = 1.0;           // 1 message = 1e-3 ms
  const Interconnect net(s, 3);
  const TransferStats t = net.scatter({1'000'000, 2'000'000, 0}, {1, 2, 0});
  EXPECT_EQ(t.bytes, 3'000'000u);
  EXPECT_EQ(t.messages, 3u);
  // Device 1 is slowest: 2 messages (0.002 ms) + 2 MB (2 ms).
  EXPECT_DOUBLE_EQ(t.time_ms, 2.002);
}

TEST(Interconnect, ScatterRejectsWrongSizedVectors) {
  const Interconnect net(InterconnectSpec::nvlink(), 4);
  EXPECT_THROW(net.scatter({1, 2, 3}, {1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(net.scatter({1, 2, 3, 4}, {1}), std::invalid_argument);
}

TEST(Interconnect, AllReduceIsFreeOnOneDevice) {
  const Interconnect net(InterconnectSpec::nvlink(), 1);
  EXPECT_EQ(net.all_reduce(8), TransferStats{});
}

TEST(Interconnect, AllReduceModelsBinomialTree) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 1.0;
  s.latency_us = 1.0;
  // N = 4: reduce + broadcast move 2*(N-1) payloads; critical path is
  // 2*ceil(log2 4) = 4 steps of one payload each.
  const Interconnect net4(s, 4);
  const TransferStats t4 = net4.all_reduce(1000);
  EXPECT_EQ(t4.bytes, 6000u);
  EXPECT_EQ(t4.messages, 6u);
  EXPECT_DOUBLE_EQ(t4.time_ms, 4 * (1e-3 + 1000 * 1e-6));

  // N = 8 adds one more level: 6 steps, 14 payload moves.
  const Interconnect net8(s, 8);
  const TransferStats t8 = net8.all_reduce(1000);
  EXPECT_EQ(t8.bytes, 14'000u);
  EXPECT_EQ(t8.messages, 14u);
  EXPECT_DOUBLE_EQ(t8.time_ms, 6 * (1e-3 + 1000 * 1e-6));
}

TEST(TransferStats, AccumulatesSequentialStages) {
  TransferStats a{100, 2, 0.5};
  const TransferStats b{50, 1, 0.25};
  a += b;
  EXPECT_EQ(a, (TransferStats{150, 3, 0.75}));
}

// --- two-level cluster model ------------------------------------------------

TEST(InterconnectSpec, NetworkPresetsAreSlowerThanDeviceLinks) {
  const auto eth = InterconnectSpec::eth10g();
  const auto ib = InterconnectSpec::ib_edr();
  const auto nv = InterconnectSpec::nvlink();
  EXPECT_EQ(eth.name, "eth10g");
  EXPECT_EQ(ib.name, "ib-edr");
  // Both networks trail NVLink on bandwidth and latency; IB beats Ethernet.
  EXPECT_LT(eth.peer_bandwidth_gbps, nv.peer_bandwidth_gbps);
  EXPECT_LT(ib.peer_bandwidth_gbps, nv.peer_bandwidth_gbps);
  EXPECT_GT(eth.latency_us, ib.latency_us);
  EXPECT_GT(ib.latency_us, nv.latency_us);
}

TEST(InterconnectSpec, FromStringRoundTripsAndRejectsTypos) {
  for (const char* name : {"nvlink", "pcie3", "eth10g", "ib-edr"}) {
    EXPECT_EQ(interconnect_spec_from_string(name).name, name);
  }
  EXPECT_THROW(interconnect_spec_from_string(""), std::invalid_argument);
  EXPECT_THROW(interconnect_spec_from_string("infiniband"),
               std::invalid_argument);
  try {
    interconnect_spec_from_string("NVLINK");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The one-line error names every valid preset.
    EXPECT_NE(std::string(e.what()).find(valid_interconnect_list()),
              std::string::npos);
  }
}

TEST(ClusterSpec, PresetsDescribeHostsTimesDevices) {
  const auto single = ClusterSpec::single_host(4);
  EXPECT_EQ(single.hosts, 1u);
  EXPECT_EQ(single.num_devices(), 4u);
  const auto eth = ClusterSpec::ethernet(4, 8);
  EXPECT_EQ(eth.num_devices(), 32u);
  EXPECT_EQ(eth.host.intra.name, "nvlink");
  EXPECT_EQ(eth.inter.name, "eth10g");
  const auto ib = ClusterSpec::infiniband(2, 4);
  EXPECT_EQ(ib.num_devices(), 8u);
  EXPECT_EQ(ib.inter.name, "ib-edr");
}

TEST(ClusterInterconnect, ValidatesShapeAndDeviceCount) {
  const ClusterSpec one_device;  // single-host default: 1x1
  EXPECT_THROW(ClusterInterconnect(one_device, 2), std::invalid_argument);
  ClusterSpec zero = ClusterSpec::ethernet(2, 2);
  zero.host.devices = 0;
  EXPECT_THROW(ClusterInterconnect(zero, 0), std::invalid_argument);
  EXPECT_NO_THROW(ClusterInterconnect(ClusterSpec::ethernet(2, 2), 4));
}

TEST(ClusterInterconnect, MapsDevicesToContiguousHostBlocks) {
  const ClusterInterconnect net(ClusterSpec::ethernet(2, 3), 6);
  EXPECT_EQ(net.host_of(0), 0u);
  EXPECT_EQ(net.host_of(2), 0u);
  EXPECT_EQ(net.host_of(3), 1u);
  EXPECT_EQ(net.host_of(5), 1u);
  EXPECT_TRUE(net.same_host(0, 2));
  EXPECT_FALSE(net.same_host(2, 3));
  EXPECT_EQ(net.link(0, 1).name, "nvlink");
  EXPECT_EQ(net.link(0, 3).name, "eth10g");
}

TEST(ClusterInterconnect, ScatterPricesEachPairOnItsLinkLevel) {
  // 2 hosts x 2 devices, hand-checkable link constants: intra 1 GB/s / 1 us,
  // inter 0.1 GB/s / 10 us.
  ClusterSpec cs;
  cs.hosts = 2;
  cs.host.devices = 2;
  cs.host.intra = InterconnectSpec{"intra", 1.0, 1.0};
  cs.inter = InterconnectSpec{"inter", 0.1, 10.0};
  const ClusterInterconnect net(cs, 4);

  // Device 0 receives 1000 bytes / 2 rows from device 1 (same host) and
  // 4000 bytes / 4 rows from device 2 (other host); nothing else moves.
  std::vector<std::vector<std::uint64_t>> bytes(4,
                                                std::vector<std::uint64_t>(4));
  std::vector<std::vector<std::uint64_t>> rows(4,
                                               std::vector<std::uint64_t>(4));
  bytes[0][1] = 1000;
  rows[0][1] = 2;
  bytes[0][2] = 4000;
  rows[0][2] = 4;

  // Flat (per-row) messaging: intra = 2 msgs * 1us + 1000 B / 1 GB/s,
  // inter = 4 msgs * 10us + 4000 B / 0.1 GB/s.
  const ScatterModel flat = net.scatter(bytes, rows, /*aggregate=*/false);
  EXPECT_EQ(flat.intra.bytes, 1000u);
  EXPECT_EQ(flat.intra.messages, 2u);
  EXPECT_EQ(flat.inter.bytes, 4000u);
  EXPECT_EQ(flat.inter.messages, 4u);
  const double intra_ms = 2 * 1e-3 + 1000 / 1e9 * 1e3;
  const double inter_ms = 4 * 10e-3 + 4000 / 0.1e9 * 1e3;
  EXPECT_DOUBLE_EQ(flat.intra.time_ms, intra_ms);
  EXPECT_DOUBLE_EQ(flat.inter.time_ms, inter_ms);
  // Device 0 serializes both levels; other devices receive nothing.
  EXPECT_DOUBLE_EQ(flat.per_device_ms[0], intra_ms + inter_ms);
  EXPECT_DOUBLE_EQ(flat.per_device_ms[1], 0.0);
  EXPECT_DOUBLE_EQ(flat.total.time_ms, intra_ms + inter_ms);
  EXPECT_EQ(flat.total.bytes, 5000u);
  EXPECT_EQ(flat.total.messages, 6u);

  // Aggregated with a 2 KiB buffer: bytes unchanged, one buffered message
  // intra (1000 B fits one flush), two inter (4000 B needs two).
  const ScatterModel agg =
      net.scatter(bytes, rows, /*aggregate=*/true, /*buffer_bytes=*/2048);
  EXPECT_EQ(agg.total.bytes, flat.total.bytes);
  EXPECT_EQ(agg.intra.messages, 1u);
  EXPECT_EQ(agg.inter.messages, 2u);
  EXPECT_LT(agg.total.time_ms, flat.total.time_ms);
}

TEST(ClusterInterconnect, ScatterValidatesMatricesAndBuffer) {
  const ClusterInterconnect net(ClusterSpec::ethernet(2, 2), 4);
  const std::vector<std::vector<std::uint64_t>> square(
      4, std::vector<std::uint64_t>(4));
  EXPECT_THROW(net.scatter({{0}}, square, true), std::invalid_argument);
  EXPECT_THROW(net.scatter(square, {{0}}, false), std::invalid_argument);
  EXPECT_THROW(net.scatter(square, square, true, /*buffer_bytes=*/0),
               std::invalid_argument);
}

TEST(ClusterInterconnect, SingleHostAllReduceMatchesFlatModel) {
  // hosts == 1 must reproduce the flat Interconnect's binomial tree exactly
  // — the dist runner's single-host bit-identity rests on this degeneracy.
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    const Interconnect flat(InterconnectSpec::nvlink(), n);
    const ClusterInterconnect cluster(ClusterSpec::single_host(n), n);
    EXPECT_EQ(cluster.all_reduce(8), flat.all_reduce(8)) << n;
  }
}

TEST(ClusterInterconnect, HierarchicalAllReduceAddsOneLeaderExchange) {
  ClusterSpec cs;
  cs.hosts = 4;
  cs.host.devices = 4;
  cs.host.intra = InterconnectSpec{"intra", 1.0, 1.0};
  cs.inter = InterconnectSpec{"inter", 0.1, 10.0};
  const ClusterInterconnect net(cs, 16);
  const TransferStats t = net.all_reduce(1000);
  // Intra: per host 2*(4-1) payloads, 4 hosts in parallel, 2*log2(4) steps.
  // Inter: recursive doubling among 4 leaders = log2(4) steps, each host
  // sending one payload per step.
  EXPECT_EQ(t.bytes, 2u * 4 * 3 * 1000 + 4u * 2 * 1000);
  EXPECT_EQ(t.messages, 2u * 4 * 3 + 4u * 2);
  const double intra_step = 1e-3 + 1000 / 1e9 * 1e3;
  const double inter_step = 10e-3 + 1000 / 0.1e9 * 1e3;
  EXPECT_DOUBLE_EQ(t.time_ms, 2 * 2 * intra_step + 2 * inter_step);
}

}  // namespace
}  // namespace tcgpu::simt
