#include "simt/interconnect.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tcgpu::simt {
namespace {

TEST(InterconnectSpec, PresetsMatchTheirLinkClasses) {
  const auto nv = InterconnectSpec::nvlink();
  EXPECT_EQ(nv.name, "nvlink");
  EXPECT_DOUBLE_EQ(nv.peer_bandwidth_gbps, 25.0);
  const auto pcie = InterconnectSpec::pcie3();
  EXPECT_EQ(pcie.name, "pcie3");
  // PCIe has both less bandwidth and more latency than NVLink.
  EXPECT_LT(pcie.peer_bandwidth_gbps, nv.peer_bandwidth_gbps);
  EXPECT_GT(pcie.latency_us, nv.latency_us);
}

TEST(InterconnectSpec, TransferTimeIsLatencyPlusBandwidthTerm) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 10.0;  // 10 GB/s
  s.latency_us = 5.0;
  // 10 MB at 10 GB/s = 1 ms, plus 0.005 ms latency.
  EXPECT_DOUBLE_EQ(s.transfer_ms(10'000'000), 1.005);
  // Zero bytes still pays the message latency.
  EXPECT_DOUBLE_EQ(s.transfer_ms(0), 0.005);
}

TEST(Interconnect, ScatterSumsTrafficAndTakesSlowestDevice) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 1.0;  // 1 GB/s => 1 byte = 1e-6 ms
  s.latency_us = 1.0;           // 1 message = 1e-3 ms
  const Interconnect net(s, 3);
  const TransferStats t = net.scatter({1'000'000, 2'000'000, 0}, {1, 2, 0});
  EXPECT_EQ(t.bytes, 3'000'000u);
  EXPECT_EQ(t.messages, 3u);
  // Device 1 is slowest: 2 messages (0.002 ms) + 2 MB (2 ms).
  EXPECT_DOUBLE_EQ(t.time_ms, 2.002);
}

TEST(Interconnect, ScatterRejectsWrongSizedVectors) {
  const Interconnect net(InterconnectSpec::nvlink(), 4);
  EXPECT_THROW(net.scatter({1, 2, 3}, {1, 1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(net.scatter({1, 2, 3, 4}, {1}), std::invalid_argument);
}

TEST(Interconnect, AllReduceIsFreeOnOneDevice) {
  const Interconnect net(InterconnectSpec::nvlink(), 1);
  EXPECT_EQ(net.all_reduce(8), TransferStats{});
}

TEST(Interconnect, AllReduceModelsBinomialTree) {
  InterconnectSpec s;
  s.peer_bandwidth_gbps = 1.0;
  s.latency_us = 1.0;
  // N = 4: reduce + broadcast move 2*(N-1) payloads; critical path is
  // 2*ceil(log2 4) = 4 steps of one payload each.
  const Interconnect net4(s, 4);
  const TransferStats t4 = net4.all_reduce(1000);
  EXPECT_EQ(t4.bytes, 6000u);
  EXPECT_EQ(t4.messages, 6u);
  EXPECT_DOUBLE_EQ(t4.time_ms, 4 * (1e-3 + 1000 * 1e-6));

  // N = 8 adds one more level: 6 steps, 14 payload moves.
  const Interconnect net8(s, 8);
  const TransferStats t8 = net8.all_reduce(1000);
  EXPECT_EQ(t8.bytes, 14'000u);
  EXPECT_EQ(t8.messages, 14u);
  EXPECT_DOUBLE_EQ(t8.time_ms, 6 * (1e-3 + 1000 * 1e-6));
}

TEST(TransferStats, AccumulatesSequentialStages) {
  TransferStats a{100, 2, 0.5};
  const TransferStats b{50, 1, 0.25};
  a += b;
  EXPECT_EQ(a, (TransferStats{150, 3, 0.75}));
}

}  // namespace
}  // namespace tcgpu::simt
