// Multi-node (hosts > 1) behavior of MultiDeviceRunner: the single-host
// degeneracy pin, count exactness across topologies, the ordering of the
// four (aggregation, overlap) pricings, and the config plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "dist/runner.hpp"
#include "framework/runner.hpp"
#include "simt/gpu_spec.hpp"

namespace tcgpu::dist {
namespace {

framework::Engine::Config small_config() {
  framework::Engine::Config cfg;
  cfg.max_edges = 2000;
  cfg.workers = 1;
  return cfg;
}

/// A 2-hosts x 2-devices config over NVLink within / `inter` between.
MultiRunConfig cluster_config(PartitionStrategy strategy,
                              const simt::InterconnectSpec& inter) {
  MultiRunConfig cfg;
  cfg.num_devices = 4;
  cfg.strategy = strategy;
  cfg.hosts = 2;
  cfg.inter = inter;
  return cfg;
}

TEST(ClusterRunner, HostsMustDivideDevices) {
  framework::Engine engine(small_config());
  MultiRunConfig cfg;
  cfg.num_devices = 4;
  cfg.hosts = 3;
  EXPECT_THROW(MultiDeviceRunner(engine, cfg), std::invalid_argument);
  cfg.hosts = 0;
  EXPECT_THROW(MultiDeviceRunner(engine, cfg), std::invalid_argument);
}

TEST(ClusterRunner, ForClusterMirrorsTheSpec) {
  const auto spec = simt::ClusterSpec::ethernet(2, 4);
  const MultiRunConfig cfg = MultiRunConfig::for_cluster(spec);
  EXPECT_EQ(cfg.num_devices, 8u);
  EXPECT_EQ(cfg.hosts, 2u);
  EXPECT_EQ(cfg.strategy, PartitionStrategy::kHostAware);
  EXPECT_EQ(cfg.interconnect.name, spec.host.intra.name);
  EXPECT_EQ(cfg.inter.name, spec.inter.name);
}

TEST(ClusterRunner, SingleHostConfigIsBitIdenticalToLegacyRunner) {
  // hosts == 1 must not even smell of the cluster model: every field of the
  // result — triangles, simulator metrics, modeled times — matches the
  // pre-cluster runner bit for bit, for every strategy at N == 4.
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  for (const auto s : all_partition_strategies()) {
    MultiDeviceRunner legacy(engine,
                             {4, s, simt::InterconnectSpec::nvlink()});
    MultiRunConfig cfg;
    cfg.num_devices = 4;
    cfg.strategy = s;
    cfg.hosts = 1;
    cfg.inter = simt::InterconnectSpec::eth10g();  // must be ignored
    MultiDeviceRunner cluster(engine, cfg);

    const MultiRunResult a = legacy.run("Polak", graph);
    const MultiRunResult b = cluster.run("Polak", graph);
    EXPECT_EQ(b.hosts, 1u);
    EXPECT_EQ(a.triangles, b.triangles) << to_string(s);
    EXPECT_EQ(a.combined, b.combined) << to_string(s);
    EXPECT_EQ(a.ghost_exchange, b.ghost_exchange) << to_string(s);
    EXPECT_EQ(a.count_reduce, b.count_reduce) << to_string(s);
    EXPECT_DOUBLE_EQ(a.device_ms, b.device_ms) << to_string(s);
    EXPECT_DOUBLE_EQ(a.comm_ms, b.comm_ms) << to_string(s);
    EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms) << to_string(s);
    // All four pricings collapse to the one flat synchronous number.
    EXPECT_DOUBLE_EQ(b.flat_sync_ms, b.total_ms) << to_string(s);
    EXPECT_DOUBLE_EQ(b.flat_overlap_ms, b.total_ms) << to_string(s);
    EXPECT_DOUBLE_EQ(b.agg_sync_ms, b.total_ms) << to_string(s);
    EXPECT_DOUBLE_EQ(b.agg_overlap_ms, b.total_ms) << to_string(s);
    EXPECT_EQ(b.intra_exchange, simt::TransferStats{}) << to_string(s);
    EXPECT_EQ(b.inter_exchange, simt::TransferStats{}) << to_string(s);
  }
}

TEST(ClusterRunner, CountsStayExactAcrossTopologies) {
  // The comm model only prices time; the count must equal the CPU reference
  // on every topology and strategy.
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  for (const auto& inter :
       {simt::InterconnectSpec::eth10g(), simt::InterconnectSpec::ib_edr()}) {
    for (const auto s : all_partition_strategies()) {
      MultiDeviceRunner runner(engine, cluster_config(s, inter));
      const MultiRunResult r = runner.run("TRUST", graph);
      EXPECT_TRUE(r.valid) << to_string(s) << " over " << inter.name;
      EXPECT_EQ(r.triangles, graph->reference_triangles);
      EXPECT_EQ(r.hosts, 2u);
    }
  }
}

TEST(ClusterRunner, PricesAllFourCombosInOrder) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  MultiDeviceRunner runner(
      engine,
      cluster_config(PartitionStrategy::kHostAware,
                     simt::InterconnectSpec::eth10g()));
  const MultiRunResult r = runner.run("Polak", graph);

  // Aggregation can only drop messages; overlap can only hide time. The
  // full pipeline is the fastest corner, the flat synchronous baseline the
  // slowest; both come from this one run.
  EXPECT_GT(r.flat_sync_ms, 0.0);
  EXPECT_LE(r.agg_sync_ms, r.flat_sync_ms);
  EXPECT_LE(r.flat_overlap_ms, r.flat_sync_ms);
  EXPECT_LE(r.agg_overlap_ms, r.agg_sync_ms);
  EXPECT_LE(r.agg_overlap_ms, r.flat_overlap_ms);
  // A ghost row is far smaller than the flush buffer, so per-row messaging
  // on a slow link must strictly lose to the buffered scatter.
  EXPECT_LT(r.agg_sync_ms, r.flat_sync_ms);
  // Overlapped shards still finish no earlier than compute alone.
  EXPECT_GE(r.agg_overlap_ms, r.device_ms);

  // The configured combination (defaults: aggregate + overlap) is what
  // total_ms reports.
  EXPECT_DOUBLE_EQ(r.total_ms, r.agg_overlap_ms);
}

TEST(ClusterRunner, TotalFollowsTheConfiguredComboFlags) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  const struct {
    bool aggregate, overlap;
    double MultiRunResult::* field;
  } combos[] = {
      {false, false, &MultiRunResult::flat_sync_ms},
      {false, true, &MultiRunResult::flat_overlap_ms},
      {true, false, &MultiRunResult::agg_sync_ms},
      {true, true, &MultiRunResult::agg_overlap_ms},
  };
  for (const auto& c : combos) {
    MultiRunConfig cfg = cluster_config(PartitionStrategy::kHostAware,
                                        simt::InterconnectSpec::eth10g());
    cfg.aggregate = c.aggregate;
    cfg.overlap = c.overlap;
    MultiDeviceRunner runner(engine, cfg);
    const MultiRunResult r = runner.run("Polak", graph);
    EXPECT_DOUBLE_EQ(r.total_ms, r.*(c.field))
        << "aggregate=" << c.aggregate << " overlap=" << c.overlap;
  }
}

TEST(ClusterRunner, AggregationShrinksMessagesNotBytes) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  MultiRunConfig flat = cluster_config(PartitionStrategy::kHostAware,
                                       simt::InterconnectSpec::eth10g());
  flat.aggregate = false;
  MultiRunConfig agg = flat;
  agg.aggregate = true;
  const MultiRunResult rf =
      MultiDeviceRunner(engine, flat).run("Polak", graph);
  const MultiRunResult ra = MultiDeviceRunner(engine, agg).run("Polak", graph);

  // Buffering coalesces per-row updates into bounded flushes: same bytes on
  // the wire, far fewer messages to pay latency on.
  EXPECT_EQ(ra.ghost_exchange.bytes, rf.ghost_exchange.bytes);
  EXPECT_LT(ra.ghost_exchange.messages, rf.ghost_exchange.messages);
  EXPECT_LT(ra.ghost_exchange.time_ms, rf.ghost_exchange.time_ms);
}

TEST(ClusterRunner, SplitsExchangeByLinkLevel) {
  framework::Engine engine(small_config());
  const auto graph = engine.prepare("As-Caida");
  MultiDeviceRunner runner(
      engine,
      cluster_config(PartitionStrategy::kHostAware,
                     simt::InterconnectSpec::eth10g()));
  const MultiRunResult r = runner.run("Polak", graph);

  EXPECT_EQ(r.intra_exchange.bytes + r.inter_exchange.bytes,
            r.ghost_exchange.bytes);
  EXPECT_EQ(r.intra_exchange.messages + r.inter_exchange.messages,
            r.ghost_exchange.messages);
  // As-Caida sharded four ways ghosts rows in both directions on both
  // levels.
  EXPECT_GT(r.intra_exchange.bytes, 0u);
  EXPECT_GT(r.inter_exchange.bytes, 0u);
  // Per-shard receive time is populated for the overlap race.
  double max_recv = 0.0;
  for (const DeviceRun& d : r.devices) max_recv = std::max(max_recv, d.recv_ms);
  EXPECT_GT(max_recv, 0.0);
}

}  // namespace
}  // namespace tcgpu::dist
