#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "framework/runner.hpp"
#include "gen/er.hpp"
#include "gen/paper_datasets.hpp"
#include "gen/rng.hpp"

namespace tcgpu::dist {
namespace {

/// A mid-sized oriented DAG with a non-trivial triangle population.
graph::Csr test_dag() {
  static const graph::Csr dag =
      framework::prepare_graph("er", gen::generate_er(400, 3000, 7)).dag;
  return dag;
}

std::vector<PartitionStrategy> strategies() { return all_partition_strategies(); }

TEST(PartitionStrategy, NamesRoundTrip) {
  for (const auto s : strategies()) {
    EXPECT_EQ(partition_strategy_from_string(to_string(s)), s);
  }
  EXPECT_EQ(to_string(PartitionStrategy::kRange), "range");
  EXPECT_EQ(to_string(PartitionStrategy::kHash), "hash");
  EXPECT_EQ(to_string(PartitionStrategy::k2D), "2d");
  EXPECT_EQ(to_string(PartitionStrategy::kHostAware), "host");
}

TEST(PartitionStrategy, UnknownNameFailsLoudly) {
  EXPECT_THROW(partition_strategy_from_string(""), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("random"), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("RANGE"), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("2D"), std::invalid_argument);
}

TEST(Partitioner, ZeroDevicesIsRejected) {
  EXPECT_THROW(Partitioner(PartitionStrategy::kRange, 0, 42),
               std::invalid_argument);
}

TEST(Partitioner, TwoDGridUsesSquarestFactorization) {
  const auto grid = [](std::uint32_t n) {
    const Partitioner p(PartitionStrategy::k2D, n, 42);
    return std::make_pair(p.grid_rows(), p.grid_cols());
  };
  EXPECT_EQ(grid(1), std::make_pair(1u, 1u));
  EXPECT_EQ(grid(2), std::make_pair(1u, 2u));
  EXPECT_EQ(grid(4), std::make_pair(2u, 2u));
  EXPECT_EQ(grid(6), std::make_pair(2u, 3u));
  EXPECT_EQ(grid(8), std::make_pair(2u, 4u));
  EXPECT_EQ(grid(9), std::make_pair(3u, 3u));
}

TEST(Partitioner, SingleDeviceShardIsTheWholeGraph) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 1, 42).partition(dag);
    ASSERT_EQ(parts.shards.size(), 1u);
    const Shard& shard = parts.shards[0];
    EXPECT_EQ(shard.csr, dag);
    EXPECT_FALSE(shard.use_anchor_list);
    EXPECT_TRUE(shard.anchors.empty());
    EXPECT_EQ(shard.edge_u.size(), dag.num_edges());
    EXPECT_EQ(shard.ghost_vertices, 0u);
    EXPECT_EQ(shard.recv_bytes(), 0u);
    EXPECT_DOUBLE_EQ(parts.report.replication_factor, 1.0);
    EXPECT_DOUBLE_EQ(parts.report.edge_balance, 1.0);
  }
}

TEST(Partitioner, AnchorsPartitionTheVertexSet) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::vector<int> seen(dag.num_vertices(), 0);
    for (const Shard& shard : parts.shards) {
      EXPECT_TRUE(shard.use_anchor_list);
      for (const std::uint32_t u : shard.anchors) ++seen[u];
    }
    for (const int count : seen) EXPECT_EQ(count, 1) << to_string(s);
  }
}

TEST(Partitioner, OwnedEdgesPartitionTheEdgeSet) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
    std::uint64_t total = 0;
    for (const Shard& shard : parts.shards) {
      ASSERT_EQ(shard.edge_u.size(), shard.edge_v.size());
      total += shard.edge_u.size();
      for (std::size_t i = 0; i < shard.edge_u.size(); ++i) {
        ++seen[{shard.edge_u[i], shard.edge_v[i]}];
      }
    }
    EXPECT_EQ(total, dag.num_edges()) << to_string(s);
    for (std::uint32_t u = 0; u < dag.num_vertices(); ++u) {
      for (const std::uint32_t v : dag.neighbors(u)) {
        EXPECT_EQ(seen[std::make_pair(u, v)], 1)
            << to_string(s) << " edge " << u << "->" << v;
      }
    }
  }
}

TEST(Partitioner, ShardRowsCarryTheFullGlobalAdjacency) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    for (const Shard& shard : parts.shards) {
      ASSERT_EQ(shard.csr.num_vertices(), dag.num_vertices());
      // Every non-empty shard row is the complete global row (kernels
      // binary-search and merge whole neighbor lists).
      for (std::uint32_t v = 0; v < dag.num_vertices(); ++v) {
        const auto row = shard.csr.neighbors(v);
        if (row.empty()) continue;
        ASSERT_EQ(row.size(), dag.neighbors(v).size());
        EXPECT_TRUE(std::equal(row.begin(), row.end(),
                               dag.neighbors(v).begin()));
      }
      // Owned work only touches rows the shard holds: anchor rows, anchor
      // neighbors' rows, and both endpoint rows of every owned edge.
      for (const std::uint32_t u : shard.anchors) {
        EXPECT_EQ(shard.csr.degree(u), dag.degree(u));
        for (const std::uint32_t v : dag.neighbors(u)) {
          EXPECT_EQ(shard.csr.degree(v), dag.degree(v));
        }
      }
      for (std::size_t i = 0; i < shard.edge_u.size(); ++i) {
        EXPECT_EQ(shard.csr.degree(shard.edge_u[i]), dag.degree(shard.edge_u[i]));
        EXPECT_EQ(shard.csr.degree(shard.edge_v[i]), dag.degree(shard.edge_v[i]));
      }
    }
  }
}

TEST(Partitioner, GhostAccountingMatchesRowBytes) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::uint64_t ghost_vertices = 0, ghost_entries = 0;
    for (const Shard& shard : parts.shards) {
      // Each ghost row costs its entries plus an 8-byte row header.
      EXPECT_EQ(shard.recv_bytes(),
                shard.ghost_entries * 4 + shard.ghost_vertices * 8);
      // Nothing is "received" from the shard itself.
      EXPECT_EQ(shard.recv_bytes_from[shard.device], 0u);
      EXPECT_EQ(shard.recv_messages_from[shard.device], 0u);
      // At most one bulk message per contributing peer.
      for (std::uint32_t o = 0; o < parts.report.num_devices; ++o) {
        EXPECT_EQ(shard.recv_messages_from[o],
                  shard.recv_bytes_from[o] > 0 ? 1u : 0u);
      }
      ghost_vertices += shard.ghost_vertices;
      ghost_entries += shard.ghost_entries;
    }
    EXPECT_EQ(parts.report.ghost_vertices, ghost_vertices);
    EXPECT_EQ(parts.report.ghost_entries, ghost_entries);
    EXPECT_GE(parts.report.replication_factor, 1.0);
    EXPECT_GE(parts.report.edge_balance, 1.0);
  }
}

TEST(Partitioner, HashOwnershipIsSeededSplitMix) {
  // The partition hash is the repo's SplitMix64, not std::hash — the shard
  // layout must reproduce bit-identically on every platform.
  const graph::Csr dag = test_dag();
  const std::uint64_t seed = 42;
  const std::uint32_t n = 4;
  const Partitioning parts =
      Partitioner(PartitionStrategy::kHash, n, seed).partition(dag);
  for (const Shard& shard : parts.shards) {
    for (const std::uint32_t u : shard.anchors) {
      EXPECT_EQ(gen::SplitMix64(seed + u).next() % n, shard.device);
    }
  }
}

TEST(Partitioner, SeedMovesHashedVertices) {
  const graph::Csr dag = test_dag();
  const auto a = Partitioner(PartitionStrategy::kHash, 4, 1).partition(dag);
  const auto b = Partitioner(PartitionStrategy::kHash, 4, 2).partition(dag);
  EXPECT_NE(a.shards[0].anchors, b.shards[0].anchors);
  // Same seed reproduces the same partitioning exactly.
  const auto c = Partitioner(PartitionStrategy::kHash, 4, 1).partition(dag);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(a.shards[d].anchors, c.shards[d].anchors);
    EXPECT_EQ(a.shards[d].edge_u, c.shards[d].edge_u);
    EXPECT_EQ(a.shards[d].csr, c.shards[d].csr);
  }
}

TEST(Partitioner, PinnedShardSizesOnPaperDataset) {
  // Golden shard shapes for As-Caida (edge cap 20000, seed 42) hashed over
  // four devices: any drift in the hash, the orientation, or the generator
  // shows up here before it shows up as a miscount.
  const auto pg = framework::prepare_dataset(gen::dataset_by_name("As-Caida"),
                                             20'000, 42);
  const Partitioning parts =
      Partitioner(PartitionStrategy::kHash, 4, 42).partition(pg.dag);
  std::vector<std::uint64_t> anchor_counts, owned_edges;
  for (const Shard& shard : parts.shards) {
    anchor_counts.push_back(shard.anchors.size());
    owned_edges.push_back(shard.edge_u.size());
  }
  EXPECT_EQ(anchor_counts, (std::vector<std::uint64_t>{1745, 1839, 1855, 1802}));
  EXPECT_EQ(owned_edges, (std::vector<std::uint64_t>{4713, 5060, 5208, 5019}));
}

// --- host-aware (two-level) strategy ----------------------------------------

/// A DAG with strong id locality (vertex u points at u+1 and u+2): range
/// cuts sever almost nothing, hashing severs almost everything — the shape
/// that separates the two-level strategy from flat hashing.
graph::Csr local_dag() {
  const std::uint32_t n = 256;
  std::vector<graph::EdgeIndex> row_ptr(n + 1, 0);
  std::vector<graph::VertexId> col;
  for (std::uint32_t u = 0; u < n; ++u) {
    if (u + 1 < n) col.push_back(u + 1);
    if (u + 2 < n) col.push_back(u + 2);
    row_ptr[u + 1] = static_cast<graph::EdgeIndex>(col.size());
  }
  return graph::Csr(std::move(row_ptr), std::move(col));
}

/// Bytes shard d receives from owners on another host (device o lives on
/// host o / (n / hosts)).
std::uint64_t inter_host_bytes(const Partitioning& parts, std::uint32_t hosts) {
  const auto n = static_cast<std::uint32_t>(parts.shards.size());
  const std::uint32_t per_host = n / hosts;
  std::uint64_t bytes = 0;
  for (const Shard& s : parts.shards) {
    for (std::uint32_t o = 0; o < n; ++o) {
      if (s.device / per_host != o / per_host) bytes += s.recv_bytes_from[o];
    }
  }
  return bytes;
}

TEST(Partitioner, HostCountMustDivideDevices) {
  EXPECT_THROW(Partitioner(PartitionStrategy::kHostAware, 4, 42, 0),
               std::invalid_argument);
  EXPECT_THROW(Partitioner(PartitionStrategy::kHostAware, 4, 42, 3),
               std::invalid_argument);
  const Partitioner p(PartitionStrategy::kHostAware, 8, 42, 2);
  EXPECT_EQ(p.hosts(), 2u);
}

TEST(Partitioner, HostAwareOnOneHostDegeneratesToHash) {
  // hosts == 1: one degree-balanced block over everything, then hash within
  // it — exactly the flat hash strategy, shard for shard.
  const graph::Csr dag = test_dag();
  const auto host =
      Partitioner(PartitionStrategy::kHostAware, 4, 42, 1).partition(dag);
  const auto hash = Partitioner(PartitionStrategy::kHash, 4, 42).partition(dag);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(host.shards[d].anchors, hash.shards[d].anchors);
    EXPECT_EQ(host.shards[d].edge_u, hash.shards[d].edge_u);
    EXPECT_EQ(host.shards[d].csr, hash.shards[d].csr);
    EXPECT_EQ(host.shards[d].recv_bytes_from, hash.shards[d].recv_bytes_from);
  }
}

TEST(Partitioner, HostAwareAnchorsStayInContiguousHostRanges) {
  // Every anchor on host h must precede every anchor on host h+1: the host
  // level is a contiguous range cut (that containment is what keeps ghosts
  // of neighboring vertices on the same host).
  const graph::Csr dag = test_dag();
  const std::uint32_t hosts = 2, n = 4, per_host = n / hosts;
  const Partitioning parts =
      Partitioner(PartitionStrategy::kHostAware, n, 42, hosts).partition(dag);
  std::uint32_t host0_max = 0;
  std::uint32_t host1_min = dag.num_vertices();
  for (const Shard& s : parts.shards) {
    for (const std::uint32_t u : s.anchors) {
      if (s.device / per_host == 0) {
        host0_max = std::max(host0_max, u);
      } else {
        host1_min = std::min(host1_min, u);
      }
    }
  }
  EXPECT_LT(host0_max, host1_min);
}

TEST(Partitioner, HostAwareCutsLessInterHostTrafficThanHash) {
  const graph::Csr dag = local_dag();
  const std::uint32_t n = 4, hosts = 2;
  const auto host =
      Partitioner(PartitionStrategy::kHostAware, n, 42, hosts).partition(dag);
  const auto hash = Partitioner(PartitionStrategy::kHash, n, 42).partition(dag);
  // On a locality-friendly graph the range cut crosses hosts only at the
  // block boundary; hashing scatters neighbors across both hosts.
  EXPECT_LT(inter_host_bytes(host, hosts), inter_host_bytes(hash, hosts) / 2);
  EXPECT_GT(inter_host_bytes(host, hosts), 0u);  // the boundary still moves
}

TEST(Partitioner, RowCountsMatchTheUnbufferedMessageCount) {
  // recv_rows_from is the flat (per-row) scatter's message matrix: it must
  // count exactly the ghost rows behind recv_bytes_from, peer by peer.
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42, 1).partition(dag);
    for (const Shard& shard : parts.shards) {
      std::uint64_t rows = 0;
      for (std::uint32_t o = 0; o < 4; ++o) {
        rows += shard.recv_rows_from[o];
        EXPECT_EQ(shard.recv_rows_from[o] > 0, shard.recv_bytes_from[o] > 0);
      }
      EXPECT_EQ(rows, shard.ghost_vertices);
      EXPECT_EQ(shard.recv_rows_from[shard.device], 0u);
    }
  }
}

TEST(Partitioner, HostAwareIsBitIdenticalAcrossOmpThreadCounts) {
  // Sharding feeds a deterministic distributed run: the same (strategy,
  // devices, seed, hosts, graph) must produce byte-identical shards no
  // matter how many OMP threads the host process runs.
  const graph::Csr dag = test_dag();
  int saved = 1;
#ifdef _OPENMP
  saved = omp_get_max_threads();
#endif
  const auto reference =
      Partitioner(PartitionStrategy::kHostAware, 8, 42, 2).partition(dag);
  for (const int threads : {1, 2, 4}) {
#ifdef _OPENMP
    omp_set_num_threads(threads);
#else
    (void)threads;
#endif
    const auto parts =
        Partitioner(PartitionStrategy::kHostAware, 8, 42, 2).partition(dag);
    for (std::uint32_t d = 0; d < 8; ++d) {
      EXPECT_EQ(parts.shards[d].anchors, reference.shards[d].anchors);
      EXPECT_EQ(parts.shards[d].edge_u, reference.shards[d].edge_u);
      EXPECT_EQ(parts.shards[d].edge_v, reference.shards[d].edge_v);
      EXPECT_EQ(parts.shards[d].csr, reference.shards[d].csr);
      EXPECT_EQ(parts.shards[d].recv_bytes_from,
                reference.shards[d].recv_bytes_from);
      EXPECT_EQ(parts.shards[d].recv_rows_from,
                reference.shards[d].recv_rows_from);
    }
  }
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif
}

TEST(Partitioner, EmptyGraphShardsAreEmpty) {
  const graph::Csr empty;
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(empty);
    ASSERT_EQ(parts.shards.size(), 4u);
    for (const Shard& shard : parts.shards) {
      EXPECT_EQ(shard.edge_u.size(), 0u);
      EXPECT_TRUE(shard.anchors.empty());
      EXPECT_EQ(shard.csr.num_edges(), 0u);
    }
    EXPECT_DOUBLE_EQ(parts.report.replication_factor, 1.0);
  }
}

}  // namespace
}  // namespace tcgpu::dist
