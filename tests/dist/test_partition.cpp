#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "framework/runner.hpp"
#include "gen/er.hpp"
#include "gen/paper_datasets.hpp"
#include "gen/rng.hpp"

namespace tcgpu::dist {
namespace {

/// A mid-sized oriented DAG with a non-trivial triangle population.
graph::Csr test_dag() {
  static const graph::Csr dag =
      framework::prepare_graph("er", gen::generate_er(400, 3000, 7)).dag;
  return dag;
}

std::vector<PartitionStrategy> strategies() { return all_partition_strategies(); }

TEST(PartitionStrategy, NamesRoundTrip) {
  for (const auto s : strategies()) {
    EXPECT_EQ(partition_strategy_from_string(to_string(s)), s);
  }
  EXPECT_EQ(to_string(PartitionStrategy::kRange), "range");
  EXPECT_EQ(to_string(PartitionStrategy::kHash), "hash");
  EXPECT_EQ(to_string(PartitionStrategy::k2D), "2d");
}

TEST(PartitionStrategy, UnknownNameFailsLoudly) {
  EXPECT_THROW(partition_strategy_from_string(""), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("random"), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("RANGE"), std::invalid_argument);
  EXPECT_THROW(partition_strategy_from_string("2D"), std::invalid_argument);
}

TEST(Partitioner, ZeroDevicesIsRejected) {
  EXPECT_THROW(Partitioner(PartitionStrategy::kRange, 0, 42),
               std::invalid_argument);
}

TEST(Partitioner, TwoDGridUsesSquarestFactorization) {
  const auto grid = [](std::uint32_t n) {
    const Partitioner p(PartitionStrategy::k2D, n, 42);
    return std::make_pair(p.grid_rows(), p.grid_cols());
  };
  EXPECT_EQ(grid(1), std::make_pair(1u, 1u));
  EXPECT_EQ(grid(2), std::make_pair(1u, 2u));
  EXPECT_EQ(grid(4), std::make_pair(2u, 2u));
  EXPECT_EQ(grid(6), std::make_pair(2u, 3u));
  EXPECT_EQ(grid(8), std::make_pair(2u, 4u));
  EXPECT_EQ(grid(9), std::make_pair(3u, 3u));
}

TEST(Partitioner, SingleDeviceShardIsTheWholeGraph) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 1, 42).partition(dag);
    ASSERT_EQ(parts.shards.size(), 1u);
    const Shard& shard = parts.shards[0];
    EXPECT_EQ(shard.csr, dag);
    EXPECT_FALSE(shard.use_anchor_list);
    EXPECT_TRUE(shard.anchors.empty());
    EXPECT_EQ(shard.edge_u.size(), dag.num_edges());
    EXPECT_EQ(shard.ghost_vertices, 0u);
    EXPECT_EQ(shard.recv_bytes(), 0u);
    EXPECT_DOUBLE_EQ(parts.report.replication_factor, 1.0);
    EXPECT_DOUBLE_EQ(parts.report.edge_balance, 1.0);
  }
}

TEST(Partitioner, AnchorsPartitionTheVertexSet) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::vector<int> seen(dag.num_vertices(), 0);
    for (const Shard& shard : parts.shards) {
      EXPECT_TRUE(shard.use_anchor_list);
      for (const std::uint32_t u : shard.anchors) ++seen[u];
    }
    for (const int count : seen) EXPECT_EQ(count, 1) << to_string(s);
  }
}

TEST(Partitioner, OwnedEdgesPartitionTheEdgeSet) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
    std::uint64_t total = 0;
    for (const Shard& shard : parts.shards) {
      ASSERT_EQ(shard.edge_u.size(), shard.edge_v.size());
      total += shard.edge_u.size();
      for (std::size_t i = 0; i < shard.edge_u.size(); ++i) {
        ++seen[{shard.edge_u[i], shard.edge_v[i]}];
      }
    }
    EXPECT_EQ(total, dag.num_edges()) << to_string(s);
    for (std::uint32_t u = 0; u < dag.num_vertices(); ++u) {
      for (const std::uint32_t v : dag.neighbors(u)) {
        EXPECT_EQ(seen[std::make_pair(u, v)], 1)
            << to_string(s) << " edge " << u << "->" << v;
      }
    }
  }
}

TEST(Partitioner, ShardRowsCarryTheFullGlobalAdjacency) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    for (const Shard& shard : parts.shards) {
      ASSERT_EQ(shard.csr.num_vertices(), dag.num_vertices());
      // Every non-empty shard row is the complete global row (kernels
      // binary-search and merge whole neighbor lists).
      for (std::uint32_t v = 0; v < dag.num_vertices(); ++v) {
        const auto row = shard.csr.neighbors(v);
        if (row.empty()) continue;
        ASSERT_EQ(row.size(), dag.neighbors(v).size());
        EXPECT_TRUE(std::equal(row.begin(), row.end(),
                               dag.neighbors(v).begin()));
      }
      // Owned work only touches rows the shard holds: anchor rows, anchor
      // neighbors' rows, and both endpoint rows of every owned edge.
      for (const std::uint32_t u : shard.anchors) {
        EXPECT_EQ(shard.csr.degree(u), dag.degree(u));
        for (const std::uint32_t v : dag.neighbors(u)) {
          EXPECT_EQ(shard.csr.degree(v), dag.degree(v));
        }
      }
      for (std::size_t i = 0; i < shard.edge_u.size(); ++i) {
        EXPECT_EQ(shard.csr.degree(shard.edge_u[i]), dag.degree(shard.edge_u[i]));
        EXPECT_EQ(shard.csr.degree(shard.edge_v[i]), dag.degree(shard.edge_v[i]));
      }
    }
  }
}

TEST(Partitioner, GhostAccountingMatchesRowBytes) {
  const graph::Csr dag = test_dag();
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(dag);
    std::uint64_t ghost_vertices = 0, ghost_entries = 0;
    for (const Shard& shard : parts.shards) {
      // Each ghost row costs its entries plus an 8-byte row header.
      EXPECT_EQ(shard.recv_bytes(),
                shard.ghost_entries * 4 + shard.ghost_vertices * 8);
      // Nothing is "received" from the shard itself.
      EXPECT_EQ(shard.recv_bytes_from[shard.device], 0u);
      EXPECT_EQ(shard.recv_messages_from[shard.device], 0u);
      // At most one bulk message per contributing peer.
      for (std::uint32_t o = 0; o < parts.report.num_devices; ++o) {
        EXPECT_EQ(shard.recv_messages_from[o],
                  shard.recv_bytes_from[o] > 0 ? 1u : 0u);
      }
      ghost_vertices += shard.ghost_vertices;
      ghost_entries += shard.ghost_entries;
    }
    EXPECT_EQ(parts.report.ghost_vertices, ghost_vertices);
    EXPECT_EQ(parts.report.ghost_entries, ghost_entries);
    EXPECT_GE(parts.report.replication_factor, 1.0);
    EXPECT_GE(parts.report.edge_balance, 1.0);
  }
}

TEST(Partitioner, HashOwnershipIsSeededSplitMix) {
  // The partition hash is the repo's SplitMix64, not std::hash — the shard
  // layout must reproduce bit-identically on every platform.
  const graph::Csr dag = test_dag();
  const std::uint64_t seed = 42;
  const std::uint32_t n = 4;
  const Partitioning parts =
      Partitioner(PartitionStrategy::kHash, n, seed).partition(dag);
  for (const Shard& shard : parts.shards) {
    for (const std::uint32_t u : shard.anchors) {
      EXPECT_EQ(gen::SplitMix64(seed + u).next() % n, shard.device);
    }
  }
}

TEST(Partitioner, SeedMovesHashedVertices) {
  const graph::Csr dag = test_dag();
  const auto a = Partitioner(PartitionStrategy::kHash, 4, 1).partition(dag);
  const auto b = Partitioner(PartitionStrategy::kHash, 4, 2).partition(dag);
  EXPECT_NE(a.shards[0].anchors, b.shards[0].anchors);
  // Same seed reproduces the same partitioning exactly.
  const auto c = Partitioner(PartitionStrategy::kHash, 4, 1).partition(dag);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(a.shards[d].anchors, c.shards[d].anchors);
    EXPECT_EQ(a.shards[d].edge_u, c.shards[d].edge_u);
    EXPECT_EQ(a.shards[d].csr, c.shards[d].csr);
  }
}

TEST(Partitioner, PinnedShardSizesOnPaperDataset) {
  // Golden shard shapes for As-Caida (edge cap 20000, seed 42) hashed over
  // four devices: any drift in the hash, the orientation, or the generator
  // shows up here before it shows up as a miscount.
  const auto pg = framework::prepare_dataset(gen::dataset_by_name("As-Caida"),
                                             20'000, 42);
  const Partitioning parts =
      Partitioner(PartitionStrategy::kHash, 4, 42).partition(pg.dag);
  std::vector<std::uint64_t> anchor_counts, owned_edges;
  for (const Shard& shard : parts.shards) {
    anchor_counts.push_back(shard.anchors.size());
    owned_edges.push_back(shard.edge_u.size());
  }
  EXPECT_EQ(anchor_counts, (std::vector<std::uint64_t>{1745, 1839, 1855, 1802}));
  EXPECT_EQ(owned_edges, (std::vector<std::uint64_t>{4713, 5060, 5208, 5019}));
}

TEST(Partitioner, EmptyGraphShardsAreEmpty) {
  const graph::Csr empty;
  for (const auto s : strategies()) {
    const Partitioning parts = Partitioner(s, 4, 42).partition(empty);
    ASSERT_EQ(parts.shards.size(), 4u);
    for (const Shard& shard : parts.shards) {
      EXPECT_EQ(shard.edge_u.size(), 0u);
      EXPECT_TRUE(shard.anchors.empty());
      EXPECT_EQ(shard.csr.num_edges(), 0u);
    }
    EXPECT_DOUBLE_EQ(parts.report.replication_factor, 1.0);
  }
}

}  // namespace
}  // namespace tcgpu::dist
