// The unified testing framework in action: run all nine algorithms on one
// of the paper's datasets and print a Figure-11-style comparison row with
// the profiling metrics of Figures 12/13. The engine prepares the dataset
// once and shares its device-resident DAG across all nine runs.
//
//   $ ./compare_algorithms                         # As-Skitter, capped
//   $ ./compare_algorithms --datasets=Com-Dblp
//   $ ./compare_algorithms --max-edges=500000 --gpu=rtx4090
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "As-Skitter" : opt.datasets[0];

  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);

  std::cout << dataset << " (scaled): V=" << pg->stats.num_vertices
            << " E=" << pg->stats.num_undirected_edges
            << " avg_deg=" << pg->stats.avg_degree
            << " triangles=" << pg->reference_triangles << "\n\n";

  framework::ResultTable table({"algorithm", "time_ms", "valid", "gld_requests",
                                "gld_tx_per_req", "warp_eff_pct"});
  for (const auto& entry : framework::all_algorithms()) {
    const auto algo = entry.make();
    const auto out = engine.run(*algo, pg);
    const auto& m = out.result.total.metrics;
    table.add_row({entry.name, framework::ResultTable::fmt(out.result.total.time_ms, 4),
                   out.valid ? "yes" : "NO",
                   std::to_string(m.global_load_requests),
                   framework::ResultTable::fmt(m.gld_transactions_per_request(), 2),
                   framework::ResultTable::fmt(m.warp_execution_efficiency() * 100, 1)});
  }
  framework::emit(table, opt, std::cout);
  return engine.exit_code();
}
