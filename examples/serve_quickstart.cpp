// Serve quickstart: stand up the concurrent query service, submit a burst
// of triangle-count queries, and watch the cost model route each graph to a
// different kernel — the paper's "no single winner" result as a service.
//
//   $ ./serve_quickstart
//
// Three steps: make an engine -> wrap it in a QueryService (bounded
// admission queue, worker threads, same-graph batching) -> submit
// QueryRequests and read the futures. Every reply carries the exact count,
// the chosen kernel with its modeled cost, and a per-query trace.
#include <cstdio>
#include <future>
#include <vector>

#include "serve/service.hpp"

int main() {
  using namespace tcgpu;

  // 1. Engine (graph cache + device pool) and the service on top of it.
  framework::Engine engine;
  serve::QueryService service(engine);

  // 2. The selector scores all nine registered kernels a priori from graph
  //    statistics alone. The headline matchup: GroupTC's chunked binary
  //    search wins the small sparse graphs, TRUST's bucketed hash wins once
  //    there is enough work to amortize its tables — the model reproduces
  //    the crossover without running either kernel.
  for (const char* name : {"As-Caida", "Web-BerkStan"}) {
    const auto& stats = engine.prepare(name)->stats;
    std::printf("%s (n=%u, avg degree %.1f):\n", name, stats.num_vertices,
                stats.avg_out_degree);
    for (const auto& c : service.selector().score(stats)) {
      if (c.algorithm == "GroupTC" || c.algorithm == "TRUST") {
        std::printf("  %-8s modeled %.4f ms\n", c.algorithm.c_str(),
                    c.cost.modeled_ms);
      }
    }
  }

  // 3. A concurrent burst across three graphs. Same-graph queries are
  //    batched onto one prepare/upload; each graph gets its own winner.
  std::vector<std::future<serve::QueryReply>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const char* name : {"As-Caida", "Soc-Pokec", "Com-Orkut"}) {
      serve::QueryRequest req;
      req.dataset = name;
      futures.push_back(service.submit(std::move(req)));
    }
  }
  std::printf("\n%-10s %-8s %-10s %-9s %s\n", "dataset", "kernel", "triangles",
              "run ms", "total ms");
  for (auto& f : futures) {
    const auto reply = f.get();
    if (reply.status != serve::QueryStatus::kOk) {
      std::printf("%-10s FAILED: %s\n", reply.dataset.c_str(),
                  reply.error.c_str());
      continue;
    }
    std::printf("%-10s %-8s %-10llu %-9.4f %.4f\n", reply.dataset.c_str(),
                reply.algorithm.c_str(),
                static_cast<unsigned long long>(reply.triangles),
                reply.trace.run_ms(), reply.trace.total_ms());
  }

  const auto c = service.counters();
  std::printf("\nserved %llu queries in %llu prepare/upload batches\n",
              static_cast<unsigned long long>(c.served),
              static_cast<unsigned long long>(c.batches));
  return engine.exit_code();
}
