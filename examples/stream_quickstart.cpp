// Streaming quickstart: mutate a served graph and keep exact counts
// without ever re-running a full counting kernel.
//
//   $ ./stream_quickstart
//
// A QueryRequest can carry edge inserts/removals for a named dataset. The
// first mutation moves the dataset onto a stream::DynamicGraph; each batch
// commits as one delta (only wedges incident to the touched endpoints are
// re-intersected, on the simulated GPU), bumps the dataset's version, and
// invalidates every stale layer — cached prepares, the old snapshot's
// device image, selector refinement, and sticky picks. Count queries then
// answer against the current version.
#include <cstdio>
#include <future>

#include "serve/service.hpp"

int main() {
  using namespace tcgpu;

  framework::Engine engine;
  serve::QueryService service(engine);
  const char* dataset = "As-Caida";

  // 1. Baseline count at version 0 (the static serve path).
  serve::QueryRequest count;
  count.dataset = dataset;
  auto before = service.submit(std::move(count)).get();
  std::printf("v%llu: %llu triangles via %s\n",
              static_cast<unsigned long long>(before.version),
              static_cast<unsigned long long>(before.triangles),
              before.algorithm.c_str());

  // 2. A mutation batch: close one wedge, drop one edge. The reply carries
  //    the exact delta — no kernel rerun, just the touched wedges.
  serve::QueryRequest mutate;
  mutate.dataset = dataset;
  mutate.insert_edges = {{1, 2}, {2, 3}, {1, 3}};
  mutate.remove_edges = {{0, 5}};
  auto delta = service.submit(std::move(mutate)).get();
  std::printf("v%llu: delta %+lld -> %llu triangles (%s)\n",
              static_cast<unsigned long long>(delta.version),
              static_cast<long long>(delta.delta_triangles),
              static_cast<unsigned long long>(delta.triangles),
              to_string(delta.status));

  // 3. Counting again answers from the new version's snapshot: the DAG is
  //    re-uploaded once, the selector re-scores from the updated stats, and
  //    the full kernel run agrees with the maintained count.
  serve::QueryRequest recount;
  recount.dataset = dataset;
  auto after = service.submit(std::move(recount)).get();
  std::printf("v%llu: %llu triangles via %s (valid=%s)\n",
              static_cast<unsigned long long>(after.version),
              static_cast<unsigned long long>(after.triangles),
              after.algorithm.c_str(), after.valid ? "yes" : "NO");

  const bool exact = after.valid && after.triangles == delta.triangles;
  std::printf("maintained count %s the full kernel rerun\n",
              exact ? "matches" : "DOES NOT match");
  service.shutdown();
  return exact && engine.exit_code() == 0 ? 0 : 1;
}
