// nvprof-style per-kernel profile of one algorithm on one dataset — the
// §IV "Metrics" workflow (the simulator's Profiler stands in for nvprof,
// which the paper notes is unavailable on Ada cards anyway).
//
//   $ ./profile_kernel TRUST [--datasets=Wiki-Talk] [--max-edges=N]
#include <iostream>

#include "framework/engine.hpp"
#include "simt/profiler.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  std::string algo_name = "TRUST";
  // First positional argument (if any) is the algorithm name.
  if (argc > 1 && argv[1][0] != '-') {
    algo_name = argv[1];
    --argc;
    ++argv;
  }
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "Wiki-Talk" : opt.datasets[0];

  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);
  const auto out = engine.run(algo_name, pg);

  std::cout << "==== profile: " << algo_name << " on " << dataset
            << " (V=" << pg->stats.num_vertices
            << ", E=" << pg->stats.num_undirected_edges << ") ====\n";
  simt::Profiler prof;
  for (const auto& [name, stats] : out.result.launches) prof.record(name, stats);
  prof.report(std::cout);
  std::cout << "triangles: " << out.result.triangles
            << (out.valid ? " (validated)" : "  ** MISMATCH **") << '\n';
  return engine.exit_code();
}
