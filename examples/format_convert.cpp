// The paper's "data transformation tools" (§IV): convert graphs between the
// formats the published implementations consume — text edge list, binary
// edge list, binary CSR, MatrixMarket — with the cleaning pipeline applied
// on the way.
//
//   $ ./format_convert <in> <out>
//
// Formats are inferred from extension: .txt/.el (text), .bin (binary edge
// list), .csr (binary CSR), .mtx (MatrixMarket). With no arguments, runs a
// self-demo: generates a graph, round-trips it through every format, and
// verifies the triangle count is preserved.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "framework/engine.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace {

using namespace tcgpu;

std::string extension(const std::string& path) {
  return std::filesystem::path(path).extension().string();
}

graph::Coo load_any(const std::string& path) {
  const std::string ext = extension(path);
  if (ext == ".txt" || ext == ".el") return graph::read_text_edge_list(path);
  if (ext == ".bin") return graph::read_binary_edge_list(path);
  if (ext == ".mtx") return graph::read_matrix_market(path);
  if (ext == ".csr") {
    const graph::Csr csr = graph::read_binary_csr(path);
    graph::Coo coo;
    coo.num_vertices = csr.num_vertices();
    for (graph::VertexId u = 0; u < csr.num_vertices(); ++u) {
      for (const graph::VertexId v : csr.neighbors(u)) coo.edges.emplace_back(u, v);
    }
    return coo;
  }
  throw std::runtime_error("unknown input format: " + path);
}

void save_any(const std::string& path, const graph::Coo& clean) {
  const std::string ext = extension(path);
  if (ext == ".txt" || ext == ".el") return graph::write_text_edge_list(path, clean);
  if (ext == ".bin") return graph::write_binary_edge_list(path, clean);
  if (ext == ".mtx") return graph::write_matrix_market(path, clean);
  if (ext == ".csr") {
    return graph::write_binary_csr(path, graph::build_undirected_csr(clean));
  }
  throw std::runtime_error("unknown output format: " + path);
}

// The engine's prepare pipeline (clean → orient → CPU reference count) is
// exactly the invariant a round-trip must preserve.
std::uint64_t triangles_of(framework::Engine& engine, const graph::Coo& raw) {
  return engine.prepare_raw("roundtrip", raw)->reference_triangles;
}

int self_demo() {
  framework::Engine engine;
  gen::RmatParams p;
  p.scale = 12;
  p.edges = 20'000;
  const graph::Coo raw = gen::generate_rmat(p, 11);
  const graph::Coo clean = graph::clean_edges(raw);
  const std::uint64_t want = triangles_of(engine, clean);
  const auto dir = std::filesystem::temp_directory_path() / "tcgpu_convert_demo";
  std::filesystem::create_directories(dir);
  for (const char* name : {"g.txt", "g.bin", "g.mtx", "g.csr"}) {
    const std::string path = (dir / name).string();
    save_any(path, clean);
    const std::uint64_t got = triangles_of(engine, load_any(path));
    std::printf("%-6s triangles=%llu %s\n", extension(path).c_str(),
                static_cast<unsigned long long>(got),
                got == want ? "ok" : "** MISMATCH **");
    if (got != want) return 1;
  }
  std::printf("all formats preserve the triangle count (%llu)\n",
              static_cast<unsigned long long>(want));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 1) return self_demo();
    if (argc != 3) {
      std::cerr << "usage: format_convert <in> <out>   (or no args for a demo)\n";
      return 2;
    }
    const graph::Coo raw = load_any(argv[1]);
    const graph::Coo clean = graph::clean_edges(raw);
    save_any(argv[2], clean);
    std::cout << "wrote " << argv[2] << ": " << clean.num_vertices << " vertices, "
              << clean.edges.size() << " edges (cleaned)\n";
    return 0;
  } catch (const std::exception& e) {
    // One line naming the offending file/line (the io readers embed both),
    // exit 2 — distinguishable from a round-trip mismatch (exit 1) in CI.
    std::cerr << e.what() << '\n';
    return 2;
  }
}
