// k-truss decomposition driven by GPU triangle support — the paper's
// motivating application for triangle counting, end to end: generate a
// scaled dataset, peel it on the simulated V100, and print the truss
// profile (how many edges survive at each k).
//
//   $ ./ktruss [--datasets=Com-Dblp] [--max-edges=N]
#include <iostream>
#include <map>

#include "apps/ktruss.hpp"
#include "framework/engine.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "Com-Dblp" : opt.datasets[0];
  // k-truss peels repeatedly, so default to a lighter cap than the benches.
  if (opt.max_edges == 100'000) opt.max_edges = 30'000;

  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);
  std::cout << dataset << " (scaled): V=" << pg->stats.num_vertices
            << " E=" << pg->stats.num_undirected_edges
            << " triangles=" << pg->reference_triangles << "\n";

  const auto r = apps::ktruss_decompose(pg->dag, engine.config().spec);

  std::map<std::uint32_t, std::uint64_t> level_counts;
  for (const auto t : r.trussness) level_counts[t]++;
  std::cout << "max k-truss: " << r.max_k << "  (peel rounds: " << r.peel_rounds
            << ", accumulated GPU time: " << r.gpu_stats.time_ms << " ms)\n";
  std::cout << "trussness profile (k: edges whose trussness == k):\n";
  for (const auto& [k, count] : level_counts) {
    std::cout << "  " << k << ": " << count << '\n';
  }
  std::uint64_t cumulative = 0;
  for (auto it = level_counts.rbegin(); it != level_counts.rend(); ++it) {
    cumulative += it->second;
    std::cout << "  " << it->first << "-truss size: " << cumulative << " edges\n";
  }
  return 0;
}
