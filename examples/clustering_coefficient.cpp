// Domain application from the paper's introduction: the global clustering
// coefficient, one of the canonical consumers of triangle counting
// ("finding many applications like k-truss analysis and calculating the
// clustering coefficient").
//
//   C = 3 * triangles / wedges
//
// Triangles come from a GPU counter (TRUST here — the study's pick for
// medium/large graphs) run through the engine; wedges are a host-side
// degree sum.
//
//   $ ./clustering_coefficient [--datasets=Com-Dblp] [--max-edges=N]
#include <cstdint>
#include <iostream>

#include "framework/engine.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "Com-Dblp" : opt.datasets[0];

  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);

  // Wedges: sum over vertices of C(d, 2) on the undirected degrees. The
  // oriented DAG's in+out degree equals the undirected degree; recover it
  // from the DAG to avoid keeping the symmetric CSR around.
  std::vector<std::uint64_t> degree(pg->dag.num_vertices(), 0);
  for (graph::VertexId u = 0; u < pg->dag.num_vertices(); ++u) {
    degree[u] += pg->dag.degree(u);
    for (const graph::VertexId v : pg->dag.neighbors(u)) degree[v] += 1;
  }
  std::uint64_t wedges = 0;
  for (const std::uint64_t d : degree) wedges += d * (d - 1) / 2;

  const auto out = engine.run("TRUST", pg);
  if (!out.valid) {
    std::cerr << "count mismatch against CPU reference\n";
    return 1;
  }

  const double c =
      wedges == 0 ? 0.0
                  : 3.0 * static_cast<double>(out.result.triangles) /
                        static_cast<double>(wedges);
  std::cout << dataset << " (scaled):\n"
            << "  triangles            " << out.result.triangles << '\n'
            << "  wedges               " << wedges << '\n'
            << "  global clustering C  " << c << '\n'
            << "  GPU kernel time      " << out.result.total.time_ms << " ms\n";
  return 0;
}
