// Quickstart: count the triangles of a small synthetic social graph with
// GroupTC on the simulated V100, and print the count plus the profiler
// metrics the paper reports.
//
//   $ ./quickstart
//
// The same five steps work for any algorithm in the registry and any graph
// you can express as an edge list: generate/load -> prepare (clean, orient,
// reference-count) -> pick an algorithm -> run -> inspect.
#include <cstdio>

#include "framework/registry.hpp"
#include "framework/runner.hpp"
#include "gen/rmat.hpp"

int main() {
  using namespace tcgpu;

  // 1. A small power-law graph (any graph::Coo works: see graph/io.hpp for
  //    loading SNAP-style edge lists from disk).
  gen::RmatParams params;
  params.scale = 14;
  params.edges = 100'000;
  const graph::Coo raw = gen::generate_rmat(params, /*seed=*/7);

  // 2. Clean + orient + CPU reference count, in one call.
  const framework::PreparedGraph pg = framework::prepare_graph("quickstart", raw);
  std::printf("graph: %u vertices, %llu edges, avg degree %.1f\n",
              pg.stats.num_vertices,
              static_cast<unsigned long long>(pg.stats.num_undirected_edges),
              pg.stats.avg_degree);

  // 3. Pick an algorithm (all of Table I plus GroupTC are registered).
  const auto algo = framework::make_algorithm("GroupTC");

  // 4. Run it on the simulated V100.
  const auto outcome =
      framework::run_algorithm(*algo, pg, simt::GpuSpec::v100());

  // 5. Results: exact count, validated against the CPU reference, plus the
  //    nvprof-style metrics of §IV.
  std::printf("triangles: %llu (%s)\n",
              static_cast<unsigned long long>(outcome.result.triangles),
              outcome.valid ? "matches CPU reference" : "MISMATCH");
  std::printf("modeled kernel time: %.4f ms\n", outcome.result.total.time_ms);
  std::printf("global_load_requests: %llu\n",
              static_cast<unsigned long long>(
                  outcome.result.total.metrics.global_load_requests));
  std::printf("gld_transactions_per_request: %.2f\n",
              outcome.result.total.metrics.gld_transactions_per_request());
  std::printf("warp_execution_efficiency: %.1f%%\n",
              outcome.result.total.metrics.warp_execution_efficiency() * 100.0);
  return outcome.valid ? 0 : 1;
}
