// Quickstart: count the triangles of a small synthetic social graph with
// GroupTC on the simulated V100, and print the count plus the profiler
// metrics the paper reports.
//
//   $ ./quickstart
//
// The same four steps work for any algorithm in the registry and any graph
// you can express as an edge list: make an engine -> prepare (clean, orient,
// reference-count; cached) -> run by algorithm name -> inspect. The engine
// keeps the prepared graph and its device-resident DAG around, so further
// runs on the same graph skip straight to the kernel.
#include <cstdio>

#include "framework/engine.hpp"
#include "gen/rmat.hpp"

int main() {
  using namespace tcgpu;

  // 1. The execution engine: prepared-graph cache + device-graph pool +
  //    validation, on a simulated V100 by default.
  framework::Engine engine;

  // 2. A small power-law graph (any graph::Coo works: see graph/io.hpp for
  //    loading SNAP-style edge lists from disk), cleaned + oriented (u<v
  //    DAG) + CPU-reference-counted in one call.
  gen::RmatParams params;
  params.scale = 14;
  params.edges = 100'000;
  const auto pg = engine.prepare_raw("quickstart", gen::generate_rmat(params, 7));
  std::printf("graph: %u vertices, %llu edges, avg degree %.1f\n",
              pg->stats.num_vertices,
              static_cast<unsigned long long>(pg->stats.num_undirected_edges),
              pg->stats.avg_degree);

  // 3. Run any of the nine registered algorithms by name; the DAG is
  //    uploaded once and shared by every run on this graph.
  const auto outcome = engine.run("GroupTC", pg);

  // 4. Results: exact count, validated against the CPU reference, plus the
  //    nvprof-style metrics of §IV.
  std::printf("triangles: %llu (%s)\n",
              static_cast<unsigned long long>(outcome.result.triangles),
              outcome.valid ? "matches CPU reference" : "MISMATCH");
  std::printf("modeled kernel time: %.4f ms\n", outcome.result.total.time_ms);
  std::printf("global_load_requests: %llu\n",
              static_cast<unsigned long long>(
                  outcome.result.total.metrics.global_load_requests));
  std::printf("gld_transactions_per_request: %.2f\n",
              outcome.result.total.metrics.gld_transactions_per_request());
  std::printf("warp_execution_efficiency: %.1f%%\n",
              outcome.result.total.metrics.warp_execution_efficiency() * 100.0);
  return engine.exit_code();
}
