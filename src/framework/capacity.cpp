#include "framework/capacity.hpp"

#include <cstdio>
#include <cstring>

#include "simt/gpu_spec.hpp"

namespace tcgpu::framework {

namespace {

/// Reads one "<key>:   <kb> kB" line out of /proc/self/status.
double status_field_mb(const char* key, std::size_t key_len) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long kb = 0;
      if (std::sscanf(line + key_len, "%llu", &kb) == 1) {
        mb = static_cast<double>(kb) / 1024.0;
      }
      break;
    }
  }
  std::fclose(f);
  return mb;
#else
  (void)key;
  (void)key_len;
  return 0.0;
#endif
}

}  // namespace

std::uint64_t device_budget_bytes(const simt::GpuSpec& spec) {
  constexpr std::uint64_t kGiB = 1ull << 30;
  if (spec.name == "rtx4090") return 24 * kGiB;
  return 16 * kGiB;  // v100 and unknown presets
}

double peak_rss_mb() { return status_field_mb("VmHWM:", 6); }

double current_rss_mb() { return status_field_mb("VmRSS:", 6); }

bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  // "5" resets the peak-RSS watermark to the current RSS.
  const bool ok = std::fputs("5", f) >= 0;
  std::fclose(f);
  return ok;
#else
  return false;
#endif
}

}  // namespace tcgpu::framework
