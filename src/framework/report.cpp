#include "framework/report.hpp"

#include <ostream>

namespace tcgpu::framework {

OutputFormat output_format(const BenchOptions& opt) {
  if (opt.json) return OutputFormat::kJson;
  if (opt.csv) return OutputFormat::kCsv;
  return OutputFormat::kAligned;
}

void emit(const ResultTable& table, const BenchOptions& opt, std::ostream& os,
          const std::string& title) {
  switch (output_format(opt)) {
    case OutputFormat::kCsv:
      table.print_csv(os);
      break;
    case OutputFormat::kJson:
      table.print_json(os);
      break;
    case OutputFormat::kAligned:
      if (!title.empty()) os << "== " << title << " ==\n";
      table.print_aligned(os);
      break;
  }
}

void emit(const ResultTable& table, const BenchOptions& opt, std::ostream& os,
          const CapacityReport& capacity, const std::string& title) {
  emit(table, opt, os, title);
  switch (output_format(opt)) {
    case OutputFormat::kCsv:
      os << "# capacity,peak_rss_mb=" << capacity.peak_rss_mb
         << ",bytes_uploaded=" << capacity.bytes_uploaded << '\n';
      break;
    case OutputFormat::kJson:
      os << "{\"capacity\":{\"peak_rss_mb\":" << capacity.peak_rss_mb
         << ",\"bytes_uploaded\":" << capacity.bytes_uploaded << "}}\n";
      break;
    case OutputFormat::kAligned:
      os << "capacity: peak_rss_mb=" << capacity.peak_rss_mb
         << " bytes_uploaded=" << capacity.bytes_uploaded << '\n';
      break;
  }
}

}  // namespace tcgpu::framework
