// Host-capacity instrumentation for the billion-edge prepare pipeline:
// peak resident set size (what bounds the largest loadable graph) and the
// engine's cumulative device-upload volume (what bounds the largest
// resident image). bench/table2_datasets and bench/prepare_throughput
// report both; the emit() overload in framework/report.hpp appends them as
// a capacity footer in every output format.
#pragma once

#include <cstdint>

namespace tcgpu::simt {
struct GpuSpec;
}

namespace tcgpu::framework {

/// Peak resident set size of this process in MiB — Linux VmHWM from
/// /proc/self/status; 0.0 where the platform doesn't expose it.
double peak_rss_mb();

/// Current resident set size in MiB (Linux VmRSS; 0.0 elsewhere). Subtract
/// from a post-stage peak_rss_mb() to isolate one stage's footprint from
/// pages the allocator retained out of earlier stages.
double current_rss_mb();

/// Resets the peak-RSS watermark (Linux: write "5" to /proc/self/clear_refs)
/// so a following peak_rss_mb() isolates one pipeline stage instead of the
/// process high-water mark. Returns false where unsupported — callers must
/// treat the next reading as an upper bound, not a stage cost.
bool reset_peak_rss();

/// The capacity footer: host peak RSS over the measured stage plus bytes
/// uploaded to device images (EngineCounters::bytes_uploaded).
struct CapacityReport {
  double peak_rss_mb = 0.0;
  std::uint64_t bytes_uploaded = 0;
};

/// Modeled device-memory budget of one GPU, by spec name: what a
/// fleet::DeviceSlot may hold in pooled graph images before it must evict
/// (V100 16 GiB, RTX 4090 24 GiB, 16 GiB for unknown presets). Kept beside
/// the host-capacity probes so every capacity constant lives in one place.
std::uint64_t device_budget_bytes(const simt::GpuSpec& spec);

}  // namespace tcgpu::framework
