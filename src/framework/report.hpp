// The one structured results sink behind every bench binary: a ResultTable
// (rows the figures plot) rendered as aligned text, CSV or JSON according
// to the harness options — so no main carries its own format switch.
#pragma once

#include <iosfwd>
#include <string>

#include "framework/capacity.hpp"
#include "framework/options.hpp"
#include "framework/table.hpp"

namespace tcgpu::framework {

enum class OutputFormat { kAligned, kCsv, kJson };

/// Format selected by the CLI flags (--json wins over --csv).
OutputFormat output_format(const BenchOptions& opt);

/// Renders `table` to `os` in the selected format. `title` is printed as a
/// "== title ==" heading before aligned tables and skipped for the
/// machine-readable formats (keeps CSV/JSON parseable).
void emit(const ResultTable& table, const BenchOptions& opt, std::ostream& os,
          const std::string& title = {});

/// emit() plus a capacity footer: aligned output gets a one-line summary,
/// CSV a trailing "# capacity,..." comment (ignored by every CSV consumer
/// in-tree), JSON a separate trailing object line — the table payload stays
/// byte-identical to the footer-less overload in every format.
void emit(const ResultTable& table, const BenchOptions& opt, std::ostream& os,
          const CapacityReport& capacity, const std::string& title = {});

}  // namespace tcgpu::framework
