#include "framework/engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace tcgpu::framework {

/// One cache slot. The per-entry mutex latches concurrent prepares of the
/// same key: the first caller runs the pipeline, later callers block on the
/// mutex and then read the finished value.
struct Engine::CacheEntry {
  std::mutex m;
  GraphHandle value;
  std::list<PrepareKey>::iterator lru_it;  ///< position in Engine::lru_
};

/// One pooled device image. `device` owns only the graph arrays; `mark` is
/// the post-upload allocation state — per-run scratch devices are based at
/// `mark.next_base` so algorithm scratch gets the same simulated addresses
/// it would have had on a single fresh device holding graph + scratch.
struct Engine::Resident {
  std::mutex m;
  bool ready = false;
  GraphHandle keepalive;
  simt::Device device;
  tc::DeviceGraph graph;
  simt::Device::Mark mark;
};

namespace {

std::size_t resolve_workers(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::string row_header(const PreparedGraph& pg) {
  std::ostringstream os;
  os << "[sweep] " << pg.name << ": V=" << pg.stats.num_vertices
     << " E=" << pg.stats.num_undirected_edges
     << " tri=" << pg.reference_triangles << '\n';
  return os.str();
}

std::string cell_line(const std::string& algo_name, const RunOutcome& out) {
  std::ostringstream os;
  os << "  " << algo_name << ": " << out.result.total.time_ms << " ms"
     << (out.valid ? "" : "  ** COUNT MISMATCH **") << '\n';
  return os.str();
}

}  // namespace

Engine::Engine(Config cfg) : cfg_(std::move(cfg)) {
  cfg_.workers = resolve_workers(cfg_.workers);
}

Engine::Engine(const BenchOptions& opt)
    : Engine(Config{spec_for(opt.gpu), opt.max_edges, opt.seed,
                    graph::OrientationPolicy::kByDegree, opt.datasets,
                    opt.jobs, opt.max_resident}) {}

Engine::GraphHandle Engine::prepare_cached(const PrepareKey& key,
                                           const gen::DatasetSpec& spec) {
  std::shared_ptr<CacheEntry> entry;
  {
    std::lock_guard lk(cache_mu_);
    auto& slot = cache_[key];
    if (!slot) {
      slot = std::make_shared<CacheEntry>();
      lru_.push_front(key);
      slot->lru_it = lru_.begin();
      // Enforce the resident cap, oldest first, never the key just added.
      // Entries mid-prepare (their latch held) are skipped, not waited on.
      if (cfg_.max_resident > 0 && cache_.size() > cfg_.max_resident) {
        std::vector<PrepareKey> victims;
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
          if (!(*it == key)) victims.push_back(*it);
        }
        for (const auto& victim : victims) {
          if (cache_.size() <= cfg_.max_resident) break;
          evict_locked(victim, /*force=*/false);
        }
      }
    } else {
      lru_.splice(lru_.begin(), lru_, slot->lru_it);  // touch
    }
    entry = slot;
  }
  std::lock_guard lk(entry->m);
  if (!entry->value) {
    entry->value = std::make_shared<PreparedGraph>(
        prepare_dataset(spec, key.max_edges, key.seed, key.policy));
    std::lock_guard sl(stats_mu_);
    ++counters_.prepares;
  } else {
    std::lock_guard sl(stats_mu_);
    ++counters_.prepare_hits;
  }
  return entry->value;
}

Engine::GraphHandle Engine::prepare(const gen::DatasetSpec& spec) {
  return prepare_cached({spec.name, cfg_.max_edges, cfg_.seed, cfg_.policy}, spec);
}

Engine::GraphHandle Engine::prepare(const std::string& dataset_name) {
  return prepare(gen::dataset_by_name(dataset_name));
}

Engine::GraphHandle Engine::prepare_raw(std::string name, const graph::Coo& raw) {
  auto pg = std::make_shared<PreparedGraph>(
      prepare_graph(std::move(name), raw, cfg_.policy));
  std::lock_guard sl(stats_mu_);
  ++counters_.prepares;
  return pg;
}

std::shared_ptr<Engine::Resident> Engine::acquire_resident(const GraphHandle& graph) {
  std::shared_ptr<Resident> res;
  {
    std::lock_guard lk(pool_mu_);
    auto& slot = pool_[graph.get()];
    if (!slot) slot = std::make_shared<Resident>();
    res = slot;
  }
  std::lock_guard lk(res->m);
  if (!res->ready) {
    res->keepalive = graph;
    res->graph = tc::DeviceGraph::upload(res->device, graph->dag);
    res->mark = res->device.mark();
    res->ready = true;
    std::lock_guard sl(stats_mu_);
    ++counters_.uploads;
    counters_.bytes_uploaded += res->mark.bytes_allocated;
    counters_.bytes_resident += res->mark.bytes_allocated;
  } else {
    std::lock_guard sl(stats_mu_);
    ++counters_.upload_hits;
  }
  return res;
}

bool Engine::evict_locked(const PrepareKey& key, bool force) {
  const auto it = cache_.find(key);
  if (it == cache_.end()) return false;
  const std::shared_ptr<CacheEntry> entry = it->second;

  // The entry latch orders us after any in-flight prepare of this key.
  // Lock ordering stays cache_mu_ -> entry->m -> pool_mu_/stats_mu_; a
  // preparing thread holds entry->m but never takes cache_mu_.
  std::unique_lock<std::mutex> entry_lk(entry->m, std::defer_lock);
  if (force) {
    entry_lk.lock();
  } else if (!entry_lk.try_lock()) {
    return false;  // capacity sweep: skip entries mid-prepare
  }

  std::shared_ptr<Resident> dropped;
  if (entry->value) {
    std::lock_guard pl(pool_mu_);
    const auto pit = pool_.find(entry->value.get());
    if (pit != pool_.end()) {
      dropped = std::move(pit->second);
      pool_.erase(pit);
    }
  }
  lru_.erase(entry->lru_it);
  cache_.erase(it);
  account_release(dropped);
  std::lock_guard sl(stats_mu_);
  ++counters_.evictions;
  return true;
}

void Engine::account_release(const std::shared_ptr<Resident>& res) {
  if (!res) return;
  std::uint64_t bytes = 0;
  {
    std::lock_guard lk(res->m);  // orders us after an in-flight upload
    if (!res->ready) return;     // never uploaded: nothing was accounted
    bytes = res->mark.bytes_allocated;
  }
  std::lock_guard sl(stats_mu_);
  counters_.bytes_released += bytes;
  counters_.bytes_resident -= bytes;
}

bool Engine::evict(const PrepareKey& key) {
  std::lock_guard lk(cache_mu_);
  return evict_locked(key, /*force=*/true);
}

bool Engine::evict(const std::string& dataset_name) {
  return evict(PrepareKey{dataset_name, cfg_.max_edges, cfg_.seed, cfg_.policy});
}

std::size_t Engine::invalidate(const std::string& dataset_name) {
  std::lock_guard lk(cache_mu_);
  std::vector<PrepareKey> victims;
  for (const auto& [key, entry] : cache_) {
    if (key.dataset == dataset_name) victims.push_back(key);
  }
  std::size_t dropped = 0;
  for (const auto& key : victims) {
    if (evict_locked(key, /*force=*/true)) ++dropped;
  }
  return dropped;
}

std::size_t Engine::resident_graphs() const {
  std::lock_guard lk(cache_mu_);
  return cache_.size();
}

bool Engine::release_device(const GraphHandle& graph) {
  std::shared_ptr<Resident> dropped;
  {
    std::lock_guard pl(pool_mu_);
    const auto it = pool_.find(graph.get());
    if (it == pool_.end()) return false;
    dropped = std::move(it->second);
    pool_.erase(it);
  }
  account_release(dropped);
  return true;
}

std::uint64_t Engine::device_image_bytes(const GraphHandle& graph) const {
  std::shared_ptr<Resident> res;
  {
    std::lock_guard pl(pool_mu_);
    const auto it = pool_.find(graph.get());
    if (it == pool_.end()) return 0;
    res = it->second;
  }
  std::lock_guard lk(res->m);
  return res->ready ? res->mark.bytes_allocated : 0;
}

RunOutcome Engine::run(const tc::TriangleCounter& algo, const GraphHandle& graph) {
  const auto res = acquire_resident(graph);
  // Fresh scratch per run, based just past the resident graph: identical
  // simulated addresses to a fresh-device run, zero re-upload cost, and no
  // sharing between concurrent cells.
  simt::Device scratch(res->mark.next_base);
  RunOutcome out = run_on_device(algo, *graph, res->graph, scratch, cfg_.spec);
  {
    std::lock_guard sl(stats_mu_);
    ++counters_.cells;
    if (!out.valid) all_valid_ = false;
  }
  return out;
}

RunOutcome Engine::run(const std::string& algorithm, const GraphHandle& graph) {
  return run(*make_algorithm(algorithm), graph);
}

std::vector<SweepRow> Engine::sweep(const std::vector<AlgorithmEntry>& algorithms,
                                    std::ostream& progress) {
  // Reject typos up front: a silently empty sweep would exit 0 and defeat
  // the benches' role as correctness gates.
  for (const auto& want : cfg_.datasets) {
    gen::dataset_by_name(want);  // throws std::out_of_range on unknown names
  }
  std::vector<gen::DatasetSpec> specs;
  for (const auto& ds : gen::paper_datasets()) {
    if (!cfg_.datasets.empty()) {
      bool selected = false;
      for (const auto& want : cfg_.datasets) selected |= want == ds.name;
      if (!selected) continue;
    }
    specs.push_back(ds);
  }

  const std::size_t num_rows = specs.size();
  const std::size_t num_cols = algorithms.size();
  const std::size_t num_cells = num_rows * num_cols;
  std::vector<SweepRow> rows(num_rows);
  for (auto& row : rows) row.outcomes.resize(num_cols);

  const std::size_t workers =
      std::min(cfg_.workers, std::max<std::size_t>(num_cells, 1));

  if (workers <= 1 || num_cells <= 1) {
    // Serial path: cells in row-major order, progress line per cell.
    for (std::size_t r = 0; r < num_rows; ++r) {
      rows[r].graph = prepare(specs[r]);
      progress << row_header(*rows[r].graph);
      for (std::size_t c = 0; c < num_cols; ++c) {
        const auto algo = algorithms[c].make();
        rows[r].outcomes[c] = run(*algo, rows[r].graph);
        progress << cell_line(algorithms[c].name, rows[r].outcomes[c]);
      }
    }
    return rows;
  }

  // Parallel path: cells are independent tasks; results land in
  // pre-assigned slots, so the result set is identical to the serial path.
  // Progress is buffered per cell and flushed one whole dataset at a time,
  // in paper order, once the dataset's last cell finishes.
  std::vector<std::vector<std::string>> lines(num_rows,
                                              std::vector<std::string>(num_cols));
  std::vector<std::size_t> remaining(num_rows, num_cols);
  std::vector<bool> row_done(num_rows, false);
  std::size_t flushed = 0;
  std::mutex sweep_mu;  // guards rows/lines/remaining/flushed + progress

  std::atomic<std::size_t> next_cell{0};
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;

#ifdef _OPENMP
  // Coordinate with the launcher's inner block-level parallelism: divide
  // the OpenMP budget among cell workers instead of multiplying by it.
  const int omp_budget = omp_get_max_threads();
  const int omp_per_worker =
      std::max(1, omp_budget / static_cast<int>(workers));
#endif

  auto worker = [&] {
#ifdef _OPENMP
    omp_set_num_threads(omp_per_worker);  // per-thread ICV
#endif
    for (;;) {
      const std::size_t cell = next_cell.fetch_add(1);
      if (cell >= num_cells || aborted.load()) break;
      const std::size_t r = cell / num_cols;
      const std::size_t c = cell % num_cols;
      try {
        const GraphHandle graph = prepare(specs[r]);
        const auto algo = algorithms[c].make();
        RunOutcome out = run(*algo, graph);
        std::string line = cell_line(algorithms[c].name, out);

        std::lock_guard lk(sweep_mu);
        rows[r].graph = graph;
        rows[r].outcomes[c] = std::move(out);
        lines[r][c] = std::move(line);
        if (--remaining[r] == 0) row_done[r] = true;
        while (flushed < num_rows && row_done[flushed]) {
          progress << row_header(*rows[flushed].graph);
          for (const auto& l : lines[flushed]) progress << l;
          ++flushed;
        }
      } catch (...) {
        std::lock_guard lk(sweep_mu);
        if (!aborted.exchange(true)) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return rows;
}

bool Engine::all_valid() const {
  std::lock_guard sl(stats_mu_);
  return all_valid_;
}

EngineCounters Engine::counters() const {
  std::lock_guard sl(stats_mu_);
  return counters_;
}

}  // namespace tcgpu::framework
