// Algorithm registry — the unified framework's catalogue of the eight
// published ITC implementations plus GroupTC (Table I + §V).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tc/common.hpp"

namespace tcgpu::framework {

using CounterFactory = std::function<std::unique_ptr<tc::TriangleCounter>()>;

struct AlgorithmEntry {
  std::string name;
  CounterFactory make;
};

/// All algorithms in Table I order (publication year), GroupTC last.
const std::vector<AlgorithmEntry>& all_algorithms();

/// The three §V protagonists (Figure 15): Polak, TRUST, GroupTC.
const std::vector<AlgorithmEntry>& headline_algorithms();

/// Everything in all_algorithms() plus this repo's extensions beyond the
/// paper (currently GroupTC-H, the hash-probe variant the paper's §VI
/// names as future work). The figure benches stick to the paper's set;
/// tests and the extension bench cover these too.
const std::vector<AlgorithmEntry>& extended_algorithms();

/// Factory by name; throws std::out_of_range on unknown names.
std::unique_ptr<tc::TriangleCounter> make_algorithm(const std::string& name);

}  // namespace tcgpu::framework
