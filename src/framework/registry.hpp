// Algorithm registry — the unified framework's catalogue of the eight
// published ITC implementations plus GroupTC (Table I + §V).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tc/common.hpp"

namespace tcgpu::framework {

using CounterFactory = std::function<std::unique_ptr<tc::TriangleCounter>()>;

struct AlgorithmEntry {
  std::string name;
  CounterFactory make;
};

/// All algorithms in Table I order (publication year), GroupTC last.
const std::vector<AlgorithmEntry>& all_algorithms();

/// The three §V protagonists (Figure 15): Polak, TRUST, GroupTC.
const std::vector<AlgorithmEntry>& headline_algorithms();

/// Everything in all_algorithms() plus this repo's extensions beyond the
/// paper: GroupTC-H (the hash-probe variant the paper's §VI names as future
/// work) and the five kernels built on the tc/intersect/ library —
/// MergePath, BSR, BFS-LA, plus the compressed-adjacency pair CMerge and
/// CStage. The figure benches stick to the paper's set; tests and the
/// extension bench cover these too.
const std::vector<AlgorithmEntry>& extended_algorithms();

/// The serving/selection pool: the nine paper kernels plus the five
/// intersection-library kernels — the 14 the serve::Selector carries cost
/// models for. Excludes GroupTC-H, which is GroupTC's probe ablation rather
/// than a distinct taxonomy cell.
const std::vector<AlgorithmEntry>& pool_algorithms();

/// Comma-separated names of every registered algorithm — the single source
/// for "valid:" lists in error messages (registry and CLI parsing alike).
const std::string& valid_algorithm_list();

/// Factory by name; throws std::out_of_range on unknown names.
std::unique_ptr<tc::TriangleCounter> make_algorithm(const std::string& name);

/// True iff `name` is registered (any entry of extended_algorithms()).
bool is_algorithm_name(const std::string& name);

}  // namespace tcgpu::framework
