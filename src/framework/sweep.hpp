// Legacy entry point of the dataset × algorithm sweep. The sweep itself now
// lives in framework::Engine (prepared-graph cache, device-graph pool, cell
// scheduler); this wrapper runs a throwaway engine for callers that need a
// single serial sweep. New code should construct an Engine and use
// Engine::sweep so caching, validation state and exit codes carry across
// calls.
#pragma once

#include <iosfwd>
#include <vector>

#include "framework/engine.hpp"

namespace tcgpu::framework {

/// Prepares every selected dataset (subject to the edge cap) and runs every
/// given algorithm on it, validating each count. Progress lines go to
/// `progress` (pass std::cerr; figures print their tables to stdout).
std::vector<SweepRow> run_sweep(const BenchOptions& opt,
                                const std::vector<AlgorithmEntry>& algorithms,
                                std::ostream& progress);

}  // namespace tcgpu::framework
