// Shared dataset x algorithm sweep used by the figure-regeneration benches
// (Figures 11, 12, 13 and 15 all plot series over the same 19-dataset
// x-axis).
#pragma once

#include <iosfwd>
#include <vector>

#include "framework/options.hpp"
#include "framework/registry.hpp"
#include "framework/runner.hpp"

namespace tcgpu::framework {

struct SweepRow {
  PreparedGraph graph;                ///< prepared dataset (stats + reference)
  std::vector<RunOutcome> outcomes;   ///< one per algorithm, registry order
};

/// Prepares every selected dataset (subject to the edge cap) and runs every
/// given algorithm on it, validating each count. Progress lines go to
/// `progress` (pass std::cerr; figures print their tables to stdout).
std::vector<SweepRow> run_sweep(const BenchOptions& opt,
                                const std::vector<AlgorithmEntry>& algorithms,
                                std::ostream& progress);

}  // namespace tcgpu::framework
