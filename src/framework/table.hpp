// Result tables for the benchmark harnesses: fixed columns, printed as
// aligned text or CSV — the rows/series the paper's figures plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tcgpu::framework {

class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Appends a row; must have exactly one cell per column.
  void add_row(std::vector<std::string> cells);

  void print_aligned(std::ostream& os) const;
  void print_csv(std::ostream& os) const;
  /// JSON array of objects, one per row, keyed by column name.
  void print_json(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Formats a double with `prec` digits after the point.
  static std::string fmt(double v, int prec = 3);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcgpu::framework
