// The execution engine — the framework's scheduled spine (replaces the
// per-binary prepare→upload→run loops).
//
// Three layers, each shared process-wide through one Engine instance:
//
//   1. Prepared-graph cache. The CPU-side pipeline (generate → clean →
//      orient → CPU reference count) is the dominant end-to-end cost for
//      small simulated kernels, and every figure bench used to repeat it per
//      binary run. The engine keys it by (dataset, max_edges, seed,
//      orientation policy) and runs it once per graph per process.
//
//   2. Device-graph pool. A DeviceGraph is immutable once uploaded (kernels
//      only load from it; all stores go to per-run scratch), so one resident
//      upload per prepared graph serves every algorithm. Per-run scratch
//      lives on a separate Device based at the resident device's post-upload
//      mark, which reproduces the exact address stream of the old
//      fresh-device-per-run path — simulator metrics are unchanged.
//
//   3. Cell scheduler. Independent (algorithm × dataset) cells run as tasks
//      over a small worker pool; the launcher's inner OpenMP threads are
//      divided among workers so the host is not oversubscribed. Every cell
//      is deterministic in isolation (integer counters, per-block cycle
//      accounting), so KernelStats from a parallel sweep are bit-identical
//      to a serial one — tested, and the property later scaling work leans
//      on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "framework/options.hpp"
#include "framework/registry.hpp"
#include "framework/runner.hpp"

namespace tcgpu::framework {

/// Cache key of one prepared graph. Two prepares with the same key are the
/// same graph; any differing field reruns the pipeline.
struct PrepareKey {
  std::string dataset;
  std::uint64_t max_edges = 0;
  std::uint64_t seed = 0;
  graph::OrientationPolicy policy = graph::OrientationPolicy::kByDegree;

  auto operator<=>(const PrepareKey&) const = default;
};

/// Monotonic work counters, exposed so tests can assert the once-per-graph
/// guarantees (prepares == distinct graphs, uploads == distinct DAGs).
struct EngineCounters {
  std::uint64_t prepares = 0;      ///< CPU pipeline executions (cache misses)
  std::uint64_t prepare_hits = 0;  ///< prepares served from the cache
  std::uint64_t uploads = 0;       ///< DAG uploads (pool misses)
  std::uint64_t upload_hits = 0;   ///< runs served by a resident DeviceGraph
  std::uint64_t cells = 0;         ///< algorithm runs completed
  std::uint64_t evictions = 0;     ///< cache entries dropped (cap or evict())
  std::uint64_t bytes_uploaded = 0;  ///< device bytes across all pool uploads
  /// Device bytes of images dropped by evict()/release_device(). Together
  /// with bytes_uploaded this makes residency an invariant rather than a
  /// ratchet: bytes_resident == bytes_uploaded - bytes_released at all
  /// times, which is what fleet::DeviceSlot accounting trusts.
  std::uint64_t bytes_released = 0;
  std::uint64_t bytes_resident = 0;  ///< device bytes currently pooled
};

/// One dataset of a sweep: the prepared graph and one outcome per algorithm
/// (registry order).
struct SweepRow {
  std::shared_ptr<const PreparedGraph> graph;
  std::vector<RunOutcome> outcomes;

  bool all_valid() const {
    for (const auto& out : outcomes) {
      if (!out.valid) return false;
    }
    return true;
  }
};

class Engine {
 public:
  struct Config {
    simt::GpuSpec spec = simt::GpuSpec::v100();
    std::uint64_t max_edges = 100'000;  ///< per-dataset edge cap (0 = none)
    std::uint64_t seed = 42;
    graph::OrientationPolicy policy = graph::OrientationPolicy::kByDegree;
    std::vector<std::string> datasets;  ///< sweep selection; empty = all 19
    std::size_t workers = 1;            ///< parallel cells; 0 = auto, 1 = serial
    /// Prepared-graph cache cap (0 = unbounded). When a prepare would push
    /// the cache past the cap, least-recently-used entries (and their pooled
    /// device images) are dropped — long-running processes (the serve layer,
    /// full scaling sweeps) stay bounded. In-flight handles stay valid;
    /// re-preparing an evicted key just reruns the deterministic pipeline.
    std::size_t max_resident = 0;
  };

  Engine() : Engine(Config{}) {}
  explicit Engine(Config cfg);
  /// Spec / cap / seed / selection / workers from the parsed CLI flags.
  explicit Engine(const BenchOptions& opt);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  using GraphHandle = std::shared_ptr<const PreparedGraph>;

  /// Prepares one of the paper's datasets through the cache (runs the
  /// generate/clean/orient/reference pipeline at most once per key).
  GraphHandle prepare(const gen::DatasetSpec& spec);
  /// Same, by registry name; throws std::out_of_range on unknown names.
  GraphHandle prepare(const std::string& dataset_name);
  /// Prepares an arbitrary raw edge list (loader output, custom generators).
  /// Uncached — raw inputs have no stable identity — but the returned handle
  /// still shares its device-resident DAG across runs.
  GraphHandle prepare_raw(std::string name, const graph::Coo& raw);

  /// Runs one algorithm against the graph's pooled device image and
  /// validates the count. Thread-safe; a count mismatch latches all_valid().
  RunOutcome run(const tc::TriangleCounter& algo, const GraphHandle& graph);
  /// Same, by registry name.
  RunOutcome run(const std::string& algorithm, const GraphHandle& graph);

  /// Runs every (selected dataset × algorithm) cell, parallel across cells
  /// when configured. Progress lines go to `progress` (pass std::cerr),
  /// grouped per dataset in paper order regardless of completion order.
  std::vector<SweepRow> sweep(const std::vector<AlgorithmEntry>& algorithms,
                              std::ostream& progress);

  /// Drops one prepared graph from the cache and its device image from the
  /// pool. Returns false if the key was not resident. Handles already given
  /// out keep working; the next prepare of the key reruns the pipeline.
  bool evict(const PrepareKey& key);
  /// Same for a paper dataset under this engine's cap/seed/policy.
  bool evict(const std::string& dataset_name);
  /// Drops every cached prepare of `dataset_name` regardless of cap, seed
  /// or orientation policy (plus their pooled device images). The stream
  /// layer calls this on a version bump so no pre-mutation prepare can be
  /// re-served from the cache. Returns how many entries were dropped.
  std::size_t invalidate(const std::string& dataset_name);
  /// Prepared graphs currently cached (≤ Config::max_resident when capped).
  std::size_t resident_graphs() const;
  /// Drops the pooled device image for one graph handle (the cache entry,
  /// if any, stays). This is the only way to release the upload of a
  /// prepare_raw graph — the serve layer calls it after an inline batch so
  /// one-shot query graphs do not accumulate in the pool.
  bool release_device(const GraphHandle& graph);

  /// Device bytes of this graph's pooled image; 0 when no upload is
  /// resident. The fleet layer uses it to charge a DeviceSlot the exact
  /// bytes the engine accounted (EngineCounters::bytes_resident).
  std::uint64_t device_image_bytes(const GraphHandle& graph) const;

  /// False once any run's count mismatched the CPU reference.
  bool all_valid() const;
  /// Shell convention: 0 while all counts validated, 1 otherwise.
  int exit_code() const { return all_valid() ? 0 : 1; }

  EngineCounters counters() const;
  const Config& config() const { return cfg_; }

 private:
  struct CacheEntry;  ///< latched prepared graph (one pipeline run per key)
  struct Resident;    ///< pooled device + uploaded DeviceGraph

  GraphHandle prepare_cached(const PrepareKey& key, const gen::DatasetSpec& spec);
  std::shared_ptr<Resident> acquire_resident(const GraphHandle& graph);
  /// Folds one dropped pool image into the byte counters (bytes_released up,
  /// bytes_resident down). No-op for slots that never finished uploading.
  void account_release(const std::shared_ptr<Resident>& res);
  /// Drops `key` under cache_mu_. `force` waits out an in-flight prepare;
  /// the capacity sweep instead skips busy entries.
  bool evict_locked(const PrepareKey& key, bool force);

  Config cfg_;

  mutable std::mutex cache_mu_;  ///< guards cache_ and lru_ shape
  std::map<PrepareKey, std::shared_ptr<CacheEntry>> cache_;
  std::list<PrepareKey> lru_;    ///< most recently used at the front

  mutable std::mutex pool_mu_;  ///< guards pool_ map shape
  std::map<const PreparedGraph*, std::shared_ptr<Resident>> pool_;

  mutable std::mutex stats_mu_;  ///< guards counters_ and all_valid_
  EngineCounters counters_;
  bool all_valid_ = true;
};

}  // namespace tcgpu::framework
