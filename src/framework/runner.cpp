#include "framework/runner.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "framework/capacity.hpp"
#include "graph/prepare.hpp"

namespace tcgpu::framework {

PreparedGraph prepare_graph(std::string name, graph::Coo&& raw,
                            graph::OrientationPolicy policy) {
  PreparedGraph pg;
  pg.name = std::move(name);
  const bool rss_isolated = reset_peak_rss();
  const auto t0 = std::chrono::steady_clock::now();
  auto prepared = graph::prepare_dag(std::move(raw), policy);
  pg.stats = prepared.stats;
  pg.dag = std::move(prepared.dag);
  pg.reference_triangles = graph::count_triangles_forward_parallel(pg.dag);
  const auto t1 = std::chrono::steady_clock::now();
  pg.prepare_seconds = std::chrono::duration<double>(t1 - t0).count();
  // Without watermark reset this reports the process high-water mark — an
  // upper bound on the prepare, still a valid capacity ceiling.
  pg.peak_rss_mb = peak_rss_mb();
  (void)rss_isolated;
  return pg;
}

PreparedGraph prepare_graph(std::string name, const graph::Coo& raw,
                            graph::OrientationPolicy policy) {
  graph::Coo copy = raw;
  return prepare_graph(std::move(name), std::move(copy), policy);
}

PreparedGraph prepare_dataset(const gen::DatasetSpec& spec, std::uint64_t max_edges,
                              std::uint64_t seed, graph::OrientationPolicy policy) {
  graph::Coo raw = gen::generate_dataset(spec, max_edges, seed);
  return prepare_graph(spec.name, std::move(raw), policy);
}

simt::GpuSpec spec_for(const std::string& gpu_name) {
  if (gpu_name == "v100") return simt::GpuSpec::v100();
  if (gpu_name == "rtx4090") return simt::GpuSpec::rtx4090();
  throw std::invalid_argument("unknown GPU preset: " + gpu_name);
}

RunOutcome run_on_device(const tc::TriangleCounter& algo, const PreparedGraph& pg,
                         const tc::DeviceGraph& dg, simt::Device& scratch,
                         const simt::GpuSpec& spec) {
  RunOutcome out;
  out.algorithm = algo.name();
  out.dataset = pg.name;

  const auto t0 = std::chrono::steady_clock::now();
  out.result = algo.count(scratch, spec, dg);
  const auto t1 = std::chrono::steady_clock::now();
  out.host_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.valid = out.result.triangles == pg.reference_triangles;
  return out;
}

RunOutcome run_algorithm(const tc::TriangleCounter& algo, const PreparedGraph& pg,
                         const simt::GpuSpec& spec) {
  simt::Device dev;
  const tc::DeviceGraph dg = tc::DeviceGraph::upload(dev, pg.dag);
  return run_on_device(algo, pg, dg, dev, spec);
}

}  // namespace tcgpu::framework
