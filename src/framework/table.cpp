#include "framework/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace tcgpu::framework {

void ResultTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("ResultTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void ResultTable::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

void ResultTable::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(columns_);
  for (const auto& row : rows_) line(row);
}

void ResultTable::print_json(std::ostream& os) const {
  auto quoted = [&](const std::string& s) {
    os << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c;
      }
    }
    os << '"';
  };
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << ", ";
      quoted(columns_[c]);
      os << ": ";
      quoted(rows_[r][c]);
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string ResultTable::fmt(double v, int prec) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(prec) << v;
  return ss.str();
}

}  // namespace tcgpu::framework
