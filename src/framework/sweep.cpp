#include "framework/sweep.hpp"

#include <ostream>

namespace tcgpu::framework {

std::vector<SweepRow> run_sweep(const BenchOptions& opt,
                                const std::vector<AlgorithmEntry>& algorithms,
                                std::ostream& progress) {
  const simt::GpuSpec spec = spec_for(opt.gpu);
  std::vector<SweepRow> rows;
  for (const auto& ds : gen::paper_datasets()) {
    if (!opt.datasets.empty()) {
      bool selected = false;
      for (const auto& want : opt.datasets) selected |= want == ds.name;
      if (!selected) continue;
    }
    SweepRow row;
    row.graph = prepare_dataset(ds, opt.max_edges, opt.seed);
    progress << "[sweep] " << ds.name << ": V=" << row.graph.stats.num_vertices
             << " E=" << row.graph.stats.num_undirected_edges
             << " tri=" << row.graph.reference_triangles << '\n';
    for (const auto& entry : algorithms) {
      const auto algo = entry.make();
      row.outcomes.push_back(run_algorithm(*algo, row.graph, spec));
      const auto& out = row.outcomes.back();
      progress << "  " << entry.name << ": " << out.result.total.time_ms << " ms"
               << (out.valid ? "" : "  ** COUNT MISMATCH **") << '\n';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace tcgpu::framework
