#include "framework/sweep.hpp"

namespace tcgpu::framework {

std::vector<SweepRow> run_sweep(const BenchOptions& opt,
                                const std::vector<AlgorithmEntry>& algorithms,
                                std::ostream& progress) {
  Engine engine(opt);
  return engine.sweep(algorithms, progress);
}

}  // namespace tcgpu::framework
