// Command-line / environment options shared by every benchmark harness.
//
// The paper's largest datasets (Twitter: 1.2 B edges) cannot be simulated
// on this host at full size, so all harnesses apply a per-dataset edge cap
// (DESIGN.md "Substitutions"). Raise it with --max-edges=N / TCGPU_EDGE_CAP
// or disable capping with --full.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcgpu::framework {

struct BenchOptions {
  std::uint64_t max_edges = 100'000;  ///< per-dataset edge cap (0 = no cap)
  std::uint64_t seed = 42;
  bool csv = false;                  ///< machine-readable output
  bool json = false;                 ///< JSON output (wins over csv)
  std::string gpu = "v100";          ///< "v100" | "rtx4090"
  std::vector<std::string> datasets; ///< empty = all 19
  std::vector<std::string> algos;    ///< algorithm selection; empty = bench default
  std::size_t jobs = 0;              ///< engine cell workers; 0 = auto, 1 = serial
  std::size_t max_resident = 0;      ///< prepared-graph cache cap (0 = unbounded)

  /// Multi-GPU benches only (src/dist/). 0 = sweep the default device
  /// counts; an explicit --gpus=N (1..64) runs just that N.
  std::uint32_t gpus = 0;
  /// "" = sweep all partition strategies; otherwise "range" | "hash" | "2d"
  /// | "host".
  std::string partition;
  /// Cluster benches: hosts the modeled devices spread over. 0 = bench
  /// default (single host / bench-defined sweep). --hosts=H pins the host
  /// count; --hosts=HxD pins hosts *and* devices per host (sets gpus=H*D).
  std::uint32_t hosts = 0;
  /// Interconnect preset name ("" = bench default). Validated against
  /// simt::interconnect_spec_from_string: nvlink | pcie3 | eth10g | ib-edr.
  std::string interconnect;

  /// Serving benches only (src/serve/): closed-loop load-generator shape.
  std::size_t clients = 0;    ///< concurrent closed-loop clients; 0 = default
  std::uint64_t queries = 0;  ///< total queries to issue; 0 = bench default
  /// "dataset:algorithm,..." — pinned selector decisions the serve bench
  /// asserts after warmup (CI regression gate); "" = no assertion.
  std::string check_picks;

  /// Streaming benches only (src/stream/): churn-workload shape.
  std::uint64_t mutations = 0;            ///< total edge ops; 0 = bench default
  std::vector<std::uint64_t> stream_batch;  ///< batch sizes to sweep; empty = default
  std::size_t snapshots = 0;              ///< snapshot history depth; 0 = default

  /// Fleet mode (bench/serve_throughput --fleet): closed-loop mixed-traffic
  /// serving against fleet::FleetService, sweeping the device count
  /// (M = 1,2,4,8 unless --gpus pins one).
  bool fleet = false;
  /// "dataset:placement,..." — pinned placer decisions the fleet bench
  /// asserts after warmup (CI drift gate, like check_picks); "" = none.
  std::string check_placements;

  /// Parses argv (flags: --max-edges=N --seed=N --full --csv --json
  /// --gpu=NAME --datasets=a,b,c --algos=a,b,c --algo=NAME --jobs=N
  /// --serial --max-resident=N --gpus=N --partition=range|hash|2d|host
  /// --hosts=H or HxD --interconnect=NAME
  /// --clients=N --queries=N --check-picks=ds:algo,...
  /// --fleet --check-placements=ds:placement,...
  /// --mutations=N --stream-batch=a,b,c --snapshots=N) with
  /// TCGPU_EDGE_CAP / TCGPU_SEED / TCGPU_JOBS as fallbacks.
  /// Unknown flags, unknown --datasets/--algos names and malformed numbers
  /// all throw with a one-line message naming the valid choices; bench
  /// mains print it and exit 2 rather than falling through to defaults.
  static BenchOptions parse(int argc, char** argv);
};

}  // namespace tcgpu::framework
