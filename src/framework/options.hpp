// Command-line / environment options shared by every benchmark harness.
//
// The paper's largest datasets (Twitter: 1.2 B edges) cannot be simulated
// on this host at full size, so all harnesses apply a per-dataset edge cap
// (DESIGN.md "Substitutions"). Raise it with --max-edges=N / TCGPU_EDGE_CAP
// or disable capping with --full.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tcgpu::framework {

struct BenchOptions {
  std::uint64_t max_edges = 100'000;  ///< per-dataset edge cap (0 = no cap)
  std::uint64_t seed = 42;
  bool csv = false;                  ///< machine-readable output
  bool json = false;                 ///< JSON output (wins over csv)
  std::string gpu = "v100";          ///< "v100" | "rtx4090"
  std::vector<std::string> datasets; ///< empty = all 19
  std::size_t jobs = 0;              ///< engine cell workers; 0 = auto, 1 = serial

  /// Multi-GPU benches only (src/dist/). 0 = sweep the default device
  /// counts; an explicit --gpus=N (1..64) runs just that N.
  std::uint32_t gpus = 0;
  /// "" = sweep all partition strategies; otherwise "range" | "hash" | "2d".
  std::string partition;

  /// Parses argv (flags: --max-edges=N --seed=N --full --csv --json
  /// --gpu=NAME --datasets=a,b,c --jobs=N --serial --gpus=N
  /// --partition=range|hash|2d) with TCGPU_EDGE_CAP / TCGPU_SEED /
  /// TCGPU_JOBS as fallbacks.
  /// Throws std::invalid_argument on unknown flags (so typos fail loudly).
  static BenchOptions parse(int argc, char** argv);
};

}  // namespace tcgpu::framework
