#include "framework/registry.hpp"

#include <stdexcept>

#include "tc/bisson.hpp"
#include "tc/fox.hpp"
#include "tc/green.hpp"
#include "tc/grouptc.hpp"
#include "tc/grouptc_hash.hpp"
#include "tc/hindex.hpp"
#include "tc/hu.hpp"
#include "tc/polak.hpp"
#include "tc/tricore.hpp"
#include "tc/trust.hpp"

namespace tcgpu::framework {

const std::vector<AlgorithmEntry>& all_algorithms() {
  static const std::vector<AlgorithmEntry> entries = {
      {"Green", [] { return std::make_unique<tc::GreenCounter>(); }},
      {"Polak", [] { return std::make_unique<tc::PolakCounter>(); }},
      {"Bisson", [] { return std::make_unique<tc::BissonCounter>(); }},
      {"TriCore", [] { return std::make_unique<tc::TriCoreCounter>(); }},
      {"Fox", [] { return std::make_unique<tc::FoxCounter>(); }},
      {"Hu", [] { return std::make_unique<tc::HuCounter>(); }},
      {"H-INDEX", [] { return std::make_unique<tc::HIndexCounter>(); }},
      {"TRUST", [] { return std::make_unique<tc::TrustCounter>(); }},
      {"GroupTC", [] { return std::make_unique<tc::GroupTcCounter>(); }},
  };
  return entries;
}

const std::vector<AlgorithmEntry>& headline_algorithms() {
  static const std::vector<AlgorithmEntry> entries = {
      {"Polak", [] { return std::make_unique<tc::PolakCounter>(); }},
      {"TRUST", [] { return std::make_unique<tc::TrustCounter>(); }},
      {"GroupTC", [] { return std::make_unique<tc::GroupTcCounter>(); }},
  };
  return entries;
}

const std::vector<AlgorithmEntry>& extended_algorithms() {
  static const std::vector<AlgorithmEntry> entries = [] {
    std::vector<AlgorithmEntry> v = all_algorithms();
    v.push_back(
        {"GroupTC-H", [] { return std::make_unique<tc::GroupTcHashCounter>(); }});
    return v;
  }();
  return entries;
}

std::unique_ptr<tc::TriangleCounter> make_algorithm(const std::string& name) {
  for (const auto& e : extended_algorithms()) {
    if (e.name == name) return e.make();
  }
  std::string valid;
  for (const auto& e : extended_algorithms()) {
    if (!valid.empty()) valid += ", ";
    valid += e.name;
  }
  throw std::out_of_range("unknown algorithm '" + name + "' (valid: " + valid + ")");
}

}  // namespace tcgpu::framework
