#include "framework/registry.hpp"

#include <stdexcept>

#include "tc/bfsla.hpp"
#include "tc/bisson.hpp"
#include "tc/bsr.hpp"
#include "tc/cmerge.hpp"
#include "tc/cstage.hpp"
#include "tc/fox.hpp"
#include "tc/green.hpp"
#include "tc/grouptc.hpp"
#include "tc/grouptc_hash.hpp"
#include "tc/hindex.hpp"
#include "tc/hu.hpp"
#include "tc/mergepath.hpp"
#include "tc/polak.hpp"
#include "tc/tricore.hpp"
#include "tc/trust.hpp"

namespace {

/// The kernels composed directly from tc/intersect/ policies: the three
/// library kernels plus the two compressed-CSR decoders (varint.hpp).
std::vector<tcgpu::framework::AlgorithmEntry> library_algorithms() {
  return {
      {"MergePath", [] { return std::make_unique<tcgpu::tc::MergePathCounter>(); }},
      {"BSR", [] { return std::make_unique<tcgpu::tc::BsrCounter>(); }},
      {"BFS-LA", [] { return std::make_unique<tcgpu::tc::BfsLaCounter>(); }},
      {"CMerge", [] { return std::make_unique<tcgpu::tc::CMergeCounter>(); }},
      {"CStage", [] { return std::make_unique<tcgpu::tc::CStageCounter>(); }},
  };
}

}  // namespace

namespace tcgpu::framework {

const std::vector<AlgorithmEntry>& all_algorithms() {
  static const std::vector<AlgorithmEntry> entries = {
      {"Green", [] { return std::make_unique<tc::GreenCounter>(); }},
      {"Polak", [] { return std::make_unique<tc::PolakCounter>(); }},
      {"Bisson", [] { return std::make_unique<tc::BissonCounter>(); }},
      {"TriCore", [] { return std::make_unique<tc::TriCoreCounter>(); }},
      {"Fox", [] { return std::make_unique<tc::FoxCounter>(); }},
      {"Hu", [] { return std::make_unique<tc::HuCounter>(); }},
      {"H-INDEX", [] { return std::make_unique<tc::HIndexCounter>(); }},
      {"TRUST", [] { return std::make_unique<tc::TrustCounter>(); }},
      {"GroupTC", [] { return std::make_unique<tc::GroupTcCounter>(); }},
  };
  return entries;
}

const std::vector<AlgorithmEntry>& headline_algorithms() {
  static const std::vector<AlgorithmEntry> entries = {
      {"Polak", [] { return std::make_unique<tc::PolakCounter>(); }},
      {"TRUST", [] { return std::make_unique<tc::TrustCounter>(); }},
      {"GroupTC", [] { return std::make_unique<tc::GroupTcCounter>(); }},
  };
  return entries;
}

const std::vector<AlgorithmEntry>& extended_algorithms() {
  static const std::vector<AlgorithmEntry> entries = [] {
    std::vector<AlgorithmEntry> v = all_algorithms();
    v.push_back(
        {"GroupTC-H", [] { return std::make_unique<tc::GroupTcHashCounter>(); }});
    for (auto& e : library_algorithms()) v.push_back(std::move(e));
    return v;
  }();
  return entries;
}

const std::vector<AlgorithmEntry>& pool_algorithms() {
  static const std::vector<AlgorithmEntry> entries = [] {
    std::vector<AlgorithmEntry> v = all_algorithms();
    for (auto& e : library_algorithms()) v.push_back(std::move(e));
    return v;
  }();
  return entries;
}

const std::string& valid_algorithm_list() {
  static const std::string list = [] {
    std::string valid;
    for (const auto& e : extended_algorithms()) {
      if (!valid.empty()) valid += ", ";
      valid += e.name;
    }
    return valid;
  }();
  return list;
}

std::unique_ptr<tc::TriangleCounter> make_algorithm(const std::string& name) {
  for (const auto& e : extended_algorithms()) {
    if (e.name == name) return e.make();
  }
  throw std::out_of_range("unknown algorithm '" + name +
                          "' (valid: " + valid_algorithm_list() + ")");
}

bool is_algorithm_name(const std::string& name) {
  for (const auto& e : extended_algorithms()) {
    if (e.name == name) return true;
  }
  return false;
}

}  // namespace tcgpu::framework
