// Dataset preparation and validated algorithm execution — the spine of the
// unified testing framework (§IV): generate/load → clean → orient → upload
// → run → check the count against the CPU reference → collect metrics.
#pragma once

#include <cstdint>
#include <string>

#include "gen/paper_datasets.hpp"
#include "graph/cpu_reference.hpp"
#include "graph/orientation.hpp"
#include "graph/stats.hpp"
#include "tc/common.hpp"
#include "tc/device_graph.hpp"

namespace tcgpu::framework {

struct PreparedGraph {
  std::string name;
  graph::GraphStats stats;             ///< of the cleaned undirected graph
  graph::Csr dag;                      ///< oriented, relabeled (u < v)
  std::uint64_t reference_triangles = 0;  ///< CPU forward-algorithm count
  double prepare_seconds = 0.0;        ///< clean+orient+reference wall time
  double peak_rss_mb = 0.0;  ///< host peak RSS over the prepare (0 = unknown)
};

/// Generates (with the edge cap applied), cleans, orients and reference-counts
/// one of the paper's datasets.
PreparedGraph prepare_dataset(
    const gen::DatasetSpec& spec, std::uint64_t max_edges, std::uint64_t seed,
    graph::OrientationPolicy policy = graph::OrientationPolicy::kByDegree);

/// Same pipeline for an arbitrary raw edge list (loader output, tests).
/// The rvalue overload consumes the edge storage (graph::prepare_dag frees
/// it mid-pipeline, which is what keeps billion-edge peak RSS at ~2 key
/// arrays); the const& overload copies and delegates.
PreparedGraph prepare_graph(
    std::string name, graph::Coo&& raw,
    graph::OrientationPolicy policy = graph::OrientationPolicy::kByDegree);
PreparedGraph prepare_graph(
    std::string name, const graph::Coo& raw,
    graph::OrientationPolicy policy = graph::OrientationPolicy::kByDegree);

struct RunOutcome {
  std::string algorithm;
  std::string dataset;
  tc::AlgoResult result;
  bool valid = false;      ///< triangles == reference
  double host_seconds = 0; ///< simulator wall time (diagnostic only)
};

/// Uploads the DAG to a fresh device, runs the counter, validates the count.
/// One-shot convenience; Engine reuses a resident DeviceGraph instead.
RunOutcome run_algorithm(const tc::TriangleCounter& algo, const PreparedGraph& pg,
                         const simt::GpuSpec& spec);

/// Runs the counter against an already-resident DeviceGraph, allocating the
/// algorithm's scratch buffers on `scratch`. This is the engine's path: `dg`
/// lives on a pooled device shared by every algorithm on the dataset, while
/// `scratch` is per-run (base it at the pooled device's mark so the address
/// stream matches a single-device run exactly).
RunOutcome run_on_device(const tc::TriangleCounter& algo, const PreparedGraph& pg,
                         const tc::DeviceGraph& dg, simt::Device& scratch,
                         const simt::GpuSpec& spec);

/// GpuSpec preset by name ("v100" or "rtx4090"); throws on anything else.
simt::GpuSpec spec_for(const std::string& gpu_name);

}  // namespace tcgpu::framework
