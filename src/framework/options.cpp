#include "framework/options.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "framework/registry.hpp"
#include "gen/paper_datasets.hpp"
#include "simt/gpu_spec.hpp"

namespace tcgpu::framework {
namespace {

bool take_flag(const std::string& arg, const std::string& name, std::string* value) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const std::string& s, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value for --" + flag + ": '" + s +
                                "' (expected an unsigned integer)");
  }
}

/// Rejects unknown algorithm names with a message listing the registry (the
/// valid list is derived from the registry at runtime, so newly registered
/// kernels appear without touching this file).
void check_algorithm_name(const std::string& name) {
  if (is_algorithm_name(name)) return;
  throw std::invalid_argument("unknown algorithm '" + name +
                              "' (valid: " + valid_algorithm_list() + ")");
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opt;
  if (const char* cap = std::getenv("TCGPU_EDGE_CAP")) {
    opt.max_edges = parse_u64(cap, "TCGPU_EDGE_CAP");
  }
  if (const char* seed = std::getenv("TCGPU_SEED")) {
    opt.seed = parse_u64(seed, "TCGPU_SEED");
  }
  if (const char* jobs = std::getenv("TCGPU_JOBS")) {
    opt.jobs = static_cast<std::size_t>(parse_u64(jobs, "TCGPU_JOBS"));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--full") {
      opt.max_edges = 0;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--serial") {
      opt.jobs = 1;
    } else if (take_flag(arg, "jobs", &value)) {
      opt.jobs = static_cast<std::size_t>(parse_u64(value, "jobs"));
    } else if (take_flag(arg, "max-edges", &value)) {
      opt.max_edges = parse_u64(value, "max-edges");
    } else if (take_flag(arg, "seed", &value)) {
      opt.seed = parse_u64(value, "seed");
    } else if (take_flag(arg, "gpu", &value)) {
      if (value != "v100" && value != "rtx4090") {
        throw std::invalid_argument("unknown --gpu (use v100 or rtx4090)");
      }
      opt.gpu = value;
    } else if (take_flag(arg, "gpus", &value)) {
      const std::uint64_t n = parse_u64(value, "gpus");
      if (n < 1 || n > 64) {
        throw std::invalid_argument("--gpus must be in [1, 64], got " + value);
      }
      opt.gpus = static_cast<std::uint32_t>(n);
    } else if (take_flag(arg, "partition", &value)) {
      if (value != "range" && value != "hash" && value != "2d" &&
          value != "host") {
        throw std::invalid_argument("unknown --partition '" + value +
                                    "' (use range, hash, 2d or host)");
      }
      opt.partition = value;
    } else if (take_flag(arg, "hosts", &value)) {
      // --hosts=H or --hosts=HxD (the HostSpec x DeviceSpec spelling: H
      // hosts of D devices each, which also pins gpus = H * D).
      const std::size_t x = value.find('x');
      const std::string hosts_part = value.substr(0, x);
      const std::uint64_t h = parse_u64(hosts_part, "hosts");
      if (h < 1 || h > 64) {
        throw std::invalid_argument("--hosts host count must be in [1, 64], got " +
                                    hosts_part);
      }
      opt.hosts = static_cast<std::uint32_t>(h);
      if (x != std::string::npos) {
        const std::string dev_part = value.substr(x + 1);
        const std::uint64_t d = parse_u64(dev_part, "hosts");
        if (d < 1 || h * d > 64) {
          throw std::invalid_argument(
              "--hosts=HxD needs 1 <= D and H*D <= 64, got " + value);
        }
        opt.gpus = static_cast<std::uint32_t>(h * d);
      }
    } else if (take_flag(arg, "interconnect", &value)) {
      simt::interconnect_spec_from_string(value);  // reject typos with the
                                                   // preset list, exit 2
      opt.interconnect = value;
    } else if (take_flag(arg, "datasets", &value)) {
      for (auto& item : split_list(value)) {
        gen::dataset_by_name(item);  // reject typos with exit 2 and the list
                                     // of valid names, not an empty sweep
        opt.datasets.push_back(std::move(item));
      }
    } else if (take_flag(arg, "algos", &value)) {
      for (auto& item : split_list(value)) {
        check_algorithm_name(item);
        opt.algos.push_back(std::move(item));
      }
    } else if (take_flag(arg, "algo", &value)) {
      check_algorithm_name(value);
      opt.algos.push_back(value);
    } else if (take_flag(arg, "max-resident", &value)) {
      opt.max_resident = static_cast<std::size_t>(parse_u64(value, "max-resident"));
    } else if (take_flag(arg, "clients", &value)) {
      opt.clients = static_cast<std::size_t>(parse_u64(value, "clients"));
    } else if (take_flag(arg, "queries", &value)) {
      opt.queries = parse_u64(value, "queries");
    } else if (take_flag(arg, "check-picks", &value)) {
      opt.check_picks = value;
    } else if (arg == "--fleet") {
      opt.fleet = true;
    } else if (take_flag(arg, "check-placements", &value)) {
      opt.check_placements = value;
    } else if (take_flag(arg, "mutations", &value)) {
      const std::uint64_t n = parse_u64(value, "mutations");
      if (n < 1) {
        throw std::invalid_argument("--mutations must be >= 1, got " + value);
      }
      opt.mutations = n;
    } else if (take_flag(arg, "stream-batch", &value)) {
      const auto items = split_list(value);
      if (items.empty()) {
        throw std::invalid_argument(
            "--stream-batch needs at least one batch size");
      }
      for (const auto& item : items) {
        const std::uint64_t n = parse_u64(item, "stream-batch");
        if (n < 1 || n > 1'048'576) {
          throw std::invalid_argument(
              "--stream-batch sizes must be in [1, 1048576], got " + item);
        }
        opt.stream_batch.push_back(n);
      }
    } else if (take_flag(arg, "snapshots", &value)) {
      const std::uint64_t n = parse_u64(value, "snapshots");
      if (n < 1 || n > 64) {
        throw std::invalid_argument("--snapshots must be in [1, 64], got " +
                                    value);
      }
      opt.snapshots = static_cast<std::size_t>(n);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flags pass through untouched
    } else {
      throw std::invalid_argument("unknown flag: " + arg);
    }
  }
  return opt;
}

}  // namespace tcgpu::framework
