#include "serve/trace.hpp"

#include <sstream>

namespace tcgpu::serve {

double QueryTrace::span_ms(TimePoint from, TimePoint to) {
  if (from.time_since_epoch().count() == 0 ||
      to.time_since_epoch().count() == 0 || to < from) {
    return 0.0;
  }
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string QueryTrace::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << "queue=" << queue_ms() << "ms prepare=" << prepare_ms()
     << "ms select=" << select_ms() << "ms run=" << run_ms()
     << "ms total=" << total_ms() << "ms";
  return os.str();
}

}  // namespace tcgpu::serve
