// Per-query tracing for the serve layer: one timestamp per lifecycle stage
// (enqueue → admit → prepare → select → run → reply), stamped with a steady
// clock so stage durations are meaningful even when the host clock steps.
//
// Traces ride inside QueryReply, so every client sees exactly where its
// latency went: queueing (admission backpressure), graph preparation (cache
// miss vs hit), selection (cost-model scoring) and kernel execution.
#pragma once

#include <chrono>
#include <string>

namespace tcgpu::serve {

struct QueryTrace {
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  TimePoint enqueue;        ///< submit() accepted the query into the queue
  TimePoint admit;          ///< a worker dequeued it (batch formation)
  TimePoint prepare_start;  ///< graph pipeline lookup/run began
  TimePoint prepare_done;   ///< PreparedGraph handle available
  TimePoint select_done;    ///< algorithm chosen (cost model or override)
  TimePoint run_start;      ///< kernel dispatch began
  TimePoint run_done;       ///< kernel finished, count available
  TimePoint reply;          ///< promise fulfilled

  /// Milliseconds between two stamps (0 when either is unset or reversed).
  static double span_ms(TimePoint from, TimePoint to);

  double queue_ms() const { return span_ms(enqueue, admit); }
  double prepare_ms() const { return span_ms(prepare_start, prepare_done); }
  double select_ms() const { return span_ms(prepare_done, select_done); }
  double run_ms() const { return span_ms(run_start, run_done); }
  double total_ms() const { return span_ms(enqueue, reply); }

  /// One-line stage breakdown, e.g.
  /// "queue=0.12ms prepare=3.40ms select=0.01ms run=1.95ms total=5.50ms".
  std::string summary() const;
};

}  // namespace tcgpu::serve
