#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "stream/dynamic_graph.hpp"

namespace tcgpu::serve {

namespace {

/// Content hash of an inline edge list — the batching/stickiness key for
/// queries that carry their graph with them. Deterministic across runs.
std::uint64_t edges_hash(const graph::Coo& coo) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ coo.num_vertices;
  for (const auto& [u, v] : coo.edges) {
    std::uint64_t x = (static_cast<std::uint64_t>(u) << 32) | v;
    x ^= h;
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    h = x * 0x94d049bb133111ebull;
  }
  return h;
}

QueryTrace::TimePoint now() { return QueryTrace::Clock::now(); }

}  // namespace

const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kInvalidRequest: return "invalid-request";
    case QueryStatus::kError: return "error";
  }
  return "?";
}

/// One admitted query riding through the pipeline.
struct QueryService::Pending {
  QueryRequest req;
  std::string key;   ///< batching key: dataset name or inline content hash;
                     ///< version-pinned queries append "@vN" so they never
                     ///< share a batch with head queries of the dataset
  std::string pick;  ///< pick/backend key: the bare graph identity (no @vN —
                     ///< PickKey and the result cache carry the version)
  QueryTrace trace;
  std::promise<QueryReply> promise;
};

/// Per-dataset streaming state, created on the first mutation. `m` guards
/// every field and is taken BEFORE mu_ whenever both are held (mu_ is only
/// ever taken alone or inside an `m` scope, never the other way around).
struct QueryService::StreamState {
  std::mutex m;
  std::unique_ptr<stream::DynamicGraph> dyn;
  /// The current version's snapshot materialized as a PreparedGraph; its
  /// pooled device image is released on the next version bump (and at
  /// shutdown), so exactly one upload per dataset version stays live.
  framework::Engine::GraphHandle materialized;
  std::uint64_t materialized_version = 0;
};

QueryService::QueryService(framework::Engine& engine, Config cfg)
    : QueryService(engine,
                   Selector::Config{engine.config().spec, cfg.refine}, cfg) {}

QueryService::QueryService(framework::Engine& engine,
                           Selector::Config selector_cfg, Config cfg)
    : engine_(engine),
      cfg_(cfg),
      selector_(std::move(selector_cfg)),
      queue_(cfg.queue_capacity, cfg.block_when_full) {
  const std::size_t workers = std::max<std::size_t>(1, cfg_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();  // workers drain the backlog, then exit
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Workers are gone: drop the streamed snapshots' pooled device images so
  // the (longer-lived) engine does not keep dead uploads resident.
  std::vector<std::shared_ptr<StreamState>> states;
  {
    std::lock_guard lk(mu_);
    states.reserve(streams_.size());
    for (auto& [name, ss] : streams_) states.push_back(ss);
  }
  for (auto& ss : states) {
    std::lock_guard slk(ss->m);
    if (ss->materialized) {
      engine_.release_device(ss->materialized);
      ss->materialized.reset();
      ss->materialized_version = 0;
    }
  }
}

std::future<QueryReply> QueryService::submit(QueryRequest req) {
  auto pending = std::make_unique<Pending>();
  pending->req = std::move(req);
  pending->trace.enqueue = now();
  auto future = pending->promise.get_future();

  QueryReply early;
  early.dataset = pending->req.dataset.empty()
                      ? (pending->req.name.empty() ? "inline" : pending->req.name)
                      : pending->req.dataset;
  if (pending->req.dataset.empty() && pending->req.edges.edges.empty() &&
      !pending->req.is_mutation()) {
    early.status = QueryStatus::kInvalidRequest;
    early.error = "query names no dataset and carries no edges";
  } else if (pending->req.version != 0 && pending->req.is_mutation()) {
    early.status = QueryStatus::kInvalidRequest;
    early.error = "mutations always target the head version (version must be 0)";
  } else if (pending->req.version != 0 && pending->req.dataset.empty()) {
    early.status = QueryStatus::kInvalidRequest;
    early.error = "inline graphs have no version history to pin";
  } else if (queue_.closed()) {
    early.status = QueryStatus::kShutdown;
  } else {
    pending->pick = pending->req.dataset.empty()
                        ? "inline:" + std::to_string(edges_hash(pending->req.edges))
                        : pending->req.dataset;
    pending->key = pending->req.version != 0
                       ? pending->pick + "@v" + std::to_string(pending->req.version)
                       : pending->pick;
    if (queue_.push(std::move(pending))) {
      std::lock_guard lk(mu_);
      ++counters_.submitted;
      return future;
    }
    // push() consumes the unique_ptr only on success, so `pending` is still
    // whole here: either close() raced us or the queue is full in
    // non-blocking (load-shedding) mode.
    early.status = queue_.closed() ? QueryStatus::kShutdown : QueryStatus::kRejected;
  }

  // Terminal without admission: resolve the original promise immediately.
  {
    std::lock_guard lk(mu_);
    ++counters_.rejected;
    if (early.status == QueryStatus::kInvalidRequest) ++counters_.errors;
  }
  pending->trace.reply = now();
  early.trace = pending->trace;
  pending->promise.set_value(std::move(early));
  return future;
}

void QueryService::worker_loop() {
  while (auto item = queue_.pop()) {
    std::vector<std::unique_ptr<Pending>> batch;
    batch.push_back(std::move(*item));
    const std::string& key = batch.front()->key;
    if (cfg_.max_batch > 1) {
      auto more = queue_.take_matching(
          [&key](const std::unique_ptr<Pending>& p) { return p->key == key; },
          cfg_.max_batch - 1);
      for (auto& p : more) batch.push_back(std::move(p));
    }
    process_batch(std::move(batch));
  }
}

void QueryService::finish(Pending& p, QueryReply reply) {
  reply.trace = p.trace;
  reply.trace.reply = now();
  {
    std::lock_guard lk(mu_);
    ++counters_.served;
    if (reply.status == QueryStatus::kDeadlineExpired) ++counters_.expired;
    if (reply.status == QueryStatus::kInvalidRequest ||
        reply.status == QueryStatus::kError) {
      ++counters_.errors;
    }
  }
  p.promise.set_value(std::move(reply));
}

std::shared_ptr<QueryService::StreamState> QueryService::stream_state(
    const std::string& dataset, bool create) {
  std::lock_guard lk(mu_);
  const auto it = streams_.find(dataset);
  if (it != streams_.end()) return it->second;
  if (!create) return nullptr;
  auto ss = std::make_shared<StreamState>();
  streams_.emplace(dataset, ss);
  return ss;
}

framework::Engine::GraphHandle QueryService::stream_handle(
    StreamState& ss, const std::string& dataset, std::uint64_t* version) {
  // Caller holds ss.m. One materialization (and thus one device upload, on
  // first run) per dataset version; the previous version's image is released
  // the moment it goes stale.
  const auto snap = ss.dyn->snapshot();
  if (version != nullptr) *version = snap->version();
  if (ss.materialized && ss.materialized_version == snap->version()) {
    return ss.materialized;
  }
  if (ss.materialized) engine_.release_device(ss.materialized);
  auto pg = std::make_shared<framework::PreparedGraph>();
  pg->name = dataset;
  pg->stats = snap->stats();
  pg->dag = snap->materialize_dag();
  pg->reference_triangles = snap->triangles();
  ss.materialized = pg;
  ss.materialized_version = snap->version();
  return pg;
}

void QueryService::handle_mutation(Pending& p, const std::string& label) {
  QueryReply reply;
  reply.dataset = label;
  reply.algorithm = "stream-delta";
  reply.tenant = p.req.tenant;

  if (p.req.dataset.empty()) {
    reply.status = QueryStatus::kInvalidRequest;
    reply.error = "mutations require a named dataset (inline graphs cannot mutate)";
    finish(p, std::move(reply));
    return;
  }

  const auto ss = stream_state(p.req.dataset, /*create=*/true);
  bool changed = false;
  std::uint64_t new_version = 0;
  {
    std::lock_guard slk(ss->m);
    p.trace.prepare_start = now();
    try {
      if (!ss->dyn) {
        // First mutation moves the dataset onto a DynamicGraph, seeded from
        // the same prepared DAG a count query would use.
        const auto seed = engine_.prepare(p.req.dataset);
        ss->dyn = std::make_unique<stream::DynamicGraph>(
            seed->dag, stream::DynamicGraph::Config{engine_.config().spec,
                                                    cfg_.snapshots, 256});
      }
    } catch (const std::exception& e) {
      p.trace.prepare_done = now();
      reply.status = QueryStatus::kInvalidRequest;
      reply.error = e.what();
      finish(p, std::move(reply));
      return;
    }
    p.trace.prepare_done = now();

    const graph::GraphStats old_stats = ss->dyn->snapshot()->stats();
    std::vector<stream::EdgeOp> ops;
    ops.reserve(p.req.insert_edges.size() + p.req.remove_edges.size());
    for (const auto& [u, v] : p.req.insert_edges) ops.push_back({u, v, true});
    for (const auto& [u, v] : p.req.remove_edges) ops.push_back({u, v, false});

    p.trace.run_start = now();
    stream::CommitResult cr;
    try {
      // Delta vs recount: the delta kernel's cost grows with the batch, a
      // full recount's with the graph — the selector models the crossover
      // and the commit takes whichever side is cheaper (both are exact and
      // produce bit-identical snapshots).
      stream::CommitMode mode = stream::CommitMode::kDelta;
      if (cfg_.mutation_model &&
          !selector_.mutation_cost(old_stats, ops.size()).use_delta) {
        mode = stream::CommitMode::kRecount;
      }
      cr = ss->dyn->commit(ops, mode);
    } catch (const std::exception& e) {
      p.trace.run_done = now();
      reply.status = QueryStatus::kError;
      reply.error = e.what();
      finish(p, std::move(reply));
      return;
    }
    p.trace.run_done = now();
    if (cr.recounted) reply.algorithm = "stream-recount";

    changed = cr.changed;
    new_version = cr.version;
    if (cr.changed) {
      // The version bumped: every layer describing the old graph goes. The
      // previous snapshot's pooled device image, the engine's cached
      // prepares of the dataset (a cache hit would resurrect pre-mutation
      // data), and the selector's folded refinement for the old stats.
      if (ss->materialized) {
        engine_.release_device(ss->materialized);
        ss->materialized.reset();
        ss->materialized_version = 0;
      }
      engine_.invalidate(p.req.dataset);
      if (cfg_.backend != nullptr) cfg_.backend->invalidate(p.req.dataset);
      selector_.forget(old_stats);
    }

    reply.status = QueryStatus::kOk;
    reply.version = cr.version;
    reply.delta_triangles = cr.delta_triangles;
    reply.triangles = cr.triangles;
    reply.valid = true;
    reply.stats = cr.stats;
  }

  {
    std::lock_guard lk(mu_);
    ++counters_.mutations;
    if (changed && cfg_.sticky_picks) {
      // Latches below the new version describe a graph that no longer
      // exists; the next count query re-scores and re-latches at version N.
      picks_.erase(
          picks_.lower_bound(PickKey{p.req.dataset, 0, Hint::kAuto}),
          picks_.lower_bound(PickKey{p.req.dataset, new_version, Hint::kAuto}));
    }
  }
  finish(p, std::move(reply));
}

void QueryService::process_batch(std::vector<std::unique_ptr<Pending>> batch) {
  const auto admit = now();
  for (auto& p : batch) p->trace.admit = admit;
  {
    std::lock_guard lk(mu_);
    ++counters_.batches;
    counters_.batched += batch.size() - 1;
  }

  Pending& head = *batch.front();
  const bool is_inline = head.req.dataset.empty();
  const std::string label =
      is_inline ? (head.req.name.empty() ? "inline" : head.req.name)
                : head.req.dataset;

  // One prepare/upload serves every count query at the same version. The
  // resolution is lazy and re-done after each mutation in the batch, so a
  // count query admitted behind a mutation answers against the version that
  // mutation produced (same-key batching keeps the submission order).
  framework::Engine::GraphHandle graph;
  framework::Engine::GraphHandle inline_graph;  // released after the batch
  framework::Engine::GraphHandle pinned_graph;  // released after the batch
  std::uint64_t graph_version = 0;
  bool from_stream = false;
  bool resolved = false;
  std::string resolve_error;
  QueryTrace::TimePoint prepare_start{};
  QueryTrace::TimePoint prepare_done{};

  const auto resolve = [&] {
    if (resolved) return;
    resolved = true;
    resolve_error.clear();
    graph = nullptr;
    graph_version = 0;
    from_stream = false;
    prepare_start = now();
    try {
      if (is_inline) {
        if (!inline_graph) {
          inline_graph = engine_.prepare_raw(label, head.req.edges);
        }
        graph = inline_graph;
      } else if (head.req.version != 0) {
        // Version-pinned (time-travel) read: answer from the retained
        // snapshot, materialized once per batch outside the engine cache —
        // its one-shot device image is released when the batch ends.
        const std::uint64_t want = head.req.version;
        if (!pinned_graph) {
          std::shared_ptr<const stream::Snapshot> snap;
          std::uint64_t head_version = 0;
          if (const auto ss = stream_state(head.req.dataset, /*create=*/false)) {
            std::lock_guard slk(ss->m);
            if (ss->dyn) {
              head_version = ss->dyn->version();
              snap = ss->dyn->snapshot_at(want);
            }
          }
          if (head_version == 0) {
            resolve_error = "dataset '" + head.req.dataset +
                            "' has no mutation history; cannot pin version " +
                            std::to_string(want);
          } else if (!snap) {
            resolve_error = "version " + std::to_string(want) +
                            " outside history window (head v" +
                            std::to_string(head_version) + ", retained " +
                            std::to_string(cfg_.snapshots) + ")";
          } else {
            auto pg = std::make_shared<framework::PreparedGraph>();
            pg->name = head.key;  // "dataset@vN" labels traces and the pool
            pg->stats = snap->stats();
            pg->dag = snap->materialize_dag();
            pg->reference_triangles = snap->triangles();
            pinned_graph = pg;
          }
        }
        if (pinned_graph) {
          graph = pinned_graph;
          graph_version = want;
          from_stream = true;
        }
      } else {
        if (const auto ss = stream_state(head.req.dataset, /*create=*/false)) {
          std::lock_guard slk(ss->m);
          if (ss->dyn) {
            graph = stream_handle(*ss, head.req.dataset, &graph_version);
            from_stream = true;
          }
        }
        if (!graph) graph = engine_.prepare(head.req.dataset);
      }
    } catch (const std::exception& e) {
      resolve_error = e.what();
    }
    prepare_done = now();
  };

  for (auto& p : batch) {
    if (p->req.is_mutation()) {
      handle_mutation(*p, label);
      resolved = false;  // the next count query re-resolves at the new version
      continue;
    }

    resolve();
    p->trace.prepare_start = prepare_start;
    p->trace.prepare_done = prepare_done;

    QueryReply reply;
    reply.dataset = label;
    reply.version = graph_version;
    reply.tenant = p->req.tenant;

    if (!resolve_error.empty()) {
      reply.status = QueryStatus::kInvalidRequest;
      reply.error = resolve_error;
      finish(*p, std::move(reply));
      continue;
    }

    if (p->req.deadline_ms > 0.0 &&
        QueryTrace::span_ms(p->trace.enqueue, now()) > p->req.deadline_ms) {
      reply.status = QueryStatus::kDeadlineExpired;
      reply.error = "deadline passed before dispatch";
      finish(*p, std::move(reply));
      continue;
    }

    // Selection: caller override wins; otherwise the cost model, latched
    // per (graph, version, hint) so a graph's routing is stable until its
    // next mutation.
    std::string algo = p->req.algorithm;
    if (algo.empty()) {
      reply.selected = true;
      const PickKey pick_key{p->pick, graph_version, p->req.hint};
      bool latched = false;
      if (cfg_.sticky_picks) {
        std::lock_guard lk(mu_);
        const auto it = picks_.find(pick_key);
        if (it != picks_.end()) {
          algo = it->second;
          latched = true;
        }
      }
      try {
        if (latched) {
          for (auto& c : selector_.score(graph->stats, p->req.hint)) {
            if (c.algorithm == algo) {
              reply.modeled = c.cost;
              break;
            }
          }
        } else {
          Candidate c = selector_.choose(graph->stats, p->req.hint);
          algo = c.algorithm;
          reply.modeled = c.cost;
          if (cfg_.sticky_picks) {
            std::lock_guard lk(mu_);
            picks_.emplace(pick_key, algo);
          }
        }
      } catch (const std::exception& e) {
        reply.status = QueryStatus::kInvalidRequest;
        reply.error = e.what();
        finish(*p, std::move(reply));
        continue;
      }
    }
    reply.algorithm = algo;
    p->trace.select_done = now();

    p->trace.run_start = now();
    try {
      framework::RunOutcome out;
      bool cache_hit = false;
      if (cfg_.backend != nullptr) {
        ExecutionRequest er;
        er.key = p->pick;
        er.version = graph_version;
        er.hint = p->req.hint;
        er.algorithm = algo;
        er.modeled = reply.modeled;
        er.graph = graph;
        ExecutionOutcome eo = cfg_.backend->execute(er);
        out = std::move(eo.run);
        cache_hit = eo.cache_hit;
        reply.cache_hit = eo.cache_hit;
        reply.sharded = eo.sharded;
        reply.devices = eo.devices;
        reply.comm_ms = eo.comm_ms;
        reply.placement = eo.placement;
      } else {
        out = engine_.run(algo, graph);
      }
      p->trace.run_done = now();
      reply.triangles = out.result.triangles;
      reply.valid = out.valid;
      reply.stats = out.result.total;
      reply.status = QueryStatus::kOk;
      if (cfg_.refine && !cache_hit) {
        // A cache hit carries no fresh KernelStats; folding its synthetic
        // run back in would double-count the original observation.
        selector_.observe(algo, graph->stats, out.result.total);
      }
      if (from_stream) {
        std::lock_guard lk(mu_);
        ++counters_.stream_queries;
      }
    } catch (const std::out_of_range& e) {
      p->trace.run_done = now();
      reply.status = QueryStatus::kInvalidRequest;  // unknown forced kernel
      reply.error = e.what();
    } catch (const std::exception& e) {
      p->trace.run_done = now();
      reply.status = QueryStatus::kError;
      reply.error = e.what();
    }
    finish(*p, std::move(reply));
  }

  // One-shot graphs must not accumulate device images in the pool.
  if (inline_graph) engine_.release_device(inline_graph);
  if (pinned_graph) engine_.release_device(pinned_graph);
}

ServiceCounters QueryService::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

std::vector<std::pair<std::string, std::string>> QueryService::decision_table()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard lk(mu_);
  out.reserve(picks_.size());
  for (const auto& [key, algo] : picks_) {
    const auto& [name, version, hint] = key;
    std::string label = name;
    if (version != 0) {
      label += "@v";
      label += std::to_string(version);
    }
    if (hint != Hint::kAuto) {
      label += '@';
      label += to_string(hint);
    }
    out.emplace_back(std::move(label), algo);
  }
  return out;
}

std::uint64_t QueryService::dataset_version(const std::string& dataset) const {
  std::shared_ptr<StreamState> ss;
  {
    std::lock_guard lk(mu_);
    const auto it = streams_.find(dataset);
    if (it == streams_.end()) return 0;
    ss = it->second;
  }
  std::lock_guard slk(ss->m);
  return ss->dyn ? ss->dyn->version() : 0;
}

}  // namespace tcgpu::serve
