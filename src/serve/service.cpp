#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>

namespace tcgpu::serve {

namespace {

/// Content hash of an inline edge list — the batching/stickiness key for
/// queries that carry their graph with them. Deterministic across runs.
std::uint64_t edges_hash(const graph::Coo& coo) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ coo.num_vertices;
  for (const auto& [u, v] : coo.edges) {
    std::uint64_t x = (static_cast<std::uint64_t>(u) << 32) | v;
    x ^= h;
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    h = x * 0x94d049bb133111ebull;
  }
  return h;
}

QueryTrace::TimePoint now() { return QueryTrace::Clock::now(); }

}  // namespace

const char* to_string(QueryStatus s) {
  switch (s) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kRejected: return "rejected";
    case QueryStatus::kShutdown: return "shutdown";
    case QueryStatus::kDeadlineExpired: return "deadline-expired";
    case QueryStatus::kInvalidRequest: return "invalid-request";
    case QueryStatus::kError: return "error";
  }
  return "?";
}

/// One admitted query riding through the pipeline.
struct QueryService::Pending {
  QueryRequest req;
  std::string key;  ///< batching key: dataset name or inline content hash
  QueryTrace trace;
  std::promise<QueryReply> promise;
};

QueryService::QueryService(framework::Engine& engine, Config cfg)
    : QueryService(engine,
                   Selector::Config{engine.config().spec, cfg.refine}, cfg) {}

QueryService::QueryService(framework::Engine& engine,
                           Selector::Config selector_cfg, Config cfg)
    : engine_(engine),
      cfg_(cfg),
      selector_(std::move(selector_cfg)),
      queue_(cfg.queue_capacity, cfg.block_when_full) {
  const std::size_t workers = std::max<std::size_t>(1, cfg_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();  // workers drain the backlog, then exit
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::future<QueryReply> QueryService::submit(QueryRequest req) {
  auto pending = std::make_unique<Pending>();
  pending->req = std::move(req);
  pending->trace.enqueue = now();
  auto future = pending->promise.get_future();

  QueryReply early;
  early.dataset = pending->req.dataset.empty()
                      ? (pending->req.name.empty() ? "inline" : pending->req.name)
                      : pending->req.dataset;
  if (pending->req.dataset.empty() && pending->req.edges.edges.empty()) {
    early.status = QueryStatus::kInvalidRequest;
    early.error = "query names no dataset and carries no edges";
  } else if (queue_.closed()) {
    early.status = QueryStatus::kShutdown;
  } else {
    pending->key = pending->req.dataset.empty()
                       ? "inline:" + std::to_string(edges_hash(pending->req.edges))
                       : pending->req.dataset;
    if (queue_.push(std::move(pending))) {
      std::lock_guard lk(mu_);
      ++counters_.submitted;
      return future;
    }
    // push() consumes the unique_ptr only on success, so `pending` is still
    // whole here: either close() raced us or the queue is full in
    // non-blocking (load-shedding) mode.
    early.status = queue_.closed() ? QueryStatus::kShutdown : QueryStatus::kRejected;
  }

  // Terminal without admission: resolve the original promise immediately.
  {
    std::lock_guard lk(mu_);
    ++counters_.rejected;
    if (early.status == QueryStatus::kInvalidRequest) ++counters_.errors;
  }
  pending->trace.reply = now();
  early.trace = pending->trace;
  pending->promise.set_value(std::move(early));
  return future;
}

void QueryService::worker_loop() {
  while (auto item = queue_.pop()) {
    std::vector<std::unique_ptr<Pending>> batch;
    batch.push_back(std::move(*item));
    const std::string& key = batch.front()->key;
    if (cfg_.max_batch > 1) {
      auto more = queue_.take_matching(
          [&key](const std::unique_ptr<Pending>& p) { return p->key == key; },
          cfg_.max_batch - 1);
      for (auto& p : more) batch.push_back(std::move(p));
    }
    process_batch(std::move(batch));
  }
}

void QueryService::finish(Pending& p, QueryReply reply) {
  reply.trace = p.trace;
  reply.trace.reply = now();
  {
    std::lock_guard lk(mu_);
    ++counters_.served;
    if (reply.status == QueryStatus::kDeadlineExpired) ++counters_.expired;
    if (reply.status == QueryStatus::kInvalidRequest ||
        reply.status == QueryStatus::kError) {
      ++counters_.errors;
    }
  }
  p.promise.set_value(std::move(reply));
}

void QueryService::process_batch(std::vector<std::unique_ptr<Pending>> batch) {
  const auto admit = now();
  for (auto& p : batch) p->trace.admit = admit;
  {
    std::lock_guard lk(mu_);
    ++counters_.batches;
    counters_.batched += batch.size() - 1;
  }

  Pending& head = *batch.front();
  const bool is_inline = head.req.dataset.empty();
  const std::string label =
      is_inline ? (head.req.name.empty() ? "inline" : head.req.name)
                : head.req.dataset;

  // One prepare/upload for the whole batch. The engine caches dataset
  // prepares by key; inline graphs run the pipeline once here and share the
  // handle (and the device image) across the batch.
  framework::Engine::GraphHandle graph;
  const auto prepare_start = now();
  try {
    graph = is_inline ? engine_.prepare_raw(label, head.req.edges)
                      : engine_.prepare(head.req.dataset);
  } catch (const std::exception& e) {
    const auto prepare_done = now();
    for (auto& p : batch) {
      p->trace.prepare_start = prepare_start;
      p->trace.prepare_done = prepare_done;
      QueryReply reply;
      reply.dataset = label;
      reply.status = QueryStatus::kInvalidRequest;
      reply.error = e.what();
      finish(*p, std::move(reply));
    }
    return;
  }
  const auto prepare_done = now();

  for (auto& p : batch) {
    p->trace.prepare_start = prepare_start;
    p->trace.prepare_done = prepare_done;

    QueryReply reply;
    reply.dataset = label;

    if (p->req.deadline_ms > 0.0 &&
        QueryTrace::span_ms(p->trace.enqueue, now()) > p->req.deadline_ms) {
      reply.status = QueryStatus::kDeadlineExpired;
      reply.error = "deadline passed before dispatch";
      finish(*p, std::move(reply));
      continue;
    }

    // Selection: caller override wins; otherwise the cost model, latched
    // per (graph, hint) so a graph's routing is stable for the process.
    std::string algo = p->req.algorithm;
    if (algo.empty()) {
      reply.selected = true;
      const std::pair<std::string, Hint> pick_key{p->key, p->req.hint};
      bool latched = false;
      if (cfg_.sticky_picks) {
        std::lock_guard lk(mu_);
        const auto it = picks_.find(pick_key);
        if (it != picks_.end()) {
          algo = it->second;
          latched = true;
        }
      }
      try {
        if (latched) {
          for (auto& c : selector_.score(graph->stats, p->req.hint)) {
            if (c.algorithm == algo) {
              reply.modeled = c.cost;
              break;
            }
          }
        } else {
          Candidate c = selector_.choose(graph->stats, p->req.hint);
          algo = c.algorithm;
          reply.modeled = c.cost;
          if (cfg_.sticky_picks) {
            std::lock_guard lk(mu_);
            picks_.emplace(pick_key, algo);
          }
        }
      } catch (const std::exception& e) {
        reply.status = QueryStatus::kInvalidRequest;
        reply.error = e.what();
        finish(*p, std::move(reply));
        continue;
      }
    }
    reply.algorithm = algo;
    p->trace.select_done = now();

    p->trace.run_start = now();
    try {
      framework::RunOutcome out = engine_.run(algo, graph);
      p->trace.run_done = now();
      reply.triangles = out.result.triangles;
      reply.valid = out.valid;
      reply.stats = out.result.total;
      reply.status = QueryStatus::kOk;
      if (cfg_.refine) {
        selector_.observe(algo, graph->stats, out.result.total);
      }
    } catch (const std::out_of_range& e) {
      p->trace.run_done = now();
      reply.status = QueryStatus::kInvalidRequest;  // unknown forced kernel
      reply.error = e.what();
    } catch (const std::exception& e) {
      p->trace.run_done = now();
      reply.status = QueryStatus::kError;
      reply.error = e.what();
    }
    finish(*p, std::move(reply));
  }

  // One-shot graphs must not accumulate device images in the pool.
  if (is_inline) engine_.release_device(graph);
}

ServiceCounters QueryService::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

std::vector<std::pair<std::string, std::string>> QueryService::decision_table()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard lk(mu_);
  out.reserve(picks_.size());
  for (const auto& [key, algo] : picks_) {
    std::string label = key.first;
    if (key.second != Hint::kAuto) {
      label += "@" + std::string(to_string(key.second));
    }
    out.emplace_back(std::move(label), algo);
  }
  return out;
}

}  // namespace tcgpu::serve
