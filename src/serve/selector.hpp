// serve::Selector — cost-model-driven algorithm selection.
//
// The paper's core result is that no single ITC kernel wins everywhere, and
// that the per-graph winner is predicted by three factors: total work, warp
// workload imbalance, and memory-access pattern (§V). The selector turns
// that observation into the serving layer's front door: every registered
// algorithm is scored a priori from graph::GraphStats alone — no kernel is
// run to make the choice — and the query is dispatched to the argmin.
//
// The model, per algorithm:
//
//   modeled_ms = calibration
//              * spec.parallel_cycles_to_ms((work * mem)^alpha * skew^beta)
//              + spec.launch_overhead_ms(launches)
//
//   work  — intersection-method-specific operation count built from the
//           DAG stats (Σ d_out² is the wedge-count driver; merge adds the
//           partner-list scan, binary search the log factor, bitmaps the
//           build/clear term).
//   mem   — memory-access-pattern factor: hash kernels degrade as table
//           load (≈ avg out-degree / hash_load) grows and probes chain
//           through scattered sectors — this is what hands the densest
//           graphs back to merge/bitmap kernels; bitmap kernels pay 4× once
//           one bit per vertex no longer fits a block's shared memory.
//   alpha — sub-linear work exponent (< 1): caches and latency hiding
//           absorb part of the operation count; fit per algorithm.
//   skew^beta — warp-imbalance penalty: out-degree skew (max/avg) stalls
//           kernels whose unit of work is one whole adjacency list
//           (thread-per-edge Polak beta≈0.5) and barely touches
//           bucket-balanced ones (TRUST beta≈0.1).
//   launches — fixed per-kernel driver cost (Fox's degree bins pay it
//           several times).
//
// The per-algorithm (calibration, alpha, beta, hash_load) constants were
// fit against the simulator's measured kernel times over the pinned
// 19-dataset suite at the default edge cap (bench/selector_fit reports the
// residuals and regenerates the calibration column). An online refinement
// pass folds every completed run's measured KernelStats back in as an
// exact per-(algorithm, graph identity) correction: repeated queries of a
// graph score against what the kernel actually cost there, while scores
// for unseen graphs stay on the fitted constants — one noisy residual
// never perturbs the whole calibration, and the folded state is
// order-independent for a fixed workload set.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "graph/stats.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"

namespace tcgpu::serve {

/// Query-time preference. kAccuracy excludes algorithms with known failure
/// modes (the paper reports H-INDEX mis-counting on large high-degree
/// graphs); kLatency and kAuto score the full registry.
enum class Hint { kAuto, kLatency, kAccuracy };

const char* to_string(Hint h);

/// The paper's three factors, as modeled for one (algorithm, graph) pair.
struct CostBreakdown {
  double work = 0.0;        ///< intersection operation count (pre-exponent)
  double imbalance = 1.0;   ///< skew^beta warp-imbalance penalty
  double mem_factor = 1.0;  ///< memory-access-pattern multiplier (>= 1)
  double launch_ms = 0.0;   ///< fixed launch-overhead term
  double modeled_ms = 0.0;  ///< total score (lower is better)
};

struct Candidate {
  std::string algorithm;
  CostBreakdown cost;
};

/// Modeled cost of applying one mutation batch to a served graph: commit the
/// incremental delta kernel (work ∝ batch size) vs recounting the whole
/// post-commit graph with a full kernel (work ∝ graph size). The serving
/// layer dispatches whichever side is cheaper; the constants are calibrated
/// so the crossover lands where bench/stream_churn measures it (As-Caida
/// flips to recount around batch 1024).
struct MutationCost {
  double delta_ms = 0.0;    ///< incremental delta-kernel commit
  double recount_ms = 0.0;  ///< full-kernel recount of the new snapshot
  bool use_delta = true;    ///< delta_ms <= recount_ms
};

/// Modeled cost of one fleet placement: run the chosen kernel across
/// `devices` shards. kernel_ms is the slowest shard (the work split is
/// even, so 1/devices of the work through the sub-linear model), comm_ms
/// the ghost scatter plus count all-reduce on the modeled interconnect.
/// hosts > 1 means the placement spills across host boundaries and part of
/// the ghost traffic was priced on the cluster's inter-host link.
struct PlacementCost {
  std::uint32_t devices = 1;
  std::uint32_t hosts = 1;
  double kernel_ms = 0.0;
  double comm_ms = 0.0;
  double total_ms = 0.0;
};

/// Static per-algorithm model parameters (see the file comment). Work names
/// one intersection family from tc/intersect/: the first four are the
/// paper's Table I strategies; the last three cover the library kernels
/// whose access patterns none of the original four shapes fit —
///   kMergePath      — per-edge diagonal partition, merge work plus a
///                     log-cost split per lane, imbalance-free by design
///   kBlockedBitmap  — merge over 32x-compressed (base, word) rows, so
///                     effective list length shrinks as density grows
///   kLinearAlgebra  — masked row-times-row products with a staged shared
///                     cache, Hu-shaped but edge-dominated
///   kCompressedMerge — merge over varint delta streams: merge work plus an
///                     ALU decode surcharge that grows with the gap width
///                     (≈ log(V / d_avg) bits per neighbor), serial per
///                     thread, so skew bites hard
///   kCompressedStage — the staged variant: anchor row decoded once into
///                     shared by a single lane, partner streams decoded on
///                     the fly; same decode surcharge, milder imbalance
struct AlgoModel {
  std::string name;
  enum class Work {
    kMerge,
    kBinarySearch,
    kHash,
    kBitmap,
    kMergePath,
    kBlockedBitmap,
    kLinearAlgebra,
    kCompressedMerge,
    kCompressedStage,
  } work;
  double launches = 1.0;       ///< kernel launches per run (fixed cost)
  double work_exponent = 1.0;  ///< alpha: sub-linear work scaling
  double imb_exponent = 0.0;   ///< beta: imbalance = skew^beta
  /// Hash kernels only: table load factor scale for the collision term
  /// mem = 1 + avg_out_degree / hash_load. 0 disables the term.
  double hash_load = 0.0;
  double calibration = 1.0;    ///< fit: measured vs shaped model (v100 suite)
  bool fragile = false;        ///< excluded under Hint::kAccuracy
};

class Selector {
 public:
  struct Config {
    simt::GpuSpec spec = simt::GpuSpec::v100();
    bool refine = true;  ///< fold measured KernelStats into calibration
  };

  /// Scores the fourteen-kernel selection pool (default_models()).
  Selector() : Selector(Config{}) {}
  explicit Selector(Config cfg);
  /// Custom universe (tests, restricted deployments).
  Selector(std::vector<AlgoModel> models, Config cfg);

  /// Scores every registered algorithm for this graph, ascending by
  /// modeled_ms (front = the choice). Never empty for a non-empty universe.
  std::vector<Candidate> score(const graph::GraphStats& stats,
                               Hint hint = Hint::kAuto) const;

  /// The front door: argmin of score(). Throws std::logic_error when the
  /// hint filters out every registered algorithm.
  Candidate choose(const graph::GraphStats& stats, Hint hint = Hint::kAuto) const;

  /// Online refinement: folds one completed run's measured stats back in.
  /// Ratios are keyed by (algorithm, graph identity derived from stats), so
  /// repeated queries of one graph count once and the folded state is
  /// independent of completion order.
  void observe(const std::string& algorithm, const graph::GraphStats& stats,
               const simt::KernelStats& measured);

  /// Effective refinement multiplier for scoring this graph: the exact
  /// measured/modeled ratio once the (algorithm, graph) pair has been
  /// observed, 1.0 before (unseen graphs ride the fitted calibration).
  double refinement(const std::string& algorithm,
                    const graph::GraphStats& stats) const;

  /// Number of distinct (algorithm, graph) observations folded so far.
  std::size_t observations() const;

  /// Models delta-commit vs full-kernel recount for a `batch_ops`-operation
  /// mutation batch against a graph with these stats (see MutationCost).
  MutationCost mutation_cost(const graph::GraphStats& stats,
                             std::size_t batch_ops) const;

  /// Models running `algorithm` split across `devices` even shards over the
  /// given interconnect, starting from its single-device CostBreakdown.
  /// devices == 1 returns the single-device cost with zero comm.
  PlacementCost sharded_cost(const std::string& algorithm,
                             const CostBreakdown& single, std::uint32_t devices,
                             const graph::GraphStats& stats,
                             const simt::InterconnectSpec& net) const;

  /// Two-level variant: the same split across `devices` shards, but on a
  /// hosts x devices-per-host cluster. Devices fill hosts in contiguous
  /// blocks, so a placement that fits one host (devices <= per-host count)
  /// prices *identically* to the flat overload on the intra link; wider
  /// placements pay the cluster's inter-host link for the ghost share and
  /// all-reduce hops that cross a host boundary. Throws when the placement
  /// needs more hosts than the cluster has.
  PlacementCost sharded_cost(const std::string& algorithm,
                             const CostBreakdown& single, std::uint32_t devices,
                             const graph::GraphStats& stats,
                             const simt::ClusterSpec& cluster) const;

  /// Drops every folded observation for this graph identity (all
  /// algorithms). The serve layer calls it when a streamed graph's version
  /// bumps: the old ratios describe a graph that no longer exists, and the
  /// next choice must re-score from the updated GraphStats alone. Returns
  /// how many observations were dropped.
  std::size_t forget(const graph::GraphStats& stats);

  const std::vector<AlgoModel>& models() const { return models_; }
  const Config& config() const { return cfg_; }

  /// The selection pool — the paper's nine algorithms plus the five
  /// tc/intersect/ library kernels (framework::pool_algorithms()) — with
  /// the fitted v100 calibration table.
  static std::vector<AlgoModel> default_models();

 private:
  double raw_model_ms(const AlgoModel& m, const graph::GraphStats& stats,
                      CostBreakdown* out) const;

  Config cfg_;
  std::vector<AlgoModel> models_;

  mutable std::mutex mu_;  ///< guards observed_
  /// (algorithm, graph identity) -> log(measured/modeled); refinement for a
  /// graph is exp() of its own entry, clamped — exact, never cross-graph.
  std::map<std::pair<std::string, std::uint64_t>, double> observed_;
};

}  // namespace tcgpu::serve
