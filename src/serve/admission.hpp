// Admission control for the query service: a bounded MPMC queue with
// backpressure and batch extraction.
//
// Backpressure is the admission policy: when the queue is full, push()
// either blocks the producer (closed-loop clients slow down to the
// service's pace) or rejects immediately (open-loop callers shed load
// instead of growing an unbounded backlog). take_matching() is the batching
// hook — a worker that dequeued one query drains every other queued query
// on the same graph so the whole batch shares one prepare/upload.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace tcgpu::serve {

struct AdmissionCounters {
  std::uint64_t admitted = 0;       ///< pushes that entered the queue
  std::uint64_t rejected_full = 0;  ///< non-blocking pushes refused (full)
  std::uint64_t rejected_closed = 0;///< pushes after close()
  std::uint64_t dequeued = 0;       ///< items handed to workers
  std::uint64_t blocked_pushes = 0; ///< pushes that had to wait for space
};

template <class T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1. `block_when_full` selects the backpressure
  /// mode: true = push() waits for space, false = push() returns false.
  explicit BoundedQueue(std::size_t capacity, bool block_when_full = true)
      : capacity_(capacity == 0 ? 1 : capacity), blocking_(block_when_full) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues one item. Returns false when the queue is closed, or when it
  /// is full in non-blocking mode (the item is dropped back to the caller
  /// via the move — check the return value).
  bool push(T&& item) {
    std::unique_lock lk(mu_);
    if (closed_) {
      ++counters_.rejected_closed;
      return false;
    }
    if (items_.size() >= capacity_) {
      if (!blocking_) {
        ++counters_.rejected_full;
        return false;
      }
      ++counters_.blocked_pushes;
      not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        ++counters_.rejected_closed;
        return false;
      }
    }
    items_.push_back(std::move(item));
    ++counters_.admitted;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues the oldest item; blocks while the queue is open and empty.
  /// Returns nullopt once the queue is closed *and* drained — workers use
  /// that as their shutdown signal, so no admitted query is dropped.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    ++counters_.dequeued;
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Extracts (in FIFO order) up to `max` queued items satisfying `pred` —
  /// batch formation. Does not block; returns what is queued right now.
  template <class Pred>
  std::vector<T> take_matching(Pred&& pred, std::size_t max) {
    std::vector<T> taken;
    {
      std::lock_guard lk(mu_);
      for (auto it = items_.begin(); it != items_.end() && taken.size() < max;) {
        if (pred(*it)) {
          taken.push_back(std::move(*it));
          it = items_.erase(it);
          ++counters_.dequeued;
        } else {
          ++it;
        }
      }
    }
    if (!taken.empty()) not_full_.notify_all();
    return taken;
  }

  /// Stops admission. Queued items remain poppable; blocked producers wake
  /// and see their push rejected.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  AdmissionCounters counters() const {
    std::lock_guard lk(mu_);
    return counters_;
  }

 private:
  const std::size_t capacity_;
  const bool blocking_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  AdmissionCounters counters_;
};

}  // namespace tcgpu::serve
