#include "serve/selector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simt/interconnect.hpp"

namespace tcgpu::serve {

namespace {

/// Mutation-cost constants, calibrated against bench/stream_churn on the
/// v100 preset: per-op delta staging cost (normalize, overlay, wedge-stage
/// both endpoints' rows, amortized COW segment rebuild) and the recount-side
/// scale on the merge-family full-kernel work. Their ratio pins the
/// delta-vs-recount crossover — As-Caida at the default cap flips near
/// batch 1024, matching the measured churn curves.
constexpr double kDeltaOpCost = 38.0;
constexpr double kRecountCost = 1.0;

/// Graph identity for refinement keys: a splitmix64 mix of the stats fields
/// that pin a prepared graph. Deterministic across runs and platforms.
std::uint64_t graph_identity(const graph::GraphStats& s) {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h += 0xbf58476d1ce4e5b9ull;
    h ^= h >> 31;
    return h * 0x94d049bb133111ebull;
  };
  std::uint64_t h = 0x2545f4914f6cdd1dull;
  h = mix(h, static_cast<std::uint64_t>(s.num_vertices));
  h = mix(h, s.num_undirected_edges);
  h = mix(h, s.sum_out_degree_sq);
  h = mix(h, static_cast<std::uint64_t>(s.max_out_degree));
  return h;
}

double log2_safe(double v) { return std::log2(std::max(2.0, v)); }

}  // namespace

const char* to_string(Hint h) {
  switch (h) {
    case Hint::kAuto: return "auto";
    case Hint::kLatency: return "latency";
    case Hint::kAccuracy: return "accuracy";
  }
  return "?";
}

std::vector<AlgoModel> Selector::default_models() {
  using W = AlgoModel::Work;
  // Pool order: framework::pool_algorithms() — the paper's nine (Table I
  // order) followed by the five tc/intersect/ library kernels.
  // (work_exponent, imb_exponent, hash_load, calibration) are fit against
  // the simulator's measured kernel times on the 19-dataset suite at the
  // default edge cap — bench/selector_fit reports the residuals and
  // regenerates the calibration column. Launch counts are the measured
  // per-run launches (Fox re-launches per degree bin; everything else is a
  // single kernel).
  std::vector<AlgoModel> models = {
      {"Green", W::kMerge, /*launches=*/1, /*alpha=*/0.725, /*beta=*/0.1,
       /*hash_load=*/0.0, /*calibration=*/184.70, /*fragile=*/false},
      {"Polak", W::kMerge, 1, 0.800, 0.5, 0.0, 17.88, false},
      {"Bisson", W::kBitmap, 1, 0.650, 0.6, 0.0, 230.41, false},
      {"TriCore", W::kBinarySearch, 1, 0.475, 0.0, 0.0, 6658.1, false},
      {"Fox", W::kBinarySearch, 4, 0.675, 0.4, 0.0, 108.65, false},
      {"Hu", W::kBinarySearch, 1, 0.400, -0.3, 0.0, 41483.5, false},
      {"H-INDEX", W::kHash, 1, 0.800, 0.1, 0.0, 168.80, /*fragile=*/true},
      {"TRUST", W::kHash, 1, 0.500, 0.1, 24.0, 3082.7, false},
      {"GroupTC", W::kBinarySearch, 1, 0.600, 0.4, 0.0, 359.01, false},
      {"MergePath", W::kMergePath, 1, 0.800, 0.0, 0.0, 18.62, false},
      {"BSR", W::kBlockedBitmap, 1, 0.650, 0.1, 0.0, 361.81, false},
      {"BFS-LA", W::kLinearAlgebra, 1, 0.500, -0.2, 0.0, 7176.9, false},
      // The compressed-CSR decoders trade bandwidth for ALU decode work;
      // on graphs whose raw image fits the device they lose to their raw
      // counterparts by design (the calibrations encode the decode + serial
      // penalty), and the serving layer only routes to them when the raw
      // image exceeds the device budget — a capacity decision made before
      // scoring, not a latency win the model could discover.
      {"CMerge", W::kCompressedMerge, 1, 0.800, 0.8, 0.0, 290.0, false},
      {"CStage", W::kCompressedStage, 1, 0.800, 0.3, 0.0, 410.0, false},
  };
  return models;
}

Selector::Selector(Config cfg) : Selector(default_models(), std::move(cfg)) {}

Selector::Selector(std::vector<AlgoModel> models, Config cfg)
    : cfg_(std::move(cfg)), models_(std::move(models)) {}

double Selector::raw_model_ms(const AlgoModel& m, const graph::GraphStats& stats,
                              CostBreakdown* out) const {
  const double n = static_cast<double>(stats.num_vertices);
  const double edges = static_cast<double>(stats.num_undirected_edges);
  const double davg = stats.avg_out_degree;
  const double s2 = static_cast<double>(stats.sum_out_degree_sq);
  const double skew = std::max(1.0, stats.out_degree_skew);

  // Total work: intersection operations implied by the method (§II-B).
  // Σ d_out² is the wedge count every method pays at least once.
  double work = 0.0;
  double mem = 1.0;
  switch (m.work) {
    case AlgoModel::Work::kMerge:
      work = s2 + edges * davg;  // scan both endpoint lists per edge
      break;
    case AlgoModel::Work::kBinarySearch:
      work = s2 * log2_safe(davg);  // log probes per candidate
      break;
    case AlgoModel::Work::kHash:
      work = s2 + 2.0 * edges;  // build tables once, probe per wedge
      // Memory-access pattern: hash probes chain through scattered sectors
      // as the table load factor grows with density — this is what hands
      // the densest graphs back to the merge/bitmap kernels.
      if (m.hash_load > 0.0) mem = 1.0 + davg / m.hash_load;
      break;
    case AlgoModel::Work::kBitmap:
      work = s2 + 2.0 * edges + n;  // set/clear bits + probes
      // The shared->global bitmap cliff (ablation_bisson): once one bit per
      // vertex no longer fits the block's shared memory, every probe goes
      // to scattered global sectors.
      if (n > static_cast<double>(cfg_.spec.shared_mem_per_block) * 8.0) {
        mem *= 4.0;
      }
      break;
    case AlgoModel::Work::kMergePath:
      // Merge work plus the per-lane diagonal split: every edge pays 2x32
      // binary searches of log(list length) probes before the balanced
      // windows merge. The windows themselves make skew irrelevant (beta=0)
      // but the split overhead is what keeps the kernel behind Polak.
      work = s2 + edges * davg + 64.0 * edges * log2_safe(davg);
      break;
    case AlgoModel::Work::kBlockedBitmap:
      // Merge over BSR-compressed rows: each occupied 32-vertex block is
      // one (base, word) pair, so the effective list length — and with it
      // the whole merge term — shrinks as neighborhoods densify. The /8
      // scale (not /32) reflects partial block occupancy on the suite.
      work = (s2 + edges * davg) / std::min(32.0, 1.0 + davg / 8.0) +
             2.0 * edges;
      break;
    case AlgoModel::Work::kLinearAlgebra:
      // Masked row-times-row products: every directed edge (u, v) merges
      // N+(v) against the staged N+(u), an edge-dominated variant of the
      // merge shape with block-cooperative latency hiding (beta < 0, like
      // Hu's shared-cache staging).
      work = s2 + edges * davg;
      break;
    case AlgoModel::Work::kCompressedMerge:
    case AlgoModel::Work::kCompressedStage: {
      // Merge work over varint streams: the anchor row is re-decoded per
      // partner (CMerge) or staged once (CStage) — either way the work
      // shape stays merge-family. The mem factor is the decode surcharge:
      // the average gap in a sorted row is ~V/d_avg, so each neighbor costs
      // ceil(log2(gap)/7) stream bytes and one ALU op per byte on top of
      // the comparison. Bandwidth drops ~4x, which matters only when the
      // raw image doesn't fit — the simulated latency model sees just the
      // extra compute.
      work = s2 + edges * davg;
      const double gap_bits = log2_safe(n / std::max(1.0, davg));
      mem = 1.0 + std::ceil(gap_bits / 7.0) / 4.0;
      break;
    }
  }

  // Warp workload imbalance: skew in the out-degree distribution stalls
  // kernels whose unit of work is one whole adjacency list.
  const double imbalance = std::pow(skew, m.imb_exponent);

  const double launch_ms = cfg_.spec.launch_overhead_ms(m.launches);
  const double work_ms =
      m.calibration * cfg_.spec.parallel_cycles_to_ms(
                          std::pow(work * mem, m.work_exponent) * imbalance);
  if (out != nullptr) {
    out->work = work;
    out->imbalance = imbalance;
    out->mem_factor = mem;
    out->launch_ms = launch_ms;
    out->modeled_ms = work_ms + launch_ms;
  }
  return work_ms + launch_ms;
}

std::vector<Candidate> Selector::score(const graph::GraphStats& stats,
                                       Hint hint) const {
  std::vector<Candidate> out;
  out.reserve(models_.size());
  for (const auto& m : models_) {
    if (hint == Hint::kAccuracy && m.fragile) continue;
    Candidate c;
    c.algorithm = m.name;
    raw_model_ms(m, stats, &c.cost);
    const double refine = refinement(m.name, stats);
    c.cost.modeled_ms = (c.cost.modeled_ms - c.cost.launch_ms) * refine +
                        c.cost.launch_ms;
    out.push_back(std::move(c));
  }
  std::stable_sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    return a.cost.modeled_ms < b.cost.modeled_ms;
  });
  return out;
}

Candidate Selector::choose(const graph::GraphStats& stats, Hint hint) const {
  auto ranked = score(stats, hint);
  if (ranked.empty()) {
    throw std::logic_error("Selector::choose: no algorithm admissible");
  }
  return std::move(ranked.front());
}

void Selector::observe(const std::string& algorithm,
                       const graph::GraphStats& stats,
                       const simt::KernelStats& measured) {
  if (!cfg_.refine) return;
  const AlgoModel* model = nullptr;
  for (const auto& m : models_) {
    if (m.name == algorithm) {
      model = &m;
      break;
    }
  }
  if (model == nullptr) return;  // outside the registered universe

  CostBreakdown cost;
  raw_model_ms(*model, stats, &cost);
  const double modeled_work_ms = cost.modeled_ms - cost.launch_ms;
  const double measured_work_ms = measured.time_ms - cost.launch_ms;
  if (modeled_work_ms <= 0.0 || measured_work_ms <= 0.0) return;
  const double ratio =
      std::clamp(measured_work_ms / modeled_work_ms, 1.0 / 16.0, 16.0);
  std::lock_guard lk(mu_);
  observed_[{algorithm, graph_identity(stats)}] = std::log(ratio);
}

double Selector::refinement(const std::string& algorithm,
                            const graph::GraphStats& stats) const {
  // Exact per-(algorithm, graph) correction only: a residual measured on
  // one graph never perturbs the scores of another — cross-graph
  // generalization is the fitted calibration's job (bench/selector_fit).
  std::lock_guard lk(mu_);
  const auto it = observed_.find({algorithm, graph_identity(stats)});
  if (it == observed_.end()) return 1.0;
  return std::clamp(std::exp(it->second), 0.25, 4.0);
}

std::size_t Selector::observations() const {
  std::lock_guard lk(mu_);
  return observed_.size();
}

MutationCost Selector::mutation_cost(const graph::GraphStats& stats,
                                     std::size_t batch_ops) const {
  const double davg = std::max(1.0, stats.avg_out_degree);
  const double edges = static_cast<double>(stats.num_undirected_edges);
  const double s2 = static_cast<double>(stats.sum_out_degree_sq);
  // Delta path: each op stages the wedges incident to its endpoints (two
  // adjacency scans of ~d_avg) plus the fixed per-op staging overhead the
  // calibration folds in. Linear in the batch.
  const double delta_work = static_cast<double>(batch_ops) * kDeltaOpCost *
                            2.0 * (davg + 1.0);
  // Recount path: one merge-family full kernel over the post-commit graph —
  // the shape the selector would typically dispatch — independent of the
  // batch size.
  const double recount_work = kRecountCost * (s2 + edges * davg);
  MutationCost mc;
  mc.delta_ms = cfg_.spec.parallel_cycles_to_ms(delta_work) +
                cfg_.spec.launch_overhead_ms(1);
  mc.recount_ms = cfg_.spec.parallel_cycles_to_ms(recount_work) +
                  cfg_.spec.launch_overhead_ms(1);
  mc.use_delta = mc.delta_ms <= mc.recount_ms;
  return mc;
}

PlacementCost Selector::sharded_cost(const std::string& algorithm,
                                     const CostBreakdown& single,
                                     std::uint32_t devices,
                                     const graph::GraphStats& stats,
                                     const simt::InterconnectSpec& net) const {
  PlacementCost pc;
  pc.devices = std::max(1u, devices);
  if (pc.devices == 1) {
    pc.kernel_ms = single.modeled_ms;
    pc.total_ms = single.modeled_ms;
    return pc;
  }
  // An even 1/k work split shrinks the modeled kernel term by k^alpha (the
  // model is sub-linear in work, so sharding never reaches ideal 1/k), and
  // every shard still pays its own launch.
  double alpha = 0.7;
  for (const auto& m : models_) {
    if (m.name == algorithm) {
      alpha = m.work_exponent;
      break;
    }
  }
  const double k = static_cast<double>(pc.devices);
  const double work_ms = std::max(0.0, single.modeled_ms - single.launch_ms);
  pc.kernel_ms = work_ms / std::pow(k, alpha) + single.launch_ms;
  // Comm: each shard must receive the ghost adjacency rows it does not own,
  // as one message per contributing peer, then the per-device counts
  // all-reduce. dist::Partitioner's measured replication factor sits near 2
  // on the paper graphs — a shard imports roughly its own 4-byte-per-edge
  // share of the CSR image again — so ghost traffic is modeled as E/k
  // entries per device, not the full (k-1)/k remainder.
  const auto ghost_per_dev = static_cast<std::uint64_t>(
      4.0 * static_cast<double>(stats.num_undirected_edges) / k);
  const simt::Interconnect link(net, pc.devices);
  const std::vector<std::uint64_t> bytes(pc.devices, ghost_per_dev);
  const std::vector<std::uint64_t> msgs(pc.devices, pc.devices - 1);
  pc.comm_ms = link.scatter(bytes, msgs).time_ms +
               link.all_reduce(sizeof(std::uint64_t)).time_ms;
  pc.total_ms = pc.kernel_ms + pc.comm_ms;
  return pc;
}

PlacementCost Selector::sharded_cost(const std::string& algorithm,
                                     const CostBreakdown& single,
                                     std::uint32_t devices,
                                     const graph::GraphStats& stats,
                                     const simt::ClusterSpec& cluster) const {
  if (cluster.hosts == 0 || cluster.host.devices == 0) {
    throw std::invalid_argument(
        "Selector::sharded_cost: cluster must have >= 1 host with >= 1 device");
  }
  const std::uint32_t k = std::max(1u, devices);
  const std::uint32_t per_host = cluster.host.devices;
  const std::uint32_t hosts_used = (k + per_host - 1) / per_host;
  if (hosts_used <= 1) {
    // Fits one host: exactly the flat model on the intra link, so placements
    // that never cross a host boundary price identically to the pre-cluster
    // selector (and the fleet's pinned single-host tables stay valid).
    return sharded_cost(algorithm, single, devices, stats, cluster.host.intra);
  }
  if (hosts_used > cluster.hosts) {
    throw std::invalid_argument(
        "Selector::sharded_cost: placement needs " +
        std::to_string(hosts_used) + " hosts but the cluster has " +
        std::to_string(cluster.hosts));
  }

  PlacementCost pc;
  pc.devices = k;
  pc.hosts = hosts_used;
  double alpha = 0.7;
  for (const auto& m : models_) {
    if (m.name == algorithm) {
      alpha = m.work_exponent;
      break;
    }
  }
  const double kd = static_cast<double>(k);
  const double work_ms = std::max(0.0, single.modeled_ms - single.launch_ms);
  pc.kernel_ms = work_ms / std::pow(kd, alpha) + single.launch_ms;

  // Same E/k-entry ghost volume per shard as the flat model, split by where
  // the peers sit: a device on a full host has per_host - 1 intra peers and
  // k - per_host peers behind the network, bytes proportional to the peer
  // counts (conservative — the host-aware partitioner skews ghosts intra),
  // one aggregated message per peer. Every shard receives in parallel, so
  // one device's serialized intra + inter receive is the scatter time.
  const double ghost_per_dev =
      4.0 * static_cast<double>(stats.num_undirected_edges) / kd;
  const double intra_peers = static_cast<double>(per_host - 1);
  const double inter_peers = static_cast<double>(k - per_host);
  const double total_peers = std::max(1.0, intra_peers + inter_peers);
  const auto level_ms = [&](const simt::InterconnectSpec& l, double peers) {
    const double bytes = ghost_per_dev * peers / total_peers;
    return peers * l.latency_us * 1e-3 +
           bytes / (l.peer_bandwidth_gbps * 1e9) * 1e3;
  };
  const double scatter_ms = level_ms(cluster.host.intra, intra_peers) +
                            level_ms(cluster.inter, inter_peers);
  // Hierarchical count all-reduce: reduce + broadcast trees within a host,
  // one recursive-doubling exchange among the host leaders.
  const auto tree_steps = [](std::uint32_t nodes) {
    std::uint32_t s = 0;
    for (std::uint32_t span = 1; span < nodes; span <<= 1) ++s;
    return s;
  };
  const double reduce_ms =
      2.0 * tree_steps(std::min(per_host, k)) *
          cluster.host.intra.transfer_ms(sizeof(std::uint64_t)) +
      tree_steps(hosts_used) * cluster.inter.transfer_ms(sizeof(std::uint64_t));
  pc.comm_ms = scatter_ms + reduce_ms;
  pc.total_ms = pc.kernel_ms + pc.comm_ms;
  return pc;
}

std::size_t Selector::forget(const graph::GraphStats& stats) {
  const std::uint64_t id = graph_identity(stats);
  std::lock_guard lk(mu_);
  std::size_t dropped = 0;
  for (auto it = observed_.begin(); it != observed_.end();) {
    if (it->first.second == id) {
      it = observed_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace tcgpu::serve
