// serve::QueryService — the concurrent triangle-count front door.
//
// Queries (a registry dataset name, or an inline edge list) enter a bounded
// admission queue (backpressure: block or shed), workers batch queued
// queries on the same graph into one prepare/upload, the Selector's cost
// model picks the kernel per query (unless the query forces one), and the
// Engine executes against its pooled device image. Every reply carries the
// exact count, the chosen algorithm with its modeled cost, the run's
// KernelStats, and a per-query trace (enqueue → admit → prepare → select →
// run → reply).
//
// Long-running processes stay bounded: the Engine's prepared-graph cache is
// LRU-capped (Engine::Config::max_resident / Engine::evict), and device
// images of one-shot inline graphs are released after their batch.
//
// Mutations (DESIGN.md "Streaming & versioning"): a request may carry edge
// inserts/removals for a named dataset. The first mutation moves the
// dataset onto a stream::DynamicGraph; the batch commits as one delta
// (inserts first, then removals) and bumps the dataset's version. A version
// bump invalidates every stale layer — the Engine's cached prepares of the
// dataset, the old snapshot's pooled device image, the Selector's folded
// refinement for the old stats, and the sticky picks latched below the new
// version. Count queries on a streamed dataset answer from the current
// snapshot's materialized DAG (re-uploaded once per version, never
// re-prepared from scratch).
//
// Determinism contract: for a fixed workload set, selector decisions and
// counts are reproducible. Decisions are latched per (graph, version, hint)
// on first choice — version-keyed, so a latch cannot outlive a mutation —
// and refinement state is keyed by (algorithm, graph), so neither depends
// on which worker finished first; a serial warmup (one query per distinct
// graph, fixed order — what bench/serve_throughput does) pins the whole
// decision table.
#pragma once

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "framework/engine.hpp"
#include "graph/coo.hpp"
#include "graph/types.hpp"
#include "serve/admission.hpp"
#include "serve/backend.hpp"
#include "serve/selector.hpp"
#include "serve/trace.hpp"

namespace tcgpu::serve {

enum class QueryStatus {
  kOk,               ///< count computed and validated
  kRejected,         ///< admission queue full (non-blocking mode)
  kShutdown,         ///< service no longer accepting queries
  kDeadlineExpired,  ///< deadline passed before the kernel could start
  kInvalidRequest,   ///< unknown dataset/algorithm name, empty request
  kError,            ///< execution failed (kernel fault, ...)
};

const char* to_string(QueryStatus s);

struct QueryRequest {
  /// Either a paper-registry dataset name...
  std::string dataset;
  /// ...or an inline edge list (used when `dataset` is empty). `name` labels
  /// replies/traces; batching keys on the edge list's content hash.
  graph::Coo edges;
  std::string name;  ///< label for inline queries (default "inline")

  /// Force a specific kernel by registry name; empty = selector decides.
  std::string algorithm;
  Hint hint = Hint::kAuto;
  /// Drop the query (kDeadlineExpired) if the kernel has not started this
  /// many ms after submission; 0 = no deadline.
  double deadline_ms = 0.0;

  /// Pin the query to a past snapshot of a streamed dataset (time-travel
  /// read): 0 = the head version. Non-zero requires a dataset that has
  /// mutated and a version still inside the snapshot history window
  /// (kInvalidRequest otherwise); mutations and inline graphs cannot pin.
  std::uint64_t version = 0;
  /// Fair-queueing identity for the fleet scheduler; the plain service
  /// carries it through to the reply untouched. Empty = default tenant.
  std::string tenant;

  /// Mutation payload: applied to the named dataset as one batch (inserts
  /// first, then removals), bumping its version. Endpoints are in the
  /// served (relabeled) id space. Requires `dataset`; inline graphs cannot
  /// mutate (kInvalidRequest).
  std::vector<graph::Edge> insert_edges;
  std::vector<graph::Edge> remove_edges;
  bool is_mutation() const {
    return !insert_edges.empty() || !remove_edges.empty();
  }
};

struct QueryReply {
  QueryStatus status = QueryStatus::kError;
  std::string error;  ///< set for kInvalidRequest/kError

  std::string dataset;    ///< graph label
  std::string algorithm;  ///< kernel that ran (chosen or forced)
  bool selected = false;  ///< true when the selector (not the caller) chose
  CostBreakdown modeled;  ///< selector's score for the chosen kernel

  std::uint64_t triangles = 0;
  bool valid = false;  ///< count matched the CPU reference
  simt::KernelStats stats;
  QueryTrace trace;

  /// Graph version the reply reflects (0 until the dataset first mutates).
  std::uint64_t version = 0;
  /// Mutation replies: triangle-count change this batch produced.
  std::int64_t delta_triangles = 0;

  // Execution-backend (fleet) annotations; defaults describe the direct
  // single-device engine path.
  bool cache_hit = false;        ///< answered from the backend's result cache
  bool sharded = false;          ///< kernel ran split across devices
  std::uint32_t devices = 1;     ///< shard count (1 = single device)
  double comm_ms = 0.0;          ///< modeled interconnect time (sharded only)
  std::string placement;         ///< placer's decision label (fleet only)
  std::string tenant;            ///< echoed from the request
};

struct ServiceCounters {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< refused at admission (full/shutdown)
  std::uint64_t served = 0;     ///< replies delivered (any terminal status)
  std::uint64_t expired = 0;    ///< kDeadlineExpired replies
  std::uint64_t errors = 0;     ///< kInvalidRequest + kError replies
  std::uint64_t batches = 0;    ///< prepare/upload groups executed
  std::uint64_t batched = 0;    ///< queries that rode an existing batch
  std::uint64_t mutations = 0;  ///< mutation batches committed (kOk)
  std::uint64_t stream_queries = 0;  ///< counts answered from a snapshot
};

class QueryService {
 public:
  struct Config {
    std::size_t workers = 2;         ///< dispatcher threads
    std::size_t queue_capacity = 64; ///< admission bound
    /// true: submit() blocks when the queue is full (closed-loop clients);
    /// false: submit() resolves immediately with kRejected (load shedding).
    bool block_when_full = true;
    std::size_t max_batch = 32;  ///< same-graph queries fused per batch
    bool refine = true;          ///< selector online refinement
    /// Latch the selector's decision per (graph, version, hint) on first
    /// choice; latches below the current version are pruned on mutation.
    bool sticky_picks = true;
    /// Snapshot history depth per streamed dataset (DynamicGraph::Config).
    std::size_t snapshots = 4;
    /// Model delta-commit vs full recount per mutation batch
    /// (Selector::mutation_cost) and commit with the cheaper mode; false
    /// always takes the delta path (the pre-model behavior).
    bool mutation_model = true;
    /// Execution backend; nullptr = direct Engine::run (bit-identical to the
    /// pre-fleet single-device path). Borrowed; must outlive the service.
    ExecutionBackend* backend = nullptr;
  };

  /// Borrows the engine (graph cache, device pool, validation); the engine
  /// must outlive the service. Algorithm universe = selector's models.
  explicit QueryService(framework::Engine& engine) : QueryService(engine, Config{}) {}
  QueryService(framework::Engine& engine, Config cfg);
  QueryService(framework::Engine& engine, Selector::Config selector_cfg,
               Config cfg);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one query. The returned future resolves with a terminal reply
  /// (kOk, or a non-ok status — never abandoned). Applies the configured
  /// backpressure mode when the queue is full.
  std::future<QueryReply> submit(QueryRequest req);

  /// Stops admission, drains queued queries, joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  ServiceCounters counters() const;
  const Selector& selector() const { return selector_; }
  framework::Engine& engine() { return engine_; }
  const Config& config() const { return cfg_; }

  /// The latched (graph key, version, hint) -> algorithm decision table,
  /// sorted by key — what bench/serve_throughput prints and CI pins.
  /// Version-0 entries print as the bare key (the pinned static picks);
  /// later versions as "key@vN", and non-auto hints append "@hint".
  std::vector<std::pair<std::string, std::string>> decision_table() const;

  /// Current version of a streamed dataset (0 if it never mutated).
  std::uint64_t dataset_version(const std::string& dataset) const;

 private:
  struct Pending;      ///< one queued query: request + trace + promise
  struct StreamState;  ///< per-dataset DynamicGraph + materialized handle

  void worker_loop();
  void process_batch(std::vector<std::unique_ptr<Pending>> batch);
  void finish(Pending& p, QueryReply reply);
  void handle_mutation(Pending& p, const std::string& label);
  std::shared_ptr<StreamState> stream_state(const std::string& dataset,
                                            bool create);
  framework::Engine::GraphHandle stream_handle(StreamState& ss,
                                               const std::string& dataset,
                                               std::uint64_t* version);

  framework::Engine& engine_;
  Config cfg_;
  Selector selector_;

  BoundedQueue<std::unique_ptr<Pending>> queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex mu_;  ///< guards picks_, streams_ shape, counters_, stopped_
  using PickKey = std::tuple<std::string, std::uint64_t, Hint>;
  std::map<PickKey, std::string> picks_;
  std::map<std::string, std::shared_ptr<StreamState>> streams_;
  ServiceCounters counters_;
  bool stopped_ = false;
};

}  // namespace tcgpu::serve
