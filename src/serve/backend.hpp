// serve::ExecutionBackend — the seam between query admission and kernel
// execution.
//
// QueryService resolves a query to (graph handle, chosen algorithm) and then
// hands execution to a backend. The default (Config::backend == nullptr) is
// a direct Engine::run — exactly the pre-fleet behavior. fleet::Fleet plugs
// in here to add placement (single device vs sharded across the modeled
// interconnect), per-device residency accounting, and a versioned result
// cache, without the admission/batching/selection layers knowing any of it.
//
// Contract: execute() is called from service worker threads concurrently and
// must be thread-safe. It either returns a terminal outcome or throws (the
// service maps exceptions to kError). invalidate(key) is called after every
// committed mutation of `key` — whatever the backend cached for any version
// of that graph must not be served again.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "framework/runner.hpp"
#include "serve/selector.hpp"

namespace tcgpu::serve {

/// One resolved query, ready to execute.
struct ExecutionRequest {
  /// Stable graph identity: dataset name, or "inline:<hash>" for inline
  /// queries. Together with `version` it keys result caching and placement.
  std::string key;
  std::uint64_t version = 0;  ///< graph version (0 = never mutated)
  Hint hint = Hint::kAuto;
  std::string algorithm;  ///< kernel to run (selector's or caller's choice)
  /// The selector's single-device score for `algorithm` on this graph —
  /// placement decisions start from it instead of re-scoring.
  CostBreakdown modeled;
  std::shared_ptr<const framework::PreparedGraph> graph;
};

struct ExecutionOutcome {
  framework::RunOutcome run;
  bool cache_hit = false;  ///< served from the result cache; run is synthetic
  bool sharded = false;
  std::uint32_t devices = 1;     ///< shards the kernel ran across
  double comm_ms = 0.0;          ///< modeled interconnect time (sharded only)
  std::string placement = "single";  ///< placer's decision label
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;
  virtual ExecutionOutcome execute(const ExecutionRequest& req) = 0;
  /// Drop every cached result for any version of this graph key.
  virtual void invalidate(const std::string& key) = 0;
};

}  // namespace tcgpu::serve
