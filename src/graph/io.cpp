#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tcgpu::graph {
namespace {

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) io_fail(path, "cannot open for reading");
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) io_fail(path, "cannot open for writing");
  return out;
}

template <class T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) io_fail(path, "truncated file");
  return v;
}

constexpr std::uint32_t kEdgeListMagic = 0x42474354;  // "TCGB"
constexpr std::uint32_t kCsrMagic = 0x52534354;       // "TCSR"

}  // namespace

Coo read_text_edge_list(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  Coo g;
  VertexId max_id = 0;
  bool any = false;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      io_fail(path, "malformed edge at line " + std::to_string(lineno));
    }
    if (u > 0xFFFFFFFFull || v > 0xFFFFFFFFull) {
      io_fail(path, "vertex id exceeds 32 bits at line " + std::to_string(lineno));
    }
    g.edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    max_id = std::max({max_id, static_cast<VertexId>(u), static_cast<VertexId>(v)});
    any = true;
  }
  g.num_vertices = any ? max_id + 1 : 0;
  return g;
}

void write_text_edge_list(const std::string& path, const Coo& g) {
  auto out = open_out(path, std::ios::out);
  out << "# tcgpu edge list: " << g.num_vertices << " vertices, "
      << g.edges.size() << " edges\n";
  for (const auto& [u, v] : g.edges) out << u << ' ' << v << '\n';
  if (!out) io_fail(path, "write failed");
}

Coo read_binary_edge_list(const std::string& path) {
  auto in = open_in(path, std::ios::binary);
  if (read_pod<std::uint32_t>(in, path) != kEdgeListMagic) {
    io_fail(path, "not a TCGB binary edge list");
  }
  const auto version = read_pod<std::uint32_t>(in, path);
  if (version != 1) io_fail(path, "unsupported TCGB version");
  Coo g;
  g.num_vertices = read_pod<std::uint32_t>(in, path);
  const auto count = read_pod<std::uint64_t>(in, path);
  g.edges.resize(count);
  in.read(reinterpret_cast<char*>(g.edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) io_fail(path, "truncated edge data");
  return g;
}

void write_binary_edge_list(const std::string& path, const Coo& g) {
  static_assert(sizeof(Edge) == 8, "Edge must pack to two u32");
  auto out = open_out(path, std::ios::binary);
  write_pod(out, kEdgeListMagic);
  write_pod(out, std::uint32_t{1});
  write_pod(out, g.num_vertices);
  write_pod(out, static_cast<std::uint64_t>(g.edges.size()));
  out.write(reinterpret_cast<const char*>(g.edges.data()),
            static_cast<std::streamsize>(g.edges.size() * sizeof(Edge)));
  if (!out) io_fail(path, "write failed");
}

Csr read_binary_csr(const std::string& path) {
  auto in = open_in(path, std::ios::binary);
  if (read_pod<std::uint32_t>(in, path) != kCsrMagic) {
    io_fail(path, "not a TCSR binary image");
  }
  const auto num_vertices = read_pod<std::uint32_t>(in, path);
  const auto num_edges = read_pod<std::uint64_t>(in, path);
  std::vector<EdgeIndex> row_ptr(static_cast<std::size_t>(num_vertices) + 1);
  std::vector<VertexId> col(num_edges);
  in.read(reinterpret_cast<char*>(row_ptr.data()),
          static_cast<std::streamsize>(row_ptr.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(col.size() * sizeof(VertexId)));
  if (!in) io_fail(path, "truncated CSR data");
  return Csr(std::move(row_ptr), std::move(col));
}

void write_binary_csr(const std::string& path, const Csr& g) {
  auto out = open_out(path, std::ios::binary);
  write_pod(out, kCsrMagic);
  write_pod(out, g.num_vertices());
  write_pod(out, static_cast<std::uint64_t>(g.num_edges()));
  out.write(reinterpret_cast<const char*>(g.row_ptr().data()),
            static_cast<std::streamsize>(g.row_ptr().size() * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.col().data()),
            static_cast<std::streamsize>(g.col().size() * sizeof(VertexId)));
  if (!out) io_fail(path, "write failed");
}

Coo read_matrix_market(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    io_fail(path, "missing MatrixMarket banner");
  }
  if (line.find("coordinate") == std::string::npos) {
    io_fail(path, "only coordinate format is supported");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hdr(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(hdr >> rows >> cols >> nnz)) io_fail(path, "malformed size line");
  Coo g;
  g.num_vertices = static_cast<VertexId>(std::max(rows, cols));
  g.edges.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) io_fail(path, "truncated entry list");
    std::istringstream es(line);
    std::uint64_t r = 0, c = 0;
    if (!(es >> r >> c) || r == 0 || c == 0 || r > rows || c > cols) {
      io_fail(path, "malformed entry at nnz index " + std::to_string(i));
    }
    g.edges.emplace_back(static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1));
  }
  return g;
}

void write_matrix_market(const std::string& path, const Coo& g) {
  auto out = open_out(path, std::ios::out);
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << g.num_vertices << ' ' << g.num_vertices << ' ' << g.edges.size() << '\n';
  for (const auto& [u, v] : g.edges) out << (u + 1) << ' ' << (v + 1) << '\n';
  if (!out) io_fail(path, "write failed");
}

}  // namespace tcgpu::graph
