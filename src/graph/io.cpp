#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#define TCGPU_IO_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace tcgpu::graph {
namespace {

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error(path + ": " + what);
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) io_fail(path, "cannot open for reading");
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) io_fail(path, "cannot open for writing");
  return out;
}

template <class T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) io_fail(path, "truncated file");
  return v;
}

constexpr std::uint32_t kEdgeListMagic = 0x42474354;  // "TCGB"
constexpr std::uint32_t kCsrMagic = 0x52534354;       // "TCSR"

/// Read-only view of a whole file: mmap where the platform has it (the
/// kernel pages the bytes in on demand, so peak RSS tracks the parser's
/// working set, not the file size), a plain buffered read elsewhere.
class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
#ifdef TCGPU_IO_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) io_fail(path, "cannot open for reading");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      io_fail(path, "cannot open for reading");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
      void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (p == MAP_FAILED) {
        ::close(fd);
        io_fail(path, "cannot map file");
      }
      map_ = p;
    }
    ::close(fd);
#else
    auto in = open_in(path, std::ios::binary | std::ios::ate);
    size_ = static_cast<std::size_t>(in.tellg());
    fallback_.resize(size_);
    in.seekg(0);
    in.read(fallback_.data(), static_cast<std::streamsize>(size_));
    if (!in && size_ > 0) io_fail(path, "cannot open for reading");
#endif
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  ~MappedFile() {
#ifdef TCGPU_IO_HAS_MMAP
    if (map_ != nullptr) ::munmap(map_, size_);
#endif
  }

  const char* data() const {
#ifdef TCGPU_IO_HAS_MMAP
    return static_cast<const char*>(map_);
#else
    return fallback_.data();
#endif
  }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
#ifdef TCGPU_IO_HAS_MMAP
  void* map_ = nullptr;
#else
  std::vector<char> fallback_;
#endif
};

/// First error a parser chunk hit; the merged report keeps the earliest
/// line so the message matches what a serial scan would have said.
struct ParseError {
  std::uint64_t line = 0;
  const char* what = nullptr;  // nullptr = no error
};

constexpr const char* kMalformedEdge = "malformed edge at line ";
constexpr const char* kHugeVertexId = "vertex id exceeds 32 bits at line ";

/// Parses one text line (already CR-stripped) as "u v [ignored...]".
/// Returns false on a malformed line; out-of-range ids report through
/// `err_huge`. Trailing fields are tolerated (weighted SNAP dumps).
bool parse_edge_line(const char* p, const char* end, std::uint64_t& u,
                     std::uint64_t& v, bool& huge) {
  auto skip_ws = [&] {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  };
  auto number = [&](std::uint64_t& out) {
    skip_ws();
    if (p >= end || *p < '0' || *p > '9') return false;
    std::uint64_t val = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
      if (val > (0xFFFFFFFFFFFFFFFFull - digit) / 10) return false;
      val = val * 10 + digit;
      ++p;
    }
    // A number must end the field: "12x" is malformed, "12 " / "12\0" fine.
    if (p < end && *p != ' ' && *p != '\t') return false;
    out = val;
    return true;
  };
  if (!number(u) || !number(v)) return false;
  huge = u > 0xFFFFFFFFull || v > 0xFFFFFFFFull;
  return true;
}

}  // namespace

Coo read_text_edge_list(const std::string& path) {
  const MappedFile file(path);
  const char* buf = file.data();
  const std::size_t n = file.size();

  // Chunk boundaries: even byte splits snapped forward to the next newline,
  // so every line belongs to exactly one chunk.
  int chunks = 1;
#ifdef _OPENMP
  chunks = static_cast<int>(std::clamp<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(omp_get_max_threads()),
                            n / (1u << 20)),
      1, 256));
#endif
  std::vector<std::size_t> begin(chunks + 1, n);
  begin[0] = 0;
  for (int c = 1; c < chunks; ++c) {
    std::size_t pos = n / chunks * static_cast<std::size_t>(c);
    pos = std::max(pos, begin[c - 1]);
    while (pos < n && buf[pos] != '\n') ++pos;
    begin[c] = pos < n ? pos + 1 : n;
  }

  // Pass 1: line counts per chunk -> global line number bases.
  std::vector<std::uint64_t> line_base(chunks + 1, 0);
#pragma omp parallel for schedule(static)
  for (int c = 0; c < chunks; ++c) {
    std::uint64_t lines = 0;
    for (std::size_t i = begin[c]; i < begin[c + 1]; ++i) {
      lines += buf[i] == '\n';
    }
    // The last chunk may end with an unterminated final line.
    if (c == chunks - 1 && begin[c + 1] > begin[c] &&
        buf[begin[c + 1] - 1] != '\n') {
      ++lines;
    }
    line_base[c + 1] = lines;
  }
  for (int c = 0; c < chunks; ++c) line_base[c + 1] += line_base[c];

  // Pass 2: parse each chunk into its own edge vector.
  std::vector<std::vector<Edge>> parts(chunks);
  std::vector<VertexId> part_max(chunks, 0);
  std::vector<ParseError> errors(chunks);
#pragma omp parallel for schedule(static)
  for (int c = 0; c < chunks; ++c) {
    auto& out = parts[c];
    VertexId max_id = 0;
    std::uint64_t lineno = line_base[c];
    std::size_t p = begin[c];
    const std::size_t lim = begin[c + 1];
    while (p < lim) {
      std::size_t q = p;
      while (q < lim && buf[q] != '\n') ++q;
      std::size_t e = q;
      if (e > p && buf[e - 1] == '\r') --e;  // CRLF dumps
      ++lineno;
      if (e > p && buf[p] != '#' && buf[p] != '%') {
        std::uint64_t u = 0, v = 0;
        bool huge = false;
        if (!parse_edge_line(buf + p, buf + e, u, v, huge)) {
          errors[c] = {lineno, kMalformedEdge};
          break;
        }
        if (huge) {
          errors[c] = {lineno, kHugeVertexId};
          break;
        }
        out.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
        max_id = std::max({max_id, static_cast<VertexId>(u),
                           static_cast<VertexId>(v)});
      }
      p = q + 1;
    }
    part_max[c] = max_id;
  }

  // Report the earliest failure, exactly as a serial scan would have.
  const ParseError* first = nullptr;
  for (const auto& e : errors) {
    if (e.what != nullptr && (first == nullptr || e.line < first->line)) {
      first = &e;
    }
  }
  if (first != nullptr) {
    io_fail(path, first->what + std::to_string(first->line));
  }

  Coo g;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  g.edges.resize(total);
  std::vector<std::size_t> offset(chunks + 1, 0);
  for (int c = 0; c < chunks; ++c) offset[c + 1] = offset[c] + parts[c].size();
#pragma omp parallel for schedule(static)
  for (int c = 0; c < chunks; ++c) {
    std::copy(parts[c].begin(), parts[c].end(), g.edges.begin() + offset[c]);
  }
  VertexId max_id = 0;
  for (int c = 0; c < chunks; ++c) max_id = std::max(max_id, part_max[c]);
  g.num_vertices = total > 0 ? max_id + 1 : 0;
  return g;
}

void write_text_edge_list(const std::string& path, const Coo& g) {
  auto out = open_out(path, std::ios::out);
  out << "# tcgpu edge list: " << g.num_vertices << " vertices, "
      << g.edges.size() << " edges\n";
  for (const auto& [u, v] : g.edges) out << u << ' ' << v << '\n';
  if (!out) io_fail(path, "write failed");
}

Coo read_binary_edge_list(const std::string& path) {
  auto in = open_in(path, std::ios::binary);
  if (read_pod<std::uint32_t>(in, path) != kEdgeListMagic) {
    io_fail(path, "not a TCGB binary edge list");
  }
  const auto version = read_pod<std::uint32_t>(in, path);
  if (version != 1) io_fail(path, "unsupported TCGB version");
  Coo g;
  g.num_vertices = read_pod<std::uint32_t>(in, path);
  const auto count = read_pod<std::uint64_t>(in, path);
  g.edges.resize(count);
  in.read(reinterpret_cast<char*>(g.edges.data()),
          static_cast<std::streamsize>(count * sizeof(Edge)));
  if (!in) io_fail(path, "truncated edge data");
  return g;
}

void write_binary_edge_list(const std::string& path, const Coo& g) {
  static_assert(sizeof(Edge) == 8, "Edge must pack to two u32");
  auto out = open_out(path, std::ios::binary);
  write_pod(out, kEdgeListMagic);
  write_pod(out, std::uint32_t{1});
  write_pod(out, g.num_vertices);
  write_pod(out, static_cast<std::uint64_t>(g.edges.size()));
  out.write(reinterpret_cast<const char*>(g.edges.data()),
            static_cast<std::streamsize>(g.edges.size() * sizeof(Edge)));
  if (!out) io_fail(path, "write failed");
}

Csr read_binary_csr(const std::string& path) {
  auto in = open_in(path, std::ios::binary);
  if (read_pod<std::uint32_t>(in, path) != kCsrMagic) {
    io_fail(path, "not a TCSR binary image");
  }
  const auto num_vertices = read_pod<std::uint32_t>(in, path);
  const auto num_edges = read_pod<std::uint64_t>(in, path);
  std::vector<EdgeIndex> row_ptr(static_cast<std::size_t>(num_vertices) + 1);
  std::vector<VertexId> col(num_edges);
  in.read(reinterpret_cast<char*>(row_ptr.data()),
          static_cast<std::streamsize>(row_ptr.size() * sizeof(EdgeIndex)));
  in.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(col.size() * sizeof(VertexId)));
  if (!in) io_fail(path, "truncated CSR data");
  return Csr(std::move(row_ptr), std::move(col));
}

void write_binary_csr(const std::string& path, const Csr& g) {
  auto out = open_out(path, std::ios::binary);
  write_pod(out, kCsrMagic);
  write_pod(out, g.num_vertices());
  write_pod(out, static_cast<std::uint64_t>(g.num_edges()));
  out.write(reinterpret_cast<const char*>(g.row_ptr().data()),
            static_cast<std::streamsize>(g.row_ptr().size() * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.col().data()),
            static_cast<std::streamsize>(g.col().size() * sizeof(VertexId)));
  if (!out) io_fail(path, "write failed");
}

Coo read_matrix_market(const std::string& path) {
  auto in = open_in(path, std::ios::in);
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    io_fail(path, "missing MatrixMarket banner");
  }
  if (line.find("coordinate") == std::string::npos) {
    io_fail(path, "only coordinate format is supported");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hdr(line);
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  if (!(hdr >> rows >> cols >> nnz)) io_fail(path, "malformed size line");
  Coo g;
  g.num_vertices = static_cast<VertexId>(std::max(rows, cols));
  g.edges.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) io_fail(path, "truncated entry list");
    std::istringstream es(line);
    std::uint64_t r = 0, c = 0;
    if (!(es >> r >> c) || r == 0 || c == 0 || r > rows || c > cols) {
      io_fail(path, "malformed entry at nnz index " + std::to_string(i));
    }
    g.edges.emplace_back(static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1));
  }
  return g;
}

void write_matrix_market(const std::string& path, const Coo& g) {
  auto out = open_out(path, std::ios::out);
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << g.num_vertices << ' ' << g.num_vertices << ' ' << g.edges.size() << '\n';
  for (const auto& [u, v] : g.edges) out << (u + 1) << ' ' << (v + 1) << '\n';
  if (!out) io_fail(path, "write failed");
}

// --- streamed loading -------------------------------------------------------

EdgeCount EdgeSource::skip(EdgeCount n) {
  Edge buf[4096];
  EdgeCount done = 0;
  while (done < n) {
    const auto want = static_cast<std::size_t>(
        std::min<EdgeCount>(static_cast<EdgeCount>(std::size(buf)), n - done));
    const std::size_t got = next(std::span<Edge>(buf, want));
    if (got == 0) break;
    done += static_cast<EdgeCount>(got);
  }
  return done;
}

struct BinaryEdgeListSource::Impl {
  std::ifstream in;
  std::string path;
  VertexId num_vertices = 0;
  EdgeCount total = 0;
  EdgeCount consumed = 0;
};

BinaryEdgeListSource::BinaryEdgeListSource(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->in = open_in(path, std::ios::binary);
  if (read_pod<std::uint32_t>(impl_->in, path) != kEdgeListMagic) {
    io_fail(path, "not a TCGB binary edge list");
  }
  if (read_pod<std::uint32_t>(impl_->in, path) != 1) {
    io_fail(path, "unsupported TCGB version");
  }
  impl_->num_vertices = read_pod<std::uint32_t>(impl_->in, path);
  impl_->total =
      static_cast<EdgeCount>(read_pod<std::uint64_t>(impl_->in, path));
}

BinaryEdgeListSource::~BinaryEdgeListSource() = default;

VertexId BinaryEdgeListSource::num_vertices() const {
  return impl_->num_vertices;
}
EdgeCount BinaryEdgeListSource::num_edges() const { return impl_->total; }

std::size_t BinaryEdgeListSource::next(std::span<Edge> out) {
  const auto left = impl_->total - impl_->consumed;
  const auto want = static_cast<std::size_t>(
      std::min<EdgeCount>(static_cast<EdgeCount>(out.size()), left));
  if (want == 0) return 0;
  impl_->in.read(reinterpret_cast<char*>(out.data()),
                 static_cast<std::streamsize>(want * sizeof(Edge)));
  if (!impl_->in) io_fail(impl_->path, "truncated edge data");
  impl_->consumed += static_cast<EdgeCount>(want);
  return want;
}

EdgeCount BinaryEdgeListSource::skip(EdgeCount n) {
  const auto hop = std::min(n, impl_->total - impl_->consumed);
  if (hop <= 0) return 0;
  impl_->in.seekg(hop * static_cast<EdgeCount>(sizeof(Edge)), std::ios::cur);
  if (!impl_->in) io_fail(impl_->path, "truncated edge data");
  impl_->consumed += hop;
  return hop;
}

StreamLoadResult load_edge_stream(EdgeSource& src, std::size_t max_edges,
                                  std::uint64_t seed) {
  StreamLoadResult r;
  auto& edges = r.graph.edges;

  // Fill phase: load verbatim until the cap (or the stream) runs out.
  Edge buf[8192];
  while (edges.size() < max_edges) {
    const std::size_t want =
        std::min(std::size(buf), max_edges - edges.size());
    const std::size_t got = src.next(std::span<Edge>(buf, want));
    if (got == 0) break;
    edges.insert(edges.end(), buf, buf + got);
    r.edges_seen += static_cast<EdgeCount>(got);
  }

  if (edges.size() == max_edges && max_edges > 0) {
    // Reservoir phase — Vitter's Algorithm L: geometric gaps between
    // replacements, jumped over via skip() so seekable sources never read
    // the discarded range. Every surviving prefix is a uniform sample.
    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    auto u01 = [&] {  // uniform in (0, 1): log() below must never see 0
      return (static_cast<double>(rng() >> 11) + 0.5) * 0x1.0p-53;
    };
    const double k = static_cast<double>(max_edges);
    double w = std::exp(std::log(u01()) / k);
    while (true) {
      const double gap = std::floor(std::log(u01()) / std::log1p(-w));
      const auto hop = static_cast<EdgeCount>(
          std::min(gap, 9.0e18));  // guard the double->int cast
      const EdgeCount skipped = src.skip(hop);
      r.edges_seen += skipped;
      if (skipped < hop) break;  // stream ended inside the gap
      Edge e;
      if (src.next(std::span<Edge>(&e, 1)) == 0) break;
      ++r.edges_seen;
      r.downsampled = true;
      edges[rng() % max_edges] = e;
      w *= std::exp(std::log(u01()) / k);
    }
  }

  VertexId max_id = 0;
  for (const auto& [u, v] : edges) max_id = std::max({max_id, u, v});
  r.graph.num_vertices = edges.empty() ? 0 : max_id + 1;
  return r;
}

}  // namespace tcgpu::graph
