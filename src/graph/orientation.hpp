// DAG orientation (§II-B "Pre-processing").
//
// Every intersection-based counter here runs on an *oriented* graph: each
// undirected edge is kept once, directed from the lower-ranked endpoint to
// the higher-ranked one, and vertices are relabeled so rank == id. This
// yields the "u < v for every edge (u,v)" format GroupTC's first
// optimization assumes, counts every triangle exactly once, and (under
// degree ranking) bounds out-degrees on power-law graphs — the standard
// trick all eight published implementations rely on.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace tcgpu::graph {

enum class OrientationPolicy {
  kByDegree,  ///< rank by (degree asc, id asc) — the default everywhere
  kById,      ///< keep original id order
  kRandom,    ///< random permutation (seeded)
  kByCore,    ///< rank by (k-core number asc, degree asc) — §II-B's
              ///< "k-coreness" preprocessing; tightest out-degree bound
};

/// Core number of every vertex (standard O(E) bucket peeling), exposed for
/// the k-core orientation and for tests.
std::vector<EdgeIndex> core_numbers(const Csr& undirected);

const char* to_string(OrientationPolicy p);

struct OrientedGraph {
  Csr dag;                            ///< oriented CSR, u < v for every edge
  std::vector<VertexId> new_to_old;   ///< relabeling map (size = V)
};

/// Orients a simple undirected graph (symmetric CSR from the builder).
OrientedGraph orient(const Csr& undirected, OrientationPolicy policy,
                     std::uint64_t seed = 0);

}  // namespace tcgpu::graph
