#include "graph/coo.hpp"

namespace tcgpu::graph {}
