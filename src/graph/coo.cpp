#include "graph/coo.hpp"

namespace tcgpu::graph {

// Raw (pre-dedup) edge lists legitimately exceed 2^31 entries — billion-edge
// inputs stream through here before the builders' explicit 32-bit checks
// fire — so every raw edge count must flow through the 64-bit EdgeCount.
// Guard the container's own indexing: a 32-bit size_t platform would
// silently truncate `edges.size()` long before those checks run.
static_assert(sizeof(std::size_t) >= sizeof(EdgeCount),
              "Coo indexing must be 64-bit; raw edge lists exceed 2^31 edges");

}  // namespace tcgpu::graph
