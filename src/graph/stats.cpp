#include "graph/stats.hpp"

#include <algorithm>

namespace tcgpu::graph {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_undirected_edges = g.num_edges() / 2;
  if (s.num_vertices == 0) return s;

  std::vector<EdgeIndex> degrees(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());
  s.max_degree = degrees.back();
  s.median_degree = degrees[degrees.size() / 2];
  s.p99_degree = degrees[static_cast<std::size_t>(
      static_cast<double>(degrees.size() - 1) * 0.99)];
  s.avg_degree =
      static_cast<double>(g.num_edges()) / static_cast<double>(s.num_vertices);
  return s;
}

void fold_dag_stats(const Csr& dag, GraphStats& s) {
  const VertexId n = dag.num_vertices();
  if (n == 0) return;
  std::vector<EdgeIndex> out(n);
  std::uint64_t sq = 0;
  for (VertexId u = 0; u < n; ++u) {
    const EdgeIndex d = dag.degree(u);
    out[u] = d;
    sq += static_cast<std::uint64_t>(d) * d;
  }
  std::sort(out.begin(), out.end());
  s.max_out_degree = out.back();
  s.p99_out_degree = out[static_cast<std::size_t>(
      static_cast<double>(out.size() - 1) * 0.99)];
  s.avg_out_degree = static_cast<double>(dag.num_edges()) / static_cast<double>(n);
  s.sum_out_degree_sq = sq;
  s.out_degree_skew = s.avg_out_degree > 0.0
                          ? static_cast<double>(s.max_out_degree) / s.avg_out_degree
                          : 0.0;
}

std::vector<std::uint64_t> degree_histogram(const Csr& g) {
  EdgeIndex max_d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) max_d = std::max(max_d, g.degree(v));
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) hist[g.degree(v)]++;
  return hist;
}

}  // namespace tcgpu::graph
