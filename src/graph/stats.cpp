#include "graph/stats.hpp"

#include <algorithm>

namespace tcgpu::graph {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_undirected_edges = g.num_edges() / 2;
  if (s.num_vertices == 0) return s;

  std::vector<EdgeIndex> degrees(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) degrees[v] = g.degree(v);
  std::sort(degrees.begin(), degrees.end());
  s.max_degree = degrees.back();
  s.median_degree = degrees[degrees.size() / 2];
  s.p99_degree = degrees[static_cast<std::size_t>(
      static_cast<double>(degrees.size() - 1) * 0.99)];
  s.avg_degree =
      static_cast<double>(g.num_edges()) / static_cast<double>(s.num_vertices);
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Csr& g) {
  EdgeIndex max_d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) max_d = std::max(max_d, g.degree(v));
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) hist[g.degree(v)]++;
  return hist;
}

}  // namespace tcgpu::graph
