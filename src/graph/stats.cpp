#include "graph/stats.hpp"

#include <algorithm>

namespace tcgpu::graph {

namespace {

/// Largest degree with a nonzero histogram count (0 for an empty graph).
EdgeIndex hist_max(const std::vector<std::uint64_t>& hist) {
  for (std::size_t d = hist.size(); d-- > 0;) {
    if (hist[d] != 0) return static_cast<EdgeIndex>(d);
  }
  return 0;
}

/// Value at `idx` of the (conceptual) ascending sorted degree array — the
/// exact element a sort-then-index implementation would read, so the
/// histogram and sorted-array stats paths agree bit for bit.
EdgeIndex hist_quantile(const std::vector<std::uint64_t>& hist, std::uint64_t idx) {
  std::uint64_t cum = 0;
  for (std::size_t d = 0; d < hist.size(); ++d) {
    cum += hist[d];
    if (cum > idx) return static_cast<EdgeIndex>(d);
  }
  return hist_max(hist);
}

/// Index of the 99th percentile in an ascending array of `size` elements —
/// shared so every stats path uses the same truncation.
std::uint64_t p99_index(std::uint64_t size) {
  return static_cast<std::uint64_t>(static_cast<double>(size - 1) * 0.99);
}

std::vector<std::uint64_t> histogram_of(const std::vector<EdgeIndex>& degrees) {
  EdgeIndex max_d = 0;
  for (const EdgeIndex d : degrees) max_d = std::max(max_d, d);
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (const EdgeIndex d : degrees) hist[d]++;
  return hist;
}

}  // namespace

GraphStats stats_from_degree_histogram(VertexId num_vertices,
                                       std::uint64_t num_directed_edges,
                                       const std::vector<std::uint64_t>& hist) {
  GraphStats s;
  s.num_vertices = num_vertices;
  s.num_undirected_edges = num_directed_edges / 2;
  if (num_vertices == 0) return s;
  s.max_degree = hist_max(hist);
  s.median_degree = hist_quantile(hist, num_vertices / 2);
  s.p99_degree = hist_quantile(hist, p99_index(num_vertices));
  s.avg_degree = static_cast<double>(num_directed_edges) /
                 static_cast<double>(num_vertices);
  return s;
}

GraphStats compute_stats(const Csr& g) {
  std::vector<EdgeIndex> degrees(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) degrees[v] = g.degree(v);
  return stats_from_degree_histogram(g.num_vertices(), g.num_edges(),
                                     histogram_of(degrees));
}

void fold_dag_stats_from_histogram(VertexId num_vertices,
                                   std::uint64_t num_dag_edges,
                                   std::uint64_t sum_out_degree_sq,
                                   const std::vector<std::uint64_t>& out_hist,
                                   GraphStats& s) {
  const VertexId n = num_vertices;
  if (n == 0) return;
  s.max_out_degree = hist_max(out_hist);
  s.p99_out_degree = hist_quantile(out_hist, p99_index(n));
  s.avg_out_degree =
      static_cast<double>(num_dag_edges) / static_cast<double>(n);
  s.sum_out_degree_sq = sum_out_degree_sq;
  s.out_degree_skew = s.avg_out_degree > 0.0
                          ? static_cast<double>(s.max_out_degree) / s.avg_out_degree
                          : 0.0;
}

void fold_dag_stats(const Csr& dag, GraphStats& s) {
  const VertexId n = dag.num_vertices();
  if (n == 0) return;
  std::vector<EdgeIndex> out(n);
  std::uint64_t sq = 0;
  for (VertexId u = 0; u < n; ++u) {
    const EdgeIndex d = dag.degree(u);
    out[u] = d;
    sq += static_cast<std::uint64_t>(d) * d;
  }
  fold_dag_stats_from_histogram(n, dag.num_edges(), sq, histogram_of(out), s);
}

std::vector<std::uint64_t> degree_histogram(const Csr& g) {
  EdgeIndex max_d = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) max_d = std::max(max_d, g.degree(v));
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) hist[g.degree(v)]++;
  return hist;
}

}  // namespace tcgpu::graph
