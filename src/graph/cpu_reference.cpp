#include "graph/cpu_reference.hpp"

#include <vector>

namespace tcgpu::graph {

std::uint64_t sorted_intersection_size(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t count_triangles_forward(const Csr& dag) {
  std::uint64_t total = 0;
  for (VertexId u = 0; u < dag.num_vertices(); ++u) {
    const auto nu = dag.neighbors(u);
    for (VertexId v : nu) {
      total += sorted_intersection_size(nu, dag.neighbors(v));
    }
  }
  return total;
}

std::uint64_t count_triangles_forward_parallel(const Csr& dag) {
  const auto n = static_cast<std::int64_t>(dag.num_vertices());
  std::uint64_t total = 0;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 256) reduction(+ : total)
#endif
  for (std::int64_t u = 0; u < n; ++u) {
    const auto nu = dag.neighbors(static_cast<VertexId>(u));
    for (const VertexId v : nu) {
      total += sorted_intersection_size(nu, dag.neighbors(v));
    }
  }
  return total;
}

std::uint64_t count_triangles_stamped(const Csr& dag) {
  const VertexId n = dag.num_vertices();
  std::vector<VertexId> stamp(n, kInvalidVertex);
  std::uint64_t total = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : dag.neighbors(u)) stamp[v] = u;
    for (VertexId v : dag.neighbors(u)) {
      for (VertexId w : dag.neighbors(v)) {
        if (stamp[w] == u) ++total;
      }
    }
  }
  return total;
}

}  // namespace tcgpu::graph
