// Graph cleaning and CSR assembly — the paper's §IV preparation pipeline:
// "removing vertices that are not connected to any edges, eliminating
// self-loop edges, and resolving duplicate edges within the graph. These
// transformations do not alter the number of triangles."
#pragma once

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tcgpu::graph {

/// Canonicalizes a raw edge list into a simple undirected graph:
/// drops self-loops, merges duplicate/reverse-duplicate edges, removes
/// isolated vertices and compacts vertex ids. Each surviving undirected
/// edge appears exactly once, as (min(u,v), max(u,v)).
Coo clean_edges(const Coo& raw);

/// Builds the symmetric (both-direction) CSR of a cleaned edge list.
/// Neighbor lists come out sorted ascending and duplicate-free.
Csr build_undirected_csr(const Coo& clean);

/// Builds a directed CSR containing exactly the edges given (u -> v),
/// neighbor lists sorted ascending. Used for oriented DAGs.
Csr build_directed_csr(VertexId num_vertices, const std::vector<Edge>& edges);

}  // namespace tcgpu::graph
