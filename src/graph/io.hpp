// Data transformation tools (§IV): readers/writers for the interchange
// formats the published implementations consume — SNAP-style text edge
// lists, packed binary edge lists, binary CSR images, and MatrixMarket
// coordinate files. All readers throw std::runtime_error with the offending
// path/line on malformed input (line numbers are 64-bit: billion-edge lists
// overflow a 32-bit counter long before they overflow the parser).
//
// The text reader memory-maps the file when the platform allows and parses
// it in OMP-partitioned chunks split at newline boundaries — the loading
// stage of the billion-edge prepare pipeline (graph/prepare.hpp). Inputs
// too large to hold as an edge list stream through EdgeSource /
// load_edge_stream, which reservoir-samples past the 2^31 boundary without
// ever materializing the raw list.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tcgpu::graph {

// --- text edge list (SNAP style: "u v" per line, '#'/'%' comments) --------
Coo read_text_edge_list(const std::string& path);
void write_text_edge_list(const std::string& path, const Coo& g);

// --- binary edge list ("TCGB" header, u32 pairs) ---------------------------
Coo read_binary_edge_list(const std::string& path);
void write_binary_edge_list(const std::string& path, const Coo& g);

// --- binary CSR image ("TCSR" header) --------------------------------------
Csr read_binary_csr(const std::string& path);
void write_binary_csr(const std::string& path, const Csr& g);

// --- MatrixMarket coordinate (pattern, 1-based) -----------------------------
Coo read_matrix_market(const std::string& path);
void write_matrix_market(const std::string& path, const Coo& g);

// --- streamed loading -------------------------------------------------------

/// Pull stream of raw edges: files too large to materialize, generators,
/// and the test suite's synthetic >2^31-edge sources all look the same to
/// the loader. Implementations are single-consumer and forward-only.
class EdgeSource {
 public:
  virtual ~EdgeSource() = default;

  /// Fills `out` with up to out.size() edges; returns how many were
  /// produced. 0 means the stream is exhausted (and stays exhausted).
  virtual std::size_t next(std::span<Edge> out) = 0;

  /// Discards up to `n` edges, returning how many were actually skipped
  /// (< n only at end of stream). The default drains through next();
  /// seekable sources override it to jump without touching the bytes —
  /// what makes reservoir skips cheap on files.
  virtual EdgeCount skip(EdgeCount n);
};

/// EdgeSource over a TCGB binary edge list, reading fixed-size chunks; skip
/// is a file seek. The header's vertex count and 64-bit edge count are
/// available up front.
class BinaryEdgeListSource final : public EdgeSource {
 public:
  explicit BinaryEdgeListSource(const std::string& path);
  ~BinaryEdgeListSource() override;

  std::size_t next(std::span<Edge> out) override;
  EdgeCount skip(EdgeCount n) override;

  VertexId num_vertices() const;
  EdgeCount num_edges() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// What load_edge_stream produced: the (possibly downsampled) edge list,
/// plus the exact 64-bit count of edges the stream contained.
struct StreamLoadResult {
  Coo graph;
  EdgeCount edges_seen = 0;  ///< total stream length, counting skipped edges
  bool downsampled = false;  ///< true when edges_seen exceeded max_edges
};

/// Streams an arbitrarily long edge source into a Coo holding at most
/// `max_edges` edges. Streams within the cap load verbatim (order
/// preserved); longer streams are downsampled by uniform reservoir
/// sampling (Vitter's Algorithm L — the geometric inter-sample gaps go
/// through EdgeSource::skip, so seekable sources never read the skipped
/// bytes). num_vertices covers the retained edges. Deterministic for a
/// fixed (stream, max_edges, seed).
StreamLoadResult load_edge_stream(EdgeSource& src, std::size_t max_edges,
                                  std::uint64_t seed = 0);

}  // namespace tcgpu::graph
