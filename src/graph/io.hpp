// Data transformation tools (§IV): readers/writers for the interchange
// formats the published implementations consume — SNAP-style text edge
// lists, packed binary edge lists, binary CSR images, and MatrixMarket
// coordinate files. All readers throw std::runtime_error with the offending
// path/line on malformed input.
#pragma once

#include <string>

#include "graph/coo.hpp"
#include "graph/csr.hpp"

namespace tcgpu::graph {

// --- text edge list (SNAP style: "u v" per line, '#'/'%' comments) --------
Coo read_text_edge_list(const std::string& path);
void write_text_edge_list(const std::string& path, const Coo& g);

// --- binary edge list ("TCGB" header, u32 pairs) ---------------------------
Coo read_binary_edge_list(const std::string& path);
void write_binary_edge_list(const std::string& path, const Coo& g);

// --- binary CSR image ("TCSR" header) --------------------------------------
Csr read_binary_csr(const std::string& path);
void write_binary_csr(const std::string& path, const Csr& g);

// --- MatrixMarket coordinate (pattern, 1-based) -----------------------------
Coo read_matrix_market(const std::string& path);
void write_matrix_market(const std::string& path, const Coo& g);

}  // namespace tcgpu::graph
