#include "graph/prepare.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <numeric>
#include <random>
#include <stdexcept>
#include <utility>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace tcgpu::graph {

namespace {

std::size_t worker_count(std::size_t items) {
#ifdef _OPENMP
  const std::size_t t = static_cast<std::size_t>(omp_get_max_threads());
#else
  const std::size_t t = 1;
#endif
  // One chunk per thread, but never chunks so small the bookkeeping wins.
  return std::clamp<std::size_t>(std::min(t, items / 4096), 1, 256);
}

struct ChunkRange {
  std::size_t lo, hi;
};

ChunkRange chunk_of(std::size_t n, std::size_t chunks, std::size_t c) {
  const std::size_t per = (n + chunks - 1) / chunks;
  const std::size_t lo = std::min(n, c * per);
  return {lo, std::min(n, lo + per)};
}

/// OMP-partitioned LSD radix sort over the low `key_bits` bits: per-thread
/// 256-bin histograms, bin-major exclusive prefix, stable scatter. The
/// output permutation is identical to std::sort (keys are unique up to
/// duplicates, and LSD byte passes are stable), just computed in parallel.
void radix_sort_keys(std::vector<std::uint64_t>& keys, int key_bits) {
  const std::size_t n = keys.size();
  if (n < 1u << 14) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  const int passes = std::max(1, (key_bits + 7) / 8);
  const std::size_t chunks = worker_count(n);
  std::vector<std::uint64_t> tmp(n);
  std::vector<std::uint64_t> hist(chunks * 256);

  std::uint64_t* src = keys.data();
  std::uint64_t* dst = tmp.data();
  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::fill(hist.begin(), hist.end(), 0);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
      const auto [lo, hi] = chunk_of(n, chunks, static_cast<std::size_t>(c));
      std::uint64_t* h = hist.data() + static_cast<std::size_t>(c) * 256;
      for (std::size_t i = lo; i < hi; ++i) h[(src[i] >> shift) & 0xFF]++;
    }
    // Bin-major exclusive prefix: all chunks' bin-0 slots, then bin-1, ...
    std::uint64_t run = 0;
    for (std::size_t bin = 0; bin < 256; ++bin) {
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::uint64_t count = hist[c * 256 + bin];
        hist[c * 256 + bin] = run;
        run += count;
      }
    }
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
      const auto [lo, hi] = chunk_of(n, chunks, static_cast<std::size_t>(c));
      std::uint64_t* h = hist.data() + static_cast<std::size_t>(c) * 256;
      for (std::size_t i = lo; i < hi; ++i) {
        dst[h[(src[i] >> shift) & 0xFF]++] = src[i];
      }
    }
    std::swap(src, dst);
  }
  if (src != keys.data()) keys.swap(tmp);
}

/// Parallel stable compaction of the sorted key array: drops adjacent
/// duplicates. Writes through `scratch` (destinations can underrun another
/// chunk's source region, so in-place would race), then swaps back.
void dedup_sorted_keys(std::vector<std::uint64_t>& keys,
                       std::vector<std::uint64_t>& scratch) {
  const std::size_t n = keys.size();
  if (n == 0) return;
  const std::size_t chunks = worker_count(n);
  std::vector<std::size_t> uniques(chunks + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
    const auto [lo, hi] = chunk_of(n, chunks, static_cast<std::size_t>(c));
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      count += (i == 0 || keys[i] != keys[i - 1]) ? 1 : 0;
    }
    uniques[static_cast<std::size_t>(c) + 1] = count;
  }
  for (std::size_t c = 0; c < chunks; ++c) uniques[c + 1] += uniques[c];
  scratch.resize(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
    const auto [lo, hi] = chunk_of(n, chunks, static_cast<std::size_t>(c));
    std::size_t out = uniques[static_cast<std::size_t>(c)];
    for (std::size_t i = lo; i < hi; ++i) {
      if (i == 0 || keys[i] != keys[i - 1]) scratch[out++] = keys[i];
    }
  }
  keys.swap(scratch);
  keys.resize(uniques[chunks]);
}

int vertex_bits(VertexId num_vertices) {
  if (num_vertices <= 1) return 1;
  return std::bit_width(static_cast<std::uint32_t>(num_vertices - 1));
}

/// Serial O(V) histogram of a degree array (one cache-friendly pass; the
/// array scan is never the pipeline bottleneck).
std::vector<std::uint64_t> histogram_of_degrees(
    const std::vector<EdgeIndex>& deg) {
  EdgeIndex max_d = 0;
  for (const EdgeIndex d : deg) max_d = std::max(max_d, d);
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (const EdgeIndex d : deg) hist[d]++;
  return hist;
}

/// Parallel CSR assembly from directed (src, dst) emissions: atomic degree
/// count, exclusive prefix, atomic scatter, per-row sorts. `emit` is called
/// twice (count phase, scatter phase) and must enumerate the same pairs.
template <class EmitFn>
Csr assemble_csr(VertexId num_vertices, std::uint64_t num_directed,
                 EmitFn&& emit) {
  if (num_directed > 0xFFFFFFFFull) {
    throw std::length_error("csr_from_pairs: edge count exceeds 32-bit index");
  }
  std::vector<EdgeIndex> row_ptr(static_cast<std::size_t>(num_vertices) + 1, 0);
  std::vector<EdgeIndex> deg(num_vertices, 0);
  emit(/*count_phase=*/true, deg.data(), static_cast<VertexId*>(nullptr));
  for (VertexId v = 0; v < num_vertices; ++v) row_ptr[v + 1] = row_ptr[v] + deg[v];
  std::vector<VertexId> col(static_cast<std::size_t>(num_directed));
  std::vector<EdgeIndex> cursor(row_ptr.begin(), row_ptr.end() - 1);
  emit(/*count_phase=*/false, cursor.data(), col.data());
#pragma omp parallel for schedule(guided)
  for (std::ptrdiff_t v = 0; v < static_cast<std::ptrdiff_t>(num_vertices); ++v) {
    std::sort(col.begin() + row_ptr[static_cast<std::size_t>(v)],
              col.begin() + row_ptr[static_cast<std::size_t>(v) + 1]);
  }
  return Csr(std::move(row_ptr), std::move(col));
}

}  // namespace

Coo clean_edges_inplace(Coo&& raw) {
  const std::size_t n_raw = raw.edges.size();
  const VertexId V = raw.num_vertices;
  const int vbits = vertex_bits(V);

  // Pack canonical (min,max) pairs into sortable keys, dropping self-loops.
  // Stable per-chunk compaction so the filtered sequence is deterministic.
  const std::size_t chunks = worker_count(n_raw);
  std::vector<std::size_t> kept(chunks + 1, 0);
  std::atomic<bool> out_of_range{false};
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
    const auto [lo, hi] = chunk_of(n_raw, chunks, static_cast<std::size_t>(c));
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const auto [u, v] = raw.edges[i];
      if (u >= V || v >= V) out_of_range.store(true, std::memory_order_relaxed);
      count += (u != v) ? 1 : 0;
    }
    kept[static_cast<std::size_t>(c) + 1] = count;
  }
  if (out_of_range.load()) {
    throw std::invalid_argument("clean_edges: vertex id out of range");
  }
  for (std::size_t c = 0; c < chunks; ++c) kept[c + 1] += kept[c];

  std::vector<std::uint64_t> keys(kept[chunks]);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(chunks); ++c) {
    const auto [lo, hi] = chunk_of(n_raw, chunks, static_cast<std::size_t>(c));
    std::size_t out = kept[static_cast<std::size_t>(c)];
    for (std::size_t i = lo; i < hi; ++i) {
      const auto [u, v] = raw.edges[i];
      if (u == v) continue;
      const std::uint64_t a = std::min(u, v), b = std::max(u, v);
      keys[out++] = (a << vbits) | b;
    }
  }
  raw.edges = {};  // release the raw storage before the radix scratch

  radix_sort_keys(keys, 2 * vbits);
  {
    std::vector<std::uint64_t> scratch;
    dedup_sorted_keys(keys, scratch);
  }

  // Compact ids: keep only vertices that touch an edge, order-preserving.
  const std::uint64_t vmask = (vbits >= 64) ? ~0ull : ((1ull << vbits) - 1);
  std::vector<std::uint8_t> touched(V, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(keys.size()); ++i) {
    const std::uint64_t k = keys[static_cast<std::size_t>(i)];
    touched[k >> vbits] = 1;  // benign write-write race, same value
    touched[k & vmask] = 1;
  }
  std::vector<VertexId> remap(V);
  const std::size_t vchunks = worker_count(V);
  std::vector<VertexId> base(vchunks + 1, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(vchunks); ++c) {
    const auto [lo, hi] = chunk_of(V, vchunks, static_cast<std::size_t>(c));
    VertexId count = 0;
    for (std::size_t v = lo; v < hi; ++v) count += touched[v];
    base[static_cast<std::size_t>(c) + 1] = count;
  }
  for (std::size_t c = 0; c < vchunks; ++c) base[c + 1] += base[c];
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t c = 0; c < static_cast<std::ptrdiff_t>(vchunks); ++c) {
    const auto [lo, hi] = chunk_of(V, vchunks, static_cast<std::size_t>(c));
    VertexId next = base[static_cast<std::size_t>(c)];
    for (std::size_t v = lo; v < hi; ++v) {
      remap[v] = touched[v] ? next++ : kInvalidVertex;
    }
  }

  Coo out;
  out.num_vertices = base[vchunks];
  out.edges.resize(keys.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(keys.size()); ++i) {
    const std::uint64_t k = keys[static_cast<std::size_t>(i)];
    out.edges[static_cast<std::size_t>(i)] = {
        remap[k >> vbits], remap[static_cast<VertexId>(k & vmask)]};
  }
  return out;
}

Csr build_undirected_csr_parallel(const Coo& clean) {
  const std::uint64_t directed = 2 * static_cast<std::uint64_t>(clean.edges.size());
  return assemble_csr(
      clean.num_vertices, directed,
      [&](bool count_phase, EdgeIndex* slots, VertexId* col) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = 0;
             i < static_cast<std::ptrdiff_t>(clean.edges.size()); ++i) {
          const auto [u, v] = clean.edges[static_cast<std::size_t>(i)];
          if (count_phase) {
#pragma omp atomic
            slots[u]++;
#pragma omp atomic
            slots[v]++;
          } else {
            EdgeIndex iu, iv;
#pragma omp atomic capture
            iu = slots[u]++;
#pragma omp atomic capture
            iv = slots[v]++;
            col[iu] = v;
            col[iv] = u;
          }
        }
      });
}

Csr build_directed_csr_parallel(VertexId num_vertices,
                                const std::vector<Edge>& edges) {
  return assemble_csr(
      num_vertices, edges.size(),
      [&](bool count_phase, EdgeIndex* slots, VertexId* col) {
#pragma omp parallel for schedule(static)
        for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(edges.size());
             ++i) {
          const auto [u, v] = edges[static_cast<std::size_t>(i)];
          if (count_phase) {
#pragma omp atomic
            slots[u]++;
          } else {
            EdgeIndex iu;
#pragma omp atomic capture
            iu = slots[u]++;
            col[iu] = v;
          }
        }
      });
}

PreparedDag prepare_dag(Coo&& raw, OrientationPolicy policy,
                        std::uint64_t seed) {
  Coo clean = clean_edges_inplace(std::move(raw));
  const VertexId V = clean.num_vertices;
  const std::uint64_t E = clean.edges.size();
  if (E > 0xFFFFFFFFull) {
    throw std::length_error("prepare_dag: cleaned edge count exceeds 32-bit index");
  }

  // Undirected degrees + histogram stats — no symmetric CSR required.
  std::vector<EdgeIndex> deg(V, 0);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(E); ++i) {
    const auto [u, v] = clean.edges[static_cast<std::size_t>(i)];
#pragma omp atomic
    deg[u]++;
#pragma omp atomic
    deg[v]++;
  }
  const std::vector<std::uint64_t> hist = histogram_of_degrees(deg);

  PreparedDag out;
  out.stats = stats_from_degree_histogram(V, 2 * E, hist);

  if (policy == OrientationPolicy::kByCore) {
    // The peeling order needs full adjacency; build it (in parallel) and
    // reuse the legacy orient. Everything downstream is shared.
    const Csr undirected = build_undirected_csr_parallel(clean);
    auto oriented = orient(undirected, policy, seed);
    out.dag = std::move(oriented.dag);
    out.new_to_old = std::move(oriented.new_to_old);
  } else {
    std::vector<VertexId> order(V);  // order[rank] = old id
    switch (policy) {
      case OrientationPolicy::kById:
        std::iota(order.begin(), order.end(), VertexId{0});
        break;
      case OrientationPolicy::kRandom: {
        std::iota(order.begin(), order.end(), VertexId{0});
        std::mt19937_64 rng(seed);
        std::shuffle(order.begin(), order.end(), rng);
        break;
      }
      case OrientationPolicy::kByDegree: {
        // Counting sort by (degree asc, id asc) — exactly std::stable_sort
        // by degree, in O(V + max_degree).
        std::vector<std::uint64_t> start(hist.size() + 1, 0);
        for (std::size_t d = 0; d < hist.size(); ++d) {
          start[d + 1] = start[d] + hist[d];
        }
        for (VertexId v = 0; v < V; ++v) {
          order[start[deg[v]]++] = v;
        }
        break;
      }
      case OrientationPolicy::kByCore:
        break;  // handled above
    }

    std::vector<VertexId> rank(V);  // rank[old id] = new id
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(V); ++r) {
      rank[order[static_cast<std::size_t>(r)]] = static_cast<VertexId>(r);
    }

    // DODG straight from the cleaned edges: the oriented edge of (a, b) is
    // (min(ra, rb), max(ra, rb)); row sorting erases scatter order.
    out.dag = assemble_csr(
        V, E, [&](bool count_phase, EdgeIndex* slots, VertexId* col) {
#pragma omp parallel for schedule(static)
          for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(E); ++i) {
            const auto [a, b] = clean.edges[static_cast<std::size_t>(i)];
            const VertexId ra = rank[a], rb = rank[b];
            const VertexId src = std::min(ra, rb);
            if (count_phase) {
#pragma omp atomic
              slots[src]++;
            } else {
              EdgeIndex idx;
#pragma omp atomic capture
              idx = slots[src]++;
              col[idx] = std::max(ra, rb);
            }
          }
        });
    out.new_to_old = std::move(order);
  }

  // Fold the DAG quantities from its out-degree histogram.
  std::vector<EdgeIndex> out_deg(V);
  std::uint64_t sum_sq = 0;
#pragma omp parallel for schedule(static) reduction(+ : sum_sq)
  for (std::ptrdiff_t u = 0; u < static_cast<std::ptrdiff_t>(V); ++u) {
    const EdgeIndex d = out.dag.degree(static_cast<VertexId>(u));
    out_deg[static_cast<std::size_t>(u)] = d;
    sum_sq += static_cast<std::uint64_t>(d) * d;
  }
  fold_dag_stats_from_histogram(V, out.dag.num_edges(), sum_sq,
                                histogram_of_degrees(out_deg), out.stats);
  return out;
}

Csr symmetrize_dag(const Csr& dag) {
  const VertexId V = dag.num_vertices();
  std::atomic<bool> malformed{false};
#pragma omp parallel for schedule(guided)
  for (std::ptrdiff_t u = 0; u < static_cast<std::ptrdiff_t>(V); ++u) {
    const auto row = dag.neighbors(static_cast<VertexId>(u));
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (row[k] <= static_cast<VertexId>(u) || (k > 0 && row[k] <= row[k - 1])) {
        malformed.store(true, std::memory_order_relaxed);
      }
    }
  }
  if (malformed.load()) {
    throw std::invalid_argument(
        "symmetrize_dag: DAG must be id-oriented (u < v) with sorted rows");
  }
  // Each edge (u, w) lands in both rows; a final per-row sort restores the
  // ascending order, which for an id-oriented DAG is exactly "in-neighbors
  // (< v) first, out-neighbors (> v) after".
  const auto& rp = dag.row_ptr();
  const auto& cl = dag.col();
  return assemble_csr(
      V, 2 * static_cast<std::uint64_t>(dag.num_edges()),
      [&](bool count_phase, EdgeIndex* slots, VertexId* col) {
#pragma omp parallel for schedule(guided)
        for (std::ptrdiff_t u = 0; u < static_cast<std::ptrdiff_t>(V); ++u) {
          for (EdgeIndex i = rp[static_cast<std::size_t>(u)];
               i < rp[static_cast<std::size_t>(u) + 1]; ++i) {
            const VertexId w = cl[i];
            if (count_phase) {
#pragma omp atomic
              slots[u]++;
#pragma omp atomic
              slots[w]++;
            } else {
              EdgeIndex iu, iw;
#pragma omp atomic capture
              iu = slots[u]++;
#pragma omp atomic capture
              iw = slots[w]++;
              col[iu] = w;
              col[iw] = static_cast<VertexId>(u);
            }
          }
        }
      });
}

}  // namespace tcgpu::graph
