// Compressed sparse row adjacency — the format all triangle-counting
// kernels consume. Neighbor lists are sorted ascending (the merge/binary
// search intersection methods require it; the builder guarantees it).
//
// CompressedCsr is the capacity variant: per-row (base, delta-stream)
// layout where the first neighbor is stored raw and the remaining sorted
// neighbors become LEB128 varints of (gap - 1). Social-network rows
// average ~1.5 bytes per neighbor against the raw 4, which is what lets
// the largest prepared graphs fit the device budget; the CMerge/CStage
// kernels decode it on the fly inside the intersection loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace tcgpu::graph {

class Csr {
 public:
  Csr() : row_ptr_(1, 0) {}
  Csr(std::vector<EdgeIndex> row_ptr, std::vector<VertexId> col);

  VertexId num_vertices() const {
    return static_cast<VertexId>(row_ptr_.size() - 1);
  }
  EdgeIndex num_edges() const { return row_ptr_.back(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {col_.data() + row_ptr_[v], col_.data() + row_ptr_[v + 1]};
  }
  EdgeIndex degree(VertexId v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  /// Binary search in v's sorted neighbor list.
  bool has_edge(VertexId v, VertexId w) const;

  const std::vector<EdgeIndex>& row_ptr() const { return row_ptr_; }
  const std::vector<VertexId>& col() const { return col_; }

  bool operator==(const Csr&) const = default;

 private:
  std::vector<EdgeIndex> row_ptr_;  // size V+1
  std::vector<VertexId> col_;       // size E
};

/// Appends v as a little-endian LEB128 varint (7 value bits per byte, high
/// bit = continuation). The canonical encoder for CompressedCsr streams and
/// the device kernels' self-staged copies — one definition so host and
/// "device" bytes can never drift.
inline void varint_append(std::vector<std::uint8_t>& out, std::uint32_t v) {
  while (v >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Delta-compressed adjacency: row v keeps its first neighbor raw in
/// `base()[v]` and encodes each later neighbor as varint(gap - 1) — rows are
/// strictly ascending, so gaps are >= 1 and the -1 buys one bit of density.
/// `offset()[v] .. offset()[v+1]` bounds v's byte stream in `data()`;
/// degrees still come from `row_ptr()` (byte lengths alone can't recover
/// them). Decode is sequential per row, which is exactly the access pattern
/// of the merge intersection family.
class CompressedCsr {
 public:
  CompressedCsr() : row_ptr_(1, 0), offset_(1, 0) {}

  /// Compresses a sorted-row CSR. Throws std::invalid_argument on unsorted
  /// or duplicate-bearing rows, std::length_error if the delta stream
  /// exceeds the device's 32-bit byte offsets.
  static CompressedCsr compress(const Csr& csr);

  /// Exact inverse of compress() — round-trip is pinned by tests.
  Csr decompress() const;

  VertexId num_vertices() const {
    return static_cast<VertexId>(row_ptr_.size() - 1);
  }
  EdgeIndex num_edges() const { return row_ptr_.back(); }
  EdgeIndex degree(VertexId v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  const std::vector<EdgeIndex>& row_ptr() const { return row_ptr_; }
  const std::vector<VertexId>& base() const { return base_; }
  const std::vector<std::uint32_t>& offset() const { return offset_; }
  const std::vector<std::uint8_t>& data() const { return data_; }

  /// Bytes of the adjacency payload (base + offsets + delta stream); the
  /// raw-CSR equivalent is col: 4 bytes per edge.
  std::size_t adjacency_bytes() const {
    return base_.size() * sizeof(VertexId) +
           offset_.size() * sizeof(std::uint32_t) + data_.size();
  }

  bool operator==(const CompressedCsr&) const = default;

 private:
  std::vector<EdgeIndex> row_ptr_;     // size V+1 (degrees, as in Csr)
  std::vector<VertexId> base_;         // size V; first neighbor, 0 if empty
  std::vector<std::uint32_t> offset_;  // size V+1; byte offsets into data_
  std::vector<std::uint8_t> data_;     // varint(gap-1) stream
};

}  // namespace tcgpu::graph
