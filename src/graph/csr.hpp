// Compressed sparse row adjacency — the format all triangle-counting
// kernels consume. Neighbor lists are sorted ascending (the merge/binary
// search intersection methods require it; the builder guarantees it).
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace tcgpu::graph {

class Csr {
 public:
  Csr() : row_ptr_(1, 0) {}
  Csr(std::vector<EdgeIndex> row_ptr, std::vector<VertexId> col);

  VertexId num_vertices() const {
    return static_cast<VertexId>(row_ptr_.size() - 1);
  }
  EdgeIndex num_edges() const { return row_ptr_.back(); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {col_.data() + row_ptr_[v], col_.data() + row_ptr_[v + 1]};
  }
  EdgeIndex degree(VertexId v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  /// Binary search in v's sorted neighbor list.
  bool has_edge(VertexId v, VertexId w) const;

  const std::vector<EdgeIndex>& row_ptr() const { return row_ptr_; }
  const std::vector<VertexId>& col() const { return col_; }

  bool operator==(const Csr&) const = default;

 private:
  std::vector<EdgeIndex> row_ptr_;  // size V+1
  std::vector<VertexId> col_;       // size E
};

}  // namespace tcgpu::graph
