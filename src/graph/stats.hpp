// Dataset statistics — what Table II reports per graph, plus the degree
// distribution quantities the paper's analysis leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tcgpu::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  std::uint64_t num_undirected_edges = 0;
  double avg_degree = 0.0;
  EdgeIndex max_degree = 0;
  EdgeIndex median_degree = 0;
  EdgeIndex p99_degree = 0;

  // --- oriented-DAG quantities (filled by fold_dag_stats) -----------------
  // These drive the paper's three governing factors: sum_out_degree_sq is
  // the total-work driver (candidate wedges per anchor scale with d_out²),
  // out_degree_skew the warp-imbalance driver, and both feed serve::Selector.
  EdgeIndex max_out_degree = 0;
  EdgeIndex p99_out_degree = 0;
  double avg_out_degree = 0.0;
  std::uint64_t sum_out_degree_sq = 0;  ///< Σ_u d_out(u)²
  double out_degree_skew = 0.0;         ///< max_out / avg_out (1 when regular)
};

/// Stats of a simple undirected graph (symmetric CSR).
GraphStats compute_stats(const Csr& undirected);

/// compute_stats without materializing a CSR: the same quantities from a
/// degree histogram (hist[d] = vertices of degree d) and the *directed*
/// edge count (2E for a symmetric graph). Percentiles read the exact
/// element a sort-then-index implementation would, so the parallel prepare
/// pipeline produces bit-identical stats (serve::Selector keys graphs by
/// these fields — any drift would silently fork its refinement state).
GraphStats stats_from_degree_histogram(VertexId num_vertices,
                                       std::uint64_t num_directed_edges,
                                       const std::vector<std::uint64_t>& hist);

/// Folds the oriented DAG's out-degree quantities into `s` (the undirected
/// fields are left untouched). The framework runner calls this after
/// orientation so every PreparedGraph carries the work/imbalance drivers.
void fold_dag_stats(const Csr& dag, GraphStats& s);

/// fold_dag_stats from precomputed aggregates (out-degree histogram, DAG
/// edge count, Σ d_out²) — the histogram twin used by graph::prepare.
void fold_dag_stats_from_histogram(VertexId num_vertices,
                                   std::uint64_t num_dag_edges,
                                   std::uint64_t sum_out_degree_sq,
                                   const std::vector<std::uint64_t>& out_hist,
                                   GraphStats& s);

/// Degree histogram: hist[d] = number of vertices with degree d.
std::vector<std::uint64_t> degree_histogram(const Csr& undirected);

}  // namespace tcgpu::graph
