// Dataset statistics — what Table II reports per graph, plus the degree
// distribution quantities the paper's analysis leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace tcgpu::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  std::uint64_t num_undirected_edges = 0;
  double avg_degree = 0.0;
  EdgeIndex max_degree = 0;
  EdgeIndex median_degree = 0;
  EdgeIndex p99_degree = 0;
  EdgeIndex max_out_degree = 0;  ///< of the degree-oriented DAG, if provided
};

/// Stats of a simple undirected graph (symmetric CSR).
GraphStats compute_stats(const Csr& undirected);

/// Degree histogram: hist[d] = number of vertices with degree d.
std::vector<std::uint64_t> degree_histogram(const Csr& undirected);

}  // namespace tcgpu::graph
