// Fundamental graph index types.
//
// Vertex ids and edge indices are 32-bit, matching the device arrays the
// paper's kernels traffic in (wider indices would double the memory traffic
// the study measures). Builders check for overflow when assembling graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace tcgpu::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint32_t;
using Edge = std::pair<VertexId, VertexId>;

constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

}  // namespace tcgpu::graph
