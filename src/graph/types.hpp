// Fundamental graph index types.
//
// Vertex ids and edge indices are 32-bit, matching the device arrays the
// paper's kernels traffic in (wider indices would double the memory traffic
// the study measures). Builders check for overflow when assembling graphs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace tcgpu::graph {

using VertexId = std::uint32_t;
using EdgeIndex = std::uint32_t;
using Edge = std::pair<VertexId, VertexId>;

/// Host-side edge *counts* (raw edge lists, streamed inputs, loader
/// positions). These routinely exceed 2^31 before dedup/downsampling —
/// Com-Friendster is 1.8 B edges — so anything that counts or indexes raw
/// edges uses this 64-bit type. Device-resident indices (EdgeIndex) stay
/// 32-bit: a *cleaned, oriented* graph must still fit the kernels' u32
/// arrays, and the builders enforce that boundary explicitly.
using EdgeCount = std::int64_t;
static_assert(sizeof(EdgeCount) == 8, "raw edge counts must be 64-bit");

constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

}  // namespace tcgpu::graph
