// Parallel prepare pipeline (the billion-edge capacity path).
//
// The legacy builder route — clean_edges (std::sort + unique) →
// build_undirected_csr → compute_stats → orient → fold_dag_stats — is
// serial and materializes the full symmetric CSR just to read degrees and
// emit oriented edges. At paper scale (Com-Friendster, 1.8 B raw edges)
// that is both the wall-clock and the memory ceiling of every cache-miss
// query. This header is the fused replacement:
//
//   * clean_edges_inplace — OMP-partitioned LSD radix sort of the
//     canonicalized (min,max)-packed edge keys, parallel merge-dedup, and
//     id compaction. Consumes the raw edge storage so the peak working set
//     is two key arrays, not raw + cleaned + pair-doubled copies.
//   * prepare_dag — degree-ordered-directed-graph (DODG) orientation built
//     straight from the cleaned edge list + rank array, *without* ever
//     materializing the undirected CSR (kByCore still needs it for the
//     peeling order and falls back to the legacy orient). Stats come from
//     degree histograms (graph/stats.hpp) and are bit-identical to the
//     compute_stats + fold_dag_stats values on the legacy path.
//
// Equivalence invariants (tested in tests/graph/test_prepare.cpp and
// pinned end-to-end by the fig11/12/13 byte-identity gate):
//   - radix order of (u << vbits | v) keys == lexicographic pair order, so
//     dedup and the monotone id compaction see the same sequence;
//   - the compaction map is monotone, so canonical (min,max) edges stay
//     canonical after remapping;
//   - counting sort by (degree asc, id asc) == std::stable_sort by degree;
//   - the oriented edge of a cleaned (a,b) is (min(ra,rb), max(ra,rb)), and
//     csr assembly sorts rows, so scatter order never shows.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coo.hpp"
#include "graph/csr.hpp"
#include "graph/orientation.hpp"
#include "graph/stats.hpp"

namespace tcgpu::graph {

/// Everything the framework needs from one prepare, minus the CPU
/// reference count (the runner layers that on top).
struct PreparedDag {
  Csr dag;                           ///< oriented CSR, u < v for every edge
  std::vector<VertexId> new_to_old;  ///< relabeling map (size = V)
  GraphStats stats;                  ///< undirected + DAG quantities
};

/// Parallel clean: drops self-loops, merges duplicate/reverse-duplicate
/// edges, compacts vertex ids. Identical output to builder's clean_edges,
/// but radix-sorted in parallel and destructive — `raw.edges` is released
/// as soon as the packed keys exist, so peak RSS is ~2 key arrays.
/// Throws std::invalid_argument on out-of-range vertex ids.
Coo clean_edges_inplace(Coo&& raw);

/// The fused pipeline: clean → histogram stats → orient (DODG direct from
/// the edge list for kByDegree/kById/kRandom; undirected-CSR fallback for
/// kByCore) → fold DAG stats. Bit-identical to the legacy
/// clean/build/compute/orient/fold composition for every policy.
/// Throws std::length_error if the cleaned edge count exceeds the kernels'
/// 32-bit device indices.
PreparedDag prepare_dag(Coo&& raw, OrientationPolicy policy,
                        std::uint64_t seed = 0);

/// Parallel twin of builder's build_undirected_csr (atomic degree count,
/// prefix scatter, per-row sorts). Same output, multi-threaded.
Csr build_undirected_csr_parallel(const Coo& clean);

/// Parallel twin of builder's build_directed_csr.
Csr build_directed_csr_parallel(VertexId num_vertices,
                                const std::vector<Edge>& edges);

/// Parallel symmetrization of an id-oriented DAG (sorted rows, u < v for
/// every edge): row v of the result is every in-neighbor (all < v)
/// followed by every out-neighbor (all > v), ascending — i.e. the full
/// undirected adjacency with the in/out split recoverable at the first
/// element > v. stream::DynamicGraph seeds its segments from this instead
/// of a bespoke transpose loop. Throws std::invalid_argument if the input
/// is not id-oriented with sorted rows.
Csr symmetrize_dag(const Csr& dag);

}  // namespace tcgpu::graph
