#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::graph {

Csr::Csr(std::vector<EdgeIndex> row_ptr, std::vector<VertexId> col)
    : row_ptr_(std::move(row_ptr)), col_(std::move(col)) {
  if (row_ptr_.empty()) throw std::invalid_argument("Csr: row_ptr must be non-empty");
  if (row_ptr_.front() != 0) throw std::invalid_argument("Csr: row_ptr[0] must be 0");
  if (!std::is_sorted(row_ptr_.begin(), row_ptr_.end())) {
    throw std::invalid_argument("Csr: row_ptr must be non-decreasing");
  }
  if (row_ptr_.back() != col_.size()) {
    throw std::invalid_argument("Csr: row_ptr end does not match col size");
  }
}

bool Csr::has_edge(VertexId v, VertexId w) const {
  const auto n = neighbors(v);
  return std::binary_search(n.begin(), n.end(), w);
}

}  // namespace tcgpu::graph
