#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::graph {

Csr::Csr(std::vector<EdgeIndex> row_ptr, std::vector<VertexId> col)
    : row_ptr_(std::move(row_ptr)), col_(std::move(col)) {
  if (row_ptr_.empty()) throw std::invalid_argument("Csr: row_ptr must be non-empty");
  if (row_ptr_.front() != 0) throw std::invalid_argument("Csr: row_ptr[0] must be 0");
  if (!std::is_sorted(row_ptr_.begin(), row_ptr_.end())) {
    throw std::invalid_argument("Csr: row_ptr must be non-decreasing");
  }
  if (row_ptr_.back() != col_.size()) {
    throw std::invalid_argument("Csr: row_ptr end does not match col size");
  }
}

bool Csr::has_edge(VertexId v, VertexId w) const {
  const auto n = neighbors(v);
  return std::binary_search(n.begin(), n.end(), w);
}

CompressedCsr CompressedCsr::compress(const Csr& csr) {
  CompressedCsr c;
  const VertexId n = csr.num_vertices();
  c.row_ptr_ = csr.row_ptr();
  c.base_.assign(n, 0);
  c.offset_.assign(n + 1, 0);
  c.data_.clear();
  // Conservative reserve: gaps of social rows mostly fit one byte.
  c.data_.reserve(csr.col().size());
  for (VertexId v = 0; v < n; ++v) {
    const auto row = csr.neighbors(v);
    if (!row.empty()) {
      c.base_[v] = row.front();
      for (std::size_t k = 1; k < row.size(); ++k) {
        if (row[k] <= row[k - 1]) {
          throw std::invalid_argument(
              "CompressedCsr: rows must be strictly ascending");
        }
        varint_append(c.data_, row[k] - row[k - 1] - 1);
      }
    }
    if (c.data_.size() > 0xFFFFFFFFull) {
      throw std::length_error(
          "CompressedCsr: delta stream exceeds 32-bit byte offsets");
    }
    c.offset_[v + 1] = static_cast<std::uint32_t>(c.data_.size());
  }
  return c;
}

Csr CompressedCsr::decompress() const {
  const VertexId n = num_vertices();
  std::vector<VertexId> col;
  col.reserve(row_ptr_.back());
  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex deg = degree(v);
    if (deg == 0) continue;
    VertexId prev = base_[v];
    col.push_back(prev);
    std::uint32_t pos = offset_[v];
    for (EdgeIndex k = 1; k < deg; ++k) {
      std::uint32_t delta = 0;
      int shift = 0;
      std::uint8_t byte;
      do {
        byte = data_[pos++];
        delta |= static_cast<std::uint32_t>(byte & 0x7Fu) << shift;
        shift += 7;
      } while (byte & 0x80u);
      prev += delta + 1;
      col.push_back(prev);
    }
  }
  return Csr(row_ptr_, std::move(col));
}

}  // namespace tcgpu::graph
