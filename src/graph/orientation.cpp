#include "graph/orientation.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "graph/builder.hpp"

namespace tcgpu::graph {

const char* to_string(OrientationPolicy p) {
  switch (p) {
    case OrientationPolicy::kByDegree:
      return "degree";
    case OrientationPolicy::kById:
      return "id";
    case OrientationPolicy::kRandom:
      return "random";
    case OrientationPolicy::kByCore:
      return "kcore";
  }
  return "?";
}

std::vector<EdgeIndex> core_numbers(const Csr& g) {
  const VertexId n = g.num_vertices();
  std::vector<EdgeIndex> degree(n), core(n, 0);
  EdgeIndex max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree (Batagelj-Zaversnik peeling).
  std::vector<VertexId> order(n), pos(n);
  std::vector<EdgeIndex> bucket_start(static_cast<std::size_t>(max_degree) + 2, 0);
  for (VertexId v = 0; v < n; ++v) bucket_start[degree[v] + 1]++;
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  {
    std::vector<EdgeIndex> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      order[pos[v]] = v;
      cursor[degree[v]]++;
    }
  }
  std::vector<EdgeIndex> cur(n);
  for (VertexId v = 0; v < n; ++v) cur[v] = degree[v];
  for (VertexId i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = cur[v];
    for (const VertexId w : g.neighbors(v)) {
      if (cur[w] > cur[v]) {
        // Move w one bucket down: swap it with the first vertex of its
        // current bucket, then shrink the bucket.
        const EdgeIndex dw = cur[w];
        const EdgeIndex first_pos = bucket_start[dw];
        const VertexId first = order[first_pos];
        if (first != w) {
          std::swap(order[pos[w]], order[first_pos]);
          std::swap(pos[w], pos[first]);
        }
        bucket_start[dw]++;
        cur[w]--;
      }
    }
  }
  return core;
}

OrientedGraph orient(const Csr& undirected, OrientationPolicy policy,
                     std::uint64_t seed) {
  const VertexId n = undirected.num_vertices();
  std::vector<VertexId> order(n);  // order[rank] = old id
  std::iota(order.begin(), order.end(), VertexId{0});

  switch (policy) {
    case OrientationPolicy::kById:
      break;
    case OrientationPolicy::kByDegree:
      std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        return undirected.degree(a) < undirected.degree(b);
      });
      break;
    case OrientationPolicy::kRandom: {
      std::mt19937_64 rng(seed);
      std::shuffle(order.begin(), order.end(), rng);
      break;
    }
    case OrientationPolicy::kByCore: {
      const std::vector<EdgeIndex> core = core_numbers(undirected);
      std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        if (core[a] != core[b]) return core[a] < core[b];
        return undirected.degree(a) < undirected.degree(b);
      });
      break;
    }
  }

  std::vector<VertexId> rank(n);  // rank[old id] = new id
  for (VertexId r = 0; r < n; ++r) rank[order[r]] = r;

  std::vector<Edge> edges;
  edges.reserve(undirected.num_edges() / 2);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId ru = rank[u];
    for (VertexId v : undirected.neighbors(u)) {
      const VertexId rv = rank[v];
      if (ru < rv) edges.emplace_back(ru, rv);
    }
  }

  OrientedGraph out;
  out.dag = build_directed_csr(n, edges);
  out.new_to_old = std::move(order);
  return out;
}

}  // namespace tcgpu::graph
