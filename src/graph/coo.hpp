// Edge-list (COO) graph container — the interchange format every loader and
// generator produces and the builder consumes.
#pragma once

#include "graph/types.hpp"

namespace tcgpu::graph {

/// An edge list over vertices [0, num_vertices). May contain self-loops,
/// duplicates and isolated vertices until cleaned by the builder.
struct Coo {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;

  std::size_t num_edges() const { return edges.size(); }
};

}  // namespace tcgpu::graph
