#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::graph {

Coo clean_edges(const Coo& raw) {
  std::vector<Edge> edges;
  edges.reserve(raw.edges.size());
  for (const auto& [u, v] : raw.edges) {
    if (u == v) continue;  // self-loop
    if (u >= raw.num_vertices || v >= raw.num_vertices) {
      throw std::invalid_argument("clean_edges: vertex id out of range");
    }
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  // Compact ids: keep only vertices that touch an edge.
  std::vector<VertexId> remap(raw.num_vertices, kInvalidVertex);
  VertexId next = 0;
  for (const auto& [u, v] : edges) {
    if (remap[u] == kInvalidVertex) remap[u] = 0;
    if (remap[v] == kInvalidVertex) remap[v] = 0;
  }
  for (VertexId v = 0; v < raw.num_vertices; ++v) {
    if (remap[v] != kInvalidVertex) remap[v] = next++;
  }
  for (auto& [u, v] : edges) {
    u = remap[u];
    v = remap[v];
  }

  Coo out;
  out.num_vertices = next;
  out.edges = std::move(edges);
  return out;
}

namespace {

Csr csr_from_pairs(VertexId num_vertices, std::vector<Edge>& pairs) {
  if (pairs.size() > 0xFFFFFFFFull) {
    throw std::length_error("csr_from_pairs: edge count exceeds 32-bit index");
  }
  std::vector<EdgeIndex> row_ptr(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const auto& [u, v] : pairs) {
    (void)v;
    row_ptr[u + 1]++;
  }
  for (std::size_t i = 1; i < row_ptr.size(); ++i) row_ptr[i] += row_ptr[i - 1];
  std::vector<VertexId> col(pairs.size());
  std::vector<EdgeIndex> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (const auto& [u, v] : pairs) col[cursor[u]++] = v;
  for (VertexId v = 0; v < num_vertices; ++v) {
    std::sort(col.begin() + row_ptr[v], col.begin() + row_ptr[v + 1]);
  }
  return Csr(std::move(row_ptr), std::move(col));
}

}  // namespace

Csr build_undirected_csr(const Coo& clean) {
  std::vector<Edge> pairs;
  pairs.reserve(clean.edges.size() * 2);
  for (const auto& [u, v] : clean.edges) {
    pairs.emplace_back(u, v);
    pairs.emplace_back(v, u);
  }
  return csr_from_pairs(clean.num_vertices, pairs);
}

Csr build_directed_csr(VertexId num_vertices, const std::vector<Edge>& edges) {
  std::vector<Edge> pairs(edges);
  return csr_from_pairs(num_vertices, pairs);
}

}  // namespace tcgpu::graph
