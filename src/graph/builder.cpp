#include "graph/builder.hpp"

#include <utility>

#include "graph/prepare.hpp"

// The legacy serial clean/assemble loops lived here; they are now thin
// wrappers over the parallel radix pipeline in graph/prepare.cpp, which
// produces identical output (tests/graph/test_prepare.cpp pins the
// equivalence against an independent std::set oracle).
namespace tcgpu::graph {

Coo clean_edges(const Coo& raw) {
  Coo copy = raw;
  return clean_edges_inplace(std::move(copy));
}

Csr build_undirected_csr(const Coo& clean) {
  return build_undirected_csr_parallel(clean);
}

Csr build_directed_csr(VertexId num_vertices, const std::vector<Edge>& edges) {
  return build_directed_csr_parallel(num_vertices, edges);
}

}  // namespace tcgpu::graph
