// Exact CPU triangle counters — the ground truth every simulated GPU kernel
// is validated against.
//
// Two independent implementations are provided so the reference itself can
// be cross-checked: the merge-based Forward algorithm (Schank & Wagner; the
// CPU ancestor of Polak) and a hash-probe counter with a different access
// pattern. Both take the oriented DAG and count each triangle exactly once.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace tcgpu::graph {

/// Forward algorithm: for every DAG edge (u,v), |N+(u) ∩ N+(v)| by sorted
/// merge. O(sum over edges of d+(u)+d+(v)).
std::uint64_t count_triangles_forward(const Csr& oriented_dag);

/// Independent cross-check: per vertex u, mark N+(u) in a stamp array, then
/// probe every 2-hop neighbor. O(sum over edges of d+(v)) probes.
std::uint64_t count_triangles_stamped(const Csr& oriented_dag);

/// OpenMP-parallel forward algorithm (dynamic scheduling over source
/// vertices) — the multicore CPU baseline the GPU codes are measured
/// against in practice. Falls back to the serial path without OpenMP.
std::uint64_t count_triangles_forward_parallel(const Csr& oriented_dag);

/// Intersection size of two sorted ranges (exposed for tests and the
/// incremental-edge property test).
std::uint64_t sorted_intersection_size(std::span<const VertexId> a,
                                       std::span<const VertexId> b);

}  // namespace tcgpu::graph
