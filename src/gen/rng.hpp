// Deterministic, seed-stable RNG for dataset synthesis.
//
// All generators route randomness through SplitMix64 so a (generator, seed,
// scale) triple reproduces the identical graph on any platform — the
// property every test and benchmark in this repo depends on.
#pragma once

#include <cstdint>

namespace tcgpu::gen {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform(std::uint64_t n) { return next() % n; }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform_real() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace tcgpu::gen
