// The 19-dataset registry mirroring Table II of the paper.
//
// SNAP downloads are unavailable offline, so each dataset is mapped to a
// seeded synthetic generator matched on the axes the paper's analysis uses:
// vertex count, edge count, average degree, and graph family (which fixes
// the degree-distribution shape). generate_dataset() also supports uniform
// downscaling via an edge cap, preserving the avg-degree ordering across
// datasets — the x-axis of Figures 11-15 — so crossover positions survive
// scaling. See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/coo.hpp"

namespace tcgpu::gen {

enum class Family {
  kSocial,         // RMAT, heavy power-law tail
  kWeb,            // RMAT, stronger skew
  kCitation,       // Chung-Lu, milder tail
  kCollaboration,  // Chung-Lu
  kRoad,           // jittered lattice
  kCommunication,  // star-burst hubs
  kP2p,            // Chung-Lu, steep exponent / low clustering
};

const char* to_string(Family f);

struct DatasetSpec {
  std::string name;
  Family family;
  std::uint64_t paper_vertices;  ///< Table II "vertices"
  std::uint64_t paper_edges;     ///< Table II "edges"
  double paper_avg_degree;       ///< Table II "avg degree"
};

/// The 19 datasets in the paper's order (increasing edge count).
std::span<const DatasetSpec> paper_datasets();

/// Lookup by (case-sensitive) name; throws std::out_of_range if unknown.
const DatasetSpec& dataset_by_name(const std::string& name);

/// Downscale factor applied when the edge cap bites: min(1, cap/E_paper).
double dataset_scale(const DatasetSpec& spec, std::uint64_t max_edges);

/// Generates the (possibly downscaled) synthetic stand-in. The result is a
/// raw edge list; run it through graph::clean_edges + build_undirected_csr.
graph::Coo generate_dataset(const DatasetSpec& spec, std::uint64_t max_edges,
                            std::uint64_t seed);

}  // namespace tcgpu::gen
