#include "gen/paper_datasets.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "gen/chung_lu.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/star_burst.hpp"

namespace tcgpu::gen {

const char* to_string(Family f) {
  switch (f) {
    case Family::kSocial: return "social";
    case Family::kWeb: return "web";
    case Family::kCitation: return "citation";
    case Family::kCollaboration: return "collaboration";
    case Family::kRoad: return "road";
    case Family::kCommunication: return "communication";
    case Family::kP2p: return "p2p";
  }
  return "?";
}

namespace {

// Table II, in the paper's order of increasing edge count.
const std::array<DatasetSpec, 19> kDatasets = {{
    {"As-Caida", Family::kCommunication, 16'000, 43'000, 5.2},
    {"P2p-Gnutella31", Family::kP2p, 33'000, 119'000, 7.0},
    {"Email-EuAll", Family::kCommunication, 39'000, 151'000, 7.7},
    {"Soc-Slashdot0922", Family::kSocial, 53'000, 475'000, 17.7},
    {"Web-NotreDame", Family::kWeb, 163'000, 928'000, 11.3},
    {"Com-Dblp", Family::kCollaboration, 273'000, 1'000'000, 7.3},
    {"Amazon0601", Family::kCollaboration, 391'000, 2'400'000, 12.4},
    {"RoadNet-CA", Family::kRoad, 1'600'000, 2'400'000, 2.9},
    {"Wiki-Talk", Family::kCommunication, 626'000, 2'800'000, 9.2},
    {"Web-BerkStan", Family::kWeb, 645'000, 6'600'000, 20.4},
    {"As-Skitter", Family::kSocial, 1'400'000, 10'800'000, 14.7},
    {"Cit-Patents", Family::kCitation, 3'100'000, 15'800'000, 10.2},
    {"Soc-Pokec", Family::kSocial, 1'400'000, 22'100'000, 30.1},
    {"Sx-Stackoverflow", Family::kCommunication, 1'900'000, 27'500'000, 28.0},
    {"Com-Lj", Family::kSocial, 3'200'000, 33'800'000, 21.1},
    {"Soc-LiveJ", Family::kSocial, 3'700'000, 41'700'000, 22.0},
    {"Com-Orkut", Family::kSocial, 3'000'000, 117'000'000, 77.9},
    {"Twitter", Family::kSocial, 39'000'000, 1'200'000'000, 60.4},
    {"Com-Friendster", Family::kSocial, 51'000'000, 1'800'000'000, 69.0},
}};

std::uint32_t bits_for(std::uint64_t v) {
  std::uint32_t b = 1;
  while ((1ull << b) < v) ++b;
  return b;
}

/// Mixes the dataset name into the seed so two datasets that downscale to
/// identical generator parameters still produce distinct graphs.
std::uint64_t mix_seed(std::uint64_t seed, const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return seed ^ h;
}

}  // namespace

std::span<const DatasetSpec> paper_datasets() { return kDatasets; }

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& d : kDatasets) {
    if (d.name == name) return d;
  }
  std::string valid;
  for (const auto& d : kDatasets) {
    if (!valid.empty()) valid += ", ";
    valid += d.name;
  }
  throw std::out_of_range("unknown dataset '" + name + "' (valid: " + valid + ")");
}

double dataset_scale(const DatasetSpec& spec, std::uint64_t max_edges) {
  if (max_edges == 0 || spec.paper_edges <= max_edges) return 1.0;
  return static_cast<double>(max_edges) / static_cast<double>(spec.paper_edges);
}

graph::Coo generate_dataset(const DatasetSpec& spec, std::uint64_t max_edges,
                            std::uint64_t seed) {
  const double scale = dataset_scale(spec, max_edges);
  const auto target_e = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(static_cast<double>(spec.paper_edges) * scale));
  const auto target_v = std::max<std::uint64_t>(
      64,
      static_cast<std::uint64_t>(static_cast<double>(spec.paper_vertices) * scale));

  const std::uint64_t ds_seed = mix_seed(seed, spec.name);
  switch (spec.family) {
    case Family::kSocial:
    case Family::kWeb: {
      RmatParams p;
      // Oversize the Kronecker id space, then fold onto the exact vertex
      // target (RMAT would otherwise leave a skew-dependent share of ids
      // isolated and miss the Table II vertex/degree point).
      p.scale = std::min(31u, bits_for(target_v) + 1);
      p.fold_to = static_cast<graph::VertexId>(target_v);
      p.edges = target_e;
      if (spec.family == Family::kWeb) {
        p.a = 0.65;
        p.b = 0.15;
        p.c = 0.15;
      }
      if (spec.paper_avg_degree > 50.0) {  // Orkut/Twitter-grade skew
        p.a = 0.62;
        p.b = 0.17;
        p.c = 0.17;
      }
      return generate_rmat(p, ds_seed);
    }
    case Family::kCitation:
    case Family::kCollaboration:
    case Family::kP2p: {
      ChungLuParams p;
      p.vertices = static_cast<graph::VertexId>(target_v);
      p.edges = target_e;
      p.exponent = spec.family == Family::kP2p ? 3.0 : 2.5;
      return generate_chung_lu(p, ds_seed);
    }
    case Family::kRoad: {
      RoadParams p;
      p.vertices = static_cast<graph::VertexId>(target_v);
      const double ratio =
          static_cast<double>(target_e) / static_cast<double>(target_v);
      p.diagonal_probability = 0.03;
      p.keep_probability =
          std::clamp((ratio - p.diagonal_probability) / 2.0, 0.3, 1.0);
      return generate_road(p, ds_seed);
    }
    case Family::kCommunication: {
      StarBurstParams p;
      p.vertices = static_cast<graph::VertexId>(target_v);
      p.edges = target_e;
      return generate_star_burst(p, ds_seed);
    }
  }
  throw std::logic_error("generate_dataset: unhandled family");
}

}  // namespace tcgpu::gen
