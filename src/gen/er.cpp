#include "gen/er.hpp"

#include <stdexcept>

#include "gen/common.hpp"

namespace tcgpu::gen {

graph::Coo generate_er(graph::VertexId vertices, std::uint64_t edges,
                       std::uint64_t seed) {
  if (vertices < 2) throw std::invalid_argument("er: need >= 2 vertices");
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(vertices) * (vertices - 1) / 2;
  if (edges > max_edges) throw std::invalid_argument("er: too many edges requested");
  SplitMix64 rng(seed);
  auto sample = [vertices](SplitMix64& r) -> graph::Edge {
    return {static_cast<graph::VertexId>(r.uniform(vertices)),
            static_cast<graph::VertexId>(r.uniform(vertices))};
  };
  return sample_distinct_edges(vertices, edges, edges * 256 + 4096, sample, rng);
}

}  // namespace tcgpu::gen
