#include "gen/rng.hpp"

namespace tcgpu::gen {}
