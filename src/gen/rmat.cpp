#include "gen/rmat.hpp"

#include <algorithm>
#include <stdexcept>

#include "gen/common.hpp"

namespace tcgpu::gen {

graph::Coo generate_rmat(const RmatParams& p, std::uint64_t seed) {
  if (p.a + p.b + p.c >= 1.0) {
    throw std::invalid_argument("rmat: a+b+c must be < 1");
  }
  if (p.scale == 0 || p.scale > 31) {
    throw std::invalid_argument("rmat: scale must be in [1, 31]");
  }
  const auto space = static_cast<graph::VertexId>(1u << p.scale);
  const graph::VertexId n = p.fold_to == 0 ? space : std::min(space, p.fold_to);

  auto sample = [&p](SplitMix64& rng) -> graph::Edge {
    std::uint32_t u = 0, v = 0;
    for (std::uint32_t level = 0; level < p.scale; ++level) {
      // Jitter the quadrant probabilities per level, seeded by the draw
      // stream itself (stays deterministic).
      const double ja = p.a * (1.0 + p.noise * (rng.uniform_real() - 0.5));
      const double jb = p.b * (1.0 + p.noise * (rng.uniform_real() - 0.5));
      const double jc = p.c * (1.0 + p.noise * (rng.uniform_real() - 0.5));
      const double sum = ja + jb + jc + (1.0 - p.a - p.b - p.c);
      const double r = rng.uniform_real() * sum;
      u <<= 1;
      v <<= 1;
      if (r < ja) {
        // top-left
      } else if (r < ja + jb) {
        v |= 1;
      } else if (r < ja + jb + jc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (p.fold_to != 0) {
      u %= p.fold_to;
      v %= p.fold_to;
    }
    return {u, v};
  };

  SplitMix64 rng(seed);
  return sample_distinct_edges(n, p.edges, p.edges * 64 + 1024, sample, rng);
}

}  // namespace tcgpu::gen
