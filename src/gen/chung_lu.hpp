// Chung-Lu style power-law generator: vertices receive expected degrees
// drawn from a truncated power law, and edges are sampled proportional to
// the product of endpoint weights (via a configuration-model pool). Used
// for the citation / collaboration / p2p families, whose degree tails are
// milder than the RMAT social graphs.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tcgpu::gen {

struct ChungLuParams {
  graph::VertexId vertices = 1 << 16;
  std::uint64_t edges = 1 << 18;
  double exponent = 2.5;   ///< power-law exponent of the weight distribution
  std::uint32_t min_weight = 1;
};

graph::Coo generate_chung_lu(const ChungLuParams& p, std::uint64_t seed);

}  // namespace tcgpu::gen
