#include "gen/star_burst.hpp"

#include <algorithm>
#include <stdexcept>

#include "gen/common.hpp"

namespace tcgpu::gen {

graph::Coo generate_star_burst(const StarBurstParams& p, std::uint64_t seed) {
  if (p.vertices < 8) throw std::invalid_argument("star_burst: need >= 8 vertices");
  const auto hubs = std::max<graph::VertexId>(
      2, static_cast<graph::VertexId>(p.vertices * p.hub_fraction));

  SplitMix64 rng(seed);
  auto sample = [&p, hubs](SplitMix64& r) -> graph::Edge {
    if (r.chance(p.hub_edge_share)) {
      // hub <-> anyone (hubs are ids [0, hubs); skew inside hubs too)
      const auto h = static_cast<graph::VertexId>(
          r.uniform(hubs) * r.uniform(hubs) / std::max<std::uint64_t>(1, hubs));
      const auto other = static_cast<graph::VertexId>(r.uniform(p.vertices));
      return {h, other};
    }
    // peripheral mesh among leaves, biased to nearby ids (weak locality)
    const auto a = static_cast<graph::VertexId>(hubs + r.uniform(p.vertices - hubs));
    const std::uint64_t radius = std::max<std::uint64_t>(64, p.vertices / 64);
    const auto delta = static_cast<std::int64_t>(r.uniform(2 * radius)) -
                       static_cast<std::int64_t>(radius);
    auto b = static_cast<std::int64_t>(a) + delta;
    b = std::clamp<std::int64_t>(b, hubs, static_cast<std::int64_t>(p.vertices) - 1);
    return {a, static_cast<graph::VertexId>(b)};
  };
  return sample_distinct_edges(p.vertices, p.edges, p.edges * 64 + 1024, sample, rng);
}

}  // namespace tcgpu::gen
