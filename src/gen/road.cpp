#include "gen/road.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/rng.hpp"

namespace tcgpu::gen {

graph::Coo generate_road(const RoadParams& p, std::uint64_t seed) {
  if (p.vertices < 4) throw std::invalid_argument("road: need >= 4 vertices");
  const auto side = static_cast<graph::VertexId>(
      std::sqrt(static_cast<double>(p.vertices)));
  const graph::VertexId w = side, h = (p.vertices + side - 1) / side;

  SplitMix64 rng(seed);
  graph::Coo g;
  g.num_vertices = w * h;
  auto at = [w](graph::VertexId x, graph::VertexId y) { return y * w + x; };
  for (graph::VertexId y = 0; y < h; ++y) {
    for (graph::VertexId x = 0; x < w; ++x) {
      if (x + 1 < w && rng.chance(p.keep_probability)) {
        g.edges.emplace_back(at(x, y), at(x + 1, y));
      }
      if (y + 1 < h && rng.chance(p.keep_probability)) {
        g.edges.emplace_back(at(x, y), at(x, y + 1));
      }
      if (x + 1 < w && y + 1 < h && rng.chance(p.diagonal_probability)) {
        g.edges.emplace_back(at(x, y), at(x + 1, y + 1));
      }
    }
  }
  return g;
}

}  // namespace tcgpu::gen
