// R-MAT / Kronecker generator — the standard synthetic model for power-law
// social and web graphs. Produces exactly `edges` distinct undirected edges
// over 2^scale vertices (isolated vertices are compacted away later by
// graph::clean_edges, which is why the achieved vertex count lands below
// 2^scale, like real crawls).
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tcgpu::gen {

struct RmatParams {
  std::uint32_t scale = 16;  ///< id space = 2^scale
  std::uint64_t edges = 1 << 18;
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 - a - b - c
  double noise = 0.1;  ///< per-level parameter jitter (avoids grid artifacts)
  /// When nonzero, sampled ids are folded modulo this value, pinning the
  /// vertex-count target precisely even though the Kronecker id space is a
  /// power of two (used by the Table II registry to hit V while E is capped).
  std::uint32_t fold_to = 0;
};

graph::Coo generate_rmat(const RmatParams& p, std::uint64_t seed);

}  // namespace tcgpu::gen
