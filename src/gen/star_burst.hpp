// Communication-network generator (Email-EuAll / Wiki-Talk / As-Caida
// shape): a small set of hubs attracts most edges, leaves attach to few
// hubs, and a sparse peripheral mesh exists among leaves. Produces the
// extreme degree skew with modest triangle density that stresses the
// workload-imbalance behaviour the paper analyzes.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tcgpu::gen {

struct StarBurstParams {
  graph::VertexId vertices = 1 << 16;
  std::uint64_t edges = 1 << 18;
  double hub_fraction = 0.004;  ///< fraction of vertices that are hubs
  double hub_edge_share = 0.7;  ///< fraction of edges incident to a hub
};

graph::Coo generate_star_burst(const StarBurstParams& p, std::uint64_t seed);

}  // namespace tcgpu::gen
