// Shared helpers for the generators: exact-edge-count sampling.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>

#include "gen/rng.hpp"
#include "graph/coo.hpp"

namespace tcgpu::gen {

/// Draws candidate edges from `sample` until `target_edges` *distinct,
/// non-loop, undirected* edges have been collected (canonicalized u<v), or
/// `max_attempts` draws have been made (guards against generators whose
/// support is smaller than the target). Returns a raw Coo ready for
/// graph::clean_edges (which will find nothing left to remove but also
/// compacts isolated vertices).
graph::Coo sample_distinct_edges(
    graph::VertexId num_vertices, std::uint64_t target_edges,
    std::uint64_t max_attempts,
    const std::function<graph::Edge(SplitMix64&)>& sample, SplitMix64& rng);

}  // namespace tcgpu::gen
