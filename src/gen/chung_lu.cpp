#include "gen/chung_lu.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "gen/common.hpp"

namespace tcgpu::gen {

graph::Coo generate_chung_lu(const ChungLuParams& p, std::uint64_t seed) {
  if (p.vertices < 2) throw std::invalid_argument("chung_lu: need >= 2 vertices");
  if (p.exponent <= 1.0) throw std::invalid_argument("chung_lu: exponent must be > 1");

  SplitMix64 rng(seed);

  // Draw power-law weights w ~ x^(-exponent), truncated at sqrt-ish cap so
  // expected multi-edge rates stay manageable, then build a sampling pool
  // where vertex i appears round(w_i) times.
  const double alpha = 1.0 / (p.exponent - 1.0);
  const double cap = std::max(4.0, std::sqrt(static_cast<double>(p.vertices)) * 4.0);
  std::vector<std::uint32_t> pool;
  pool.reserve(p.vertices * 2);
  for (graph::VertexId v = 0; v < p.vertices; ++v) {
    const double u01 = rng.uniform_real();
    double w = p.min_weight * std::pow(1.0 - u01, -alpha);
    w = std::min(w, cap);
    const auto copies = static_cast<std::uint32_t>(w + 0.5);
    for (std::uint32_t c = 0; c < copies; ++c) pool.push_back(v);
  }
  if (pool.size() < 2) throw std::invalid_argument("chung_lu: degenerate weights");

  auto sample = [&pool](SplitMix64& r) -> graph::Edge {
    const auto i = static_cast<graph::VertexId>(pool[r.uniform(pool.size())]);
    const auto j = static_cast<graph::VertexId>(pool[r.uniform(pool.size())]);
    return {i, j};
  };
  return sample_distinct_edges(p.vertices, p.edges, p.edges * 64 + 1024, sample, rng);
}

}  // namespace tcgpu::gen
