// Road-network generator: a jittered 2-D lattice (avg degree ~3, huge
// diameter, almost no triangles — the RoadNet-CA shape that makes
// low-degree behaviour visible in the study). A small diagonal probability
// injects the few triangles real road networks have.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tcgpu::gen {

struct RoadParams {
  graph::VertexId vertices = 1 << 16;  ///< rounded to a W x H grid
  double keep_probability = 0.92;      ///< fraction of lattice edges kept
  double diagonal_probability = 0.03;  ///< chance of a triangle-forming chord
};

graph::Coo generate_road(const RoadParams& p, std::uint64_t seed);

}  // namespace tcgpu::gen
