// Erdős–Rényi G(n, M): M distinct uniform edges. The no-structure baseline
// used by tests (its expected triangle count is analytic) and by the
// intersection micro-benchmarks.
#pragma once

#include <cstdint>

#include "graph/coo.hpp"

namespace tcgpu::gen {

graph::Coo generate_er(graph::VertexId vertices, std::uint64_t edges,
                       std::uint64_t seed);

}  // namespace tcgpu::gen
