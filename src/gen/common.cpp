#include "gen/common.hpp"

#include <algorithm>

namespace tcgpu::gen {

graph::Coo sample_distinct_edges(
    graph::VertexId num_vertices, std::uint64_t target_edges,
    std::uint64_t max_attempts,
    const std::function<graph::Edge(SplitMix64&)>& sample, SplitMix64& rng) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(target_edges * 2);
  graph::Coo g;
  g.num_vertices = num_vertices;
  g.edges.reserve(target_edges);
  std::uint64_t attempts = 0;
  while (g.edges.size() < target_edges && attempts < max_attempts) {
    ++attempts;
    auto [u, v] = sample(rng);
    if (u == v || u >= num_vertices || v >= num_vertices) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) g.edges.emplace_back(u, v);
  }
  return g;
}

}  // namespace tcgpu::gen
