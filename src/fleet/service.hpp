// fleet::FleetService — the SLO-aware serving front door.
//
// Composition: client -> Scheduler (EDF + per-tenant WFQ, per-tenant
// backpressure) -> dispatcher threads -> serve::QueryService (admission,
// batching, selection) -> fleet::Fleet (cache, placement, device slots) ->
// Engine / MultiDeviceRunner.
//
// The scheduler stage is what the plain service lacks under saturating
// mixed traffic: tenants get weighted fair dispatch shares, deadline
// queries jump bulk work (EDF), a query already past its deadline is shed
// before it costs a kernel, and one tenant's backlog blocks or sheds only
// that tenant. The dispatcher count bounds in-flight queries against the
// inner service, which keeps its own bounded queue nearly empty — ordering
// decisions happen in the scheduler, not a FIFO.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hpp"
#include "fleet/scheduler.hpp"
#include "serve/service.hpp"

namespace tcgpu::fleet {

/// Per-tenant terminal-status accounting (scheduler + service outcomes).
struct TenantStats {
  std::uint64_t submitted = 0;  ///< admitted by the scheduler
  std::uint64_t shed = 0;       ///< refused at the tenant's queue bound
  std::uint64_t ok = 0;         ///< kOk replies
  std::uint64_t expired = 0;    ///< kDeadlineExpired (scheduler or service)
  std::uint64_t errors = 0;     ///< every other non-ok terminal status
};

class FleetService {
 public:
  struct Config {
    std::size_t dispatchers = 2;  ///< concurrent queries fed to the service
    /// Inner service config; `backend` is overwritten with the fleet.
    serve::QueryService::Config service;
    /// Policy for tenants without an explicit set_tenant_policy() call.
    TenantPolicy default_policy;
  };

  /// Borrows the engine and the fleet; both must outlive the service.
  FleetService(framework::Engine& engine, Fleet& fleet, Config cfg);
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Registers one tenant's weight/bound before (or during) traffic.
  void set_tenant_policy(const std::string& tenant, TenantPolicy policy);

  /// Submits one query under its request's tenant ("" = "default"). The
  /// future resolves with a terminal reply; kRejected when the tenant's
  /// queue sheds, kDeadlineExpired when the deadline passes while queued.
  std::future<serve::QueryReply> submit(serve::QueryRequest req);

  /// Stops admission, drains the scheduler, joins dispatchers, shuts the
  /// inner service down. Idempotent; also run by the destructor.
  void shutdown();

  std::map<std::string, TenantStats> tenant_stats() const;
  serve::QueryService& service() { return *service_; }
  Fleet& fleet() { return fleet_; }
  const Config& config() const { return cfg_; }

 private:
  struct Job;

  void dispatcher_loop();

  Fleet& fleet_;
  Config cfg_;
  std::unique_ptr<serve::QueryService> service_;
  Scheduler<std::unique_ptr<Job>> scheduler_;
  std::vector<std::thread> dispatchers_;

  mutable std::mutex mu_;  ///< guards stats_ and stopped_
  std::map<std::string, TenantStats> stats_;
  bool stopped_ = false;
};

}  // namespace tcgpu::fleet
