#include "fleet/service.hpp"

#include <utility>

namespace tcgpu::fleet {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Absolute deadline as a monotone EDF tick (microseconds since the clock
/// epoch); 0 = no deadline.
std::uint64_t deadline_tick(Clock::time_point enqueue, double deadline_ms) {
  if (deadline_ms <= 0.0) return 0;
  const auto abs = enqueue + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(
                                     deadline_ms));
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      abs.time_since_epoch())
                      .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 1;
}

const std::string& tenant_of(const serve::QueryRequest& req) {
  static const std::string kDefault = "default";
  return req.tenant.empty() ? kDefault : req.tenant;
}

}  // namespace

struct FleetService::Job {
  serve::QueryRequest req;
  std::promise<serve::QueryReply> promise;
  Clock::time_point enqueue;
};

FleetService::FleetService(framework::Engine& engine, Fleet& fleet, Config cfg)
    : fleet_(fleet), cfg_(std::move(cfg)), scheduler_(cfg_.default_policy) {
  cfg_.service.backend = &fleet_;
  service_ = std::make_unique<serve::QueryService>(engine, cfg_.service);
  const std::size_t n = std::max<std::size_t>(1, cfg_.dispatchers);
  dispatchers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

FleetService::~FleetService() { shutdown(); }

void FleetService::shutdown() {
  {
    std::lock_guard lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  scheduler_.close();  // dispatchers drain the backlog, then exit
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  service_->shutdown();
}

void FleetService::set_tenant_policy(const std::string& tenant,
                                     TenantPolicy policy) {
  scheduler_.set_policy(tenant, policy);
}

std::future<serve::QueryReply> FleetService::submit(serve::QueryRequest req) {
  auto job = std::make_unique<Job>();
  job->req = std::move(req);
  job->enqueue = Clock::now();
  auto future = job->promise.get_future();

  const std::string tenant = tenant_of(job->req);
  const std::uint64_t tick =
      deadline_tick(job->enqueue, job->req.deadline_ms);

  serve::QueryReply early;
  early.tenant = tenant;
  early.dataset = job->req.dataset.empty()
                      ? (job->req.name.empty() ? "inline" : job->req.name)
                      : job->req.dataset;
  switch (scheduler_.push(tenant, tick, std::move(job))) {
    case AdmitResult::kAdmitted: {
      std::lock_guard lk(mu_);
      ++stats_[tenant].submitted;
      return future;
    }
    case AdmitResult::kShed:
      early.status = serve::QueryStatus::kRejected;
      early.error = "tenant queue full (shed)";
      break;
    case AdmitResult::kClosed:
      early.status = serve::QueryStatus::kShutdown;
      break;
  }
  {
    std::lock_guard lk(mu_);
    ++stats_[tenant].shed;
  }
  // push() consumes the job only on admission, so the promise is still ours.
  job->promise.set_value(std::move(early));
  return future;
}

void FleetService::dispatcher_loop() {
  while (auto item = scheduler_.pop()) {
    Job& job = **item;
    const std::string tenant = tenant_of(job.req);
    const double waited = ms_between(job.enqueue, Clock::now());

    if (job.req.deadline_ms > 0.0 && waited >= job.req.deadline_ms) {
      // Shed before the query costs a prepare or a kernel.
      serve::QueryReply reply;
      reply.status = serve::QueryStatus::kDeadlineExpired;
      reply.error = "deadline passed in scheduler queue";
      reply.dataset = job.req.dataset.empty()
                          ? (job.req.name.empty() ? "inline" : job.req.name)
                          : job.req.dataset;
      reply.tenant = tenant;
      {
        std::lock_guard lk(mu_);
        ++stats_[tenant].expired;
      }
      job.promise.set_value(std::move(reply));
      continue;
    }
    // The inner service re-checks against what is left of the budget.
    if (job.req.deadline_ms > 0.0) job.req.deadline_ms -= waited;

    serve::QueryReply reply = service_->submit(std::move(job.req)).get();
    reply.tenant = tenant;
    {
      std::lock_guard lk(mu_);
      TenantStats& ts = stats_[tenant];
      switch (reply.status) {
        case serve::QueryStatus::kOk: ++ts.ok; break;
        case serve::QueryStatus::kDeadlineExpired: ++ts.expired; break;
        default: ++ts.errors; break;
      }
    }
    job.promise.set_value(std::move(reply));
  }
}

std::map<std::string, TenantStats> FleetService::tenant_stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

}  // namespace tcgpu::fleet
