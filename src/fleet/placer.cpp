#include "fleet/placer.hpp"

#include <algorithm>

namespace tcgpu::fleet {

std::string Placement::describe() const {
  if (!sharded) return "single";
  return "shard" + std::to_string(shards) + ":" + dist::to_string(strategy);
}

Placement Placer::decide(const std::string& algorithm,
                         const serve::CostBreakdown& single,
                         const graph::GraphStats& stats) const {
  Placement best;
  best.cost = selector_.sharded_cost(algorithm, single, 1, stats,
                                     cfg_.interconnect);
  best.single_ms = single.modeled_ms;
  if (cfg_.devices < 2 || single.modeled_ms < cfg_.shard_min_kernel_ms) {
    return best;  // small kernel or no peers: stay on one warm device
  }
  const std::uint32_t widest = std::min(cfg_.devices, cfg_.max_shards);
  for (std::uint32_t k = 2; k <= widest; k *= 2) {
    const serve::PlacementCost c =
        selector_.sharded_cost(algorithm, single, k, stats, cfg_.interconnect);
    // Admissible only when the modeled win over single-device clears the
    // speedup bar; among admissible widths take the cheapest total (strictly
    // cheaper — ties keep the narrower width, fewer devices held).
    if (single.modeled_ms < c.total_ms * cfg_.min_speedup) continue;
    if (c.total_ms < best.cost.total_ms) {
      best.sharded = true;
      best.shards = k;
      best.strategy = cfg_.strategy;
      best.cost = c;
    }
  }
  return best;
}

}  // namespace tcgpu::fleet
