#include "fleet/placer.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::fleet {

std::string Placement::describe() const {
  if (!sharded) return "single";
  std::string label = "shard";
  label += std::to_string(shards);
  label += ':';
  label += dist::to_string(strategy);
  if (cost.hosts > 1) {
    label += ':';
    label += std::to_string(cost.hosts);
    label += 'h';
  }
  return label;
}

Placer::Placer(const serve::Selector& selector, Config cfg)
    : selector_(selector), cfg_(cfg) {
  if (cfg_.hosts == 0 ||
      (cfg_.devices != 0 && cfg_.devices % cfg_.hosts != 0)) {
    throw std::invalid_argument(
        "Placer: devices must be a positive multiple of hosts");
  }
}

serve::PlacementCost Placer::width_cost(const std::string& algorithm,
                                        const serve::CostBreakdown& single,
                                        std::uint32_t devices,
                                        const graph::GraphStats& stats) const {
  if (cfg_.hosts > 1) {
    simt::ClusterSpec cs;
    cs.hosts = cfg_.hosts;
    cs.host.devices = std::max(1u, cfg_.devices / cfg_.hosts);
    cs.host.intra = cfg_.interconnect;
    cs.inter = cfg_.inter;
    return selector_.sharded_cost(algorithm, single, devices, stats, cs);
  }
  return selector_.sharded_cost(algorithm, single, devices, stats,
                                cfg_.interconnect);
}

Placement Placer::decide(const std::string& algorithm,
                         const serve::CostBreakdown& single,
                         const graph::GraphStats& stats) const {
  return decide(algorithm, single, stats, {});
}

Placement Placer::decide(const std::string& algorithm,
                         const serve::CostBreakdown& single,
                         const graph::GraphStats& stats,
                         const std::vector<double>& slot_busy_ms) const {
  // Wait for a width-k placement: the k-th least-busy device's queue (all k
  // devices must be free before the sharded kernel starts). Empty input —
  // the pure, load-free call — waits zero everywhere.
  std::vector<double> busy(slot_busy_ms);
  std::sort(busy.begin(), busy.end());
  const auto wait_ms = [&](std::uint32_t k) {
    if (busy.empty()) return 0.0;
    return busy[std::min<std::size_t>(k, busy.size()) - 1];
  };

  Placement best;
  best.cost = width_cost(algorithm, single, 1, stats);
  best.single_ms = single.modeled_ms;
  double best_score = best.cost.total_ms + wait_ms(1);
  if (cfg_.devices < 2 || single.modeled_ms < cfg_.shard_min_kernel_ms) {
    return best;  // small kernel or no peers: stay on one warm device
  }
  const std::uint32_t widest = std::min(cfg_.devices, cfg_.max_shards);
  for (std::uint32_t k = 2; k <= widest; k *= 2) {
    const serve::PlacementCost c = width_cost(algorithm, single, k, stats);
    // Admissible only when the modeled win over single-device clears the
    // speedup bar; among admissible widths take the cheapest total (strictly
    // cheaper — ties keep the narrower width, fewer devices held).
    if (single.modeled_ms < c.total_ms * cfg_.min_speedup) continue;
    const double score = c.total_ms + wait_ms(k);
    if (score < best_score) {
      best.sharded = true;
      best.shards = k;
      best.strategy = cfg_.strategy;
      best.cost = c;
      best_score = score;
    }
  }
  return best;
}

}  // namespace tcgpu::fleet
