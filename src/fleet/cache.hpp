// fleet::ResultCache — versioned triangle-count memoization.
//
// A count is a pure function of (graph key, graph version, hint, algorithm):
// the engine validates every run against the CPU reference and versions are
// bumped by exactly one writer (the stream layer's commit), so a cached
// entry can be replayed verbatim until its graph mutates. Invalidation is
// composed with stream versioning twice over — belt and braces:
//
//   * structurally, a mutated graph is queried at its NEW version, which is
//     a different key and can never hit a stale entry;
//   * explicitly, ExecutionBackend::invalidate(key) (called on every commit)
//     drops all versions of the key, so stale entries do not linger and a
//     version number reused across a service restart cannot resurrect them.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "serve/selector.hpp"

namespace tcgpu::fleet {

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;  ///< entries dropped by invalidate()
};

class ResultCache {
 public:
  struct Entry {
    std::uint64_t triangles = 0;
    bool valid = false;
  };

  /// Returns true and fills `out` on a hit; counts the miss otherwise.
  bool lookup(const std::string& key, std::uint64_t version, serve::Hint hint,
              const std::string& algorithm, Entry* out) {
    std::lock_guard lk(mu_);
    const auto it = entries_.find(Key{key, version, hint, algorithm});
    if (it == entries_.end()) {
      ++counters_.misses;
      return false;
    }
    ++counters_.hits;
    *out = it->second;
    return true;
  }

  void store(const std::string& key, std::uint64_t version, serve::Hint hint,
             const std::string& algorithm, Entry entry) {
    std::lock_guard lk(mu_);
    entries_[Key{key, version, hint, algorithm}] = entry;
  }

  /// Drops every entry of `key`, all versions/hints/algorithms. Returns how
  /// many were dropped.
  std::size_t invalidate(const std::string& key) {
    std::lock_guard lk(mu_);
    std::size_t dropped = 0;
    const auto lo = entries_.lower_bound(
        Key{key, 0, serve::Hint::kAuto, std::string{}});
    auto it = lo;
    while (it != entries_.end() && std::get<0>(it->first) == key) {
      it = entries_.erase(it);
      ++dropped;
    }
    counters_.invalidations += dropped;
    return dropped;
  }

  CacheCounters counters() const {
    std::lock_guard lk(mu_);
    return counters_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    return entries_.size();
  }

 private:
  using Key = std::tuple<std::string, std::uint64_t, serve::Hint, std::string>;

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  CacheCounters counters_;
};

}  // namespace tcgpu::fleet
