// fleet::Placer — cost-model-driven single-vs-sharded placement.
//
// Extends the selector's question ("which kernel?") with the fleet's
// ("across how many devices?"). For the chosen kernel it compares the
// single-device modeled time against Selector::sharded_cost at each
// admissible shard width (2, 4, ... up to the fleet size): the sub-linear
// kernel speedup of an even 1/k work split against the interconnect's ghost
// scatter + count all-reduce. Small graphs stay on one warm device — their
// kernels finish before the first ghost byte would land — and only graphs
// whose single-device time clears shard_min_kernel_ms AND whose modeled
// sharded time wins by min_speedup shard out.
//
// Determinism contract: decide() is a pure function of (stats, single-device
// score, config) — never of device load or arrival order — so placement
// tables are reproducible across worker counts and pinnable in CI exactly
// like the selector's decision table.
#pragma once

#include <cstdint>
#include <string>

#include "dist/partition.hpp"
#include "graph/stats.hpp"
#include "serve/selector.hpp"
#include "simt/gpu_spec.hpp"

namespace tcgpu::fleet {

struct Placement {
  bool sharded = false;
  std::uint32_t shards = 1;  ///< 1 when !sharded
  dist::PartitionStrategy strategy = dist::PartitionStrategy::kRange;
  serve::PlacementCost cost;  ///< modeled cost of the decision taken
  double single_ms = 0.0;     ///< the single-device alternative

  /// Stable label for tables and CI pinning: "single" or "shard<k>:<strat>".
  std::string describe() const;
};

class Placer {
 public:
  struct Config {
    std::uint32_t devices = 1;    ///< fleet size (shard widths stay <= this)
    std::uint32_t max_shards = 8; ///< cap independent of fleet size
    dist::PartitionStrategy strategy = dist::PartitionStrategy::kRange;
    simt::InterconnectSpec interconnect = simt::InterconnectSpec::nvlink();
    /// Sharding is inadmissible below this single-device modeled time —
    /// launch + scatter latency dominates small kernels no matter what the
    /// model says about the work term. 50us sits above the modeled NVLink
    /// round-trip floor (~4us of per-message latency plus the all-reduce)
    /// at the repo's default edge cap; tests set 0 to force sharding.
    double shard_min_kernel_ms = 0.05;
    /// Required modeled speedup (single / sharded total) before sharding.
    double min_speedup = 1.2;
  };

  /// Borrows the selector (for sharded_cost); it must outlive the placer.
  Placer(const serve::Selector& selector, Config cfg)
      : selector_(selector), cfg_(cfg) {}

  /// Picks the cheapest admissible placement of `algorithm` (already chosen
  /// by the selector, scored as `single`) for a graph with these stats.
  Placement decide(const std::string& algorithm,
                   const serve::CostBreakdown& single,
                   const graph::GraphStats& stats) const;

  const Config& config() const { return cfg_; }

 private:
  const serve::Selector& selector_;
  Config cfg_;
};

}  // namespace tcgpu::fleet
