// fleet::Placer — cost-model-driven single-vs-sharded placement.
//
// Extends the selector's question ("which kernel?") with the fleet's
// ("across how many devices?"). For the chosen kernel it compares the
// single-device modeled time against Selector::sharded_cost at each
// admissible shard width (2, 4, ... up to the fleet size): the sub-linear
// kernel speedup of an even 1/k work split against the interconnect's ghost
// scatter + count all-reduce. Small graphs stay on one warm device — their
// kernels finish before the first ghost byte would land — and only graphs
// whose single-device time clears shard_min_kernel_ms AND whose modeled
// sharded time wins by min_speedup shard out.
//
// Determinism contract: decide() is a pure function of (stats, single-device
// score, config) — never of device load or arrival order — so placement
// tables are reproducible across worker counts and pinnable in CI exactly
// like the selector's decision table. The load-aware overload is the
// explicit opt-out: it additionally charges each width the modeled wait for
// its devices to drain, trading the reproducible table for queueing-aware
// decisions (with an all-idle fleet it reduces to the pure function).
//
// On a cluster (Config::hosts > 1) widths are priced through the selector's
// two-level overload: a width that fits one host pays only the intra link,
// identical to the flat model, while wider placements pay the inter-host
// link for the ghost share and all-reduce hops that cross a boundary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dist/partition.hpp"
#include "graph/stats.hpp"
#include "serve/selector.hpp"
#include "simt/gpu_spec.hpp"

namespace tcgpu::fleet {

struct Placement {
  bool sharded = false;
  std::uint32_t shards = 1;  ///< 1 when !sharded
  dist::PartitionStrategy strategy = dist::PartitionStrategy::kRange;
  serve::PlacementCost cost;  ///< modeled cost of the decision taken
  double single_ms = 0.0;     ///< the single-device alternative

  /// Stable label for tables and CI pinning: "single" or "shard<k>:<strat>",
  /// with ":<h>h" appended when the placement crosses host boundaries
  /// ("shard8:range:2h") — single-host labels are unchanged from the
  /// pre-cluster placer.
  std::string describe() const;
};

class Placer {
 public:
  struct Config {
    std::uint32_t devices = 1;    ///< fleet size (shard widths stay <= this)
    std::uint32_t max_shards = 8; ///< cap independent of fleet size
    dist::PartitionStrategy strategy = dist::PartitionStrategy::kRange;
    simt::InterconnectSpec interconnect = simt::InterconnectSpec::nvlink();
    /// Sharding is inadmissible below this single-device modeled time —
    /// launch + scatter latency dominates small kernels no matter what the
    /// model says about the work term. 50us sits above the modeled NVLink
    /// round-trip floor (~4us of per-message latency plus the all-reduce)
    /// at the repo's default edge cap; tests set 0 to force sharding.
    double shard_min_kernel_ms = 0.05;
    /// Required modeled speedup (single / sharded total) before sharding.
    double min_speedup = 1.2;
    /// Hosts the fleet's devices spread over (contiguous blocks of
    /// devices / hosts). 1 = flat single-host pricing, bit-identical to the
    /// pre-cluster placer; > 1 prices each width on the two-level model
    /// (`interconnect` within a host, `inter` between hosts). Must divide
    /// `devices`.
    std::uint32_t hosts = 1;
    simt::InterconnectSpec inter = simt::InterconnectSpec::ib_edr();
  };

  /// Borrows the selector (for sharded_cost); it must outlive the placer.
  /// Throws std::invalid_argument when hosts doesn't divide devices.
  Placer(const serve::Selector& selector, Config cfg);

  /// Picks the cheapest admissible placement of `algorithm` (already chosen
  /// by the selector, scored as `single`) for a graph with these stats.
  Placement decide(const std::string& algorithm,
                   const serve::CostBreakdown& single,
                   const graph::GraphStats& stats) const;

  /// Load-aware variant: adds to each width's score the modeled wait for
  /// that many devices to drain — slot_busy_ms[i] is device i's queued
  /// kernel time, and a width-k placement waits for the k-th least-busy
  /// device. Admissibility (shard_min_kernel_ms, min_speedup) still uses
  /// load-free modeled times, so load shifts choices only among already
  /// admissible widths. With an all-idle fleet this is exactly decide().
  Placement decide(const std::string& algorithm,
                   const serve::CostBreakdown& single,
                   const graph::GraphStats& stats,
                   const std::vector<double>& slot_busy_ms) const;

  const Config& config() const { return cfg_; }

 private:
  serve::PlacementCost width_cost(const std::string& algorithm,
                                  const serve::CostBreakdown& single,
                                  std::uint32_t devices,
                                  const graph::GraphStats& stats) const;

  const serve::Selector& selector_;
  Config cfg_;
};

}  // namespace tcgpu::fleet
