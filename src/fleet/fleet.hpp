// fleet::Fleet — the multi-GPU execution backend.
//
// Plugs into serve::QueryService through serve::ExecutionBackend and unifies
// the serving and dist layers: every resolved query passes through
//
//   1. the result cache (cache.hpp) — a repeat of a (graph, version, hint,
//      kernel) question replays the validated count without touching a
//      device; stream version bumps invalidate (Fleet::invalidate);
//   2. the placer (placer.hpp) — single warm device vs sharding across the
//      modeled interconnect, latched per (graph key, version) so placement
//      tables are deterministic and CI-pinnable like selector picks;
//   3. dispatch — single-device runs bind to the slot already holding the
//      graph's image (else the least-busy slot) and charge it the exact
//      bytes the engine accounted; sharded runs go through a pooled
//      dist::MultiDeviceRunner per width (baseline measurement off: the
//      serving path must not pay an extra full kernel per query) and charge
//      each participating slot its shard's kernel time.
//
// With Config::devices == 1 every query takes the single-device path on
// slot 0 through the same Engine::run a backend-less QueryService calls —
// counts, picks and KernelStats are bit-identical to the legacy path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dist/runner.hpp"
#include "fleet/cache.hpp"
#include "fleet/placer.hpp"
#include "fleet/slot.hpp"
#include "framework/engine.hpp"
#include "serve/backend.hpp"
#include "serve/selector.hpp"

namespace tcgpu::fleet {

struct FleetCounters {
  std::uint64_t single_runs = 0;   ///< queries executed on one device
  std::uint64_t sharded_runs = 0;  ///< queries executed split across devices
  std::uint64_t cache_hits = 0;    ///< queries answered without a kernel
  std::uint64_t invalidations = 0; ///< invalidate() calls (version bumps)
};

class Fleet : public serve::ExecutionBackend {
 public:
  struct Config {
    std::uint32_t devices = 1;
    simt::InterconnectSpec interconnect = simt::InterconnectSpec::nvlink();
    dist::PartitionStrategy strategy = dist::PartitionStrategy::kRange;
    std::uint32_t max_shards = 8;
    /// Placer admissibility knobs (see Placer::Config).
    double shard_min_kernel_ms = 0.05;
    double min_speedup = 1.2;
    bool result_cache = true;
    /// Per-device image budget; 0 = framework::device_budget_bytes(spec).
    std::uint64_t device_capacity_bytes = 0;
    /// Hosts the devices spread over (contiguous blocks of devices / hosts;
    /// must divide devices). 1 = flat single-host fleet, bit-identical to
    /// the pre-cluster behavior; > 1 prices placements on the two-level
    /// model (`interconnect` within a host, `inter` between) and runs
    /// cross-host shards through the cluster-aware MultiDeviceRunner.
    std::uint32_t hosts = 1;
    simt::InterconnectSpec inter = simt::InterconnectSpec::ib_edr();
    /// Opt-in load-aware placement: fold each slot's queued busy_ms into
    /// decide() (see Placer). Off by default — placements stay a pure
    /// function of (stats, config) and the placement table stays pinnable.
    bool load_aware = false;
  };

  /// Borrows the engine (it must outlive the fleet). The placement cost
  /// model runs on the fleet's own Selector instance over the engine's spec
  /// — placement must not wobble with the service's online refinement.
  Fleet(framework::Engine& engine, Config cfg);

  serve::ExecutionOutcome execute(const serve::ExecutionRequest& req) override;
  void invalidate(const std::string& key) override;

  /// The latched (graph key, version) -> placement table, sorted — what
  /// bench/serve_throughput --fleet prints and CI pins. Version-0 entries
  /// print as the bare key, later versions as "key@vN".
  std::vector<std::pair<std::string, std::string>> placement_table() const;

  /// Snapshot of the device slots (residency, busy time, runs).
  std::vector<DeviceSlot> slots() const;

  FleetCounters counters() const;
  CacheCounters cache_counters() const { return cache_.counters(); }
  const Config& config() const { return cfg_; }

 private:
  serve::ExecutionOutcome run_single(const serve::ExecutionRequest& req);
  serve::ExecutionOutcome run_sharded(const serve::ExecutionRequest& req,
                                      const Placement& placement);
  Placement placement_for(const serve::ExecutionRequest& req);
  dist::MultiDeviceRunner& runner_for(std::uint32_t shards);

  framework::Engine& engine_;
  Config cfg_;
  serve::Selector selector_;  ///< placement scoring only (no refinement)
  Placer placer_;
  ResultCache cache_;

  mutable std::mutex mu_;  ///< guards slots_, placements_, runners_, counters_
  std::vector<DeviceSlot> slots_;
  std::map<std::pair<std::string, std::uint64_t>, Placement> placements_;
  std::map<std::uint32_t, std::unique_ptr<dist::MultiDeviceRunner>> runners_;
  FleetCounters counters_;
};

}  // namespace tcgpu::fleet
