#include "fleet/fleet.hpp"

#include <algorithm>
#include <numeric>

#include "framework/capacity.hpp"

namespace tcgpu::fleet {

Fleet::Fleet(framework::Engine& engine, Config cfg)
    : engine_(engine),
      cfg_(cfg),
      selector_(serve::Selector::Config{engine.config().spec, /*refine=*/false}),
      placer_(selector_,
              Placer::Config{std::max(1u, cfg.devices), cfg.max_shards,
                             cfg.strategy, cfg.interconnect,
                             cfg.shard_min_kernel_ms, cfg.min_speedup,
                             std::max(1u, cfg.hosts), cfg.inter}) {
  const std::uint32_t n = std::max(1u, cfg_.devices);
  const std::uint64_t capacity =
      cfg_.device_capacity_bytes != 0
          ? cfg_.device_capacity_bytes
          : framework::device_budget_bytes(engine_.config().spec);
  slots_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    slots_[i].id = i;
    slots_[i].capacity_bytes = capacity;
  }
}

Placement Fleet::placement_for(const serve::ExecutionRequest& req) {
  const auto key = std::make_pair(req.key, req.version);
  std::vector<double> busy;
  {
    std::lock_guard lk(mu_);
    const auto it = placements_.find(key);
    if (it != placements_.end()) return it->second;
    if (cfg_.load_aware) {
      busy.reserve(slots_.size());
      for (const DeviceSlot& s : slots_) busy.push_back(s.busy_ms);
    }
  }
  // Latched on first decision per (graph, version) — like selector picks —
  // and computed from stats + config only (never load), so the table is
  // reproducible across worker counts and arrival orders. The opt-in
  // load-aware mode folds a snapshot of the slots' queued time into that
  // first decision instead (the latch still holds afterwards).
  const Placement pl =
      placer_.decide(req.algorithm, req.modeled, req.graph->stats, busy);
  std::lock_guard lk(mu_);
  return placements_.emplace(key, pl).first->second;
}

dist::MultiDeviceRunner& Fleet::runner_for(std::uint32_t shards) {
  std::lock_guard lk(mu_);
  auto& runner = runners_[shards];
  if (!runner) {
    dist::MultiRunConfig rc;
    rc.num_devices = shards;
    rc.strategy = cfg_.strategy;
    rc.interconnect = cfg_.interconnect;
    rc.measure_baseline = false;  // the serving path never pays an extra run
    // On a cluster, a width that spills past one host's devices runs over
    // the two-level comm model. Hosts fill in contiguous blocks, so the
    // shard count per host is the width split over the fewest power-of-two
    // hosts that fit it (widths are powers of two; a power-of-two host
    // count always divides one).
    if (cfg_.hosts > 1) {
      const std::uint32_t per_host =
          std::max(1u, std::max(1u, cfg_.devices) / cfg_.hosts);
      const std::uint32_t need = (shards + per_host - 1) / per_host;
      std::uint32_t h = 1;
      while (h < need) h <<= 1;
      rc.hosts = std::min(h, shards);
      rc.inter = cfg_.inter;
    }
    runner = std::make_unique<dist::MultiDeviceRunner>(engine_, rc);
  }
  return *runner;
}

serve::ExecutionOutcome Fleet::run_single(const serve::ExecutionRequest& req) {
  std::uint32_t slot_id = 0;
  {
    // Bind to the slot already holding this graph's image (warm), else the
    // least-busy one (ties to the lowest id).
    std::lock_guard lk(mu_);
    const DeviceSlot* best = nullptr;
    for (const DeviceSlot& s : slots_) {
      if (s.holds(req.key)) {
        best = &s;
        break;
      }
    }
    if (best == nullptr) {
      for (const DeviceSlot& s : slots_) {
        if (best == nullptr || s.busy_ms < best->busy_ms) best = &s;
      }
    }
    slot_id = best->id;
  }

  serve::ExecutionOutcome out;
  out.run = engine_.run(req.algorithm, req.graph);

  std::lock_guard lk(mu_);
  DeviceSlot& slot = slots_[slot_id];
  // Residency is charged only for durable images — ones whose pooled name
  // IS the request key (registry datasets, streamed heads). One-shot graphs
  // (inline queries, version-pinned snapshots) release their upload when
  // their batch ends; charging them would leave the slot holding bytes the
  // engine already freed.
  if (req.graph->name == req.key) {
    const std::uint64_t bytes = engine_.device_image_bytes(req.graph);
    if (bytes != 0) slot.admit(req.key, bytes);
  }
  slot.busy_ms += out.run.result.total.time_ms;
  ++slot.runs;
  ++counters_.single_runs;
  return out;
}

serve::ExecutionOutcome Fleet::run_sharded(const serve::ExecutionRequest& req,
                                           const Placement& placement) {
  dist::MultiDeviceRunner& runner = runner_for(placement.shards);
  const dist::MultiRunResult mr = runner.run(req.algorithm, req.graph);

  serve::ExecutionOutcome out;
  out.run.algorithm = mr.algorithm;
  out.run.dataset = mr.dataset;
  out.run.result.triangles = mr.triangles;
  out.run.result.total = mr.combined;
  out.run.valid = mr.valid;
  out.sharded = true;
  out.devices = placement.shards;
  out.comm_ms = mr.comm_ms;

  // Charge each participating device its shard's kernel time. Binding picks
  // the least-busy slots (ties to the lowest id); it never feeds back into
  // placement, which is load-independent by contract.
  std::lock_guard lk(mu_);
  std::vector<std::uint32_t> order(slots_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return slots_[a].busy_ms < slots_[b].busy_ms;
                   });
  const std::size_t width =
      std::min<std::size_t>(mr.devices.size(), order.size());
  for (std::size_t i = 0; i < width; ++i) {
    DeviceSlot& slot = slots_[order[i]];
    slot.busy_ms += mr.devices[i].stats.time_ms;
    ++slot.runs;
  }
  ++counters_.sharded_runs;
  return out;
}

serve::ExecutionOutcome Fleet::execute(const serve::ExecutionRequest& req) {
  const Placement placement = placement_for(req);
  if (cfg_.result_cache) {
    ResultCache::Entry hit;
    if (cache_.lookup(req.key, req.version, req.hint, req.algorithm, &hit)) {
      serve::ExecutionOutcome out;
      out.cache_hit = true;
      out.run.algorithm = req.algorithm;
      out.run.dataset = req.graph ? req.graph->name : req.key;
      out.run.result.triangles = hit.triangles;
      out.run.valid = hit.valid;
      out.sharded = placement.sharded;
      out.devices = placement.shards;
      out.placement = placement.describe();
      std::lock_guard lk(mu_);
      ++counters_.cache_hits;
      return out;
    }
  }

  serve::ExecutionOutcome out =
      placement.sharded ? run_sharded(req, placement) : run_single(req);
  out.placement = placement.describe();
  if (cfg_.result_cache) {
    cache_.store(req.key, req.version, req.hint, req.algorithm,
                 ResultCache::Entry{out.run.result.triangles, out.run.valid});
  }
  return out;
}

void Fleet::invalidate(const std::string& key) {
  cache_.invalidate(key);
  std::lock_guard lk(mu_);
  ++counters_.invalidations;
  for (auto it = placements_.lower_bound(std::make_pair(key, std::uint64_t{0}));
       it != placements_.end() && it->first.first == key;) {
    it = placements_.erase(it);
  }
  for (DeviceSlot& s : slots_) s.drop(key);
}

std::vector<std::pair<std::string, std::string>> Fleet::placement_table()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard lk(mu_);
  out.reserve(placements_.size());
  for (const auto& [key, placement] : placements_) {
    std::string label = key.first;
    if (key.second != 0) {
      label += "@v";
      label += std::to_string(key.second);
    }
    out.emplace_back(std::move(label), placement.describe());
  }
  return out;
}

std::vector<DeviceSlot> Fleet::slots() const {
  std::lock_guard lk(mu_);
  return slots_;
}

FleetCounters Fleet::counters() const {
  std::lock_guard lk(mu_);
  return counters_;
}

}  // namespace tcgpu::fleet
