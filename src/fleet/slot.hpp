// fleet::DeviceSlot — one modeled GPU's serving-time bookkeeping.
//
// The simulator has no real device memory, so a slot tracks what a real
// serving fleet would: which graph images are resident (charged the exact
// bytes framework::Engine accounted for the upload), how much modeled
// kernel time the device has absorbed (the dispatcher's least-loaded
// tiebreak), and an LRU over resident images so admission under a capacity
// budget (framework::device_budget_bytes) evicts the coldest image first.
//
// Thread model: slots are owned by fleet::Fleet and only touched under its
// dispatch mutex — no internal locking.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>

namespace tcgpu::fleet {

struct DeviceSlot {
  std::uint32_t id = 0;
  std::uint64_t capacity_bytes = 0;  ///< device-memory budget (0 = unbounded)
  std::uint64_t resident_bytes = 0;  ///< sum over images_
  double busy_ms = 0.0;              ///< modeled kernel time absorbed
  std::uint64_t runs = 0;            ///< kernels dispatched here
  std::uint64_t evictions = 0;       ///< images dropped to fit the budget

  /// Resident graph images by key ("dataset" / "dataset@vN" / inline hash),
  /// value = accounted device bytes. lru_ front = most recently used.
  std::map<std::string, std::uint64_t> images;

  bool holds(const std::string& key) const { return images.count(key) != 0; }

  /// Marks `key` resident with `bytes` charged, evicting least-recently-used
  /// images while over budget (never the image just admitted). Re-admitting
  /// a resident key refreshes its LRU position and byte charge.
  void admit(const std::string& key, std::uint64_t bytes) {
    const auto it = images.find(key);
    if (it != images.end()) {
      resident_bytes -= it->second;
      it->second = bytes;
      lru_.remove(key);
    } else {
      images.emplace(key, bytes);
    }
    resident_bytes += bytes;
    lru_.push_front(key);
    while (capacity_bytes != 0 && resident_bytes > capacity_bytes &&
           lru_.size() > 1) {
      drop(lru_.back());
    }
  }

  /// Drops one image (no-op for absent keys).
  void drop(const std::string& key) {
    const auto it = images.find(key);
    if (it == images.end()) return;
    resident_bytes -= it->second;
    images.erase(it);
    lru_.remove(key);
    ++evictions;
  }

 private:
  std::list<std::string> lru_;
};

}  // namespace tcgpu::fleet
