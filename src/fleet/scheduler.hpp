// fleet::Scheduler — deadline-aware, tenant-fair dispatch order.
//
// The serve layer's BoundedQueue is one FIFO: fine for a single tenant, but
// under saturating mixed traffic one chatty client starves everyone else and
// deadline-critical queries wait behind bulk scans. The scheduler replaces
// the FIFO with per-tenant bounded queues and a two-level pop policy:
//
//   1. EDF — among queue heads, any item carrying a deadline dispatches in
//      earliest-absolute-deadline order before all non-deadline items; a
//      query that is about to expire does not wait behind bulk work.
//   2. WFQ — among non-deadline heads, start-time fair queueing: each item
//      is stamped a virtual finish tag (tenant's virtual time + 1/weight) at
//      admission, and pop() takes the smallest tag. Over any saturated
//      window tenants receive dispatch slots proportional to their weights,
//      regardless of arrival pattern or burst size.
//
// Backpressure is per tenant (shed or block when that tenant's queue is
// full), so one tenant's backlog can never push another's work out. Ties
// break deterministically (tag, then arrival sequence) — dispatch order is
// a pure function of the admission sequence, independent of thread timing.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace tcgpu::fleet {

enum class AdmitResult {
  kAdmitted,
  kShed,    ///< tenant queue full in shedding mode
  kClosed,  ///< scheduler no longer accepting
};

/// Per-tenant scheduling policy. Weights are relative (2.0 gets twice the
/// saturated dispatch share of 1.0).
struct TenantPolicy {
  double weight = 1.0;
  std::size_t queue_limit = 64;  ///< per-tenant bound (0 = unbounded)
  bool block_when_full = true;   ///< false: shed at the bound
};

struct TenantCounters {
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t dispatched = 0;
};

template <class T>
class Scheduler {
 public:
  /// `fallback` applies to tenants without an explicit policy.
  explicit Scheduler(TenantPolicy fallback = TenantPolicy{})
      : fallback_(fallback) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers/overrides one tenant's policy (call before traffic for
  /// deterministic shares; safe anytime).
  void set_policy(const std::string& tenant, TenantPolicy policy) {
    std::lock_guard lk(mu_);
    tenant_of(tenant).policy = policy;
  }

  /// Admits one item for `tenant`. `deadline_tick` orders EDF dispatch:
  /// 0 = no deadline (WFQ only); smaller = more urgent (callers pass an
  /// absolute time in any monotone unit). Blocks, sheds, or rejects per the
  /// tenant's policy and the scheduler's open/closed state.
  AdmitResult push(const std::string& tenant, std::uint64_t deadline_tick,
                   T&& item) {
    std::unique_lock lk(mu_);
    if (closed_) return AdmitResult::kClosed;
    Tenant& t = tenant_of(tenant);
    if (t.policy.queue_limit != 0 && t.items.size() >= t.policy.queue_limit) {
      if (!t.policy.block_when_full) {
        ++t.counters.shed;
        return AdmitResult::kShed;
      }
      t.not_full.wait(lk, [&] {
        return closed_ || t.items.size() < t.policy.queue_limit;
      });
      if (closed_) return AdmitResult::kClosed;
    }
    Item it;
    it.deadline_tick = deadline_tick;
    // Start-time fair queueing: a tenant idle while others ran must not have
    // banked credit, so its virtual time restarts at the global floor.
    t.vtime = std::max(t.vtime, vfloor_) + 1.0 / std::max(1e-9, t.policy.weight);
    it.finish_tag = t.vtime;
    it.seq = next_seq_++;
    it.value = std::move(item);
    t.items.push_back(std::move(it));
    ++t.counters.admitted;
    lk.unlock();
    not_empty_.notify_one();
    return AdmitResult::kAdmitted;
  }

  /// Dispatches the next item: EDF over deadline-carrying heads first, then
  /// smallest WFQ finish tag. Blocks while open and empty; nullopt once
  /// closed and drained (the dispatcher shutdown signal).
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || !empty_locked(); });
    Tenant* best = nullptr;
    bool best_deadline = false;
    std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
    double best_tag = std::numeric_limits<double>::infinity();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (auto& [name, t] : tenants_) {
      if (t.items.empty()) continue;
      const Item& head = t.items.front();
      const bool has_deadline = head.deadline_tick != 0;
      const bool wins =
          best == nullptr ||
          (has_deadline
               ? (!best_deadline || head.deadline_tick < best_tick ||
                  (head.deadline_tick == best_tick && head.seq < best_seq))
               : (!best_deadline &&
                  (head.finish_tag < best_tag ||
                   (head.finish_tag == best_tag && head.seq < best_seq))));
      if (wins) {
        best = &t;
        best_deadline = has_deadline;
        best_tick = head.deadline_tick;
        best_tag = head.finish_tag;
        best_seq = head.seq;
      }
    }
    if (best == nullptr) return std::nullopt;  // closed and drained
    Item item = std::move(best->items.front());
    best->items.pop_front();
    ++best->counters.dispatched;
    vfloor_ = std::max(vfloor_, item.finish_tag);
    best->not_full.notify_one();
    return std::move(item.value);
  }

  /// Stops admission; queued items stay poppable, blocked pushers wake.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
      for (auto& [name, t] : tenants_) t.not_full.notify_all();
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lk(mu_);
    std::size_t n = 0;
    for (const auto& [name, t] : tenants_) n += t.items.size();
    return n;
  }

  std::map<std::string, TenantCounters> counters() const {
    std::lock_guard lk(mu_);
    std::map<std::string, TenantCounters> out;
    for (const auto& [name, t] : tenants_) out.emplace(name, t.counters);
    return out;
  }

 private:
  struct Item {
    std::uint64_t deadline_tick = 0;  ///< 0 = no deadline
    double finish_tag = 0.0;          ///< WFQ virtual finish time
    std::uint64_t seq = 0;            ///< admission order, final tiebreak
    T value;
  };

  struct Tenant {
    TenantPolicy policy;
    std::deque<Item> items;
    double vtime = 0.0;
    std::condition_variable not_full;
    TenantCounters counters;
  };

  Tenant& tenant_of(const std::string& name) {
    const auto it = tenants_.find(name);
    if (it != tenants_.end()) return it->second;
    auto& t = tenants_[name];
    t.policy = fallback_;
    return t;
  }

  bool empty_locked() const {
    for (const auto& [name, t] : tenants_) {
      if (!t.items.empty()) return false;
    }
    return true;
  }

  TenantPolicy fallback_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::map<std::string, Tenant> tenants_;
  double vfloor_ = 0.0;        ///< largest dispatched finish tag
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace tcgpu::fleet
