#include "tc/grouptc.hpp"

#include "tc/intersect/binsearch.hpp"

namespace tcgpu::tc {

// Kernel structure (per chunk of n consecutive edges, block of n threads):
//   describe:  one thread per edge computes the search-table / key-list
//              descriptors (with the three §V optimizations) and seeds the
//              key-length array.
//   scan x10:  Hillis-Steele inclusive prefix sum over the key lengths
//              (ping-pong buffers; 10 rounds cover blocks up to 1024).
//              The prefix array turns "global key index" into (edge, offset)
//              with one log2(n) shared-memory search — this is what keeps
//              every thread's workload identical even when individual key
//              lists are tiny, GroupTC's core claim.
//   count:     threads stride the chunk's concatenated keys (coalesced for
//              neighboring threads) and binary search each key in its
//              edge's table.
AlgoResult GroupTcCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                 const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "grouptc_count");

  const std::uint32_t n = cfg_.block;  // chunk size == block size
  const std::uint64_t chunks = (static_cast<std::uint64_t>(g.num_edges) + n - 1) / n;

  simt::LaunchConfig cfg;
  cfg.block = n;
  cfg.group_size = n;
  cfg.grid = pick_grid(spec, chunks, n, n);

  // Shared per-edge descriptors for the chunk (Figure 14's red boxes).
  auto table_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(0, n);
  };
  auto table_hi_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(1, n);
  };
  auto key_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(2, n);
  };
  auto prefix_a = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(3, n);
  };
  auto prefix_b = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(4, n);
  };

  const bool prefix_skip = cfg_.prefix_skip;
  const bool monotone = cfg_.monotone_offset;
  const bool flip = cfg_.table_flip;
  const std::uint32_t flip_ratio = cfg_.flip_ratio;

  // Phase 1: one thread describes one edge of the chunk (coalesced edge_u /
  // edge_v loads since the chunk is consecutive).
  auto describe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t chunk) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto pa = prefix_a(ctx);
    const std::uint32_t tid = ctx.thread_in_block();
    const std::uint64_t e = chunk * n + tid;
    std::uint32_t d_tlo = 0, d_thi = 0, d_klo = 0, d_klen = 0;
    if (e < g.num_edges) {
      const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
      const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
      const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
      // Optimization 1: only the suffix of N+(u) beyond v can match, since
      // every key in N+(v) exceeds v (u < v ordering). Edges with an empty
      // suffix need no search at all ("for the edge (0,8), no search is
      // required").
      const std::uint32_t a_lo =
          prefix_skip ? intersect::upper_bound(ctx, g.col, ub, ue, v) : ub;
      const std::uint32_t a_len = ue - a_lo;
      const std::uint32_t b_len = ve - vb;
      if (a_len != 0 && b_len != 0) {
        // Optimization 3: table = u's suffix (shared across the chunk, so
        // its sectors stay hot in cache) unless v's list is dramatically
        // smaller.
        const bool use_v_table =
            flip && static_cast<std::uint64_t>(b_len) * flip_ratio < a_len;
        if (use_v_table) {
          d_tlo = vb;
          d_thi = ve;
          d_klo = a_lo;
          d_klen = a_len;
        } else {
          d_tlo = a_lo;
          d_thi = ue;
          d_klo = vb;
          d_klen = b_len;
        }
      }
    }
    ctx.shared_store(t_lo, tid, d_tlo, TCGPU_SITE());
    ctx.shared_store(t_hi, tid, d_thi, TCGPU_SITE());
    ctx.shared_store(k_lo, tid, d_klo, TCGPU_SITE());
    ctx.shared_store(pa, tid, d_klen, TCGPU_SITE());
  };

  // Hillis-Steele scan round: reads one buffer, writes the other (the
  // executor runs lanes sequentially, so in-place scanning would race).
  auto scan_round = [&](std::uint32_t stride, bool from_a) {
    return [&, stride, from_a](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
      auto src = from_a ? prefix_a(ctx) : prefix_b(ctx);
      auto dst = from_a ? prefix_b(ctx) : prefix_a(ctx);
      const std::uint32_t tid = ctx.thread_in_block();
      std::uint32_t v = ctx.shared_load(src, tid, TCGPU_SITE());
      if (stride < n && tid >= stride) {
        v += ctx.shared_load(src, tid - stride, TCGPU_SITE());
      }
      ctx.shared_store(dst, tid, v, TCGPU_SITE());
    };
  };

  // Phase 3: threads stride the chunk's concatenated key lists; the prefix
  // array (in buffer A after the 10 ping-pong rounds) maps a key index to
  // its edge.
  auto count_phase = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto prefix = prefix_a(ctx);

    const std::uint32_t total = ctx.shared_load(prefix, n - 1, TCGPU_SITE());
    std::uint64_t local = 0;
    // Registers describing the edge the thread is currently inside; a
    // thread's key indices ascend by n, so while they stay inside
    // [cur_base, cur_limit) no shared lookup is needed at all.
    std::uint32_t cur_base = 0, cur_limit = 0;
    std::uint32_t cur_tlo = 0, cur_thi = 0, cur_klo = 0;
    std::uint32_t resume = 0;  // optimization 2 state

    for (std::uint32_t kidx = ctx.thread_in_block(); kidx < total; kidx += n) {
      if (kidx >= cur_limit) {
        // j = first edge whose inclusive prefix exceeds kidx.
        const std::uint32_t j = intersect::shared_prefix_search(ctx, prefix, n, kidx);
        cur_base = j == 0 ? 0 : ctx.shared_load(prefix, j - 1, TCGPU_SITE());
        cur_limit = ctx.shared_load(prefix, j, TCGPU_SITE());
        cur_tlo = ctx.shared_load(t_lo, j, TCGPU_SITE());
        cur_thi = ctx.shared_load(t_hi, j, TCGPU_SITE());
        cur_klo = ctx.shared_load(k_lo, j, TCGPU_SITE());
        resume = cur_tlo;
      }
      const std::uint32_t koff = kidx - cur_base;
      const std::uint32_t key = ctx.load(g.col, cur_klo + koff, TCGPU_SITE());
      // Binary search whose exit point is a safe resume bound for the next
      // (strictly larger) key of this edge (optimization 2).
      const std::uint32_t slo = monotone ? resume : cur_tlo;
      const auto hit = intersect::monotone_search(ctx, g.col, slo, cur_thi, key);
      if (hit.found) ++local;
      if (monotone) resume = hit.resume;
    }
    flush_count(ctx, counter, local);
  };

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, chunks, describe, scan_round(1, true), scan_round(2, false),
      scan_round(4, true), scan_round(8, false), scan_round(16, true),
      scan_round(32, false), scan_round(64, true), scan_round(128, false),
      scan_round(256, true), scan_round(512, false), count_phase);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("grouptc_chunk", stats);
  return r;
}

}  // namespace tcgpu::tc
