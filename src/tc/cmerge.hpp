// CMerge: vertex-centric, coarse-grained merge over compressed rows.
//
// One thread owns one anchor vertex u and streams its compressed row once
// per neighbor v, merging it against v's stream register-cached — the Polak
// loop shape with every "load col[i]" replaced by an on-the-fly LEB128
// decode (tc/intersect/varint.hpp). Global traffic shrinks to ~one word
// load per four stream bytes; the price is one ALU op per byte and a fully
// serial per-thread outer loop. On graphs whose raw image fits the device
// this loses to Polak; it exists for the capacity regime where only the
// compressed image (DeviceGraph::upload_compressed) fits — and runs
// unchanged on raw images by self-staging a compressed copy on the per-run
// scratch device (the BSR pattern), which is how bench/prepare_throughput
// measures the compressed-vs-raw crossover on one address stream.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class CMergeCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
  };

  CMergeCounter() : cfg_{} {}
  explicit CMergeCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "CMerge"; }
  AlgoTraits traits() const override { return {"vertex", "Merge", "coarse", 2024}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
