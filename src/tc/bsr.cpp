#include "tc/bsr.hpp"

#include <algorithm>
#include <vector>

#include "tc/intersect/bitmap.hpp"

namespace tcgpu::tc {

AlgoResult BsrCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                             const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "bsr_count");

  // Host-side compression (the published BSR builders run once per graph
  // and are amortized across queries, like Fox's binning pass): each sorted
  // row collapses into one (base, word) pair per occupied 32-vertex block.
  std::vector<std::uint32_t> h_ptr(g.num_vertices + 1, 0);
  std::vector<std::uint32_t> h_base, h_word;
  {
    const auto* rp = g.row_ptr.host_data();
    const auto* cp = g.col.host_data();
    for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
      std::uint32_t pairs = 0;
      for (std::uint32_t i = rp[v]; i < rp[v + 1]; ++i) {
        const std::uint32_t w = cp[i];
        if (pairs == 0 || h_base.back() != intersect::bit_word(w)) {
          h_base.push_back(intersect::bit_word(w));
          h_word.push_back(0);
          ++pairs;
        }
        h_word.back() |= intersect::bit_mask(w);
      }
      h_ptr[v + 1] = h_ptr[v] + pairs;
    }
  }
  auto bsr_ptr = dev.alloc<std::uint32_t>(h_ptr.size(), "bsr_ptr");
  auto bsr_base = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, h_base.size()),
                                           "bsr_base");
  auto bsr_word = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, h_word.size()),
                                           "bsr_word");
  std::copy(h_ptr.begin(), h_ptr.end(), bsr_ptr.host_data());
  std::copy(h_base.begin(), h_base.end(), bsr_base.host_data());
  std::copy(h_word.begin(), h_word.end(), bsr_word.host_data());

  const std::uint64_t items = g.vertex_items();

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = 32;
  cfg.grid = pick_grid(spec, items, 32, cfg.block);

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, items,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
        const std::uint32_t u =
            g.use_anchor_list ? ctx.load(g.anchors, item, TCGPU_SITE())
                              : static_cast<std::uint32_t>(item);
        const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        if (ub >= ue) return;
        const std::uint32_t u_lo = ctx.load(bsr_ptr, u, TCGPU_SITE());
        const std::uint32_t u_hi = ctx.load(bsr_ptr, u + 1, TCGPU_SITE());
        std::uint64_t local = 0;
        // One lane intersects BSR(u) with BSR(v) for one neighbor v.
        for (std::uint32_t i = ub + ctx.group_lane(); i < ue; i += 32) {
          const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
          const std::uint32_t v_lo = ctx.load(bsr_ptr, v, TCGPU_SITE());
          const std::uint32_t v_hi = ctx.load(bsr_ptr, v + 1, TCGPU_SITE());
          local += intersect::bsr_and_count(ctx, {&bsr_base, &bsr_word, u_lo, u_hi},
                                            {&bsr_base, &bsr_word, v_lo, v_hi});
        }
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("bsr_warp", stats);
  return r;
}

}  // namespace tcgpu::tc
