#include "tc/common.hpp"

#include <algorithm>

namespace tcgpu::tc {

std::uint32_t pick_grid(const simt::GpuSpec& spec, std::uint64_t items,
                        std::uint32_t threads_per_item, std::uint32_t block) {
  const std::uint64_t threads_needed = items * threads_per_item;
  const std::uint64_t blocks_needed = (threads_needed + block - 1) / block;
  const std::uint64_t lo = spec.sm_count;
  const std::uint64_t hi = 4096;
  return static_cast<std::uint32_t>(std::clamp(blocks_needed, lo, hi));
}

}  // namespace tcgpu::tc
