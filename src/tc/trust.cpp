#include "tc/trust.hpp"

#include <vector>

#include "tc/intersect/hash.hpp"

namespace tcgpu::tc {
namespace {

struct TeamShape {
  std::uint32_t buckets;
  std::uint32_t slots;
  std::uint32_t teams_per_block;
  std::uint32_t team_size;
};

}  // namespace

AlgoResult TrustCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                               const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "trust_count");
  AlgoResult r;

  // Degree-split classification (host preprocessing, as in the original).
  // Sharded images classify only the owned anchor vertices — TRUST already
  // feeds its kernels explicit vertex lists, so the shard restriction is
  // purely a host-side filter.
  std::vector<std::uint32_t> big, mid;
  {
    const auto* rp = g.row_ptr.host_data();
    const std::uint64_t items = g.vertex_items();
    for (std::uint64_t i = 0; i < items; ++i) {
      const std::uint32_t u =
          g.use_anchor_list ? g.anchors.host_data()[i]
                            : static_cast<std::uint32_t>(i);
      const std::uint32_t d = rp[u + 1] - rp[u];
      if (d < 2) continue;  // cannot pivot a triangle
      if (d > cfg_.block_threshold) {
        big.push_back(u);
      } else {
        mid.push_back(u);
      }
    }
  }

  auto run_kernel = [&](const std::vector<std::uint32_t>& vertices,
                        const TeamShape& shape, simt::LaunchConfig cfg,
                        const char* kernel_name) {
    if (vertices.empty()) return;
    auto vlist = dev.alloc<std::uint32_t>(vertices.size(), "trust_vertices");
    std::copy(vertices.begin(), vertices.end(), vlist.host_data());

    const std::uint32_t teams_total = cfg.grid * shape.teams_per_block;
    const std::uint32_t ovf_cap = std::max<std::uint32_t>(1, g.max_out_degree);
    auto overflow = dev.alloc<std::uint32_t>(
        static_cast<std::size_t>(teams_total) * ovf_cap, "trust_overflow");

    const std::uint32_t buckets = shape.buckets;
    const std::uint32_t slots = shape.slots;
    const std::uint32_t tpb = shape.teams_per_block;
    const std::uint32_t team_size = shape.team_size;

    auto len_array = [&](simt::ThreadCtx& ctx) {
      return ctx.shared_array_tagged<std::uint32_t>(0, tpb * buckets);
    };
    auto table_array = [&](simt::ThreadCtx& ctx) {
      return ctx.shared_array_tagged<std::uint32_t>(1, tpb * slots * buckets);
    };
    auto ovf_cursor = [&](simt::ThreadCtx& ctx) {
      return ctx.shared_array_tagged<std::uint32_t>(2, tpb);
    };
    auto team_in_block = [tpb](simt::ThreadCtx& ctx) -> std::uint32_t {
      return tpb == 1 ? 0u : ctx.warp_in_block();
    };
    auto team_lane = [tpb](simt::ThreadCtx& ctx) -> std::uint32_t {
      return tpb == 1 ? ctx.thread_in_block() : ctx.group_lane();
    };
    // The overflow buffer is passed in so each [=] phase lambda hands the
    // hash a pointer into its own captured copy.
    auto team_hash = [=](simt::ThreadCtx& ctx,
                         simt::DeviceBuffer<std::uint32_t>& ovf_buf) {
      const std::uint32_t t = team_in_block(ctx);
      return intersect::BucketedHash{len_array(ctx),
                                     table_array(ctx),
                                     ovf_cursor(ctx),
                                     &ovf_buf,
                                     t,
                                     buckets,
                                     slots,
                                     ctx.block_id() * tpb + t,
                                     ovf_cap};
    };

    auto reset = [=](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) mutable {
      team_hash(ctx, overflow).reset_slice(ctx, team_lane(ctx), team_size);
    };

    auto build = [=](simt::ThreadCtx& ctx, simt::NoState&,
                     std::uint64_t item) mutable {
      const std::uint32_t u = ctx.load(vlist, item, TCGPU_SITE());
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto h = team_hash(ctx, overflow);
      for (std::uint32_t i = ub + team_lane(ctx); i < ue; i += team_size) {
        const std::uint32_t x = ctx.load(g.col, i, TCGPU_SITE());
        h.insert(ctx, x);
      }
    };

    auto probe = [=, &counter](simt::ThreadCtx& ctx, simt::NoState&,
                               std::uint64_t item) mutable {
      const std::uint32_t u = ctx.load(vlist, item, TCGPU_SITE());
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      if (ub >= ue) return;
      auto h = team_hash(ctx, overflow);

      // Flattened 2-hop iteration with stride team_size (Hu-style; §III-H:
      // "uses all 2-hop neighbors as queries to find matches in the 1-hop
      // list").
      std::uint64_t local = 0;
      std::uint32_t v_offset = team_lane(ctx);
      std::uint32_t u_point = ub;
      std::uint32_t v = ctx.load(g.col, u_point, TCGPU_SITE());
      std::uint32_t v_point = ctx.load(g.row_ptr, v, TCGPU_SITE());
      std::uint32_t v_degree = ctx.load(g.row_ptr, v + 1, TCGPU_SITE()) - v_point;
      while (u_point < ue) {
        while (u_point < ue && v_offset >= v_degree) {
          v_offset -= v_degree;
          ++u_point;
          if (u_point >= ue) break;
          v = ctx.load(g.col, u_point, TCGPU_SITE());
          v_point = ctx.load(g.row_ptr, v, TCGPU_SITE());
          v_degree = ctx.load(g.row_ptr, v + 1, TCGPU_SITE()) - v_point;
        }
        if (u_point < ue) {
          const std::uint32_t w = ctx.load(g.col, v_point + v_offset, TCGPU_SITE());
          if (h.contains(ctx, w)) ++local;
        }
        v_offset += team_size;
      }
      flush_count(ctx, counter, local);
    };

    auto stats =
        simt::launch_items<simt::NoState>(spec, cfg, vertices.size(), reset, build,
                                          probe);
    r.add_launch(kernel_name, stats);
  };

  // Block kernel: high-degree vertices, 1024 threads / 1024 buckets.
  {
    const std::uint32_t bdim = std::min(cfg_.block_dim, spec.max_threads_per_block);
    simt::LaunchConfig cfg;
    cfg.block = bdim;
    cfg.group_size = bdim;
    cfg.grid = std::min<std::uint32_t>(pick_grid(spec, big.size(), bdim, bdim),
                                       2 * spec.sm_count);
    run_kernel(big, TeamShape{cfg_.block_buckets, cfg_.block_slots, 1, bdim}, cfg,
               "trust_block");
  }
  // Warp kernel: degree 2..100 vertices, 32 threads / 32 buckets.
  {
    simt::LaunchConfig cfg;
    cfg.block = cfg_.warp_kernel_block;
    cfg.group_size = 32;
    cfg.grid = pick_grid(spec, mid.size(), 32, cfg.block);
    run_kernel(mid, TeamShape{cfg_.warp_buckets, cfg_.warp_slots, cfg.block / 32, 32},
               cfg, "trust_warp");
  }

  r.triangles = counter.host_span()[0];
  return r;
}

}  // namespace tcgpu::tc
