// A bounds-carrying view of one sorted adjacency slice, the operand type of
// every intersection policy in src/tc/intersect/.
//
// The library factors the paper's four intersection families (Table I:
// Merge, Bin-Search, Hash, BitMap) out of the kernel bodies into small
// policy types. Each policy issues its metered accesses from its own
// TCGPU_SITE() program points, so KernelStats attribution stays
// per-strategy, and two kernels composing the same policy share those
// sites — which is safe: the warp aggregator interns sites per launch in
// first-appearance order, so only the partition of each lane's event stream
// into program points matters, never the numeric site ids. What is NOT safe
// is merging two formerly-distinct program points of one kernel into a
// single site (it changes occurrence alignment); the ported kernels
// therefore map each of their original textual sites onto exactly one
// library site.
#pragma once

#include <cstdint>

#include "simt/device.hpp"

namespace tcgpu::tc::intersect {

/// A sorted, duplicate-free slice col[lo, hi) of a device column array —
/// the universal operand of the intersection policies. Cheap to copy; the
/// buffer pointer is the analogue of a device pointer.
struct ListRef {
  const simt::DeviceBuffer<std::uint32_t>* buf = nullptr;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  std::uint32_t size() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
};

}  // namespace tcgpu::tc::intersect
