// Hash-family intersection policies (Table I "Hash").
//
// BucketedHash is the shared-memory bucket table with bounded global
// overflow that H-INDEX introduced and TRUST reuses (their build/probe
// bodies were byte-identical before this library existed; both kernels now
// compose the one implementation and share its sites — safe, since site
// interning is per launch). The table layout is row-order: element s of all
// buckets is contiguous (§III-G), so same-slot probes of neighboring lanes
// hit consecutive banks.
//
// The linear-probe functions are GroupTC-hash's per-edge open-addressing
// regions carved out of one shared pool (the §VI "hashing instead of binary
// search" variant).
#pragma once

#include <algorithm>
#include <cstdint>

#include "simt/launch.hpp"

namespace tcgpu::tc::intersect {

constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;  // never a vertex id
constexpr std::uint32_t kNoTable = 0xFFFFFFFFu;

/// Knuth multiplicative mixing, as the published GroupTC-hash kernel uses.
constexpr std::uint32_t hash_mix(std::uint32_t x) { return x * 2654435761u; }

/// Smallest power of two >= x (and >= 2). Host-side sizing helper.
inline std::uint32_t pow2_at_least(std::uint32_t x) {
  std::uint32_t p = 2;
  while (p < x) p <<= 1;
  return p;
}

/// One team's slice of the block's bucketed hash table: len[buckets],
/// table[slots*buckets] row-order, a one-word overflow cursor, and the
/// team's region of the global overflow array.
struct BucketedHash {
  simt::SharedView<std::uint32_t> len;
  simt::SharedView<std::uint32_t> table;
  simt::SharedView<std::uint32_t> ovf;
  simt::DeviceBuffer<std::uint32_t>* overflow = nullptr;
  std::uint32_t t = 0;            ///< team index within the block
  std::uint32_t buckets = 0;
  std::uint32_t slots = 0;
  std::uint32_t team_global = 0;  ///< global team id (overflow region)
  std::uint32_t ovf_cap = 0;

  /// Zeroes this team's bucket lengths and overflow cursor (the reset
  /// phase; lanes cooperate with stride `team_size`).
  void reset_slice(simt::ThreadCtx& ctx, std::uint32_t team_lane,
                   std::uint32_t team_size) {
    for (std::uint32_t i = team_lane; i < buckets; i += team_size) {
      ctx.shared_store(len, t * buckets + i, 0u, TCGPU_SITE());
    }
    if (team_lane == 0) ctx.shared_store(ovf, t, 0u, TCGPU_SITE());
  }

  /// Hashes `x` into its bucket; spills to the team's global overflow region
  /// once the bucket's `slots` shared entries are full.
  void insert(simt::ThreadCtx& ctx, std::uint32_t x) {
    ctx.compute(1);  // hash
    const std::uint32_t b = x % buckets;
    const std::uint32_t pos =
        ctx.shared_atomic_add(len, t * buckets + b, 1u, TCGPU_SITE());
    if (pos < slots) {
      ctx.shared_store(table, t * slots * buckets + pos * buckets + b, x,
                       TCGPU_SITE());
    } else {
      const std::uint32_t opos = ctx.shared_atomic_add(ovf, t, 1u, TCGPU_SITE());
      ctx.store(*overflow, static_cast<std::size_t>(team_global) * ovf_cap + opos,
                x, TCGPU_SITE());
    }
  }

  /// Probes `key`'s bucket; buckets that spilled scan the team's overflow
  /// region linearly.
  bool contains(simt::ThreadCtx& ctx, std::uint32_t key) {
    ctx.compute(1);  // hash
    const std::uint32_t b = key % buckets;
    const std::uint32_t blen = ctx.shared_load(len, t * buckets + b, TCGPU_SITE());
    bool hit = false;
    const std::uint32_t in_shared = std::min(blen, slots);
    for (std::uint32_t s = 0; s < in_shared && !hit; ++s) {
      hit = ctx.shared_load(table, t * slots * buckets + s * buckets + b,
                            TCGPU_SITE()) == key;
    }
    if (!hit && blen > slots) {
      const std::uint32_t olen = ctx.shared_load(ovf, t, TCGPU_SITE());
      for (std::uint32_t j = 0; j < olen && !hit; ++j) {
        hit = ctx.load(*overflow,
                       static_cast<std::size_t>(team_global) * ovf_cap + j,
                       TCGPU_SITE()) == key;
      }
    }
    return hit;
  }
};

/// Clears one edge's linear-probe region [off, off+cap) of the shared pool.
inline void linear_probe_clear(simt::ThreadCtx& ctx,
                               simt::SharedView<std::uint32_t>& pool,
                               std::uint32_t off, std::uint32_t cap) {
  for (std::uint32_t i = 0; i < cap; ++i) {
    ctx.shared_store(pool, off + i, kEmpty, TCGPU_SITE());
  }
}

/// Open-addressing insert into a power-of-two region (cap >= 2 * elements,
/// so the probe chains stay short).
inline void linear_probe_insert(simt::ThreadCtx& ctx,
                                simt::SharedView<std::uint32_t>& pool,
                                std::uint32_t off, std::uint32_t cap,
                                std::uint32_t x) {
  ctx.compute(1);  // hash
  std::uint32_t idx = hash_mix(x) & (cap - 1);
  while (ctx.shared_load(pool, off + idx, TCGPU_SITE()) != kEmpty) {
    idx = (idx + 1) & (cap - 1);
  }
  ctx.shared_store(pool, off + idx, x, TCGPU_SITE());
}

/// Open-addressing membership probe; an empty slot ends the chain.
inline bool linear_probe_contains(simt::ThreadCtx& ctx,
                                  simt::SharedView<std::uint32_t>& pool,
                                  std::uint32_t off, std::uint32_t cap,
                                  std::uint32_t key) {
  ctx.compute(1);  // hash
  std::uint32_t idx = hash_mix(key) & (cap - 1);
  while (true) {
    const std::uint32_t val = ctx.shared_load(pool, off + idx, TCGPU_SITE());
    if (val == key) return true;
    if (val == kEmpty) return false;
    idx = (idx + 1) & (cap - 1);
  }
}

}  // namespace tcgpu::tc::intersect
