// Binary-search-family intersection primitives (Table I "Bin-Search").
//
// `binary_search` and `upper_bound` moved here from tc/common.hpp verbatim:
// each is one inline program point, so every kernel composing it shares one
// site per launch — exactly the sharing Fox and GroupTC-H already had.
//
// The probe-parameterized variants (`binary_search_probe`,
// `heap_search_probe`) carry no metered accesses of their own: the caller's
// probe lambda owns the TCGPU_SITE()s, so kernels that mix shared-memory
// caches with global fallbacks (Hu, TriCore) keep their own attribution.
#pragma once

#include <cstdint>

#include "simt/launch.hpp"
#include "tc/intersect/list_ref.hpp"

namespace tcgpu::tc::intersect {

/// Binary search for `key` in the sorted slice col[lo, hi). Every probe is a
/// metered global load issued from this call site (all callers in one kernel
/// align probe k with probe k across the warp, as the hardware would).
/// Returns true iff found.
inline bool binary_search(simt::ThreadCtx& ctx,
                          const simt::DeviceBuffer<std::uint32_t>& col,
                          std::uint32_t lo, std::uint32_t hi,
                          std::uint32_t key) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t v = ctx.load(col, mid, TCGPU_SITE());
    if (v == key) return true;
    if (v < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

/// Metered upper_bound: first index in col[lo, hi) with value > key.
/// Used by GroupTC's u<v prefix-skip optimization (§V) and the k-truss
/// support kernel.
inline std::uint32_t upper_bound(simt::ThreadCtx& ctx,
                                 const simt::DeviceBuffer<std::uint32_t>& col,
                                 std::uint32_t lo, std::uint32_t hi,
                                 std::uint32_t key) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t v = ctx.load(col, mid, TCGPU_SITE());
    if (v <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Binary search over [lo, hi) with a caller-supplied element probe (which
/// owns the metered accesses — e.g. Hu's shared-cache-then-global probe).
template <class Probe>
bool binary_search_probe(std::uint32_t lo, std::uint32_t hi, std::uint32_t key,
                         Probe&& probe) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t val = probe(mid);
    if (val == key) return true;
    if (val < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

/// Binary search that additionally tracks the 1-based heap id of the probed
/// node, for kernels that cache the top levels of the implicit search tree
/// in shared memory (TriCore). probe(k, mid) owns the metered accesses; k is
/// 64-bit so deep walks cannot wrap.
template <class Probe>
bool heap_search_probe(std::uint32_t len, std::uint32_t key, Probe&& probe) {
  std::uint32_t lo = 0, hi = len;
  std::uint64_t k = 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t val = probe(k, mid);
    if (val == key) return true;
    if (val < key) {
      lo = mid + 1;
      k = 2 * k + 1;
    } else {
      hi = mid;
      k = 2 * k;
    }
  }
  return false;
}

/// Result of a monotone (resumable) binary search: `pos` is the hit index
/// (valid iff found); `resume` is a safe lower bound for the next strictly
/// larger key of the same table (GroupTC's optimization 2).
struct MonotoneHit {
  bool found = false;
  std::uint32_t pos = 0;
  std::uint32_t resume = 0;
};

/// Binary search for `key` in col[lo, hi) that reports a resume point.
/// Event shape: identical to `binary_search` until the hit (nothing metered
/// follows it), so GroupTC's and the support kernel's counting loops keep
/// their original per-lane event sequences.
inline MonotoneHit monotone_search(simt::ThreadCtx& ctx,
                                   const simt::DeviceBuffer<std::uint32_t>& col,
                                   std::uint32_t lo, std::uint32_t hi,
                                   std::uint32_t key) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t val = ctx.load(col, mid, TCGPU_SITE());
    if (val == key) return {true, mid, mid + 1};
    if (val < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {false, 0, lo};
}

/// First index in the shared inclusive-prefix array [0, n) whose value
/// exceeds `kidx` — the chunk kernels' key-index -> edge mapping (GroupTC,
/// GroupTC-H, k-truss support share this one program point).
inline std::uint32_t shared_prefix_search(simt::ThreadCtx& ctx,
                                          simt::SharedView<std::uint32_t>& prefix,
                                          std::uint32_t n, std::uint32_t kidx) {
  std::uint32_t lo = 0, hi = n;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (ctx.shared_load(prefix, mid, TCGPU_SITE()) > kidx) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

/// Host-side: array index of 1-based heap node `k` of an implicit
/// binary-search tree over [0, len): walk the bits of k below its MSB
/// (0 = left, 1 = right).
inline std::uint32_t heap_node_index(std::uint32_t k, std::uint32_t len) {
  std::uint32_t lo = 0, hi = len;
  std::uint32_t msb = 31 - static_cast<std::uint32_t>(__builtin_clz(k));
  for (std::uint32_t b = msb; b > 0; --b) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if ((k >> (b - 1)) & 1u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
    if (lo >= hi) return lo < len ? lo : len - 1;  // node below the leaves
  }
  return lo + (hi - lo) / 2;
}

/// Policy form for tests and sweep drivers: each element of `a` (loaded at
/// this site) is binary-searched in `b`.
struct BinSearchSweep {
  static std::uint64_t count(simt::ThreadCtx& ctx, ListRef a, ListRef b) {
    std::uint64_t local = 0;
    for (std::uint32_t i = a.lo; i < a.hi; ++i) {
      const std::uint32_t key = ctx.load(*a.buf, i, TCGPU_SITE());
      if (binary_search(ctx, *b.buf, b.lo, b.hi, key)) ++local;
    }
    return local;
  }
};

}  // namespace tcgpu::tc::intersect
