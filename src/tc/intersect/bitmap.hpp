// Bitmap-family intersection policies (Table I "BitMap").
//
// VertexBitmap is Bisson's dense one-bit-per-vertex image: resident in the
// block's shared memory when it fits, spilled to a per-team global scratch
// region otherwise (the shared->global cliff ablation_bisson measures). The
// set/test/clear program points are shared by every composing path — safe,
// because Bisson's block/warp paths never co-occur in one launch and site
// interning is per launch.
//
// The BSR (blocked sparse row) helpers back the BSR kernel: an adjacency
// list compressed to (base, word) pairs — base = vertex >> 5, word = the
// 32-bit occupancy of that block — intersected by merging the base arrays
// and popcounting the word AND on base match. On the oriented DAG (u < v
// for every edge) the plain AND is exact: every common neighbor already
// exceeds both endpoints.
#pragma once

#include <bit>
#include <cstdint>

#include "simt/launch.hpp"

namespace tcgpu::tc::intersect {

constexpr std::uint32_t bit_word(std::uint32_t v) { return v >> 5; }
constexpr std::uint32_t bit_mask(std::uint32_t v) { return 1u << (v & 31u); }

/// One team's dense vertex bitmap: shared-memory words when `in_shared`,
/// else the team's slice [base, base + words) of a global scratch buffer.
struct VertexBitmap {
  bool in_shared = false;
  simt::SharedView<std::uint32_t> sm;          ///< valid iff in_shared
  simt::DeviceBuffer<std::uint32_t>* gm = nullptr;  ///< valid otherwise
  std::size_t base = 0;

  void set(simt::ThreadCtx& ctx, std::uint32_t v) {
    if (in_shared) {
      ctx.shared_atomic_or(sm, bit_word(v), bit_mask(v), TCGPU_SITE());
    } else {
      ctx.atomic_or(*gm, base + bit_word(v), bit_mask(v), TCGPU_SITE());
    }
  }

  bool test(simt::ThreadCtx& ctx, std::uint32_t w) {
    std::uint32_t word;
    if (in_shared) {
      word = ctx.shared_load(sm, bit_word(w), TCGPU_SITE());
    } else {
      word = ctx.load(*gm, base + bit_word(w), TCGPU_SITE());
    }
    return (word & bit_mask(w)) != 0;
  }

  void clear(simt::ThreadCtx& ctx, std::uint32_t v) {
    if (in_shared) {
      ctx.shared_store(sm, bit_word(v), 0u, TCGPU_SITE());
    } else {
      ctx.store(*gm, base + bit_word(v), 0u, TCGPU_SITE());
    }
  }
};

/// One vertex's BSR row: slice [lo, hi) of the parallel base/word arrays.
struct BsrRef {
  const simt::DeviceBuffer<std::uint32_t>* base = nullptr;
  const simt::DeviceBuffer<std::uint32_t>* word = nullptr;
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Blocked-bitmap intersection: merge the sorted base arrays; on a base
/// match AND the occupancy words and popcount (one ALU step, as the
/// hardware's __popc).
inline std::uint64_t bsr_and_count(simt::ThreadCtx& ctx, BsrRef a, BsrRef b) {
  std::uint64_t local = 0;
  std::uint32_t i = a.lo, j = b.lo;
  while (i < a.hi && j < b.hi) {
    const std::uint32_t x = ctx.load(*a.base, i, TCGPU_SITE());
    const std::uint32_t y = ctx.load(*b.base, j, TCGPU_SITE());
    if (x == y) {
      const std::uint32_t wa = ctx.load(*a.word, i, TCGPU_SITE());
      const std::uint32_t wb = ctx.load(*b.word, j, TCGPU_SITE());
      ctx.compute(1);  // __popc
      local += static_cast<std::uint64_t>(std::popcount(wa & wb));
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return local;
}

}  // namespace tcgpu::tc::intersect
