// Varint-decode machinery for the compressed-CSR kernels (CMerge, CStage).
//
// A compressed row is (base, LEB128 delta stream) — graph::CompressedCsr's
// layout, uploaded with the bytes packed four-per-u32-word. Decode is
// sequential, which is exactly the merge family's access pattern: the
// cursor below replaces "load col[i]" with "extract the next varint",
// costing one metered word load per four stream bytes (the bandwidth win)
// plus one metered ALU op per byte (the compute price). VarintCursor is the
// only reader of the packed stream, so the byte/word layout here and the
// encoder in graph/csr.hpp can never drift independently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "simt/launch.hpp"
#include "tc/device_graph.hpp"

namespace tcgpu::tc::intersect {

/// Device-side view of one compressed adjacency image — either the graph's
/// own upload_compressed buffers or a kernel's self-staged scratch copy.
struct CompressedView {
  const simt::DeviceBuffer<std::uint32_t>* base = nullptr;  ///< size V
  const simt::DeviceBuffer<std::uint32_t>* off = nullptr;   ///< size V+1
  const simt::DeviceBuffer<std::uint32_t>* data = nullptr;  ///< packed bytes
};

/// Sequential metered cursor over one compressed row. next() yields the
/// row's neighbors in ascending order: the first from the preloaded base
/// (no stream access), the rest by LEB128 extraction with the current
/// stream word register-cached — crossing a word boundary costs one global
/// load, every byte costs one ALU op.
class VarintCursor {
 public:
  /// `first` = the row's base neighbor, `byte_lo` = its stream offset,
  /// `degree` = its neighbor count (all loaded by the caller, whose sites
  /// keep the row-metadata traffic attributed to the kernel).
  VarintCursor(std::uint32_t first, std::uint32_t byte_lo, std::uint32_t degree)
      : value_(first), pos_(byte_lo), remaining_(degree) {}

  bool done() const { return remaining_ == 0; }

  std::uint32_t next(simt::ThreadCtx& ctx,
                     const simt::DeviceBuffer<std::uint32_t>& data) {
    if (!emitted_first_) {
      emitted_first_ = true;
      --remaining_;
      return value_;
    }
    std::uint32_t delta = 0;
    int shift = 0;
    std::uint32_t byte;
    do {
      const std::uint32_t widx = pos_ >> 2;
      if (widx != word_idx_) {
        word_ = ctx.load(data, widx, TCGPU_SITE());
        word_idx_ = widx;
      }
      byte = (word_ >> ((pos_ & 3u) * 8u)) & 0xFFu;
      ctx.compute(1);  // extract + accumulate one 7-bit group
      ++pos_;
      delta |= (byte & 0x7Fu) << shift;
      shift += 7;
    } while (byte & 0x80u);
    value_ += delta + 1;
    --remaining_;
    return value_;
  }

 private:
  std::uint32_t value_;
  std::uint32_t pos_;
  std::uint32_t remaining_;
  std::uint32_t word_ = 0;
  std::uint32_t word_idx_ = 0xFFFFFFFFu;
  bool emitted_first_ = false;
};

/// Register-cached merge of two compressed rows (the Polak loop shape with
/// both operands streamed). Counts matches whose position in row A is
/// >= `a_from` — 0 gives the plain intersection; CStage passes its staged
/// prefix length to count only the tail contribution it could not probe in
/// shared memory. Cursors advance exactly once per consumed element, so the
/// decode cost is one pass over each stream.
inline std::uint64_t merge_cursor_cursor(
    simt::ThreadCtx& ctx, VarintCursor a,
    const simt::DeviceBuffer<std::uint32_t>& a_data, VarintCursor b,
    const simt::DeviceBuffer<std::uint32_t>& b_data, std::uint32_t a_from = 0) {
  std::uint64_t local = 0;
  if (a.done() || b.done()) return 0;
  std::uint32_t ai = 0;
  std::uint32_t x = a.next(ctx, a_data);
  std::uint32_t y = b.next(ctx, b_data);
  while (true) {
    if (x == y) {
      if (ai >= a_from) ++local;
      if (a.done() || b.done()) break;
      x = a.next(ctx, a_data);
      ++ai;
      y = b.next(ctx, b_data);
    } else if (x < y) {
      if (a.done()) break;
      x = a.next(ctx, a_data);
      ++ai;
    } else {
      if (b.done()) break;
      y = b.next(ctx, b_data);
    }
  }
  return local;
}

/// Register-cached merge of a compressed row against an index-probed sorted
/// list (CStage's shared-staged anchor row). The probe owns its metered
/// accesses, so shared-memory traffic stays attributed to the caller.
template <class ProbeB>
std::uint64_t merge_cursor_probed(simt::ThreadCtx& ctx, VarintCursor a,
                                  const simt::DeviceBuffer<std::uint32_t>& a_data,
                                  std::uint32_t nb, ProbeB&& probe_b) {
  std::uint64_t local = 0;
  if (a.done() || nb == 0) return 0;
  std::uint32_t j = 0;
  std::uint32_t x = a.next(ctx, a_data);
  std::uint32_t y = probe_b(j);
  while (true) {
    if (x == y) {
      ++local;
      if (a.done() || ++j >= nb) break;
      x = a.next(ctx, a_data);
      y = probe_b(j);
    } else if (x < y) {
      if (a.done()) break;
      x = a.next(ctx, a_data);
    } else {
      if (++j >= nb) break;
      y = probe_b(j);
    }
  }
  return local;
}

/// Self-staged compressed copy of a raw image's adjacency — the BSR pattern:
/// host-side encode once per count() call, allocations on the caller's
/// device (the engine's per-run scratch), so the resident raw image and the
/// pooled address stream are untouched.
struct StagedCompressed {
  simt::DeviceBuffer<std::uint32_t> base;
  simt::DeviceBuffer<std::uint32_t> off;
  simt::DeviceBuffer<std::uint32_t> data;
};

inline StagedCompressed stage_compressed(simt::Device& dev,
                                         const DeviceGraph& g) {
  const auto* rp = g.row_ptr.host_data();
  const auto* cp = g.col.host_data();
  std::vector<std::uint32_t> base(g.num_vertices, 0);
  std::vector<std::uint32_t> off(g.num_vertices + 1, 0);
  std::vector<std::uint8_t> bytes;
  for (std::uint32_t v = 0; v < g.num_vertices; ++v) {
    if (rp[v] < rp[v + 1]) {
      base[v] = cp[rp[v]];
      for (std::uint32_t i = rp[v] + 1; i < rp[v + 1]; ++i) {
        graph::varint_append(bytes, cp[i] - cp[i - 1] - 1);
      }
    }
    off[v + 1] = static_cast<std::uint32_t>(bytes.size());
  }
  StagedCompressed s;
  s.base = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, base.size()),
                                    "cmp_base");
  std::copy(base.begin(), base.end(), s.base.host_data());
  s.off = dev.alloc<std::uint32_t>(off.size(), "cmp_off");
  std::copy(off.begin(), off.end(), s.off.host_data());
  const std::size_t words = (bytes.size() + 3) / 4;
  s.data = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, words), "cmp_data");
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    s.data.host_data()[i >> 2] |= static_cast<std::uint32_t>(bytes[i])
                                  << ((i & 3) * 8);
  }
  return s;
}

}  // namespace tcgpu::tc::intersect
