// Merge-family intersection policies (Table I "Merge").
//
// Three ported shapes — each transplanted verbatim from the kernel that
// introduced it, so its per-lane event sequence (and therefore KernelStats)
// is bit-identical to the pre-library code:
//
//   MergeSequential     — both cursors reloaded every iteration (Bisson's
//                         low-degree thread path).
//   MergeRegisterCached — only the advanced cursor is reloaded (Polak; the
//                         whole algorithm's advantage is few loads).
//   MergeChunked        — one lane merges its equal chunk of A against the
//                         window of B located by a metered lower_bound
//                         (Green's merge-path partitioning, Figure 4).
//
// Plus the true merge-path machinery (diagonal binary-search partition +
// window merge) backing the MergePath kernel, and a probe-parameterized
// merge for kernels whose operands mix shared and global storage (BFS-LA):
// the probes carry the caller's TCGPU_SITE()s, so sites stay per-kernel.
#pragma once

#include <cstdint>

#include "simt/launch.hpp"
#include "tc/intersect/list_ref.hpp"

namespace tcgpu::tc::intersect {

/// Sequential two-pointer merge, both elements loaded per iteration.
/// Event shape: Bisson's thread path.
struct MergeSequential {
  static std::uint64_t count(simt::ThreadCtx& ctx, ListRef a, ListRef b) {
    std::uint64_t local = 0;
    std::uint32_t pa = a.lo, pb = b.lo;
    while (pa < a.hi && pb < b.hi) {
      const std::uint32_t x = ctx.load(*a.buf, pa, TCGPU_SITE());
      const std::uint32_t y = ctx.load(*b.buf, pb, TCGPU_SITE());
      if (x == y) {
        ++local;
        ++pa;
        ++pb;
      } else if (x < y) {
        ++pa;
      } else {
        ++pb;
      }
    }
    return local;
  }
};

/// Register-cached merge: reload only the advanced pointer, as the published
/// Polak kernel does — Polak's whole advantage is few loads.
struct MergeRegisterCached {
  static std::uint64_t count(simt::ThreadCtx& ctx, ListRef a, ListRef b) {
    std::uint64_t local = 0;
    std::uint32_t pu = a.lo, pv = b.lo;
    if (pu < a.hi && pv < b.hi) {
      std::uint32_t x = ctx.load(*a.buf, pu, TCGPU_SITE());
      std::uint32_t y = ctx.load(*b.buf, pv, TCGPU_SITE());
      while (true) {
        if (x == y) {
          ++local;
          if (++pu >= a.hi || ++pv >= b.hi) break;
          x = ctx.load(*a.buf, pu, TCGPU_SITE());
          y = ctx.load(*b.buf, pv, TCGPU_SITE());
        } else if (x < y) {
          if (++pu >= a.hi) break;
          x = ctx.load(*a.buf, pu, TCGPU_SITE());
        } else {
          if (++pv >= b.hi) break;
          y = ctx.load(*b.buf, pv, TCGPU_SITE());
        }
      }
    }
    return local;
  }
};

/// One lane's share of a team merge: `chunk` is the lane's slice of A; the
/// matching window of B is located by a metered binary search (lower_bound
/// on chunk's first element — the partitioning step of Green's Figure 4),
/// then merged with B reloaded every iteration and A reloaded on advance.
struct MergeChunked {
  static std::uint64_t count(simt::ThreadCtx& ctx, ListRef chunk, ListRef b) {
    const std::uint32_t first = ctx.load(*chunk.buf, chunk.lo, TCGPU_SITE());
    // lower_bound(B, first)
    std::uint32_t lo = b.lo, hi = b.hi;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (ctx.load(*b.buf, mid, TCGPU_SITE()) < first) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }

    std::uint64_t local = 0;
    std::uint32_t pa = chunk.lo, pb = lo;
    std::uint32_t a = first;
    while (pa < chunk.hi && pb < b.hi) {
      const std::uint32_t y = ctx.load(*b.buf, pb, TCGPU_SITE());
      if (a == y) {
        ++local;
        ++pa;
        ++pb;
        if (pa < chunk.hi) a = ctx.load(*chunk.buf, pa, TCGPU_SITE());
      } else if (a < y) {
        ++pa;
        if (pa < chunk.hi) a = ctx.load(*chunk.buf, pa, TCGPU_SITE());
      } else {
        ++pb;
      }
    }
    return local;
  }
};

/// Merge-path diagonal split (Merrill/Green, as used by the Wang/Owens
/// comparative study's LB variants): returns how many elements of A precede
/// diagonal `diag` of the conceptual merge of A and B, with ties resolved
/// A-first. Every probe is a metered load of one element of each list.
struct MergePath {
  static std::uint32_t split(simt::ThreadCtx& ctx, ListRef a, ListRef b,
                             std::uint32_t diag) {
    const std::uint32_t la = a.size(), lb = b.size();
    std::uint32_t lo = diag > lb ? diag - lb : 0;
    std::uint32_t hi = diag < la ? diag : la;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      const std::uint32_t av = ctx.load(*a.buf, a.lo + mid, TCGPU_SITE());
      const std::uint32_t bv = ctx.load(*b.buf, b.lo + (diag - 1 - mid), TCGPU_SITE());
      if (av <= bv) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Counts the matches whose A-element lies in [pa, a_end). The B cursor
  /// starts at the diagonal's split and may run past the lane's window —
  /// ties split across a diagonal are thereby credited to exactly the lane
  /// owning the A-element. Both elements load every iteration.
  static std::uint64_t count_window(simt::ThreadCtx& ctx, ListRef a,
                                    std::uint32_t pa, std::uint32_t a_end,
                                    ListRef b, std::uint32_t pb) {
    std::uint64_t local = 0;
    while (pa < a_end && pb < b.hi) {
      const std::uint32_t x = ctx.load(*a.buf, pa, TCGPU_SITE());
      const std::uint32_t y = ctx.load(*b.buf, pb, TCGPU_SITE());
      if (x == y) {
        ++local;
        ++pa;
        ++pb;
      } else if (x < y) {
        ++pa;
      } else {
        ++pb;
      }
    }
    return local;
  }
};

/// Sequential merge over two index spaces with caller-supplied element
/// probes — for operands that mix shared and global storage (BFS-LA's
/// staged frontier). The probes own the metered accesses, so the call sites
/// stay attributed to the composing kernel.
template <class ProbeA, class ProbeB>
std::uint64_t merge_count_probed(std::uint32_t na, std::uint32_t nb,
                                 ProbeA&& probe_a, ProbeB&& probe_b) {
  std::uint64_t local = 0;
  std::uint32_t i = 0, j = 0;
  while (i < na && j < nb) {
    const std::uint32_t x = probe_a(i);
    const std::uint32_t y = probe_b(j);
    if (x == y) {
      ++local;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return local;
}

/// merge_count_probed's emit form: reports every match to
/// `on_match(value, i, j)` instead of only counting. The stream layer's
/// wedge-delta kernel composes this — delta maintenance needs the surviving
/// common neighbors themselves, not just their number, to credit per-edge
/// support. Probes own the metered accesses, so sites stay attributed to
/// the composing kernel. Returns the match count.
template <class ProbeA, class ProbeB, class OnMatch>
std::uint64_t merge_collect_probed(std::uint32_t na, std::uint32_t nb,
                                   ProbeA&& probe_a, ProbeB&& probe_b,
                                   OnMatch&& on_match) {
  std::uint64_t local = 0;
  std::uint32_t i = 0, j = 0;
  while (i < na && j < nb) {
    const std::uint32_t x = probe_a(i);
    const std::uint32_t y = probe_b(j);
    if (x == y) {
      on_match(x, i, j);
      ++local;
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return local;
}

}  // namespace tcgpu::tc::intersect
