// Fox et al. (HPEC 2018): edge-centric, adaptive binning, binary search.
//
// Each edge's intersection workload is estimated as
// min(d,d')*log2(max(d,d')) and the edge is placed into one of six bins of
// exponentially increasing work; edges of bin n are processed by 2^n
// threads (capped at a warp), so lanes of one warp see near-equal work
// (§III-E, Figure 7). We run the Bin-Search variant — the configuration
// the paper reports (§IV). Because lanes of a warp are mapped to different,
// non-adjacent edges of a bin, Fox's loads scatter — the low memory-access
// efficiency the profiling section calls out falls out of the trace.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class FoxCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t num_bins = 6;
  };

  FoxCounter() : cfg_{} {}
  explicit FoxCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "Fox"; }
  AlgoTraits traits() const override {
    return {"edge", "Merge/Bin-Search", "fine", 2018};
  }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
