// The TriangleCounter interface every algorithm implements, plus the
// metered device-side primitives the kernels share.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simt/launch.hpp"
#include "simt/profiler.hpp"
#include "tc/device_graph.hpp"

namespace tcgpu::tc {

/// Result of running one algorithm on one graph: the exact triangle count
/// plus combined and per-kernel simulator stats.
struct AlgoResult {
  std::uint64_t triangles = 0;
  simt::KernelStats total;  ///< summed over all launches
  std::vector<std::pair<std::string, simt::KernelStats>> launches;

  void add_launch(std::string name, const simt::KernelStats& s) {
    total += s;
    launches.emplace_back(std::move(name), s);
  }
};

/// Taxonomy metadata (Table I columns).
struct AlgoTraits {
  std::string iterator;      ///< "edge" | "vertex"
  std::string intersection;  ///< "Merge" | "Bin-Search" | "Hash" | "BitMap"
  std::string granularity;   ///< "fine" | "coarse"
  int year = 0;
};

class TriangleCounter {
 public:
  virtual ~TriangleCounter() = default;
  virtual std::string name() const = 0;
  virtual AlgoTraits traits() const = 0;
  /// Counts triangles of the oriented DAG already resident on `dev`.
  virtual AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                           const DeviceGraph& g) const = 0;
};

// ---------------------------------------------------------------------------
// Metered device-side primitives
// ---------------------------------------------------------------------------

/// Binary search for `key` in the sorted slice col[lo, hi). Every probe is a
/// metered global load issued from this call site (all callers in one kernel
/// align probe k with probe k across the warp, as the hardware would).
/// Returns true iff found.
inline bool device_binary_search(simt::ThreadCtx& ctx,
                                 const simt::DeviceBuffer<std::uint32_t>& col,
                                 std::uint32_t lo, std::uint32_t hi,
                                 std::uint32_t key) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t v = ctx.load(col, mid, TCGPU_SITE());
    if (v == key) return true;
    if (v < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

/// Metered lower_bound: first index in col[lo, hi) with value > key
/// (i.e. upper_bound). Used by GroupTC's u<v prefix-skip optimization.
inline std::uint32_t device_upper_bound(simt::ThreadCtx& ctx,
                                        const simt::DeviceBuffer<std::uint32_t>& col,
                                        std::uint32_t lo, std::uint32_t hi,
                                        std::uint32_t key) {
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t v = ctx.load(col, mid, TCGPU_SITE());
    if (v <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Flushes a thread-local triangle tally to the global counter (one global
/// atomic per thread that found anything, as the published kernels do).
inline void flush_count(simt::ThreadCtx& ctx, simt::DeviceBuffer<std::uint64_t>& counter,
                        std::uint64_t local) {
  if (local != 0) ctx.atomic_add(counter, 0, local, TCGPU_SITE());
}

/// Grid size heuristic: enough blocks to cover the items once, bounded so
/// per-launch bookkeeping stays sane; at least one wave per SM.
std::uint32_t pick_grid(const simt::GpuSpec& spec, std::uint64_t items,
                        std::uint32_t threads_per_item, std::uint32_t block);

}  // namespace tcgpu::tc
