// The TriangleCounter interface every algorithm implements, plus the
// metered device-side primitives the kernels share.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simt/launch.hpp"
#include "simt/profiler.hpp"
#include "tc/device_graph.hpp"

namespace tcgpu::tc {

/// Result of running one algorithm on one graph: the exact triangle count
/// plus combined and per-kernel simulator stats.
struct AlgoResult {
  std::uint64_t triangles = 0;
  simt::KernelStats total;  ///< summed over all launches
  std::vector<std::pair<std::string, simt::KernelStats>> launches;

  void add_launch(std::string name, const simt::KernelStats& s) {
    total += s;
    launches.emplace_back(std::move(name), s);
  }
};

/// Taxonomy metadata (Table I columns).
struct AlgoTraits {
  std::string iterator;      ///< "edge" | "vertex"
  std::string intersection;  ///< "Merge" | "Bin-Search" | "Hash" | "BitMap"
  std::string granularity;   ///< "fine" | "coarse"
  int year = 0;
};

class TriangleCounter {
 public:
  virtual ~TriangleCounter() = default;
  virtual std::string name() const = 0;
  virtual AlgoTraits traits() const = 0;
  /// Counts triangles of the oriented DAG already resident on `dev`.
  virtual AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                           const DeviceGraph& g) const = 0;
};

// ---------------------------------------------------------------------------
// Metered device-side primitives
// ---------------------------------------------------------------------------
// The intersection primitives (binary_search, upper_bound, the merge/hash/
// bitmap policies) live in tc/intersect/ — one site per program point,
// shared by every kernel that composes the policy.

/// Flushes a thread-local triangle tally to the global counter (one global
/// atomic per thread that found anything, as the published kernels do).
inline void flush_count(simt::ThreadCtx& ctx, simt::DeviceBuffer<std::uint64_t>& counter,
                        std::uint64_t local) {
  if (local != 0) ctx.atomic_add(counter, 0, local, TCGPU_SITE());
}

/// Grid size heuristic: enough blocks to cover the items once, bounded so
/// per-launch bookkeeping stays sane; at least one wave per SM.
std::uint32_t pick_grid(const simt::GpuSpec& spec, std::uint64_t items,
                        std::uint32_t threads_per_item, std::uint32_t block);

}  // namespace tcgpu::tc
