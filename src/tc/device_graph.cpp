#include "tc/device_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::tc {
namespace {

/// Allocates and fills row_ptr/col and computes the degree bound — the part
/// shared by the whole-graph and shard upload paths. Allocation order is
/// part of the contract: scratch devices are based past these buffers.
DeviceGraph upload_csr(simt::Device& dev, const graph::Csr& csr) {
  DeviceGraph g;
  g.num_vertices = csr.num_vertices();
  g.row_ptr = dev.alloc<std::uint32_t>(csr.row_ptr().size(), "row_ptr");
  std::copy(csr.row_ptr().begin(), csr.row_ptr().end(), g.row_ptr.host_data());
  g.col = dev.alloc<std::uint32_t>(csr.col().size(), "col");
  std::copy(csr.col().begin(), csr.col().end(), g.col.host_data());
  for (graph::VertexId u = 0; u < g.num_vertices; ++u) {
    g.max_out_degree = std::max(g.max_out_degree, csr.degree(u));
  }
  return g;
}

}  // namespace

DeviceGraph DeviceGraph::upload(simt::Device& dev, const graph::Csr& dag) {
  DeviceGraph g = upload_csr(dev, dag);
  g.num_edges = dag.num_edges();
  g.edge_u = dev.alloc<std::uint32_t>(g.num_edges, "edge_u");
  g.edge_v = dev.alloc<std::uint32_t>(g.num_edges, "edge_v");
  std::uint32_t e = 0;
  for (graph::VertexId u = 0; u < g.num_vertices; ++u) {
    for (graph::VertexId v : dag.neighbors(u)) {
      g.edge_u.host_data()[e] = u;
      g.edge_v.host_data()[e] = v;
      ++e;
    }
  }
  return g;
}

DeviceGraph DeviceGraph::upload_compressed(simt::Device& dev,
                                           const graph::CompressedCsr& cc) {
  DeviceGraph g;
  g.num_vertices = cc.num_vertices();
  g.num_edges = cc.num_edges();
  g.row_ptr = dev.alloc<std::uint32_t>(cc.row_ptr().size(), "row_ptr");
  std::copy(cc.row_ptr().begin(), cc.row_ptr().end(), g.row_ptr.host_data());
  g.cbase = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, cc.base().size()),
                                     "cbase");
  std::copy(cc.base().begin(), cc.base().end(), g.cbase.host_data());
  g.coff = dev.alloc<std::uint32_t>(cc.offset().size(), "coff");
  std::copy(cc.offset().begin(), cc.offset().end(), g.coff.host_data());
  const std::size_t words = (cc.data().size() + 3) / 4;
  g.cdata = dev.alloc<std::uint32_t>(std::max<std::size_t>(1, words), "cdata");
  for (std::size_t i = 0; i < cc.data().size(); ++i) {
    g.cdata.host_data()[i >> 2] |= static_cast<std::uint32_t>(cc.data()[i])
                                   << ((i & 3) * 8);
  }
  g.compressed_bytes = cc.data().size();
  g.has_compressed = true;
  for (graph::VertexId u = 0; u < g.num_vertices; ++u) {
    g.max_out_degree = std::max(g.max_out_degree, cc.degree(u));
  }
  return g;
}

DeviceGraph DeviceGraph::upload_shard(simt::Device& dev, const graph::Csr& csr,
                                      std::span<const std::uint32_t> edge_u,
                                      std::span<const std::uint32_t> edge_v,
                                      std::span<const std::uint32_t> anchors,
                                      bool use_anchor_list) {
  if (edge_u.size() != edge_v.size()) {
    throw std::invalid_argument("upload_shard: edge endpoint lists differ in size");
  }
  DeviceGraph g = upload_csr(dev, csr);
  g.num_edges = static_cast<std::uint32_t>(edge_u.size());
  g.edge_u = dev.alloc<std::uint32_t>(edge_u.size(), "edge_u");
  std::copy(edge_u.begin(), edge_u.end(), g.edge_u.host_data());
  g.edge_v = dev.alloc<std::uint32_t>(edge_v.size(), "edge_v");
  std::copy(edge_v.begin(), edge_v.end(), g.edge_v.host_data());
  if (use_anchor_list) {
    g.use_anchor_list = true;
    g.num_anchors = static_cast<std::uint32_t>(anchors.size());
    g.anchors = dev.alloc<std::uint32_t>(anchors.size(), "anchors");
    std::copy(anchors.begin(), anchors.end(), g.anchors.host_data());
  }
  return g;
}

}  // namespace tcgpu::tc
