#include "tc/device_graph.hpp"

#include <algorithm>

namespace tcgpu::tc {

DeviceGraph DeviceGraph::upload(simt::Device& dev, const graph::Csr& dag) {
  DeviceGraph g;
  g.num_vertices = dag.num_vertices();
  g.num_edges = dag.num_edges();

  g.row_ptr = dev.alloc<std::uint32_t>(dag.row_ptr().size(), "row_ptr");
  std::copy(dag.row_ptr().begin(), dag.row_ptr().end(), g.row_ptr.host_data());
  g.col = dev.alloc<std::uint32_t>(dag.col().size(), "col");
  std::copy(dag.col().begin(), dag.col().end(), g.col.host_data());

  g.edge_u = dev.alloc<std::uint32_t>(g.num_edges, "edge_u");
  g.edge_v = dev.alloc<std::uint32_t>(g.num_edges, "edge_v");
  std::uint32_t e = 0;
  for (graph::VertexId u = 0; u < g.num_vertices; ++u) {
    g.max_out_degree = std::max(g.max_out_degree, dag.degree(u));
    for (graph::VertexId v : dag.neighbors(u)) {
      g.edge_u.host_data()[e] = u;
      g.edge_v.host_data()[e] = v;
      ++e;
    }
  }
  return g;
}

}  // namespace tcgpu::tc
