#include "tc/tricore.hpp"

#include "tc/intersect/binsearch.hpp"

namespace tcgpu::tc {
namespace {

struct EdgeState {
  std::uint32_t table_lo = 0, table_len = 0;
  std::uint32_t key_lo = 0, key_len = 0;
  std::uint32_t cached_nodes = 0;
};

}  // namespace

AlgoResult TriCoreCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                 const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "tricore_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = 32;
  cfg.grid = pick_grid(spec, g.num_edges, 32, cfg.block);

  const std::uint32_t nodes = (1u << cfg_.cached_levels) - 1;  // <= 31
  const std::uint32_t warps_per_block = cfg.block / 32;

  auto stage = [&](simt::ThreadCtx& ctx, EdgeState& st, std::uint64_t e) {
    const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
    const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
    const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
    // Longer list becomes the search tree (§III-D).
    if (ue - ub >= ve - vb) {
      st.table_lo = ub;
      st.table_len = ue - ub;
      st.key_lo = vb;
      st.key_len = ve - vb;
    } else {
      st.table_lo = vb;
      st.table_len = ve - vb;
      st.key_lo = ub;
      st.key_len = ue - ub;
    }
    st.cached_nodes = 0;
    if (st.table_len >= cfg_.min_table_for_cache && st.key_len > 0) {
      st.cached_nodes = std::min(nodes, st.table_len);
      auto cache =
          ctx.shared_array_tagged<std::uint32_t>(0, warps_per_block * nodes);
      const std::uint32_t k = ctx.group_lane() + 1;  // heap ids 1..32
      if (k <= st.cached_nodes) {
        const std::uint32_t idx = intersect::heap_node_index(k, st.table_len);
        const std::uint32_t val = ctx.load(g.col, st.table_lo + idx, TCGPU_SITE());
        ctx.shared_store(cache, ctx.warp_in_block() * nodes + (k - 1), val, TCGPU_SITE());
      }
    }
  };

  auto search = [&](simt::ThreadCtx& ctx, EdgeState& st, std::uint64_t) {
    if (st.key_len == 0 || st.table_len == 0) return;
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, warps_per_block * nodes);
    std::uint64_t local = 0;
    for (std::uint32_t i = ctx.group_lane(); i < st.key_len; i += 32) {
      const std::uint32_t key = ctx.load(g.col, st.key_lo + i, TCGPU_SITE());  // coalesced
      // Top tree levels come from the warp's shared cache, the rest from
      // global memory — the probe lambda owns both sites.
      if (intersect::heap_search_probe(
              st.table_len, key, [&](std::uint64_t k, std::uint32_t mid) {
                return k <= st.cached_nodes
                           ? ctx.shared_load(
                                 cache, ctx.warp_in_block() * nodes + (k - 1),
                                 TCGPU_SITE())
                           : ctx.load(g.col, st.table_lo + mid, TCGPU_SITE());
              })) {
        ++local;
      }
    }
    flush_count(ctx, counter, local);
  };

  auto stats = simt::launch_items<EdgeState>(spec, cfg, g.num_edges, stage, search);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("tricore_binsearch", stats);
  return r;
}

}  // namespace tcgpu::tc
