// GroupTC (§V): the paper's proposed algorithm. Edge-centric, fine-grained,
// binary search, with the *edge chunk* as the basic scheduling unit.
//
// A block of n threads owns n consecutive edges (consecutive in CSR order,
// so they overwhelmingly share their source vertex u). Phase one caches the
// per-edge search-table/key descriptors in shared memory; phase two walks
// the chunk's concatenated key lists with stride n (Hu-style flattening, so
// every thread gets near-identical work even when individual lists are
// tiny — the failure mode that hurts TRUST on small graphs) and binary
// searches each key in the edge's search table.
//
// The three optimizations of §V, all individually switchable (the
// ablation bench sweeps them):
//  1. u<v prefix skip  — keys live in N+(v), all > v, so only the suffix of
//     N+(u) beyond v can match; edges whose suffix is empty are dropped
//     outright ("for the edge (0,8), no search is required").
//  2. Monotone search offset — a thread's successive keys for one edge
//     ascend, so each search resumes from the previous hit position.
//  3. Search-table flip — default to the shared vertex u (cache reuse
//     across the chunk) unless v's list is more than flip_ratio times
//     smaller than u's suffix.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class GroupTcCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;  ///< chunk size n == block size
    bool prefix_skip = true;    ///< optimization 1
    bool monotone_offset = true;///< optimization 2
    bool table_flip = true;     ///< optimization 3
    std::uint32_t flip_ratio = 4;
  };

  GroupTcCounter() : cfg_{} {}
  explicit GroupTcCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "GroupTC"; }
  AlgoTraits traits() const override { return {"edge", "Bin-Search", "fine", 2024}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
