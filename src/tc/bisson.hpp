// Bisson & Fatica (TPDS 2017): vertex-centric, bitmap intersection.
//
// For each vertex u, a bitmap marks N+(u); every 2-hop neighbor then probes
// the bitmap (§III-C, Figure 5). Granularity follows the paper's
// average-degree switch: block per vertex (> 38), warp per vertex
// (3.8 .. 38), single thread per vertex (< 3.8). In block mode the bitmap
// lives in shared memory when V bits fit (paper's optimization); otherwise
// a per-block global scratch bitmap is used. Only the bits of N+(u) are set
// and cleared per vertex (clearing the whole V-bit map per vertex would be
// quadratic — the published code does the same).
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class BissonCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    double block_threshold = 38.0;  ///< avg degree above which: block/vertex
    double warp_threshold = 3.8;    ///< avg degree above which: warp/vertex
  };

  BissonCounter() : cfg_{} {}
  explicit BissonCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "Bisson"; }
  AlgoTraits traits() const override { return {"vertex", "BitMap", "coarse", 2017}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
