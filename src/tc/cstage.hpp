// CStage: vertex-centric, coarse-grained merge over compressed rows with a
// shared-memory staged anchor row.
//
// CMerge re-decodes the anchor row N+(u) once per neighbor; CStage pays the
// decode once — thread 0 of the block streams N+(u) into shared memory
// (decode is inherently sequential), then every thread takes one staged
// neighbor v and merges v's compressed stream against the staged row with
// shared-memory probes (the BFS-LA staging idea applied to compressed
// adjacency). Rows longer than the shared cache keep exactness via two
// fallbacks: staged v's count their tail matches with a dual-cursor merge
// restricted to anchor positions past the staged prefix, and tail v's are
// processed whole by thread 0. Like CMerge it self-stages a compressed
// copy on scratch when handed a raw image.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class CStageCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t cache_entries = 2048;
  };

  CStageCounter() : cfg_{} {}
  explicit CStageCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "CStage"; }
  AlgoTraits traits() const override { return {"vertex", "Merge", "coarse", 2024}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
