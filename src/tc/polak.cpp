#include "tc/polak.hpp"

#include "tc/intersect/merge.hpp"

namespace tcgpu::tc {

AlgoResult PolakCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                               const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "polak_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = 1;
  cfg.grid = pick_grid(spec, g.num_edges, 1, cfg.block);

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, g.num_edges,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
        const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
        const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
        const std::uint32_t pu = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t eu = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        const std::uint32_t pv = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t ev = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        const std::uint64_t local = intersect::MergeRegisterCached::count(
            ctx, {&g.col, pu, eu}, {&g.col, pv, ev});
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("polak_merge", stats);
  return r;
}

}  // namespace tcgpu::tc
