// H-INDEX (HPEC 2019): edge-centric, fine-grained, hash intersection.
//
// A warp owns one edge: the shorter oriented neighbor list is inserted into
// a 32-bucket hash table (len[] + element rows, "row-order" so that lanes
// probing the same slot of different buckets coalesce), the longer list
// supplies the queries (§III-G, Figure 9). The first `shared_slots` row(s)
// of every bucket live in shared memory; overflow spills to a per-warp
// global region scanned linearly — which is exactly the collision
// degradation the paper observes on large high-degree graphs with only 32
// buckets. The paper evaluates the warp configuration (its block
// configuration produced wrong results); both are implemented here and the
// warp one is the default.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class HIndexCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t buckets = 32;       ///< hash buckets (paper: warp size)
    std::uint32_t shared_slots = 4;   ///< bucket rows kept in shared memory
    bool block_per_edge = false;      ///< paper benchmarks the warp config
  };

  HIndexCounter() : cfg_{} {}
  explicit HIndexCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "H-INDEX"; }
  AlgoTraits traits() const override { return {"edge", "Hash", "fine", 2019}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
