// Polak (IPDPSW 2016): edge-centric, coarse-grained, merge intersection.
//
// One thread owns one edge (u,v) and linearly merges the sorted oriented
// neighbor lists of u and v (§III-A, Figure 3). The total work per thread is
// d+(u)+d+(v); the paper credits Polak's small total memory-access count for
// its dominance on small datasets, and its per-thread workload imbalance and
// uncoalesced sequential reads for its fade on large ones — both of which
// the simulator reproduces from the access trace.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class PolakCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
  };

  PolakCounter() : cfg_{} {}
  explicit PolakCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "Polak"; }
  AlgoTraits traits() const override { return {"edge", "Merge", "coarse", 2016}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
