#include "tc/mergepath.hpp"

#include "tc/intersect/merge.hpp"

namespace tcgpu::tc {

AlgoResult MergePathCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                   const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "mergepath_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = 32;
  cfg.grid = pick_grid(spec, g.num_edges, 32, cfg.block);

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, g.num_edges,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
        const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
        const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
        const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        const intersect::ListRef a{&g.col, ub, ue};
        const intersect::ListRef b{&g.col, vb, ve};
        if (a.empty() || b.empty()) return;

        // Lane t owns diagonals [d0, d1) of the |A|+|B| merge path; the two
        // diagonal searches bound an equal-work merge window per lane.
        const std::uint64_t total = a.size() + b.size();
        const std::uint32_t t = ctx.group_lane();
        const std::uint32_t d0 = static_cast<std::uint32_t>(total * t / 32);
        const std::uint32_t d1 = static_cast<std::uint32_t>(total * (t + 1) / 32);
        if (d0 >= d1) return;
        const std::uint32_t ai0 = intersect::MergePath::split(ctx, a, b, d0);
        const std::uint32_t ai1 = intersect::MergePath::split(ctx, a, b, d1);
        const std::uint32_t bi0 = d0 - ai0;

        const std::uint64_t local = intersect::MergePath::count_window(
            ctx, a, a.lo + ai0, a.lo + ai1, b, b.lo + bi0);
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("mergepath_warp", stats);
  return r;
}

}  // namespace tcgpu::tc
