#include "tc/hindex.hpp"

#include "tc/intersect/hash.hpp"

namespace tcgpu::tc {

AlgoResult HIndexCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "hindex_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.block_per_edge ? cfg_.block : 32u;
  cfg.grid = pick_grid(spec, g.num_edges, cfg.group_size, cfg.block);

  const std::uint32_t buckets = cfg_.buckets;
  const std::uint32_t slots = cfg_.shared_slots;
  const std::uint32_t teams_per_block = cfg_.block_per_edge ? 1u : cfg.block / 32;
  const std::uint32_t teams_total = cfg.grid * teams_per_block;
  // Worst case the whole shorter list lands in one bucket and spills.
  const std::uint32_t ovf_cap = std::max<std::uint32_t>(1, g.max_out_degree);
  auto overflow = dev.alloc<std::uint32_t>(
      static_cast<std::size_t>(teams_total) * ovf_cap, "hindex_overflow");

  auto team_in_block = [teams_per_block](simt::ThreadCtx& ctx) -> std::uint32_t {
    return teams_per_block == 1 ? 0u : ctx.warp_in_block();
  };
  auto team_lane = [teams_per_block](simt::ThreadCtx& ctx) -> std::uint32_t {
    return teams_per_block == 1 ? ctx.thread_in_block() : ctx.group_lane();
  };
  const std::uint32_t team_size = cfg.group_size;

  // Shared layout (per team slice): len[buckets], table[slots*buckets]
  // in row-order — element s of all buckets is contiguous (§III-G) — and a
  // one-word overflow cursor.
  auto len_array = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(0, teams_per_block * buckets);
  };
  auto table_array = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(1,
                                                  teams_per_block * slots * buckets);
  };
  auto ovf_cursor = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(2, teams_per_block);
  };

  auto team_hash = [&](simt::ThreadCtx& ctx) {
    const std::uint32_t t = team_in_block(ctx);
    return intersect::BucketedHash{len_array(ctx),
                                   table_array(ctx),
                                   ovf_cursor(ctx),
                                   &overflow,
                                   t,
                                   buckets,
                                   slots,
                                   ctx.block_id() * teams_per_block + t,
                                   ovf_cap};
  };

  auto reset = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    team_hash(ctx).reset_slice(ctx, team_lane(ctx), team_size);
  };

  auto build = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
    const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
    const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
    const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
    // Shorter list builds the table (reduces collisions, §III-G).
    const bool u_shorter = (ue - ub) <= (ve - vb);
    const std::uint32_t lo = u_shorter ? ub : vb;
    const std::uint32_t hi = u_shorter ? ue : ve;

    auto h = team_hash(ctx);
    for (std::uint32_t i = lo + team_lane(ctx); i < hi; i += team_size) {
      const std::uint32_t x = ctx.load(g.col, i, TCGPU_SITE());
      h.insert(ctx, x);
    }
  };

  auto probe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
    const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
    const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
    const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
    const bool u_shorter = (ue - ub) <= (ve - vb);
    const std::uint32_t qlo = u_shorter ? vb : ub;  // longer list = queries
    const std::uint32_t qhi = u_shorter ? ve : ue;

    auto h = team_hash(ctx);
    std::uint64_t local = 0;
    for (std::uint32_t i = qlo + team_lane(ctx); i < qhi; i += team_size) {
      const std::uint32_t key = ctx.load(g.col, i, TCGPU_SITE());
      if (h.contains(ctx, key)) ++local;
    }
    flush_count(ctx, counter, local);
  };

  auto stats =
      simt::launch_items<simt::NoState>(spec, cfg, g.num_edges, reset, build, probe);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch(cfg_.block_per_edge ? "hindex_block" : "hindex_warp", stats);
  return r;
}

}  // namespace tcgpu::tc
