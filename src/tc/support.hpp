// Per-edge triangle support — the quantity k-truss decomposition peels on
// (the paper's introduction motivates triangle counting with exactly this:
// "finding many applications like k-truss analysis").
//
// For every DAG edge e, support[e] = number of triangles containing e.
// The kernel reuses GroupTC's edge-chunk scheduling; because the edge list
// is in CSR order, a match found at column index i *is* the edge id of the
// corresponding DAG edge, so each discovered triangle (u,v,w) can credit
// all three of its edges with plain atomics.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "tc/common.hpp"

namespace tcgpu::tc {

struct SupportResult {
  simt::KernelStats stats;
  std::uint64_t triangles = 0;  ///< sum(support) / 3, for validation
};

/// Computes per-edge triangle support into `support` (size == g.num_edges,
/// zeroed by the caller or freshly allocated). Chunked like GroupTC;
/// `block` is the chunk size.
SupportResult count_edge_support(simt::Device& dev, const simt::GpuSpec& spec,
                                 const DeviceGraph& g,
                                 simt::DeviceBuffer<std::uint32_t>& support,
                                 std::uint32_t block = 256);

/// Host-side reference: support[e] in the DAG's CSR edge order, by plain
/// forward-algorithm row intersections. The streaming layer seeds its
/// per-edge support store from this, and the churn equivalence tests
/// recount with it at every version.
std::vector<std::uint32_t> cpu_edge_support(const graph::Csr& dag);

}  // namespace tcgpu::tc
