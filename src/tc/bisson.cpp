#include "tc/bisson.hpp"

#include <algorithm>

#include "tc/intersect/bitmap.hpp"
#include "tc/intersect/merge.hpp"

namespace tcgpu::tc {

AlgoResult BissonCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "bisson_count");
  AlgoResult r;

  const double avg_out_degree =
      g.num_vertices == 0
          ? 0.0
          : static_cast<double>(g.num_edges) / static_cast<double>(g.num_vertices);
  // Table II's avg degree is the undirected one (2E/V); the paper's 38/3.8
  // switch refers to it, so compare against 2 * E/V.
  const double avg_degree = 2.0 * avg_out_degree;

  const std::uint32_t words = (g.num_vertices + 31) / 32;

  // Sharded images restrict the vertex iteration to the owned anchor list
  // (one metered indirection, as TRUST pays for its vertex lists); whole
  // graphs keep the direct item == vertex mapping.
  const std::uint64_t items = g.vertex_items();
  auto anchor_of = [&g](simt::ThreadCtx& ctx, std::uint64_t item) {
    return g.use_anchor_list ? ctx.load(g.anchors, item, TCGPU_SITE())
                             : static_cast<std::uint32_t>(item);
  };

  if (avg_degree > cfg_.block_threshold) {
    // ---- block per vertex ------------------------------------------------
    simt::LaunchConfig cfg;
    cfg.block = cfg_.block;
    cfg.group_size = cfg_.block;
    cfg.grid = std::min<std::uint32_t>(pick_grid(spec, items, cfg.block, cfg.block),
                                       2 * spec.sm_count);
    const bool in_shared = words * 4ull <= spec.shared_mem_per_block;
    simt::DeviceBuffer<std::uint32_t> scratch;
    if (!in_shared) {
      scratch = dev.alloc<std::uint32_t>(static_cast<std::size_t>(cfg.grid) * words,
                                         "bisson_bitmap");
    }

    auto block_bitmap = [&](simt::ThreadCtx& ctx) {
      intersect::VertexBitmap bm;
      bm.in_shared = in_shared;
      if (in_shared) bm.sm = ctx.shared_array_tagged<std::uint32_t>(0, words);
      bm.gm = &scratch;
      bm.base = static_cast<std::size_t>(ctx.block_id()) * words;
      return bm;
    };

    auto set_bit = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = block_bitmap(ctx);
      for (std::uint32_t i = ub + ctx.thread_in_block(); i < ue; i += ctx.block_dim()) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        bm.set(ctx, v);
      }
    };
    auto probe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = block_bitmap(ctx);
      std::uint64_t local = 0;
      // One thread processes one 2-hop list (§III-C).
      for (std::uint32_t i = ub + ctx.thread_in_block(); i < ue; i += ctx.block_dim()) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t vend = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        for (std::uint32_t j = vb; j < vend; ++j) {
          const std::uint32_t w = ctx.load(g.col, j, TCGPU_SITE());
          if (bm.test(ctx, w)) ++local;
        }
      }
      flush_count(ctx, counter, local);
    };
    auto clear_bit = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = block_bitmap(ctx);
      for (std::uint32_t i = ub + ctx.thread_in_block(); i < ue; i += ctx.block_dim()) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        bm.clear(ctx, v);
      }
    };

    auto stats = simt::launch_items<simt::NoState>(spec, cfg, items, set_bit,
                                                   probe, clear_bit);
    r.add_launch(in_shared ? "bisson_block_shared" : "bisson_block_global", stats);
  } else if (avg_degree > cfg_.warp_threshold) {
    // ---- warp per vertex ---------------------------------------------------
    simt::LaunchConfig cfg;
    cfg.block = cfg_.block;
    cfg.group_size = 32;
    cfg.grid = std::min<std::uint32_t>(pick_grid(spec, items, 32, cfg.block),
                                       spec.sm_count);
    const std::uint32_t warps = cfg.grid * (cfg.block / 32);
    auto scratch = dev.alloc<std::uint32_t>(static_cast<std::size_t>(warps) * words,
                                            "bisson_bitmap_warp");
    auto warp_bitmap = [&](simt::ThreadCtx& ctx) {
      intersect::VertexBitmap bm;
      bm.gm = &scratch;
      bm.base = static_cast<std::size_t>(ctx.block_id() * (ctx.block_dim() / 32) +
                                         ctx.warp_in_block()) *
                words;
      return bm;
    };

    auto set_bit = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = warp_bitmap(ctx);
      for (std::uint32_t i = ub + ctx.group_lane(); i < ue; i += 32) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        bm.set(ctx, v);
      }
    };
    auto probe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = warp_bitmap(ctx);
      std::uint64_t local = 0;
      for (std::uint32_t i = ub + ctx.group_lane(); i < ue; i += 32) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t vend = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        for (std::uint32_t j = vb; j < vend; ++j) {
          const std::uint32_t w = ctx.load(g.col, j, TCGPU_SITE());
          if (bm.test(ctx, w)) ++local;
        }
      }
      flush_count(ctx, counter, local);
    };
    auto clear_bit = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
      const std::uint32_t u = anchor_of(ctx, item);
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      auto bm = warp_bitmap(ctx);
      for (std::uint32_t i = ub + ctx.group_lane(); i < ue; i += 32) {
        const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
        bm.clear(ctx, v);
      }
    };

    auto stats = simt::launch_items<simt::NoState>(spec, cfg, items, set_bit,
                                                   probe, clear_bit);
    r.add_launch("bisson_warp", stats);
  } else {
    // ---- one thread per vertex (sparse graphs) ----------------------------
    // With < 4 neighbors on average a bitmap buys nothing; the published
    // low-degree path degenerates to per-thread sequential intersection,
    // which the paper likens to Polak ("uses one thread to process the
    // computation around one edge").
    simt::LaunchConfig cfg;
    cfg.block = cfg_.block;
    cfg.group_size = 1;
    cfg.grid = pick_grid(spec, items, 1, cfg.block);

    auto stats = simt::launch_items<simt::NoState>(
        spec, cfg, items,
        [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
          const std::uint32_t u = anchor_of(ctx, item);
          const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
          const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
          std::uint64_t local = 0;
          for (std::uint32_t i = ub; i < ue; ++i) {
            const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
            const std::uint32_t pb = ctx.load(g.row_ptr, v, TCGPU_SITE());
            const std::uint32_t eb = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
            // N+(u) ∩ N+(v) starting past v's slot; both sorted, w > v.
            local += intersect::MergeSequential::count(ctx, {&g.col, i + 1, ue},
                                                       {&g.col, pb, eb});
          }
          flush_count(ctx, counter, local);
        });
    r.add_launch("bisson_thread", stats);
  }

  r.triangles = counter.host_span()[0];
  return r;
}

}  // namespace tcgpu::tc
