#include "tc/hu.hpp"

#include <algorithm>

#include "tc/intersect/binsearch.hpp"

namespace tcgpu::tc {

AlgoResult HuCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                            const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "hu_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.block;
  cfg.grid = pick_grid(spec, g.vertex_items(), cfg.block, cfg.block);

  const std::uint32_t cache_cap = std::min<std::uint32_t>(
      cfg_.cache_entries, spec.shared_mem_per_block / sizeof(std::uint32_t) - 64);

  // Phase 1 — "Caching neighbors": stage min(d+(u), cache_cap) of N+(u).
  auto stage = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t staged = std::min(ue - ub, cache_cap);
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);
    for (std::uint32_t i = ctx.thread_in_block(); i < staged; i += ctx.block_dim()) {
      ctx.shared_store(cache, i, ctx.load(g.col, ub + i, TCGPU_SITE()), TCGPU_SITE());
    }
  };

  // Phase 2 — "Fine-grained search": Algorithm 1 of the paper.
  auto search = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());     // col[u]
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE()); // col[u+1]
    const std::uint32_t u_deg = ue - ub;
    if (u_deg == 0) return;
    const std::uint32_t staged = std::min(u_deg, cache_cap);

    std::uint64_t tc = 0;
    std::uint32_t v_offset = ctx.thread_in_block();  // Alg.1 line 2
    std::uint32_t u_point = ub;                      // Alg.1 line 3
    std::uint32_t v = ctx.load(g.col, u_point, TCGPU_SITE());      // Alg.1 line 5
    std::uint32_t v_point = ctx.load(g.row_ptr, v, TCGPU_SITE());
    std::uint32_t v_degree = ctx.load(g.row_ptr, v + 1, TCGPU_SITE()) - v_point;

    while (u_point < ue) {  // Alg.1 line 4
      // Advance to the v whose 2-hop slice contains v_offset (lines 9-14).
      while (u_point < ue && v_offset >= v_degree) {
        v_offset -= v_degree;
        ++u_point;
        if (u_point >= ue) break;
        v = ctx.load(g.col, u_point, TCGPU_SITE());
        v_point = ctx.load(g.row_ptr, v, TCGPU_SITE());
        v_degree = ctx.load(g.row_ptr, v + 1, TCGPU_SITE()) - v_point;
      }
      if (u_point < ue) {  // lines 15-18
        const std::uint32_t w = ctx.load(g.col, v_point + v_offset, TCGPU_SITE());
        // binSearch(w, u): shared for the staged prefix, global beyond (the
        // probe lambda owns both sites, keeping attribution in this kernel).
        if (intersect::binary_search_probe(0u, u_deg, w, [&](std::uint32_t mid) {
              return mid < staged ? ctx.shared_load(cache, mid, TCGPU_SITE())
                                  : ctx.load(g.col, ub + mid, TCGPU_SITE());
            })) {
          ++tc;
        }
      }
      v_offset += ctx.block_dim();  // Alg.1 line 19
    }
    ctx.compute(5);  // Alg.1 line 21: in-warp reduction of tc
    flush_count(ctx, counter, tc);
  };

  auto stats =
      simt::launch_items<simt::NoState>(spec, cfg, g.vertex_items(), stage, search);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("hu_fine_grained", stats);
  return r;
}

}  // namespace tcgpu::tc
