// Green (IA^3 2014): edge-centric, fine-grained, parallel merge.
//
// A fixed team of threads (32 in the paper's best configuration, §IV)
// cooperates on each edge: the source list is partitioned into equal chunks,
// each lane binary-searches the matching window of the other list and merges
// its pair of small lists (§III-B, Figure 4). The partitioning pays off on
// big lists but — as the paper observes — wastes thread resources on the
// many small-neighborhood edges of real graphs.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class GreenCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 512;            ///< paper's reported best blockSize
    std::uint32_t threads_per_edge = 32;  ///< paper's reported best team size
  };

  GreenCounter() : cfg_{} {}
  explicit GreenCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "Green"; }
  AlgoTraits traits() const override { return {"edge", "Merge", "fine", 2014}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
