#include "tc/cmerge.hpp"

#include "tc/intersect/varint.hpp"

namespace tcgpu::tc {

AlgoResult CMergeCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "cmerge_count");

  intersect::StagedCompressed staged;
  intersect::CompressedView cv;
  if (g.has_compressed) {
    cv = {&g.cbase, &g.coff, &g.cdata};
  } else {
    staged = intersect::stage_compressed(dev, g);
    cv = {&staged.base, &staged.off, &staged.data};
  }

  const std::uint64_t items = g.vertex_items();

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = 1;
  cfg.grid = pick_grid(spec, items, 1, cfg.block);

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, items,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
        const std::uint32_t u =
            g.use_anchor_list ? ctx.load(g.anchors, item, TCGPU_SITE())
                              : static_cast<std::uint32_t>(item);
        const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        const std::uint32_t du = ue - ub;
        if (du < 2) return;
        const std::uint32_t ubase = ctx.load(*cv.base, u, TCGPU_SITE());
        const std::uint32_t ulo = ctx.load(*cv.off, u, TCGPU_SITE());

        std::uint64_t local = 0;
        intersect::VarintCursor outer(ubase, ulo, du);
        while (!outer.done()) {
          const std::uint32_t v = outer.next(ctx, *cv.data);
          const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
          const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
          const std::uint32_t dv = ve - vb;
          if (dv == 0) continue;
          const std::uint32_t vbase = ctx.load(*cv.base, v, TCGPU_SITE());
          const std::uint32_t vlo = ctx.load(*cv.off, v, TCGPU_SITE());
          local += intersect::merge_cursor_cursor(
              ctx, intersect::VarintCursor(ubase, ulo, du), *cv.data,
              intersect::VarintCursor(vbase, vlo, dv), *cv.data);
        }
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("cmerge_thread", stats);
  return r;
}

}  // namespace tcgpu::tc
