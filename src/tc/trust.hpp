// TRUST (TPDS 2021): vertex-centric, fine-grained, hash intersection.
//
// The study's overall winner on medium-to-large graphs. TRUST marries Hu's
// flattened 2-hop iteration with H-INDEX's hash probing (§III-H,
// Figure 10), and balances work with a degree-split heuristic:
//   d+(u) > 100          -> one 1024-thread block, 1024-bucket hash table
//   2 <= d+(u) <= 100    -> one 32-thread warp, 32-bucket hash table
//   d+(u) < 2            -> skipped (cannot pivot a triangle)
// Hash tables live in shared memory (len rows + element rows, row-order),
// with per-team global overflow for pathological buckets.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class TrustCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block_threshold = 100;  ///< out-degree above which: block kernel
    std::uint32_t block_dim = 1024;       ///< paper: fixed 1024-thread blocks
    std::uint32_t block_buckets = 1024;   ///< paper: 1024 buckets
    std::uint32_t warp_buckets = 32;      ///< paper: 32 buckets
    std::uint32_t block_slots = 8;        ///< shared element rows (block kernel)
    std::uint32_t warp_slots = 4;         ///< shared element rows (warp kernel)
    std::uint32_t warp_kernel_block = 256;
  };

  TrustCounter() : cfg_{} {}
  explicit TrustCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "TRUST"; }
  AlgoTraits traits() const override { return {"vertex", "Hash", "fine", 2021}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
