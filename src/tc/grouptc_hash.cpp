#include "tc/grouptc_hash.hpp"

#include "tc/intersect/binsearch.hpp"
#include "tc/intersect/hash.hpp"

namespace tcgpu::tc {

using intersect::kNoTable;

AlgoResult GroupTcHashCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                     const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "grouptc_h_count");

  const std::uint32_t n = cfg_.block;
  const std::uint64_t chunks = (static_cast<std::uint64_t>(g.num_edges) + n - 1) / n;
  const std::uint32_t pool_entries = cfg_.pool_entries;

  simt::LaunchConfig cfg;
  cfg.block = n;
  cfg.group_size = n;
  cfg.grid = pick_grid(spec, chunks, n, n);

  auto table_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(0, n);
  };
  auto table_hi_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(1, n);
  };
  auto key_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(2, n);
  };
  auto prefix_a = [&](simt::ThreadCtx& ctx) {  // seeded with key lengths
    return ctx.shared_array_tagged<std::uint32_t>(3, n);
  };
  auto prefix_b = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(8, n);
  };
  auto hash_off_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(4, n);
  };
  auto hash_cap_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(5, n);
  };
  auto pool_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(6, pool_entries);
  };
  auto cursor_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(7, 1);
  };

  const bool prefix_skip = cfg_.prefix_skip;

  // Phase 0: reset the pool cursor for this chunk.
  auto reset = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    if (ctx.thread_in_block() == 0) {
      auto cursor = cursor_arr(ctx);
      ctx.shared_store(cursor, 0, 0u, TCGPU_SITE());
    }
  };

  // Phase 1: describe this thread's edge and reserve pool space.
  auto describe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t chunk) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto k_len = prefix_a(ctx);
    auto h_off = hash_off_arr(ctx);
    auto h_cap = hash_cap_arr(ctx);
    auto cursor = cursor_arr(ctx);
    const std::uint32_t tid = ctx.thread_in_block();
    const std::uint64_t e = chunk * n + tid;
    std::uint32_t d_tlo = 0, d_thi = 0, d_klo = 0, d_klen = 0;
    std::uint32_t d_off = kNoTable, d_cap = 0;
    if (e < g.num_edges) {
      const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
      const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
      const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
      const std::uint32_t a_lo =
          prefix_skip ? intersect::upper_bound(ctx, g.col, ub, ue, v) : ub;
      const std::uint32_t a_len = ue - a_lo;
      const std::uint32_t b_len = ve - vb;
      if (a_len != 0 && b_len != 0) {
        d_tlo = a_lo;
        d_thi = ue;
        d_klo = vb;
        d_klen = b_len;
        // Reserve 2x table size, power of two, from the shared pool; edges
        // that do not fit fall back to binary search (§V's "larger hash
        // table" concern, resolved by a bounded pool).
        const std::uint32_t want = intersect::pow2_at_least(a_len * 2);
        if (want <= pool_entries) {
          const std::uint32_t off = ctx.shared_atomic_add(cursor, 0, want, TCGPU_SITE());
          if (off + want <= pool_entries) {
            d_off = off;
            d_cap = want;
          }
        }
      }
    }
    ctx.shared_store(t_lo, tid, d_tlo, TCGPU_SITE());
    ctx.shared_store(t_hi, tid, d_thi, TCGPU_SITE());
    ctx.shared_store(k_lo, tid, d_klo, TCGPU_SITE());
    ctx.shared_store(k_len, tid, d_klen, TCGPU_SITE());
    ctx.shared_store(h_off, tid, d_off, TCGPU_SITE());
    ctx.shared_store(h_cap, tid, d_cap, TCGPU_SITE());
  };

  // Phase 2: each thread initializes and builds its edge's hash region.
  auto build = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto h_off = hash_off_arr(ctx);
    auto h_cap = hash_cap_arr(ctx);
    auto pool = pool_arr(ctx);
    const std::uint32_t tid = ctx.thread_in_block();
    const std::uint32_t off = ctx.shared_load(h_off, tid, TCGPU_SITE());
    if (off == kNoTable) return;
    const std::uint32_t cap = ctx.shared_load(h_cap, tid, TCGPU_SITE());
    intersect::linear_probe_clear(ctx, pool, off, cap);
    const std::uint32_t lo = ctx.shared_load(t_lo, tid, TCGPU_SITE());
    const std::uint32_t hi = ctx.shared_load(t_hi, tid, TCGPU_SITE());
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::uint32_t x = ctx.load(g.col, i, TCGPU_SITE());
      intersect::linear_probe_insert(ctx, pool, off, cap, x);
    }
  };

  // Hillis-Steele scan round over the key lengths (same scheme as GroupTC).
  auto scan_round = [&](std::uint32_t stride, bool from_a) {
    return [&, stride, from_a](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
      auto src = from_a ? prefix_a(ctx) : prefix_b(ctx);
      auto dst = from_a ? prefix_b(ctx) : prefix_a(ctx);
      const std::uint32_t tid = ctx.thread_in_block();
      std::uint32_t v = ctx.shared_load(src, tid, TCGPU_SITE());
      if (stride < n && tid >= stride) {
        v += ctx.shared_load(src, tid - stride, TCGPU_SITE());
      }
      ctx.shared_store(dst, tid, v, TCGPU_SITE());
    };
  };

  // Final phase: GroupTC's strided key iteration, probing hashes.
  auto probe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto prefix = prefix_a(ctx);
    auto h_off = hash_off_arr(ctx);
    auto h_cap = hash_cap_arr(ctx);
    auto pool = pool_arr(ctx);

    const std::uint32_t total = ctx.shared_load(prefix, n - 1, TCGPU_SITE());
    std::uint64_t local = 0;
    std::uint32_t cur_base = 0, cur_limit = 0;
    std::uint32_t cur_tlo = 0, cur_thi = 0, cur_klo = 0;
    std::uint32_t cur_off = kNoTable, cur_cap = 0;

    for (std::uint32_t kidx = ctx.thread_in_block(); kidx < total; kidx += n) {
      if (kidx >= cur_limit) {
        const std::uint32_t j = intersect::shared_prefix_search(ctx, prefix, n, kidx);
        cur_base = j == 0 ? 0 : ctx.shared_load(prefix, j - 1, TCGPU_SITE());
        cur_limit = ctx.shared_load(prefix, j, TCGPU_SITE());
        cur_tlo = ctx.shared_load(t_lo, j, TCGPU_SITE());
        cur_thi = ctx.shared_load(t_hi, j, TCGPU_SITE());
        cur_klo = ctx.shared_load(k_lo, j, TCGPU_SITE());
        cur_off = ctx.shared_load(h_off, j, TCGPU_SITE());
        cur_cap = ctx.shared_load(h_cap, j, TCGPU_SITE());
      }
      const std::uint32_t koff = kidx - cur_base;
      const std::uint32_t key = ctx.load(g.col, cur_klo + koff, TCGPU_SITE());
      if (cur_off != kNoTable) {
        if (intersect::linear_probe_contains(ctx, pool, cur_off, cur_cap, key)) {
          ++local;
        }
      } else if (intersect::binary_search(ctx, g.col, cur_tlo, cur_thi, key)) {
        ++local;
      }
    }
    flush_count(ctx, counter, local);
  };

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, chunks, reset, describe, build, scan_round(1, true),
      scan_round(2, false), scan_round(4, true), scan_round(8, false),
      scan_round(16, true), scan_round(32, false), scan_round(64, true),
      scan_round(128, false), scan_round(256, true), scan_round(512, false),
      probe);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("grouptc_hash_chunk", stats);
  return r;
}

}  // namespace tcgpu::tc
