// Device-resident graph image shared by all triangle-counting kernels.
//
// Holds the oriented DAG as CSR (row_ptr/col) plus the explicit edge list
// (edge_u/edge_v, in CSR order — so consecutive edges share their source
// vertex, the locality GroupTC's chunking exploits). All arrays are 32-bit,
// as in the published CUDA implementations.
//
// Multi-GPU shards (src/dist/) use the same image with two twists: the edge
// list holds only the shard's *owned* anchor edges (edge-iterator kernels
// therefore count exactly the triangles anchored at them), and an optional
// `anchors` work list names the shard's owned anchor vertices (vertex-
// iterator kernels iterate it instead of [0, num_vertices), TRUST-vlist
// style). Single-device images never set the anchor list, so their address
// stream and metrics are untouched.
#pragma once

#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "simt/device.hpp"

namespace tcgpu::tc {

struct DeviceGraph {
  simt::DeviceBuffer<std::uint32_t> row_ptr;  ///< size V+1
  simt::DeviceBuffer<std::uint32_t> col;      ///< size E, sorted per row
  simt::DeviceBuffer<std::uint32_t> edge_u;   ///< owned edges, CSR order
  simt::DeviceBuffer<std::uint32_t> edge_v;   ///< owned edges
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;  ///< owned edge count (== CSR edges unsharded)
  std::uint32_t max_out_degree = 0;

  /// Sharded images only: the owned anchor vertices vertex-iterator kernels
  /// must restrict themselves to. Empty + false on single-device images.
  simt::DeviceBuffer<std::uint32_t> anchors;
  std::uint32_t num_anchors = 0;
  bool use_anchor_list = false;

  /// Compressed images only (upload_compressed): per-row (base, varint
  /// delta-stream) adjacency. cdata packs the byte stream little-endian,
  /// four bytes per u32 word, so decode costs ~bytes/4 word loads instead
  /// of one load per neighbor. col/edge_u/edge_v stay empty — only the
  /// on-the-fly-decoding kernels (CMerge, CStage) can run such an image.
  simt::DeviceBuffer<std::uint32_t> cbase;  ///< size V: first neighbor
  simt::DeviceBuffer<std::uint32_t> coff;   ///< size V+1: byte offsets
  simt::DeviceBuffer<std::uint32_t> cdata;  ///< packed varint bytes
  std::uint64_t compressed_bytes = 0;       ///< delta-stream length
  bool has_compressed = false;

  /// Work-list size for vertex-iterator kernels.
  std::uint64_t vertex_items() const {
    return use_anchor_list ? num_anchors : num_vertices;
  }

  /// Uploads an oriented DAG (u < v for every edge; see graph::orient).
  static DeviceGraph upload(simt::Device& dev, const graph::Csr& dag);

  /// Uploads the compressed adjacency image instead: row_ptr plus
  /// cbase/coff/cdata, no col and no edge list. Uses ~(V·8 + E·1.5) bytes
  /// against upload()'s V·4 + E·12 — the capacity path for graphs whose raw
  /// image exceeds the device budget. Vertex-iterator decoding kernels only.
  static DeviceGraph upload_compressed(simt::Device& dev,
                                       const graph::CompressedCsr& cc);

  /// Uploads one multi-GPU shard: `csr` carries full adjacency rows for every
  /// vertex the shard must read (owned + ghost/proxy, global vertex ids;
  /// other rows empty), `edge_u`/`edge_v` the owned anchor edges in CSR
  /// order, `anchors` the owned anchor vertices. The allocation order
  /// matches upload(), and when the shard is the whole graph
  /// (use_anchor_list == false) the image is bit-identical to upload()'s.
  static DeviceGraph upload_shard(simt::Device& dev, const graph::Csr& csr,
                                  std::span<const std::uint32_t> edge_u,
                                  std::span<const std::uint32_t> edge_v,
                                  std::span<const std::uint32_t> anchors,
                                  bool use_anchor_list);
};

}  // namespace tcgpu::tc
