// Device-resident graph image shared by all triangle-counting kernels.
//
// Holds the oriented DAG as CSR (row_ptr/col) plus the explicit edge list
// (edge_u/edge_v, in CSR order — so consecutive edges share their source
// vertex, the locality GroupTC's chunking exploits). All arrays are 32-bit,
// as in the published CUDA implementations.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"
#include "simt/device.hpp"

namespace tcgpu::tc {

struct DeviceGraph {
  simt::DeviceBuffer<std::uint32_t> row_ptr;  ///< size V+1
  simt::DeviceBuffer<std::uint32_t> col;      ///< size E, sorted per row
  simt::DeviceBuffer<std::uint32_t> edge_u;   ///< size E, CSR order
  simt::DeviceBuffer<std::uint32_t> edge_v;   ///< size E
  std::uint32_t num_vertices = 0;
  std::uint32_t num_edges = 0;
  std::uint32_t max_out_degree = 0;

  /// Uploads an oriented DAG (u < v for every edge; see graph::orient).
  static DeviceGraph upload(simt::Device& dev, const graph::Csr& dag);
};

}  // namespace tcgpu::tc
