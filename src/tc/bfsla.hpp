// BFS-LA: vertex-centric, coarse-grained, merge intersection in the
// linear-algebra formulation.
//
// Triangle counting as the masked matrix product trace(L·L ∘ L)
// (arXiv:1909.02127's BFS/linear-algebra framing): a block owns one row u
// of the oriented adjacency matrix L, stages it in shared memory, and each
// thread computes one inner product row(v)·row(u) for a neighbor v — a
// sorted-list merge, since both rows are sorted index lists. The staging
// mirrors Hu's caching phase; the merge probes mix shared (staged prefix)
// and global (tail) operands.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class BfsLaCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t cache_entries = 2048;
  };

  BfsLaCounter() : cfg_{} {}
  explicit BfsLaCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "BFS-LA"; }
  AlgoTraits traits() const override { return {"vertex", "Merge", "coarse", 2019}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
