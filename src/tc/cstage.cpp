#include "tc/cstage.hpp"

#include <algorithm>

#include "tc/intersect/varint.hpp"

namespace tcgpu::tc {

AlgoResult CStageCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                                const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "cstage_count");

  intersect::StagedCompressed sc;
  intersect::CompressedView cv;
  if (g.has_compressed) {
    cv = {&g.cbase, &g.coff, &g.cdata};
  } else {
    sc = intersect::stage_compressed(dev, g);
    cv = {&sc.base, &sc.off, &sc.data};
  }

  const std::uint64_t items = g.vertex_items();

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.block;
  cfg.grid = pick_grid(spec, items, cfg.block, cfg.block);

  const std::uint32_t cache_cap = std::min<std::uint32_t>(
      cfg_.cache_entries, spec.shared_mem_per_block / sizeof(std::uint32_t) - 64);

  // Phase 1: thread 0 streams N+(u) into shared (decode is sequential, so
  // one thread owns the whole pass — the imbalance the model's beta prices).
  auto stage = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    if (ctx.thread_in_block() != 0) return;
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t du = ue - ub;
    if (du == 0) return;
    const std::uint32_t staged = std::min(du, cache_cap);
    const std::uint32_t ubase = ctx.load(*cv.base, u, TCGPU_SITE());
    const std::uint32_t ulo = ctx.load(*cv.off, u, TCGPU_SITE());
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);
    intersect::VarintCursor cur(ubase, ulo, du);
    for (std::uint32_t i = 0; i < staged; ++i) {
      ctx.shared_store(cache, i, cur.next(ctx, *cv.data), TCGPU_SITE());
    }
  };

  // Phase 2: thread k handles staged neighbor k (+ block strides); thread 0
  // additionally walks the un-staged tail of N+(u) whole.
  auto product = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t du = ue - ub;
    if (du < 2) return;
    const std::uint32_t staged = std::min(du, cache_cap);
    const std::uint32_t ubase = ctx.load(*cv.base, u, TCGPU_SITE());
    const std::uint32_t ulo = ctx.load(*cv.off, u, TCGPU_SITE());
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);

    std::uint64_t local = 0;
    auto count_against_anchor = [&](std::uint32_t v) {
      const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
      const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
      const std::uint32_t dv = ve - vb;
      if (dv == 0) return;
      const std::uint32_t vbase = ctx.load(*cv.base, v, TCGPU_SITE());
      const std::uint32_t vlo = ctx.load(*cv.off, v, TCGPU_SITE());
      local += intersect::merge_cursor_probed(
          ctx, intersect::VarintCursor(vbase, vlo, dv), *cv.data, staged,
          [&](std::uint32_t j) { return ctx.shared_load(cache, j, TCGPU_SITE()); });
      if (du > staged) {
        // Matches against the un-staged suffix of the anchor row: re-merge
        // both streams, crediting only anchor positions >= staged.
        local += intersect::merge_cursor_cursor(
            ctx, intersect::VarintCursor(ubase, ulo, du), *cv.data,
            intersect::VarintCursor(vbase, vlo, dv), *cv.data, staged);
      }
    };

    for (std::uint32_t k = ctx.thread_in_block(); k < staged;
         k += ctx.block_dim()) {
      count_against_anchor(ctx.shared_load(cache, k, TCGPU_SITE()));
    }
    if (ctx.thread_in_block() == 0 && du > staged) {
      // Tail neighbors never reached shared memory: resume a decode past the
      // staged prefix and process each whole (dual-cursor, from position 0).
      intersect::VarintCursor cur(ubase, ulo, du);
      for (std::uint32_t i = 0; i < staged; ++i) cur.next(ctx, *cv.data);
      while (!cur.done()) count_against_anchor(cur.next(ctx, *cv.data));
    }
    flush_count(ctx, counter, local);
  };

  auto stats = simt::launch_items<simt::NoState>(spec, cfg, items, stage, product);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("cstage_block", stats);
  return r;
}

}  // namespace tcgpu::tc
