// TriCore (SC 2018): edge-centric, fine-grained, binary search.
//
// A warp owns one edge: the longer of the two oriented neighbor lists is
// the (implicit) binary search tree, the shorter list supplies the keys
// (§III-D, Figure 6). Lanes stride over the keys — adjacent lanes read
// adjacent key addresses, giving coalesced loads — and each runs a binary
// search. The top levels of the search tree are staged into shared memory
// by a cooperative phase, so the first probes of every search hit shared
// instead of global memory (the paper's shared-memory optimization).
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class TriCoreCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t cached_levels = 5;  ///< top tree levels in shared (2^L - 1 <= 31 nodes)
    std::uint32_t min_table_for_cache = 32;  ///< skip staging for tiny tables
  };

  TriCoreCounter() : cfg_{} {}
  explicit TriCoreCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "TriCore"; }
  AlgoTraits traits() const override { return {"edge", "Bin-Search", "fine", 2018}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
