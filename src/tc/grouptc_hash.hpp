// GroupTC-H — the extension the paper's §VI sketches as future work:
// "the primary factor contributing to GroupTC's slightly slower performance
// on large datasets compared to TRUST is the slower search time of the
// binary search when compared to a hash table lookup. In our upcoming
// research, we will focus on developing an algorithm specifically designed
// to address this bottleneck."
//
// GroupTC-H keeps GroupTC's edge-chunk scheduling (a block of n threads
// owns n consecutive edges, keys iterated with the flattened stride) but
// replaces the per-key binary search with probes into per-edge
// open-addressing hash tables packed into a shared-memory pool. §V explains
// why this needs care ("constructing a hash table for multiple edges means
// many more distinct values ... a larger hash table and a careful design"):
// the pool is finite, so each edge reserves 2x its table size rounded up to
// a power of two, and edges that do not fit fall back to GroupTC's binary
// search. Probes are O(1) shared-memory reads, which is exactly what beats
// binary search's O(log d) global loads on large high-degree graphs.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class GroupTcHashCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;       ///< chunk size n == block size
    std::uint32_t pool_entries = 8192;  ///< shared hash pool (words)
    bool prefix_skip = true;         ///< GroupTC optimization 1 (kept)
  };

  GroupTcHashCounter() : cfg_{} {}
  explicit GroupTcHashCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "GroupTC-H"; }
  AlgoTraits traits() const override { return {"edge", "Hash", "fine", 2024}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
