#include "tc/support.hpp"

#include <stdexcept>

#include "tc/intersect/binsearch.hpp"

namespace tcgpu::tc {

SupportResult count_edge_support(simt::Device& dev, const simt::GpuSpec& spec,
                                 const DeviceGraph& g,
                                 simt::DeviceBuffer<std::uint32_t>& support,
                                 std::uint32_t block) {
  if (support.size() < g.num_edges) {
    throw std::invalid_argument("count_edge_support: support buffer too small");
  }
  (void)dev;
  const std::uint32_t n = block;
  const std::uint64_t chunks = (static_cast<std::uint64_t>(g.num_edges) + n - 1) / n;

  simt::LaunchConfig cfg;
  cfg.block = n;
  cfg.group_size = n;
  cfg.grid = pick_grid(spec, chunks, n, n);

  auto table_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(0, n);
  };
  auto table_hi_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(1, n);
  };
  auto key_lo_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(2, n);
  };
  auto edge_id_arr = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(5, n);
  };
  auto prefix_a = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(3, n);
  };
  auto prefix_b = [&](simt::ThreadCtx& ctx) {
    return ctx.shared_array_tagged<std::uint32_t>(4, n);
  };

  // Same chunked structure as GroupTC, but without the table flip: the
  // search table must stay N+(u)'s suffix so that a hit position is the
  // (u,w) edge id, the key position is the (v,w) edge id, and the chunk
  // edge itself is (u,v) — all three edges of the triangle credited.
  auto describe = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t chunk) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto e_id = edge_id_arr(ctx);
    auto pa = prefix_a(ctx);
    const std::uint32_t tid = ctx.thread_in_block();
    const std::uint64_t e = chunk * n + tid;
    std::uint32_t d_tlo = 0, d_thi = 0, d_klo = 0, d_klen = 0;
    if (e < g.num_edges) {
      const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
      const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
      const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
      const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
      const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
      const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
      const std::uint32_t a_lo = intersect::upper_bound(ctx, g.col, ub, ue, v);
      if (ue - a_lo != 0 && ve - vb != 0) {
        d_tlo = a_lo;
        d_thi = ue;
        d_klo = vb;
        d_klen = ve - vb;
      }
    }
    ctx.shared_store(t_lo, tid, d_tlo, TCGPU_SITE());
    ctx.shared_store(t_hi, tid, d_thi, TCGPU_SITE());
    ctx.shared_store(k_lo, tid, d_klo, TCGPU_SITE());
    ctx.shared_store(e_id, tid, static_cast<std::uint32_t>(e), TCGPU_SITE());
    ctx.shared_store(pa, tid, d_klen, TCGPU_SITE());
  };

  auto scan_round = [&](std::uint32_t stride, bool from_a) {
    return [&, stride, from_a](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
      auto src = from_a ? prefix_a(ctx) : prefix_b(ctx);
      auto dst = from_a ? prefix_b(ctx) : prefix_a(ctx);
      const std::uint32_t tid = ctx.thread_in_block();
      std::uint32_t v = ctx.shared_load(src, tid, TCGPU_SITE());
      if (stride < n && tid >= stride) {
        v += ctx.shared_load(src, tid - stride, TCGPU_SITE());
      }
      ctx.shared_store(dst, tid, v, TCGPU_SITE());
    };
  };

  auto count_phase = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t) {
    auto t_lo = table_lo_arr(ctx);
    auto t_hi = table_hi_arr(ctx);
    auto k_lo = key_lo_arr(ctx);
    auto e_id = edge_id_arr(ctx);
    auto prefix = prefix_a(ctx);

    const std::uint32_t total = ctx.shared_load(prefix, n - 1, TCGPU_SITE());
    std::uint32_t cur_base = 0, cur_limit = 0;
    std::uint32_t cur_tlo = 0, cur_thi = 0, cur_klo = 0, cur_eid = 0;
    std::uint32_t resume = 0;

    for (std::uint32_t kidx = ctx.thread_in_block(); kidx < total; kidx += n) {
      if (kidx >= cur_limit) {
        const std::uint32_t j = intersect::shared_prefix_search(ctx, prefix, n, kidx);
        cur_base = j == 0 ? 0 : ctx.shared_load(prefix, j - 1, TCGPU_SITE());
        cur_limit = ctx.shared_load(prefix, j, TCGPU_SITE());
        cur_tlo = ctx.shared_load(t_lo, j, TCGPU_SITE());
        cur_thi = ctx.shared_load(t_hi, j, TCGPU_SITE());
        cur_klo = ctx.shared_load(k_lo, j, TCGPU_SITE());
        cur_eid = ctx.shared_load(e_id, j, TCGPU_SITE());
        resume = cur_tlo;
      }
      const std::uint32_t key_pos = cur_klo + (kidx - cur_base);
      const std::uint32_t key = ctx.load(g.col, key_pos, TCGPU_SITE());
      const auto hit = intersect::monotone_search(ctx, g.col, resume, cur_thi, key);
      if (hit.found) {
        // Triangle (u,v,w): credit (u,v) = the chunk edge, (u,w) = the
        // table hit position, (v,w) = the key position.
        ctx.atomic_add(support, cur_eid, 1u, TCGPU_SITE());
        ctx.atomic_add(support, hit.pos, 1u, TCGPU_SITE());
        ctx.atomic_add(support, key_pos, 1u, TCGPU_SITE());
      }
      resume = hit.resume;
    }
  };

  SupportResult result;
  result.stats = simt::launch_items<simt::NoState>(
      spec, cfg, chunks, describe, scan_round(1, true), scan_round(2, false),
      scan_round(4, true), scan_round(8, false), scan_round(16, true),
      scan_round(32, false), scan_round(64, true), scan_round(128, false),
      scan_round(256, true), scan_round(512, false), count_phase);

  std::uint64_t sum = 0;
  for (std::uint32_t e = 0; e < g.num_edges; ++e) sum += support.host_data()[e];
  result.triangles = sum / 3;
  return result;
}

std::vector<std::uint32_t> cpu_edge_support(const graph::Csr& dag) {
  std::vector<std::uint32_t> support(dag.num_edges(), 0);
  const auto& row_ptr = dag.row_ptr();
  for (graph::VertexId u = 0; u < dag.num_vertices(); ++u) {
    const auto nu = dag.neighbors(u);
    for (std::size_t iv = 0; iv < nu.size(); ++iv) {
      const graph::VertexId v = nu[iv];
      const auto nv = dag.neighbors(v);
      // Merge N+(u) against N+(v); each match (u,w) at i, (v,w) at j closes
      // the triangle (u,v,w) — credit all three edges by CSR position.
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        if (nu[i] == nv[j]) {
          ++support[row_ptr[u] + iv];
          ++support[row_ptr[u] + i];
          ++support[row_ptr[v] + j];
          ++i;
          ++j;
        } else if (nu[i] < nv[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return support;
}

}  // namespace tcgpu::tc
