#include "tc/bfsla.hpp"

#include <algorithm>

#include "tc/intersect/merge.hpp"

namespace tcgpu::tc {

AlgoResult BfsLaCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                               const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "bfsla_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.block;
  cfg.grid = pick_grid(spec, g.vertex_items(), cfg.block, cfg.block);

  const std::uint32_t cache_cap = std::min<std::uint32_t>(
      cfg_.cache_entries, spec.shared_mem_per_block / sizeof(std::uint32_t) - 64);

  // Phase 1: stage row(u) = N+(u) into shared memory (capped; the merge
  // falls back to global loads past the staged prefix).
  auto stage = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t staged = std::min(ue - ub, cache_cap);
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);
    for (std::uint32_t i = ctx.thread_in_block(); i < staged; i += ctx.block_dim()) {
      ctx.shared_store(cache, i, ctx.load(g.col, ub + i, TCGPU_SITE()), TCGPU_SITE());
    }
  };

  // Phase 2: thread i computes the masked inner product row(v_i)·row(u).
  auto product = [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
    const std::uint32_t u = g.use_anchor_list
                                ? ctx.load(g.anchors, item, TCGPU_SITE())
                                : static_cast<std::uint32_t>(item);
    const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
    const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
    const std::uint32_t u_deg = ue - ub;
    if (u_deg == 0) return;
    const std::uint32_t staged = std::min(u_deg, cache_cap);
    auto cache = ctx.shared_array_tagged<std::uint32_t>(0, cache_cap);

    std::uint64_t local = 0;
    for (std::uint32_t i = ub + ctx.thread_in_block(); i < ue; i += ctx.block_dim()) {
      const std::uint32_t v = ctx.load(g.col, i, TCGPU_SITE());
      const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
      const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
      local += intersect::merge_count_probed(
          ve - vb, u_deg,
          [&](std::uint32_t j) { return ctx.load(g.col, vb + j, TCGPU_SITE()); },
          [&](std::uint32_t j) {
            return j < staged ? ctx.shared_load(cache, j, TCGPU_SITE())
                              : ctx.load(g.col, ub + j, TCGPU_SITE());
          });
    }
    flush_count(ctx, counter, local);
  };

  auto stats = simt::launch_items<simt::NoState>(spec, cfg, g.vertex_items(),
                                                 stage, product);

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("bfsla_block", stats);
  return r;
}

}  // namespace tcgpu::tc
