// MergePath: edge-centric, fine-grained, merge intersection.
//
// The classic GPU merge-path scheme (Green et al.) applied to the
// intersection itself: a warp owns one edge (u,v), and each lane binary
// searches the diagonal of the conceptual merge of N+(u) and N+(v) to find
// an equal-work window, then merges only its window. This removes the
// per-thread imbalance Polak pays on skewed lists while keeping the
// merge family's optimal total work — the cell of Table I's taxonomy
// (edge / Merge / fine) none of the surveyed kernels occupies.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class MergePathCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
  };

  MergePathCounter() : cfg_{} {}
  explicit MergePathCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "MergePath"; }
  AlgoTraits traits() const override { return {"edge", "Merge", "fine", 2014}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
