#include "tc/green.hpp"

#include "tc/intersect/merge.hpp"

namespace tcgpu::tc {

AlgoResult GreenCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                               const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "green_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.threads_per_edge;
  cfg.grid = pick_grid(spec, g.num_edges, cfg.group_size, cfg.block);

  const std::uint32_t team = cfg_.threads_per_edge;

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, g.num_edges,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
        const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
        const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
        const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        const std::uint32_t la = ue - ub;
        if (la == 0 || ve == vb) return;

        // Partition A=N+(u) into `team` equal chunks; this lane merges its
        // chunk against the matching window of B=N+(v), located by a
        // metered binary search (the partitioning step of Figure 4).
        const std::uint32_t t = ctx.group_lane();
        const std::uint32_t chunk_lo = ub + static_cast<std::uint32_t>(
                                                static_cast<std::uint64_t>(la) * t / team);
        const std::uint32_t chunk_hi =
            ub + static_cast<std::uint32_t>(static_cast<std::uint64_t>(la) * (t + 1) /
                                            team);
        if (chunk_lo >= chunk_hi) return;

        const std::uint64_t local = intersect::MergeChunked::count(
            ctx, {&g.col, chunk_lo, chunk_hi}, {&g.col, vb, ve});
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("green_merge_path", stats);
  return r;
}

}  // namespace tcgpu::tc
