#include "tc/green.hpp"

namespace tcgpu::tc {

AlgoResult GreenCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                               const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "green_count");

  simt::LaunchConfig cfg;
  cfg.block = cfg_.block;
  cfg.group_size = cfg_.threads_per_edge;
  cfg.grid = pick_grid(spec, g.num_edges, cfg.group_size, cfg.block);

  const std::uint32_t team = cfg_.threads_per_edge;

  auto stats = simt::launch_items<simt::NoState>(
      spec, cfg, g.num_edges,
      [&](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t e) {
        const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
        const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
        const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
        const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
        const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
        const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
        const std::uint32_t la = ue - ub;
        if (la == 0 || ve == vb) return;

        // Partition A=N+(u) into `team` equal chunks; this lane merges its
        // chunk against the matching window of B=N+(v), located by a
        // metered binary search (the partitioning step of Figure 4).
        const std::uint32_t t = ctx.group_lane();
        const std::uint32_t chunk_lo = ub + static_cast<std::uint32_t>(
                                                static_cast<std::uint64_t>(la) * t / team);
        const std::uint32_t chunk_hi =
            ub + static_cast<std::uint32_t>(static_cast<std::uint64_t>(la) * (t + 1) /
                                            team);
        if (chunk_lo >= chunk_hi) return;

        const std::uint32_t first = ctx.load(g.col, chunk_lo, TCGPU_SITE());
        // lower_bound(B, first)
        std::uint32_t lo = vb, hi = ve;
        while (lo < hi) {
          const std::uint32_t mid = lo + (hi - lo) / 2;
          if (ctx.load(g.col, mid, TCGPU_SITE()) < first) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }

        std::uint64_t local = 0;
        std::uint32_t pa = chunk_lo, pb = lo;
        std::uint32_t a = first;
        while (pa < chunk_hi && pb < ve) {
          const std::uint32_t b = ctx.load(g.col, pb, TCGPU_SITE());
          if (a == b) {
            ++local;
            ++pa;
            ++pb;
            if (pa < chunk_hi) a = ctx.load(g.col, pa, TCGPU_SITE());
          } else if (a < b) {
            ++pa;
            if (pa < chunk_hi) a = ctx.load(g.col, pa, TCGPU_SITE());
          } else {
            ++pb;
          }
        }
        flush_count(ctx, counter, local);
      });

  AlgoResult r;
  r.triangles = counter.host_span()[0];
  r.add_launch("green_merge_path", stats);
  return r;
}

}  // namespace tcgpu::tc
