// Hu, Guan & Zou (ICDEW 2019): vertex-centric, fine-grained, binary search.
//
// A block owns one vertex u: phase one stages as much of N+(u) as fits into
// shared memory; phase two is the paper's Algorithm 1 verbatim — every
// thread walks the *concatenated* 2-hop neighborhood of u with stride
// blockDim (so neighboring threads touch neighboring addresses) and binary
// searches each 2-hop neighbor in N+(u), hitting the shared-memory copy for
// the staged prefix. The flattened iteration is what gives Hu its high warp
// efficiency; the per-step pointer reloads are why it issues the most
// global loads of the eight (§IV-A).
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class HuCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
    std::uint32_t cache_entries = 8192;  ///< 1-hop cache capacity (words)
  };

  HuCounter() : cfg_{} {}
  explicit HuCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "Hu"; }
  AlgoTraits traits() const override { return {"vertex", "Bin-Search", "fine", 2019}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
