// BSR: vertex-centric, coarse-grained, blocked-bitmap intersection.
//
// Adjacency lists are compressed host-side into blocked sparse rows: one
// (base, word) pair per occupied 32-vertex block of the neighbor space.
// A warp owns one vertex u; each lane takes one neighbor v of u and
// intersects BSR(u) with BSR(v) by merging the base arrays and popcounting
// the AND of matching occupancy words. On the oriented DAG (u < v for every
// edge) the plain AND is exact, so no decode step is needed. Fills the
// vertex / BitMap / coarse cell of Table I's taxonomy; the approach follows
// the BSR representation literature rather than any of the surveyed kernels.
#pragma once

#include "tc/common.hpp"

namespace tcgpu::tc {

class BsrCounter final : public TriangleCounter {
 public:
  struct Config {
    std::uint32_t block = 256;
  };

  BsrCounter() : cfg_{} {}
  explicit BsrCounter(Config cfg) : cfg_(cfg) {}

  std::string name() const override { return "BSR"; }
  AlgoTraits traits() const override { return {"vertex", "BitMap", "coarse", 2019}; }
  AlgoResult count(simt::Device& dev, const simt::GpuSpec& spec,
                   const DeviceGraph& g) const override;

 private:
  Config cfg_;
};

}  // namespace tcgpu::tc
