#include "tc/fox.hpp"

#include <cmath>
#include <vector>

#include "tc/intersect/binsearch.hpp"

namespace tcgpu::tc {
namespace {

/// Workload estimate for the bin-search intersection of an edge (§III-E).
double estimate_work(std::uint32_t du, std::uint32_t dv) {
  const double mn = std::min(du, dv);
  const double mx = std::max(du, dv);
  if (mn == 0) return 0.0;
  return mn * std::max(1.0, std::log2(mx + 1.0));
}

}  // namespace

AlgoResult FoxCounter::count(simt::Device& dev, const simt::GpuSpec& spec,
                             const DeviceGraph& g) const {
  auto counter = dev.alloc<std::uint64_t>(1, "fox_count");
  AlgoResult r;

  // Host-side binning pass (the paper's binning kernel is a trivial
  // histogram; kernel time in Figure 11 is dominated by the search kernels).
  std::vector<std::vector<std::uint32_t>> bins(cfg_.num_bins);
  {
    const auto* up = g.edge_u.host_data();
    const auto* vp = g.edge_v.host_data();
    const auto* rp = g.row_ptr.host_data();
    for (std::uint32_t e = 0; e < g.num_edges; ++e) {
      const std::uint32_t du = rp[up[e] + 1] - rp[up[e]];
      const std::uint32_t dv = rp[vp[e] + 1] - rp[vp[e]];
      const double w = estimate_work(du, dv);
      if (w == 0.0) continue;  // no possible match
      // Exponential bin edges at powers of 4: bin n covers [4^n, 4^(n+1)).
      std::uint32_t n = 0;
      while (n + 1 < cfg_.num_bins && w >= std::pow(4.0, n + 1)) ++n;
      bins[n].push_back(e);
    }
  }

  for (std::uint32_t n = 0; n < cfg_.num_bins; ++n) {
    if (bins[n].empty()) continue;
    auto edge_ids = dev.alloc<std::uint32_t>(bins[n].size(), "fox_bin");
    std::copy(bins[n].begin(), bins[n].end(), edge_ids.host_data());
    const std::uint32_t team = std::min<std::uint32_t>(1u << n, 32u);

    simt::LaunchConfig cfg;
    cfg.block = cfg_.block;
    cfg.group_size = team;
    cfg.grid = pick_grid(spec, bins[n].size(), team, cfg.block);

    auto stats = simt::launch_items<simt::NoState>(
        spec, cfg, bins[n].size(),
        [&, team](simt::ThreadCtx& ctx, simt::NoState&, std::uint64_t item) {
          const std::uint32_t e = ctx.load(edge_ids, item, TCGPU_SITE());
          const std::uint32_t u = ctx.load(g.edge_u, e, TCGPU_SITE());
          const std::uint32_t v = ctx.load(g.edge_v, e, TCGPU_SITE());
          const std::uint32_t ub = ctx.load(g.row_ptr, u, TCGPU_SITE());
          const std::uint32_t ue = ctx.load(g.row_ptr, u + 1, TCGPU_SITE());
          const std::uint32_t vb = ctx.load(g.row_ptr, v, TCGPU_SITE());
          const std::uint32_t ve = ctx.load(g.row_ptr, v + 1, TCGPU_SITE());
          std::uint32_t table_lo, table_hi, key_lo, key_hi;
          if (ue - ub >= ve - vb) {  // search the longer list
            table_lo = ub;
            table_hi = ue;
            key_lo = vb;
            key_hi = ve;
          } else {
            table_lo = vb;
            table_hi = ve;
            key_lo = ub;
            key_hi = ue;
          }
          std::uint64_t local = 0;
          for (std::uint32_t i = key_lo + ctx.group_lane(); i < key_hi; i += team) {
            const std::uint32_t key = ctx.load(g.col, i, TCGPU_SITE());
            if (intersect::binary_search(ctx, g.col, table_lo, table_hi, key)) ++local;
          }
          flush_count(ctx, counter, local);
        });
    r.add_launch("fox_bin" + std::to_string(n), stats);
  }

  r.triangles = counter.host_span()[0];
  return r;
}

}  // namespace tcgpu::tc
