#include "simt/site.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tcgpu::simt {
namespace {

/// Briefly de-prioritizes this hardware thread inside a spin loop.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

constexpr std::size_t kTableSize = 1 << 14;  // 16384 slots, power of two

struct Slot {
  std::atomic<std::uint64_t> key{0};
  std::atomic<std::uint32_t> id{0};
};

Slot g_table[kTableSize];
std::atomic<std::uint32_t> g_next_id{1};

std::uint64_t hash_loc(const std::source_location& loc) {
  // file_name() returns a pointer into static storage, stable per call site.
  auto h = reinterpret_cast<std::uintptr_t>(loc.file_name());
  std::uint64_t key = static_cast<std::uint64_t>(h);
  key ^= (static_cast<std::uint64_t>(loc.line()) << 32) ^ loc.column();
  // splitmix64 finalizer
  key += 0x9e3779b97f4a7c15ULL;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ULL;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key == 0 ? 1 : key;  // 0 is the empty-slot sentinel
}

}  // namespace

std::uint32_t site_id(const std::source_location& loc) {
  const std::uint64_t key = hash_loc(loc);
  std::size_t idx = key & (kTableSize - 1);
  for (std::size_t probe = 0; probe < kTableSize; ++probe) {
    std::uint64_t existing = g_table[idx].key.load(std::memory_order_acquire);
    if (existing == key) {
      return g_table[idx].id.load(std::memory_order_relaxed);
    }
    if (existing == 0) {
      std::uint64_t expected = 0;
      if (g_table[idx].key.compare_exchange_strong(expected, key,
                                                   std::memory_order_acq_rel)) {
        const std::uint32_t id = g_next_id.fetch_add(1, std::memory_order_relaxed);
        g_table[idx].id.store(id, std::memory_order_release);
        return id;
      }
      if (expected == key) {  // lost the race to the same key
        // The winner publishes the id right after claiming the key. Spin
        // politely, and past a bound yield the CPU so a descheduled writer
        // can finish — an unbounded tight spin could livelock the reader on
        // an oversubscribed machine.
        std::uint32_t id;
        std::uint32_t spins = 0;
        while ((id = g_table[idx].id.load(std::memory_order_acquire)) == 0) {
          if (++spins < 128) {
            cpu_relax();
          } else {
            std::this_thread::yield();
          }
        }
        return id;
      }
    }
    idx = (idx + 1) & (kTableSize - 1);
  }
  std::fprintf(stderr, "tcgpu::simt: site table exhausted (>%zu call sites)\n",
               kTableSize);
  std::abort();
}

std::uint32_t site_count() { return g_next_id.load() - 1; }

}  // namespace tcgpu::simt
