// Modeled multi-GPU interconnect (NVLink / PCIe).
//
// The single-device simulator derives kernel time from counted events; the
// interconnect does the same for inter-device traffic: the dist:: layer
// counts the bytes each shard has to receive (its ghost/proxy adjacency
// rows) and the bytes of the final count reduction, and this model converts
// those counts into transfer time under a latency + bandwidth link model.
// Nothing is sampled or measured — scaling curves come from counted
// quantities exactly like the kernel metrics.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simt/gpu_spec.hpp"

namespace tcgpu::simt {

/// One modeled transfer aggregate: how much moved, in how many messages,
/// and the modeled wall time on the critical path.
struct TransferStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  double time_ms = 0.0;

  TransferStats& operator+=(const TransferStats& o) {
    bytes += o.bytes;
    messages += o.messages;
    time_ms += o.time_ms;  // sequential stages add up
    return *this;
  }
  bool operator==(const TransferStats&) const = default;
};

class Interconnect {
 public:
  Interconnect(InterconnectSpec spec, std::uint32_t num_devices)
      : spec_(std::move(spec)), num_devices_(num_devices) {}

  const InterconnectSpec& spec() const { return spec_; }
  std::uint32_t num_devices() const { return num_devices_; }

  /// Shard/ghost distribution: per_device_bytes[d] is what device d must
  /// receive from peers, split into per_device_messages[d] point-to-point
  /// messages (one per source peer). Devices receive in parallel, each
  /// serializing its own incoming messages, so the modeled time is the
  /// slowest device's receive time.
  TransferStats scatter(const std::vector<std::uint64_t>& per_device_bytes,
                        const std::vector<std::uint64_t>& per_device_messages) const;

  /// All-reduce of one `bytes_per_device` payload (the per-device triangle
  /// counts): modeled as a reduce + broadcast binomial tree, 2*ceil(log2 N)
  /// latency-bound steps moving 2*(N-1) payloads in total.
  TransferStats all_reduce(std::uint64_t bytes_per_device) const;

 private:
  InterconnectSpec spec_;
  std::uint32_t num_devices_;
};

}  // namespace tcgpu::simt
