// Modeled multi-GPU interconnect (NVLink / PCIe).
//
// The single-device simulator derives kernel time from counted events; the
// interconnect does the same for inter-device traffic: the dist:: layer
// counts the bytes each shard has to receive (its ghost/proxy adjacency
// rows) and the bytes of the final count reduction, and this model converts
// those counts into transfer time under a latency + bandwidth link model.
// Nothing is sampled or measured — scaling curves come from counted
// quantities exactly like the kernel metrics.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "simt/gpu_spec.hpp"

namespace tcgpu::simt {

/// One modeled transfer aggregate: how much moved, in how many messages,
/// and the modeled wall time on the critical path.
struct TransferStats {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  double time_ms = 0.0;

  TransferStats& operator+=(const TransferStats& o) {
    bytes += o.bytes;
    messages += o.messages;
    time_ms += o.time_ms;  // sequential stages add up
    return *this;
  }
  bool operator==(const TransferStats&) const = default;
};

class Interconnect {
 public:
  Interconnect(InterconnectSpec spec, std::uint32_t num_devices)
      : spec_(std::move(spec)), num_devices_(num_devices) {}

  const InterconnectSpec& spec() const { return spec_; }
  std::uint32_t num_devices() const { return num_devices_; }

  /// Shard/ghost distribution: per_device_bytes[d] is what device d must
  /// receive from peers, split into per_device_messages[d] point-to-point
  /// messages (one per source peer). Devices receive in parallel, each
  /// serializing its own incoming messages, so the modeled time is the
  /// slowest device's receive time.
  TransferStats scatter(const std::vector<std::uint64_t>& per_device_bytes,
                        const std::vector<std::uint64_t>& per_device_messages) const;

  /// All-reduce of one `bytes_per_device` payload (the per-device triangle
  /// counts): modeled as a reduce + broadcast binomial tree, 2*ceil(log2 N)
  /// latency-bound steps moving 2*(N-1) payloads in total.
  TransferStats all_reduce(std::uint64_t bytes_per_device) const;

 private:
  InterconnectSpec spec_;
  std::uint32_t num_devices_;
};

/// Default flush-buffer bound for aggregated ghost scatters: per-destination
/// updates coalesce into buffers of this size and flush one message per full
/// buffer (the Galois buffered-message discipline). 4 MiB keeps the modeled
/// message count per peer pair at ceil(bytes / 4 MiB) instead of one per
/// ghost row.
inline constexpr std::uint64_t kFlushBufferBytes = 4ull << 20;

/// One modeled cluster scatter, split by link level. `total.time_ms` is the
/// critical path (slowest device's receive, intra + inter serialized);
/// `intra`/`inter` class the same traffic by which link carried it, each
/// timed as the slowest device's share of that level. `per_device_ms[d]` is
/// device d's own full receive time — what an overlap model races against
/// that device's kernel.
struct ScatterModel {
  TransferStats total;
  TransferStats intra;
  TransferStats inter;
  std::vector<double> per_device_ms;
};

/// Two-level interconnect: `spec.host.intra` between devices of one host,
/// `spec.inter` between hosts. Device d lives on host d / spec.host.devices.
/// Where the flat Interconnect prices a scatter from per-device aggregates,
/// this one needs the per-pair traffic matrix — which bytes cross a host
/// boundary decides which link model prices them.
class ClusterInterconnect {
 public:
  /// Throws std::invalid_argument when the spec describes zero devices or
  /// num_devices is not hosts x devices-per-host.
  ClusterInterconnect(ClusterSpec spec, std::uint32_t num_devices);

  const ClusterSpec& spec() const { return spec_; }
  std::uint32_t num_devices() const { return num_devices_; }
  std::uint32_t host_of(std::uint32_t device) const {
    return device / spec_.host.devices;
  }
  bool same_host(std::uint32_t a, std::uint32_t b) const {
    return host_of(a) == host_of(b);
  }
  /// The link model pricing traffic between devices a and b.
  const InterconnectSpec& link(std::uint32_t a, std::uint32_t b) const {
    return same_host(a, b) ? spec_.host.intra : spec_.inter;
  }

  /// Ghost scatter from the per-pair traffic matrix: bytes[d][o] (and
  /// rows[d][o] ghost rows) is what device d receives from owner o. Devices
  /// receive in parallel, each serializing its own incoming messages.
  /// `aggregate` selects the message discipline per (d, o) pair:
  ///   true  — buffered: ceil(bytes / buffer_bytes) coalesced flushes;
  ///   false — flat: one message per ghost row (the synchronous per-row
  ///           baseline the buffered path is measured against).
  ScatterModel scatter(const std::vector<std::vector<std::uint64_t>>& bytes,
                       const std::vector<std::vector<std::uint64_t>>& rows,
                       bool aggregate,
                       std::uint64_t buffer_bytes = kFlushBufferBytes) const;

  /// Hierarchical all-reduce of one per-device payload: binomial reduce tree
  /// within each host on the intra link, one recursive-doubling exchange
  /// among the host leaders on the inter link, then an intra broadcast tree.
  /// Degenerates to Interconnect::all_reduce exactly when hosts == 1.
  TransferStats all_reduce(std::uint64_t bytes_per_device) const;

 private:
  ClusterSpec spec_;
  std::uint32_t num_devices_;
};

}  // namespace tcgpu::simt
