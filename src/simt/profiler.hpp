// nvprof-like textual reporting over KernelStats.
//
// The Profiler accumulates the stats of every launch an algorithm performs
// (most algorithms here are one kernel; TRUST and Fox launch several) and
// renders the metrics the paper reports, in the units the paper plots.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "simt/metrics.hpp"

namespace tcgpu::simt {

class Profiler {
 public:
  /// Records one kernel launch under `kernel_name`.
  void record(std::string kernel_name, const KernelStats& stats);

  /// Combined stats over all recorded launches.
  KernelStats total() const;

  std::size_t launch_count() const { return launches_.size(); }
  const KernelStats& launch(std::size_t i) const { return launches_[i].stats; }
  const std::string& launch_name(std::size_t i) const { return launches_[i].name; }

  /// Renders an nvprof-style per-kernel table followed by totals.
  void report(std::ostream& os) const;

  void clear() { launches_.clear(); }

 private:
  struct Launch {
    std::string name;
    KernelStats stats;
  };
  std::vector<Launch> launches_;
};

}  // namespace tcgpu::simt
