#include "simt/warp_trace.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

namespace tcgpu::simt {
namespace {

/// Starts a fresh generation in a stamped dedup set: one counter bump, with
/// a full invalidation only on the (rare) 32-bit wrap.
template <class Set>
void stamp_begin(Set& set) {
  if (++set.cur == 0) {
    set.gen.fill(0);
    set.cur = 1;
  }
}

/// Returns true iff `k` was already recorded this generation; records it
/// otherwise. At most 64 live keys in 128 slots, so probes stay short.
template <class Set>
bool seen_before(Set& set, std::uint64_t k) {
  auto slot = static_cast<std::uint32_t>((k * 0x9E3779B97F4A7C15ull) >> 57);
  for (;; slot = (slot + 1) & 127u) {
    if (set.gen[slot] != set.cur) {
      set.gen[slot] = set.cur;
      set.key[slot] = k;
      return false;
    }
    if (set.key[slot] == k) return true;
  }
}

/// Collects the distinct sectors of one aligned group into `out`, in
/// first-appearance order. Order matters: the caller feeds the sectors
/// through a stateful direct-mapped cache, so a different install order
/// would change which colliding sector survives and thereby the DRAM
/// transaction counts of later groups. Single pass; membership is one
/// stamped-set probe. Same drop-when-full cap as the monotone path: once
/// `out` is full nothing is ever emitted again, so the cap check can
/// short-circuit the probe without changing the result.
template <class SectorOf, class Set>
std::uint32_t distinct_sectors_scattered(const std::uint64_t* addrs,
                                         std::uint32_t size, std::uint32_t n,
                                         std::array<std::uint64_t, 64>& out,
                                         SectorOf sector_of, Set& set) {
  stamp_begin(set);
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    // A single access can straddle sectors; cover its full byte range.
    const std::uint64_t first = sector_of(addrs[i]);
    const std::uint64_t last = sector_of(addrs[i] + size - 1);
    for (std::uint64_t s = first; s <= last; ++s) {
      if (count < out.size() && !seen_before(set, s)) out[count++] = s;
    }
  }
  return count;
}

/// Single-pass variant for groups whose addresses are non-decreasing across
/// lanes (every coalesced access pattern). First-appearance order is then
/// simply ascending sector order, so dedup is a comparison against the last
/// emitted sector: all of [first_i, prev] was already emitted because
/// addr_i >= addr_{i-1} implies first_i >= first_{i-1} and the previous
/// access emitted through prev. Returns false (without touching `count`
/// semantics) when the addresses turn out not to be monotone.
template <class SectorOf>
bool distinct_sectors_monotone(const std::uint64_t* addrs, std::uint32_t size,
                               std::uint32_t n, std::array<std::uint64_t, 64>& out,
                               SectorOf sector_of, std::uint32_t& count_out) {
  std::uint32_t count = 0;
  std::uint64_t prev_addr = 0;
  std::uint64_t prev = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t a = addrs[i];
    if (i != 0 && a < prev_addr) return false;
    prev_addr = a;
    const std::uint64_t first = sector_of(a);
    const std::uint64_t last = sector_of(a + size - 1);
    std::uint64_t s = i == 0 ? first : std::max(first, prev + 1);
    for (; s <= last; ++s) {
      // Same drop-when-full cap as the generic paths: overflow sectors are
      // discarded, never retried.
      if (count < out.size()) out[count++] = s;
    }
    prev = last;  // same size per group, so last_i >= last_{i-1}
  }
  count_out = count;
  return true;
}

}  // namespace

std::uint32_t WarpAggregator::distinct_sectors(const std::uint64_t* addrs,
                                               std::uint32_t size, std::uint32_t n,
                                               std::array<std::uint64_t, 64>& out) {
  // Every GpuSpec preset uses a power-of-two sector; a shift keeps the
  // per-lane divide off the critical path (this runs once per lane per
  // group, the hottest arithmetic in the simulator).
  const std::uint32_t sector_bytes = spec_->sector_bytes;
  if (std::has_single_bit(sector_bytes)) {
    const std::uint32_t shift = std::countr_zero(sector_bytes);
    const auto sector_of = [shift](std::uint64_t a) { return a >> shift; };
    std::uint32_t count = 0;
    if (distinct_sectors_monotone(addrs, size, n, out, sector_of, count)) {
      return count;
    }
    return distinct_sectors_scattered(addrs, size, n, out, sector_of, sector_set_);
  }
  const auto sector_of = [sector_bytes](std::uint64_t a) { return a / sector_bytes; };
  std::uint32_t count = 0;
  if (distinct_sectors_monotone(addrs, size, n, out, sector_of, count)) {
    return count;
  }
  return distinct_sectors_scattered(addrs, size, n, out, sector_of, sector_set_);
}

/// Bank-conflict degree of one aligned shared-memory group: the maximum,
/// over banks, of the number of *distinct words* accessed in that bank.
/// 1 means conflict-free (or broadcast); d means the access replays d times.
/// The degree depends only on the set of words (order-independent), so the
/// dedup is a stamped-set probe per lane — no sort, even for the scattered
/// word patterns of the hash-probe kernels.
std::uint32_t WarpAggregator::conflict_degree(const std::uint64_t* addrs,
                                              std::uint32_t n) {
  const std::uint32_t banks = spec_->shared_banks;
  const std::uint32_t m = std::min<std::uint32_t>(n, 64);
  std::array<std::uint8_t, 64> per_bank{};  // banks <= 64 for every GpuSpec preset
  const bool pow2 = std::has_single_bit(banks);
  const std::uint64_t mask = banks - 1;  // valid only when pow2
  std::uint32_t worst = 1;
  stamp_begin(word_set_);
  std::uint64_t prev = 0;
  bool have_prev = false;
  for (std::uint32_t i = 0; i < m; ++i) {
    const std::uint64_t w = addrs[i] >> 2;
    // Broadcast runs (all lanes reading one word) are common; skip the probe.
    if (have_prev && w == prev) continue;
    prev = w;
    have_prev = true;
    if (seen_before(word_set_, w)) continue;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(pow2 ? (w & mask) : (w % banks));
    per_bank[bank]++;
    worst = std::max<std::uint32_t>(worst, per_bank[bank]);
  }
  return worst;
}

WarpAggregator::WarpAggregator(const GpuSpec& spec)
    : spec_(&spec), lanes_(spec.warp_size), cache_(spec.l1_cache_sectors) {
  reset_cache();
  // Reserve all scratch once, so steady-state flushes never allocate
  // (the launcher constructs one aggregator per host thread per launch).
  site_local_.reserve(64);
  local_ids_.reserve(1024);
  order_.reserve(1024);
  slot_count_.reserve(64 * spec.warp_size + 1);
  slot_cursor_.reserve(64 * spec.warp_size + 1);
  sorted_addr_.reserve(1024);
  sorted_meta_.reserve(1024);
  for (auto& t : lanes_) {
    t.addr.reserve(64);
    t.meta.reserve(64);
  }
}

std::uint32_t WarpAggregator::cache_access(const std::uint64_t* sectors,
                                           std::uint32_t n) {
  std::uint32_t misses = 0;
  const std::uint32_t mask = spec_->l1_cache_sectors - 1;
  const std::uint32_t gen = cache_gen_;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t s = sectors[i];
    CacheEntry& e = cache_[static_cast<std::uint32_t>(s) & mask];
    if (e.gen != gen || e.tag != s) {
      e.tag = s;
      e.gen = gen;
      ++misses;
    }
  }
  return misses;
}

// The flush groups each lane's k-th access at a call site with every other
// lane's k-th access there ("occurrence alignment" — see the header).
//
// Two paths produce bit-identical results:
//   * fast path — when every lane issued the same (site, kind, size)
//     sequence (the fully-converged common case, detected with one memcmp
//     per lane), alignment degenerates to position alignment: group k is
//     simply position k of every lane. Only lane 0's sequence is examined
//     to derive the group order; no counting sort, no per-event scatter.
//   * sorted path — one counting sort keyed by (site, lane), which
//     preserves each lane's program order, so within a (site, lane) slice
//     the events are already in occurrence order.
// Both walk the groups in the same order — sites by first appearance,
// occurrences ascending — so the stateful sector cache and the floating-
// point cycle accumulator see the same sequence either way.
double WarpAggregator::flush(KernelMetrics& m) {
  const GpuSpec& spec = *spec_;
  const std::uint32_t W = warp_size();

  std::uint64_t max_compute = 0;
  std::uint64_t sum_compute = 0;
  std::size_t total_events = 0;
  bool any = false;
  bool uniform = true;
  const std::size_t n0 = lanes_[0].size();
  for (std::uint32_t l = 0; l < W; ++l) {
    const LaneTrace& t = lanes_[l];
    if (!t.empty()) any = true;
    max_compute = std::max(max_compute, t.compute_steps);
    sum_compute += t.compute_steps;
    total_events += t.size();
    uniform = uniform && t.size() == n0;
  }
  if (!any) return 0.0;

  std::uint64_t steps = max_compute;
  std::uint64_t active = sum_compute;
  double cycles = static_cast<double>(max_compute) * spec.issue_cycles;

  std::array<std::uint64_t, 64> addrs;
  std::array<std::uint64_t, 64> sectors;
  // Charges one aligned group of n accesses (addrs[0..n) filled in lane
  // order). Shared by both paths so the cost arithmetic is literally the
  // same code, keeping the modeled cycles bitwise equal.
  auto charge = [&](std::uint32_t n, AccessKind kind, std::uint8_t size) {
    steps += 1;
    active += n;
    cycles += spec.issue_cycles;
    auto global_cost = [&]() {
      const std::uint32_t tx = distinct_sectors(addrs.data(), size, n, sectors);
      const std::uint32_t misses = cache_access(sectors.data(), tx);
      m.global_dram_transactions += misses;
      cycles += misses * spec.global_cycles_per_transaction +
                (tx - misses) * spec.l1_hit_cycles;
      return tx;
    };
    switch (kind) {
      case AccessKind::kGlobalLoad: {
        const std::uint32_t tx = global_cost();
        m.global_load_requests += 1;
        m.global_load_transactions += tx;
        break;
      }
      case AccessKind::kGlobalStore: {
        const std::uint32_t tx = global_cost();
        m.global_store_requests += 1;
        m.global_store_transactions += tx;
        break;
      }
      case AccessKind::kGlobalAtomic: {
        const std::uint32_t tx = global_cost();
        m.global_atomic_requests += 1;
        m.global_atomic_transactions += tx;
        cycles += n * spec.atomic_extra_cycles;
        break;
      }
      case AccessKind::kSharedLoad: {
        const std::uint32_t deg = conflict_degree(addrs.data(), n);
        m.shared_load_requests += 1;
        m.shared_conflict_cycles += deg - 1;
        cycles += deg * spec.shared_cycles_per_access;
        break;
      }
      case AccessKind::kSharedStore: {
        const std::uint32_t deg = conflict_degree(addrs.data(), n);
        m.shared_store_requests += 1;
        m.shared_conflict_cycles += deg - 1;
        cycles += deg * spec.shared_cycles_per_access;
        break;
      }
      case AccessKind::kSharedAtomic: {
        const std::uint32_t deg = conflict_degree(addrs.data(), n);
        m.shared_atomic_requests += 1;
        m.shared_conflict_cycles += deg - 1;
        cycles +=
            deg * spec.shared_cycles_per_access + n * spec.atomic_extra_cycles;
        break;
      }
    }
  };

  // Dense local ids for the sites of this unit, in first-appearance order.
  // O(1) per lookup: site_map_[site] holds (flush generation | local id), so
  // starting a fresh unit is a generation bump, not a map clear.
  auto begin_intern = [this] {
    site_local_.clear();
    if (++map_gen_ == 0) {  // stamp wrap: invalidate the slow way, once
      std::fill(site_map_.begin(), site_map_.end(), 0);
      map_gen_ = 1;
    }
  };
  auto local_of = [this](std::uint32_t site) -> std::uint32_t {
    if (site >= site_map_.size()) site_map_.resize(site + 1, 0);
    std::uint64_t& slot = site_map_[site];
    if (static_cast<std::uint32_t>(slot >> 32) == map_gen_) {
      return static_cast<std::uint32_t>(slot);
    }
    const auto local = static_cast<std::uint32_t>(site_local_.size());
    site_local_.push_back(site);
    slot = (static_cast<std::uint64_t>(map_gen_) << 32) | local;
    return local;
  };

  bool converged = uniform && n0 > 0 && W <= addrs.size();
  if (converged) {
    const std::uint64_t* meta0 = lanes_[0].meta.data();
    for (std::uint32_t l = 1; l < W && converged; ++l) {
      converged = std::memcmp(lanes_[l].meta.data(), meta0,
                              n0 * sizeof(std::uint64_t)) == 0;
    }
  }

  if (converged) {
    // --- fast path: position alignment, group order from lane 0 only ------
    const std::uint64_t* meta0 = lanes_[0].meta.data();
    begin_intern();
    local_ids_.resize(n0);
    for (std::size_t p = 0; p < n0; ++p) {
      local_ids_[p] = local_of(LaneTrace::site_of(meta0[p]));
    }
    const std::uint32_t S = static_cast<std::uint32_t>(site_local_.size());
    slot_count_.assign(S + 1, 0);
    for (std::size_t p = 0; p < n0; ++p) slot_count_[local_ids_[p] + 1]++;
    for (std::size_t i = 1; i < slot_count_.size(); ++i) {
      slot_count_[i] += slot_count_[i - 1];
    }
    order_.resize(n0);
    slot_cursor_.assign(slot_count_.begin(), slot_count_.end() - 1);
    for (std::size_t p = 0; p < n0; ++p) {
      order_[slot_cursor_[local_ids_[p]]++] = static_cast<std::uint32_t>(p);
    }
    // Hoisted lane address columns: the gather below is the single hottest
    // loop in the simulator, and indexing lanes_[l].addr re-reads the vector
    // header every step.
    std::array<const std::uint64_t*, 64> lane_addr;
    for (std::uint32_t l = 0; l < W; ++l) lane_addr[l] = lanes_[l].addr.data();
    for (std::size_t i = 0; i < n0; ++i) {
      const std::uint32_t p = order_[i];
      for (std::uint32_t l = 0; l < W; ++l) addrs[l] = lane_addr[l][p];
      charge(W, LaneTrace::kind_of(meta0[p]), LaneTrace::size_of(meta0[p]));
    }
  } else if (total_events != 0) {
    // --- sorted path: counting sort by (local site, lane) -----------------
    begin_intern();
    local_ids_.clear();
    for (std::uint32_t l = 0; l < W; ++l) {
      for (const std::uint64_t mt : lanes_[l].meta) {
        local_ids_.push_back(local_of(LaneTrace::site_of(mt)));
      }
    }
    const std::uint32_t S = static_cast<std::uint32_t>(site_local_.size());
    slot_count_.assign(static_cast<std::size_t>(S) * W + 1, 0);
    {
      std::size_t idx = 0;
      for (std::uint32_t l = 0; l < W; ++l) {
        const std::size_t cnt = lanes_[l].size();
        for (std::size_t j = 0; j < cnt; ++j) {
          slot_count_[static_cast<std::size_t>(local_ids_[idx]) * W + l + 1]++;
          ++idx;
        }
      }
    }
    for (std::size_t i = 1; i < slot_count_.size(); ++i) {
      slot_count_[i] += slot_count_[i - 1];
    }
    sorted_addr_.resize(total_events);
    sorted_meta_.resize(total_events);
    slot_cursor_.assign(slot_count_.begin(), slot_count_.end() - 1);
    {
      std::size_t idx = 0;
      for (std::uint32_t l = 0; l < W; ++l) {
        const LaneTrace& t = lanes_[l];
        const std::size_t cnt = t.size();
        for (std::size_t j = 0; j < cnt; ++j) {
          const std::size_t slot = static_cast<std::size_t>(local_ids_[idx]) * W + l;
          const std::size_t at = slot_cursor_[slot]++;
          sorted_addr_[at] = t.addr[j];
          sorted_meta_[at] = t.meta[j];
          ++idx;
        }
      }
    }
    for (std::uint32_t s = 0; s < S; ++s) {
      const std::size_t base = static_cast<std::size_t>(s) * W;
      // Lanes still holding a k-th occurrence, ascending. The set only
      // shrinks as k grows, so each group costs O(participants), not O(W) —
      // the skewed trip counts of triangle kernels leave long tails where
      // one or two lanes are still looping.
      std::array<std::uint32_t, 64> act;
      std::uint32_t na = 0;
      for (std::uint32_t l = 0; l < W; ++l) {
        if (slot_count_[base + l] < slot_count_[base + l + 1]) act[na++] = l;
      }
      for (std::uint32_t k = 0; na != 0; ++k) {
        std::uint32_t n = 0;
        std::uint32_t keep = 0;
        AccessKind kind{};
        std::uint8_t size = 4;
        for (std::uint32_t i = 0; i < na; ++i) {
          const std::uint32_t l = act[i];
          const std::size_t lo = slot_count_[base + l];
          const std::size_t hi = slot_count_[base + l + 1];
          if (lo + k < hi && n < addrs.size()) {
            const std::size_t at = lo + k;
            addrs[n] = sorted_addr_[at];
            kind = LaneTrace::kind_of(sorted_meta_[at]);
            size = LaneTrace::size_of(sorted_meta_[at]);
            ++n;
          }
          if (lo + k + 1 < hi) act[keep++] = l;
        }
        na = keep;
        charge(n, kind, size);
      }
    }
  }

  for (std::uint32_t l = 0; l < W; ++l) lanes_[l].clear();
  m.warp_steps += steps;
  m.active_lane_steps += active;
  return cycles;
}

}  // namespace tcgpu::simt
