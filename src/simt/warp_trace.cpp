#include "simt/warp_trace.hpp"

#include <algorithm>
#include <array>

namespace tcgpu::simt {
namespace {

/// Collects the distinct 32-byte sectors touched by one aligned group into
/// `out` (group size <= warp size, so a small insertion set is fastest).
std::uint32_t distinct_sectors(const std::uint64_t* addrs, std::uint32_t size,
                               std::uint32_t n, std::uint32_t sector_bytes,
                               std::array<std::uint64_t, 64>& out) {
  std::uint32_t count = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    // A single access can straddle sectors; cover its full byte range.
    const std::uint64_t first = addrs[i] / sector_bytes;
    const std::uint64_t last = (addrs[i] + size - 1) / sector_bytes;
    for (std::uint64_t s = first; s <= last; ++s) {
      bool seen = false;
      for (std::uint32_t j = 0; j < count; ++j) {
        if (out[j] == s) {
          seen = true;
          break;
        }
      }
      if (!seen && count < out.size()) out[count++] = s;
    }
  }
  return count;
}

/// Bank-conflict degree of one aligned shared-memory group: the maximum,
/// over banks, of the number of *distinct words* accessed in that bank.
/// 1 means conflict-free (or broadcast); d means the access replays d times.
std::uint32_t conflict_degree(const std::uint64_t* addrs, std::uint32_t n,
                              std::uint32_t banks) {
  std::array<std::uint64_t, 32> words;  // distinct words seen
  std::array<std::uint8_t, 32> per_bank{};
  std::uint32_t nwords = 0;
  std::uint32_t worst = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t word = addrs[i] >> 2;
    bool seen = false;
    for (std::uint32_t j = 0; j < nwords; ++j) {
      if (words[j] == word) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    if (nwords < words.size()) words[nwords++] = word;
    const std::uint32_t bank = static_cast<std::uint32_t>(word % banks);
    per_bank[bank]++;
    worst = std::max<std::uint32_t>(worst, per_bank[bank]);
  }
  return worst;
}

}  // namespace

std::uint32_t WarpAggregator::cache_access(const std::uint64_t* sectors,
                                           std::uint32_t n) {
  std::uint32_t misses = 0;
  const std::uint32_t mask = spec_->l1_cache_sectors - 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t s = sectors[i];
    const std::uint32_t slot = static_cast<std::uint32_t>(s) & mask;
    if (cache_[slot] != s) {
      cache_[slot] = s;
      ++misses;
    }
  }
  return misses;
}

// The flush groups each lane's k-th access at a call site with every other
// lane's k-th access there ("occurrence alignment" — see the header). It is
// implemented as one counting sort keyed by (site, lane), which preserves
// each lane's program order, so within a (site, lane) slice the events are
// already in occurrence order — no comparison sort needed on the hot path.
double WarpAggregator::flush(KernelMetrics& m) {
  const GpuSpec& spec = *spec_;
  const std::uint32_t W = warp_size();

  std::uint64_t max_compute = 0;
  std::uint64_t sum_compute = 0;
  std::size_t total_events = 0;
  bool any = false;
  for (std::uint32_t l = 0; l < W; ++l) {
    const LaneTrace& t = lanes_[l];
    if (!t.empty()) any = true;
    max_compute = std::max(max_compute, t.compute_steps);
    sum_compute += t.compute_steps;
    total_events += t.events.size();
  }
  if (!any) return 0.0;

  // --- pass 1: intern sites into dense local ids ---------------------------
  site_local_.clear();
  auto local_of = [this](std::uint32_t site) -> std::uint32_t {
    for (std::uint32_t i = 0; i < site_local_.size(); ++i) {
      if (site_local_[i] == site) return i;
    }
    site_local_.push_back(site);
    return static_cast<std::uint32_t>(site_local_.size() - 1);
  };

  // --- pass 2: counting sort by (local site, lane) -------------------------
  // Slot layout: slot = local_site * W + lane.
  local_ids_.clear();
  std::size_t pos = 0;
  for (std::uint32_t l = 0; l < W; ++l) {
    for (const Event& e : lanes_[l].events) {
      (void)pos;
      local_ids_.push_back(local_of(e.site));
    }
  }
  const std::uint32_t S = static_cast<std::uint32_t>(site_local_.size());
  slot_count_.assign(static_cast<std::size_t>(S) * W + 1, 0);
  {
    std::size_t idx = 0;
    for (std::uint32_t l = 0; l < W; ++l) {
      for (const Event& e : lanes_[l].events) {
        (void)e;
        slot_count_[static_cast<std::size_t>(local_ids_[idx]) * W + l + 1]++;
        ++idx;
      }
    }
  }
  for (std::size_t i = 1; i < slot_count_.size(); ++i) {
    slot_count_[i] += slot_count_[i - 1];
  }
  sorted_addr_.resize(total_events);
  sorted_kind_.resize(total_events);
  sorted_size_.resize(total_events);
  slot_cursor_.assign(slot_count_.begin(), slot_count_.end() - 1);
  {
    std::size_t idx = 0;
    for (std::uint32_t l = 0; l < W; ++l) {
      for (const Event& e : lanes_[l].events) {
        const std::size_t slot = static_cast<std::size_t>(local_ids_[idx]) * W + l;
        const std::size_t at = slot_cursor_[slot]++;
        sorted_addr_[at] = e.addr;
        sorted_kind_[at] = static_cast<std::uint8_t>(e.kind);
        sorted_size_[at] = e.size;
        ++idx;
      }
    }
  }

  // --- pass 3: walk occurrence groups per site ------------------------------
  std::uint64_t steps = max_compute;
  std::uint64_t active = sum_compute;
  double cycles = static_cast<double>(max_compute) * spec.issue_cycles;

  std::array<std::uint64_t, 64> addrs;
  std::array<std::uint64_t, 64> sectors;
  auto global_cost = [&](std::uint32_t n, std::uint8_t size) {
    const std::uint32_t tx =
        distinct_sectors(addrs.data(), size, n, spec.sector_bytes, sectors);
    const std::uint32_t misses = cache_access(sectors.data(), tx);
    m.global_dram_transactions += misses;
    cycles += misses * spec.global_cycles_per_transaction +
              (tx - misses) * spec.l1_hit_cycles;
    return tx;
  };
  for (std::uint32_t s = 0; s < S; ++s) {
    const std::size_t base = static_cast<std::size_t>(s) * W;
    std::uint32_t max_occ = 0;
    for (std::uint32_t l = 0; l < W; ++l) {
      max_occ = std::max<std::uint32_t>(
          max_occ,
          static_cast<std::uint32_t>(slot_count_[base + l + 1] - slot_count_[base + l]));
    }
    for (std::uint32_t k = 0; k < max_occ; ++k) {
      std::uint32_t n = 0;
      AccessKind kind{};
      std::uint8_t size = 4;
      for (std::uint32_t l = 0; l < W; ++l) {
        const std::size_t lo = slot_count_[base + l];
        const std::size_t hi = slot_count_[base + l + 1];
        if (lo + k < hi && n < addrs.size()) {
          const std::size_t at = lo + k;
          addrs[n] = sorted_addr_[at];
          kind = static_cast<AccessKind>(sorted_kind_[at]);
          size = sorted_size_[at];
          ++n;
        }
      }
      steps += 1;
      active += n;
      cycles += spec.issue_cycles;
      switch (kind) {
        case AccessKind::kGlobalLoad: {
          const std::uint32_t tx = global_cost(n, size);
          m.global_load_requests += 1;
          m.global_load_transactions += tx;
          break;
        }
        case AccessKind::kGlobalStore: {
          const std::uint32_t tx = global_cost(n, size);
          m.global_store_requests += 1;
          m.global_store_transactions += tx;
          break;
        }
        case AccessKind::kGlobalAtomic: {
          const std::uint32_t tx = global_cost(n, size);
          m.global_atomic_requests += 1;
          m.global_atomic_transactions += tx;
          cycles += n * spec.atomic_extra_cycles;
          break;
        }
        case AccessKind::kSharedLoad: {
          const std::uint32_t deg =
              conflict_degree(addrs.data(), n, spec.shared_banks);
          m.shared_load_requests += 1;
          m.shared_conflict_cycles += deg - 1;
          cycles += deg * spec.shared_cycles_per_access;
          break;
        }
        case AccessKind::kSharedStore: {
          const std::uint32_t deg =
              conflict_degree(addrs.data(), n, spec.shared_banks);
          m.shared_store_requests += 1;
          m.shared_conflict_cycles += deg - 1;
          cycles += deg * spec.shared_cycles_per_access;
          break;
        }
        case AccessKind::kSharedAtomic: {
          const std::uint32_t deg =
              conflict_degree(addrs.data(), n, spec.shared_banks);
          m.shared_atomic_requests += 1;
          m.shared_conflict_cycles += deg - 1;
          cycles +=
              deg * spec.shared_cycles_per_access + n * spec.atomic_extra_cycles;
          break;
        }
      }
    }
  }

  for (std::uint32_t l = 0; l < W; ++l) lanes_[l].clear();
  m.warp_steps += steps;
  m.active_lane_steps += active;
  return cycles;
}

}  // namespace tcgpu::simt
