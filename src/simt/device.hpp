// Simulated device global memory.
//
// A Device owns all global-memory allocations; DeviceBuffer<T> is a cheap
// non-owning typed view that kernels capture by value (the analogue of a
// device pointer). Each allocation gets a unique, 128-byte-aligned base in a
// flat device virtual address space, so coalescing math over addresses is
// faithful across buffer boundaries. Host code reads/writes through
// host_span() (the analogue of cudaMemcpy — unmetered); kernels go through
// ThreadCtx, which meters every access.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace tcgpu::simt {

template <class T>
class DeviceBuffer;

class Device {
 public:
  Device() = default;
  /// A device whose address space starts at `base_addr` instead of the
  /// default base. Lets a scratch device continue the address layout of
  /// another device (e.g. after a resident graph), so the combined address
  /// stream is identical to allocating everything on one device.
  explicit Device(std::uint64_t base_addr)
      : first_base_(align_up(base_addr)), next_base_(align_up(base_addr)) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocates `count` value-initialized elements of T in device memory.
  template <class T>
  DeviceBuffer<T> alloc(std::size_t count, std::string name = {});

  std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t allocation_count() const { return allocations_.size(); }

  /// Snapshot of the allocation state, for scoped reuse via release_to().
  struct Mark {
    std::size_t allocation_count = 0;
    std::uint64_t next_base = 0;
    std::uint64_t bytes_allocated = 0;
  };
  Mark mark() const { return {allocations_.size(), next_base_, bytes_allocated_}; }

  /// Frees every allocation made after `m` (invalidating their buffers) and
  /// rewinds the address space, so the next alloc reuses the same base a
  /// fresh run would have received. Allocations up to the mark survive —
  /// this is what lets a resident graph outlive per-run scratch.
  void release_to(const Mark& m) {
    if (m.allocation_count > allocations_.size()) {
      throw std::invalid_argument("Device::release_to: stale mark");
    }
    allocations_.resize(m.allocation_count);
    next_base_ = m.next_base;
    bytes_allocated_ = m.bytes_allocated;
  }

  /// Releases every allocation (invalidates all outstanding buffers).
  void free_all() {
    allocations_.clear();
    bytes_allocated_ = 0;
    next_base_ = first_base_;
  }

 private:
  struct Allocation {
    std::unique_ptr<std::byte[]> data;
    std::uint64_t base = 0;
    std::size_t bytes = 0;
    std::string name;
  };

  static constexpr std::uint64_t kBaseStart = 0x10000;
  static constexpr std::uint64_t kAlign = 128;

  static constexpr std::uint64_t align_up(std::uint64_t addr) {
    return (addr + kAlign - 1) / kAlign * kAlign;
  }

  std::vector<Allocation> allocations_;
  std::uint64_t first_base_ = kBaseStart;
  std::uint64_t next_base_ = kBaseStart;
  std::uint64_t bytes_allocated_ = 0;
};

/// Non-owning typed view of a device allocation. Copy freely into kernels.
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t base_addr() const { return base_; }
  std::uint64_t addr_of(std::size_t i) const { return base_ + i * sizeof(T); }

  /// Unmetered host-side access (cudaMemcpy analogue).
  T* host_data() { return data_; }
  const T* host_data() const { return data_; }
  std::span<T> host_span() { return {data_, size_}; }
  std::span<const T> host_span() const { return {data_, size_}; }

  /// Unmetered raw element access used by the executor's atomics and checks.
  T* raw() const { return data_; }

 private:
  friend class Device;
  DeviceBuffer(T* data, std::uint64_t base, std::size_t size)
      : data_(data), base_(base), size_(size) {}

  T* data_ = nullptr;
  std::uint64_t base_ = 0;
  std::size_t size_ = 0;
};

template <class T>
DeviceBuffer<T> Device::alloc(std::size_t count, std::string name) {
  static_assert(std::is_trivially_copyable_v<T>,
                "device buffers hold trivially copyable types only");
  const std::size_t bytes = count * sizeof(T);
  Allocation a;
  // make_unique<byte[]> value-initializes, i.e. the storage is already
  // all-zero — which is T{} for every trivially copyable T we allow.
  a.data = std::make_unique<std::byte[]>(bytes == 0 ? 1 : bytes);
  a.base = next_base_;
  a.bytes = bytes;
  a.name = std::move(name);
  auto* typed = reinterpret_cast<T*>(a.data.get());
  DeviceBuffer<T> view(typed, a.base, count);
  next_base_ += (bytes + kAlign - 1) / kAlign * kAlign + kAlign;
  bytes_allocated_ += bytes;
  allocations_.push_back(std::move(a));
  return view;
}

}  // namespace tcgpu::simt
