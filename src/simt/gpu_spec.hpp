// Device model: the static parameters and cost weights of the simulated GPU.
//
// The simulator counts architectural events (warp instruction steps, global
// memory transactions, shared-memory accesses and bank conflicts, atomics)
// and converts them to modeled kernel time through this spec. Two presets
// mirror the paper's testbed: Tesla V100 (the card all reported numbers come
// from) and RTX 4090.
#pragma once

#include <cstdint>
#include <string>

namespace tcgpu::simt {

struct GpuSpec {
  std::string name = "generic";

  // --- architecture -------------------------------------------------------
  std::uint32_t sm_count = 80;             ///< streaming multiprocessors
  std::uint32_t warp_size = 32;            ///< lanes per warp (fixed by the model)
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t shared_mem_per_block = 48 * 1024;  ///< bytes
  std::uint32_t sector_bytes = 32;         ///< global-memory transaction granularity
  std::uint32_t shared_banks = 32;         ///< 4-byte-interleaved banks
  double clock_ghz = 1.38;                 ///< SM clock
  double mem_bandwidth_gbps = 900.0;       ///< device-wide global bandwidth

  // --- cost model (cycles) -------------------------------------------------
  // A warp instruction step costs issue_cycles. Each 32-byte global
  // transaction is looked up in a per-SM direct-mapped sector cache (the
  // L1/L2 stand-in): hits cost l1_hit_cycles, misses cost
  // global_cycles_per_transaction and count toward the device-wide DRAM
  // bandwidth bound. Shared accesses cost shared_cycles_per_access times
  // the bank-conflict degree. Atomics add atomic_extra_cycles on top.
  double issue_cycles = 1.0;
  double global_cycles_per_transaction = 6.0;  ///< cache-miss (DRAM) cost
  double l1_hit_cycles = 1.0;
  std::uint32_t l1_cache_sectors = 4096;  ///< 4096 x 32 B = 128 KiB per SM
  double shared_cycles_per_access = 1.0;
  double atomic_extra_cycles = 6.0;
  /// Fixed driver/runtime cost charged per kernel launch. This is what makes
  /// multi-kernel, heavy-setup algorithms pay on tiny graphs where the
  /// counting work itself is microseconds (the paper's §V explanation of
  /// TRUST's weakness on small datasets).
  double launch_overhead_us = 4.0;

  /// Device-wide bytes per SM-clock cycle (used for the bandwidth bound).
  double bytes_per_cycle() const {
    return mem_bandwidth_gbps * 1e9 / (clock_ghz * 1e9);
  }

  // --- cost-model helpers (shared by the launcher's finalize step and the
  // --- serve::Selector's a-priori kernel scoring) --------------------------

  /// Milliseconds for `cycles` cycles at this SM clock.
  double cycles_to_ms(double cycles) const { return cycles / (clock_ghz * 1e9) * 1e3; }

  /// Fixed modeled driver/runtime cost of `launches` kernel launches, in ms.
  /// This term is what penalizes multi-kernel algorithms (TRUST's degree
  /// buckets, Fox's six bins) on tiny graphs — the paper's §V explanation.
  double launch_overhead_ms(double launches = 1.0) const {
    return launch_overhead_us * 1e-3 * launches;
  }

  /// Milliseconds for `cycles` total cycles of perfectly-parallel work spread
  /// round-robin over the SMs — the critical-SM bound of an even launch.
  /// A-priori models scale their per-warp work estimates through this.
  double parallel_cycles_to_ms(double cycles) const {
    return cycles_to_ms(cycles / static_cast<double>(sm_count));
  }

  static GpuSpec v100();
  static GpuSpec rtx4090();
};

/// Inter-device link model for multi-GPU execution (src/dist/). Transfers
/// are counted in bytes and messages by the Interconnect cost model and
/// converted to milliseconds here, the same counted-quantity philosophy as
/// the kernel cost model above.
struct InterconnectSpec {
  std::string name = "nvlink";
  double peer_bandwidth_gbps = 25.0;  ///< per peer pair, per direction
  double latency_us = 1.9;            ///< fixed cost per message

  /// Milliseconds to move `bytes` between one device pair as one message.
  double transfer_ms(std::uint64_t bytes) const {
    return latency_us * 1e-3 +
           static_cast<double>(bytes) / (peer_bandwidth_gbps * 1e9) * 1e3;
  }

  /// NVLink 2.0 as on the paper's V100 testbed: 25 GB/s per link direction.
  static InterconnectSpec nvlink();
  /// PCIe 3.0 x16: ~12 GB/s achieved, an order of magnitude more latency.
  static InterconnectSpec pcie3();
  /// 10 GbE between hosts: ~1.1 GB/s achieved, tens of microseconds per
  /// message — the topology where per-edge messaging dies and buffered
  /// aggregation is mandatory.
  static InterconnectSpec eth10g();
  /// InfiniBand EDR (100 Gb/s) between hosts: ~11 GB/s achieved, RDMA-class
  /// latency.
  static InterconnectSpec ib_edr();
};

/// Preset lookup by CLI name ("nvlink" | "pcie3" | "eth10g" | "ib-edr");
/// throws std::invalid_argument listing the valid presets on anything else.
InterconnectSpec interconnect_spec_from_string(const std::string& name);
/// The valid preset names, comma-joined, for error messages and --help text.
std::string valid_interconnect_list();

/// One host of a modeled cluster: how many identical GPUs it carries and the
/// link that connects them. The GPUs themselves ride the engine's GpuSpec —
/// hosts are homogeneous, like the paper's testbed nodes.
struct HostSpec {
  std::uint32_t devices = 1;                             ///< GPUs per host
  InterconnectSpec intra = InterconnectSpec::nvlink();   ///< device <-> device
};

/// A two-level hosts x devices cluster: `hosts` identical HostSpec nodes
/// joined by a modeled network link. Device d lives on host d / host.devices
/// (contiguous blocks), so a contiguous device range spans the fewest hosts.
struct ClusterSpec {
  std::string name = "single-host";
  std::uint32_t hosts = 1;
  HostSpec host;
  InterconnectSpec inter = InterconnectSpec::ib_edr();   ///< host <-> host

  std::uint32_t num_devices() const { return hosts * host.devices; }

  /// One host, `devices` GPUs on `link` — the degenerate topology every
  /// pre-cluster code path models.
  static ClusterSpec single_host(
      std::uint32_t devices,
      InterconnectSpec link = InterconnectSpec::nvlink());
  /// `hosts` NVLink nodes of `devices_per_host` GPUs over 10 GbE.
  static ClusterSpec ethernet(std::uint32_t hosts, std::uint32_t devices_per_host);
  /// `hosts` NVLink nodes of `devices_per_host` GPUs over InfiniBand EDR.
  static ClusterSpec infiniband(std::uint32_t hosts, std::uint32_t devices_per_host);
};

}  // namespace tcgpu::simt
