#include "simt/device.hpp"

// Device is header-only apart from this translation unit, which exists to
// anchor the library target and keep the build layout uniform.
namespace tcgpu::simt {}
