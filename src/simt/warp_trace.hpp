// Warp-level aggregation of lane traces into architectural events.
//
// Lanes of a warp are executed sequentially by the host, each producing a
// LaneTrace. Real SIMT hardware executes them in lockstep, so the
// aggregator reconstructs warp-level instructions by aligning events across
// lanes on (call site, occurrence index): the k-th access a lane issues at a
// given program point lines up with the k-th access every other lane issues
// there. For the loop-trip-count divergence that dominates triangle-counting
// kernels this alignment is exact; lanes that ran out of work simply have no
// k-th occurrence and count as inactive — which is precisely what
// warp_execution_efficiency measures.
//
// Per aligned group the aggregator derives:
//   * global kinds — one request, plus one transaction per distinct
//     32-byte sector touched by the group's addresses (nvprof's definition);
//   * shared kinds — one request, plus bank-conflict degree: accesses that
//     hit the same 4-byte-interleaved bank at different word addresses
//     serialize (same-word access broadcasts);
//   * cycle cost via the GpuSpec weights.
//
// flush() has two implementations with bit-identical output (see the .cpp
// for the hot-path details): a counting sort over all lanes for divergent
// warps, and a lane-0-only fast path for fully converged warps.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "simt/event.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"

namespace tcgpu::simt {

class WarpAggregator {
 public:
  explicit WarpAggregator(const GpuSpec& spec);

  LaneTrace& lane(std::uint32_t l) { return lanes_[l]; }
  std::uint32_t warp_size() const { return static_cast<std::uint32_t>(lanes_.size()); }

  /// Clears the SM sector cache. The launcher calls this when the simulated
  /// block it is executing moves to a fresh SM context, keeping cache state
  /// deterministic regardless of host-thread scheduling. O(1): entries are
  /// generation-stamped, so a reset is one counter bump — a slot is live
  /// only while its stamp matches the current generation.
  void reset_cache() {
    if (++cache_gen_ == 0) {  // stamp wrap: invalidate the slow way, once
      cache_.assign(cache_.size(), CacheEntry{});
      cache_gen_ = 1;
    }
  }

  /// Aggregates all lane traces into `m`, returns the modeled cycle cost of
  /// this unit, and clears the lanes for reuse. A unit with no events and no
  /// compute work costs nothing and adds no steps.
  double flush(KernelMetrics& m);

 private:
  struct CacheEntry {
    std::uint64_t tag = 0;   ///< sector id
    std::uint32_t gen = 0;   ///< live iff == cache_gen_
  };

  /// Stamped open-addressing dedup scratch for one aligned group (<= 64 live
  /// keys in 128 slots). "Clearing" between groups is a generation bump, so a
  /// group costs O(probes), never O(table).
  struct StampSet {
    std::array<std::uint64_t, 128> key{};
    std::array<std::uint32_t, 128> gen{};
    std::uint32_t cur = 0;
  };

  /// Looks up `n` sector ids in the direct-mapped cache, installing misses.
  /// Returns the number of misses (DRAM transactions).
  std::uint32_t cache_access(const std::uint64_t* sectors, std::uint32_t n);

  /// Distinct 32-byte sectors of one aligned group, in first-appearance
  /// order (the order the stateful sector cache must see them in).
  std::uint32_t distinct_sectors(const std::uint64_t* addrs, std::uint32_t size,
                                 std::uint32_t n,
                                 std::array<std::uint64_t, 64>& out);

  /// Bank-conflict degree of one aligned shared-memory group.
  std::uint32_t conflict_degree(const std::uint64_t* addrs, std::uint32_t n);

  const GpuSpec* spec_;
  std::vector<LaneTrace> lanes_;
  std::vector<CacheEntry> cache_;
  std::uint32_t cache_gen_ = 0;
  // Reused scratch (see flush() for the layouts).
  std::vector<std::uint32_t> site_local_;
  // site id -> (flush generation, dense local id): O(1) interning without a
  // per-flush clear. A slot is live only while its stamp matches map_gen_.
  std::vector<std::uint64_t> site_map_;
  std::uint32_t map_gen_ = 0;
  std::vector<std::uint32_t> local_ids_;
  std::vector<std::uint32_t> order_;
  std::vector<std::size_t> slot_count_;
  std::vector<std::size_t> slot_cursor_;
  std::vector<std::uint64_t> sorted_addr_;
  std::vector<std::uint64_t> sorted_meta_;
  StampSet sector_set_;  ///< scattered-group sector dedup
  StampSet word_set_;    ///< scattered-group shared-word dedup
};

}  // namespace tcgpu::simt
