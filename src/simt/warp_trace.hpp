// Warp-level aggregation of lane traces into architectural events.
//
// Lanes of a warp are executed sequentially by the host, each producing a
// LaneTrace. Real SIMT hardware executes them in lockstep, so the
// aggregator reconstructs warp-level instructions by aligning events across
// lanes on (call site, occurrence index): the k-th access a lane issues at a
// given program point lines up with the k-th access every other lane issues
// there. For the loop-trip-count divergence that dominates triangle-counting
// kernels this alignment is exact; lanes that ran out of work simply have no
// k-th occurrence and count as inactive — which is precisely what
// warp_execution_efficiency measures.
//
// Per aligned group the aggregator derives:
//   * global kinds — one request, plus one transaction per distinct
//     32-byte sector touched by the group's addresses (nvprof's definition);
//   * shared kinds — one request, plus bank-conflict degree: accesses that
//     hit the same 4-byte-interleaved bank at different word addresses
//     serialize (same-word access broadcasts);
//   * cycle cost via the GpuSpec weights.
#pragma once

#include <cstdint>
#include <vector>

#include "simt/event.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"

namespace tcgpu::simt {

class WarpAggregator {
 public:
  explicit WarpAggregator(const GpuSpec& spec) : spec_(&spec), lanes_(spec.warp_size) {
    reset_cache();
  }

  LaneTrace& lane(std::uint32_t l) { return lanes_[l]; }
  std::uint32_t warp_size() const { return static_cast<std::uint32_t>(lanes_.size()); }

  /// Clears the SM sector cache. The launcher calls this when the simulated
  /// block it is executing moves to a fresh SM context, keeping cache state
  /// deterministic regardless of host-thread scheduling.
  void reset_cache() { cache_.assign(spec_->l1_cache_sectors, kNoSector); }

  /// Aggregates all lane traces into `m`, returns the modeled cycle cost of
  /// this unit, and clears the lanes for reuse. A unit with no events and no
  /// compute work costs nothing and adds no steps.
  double flush(KernelMetrics& m);

 private:
  static constexpr std::uint64_t kNoSector = ~0ull;

  /// Looks up `n` sector ids in the direct-mapped cache, installing misses.
  /// Returns the number of misses (DRAM transactions).
  std::uint32_t cache_access(const std::uint64_t* sectors, std::uint32_t n);

  const GpuSpec* spec_;
  std::vector<LaneTrace> lanes_;
  std::vector<std::uint64_t> cache_;
  // Reused counting-sort scratch (see flush() for the layout).
  std::vector<std::uint32_t> site_local_;
  std::vector<std::uint32_t> local_ids_;
  std::vector<std::size_t> slot_count_;
  std::vector<std::size_t> slot_cursor_;
  std::vector<std::uint64_t> sorted_addr_;
  std::vector<std::uint8_t> sorted_kind_;
  std::vector<std::uint8_t> sorted_size_;
};

}  // namespace tcgpu::simt
