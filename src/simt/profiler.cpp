#include "simt/profiler.hpp"

#include <iomanip>
#include <ostream>

namespace tcgpu::simt {

void Profiler::record(std::string kernel_name, const KernelStats& stats) {
  launches_.push_back({std::move(kernel_name), stats});
}

KernelStats Profiler::total() const {
  KernelStats t;
  for (const auto& l : launches_) t += l.stats;
  return t;
}

void Profiler::report(std::ostream& os) const {
  os << std::left << std::setw(28) << "kernel" << std::right << std::setw(12)
     << "time(ms)" << std::setw(16) << "gld_requests" << std::setw(16)
     << "gld_tx/req" << std::setw(14) << "warp_eff%" << '\n';
  auto row = [&os](const std::string& name, const KernelStats& s) {
    os << std::left << std::setw(28) << name << std::right << std::setw(12)
       << std::fixed << std::setprecision(4) << s.time_ms << std::setw(16)
       << s.metrics.global_load_requests << std::setw(16) << std::setprecision(2)
       << s.metrics.gld_transactions_per_request() << std::setw(14)
       << std::setprecision(1) << s.metrics.warp_execution_efficiency() * 100.0
       << '\n';
  };
  for (const auto& l : launches_) row(l.name, l.stats);
  if (launches_.size() > 1) row("[total]", total());
}

}  // namespace tcgpu::simt
