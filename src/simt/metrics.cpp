#include "simt/metrics.hpp"

namespace tcgpu::simt {

KernelMetrics& KernelMetrics::operator+=(const KernelMetrics& o) {
  global_load_requests += o.global_load_requests;
  global_load_transactions += o.global_load_transactions;
  global_store_requests += o.global_store_requests;
  global_store_transactions += o.global_store_transactions;
  global_atomic_requests += o.global_atomic_requests;
  global_atomic_transactions += o.global_atomic_transactions;
  global_dram_transactions += o.global_dram_transactions;
  shared_load_requests += o.shared_load_requests;
  shared_store_requests += o.shared_store_requests;
  shared_atomic_requests += o.shared_atomic_requests;
  shared_conflict_cycles += o.shared_conflict_cycles;
  warp_steps += o.warp_steps;
  active_lane_steps += o.active_lane_steps;
  warps_launched += o.warps_launched;
  return *this;
}

}  // namespace tcgpu::simt
