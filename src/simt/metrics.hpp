// nvprof-style counters produced by a simulated kernel launch.
//
// The three metrics the paper profiles (§IV "Metrics") are derived exactly
// as the CUDA profiler defines them:
//   global_load_requests        — one per warp-level global load instruction
//   gld_transactions_per_request — 32-byte sectors touched / requests
//   warp_execution_efficiency   — avg active lanes per warp step / 32
#pragma once

#include <cstdint>

namespace tcgpu::simt {

struct KernelMetrics {
  std::uint64_t global_load_requests = 0;
  std::uint64_t global_load_transactions = 0;
  std::uint64_t global_store_requests = 0;
  std::uint64_t global_store_transactions = 0;
  std::uint64_t global_atomic_requests = 0;
  std::uint64_t global_atomic_transactions = 0;
  std::uint64_t global_dram_transactions = 0;  ///< sector-cache misses
  std::uint64_t shared_load_requests = 0;
  std::uint64_t shared_store_requests = 0;
  std::uint64_t shared_atomic_requests = 0;
  std::uint64_t shared_conflict_cycles = 0;  ///< extra cycles from bank conflicts
  std::uint64_t warp_steps = 0;              ///< aligned warp instruction steps
  std::uint64_t active_lane_steps = 0;       ///< Σ active lanes over all steps
  std::uint64_t warps_launched = 0;

  double warp_execution_efficiency() const {
    if (warp_steps == 0) return 1.0;
    return static_cast<double>(active_lane_steps) /
           (32.0 * static_cast<double>(warp_steps));
  }
  double gld_transactions_per_request() const {
    if (global_load_requests == 0) return 0.0;
    return static_cast<double>(global_load_transactions) /
           static_cast<double>(global_load_requests);
  }
  std::uint64_t global_transactions_total() const {
    return global_load_transactions + global_store_transactions +
           global_atomic_transactions;
  }

  KernelMetrics& operator+=(const KernelMetrics& o);
  bool operator==(const KernelMetrics&) const = default;
};

/// Result of one simulated launch: counters plus modeled kernel time.
struct KernelStats {
  KernelMetrics metrics;
  double time_ms = 0.0;

  KernelStats& operator+=(const KernelStats& o) {
    metrics += o.metrics;
    time_ms += o.time_ms;  // sequential kernel launches add up
    return *this;
  }
  /// Exact (bit-level for time_ms) equality — the determinism contract the
  /// engine's parallel cell scheduler is tested against.
  bool operator==(const KernelStats&) const = default;
};

}  // namespace tcgpu::simt
