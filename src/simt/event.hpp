// Per-lane memory access events recorded during simulated kernel execution.
//
// Every metered memory operation issued by a lane (global/shared,
// load/store/atomic) appends one event to the lane's trace. After the 32
// lanes of a warp finish a phase, the WarpAggregator aligns events across
// lanes by (call site, occurrence index) — the simulator's model of a
// warp-level instruction — and derives nvprof-style metrics from the groups.
//
// Storage is structure-of-arrays: a lane keeps one column of byte addresses
// and one column of packed (site, kind, size) metadata words. The aggregator
// owns the 32 lane traces and reuses their capacity across flushes, so the
// steady-state record path is two bounds-checked appends and no allocation.
// Keeping metadata in its own contiguous column is what makes the flush
// fast path cheap: "all lanes issued the same site sequence" is a memcmp.
#pragma once

#include <cstdint>
#include <vector>

namespace tcgpu::simt {

/// Classification of a metered memory operation.
enum class AccessKind : std::uint8_t {
  kGlobalLoad = 0,
  kGlobalStore = 1,
  kGlobalAtomic = 2,
  kSharedLoad = 3,
  kSharedStore = 4,
  kSharedAtomic = 5,
};

/// True for the three kinds that touch device global memory.
constexpr bool is_global(AccessKind k) {
  return k == AccessKind::kGlobalLoad || k == AccessKind::kGlobalStore ||
         k == AccessKind::kGlobalAtomic;
}

/// Everything one lane did during one aggregation unit (one phase of one
/// work item), as two parallel SoA columns plus a compute-step tally.
/// Owned by the WarpAggregator; cleared (capacity kept) after every flush.
struct LaneTrace {
  std::vector<std::uint64_t> addr;  ///< byte address per event (device VA for
                                    ///< global, arena offset for shared)
  std::vector<std::uint64_t> meta;  ///< packed (site, kind, size) per event
  std::uint64_t compute_steps = 0;  ///< pure-ALU work via ThreadCtx::compute()

  /// Packs the non-address fields of one event into a single word:
  /// bits [0,32) site id, [32,40) kind, [40,48) access size in bytes.
  static constexpr std::uint64_t pack(std::uint32_t site, AccessKind kind,
                                      std::uint8_t size) {
    return static_cast<std::uint64_t>(site) |
           (static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind)) << 32) |
           (static_cast<std::uint64_t>(size) << 40);
  }
  static constexpr std::uint32_t site_of(std::uint64_t m) {
    return static_cast<std::uint32_t>(m);
  }
  static constexpr AccessKind kind_of(std::uint64_t m) {
    return static_cast<AccessKind>(static_cast<std::uint8_t>(m >> 32));
  }
  static constexpr std::uint8_t size_of(std::uint64_t m) {
    return static_cast<std::uint8_t>(m >> 40);
  }

  void push(std::uint64_t a, std::uint32_t site, AccessKind kind,
            std::uint8_t size) {
    addr.push_back(a);
    meta.push_back(pack(site, kind, size));
  }

  std::size_t size() const { return addr.size(); }
  void clear() {
    addr.clear();
    meta.clear();
    compute_steps = 0;
  }
  bool empty() const { return addr.empty() && compute_steps == 0; }
};

}  // namespace tcgpu::simt
