// Per-lane memory access events recorded during simulated kernel execution.
//
// Every metered memory operation issued by a lane (global/shared,
// load/store/atomic) appends one Event to the lane's trace. After the 32
// lanes of a warp finish a phase, the WarpAggregator aligns events across
// lanes by (call site, occurrence index) — the simulator's model of a
// warp-level instruction — and derives nvprof-style metrics from the groups.
#pragma once

#include <cstdint>
#include <vector>

namespace tcgpu::simt {

/// Classification of a metered memory operation.
enum class AccessKind : std::uint8_t {
  kGlobalLoad = 0,
  kGlobalStore = 1,
  kGlobalAtomic = 2,
  kSharedLoad = 3,
  kSharedStore = 4,
  kSharedAtomic = 5,
};

/// True for the three kinds that touch device global memory.
constexpr bool is_global(AccessKind k) {
  return k == AccessKind::kGlobalLoad || k == AccessKind::kGlobalStore ||
         k == AccessKind::kGlobalAtomic;
}

/// One metered access issued by one lane.
struct Event {
  std::uint64_t addr;  ///< byte address (device VA for global, arena offset for shared)
  std::uint32_t site;  ///< dense id of the issuing call site
  AccessKind kind;
  std::uint8_t size;  ///< access width in bytes
};

/// Everything one lane did during one aggregation unit (one phase of one
/// work item). Reused across lanes/items to avoid allocation churn.
struct LaneTrace {
  std::vector<Event> events;
  std::uint64_t compute_steps = 0;  ///< pure-ALU work reported via ThreadCtx::compute()

  void clear() {
    events.clear();
    compute_steps = 0;
  }
  bool empty() const { return events.empty() && compute_steps == 0; }
};

}  // namespace tcgpu::simt
