// Call-site identity for metered accesses.
//
// ThreadCtx meters every access with a std::source_location (defaulted at
// the call site). Occurrence alignment in the warp aggregator needs a dense,
// cheap-to-compare site id, so this module interns locations into uint32 ids
// via a lock-free fixed-size hash table (sites are static program points —
// a few dozen per kernel — so the table never fills in practice).
#pragma once

#include <cstdint>
#include <source_location>

namespace tcgpu::simt {

/// Interns a source location, returning a stable dense id (process-wide).
std::uint32_t site_id(const std::source_location& loc);

/// Number of distinct sites interned so far (for tests/diagnostics).
std::uint32_t site_count();

}  // namespace tcgpu::simt
