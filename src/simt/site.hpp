// Call-site identity for metered accesses.
//
// ThreadCtx meters every access with a call-site identity. Occurrence
// alignment in the warp aggregator needs a dense, cheap-to-compare site id,
// so this module interns std::source_locations into uint32 ids via a
// lock-free fixed-size hash table (sites are static program points — a few
// dozen per kernel — so the table never fills in practice).
//
// Resolution cost matters: the simulator issues one metered access per
// simulated lane event, billions per sweep. Two paths exist:
//
//   * SiteToken — resolved once (one intern-table probe), then every use is
//     a plain load of the cached id. Kernels pin one token per textual call
//     site with TCGPU_SITE() and pass it to the ThreadCtx entry points.
//   * Site's source_location fallback — probes the intern table on every
//     call. Kept for tests and cold call sites; semantically identical.
//
// Both paths produce the same site partition: one id per textual program
// point, stable for the life of the process.
#pragma once

#include <cstdint>
#include <source_location>

namespace tcgpu::simt {

/// Interns a source location, returning a stable dense id (process-wide).
std::uint32_t site_id(const std::source_location& loc);

/// Number of distinct sites interned so far (for tests/diagnostics).
std::uint32_t site_count();

/// A resolved call-site id. Construct once per program point (function-local
/// static via TCGPU_SITE(), or a named local hoisted out of a hot loop) and
/// pass to the metered ThreadCtx entry points; each use is then a plain load
/// instead of a hash-table probe.
struct SiteToken {
  std::uint32_t id = 0;
  SiteToken() = default;
  explicit SiteToken(const std::source_location& loc) : id(site_id(loc)) {}
};

/// Argument adapter for the metered ThreadCtx entry points: accepts either a
/// cached SiteToken (fast path, a plain load) or nothing, in which case the
/// caller's source_location is captured and interned per call (slow path).
class Site {
 public:
  Site(const SiteToken& t) : id_(t.id) {}  // NOLINT(google-explicit-constructor)
  Site(std::source_location loc = std::source_location::current())  // NOLINT
      : id_(site_id(loc)) {}
  std::uint32_t id() const { return id_; }

 private:
  std::uint32_t id_;
};

}  // namespace tcgpu::simt

/// Expands to a reference to a function-local static SiteToken for this
/// textual program point: the intern-table probe runs once (thread-safe
/// magic-static init), every later evaluation is a guarded plain load.
/// Distinct expansions — even on one line — are distinct sites, exactly like
/// the source_location default they replace.
#define TCGPU_SITE()                                            \
  ([]() noexcept -> const ::tcgpu::simt::SiteToken& {           \
    static const ::tcgpu::simt::SiteToken tcgpu_cached_site{    \
        std::source_location::current()};                       \
    return tcgpu_cached_site;                                   \
  }())
