#include "simt/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::simt {

TransferStats Interconnect::scatter(
    const std::vector<std::uint64_t>& per_device_bytes,
    const std::vector<std::uint64_t>& per_device_messages) const {
  if (per_device_bytes.size() != num_devices_ ||
      per_device_messages.size() != num_devices_) {
    throw std::invalid_argument("Interconnect::scatter: per-device vectors must "
                                "have one entry per device");
  }
  TransferStats t;
  for (std::uint32_t d = 0; d < num_devices_; ++d) {
    t.bytes += per_device_bytes[d];
    t.messages += per_device_messages[d];
    // Device d serializes its incoming messages; devices receive in parallel.
    const double recv_ms =
        static_cast<double>(per_device_messages[d]) * spec_.latency_us * 1e-3 +
        static_cast<double>(per_device_bytes[d]) /
            (spec_.peer_bandwidth_gbps * 1e9) * 1e3;
    t.time_ms = std::max(t.time_ms, recv_ms);
  }
  return t;
}

TransferStats Interconnect::all_reduce(std::uint64_t bytes_per_device) const {
  TransferStats t;
  if (num_devices_ <= 1) return t;  // nothing to exchange
  // Binomial reduce tree then broadcast tree: N-1 payload moves each way,
  // ceil(log2 N) latency-bound steps each way on the critical path.
  std::uint32_t steps = 0;
  for (std::uint32_t span = 1; span < num_devices_; span <<= 1) ++steps;
  t.bytes = 2ull * (num_devices_ - 1) * bytes_per_device;
  t.messages = 2ull * (num_devices_ - 1);
  t.time_ms = 2.0 * steps * spec_.transfer_ms(bytes_per_device);
  return t;
}

namespace {

std::uint32_t tree_steps(std::uint32_t nodes) {
  std::uint32_t steps = 0;
  for (std::uint32_t span = 1; span < nodes; span <<= 1) ++steps;
  return steps;
}

}  // namespace

ClusterInterconnect::ClusterInterconnect(ClusterSpec spec,
                                         std::uint32_t num_devices)
    : spec_(std::move(spec)), num_devices_(num_devices) {
  if (spec_.hosts == 0 || spec_.host.devices == 0) {
    throw std::invalid_argument(
        "ClusterInterconnect: cluster must have >= 1 host with >= 1 device");
  }
  if (num_devices_ != spec_.num_devices()) {
    throw std::invalid_argument(
        "ClusterInterconnect: num_devices must equal hosts x devices-per-host");
  }
}

ScatterModel ClusterInterconnect::scatter(
    const std::vector<std::vector<std::uint64_t>>& bytes,
    const std::vector<std::vector<std::uint64_t>>& rows, bool aggregate,
    std::uint64_t buffer_bytes) const {
  if (bytes.size() != num_devices_ || rows.size() != num_devices_) {
    throw std::invalid_argument(
        "ClusterInterconnect::scatter: traffic matrices must have one row per "
        "device");
  }
  if (buffer_bytes == 0) {
    throw std::invalid_argument(
        "ClusterInterconnect::scatter: buffer_bytes must be >= 1");
  }
  ScatterModel m;
  m.per_device_ms.assign(num_devices_, 0.0);
  for (std::uint32_t d = 0; d < num_devices_; ++d) {
    if (bytes[d].size() != num_devices_ || rows[d].size() != num_devices_) {
      throw std::invalid_argument(
          "ClusterInterconnect::scatter: traffic matrices must be N x N");
    }
    double intra_ms = 0.0, inter_ms = 0.0;
    for (std::uint32_t o = 0; o < num_devices_; ++o) {
      if (o == d) continue;
      const std::uint64_t b = bytes[d][o];
      const std::uint64_t msgs =
          aggregate ? (b == 0 ? 0 : (b + buffer_bytes - 1) / buffer_bytes)
                    : rows[d][o];
      if (b == 0 && msgs == 0) continue;
      const InterconnectSpec& l = link(d, o);
      const double ms =
          static_cast<double>(msgs) * l.latency_us * 1e-3 +
          static_cast<double>(b) / (l.peer_bandwidth_gbps * 1e9) * 1e3;
      TransferStats& level = same_host(d, o) ? m.intra : m.inter;
      level.bytes += b;
      level.messages += msgs;
      (same_host(d, o) ? intra_ms : inter_ms) += ms;
    }
    // Each device serializes its own incoming messages across both levels.
    m.per_device_ms[d] = intra_ms + inter_ms;
    m.intra.time_ms = std::max(m.intra.time_ms, intra_ms);
    m.inter.time_ms = std::max(m.inter.time_ms, inter_ms);
    m.total.time_ms = std::max(m.total.time_ms, m.per_device_ms[d]);
  }
  m.total.bytes = m.intra.bytes + m.inter.bytes;
  m.total.messages = m.intra.messages + m.inter.messages;
  return m;
}

TransferStats ClusterInterconnect::all_reduce(
    std::uint64_t bytes_per_device) const {
  TransferStats t;
  if (num_devices_ <= 1) return t;  // nothing to exchange
  const std::uint32_t per_host = spec_.host.devices;
  const std::uint32_t hosts = spec_.hosts;
  // Reduce tree up + broadcast tree down within every host (hosts run in
  // parallel; per_host == 1 contributes nothing).
  const std::uint32_t intra_steps = tree_steps(per_host);
  t.bytes = 2ull * hosts * (per_host - 1) * bytes_per_device;
  t.messages = 2ull * hosts * (per_host - 1);
  t.time_ms = 2.0 * intra_steps * spec_.host.intra.transfer_ms(bytes_per_device);
  // One recursive-doubling exchange among the host leaders: every host sends
  // one payload per step, ceil(log2 hosts) steps on the critical path.
  const std::uint32_t inter_steps = tree_steps(hosts);
  t.bytes += static_cast<std::uint64_t>(hosts) * inter_steps * bytes_per_device;
  t.messages += static_cast<std::uint64_t>(hosts) * inter_steps;
  t.time_ms += inter_steps * spec_.inter.transfer_ms(bytes_per_device);
  return t;
}

}  // namespace tcgpu::simt
