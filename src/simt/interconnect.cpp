#include "simt/interconnect.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgpu::simt {

TransferStats Interconnect::scatter(
    const std::vector<std::uint64_t>& per_device_bytes,
    const std::vector<std::uint64_t>& per_device_messages) const {
  if (per_device_bytes.size() != num_devices_ ||
      per_device_messages.size() != num_devices_) {
    throw std::invalid_argument("Interconnect::scatter: per-device vectors must "
                                "have one entry per device");
  }
  TransferStats t;
  for (std::uint32_t d = 0; d < num_devices_; ++d) {
    t.bytes += per_device_bytes[d];
    t.messages += per_device_messages[d];
    // Device d serializes its incoming messages; devices receive in parallel.
    const double recv_ms =
        static_cast<double>(per_device_messages[d]) * spec_.latency_us * 1e-3 +
        static_cast<double>(per_device_bytes[d]) /
            (spec_.peer_bandwidth_gbps * 1e9) * 1e3;
    t.time_ms = std::max(t.time_ms, recv_ms);
  }
  return t;
}

TransferStats Interconnect::all_reduce(std::uint64_t bytes_per_device) const {
  TransferStats t;
  if (num_devices_ <= 1) return t;  // nothing to exchange
  // Binomial reduce tree then broadcast tree: N-1 payload moves each way,
  // ceil(log2 N) latency-bound steps each way on the critical path.
  std::uint32_t steps = 0;
  for (std::uint32_t span = 1; span < num_devices_; span <<= 1) ++steps;
  t.bytes = 2ull * (num_devices_ - 1) * bytes_per_device;
  t.messages = 2ull * (num_devices_ - 1);
  t.time_ms = 2.0 * steps * spec_.transfer_ms(bytes_per_device);
  return t;
}

}  // namespace tcgpu::simt
