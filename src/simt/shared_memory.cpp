#include "simt/shared_memory.hpp"

namespace tcgpu::simt {}
