// Per-block shared memory ("programmable L1") for the simulated GPU.
//
// Kernels obtain typed views via ThreadCtx::shared_array<T>(n): allocations
// are keyed by call site, so every thread of the block asking at the same
// program point sees the same storage — the analogue of a __shared__ array.
// Addresses within the arena feed the 32-bank conflict model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tcgpu::simt {

template <class T>
class SharedView {
 public:
  SharedView() = default;
  SharedView(T* data, std::uint32_t offset, std::size_t size)
      : data_(data), offset_(offset), size_(size) {}

  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }
  /// Byte offset within the block's arena (the "shared address").
  std::uint64_t offset_of(std::size_t i) const { return offset_ + i * sizeof(T); }
  T* raw() const { return data_; }

 private:
  T* data_ = nullptr;
  std::uint32_t offset_ = 0;
  std::size_t size_ = 0;
};

class SharedArena {
 public:
  explicit SharedArena(std::uint32_t capacity_bytes) : mem_(capacity_bytes) {}

  std::uint32_t capacity() const { return static_cast<std::uint32_t>(mem_.size()); }
  std::uint32_t used() const { return used_; }

  /// Returns the allocation for `site`, creating it on first use.
  /// Throws std::length_error when the block's shared memory is exhausted
  /// (the simulated analogue of a launch failure).
  std::pair<std::byte*, std::uint32_t> get(std::uint32_t site, std::size_t bytes,
                                           std::size_t align) {
    for (const auto& [s, off, len] : allocs_) {
      if (s == site) {
        if (len < bytes) {
          throw std::length_error(
              "shared_array re-requested with a larger size at the same site");
        }
        return {mem_.data() + off, off};
      }
    }
    std::uint32_t off =
        static_cast<std::uint32_t>((used_ + align - 1) / align * align);
    if (off + bytes > mem_.size()) {
      throw std::length_error("shared memory exhausted for this block size");
    }
    allocs_.push_back({site, off, static_cast<std::uint32_t>(bytes)});
    used_ = off + static_cast<std::uint32_t>(bytes);
    return {mem_.data() + off, off};
  }

  /// Forgets all allocations (between blocks). Contents are not cleared —
  /// like real shared memory, values are undefined until written.
  void reset() {
    allocs_.clear();
    used_ = 0;
  }

 private:
  struct Alloc {
    std::uint32_t site;
    std::uint32_t offset;
    std::uint32_t bytes;
  };
  std::vector<std::byte> mem_;
  std::vector<Alloc> allocs_;
  std::uint32_t used_ = 0;
};

}  // namespace tcgpu::simt
