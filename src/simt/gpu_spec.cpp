#include "simt/gpu_spec.hpp"

#include <stdexcept>
#include <utility>

namespace tcgpu::simt {

GpuSpec GpuSpec::v100() {
  GpuSpec s;
  s.name = "Tesla V100";
  s.sm_count = 80;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 1.38;
  s.mem_bandwidth_gbps = 900.0;
  return s;
}

GpuSpec GpuSpec::rtx4090() {
  GpuSpec s;
  s.name = "RTX 4090";
  s.sm_count = 144;  // per the paper's platform description
  s.shared_mem_per_block = 100 * 1024;
  s.clock_ghz = 2.52;
  s.mem_bandwidth_gbps = 1008.0;
  return s;
}

InterconnectSpec InterconnectSpec::nvlink() {
  InterconnectSpec s;
  s.name = "nvlink";
  s.peer_bandwidth_gbps = 25.0;
  s.latency_us = 1.9;
  return s;
}

InterconnectSpec InterconnectSpec::pcie3() {
  InterconnectSpec s;
  s.name = "pcie3";
  s.peer_bandwidth_gbps = 12.0;  // achieved, not the 15.75 theoretical
  s.latency_us = 10.0;
  return s;
}

InterconnectSpec InterconnectSpec::eth10g() {
  InterconnectSpec s;
  s.name = "eth10g";
  s.peer_bandwidth_gbps = 1.1;  // achieved over TCP, not the 1.25 line rate
  s.latency_us = 30.0;
  return s;
}

InterconnectSpec InterconnectSpec::ib_edr() {
  InterconnectSpec s;
  s.name = "ib-edr";
  s.peer_bandwidth_gbps = 11.0;  // achieved, not the 12.5 line rate
  s.latency_us = 2.5;
  return s;
}

InterconnectSpec interconnect_spec_from_string(const std::string& name) {
  if (name == "nvlink") return InterconnectSpec::nvlink();
  if (name == "pcie3") return InterconnectSpec::pcie3();
  if (name == "eth10g") return InterconnectSpec::eth10g();
  if (name == "ib-edr") return InterconnectSpec::ib_edr();
  throw std::invalid_argument("unknown interconnect '" + name +
                              "' (valid: " + valid_interconnect_list() + ")");
}

std::string valid_interconnect_list() { return "nvlink, pcie3, eth10g, ib-edr"; }

ClusterSpec ClusterSpec::single_host(std::uint32_t devices, InterconnectSpec link) {
  ClusterSpec c;
  c.name = "single-host";
  c.hosts = 1;
  c.host.devices = devices;
  c.host.intra = std::move(link);
  return c;
}

ClusterSpec ClusterSpec::ethernet(std::uint32_t hosts,
                                  std::uint32_t devices_per_host) {
  ClusterSpec c;
  c.name = "eth10g";
  c.hosts = hosts;
  c.host.devices = devices_per_host;
  c.inter = InterconnectSpec::eth10g();
  return c;
}

ClusterSpec ClusterSpec::infiniband(std::uint32_t hosts,
                                    std::uint32_t devices_per_host) {
  ClusterSpec c;
  c.name = "ib-edr";
  c.hosts = hosts;
  c.host.devices = devices_per_host;
  c.inter = InterconnectSpec::ib_edr();
  return c;
}

}  // namespace tcgpu::simt
