#include "simt/gpu_spec.hpp"

namespace tcgpu::simt {

GpuSpec GpuSpec::v100() {
  GpuSpec s;
  s.name = "Tesla V100";
  s.sm_count = 80;
  s.shared_mem_per_block = 48 * 1024;
  s.clock_ghz = 1.38;
  s.mem_bandwidth_gbps = 900.0;
  return s;
}

GpuSpec GpuSpec::rtx4090() {
  GpuSpec s;
  s.name = "RTX 4090";
  s.sm_count = 144;  // per the paper's platform description
  s.shared_mem_per_block = 100 * 1024;
  s.clock_ghz = 2.52;
  s.mem_bandwidth_gbps = 1008.0;
  return s;
}

InterconnectSpec InterconnectSpec::nvlink() {
  InterconnectSpec s;
  s.name = "nvlink";
  s.peer_bandwidth_gbps = 25.0;
  s.latency_us = 1.9;
  return s;
}

InterconnectSpec InterconnectSpec::pcie3() {
  InterconnectSpec s;
  s.name = "pcie3";
  s.peer_bandwidth_gbps = 12.0;  // achieved, not the 15.75 theoretical
  s.latency_us = 10.0;
  return s;
}

}  // namespace tcgpu::simt
