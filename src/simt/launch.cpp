#include "simt/launch.hpp"

#include <algorithm>

namespace tcgpu::simt::detail {

void launch_error(const std::string& what) { throw std::runtime_error(what); }

void bounds_error(const char* op, std::size_t i, std::size_t size) {
  launch_error(std::string("device ") + op + " out of bounds: index " +
               std::to_string(i) + " size " + std::to_string(size));
}

void shared_bounds_error(const char* op, std::size_t i, std::size_t size) {
  launch_error(std::string(op) + " out of bounds: index " + std::to_string(i) +
               " size " + std::to_string(size));
}

void validate_config(const GpuSpec& spec, const LaunchConfig& cfg) {
  auto fail = [](const std::string& msg) { throw std::invalid_argument(msg); };
  if (cfg.grid == 0) fail("launch: grid must be >= 1");
  if (cfg.block == 0 || cfg.block % 32 != 0) {
    fail("launch: block must be a positive multiple of 32");
  }
  if (cfg.block > spec.max_threads_per_block) {
    fail("launch: block exceeds max_threads_per_block");
  }
  const bool subwarp = cfg.group_size >= 1 && cfg.group_size <= 32 &&
                       (32 % cfg.group_size) == 0;
  if (!subwarp && cfg.group_size != cfg.block) {
    fail("launch: group_size must be 1/2/4/8/16/32 or equal to block");
  }
  if ((spec.l1_cache_sectors & (spec.l1_cache_sectors - 1)) != 0 ||
      spec.l1_cache_sectors == 0) {
    fail("launch: l1_cache_sectors must be a power of two");
  }
}

KernelStats finalize(const GpuSpec& spec, const std::vector<double>& block_cycles,
                     KernelMetrics m, std::uint64_t warps_launched) {
  m.warps_launched = warps_launched;

  // Round-robin block placement over SMs; the critical SM bounds issue time.
  std::vector<double> sm_cycles(spec.sm_count, 0.0);
  for (std::size_t b = 0; b < block_cycles.size(); ++b) {
    sm_cycles[b % spec.sm_count] += block_cycles[b];
  }
  double issue = 0.0;
  for (double c : sm_cycles) issue = std::max(issue, c);

  // Device-wide DRAM bandwidth bound (cache misses only reach DRAM).
  const double bytes =
      static_cast<double>(m.global_dram_transactions) * spec.sector_bytes;
  const double bw = bytes / spec.bytes_per_cycle();

  const double cycles = std::max(issue, bw);
  KernelStats stats;
  stats.metrics = m;
  stats.time_ms = spec.cycles_to_ms(cycles) + spec.launch_overhead_ms();
  return stats;
}

}  // namespace tcgpu::simt::detail
