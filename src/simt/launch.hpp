// Kernel launcher for the simulated GPU.
//
// Execution model
// ---------------
// A launch runs `grid` blocks of `block` threads (multiple of 32). Work is
// expressed as *items* distributed over thread *groups* of `group_size`
// threads (1/2/4/8/16/32, or the whole block):
//
//   * group_size == block  — block-cooperative kernels (Bisson, Hu, TRUST's
//     block kernel, GroupTC chunks). Item i is processed by block i % grid;
//     a block loops over its items.
//   * group_size <= 32     — warp- or sub-warp-cooperative kernels (TriCore,
//     H-INDEX, Fox's 2^n-thread bins, Green's 32-thread intersections,
//     Polak's 1-thread edges). Groups across the whole grid stride over
//     items; groups sharing a warp advance in lockstep (so lanes of one warp
//     can be working on different items — exactly the situation whose
//     coalescing cost the paper analyzes for Fox).
//
// A kernel is a sequence of one or more *phases*, callables of signature
//     void(ThreadCtx&, State&, std::uint64_t item)
// with an implicit barrier (block-level or warp-level, per the scope above)
// between phases. Every barrier in the eight published algorithms separates
// an index-construction step from a probe step, which this structure
// expresses directly. `State` is per-thread storage living across the
// phases of one item (value-initialized per item).
//
// Metering
// --------
// All global/shared accesses go through ThreadCtx and are recorded as lane
// events; the WarpAggregator aligns them into warp instructions and derives
// the nvprof-style metrics plus a modeled cycle cost. Kernel time is
//     max(per-SM issue/memory cycles under round-robin block placement,
//         device-wide bandwidth bound)  /  clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "simt/device.hpp"
#include "simt/event.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"
#include "simt/shared_memory.hpp"
#include "simt/site.hpp"
#include "simt/warp_trace.hpp"

namespace tcgpu::simt {

struct LaunchConfig {
  std::uint32_t grid = 0;        ///< number of blocks
  std::uint32_t block = 0;       ///< threads per block, multiple of 32
  std::uint32_t group_size = 0;  ///< threads per item: 1,2,4,8,16,32 or == block
};

namespace detail {
[[noreturn]] void launch_error(const std::string& what);
// Out-of-line so the metered access templates contain no string code: the
// formatting otherwise gets materialized in every kernel lambda, on the
// hot path of a check that never fires.
[[noreturn]] void bounds_error(const char* op, std::size_t i, std::size_t size);
[[noreturn]] void shared_bounds_error(const char* op, std::size_t i,
                                      std::size_t size);
void validate_config(const GpuSpec& spec, const LaunchConfig& cfg);
KernelStats finalize(const GpuSpec& spec, const std::vector<double>& block_cycles,
                     KernelMetrics m, std::uint64_t warps_launched);
}  // namespace detail

/// The per-lane view a kernel body receives. Cheap to construct; all
/// metered memory traffic flows through it.
class ThreadCtx {
 public:
  using SrcLoc = std::source_location;

  ThreadCtx(const GpuSpec& spec, const LaunchConfig& cfg, std::uint32_t block_id,
            std::uint32_t thread_in_block, LaneTrace& trace, SharedArena& arena)
      : spec_(&spec),
        cfg_(&cfg),
        block_id_(block_id),
        tid_(thread_in_block),
        trace_(&trace),
        arena_(&arena) {}

  // --- identity -----------------------------------------------------------
  std::uint32_t block_id() const { return block_id_; }
  std::uint32_t thread_in_block() const { return tid_; }
  std::uint32_t block_dim() const { return cfg_->block; }
  std::uint32_t grid_dim() const { return cfg_->grid; }
  std::uint32_t lane() const { return tid_ & 31u; }
  std::uint32_t warp_in_block() const { return tid_ >> 5; }
  std::uint32_t group_size() const { return cfg_->group_size; }
  std::uint32_t group_lane() const { return tid_ % cfg_->group_size; }
  std::uint64_t global_thread() const {
    return static_cast<std::uint64_t>(block_id_) * cfg_->block + tid_;
  }
  std::uint64_t total_threads() const {
    return static_cast<std::uint64_t>(cfg_->grid) * cfg_->block;
  }
  const GpuSpec& spec() const { return *spec_; }
  std::uint32_t shared_capacity() const { return arena_->capacity(); }

  // --- global memory ------------------------------------------------------
  template <class T>
  T load(const DeviceBuffer<T>& b, std::size_t i, Site site = Site()) {
    bounds(b, i, "load");
    record(b.addr_of(i), AccessKind::kGlobalLoad, sizeof(T), site);
    return b.raw()[i];
  }

  template <class T>
  void store(DeviceBuffer<T>& b, std::size_t i, T v, Site site = Site()) {
    bounds(b, i, "store");
    record(b.addr_of(i), AccessKind::kGlobalStore, sizeof(T), site);
    b.raw()[i] = v;
  }

  template <class T>
  T atomic_add(DeviceBuffer<T>& b, std::size_t i, T v, Site site = Site()) {
    static_assert(std::is_integral_v<T>);
    bounds(b, i, "atomic_add");
    record(b.addr_of(i), AccessKind::kGlobalAtomic, sizeof(T), site);
    return __atomic_fetch_add(&b.raw()[i], v, __ATOMIC_RELAXED);
  }

  template <class T>
  T atomic_or(DeviceBuffer<T>& b, std::size_t i, T v, Site site = Site()) {
    static_assert(std::is_integral_v<T>);
    bounds(b, i, "atomic_or");
    record(b.addr_of(i), AccessKind::kGlobalAtomic, sizeof(T), site);
    return __atomic_fetch_or(&b.raw()[i], v, __ATOMIC_RELAXED);
  }

  template <class T>
  T atomic_cas(DeviceBuffer<T>& b, std::size_t i, T expected, T desired,
               Site site = Site()) {
    static_assert(std::is_integral_v<T>);
    bounds(b, i, "atomic_cas");
    record(b.addr_of(i), AccessKind::kGlobalAtomic, sizeof(T), site);
    __atomic_compare_exchange_n(&b.raw()[i], &expected, desired, false,
                                __ATOMIC_RELAXED, __ATOMIC_RELAXED);
    return expected;  // prior value on failure, old==expected on success
  }

  // --- shared memory ------------------------------------------------------
  /// Block-level array keyed by call site: every thread of the block asking
  /// at the same program point receives the same storage (a __shared__
  /// array). Contents persist across the items a block processes.
  /// NOTE: phases are distinct program points — a kernel whose build phase
  /// and probe phase touch the same array must use shared_array_tagged.
  template <class T>
  SharedView<T> shared_array(std::size_t n, Site site = Site()) {
    auto [ptr, off] = arena_->get(site.id(), n * sizeof(T), alignof(T));
    return SharedView<T>(reinterpret_cast<T*>(ptr), off, n);
  }

  /// Block-level array keyed by an explicit kernel-chosen tag, so multiple
  /// phases (different program points) can name the same __shared__ array.
  /// Tags live in a separate key space from call sites.
  template <class T>
  SharedView<T> shared_array_tagged(std::uint32_t tag, std::size_t n) {
    auto [ptr, off] = arena_->get(0x80000000u | tag, n * sizeof(T), alignof(T));
    return SharedView<T>(reinterpret_cast<T*>(ptr), off, n);
  }

  template <class T>
  T shared_load(const SharedView<T>& v, std::size_t i, Site site = Site()) {
    sbounds(v, i, "shared_load");
    record(v.offset_of(i), AccessKind::kSharedLoad, sizeof(T), site);
    return v.raw()[i];
  }

  template <class T>
  void shared_store(SharedView<T>& v, std::size_t i, T x, Site site = Site()) {
    sbounds(v, i, "shared_store");
    record(v.offset_of(i), AccessKind::kSharedStore, sizeof(T), site);
    v.raw()[i] = x;
  }

  template <class T>
  T shared_atomic_add(SharedView<T>& v, std::size_t i, T x, Site site = Site()) {
    static_assert(std::is_integral_v<T>);
    sbounds(v, i, "shared_atomic_add");
    record(v.offset_of(i), AccessKind::kSharedAtomic, sizeof(T), site);
    // Blocks execute on one host thread; plain RMW is exact here.
    T old = v.raw()[i];
    v.raw()[i] = old + x;
    return old;
  }

  template <class T>
  T shared_atomic_or(SharedView<T>& v, std::size_t i, T x, Site site = Site()) {
    static_assert(std::is_integral_v<T>);
    sbounds(v, i, "shared_atomic_or");
    record(v.offset_of(i), AccessKind::kSharedAtomic, sizeof(T), site);
    T old = v.raw()[i];
    v.raw()[i] = old | x;
    return old;
  }

  // --- compute ------------------------------------------------------------
  /// Charges n pure-ALU warp-lane steps (hash mixing, reductions, ...).
  void compute(std::uint64_t n = 1) { trace_->compute_steps += n; }

 private:
  void record(std::uint64_t addr, AccessKind kind, std::uint8_t size,
              Site site) {
    trace_->push(addr, site.id(), kind, size);
  }

  template <class T>
  void bounds(const DeviceBuffer<T>& b, std::size_t i, const char* op) const {
    if (i >= b.size()) [[unlikely]] {
      detail::bounds_error(op, i, b.size());
    }
  }
  template <class T>
  void sbounds(const SharedView<T>& v, std::size_t i, const char* op) const {
    if (i >= v.size()) [[unlikely]] {
      detail::shared_bounds_error(op, i, v.size());
    }
  }

  const GpuSpec* spec_;
  const LaunchConfig* cfg_;
  std::uint32_t block_id_;
  std::uint32_t tid_;
  LaneTrace* trace_;
  SharedArena* arena_;
};

/// Launches a phased item kernel. See the file comment for the model.
/// Throws std::runtime_error on kernel faults (out-of-bounds access,
/// shared-memory exhaustion) and std::invalid_argument on bad configs.
template <class State, class... Phases>
KernelStats launch_items(const GpuSpec& spec, LaunchConfig cfg, std::uint64_t num_items,
                         Phases&&... phases) {
  static_assert(sizeof...(Phases) >= 1, "a kernel needs at least one phase");
  detail::validate_config(spec, cfg);

  const std::uint32_t warps_per_block = cfg.block / 32;
  const std::uint64_t warps_launched =
      static_cast<std::uint64_t>(cfg.grid) * warps_per_block;
  std::vector<double> block_cycles(cfg.grid, 0.0);
  KernelMetrics total;
  if (num_items == 0) {
    return detail::finalize(spec, block_cycles, total, warps_launched);
  }

  std::string error;
  std::atomic<bool> failed{false};

#ifdef _OPENMP
#pragma omp parallel
#endif
  {
    KernelMetrics local;
    WarpAggregator agg(spec);
    SharedArena arena(spec.shared_mem_per_block);
    std::vector<State> st(cfg.block);

#ifdef _OPENMP
#pragma omp for schedule(dynamic, 4)
#endif
    for (std::int64_t bi = 0; bi < static_cast<std::int64_t>(cfg.grid); ++bi) {
      const auto b = static_cast<std::uint32_t>(bi);
      if (failed) continue;
      arena.reset();
      agg.reset_cache();  // fresh SM cache context per block, deterministic
      double cyc = 0.0;
      try {
        if (cfg.group_size == cfg.block) {
          // Block-cooperative: block b handles items b, b+grid, ...
          for (std::uint64_t item = b; item < num_items; item += cfg.grid) {
            for (auto& s : st) s = State{};
            auto run_phase = [&](auto&& phase) {
              for (std::uint32_t w = 0; w < warps_per_block; ++w) {
                for (std::uint32_t l = 0; l < 32; ++l) {
                  const std::uint32_t tid = w * 32 + l;
                  ThreadCtx ctx(spec, cfg, b, tid, agg.lane(l), arena);
                  phase(ctx, st[tid], item);
                }
                cyc += agg.flush(local);
              }
            };
            (run_phase(phases), ...);
          }
        } else {
          // Warp/sub-warp groups stride over items grid-wide.
          const std::uint32_t gpw = 32 / cfg.group_size;  // groups per warp
          const std::uint64_t total_groups =
              static_cast<std::uint64_t>(cfg.grid) * warps_per_block * gpw;
          for (std::uint32_t w = 0; w < warps_per_block; ++w) {
            const std::uint64_t first_group =
                (static_cast<std::uint64_t>(b) * warps_per_block + w) * gpw;
            for (std::uint64_t round = 0;; ++round) {
              const std::uint64_t base_item = round * total_groups + first_group;
              if (base_item >= num_items) break;
              // Lane l works on item base_item + l/group_size; lanes past the
              // last item idle this round. Only the active lanes' state is
              // reset (and only they run) — tail lanes never touch st.
              const std::uint64_t items_left = num_items - base_item;
              const std::uint32_t active_lanes =
                  items_left * cfg.group_size >= 32
                      ? 32u
                      : static_cast<std::uint32_t>(items_left * cfg.group_size);
              for (std::uint32_t l = 0; l < active_lanes; ++l) {
                st[w * 32 + l] = State{};
              }
              auto run_phase = [&](auto&& phase) {
                for (std::uint32_t l = 0; l < active_lanes; ++l) {
                  const std::uint64_t item = base_item + l / cfg.group_size;
                  const std::uint32_t tid = w * 32 + l;
                  ThreadCtx ctx(spec, cfg, b, tid, agg.lane(l), arena);
                  phase(ctx, st[tid], item);
                }
                cyc += agg.flush(local);
              };
              (run_phase(phases), ...);
            }
          }
        }
      } catch (const std::exception& e) {
#ifdef _OPENMP
#pragma omp critical(tcgpu_launch_error)
#endif
        {
          if (!failed.exchange(true)) error = e.what();
        }
      }
      block_cycles[b] = cyc;
    }

#ifdef _OPENMP
#pragma omp critical(tcgpu_launch_merge)
#endif
    { total += local; }
  }

  if (failed) throw std::runtime_error("kernel fault: " + error);
  return detail::finalize(spec, block_cycles, total, warps_launched);
}

struct NoState {};

/// Convenience wrapper: one phase, one thread per item.
/// Body signature: void(ThreadCtx&, std::uint64_t item).
template <class Body>
KernelStats launch_threads(const GpuSpec& spec, std::uint32_t grid, std::uint32_t block,
                           std::uint64_t num_items, Body&& body) {
  LaunchConfig cfg{grid, block, 1};
  return launch_items<NoState>(
      spec, cfg, num_items,
      [&body](ThreadCtx& ctx, NoState&, std::uint64_t item) { body(ctx, item); });
}

}  // namespace tcgpu::simt
