// The wedge-delta kernel: the metered core of incremental maintenance.
//
// A batch of effective edge ops becomes one WedgeJob per op — the two
// endpoint neighborhoods, staged (pre-op, in sequential batch order) into
// one flat device array. One simulated thread per job merges its pair of
// sorted lists (composing intersect::merge_collect_probed with metered
// probes, the same primitive the BFS-LA kernel composes) and writes every
// common neighbor out: for an insert (u,v), each surviving w is a new
// triangle {u,v,w}; for a delete, a destroyed one. The host folds the
// per-job counts into the global triangle delta and the matches into
// per-edge support deltas — no full kernel rerun, work proportional to the
// touched neighborhoods only.
//
// Determinism: one lane per job with a fixed item order, so KernelStats are
// bit-identical across OMP host-thread counts (the simulator contract
// tests/stream/test_churn_equivalence.cpp pins, mirroring
// tests/tc/test_determinism.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"

namespace tcgpu::stream {

/// One staged wedge intersection: [a_lo, a_hi) and [b_lo, b_hi) index the
/// flat staged-neighborhood array handed to intersect_wedges.
struct WedgeJob {
  std::uint32_t a_lo = 0;
  std::uint32_t a_hi = 0;
  std::uint32_t b_lo = 0;
  std::uint32_t b_hi = 0;
};

struct DeltaOutcome {
  simt::KernelStats stats;
  std::vector<std::uint32_t> counts;     ///< per job: |A ∩ B|
  std::vector<std::uint32_t> match_off;  ///< size jobs+1, prefix into matches
  std::vector<graph::VertexId> matches;  ///< common neighbors, ascending per job
};

/// Uploads the staged lists and job ranges, runs one thread per job, reads
/// back counts and matches. `block` is threads per block (multiple of 32).
DeltaOutcome intersect_wedges(const simt::GpuSpec& spec,
                              std::span<const graph::VertexId> lists,
                              std::span<const WedgeJob> jobs,
                              std::uint32_t block = 256);

}  // namespace tcgpu::stream
