// stream::DynamicGraph — exact incremental triangle maintenance under
// batched edge churn.
//
// Seeded from a prepared oriented DAG (u < v for every edge — the
// framework's relabeled output), it applies batches of inserts/deletes and
// keeps three quantities exact at every version, without ever re-running a
// full counting kernel:
//
//   * the global triangle count — per effective op (u,v), the delta is
//     ±|N(u) ∩ N(v)| over the neighborhoods at that point of the batch;
//     the intersections run on the simulated GPU (delta_kernel.hpp),
//     metered through the tc/intersect/ policy machinery;
//   * per-edge triangle support — each surviving common neighbor w credits
//     (±1) the wedge edges (u,w) and (v,w); an inserted edge's own support
//     is its match count; folded in batch order so insert→delete→reinsert
//     sequences within one batch stay exact;
//   * GraphStats — degree/out-degree histograms are maintained per op, so
//     every snapshot carries the same stats a fresh prepare would compute
//     (serve::Selector re-scores mutated graphs from them).
//
// Every commit publishes a new immutable Snapshot sharing untouched
// copy-on-write segments with its predecessor; readers holding older
// snapshots are never invalidated. All host-side state transitions are
// sequential — the only parallel work is the deterministic delta kernel —
// so commits are reproducible bit-for-bit across OMP thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "simt/gpu_spec.hpp"
#include "simt/metrics.hpp"
#include "stream/snapshot.hpp"

namespace tcgpu::stream {

/// One requested mutation. Endpoints are in the served (relabeled) id
/// space; order does not matter (edges are undirected).
struct EdgeOp {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  bool insert = true;
};

struct CommitResult {
  std::uint64_t version = 0;     ///< version after the commit
  bool changed = false;          ///< false when every op was a no-op
  std::int64_t delta_triangles = 0;
  std::uint64_t triangles = 0;   ///< new global count
  std::uint32_t inserted = 0;    ///< effective inserts applied
  std::uint32_t removed = 0;     ///< effective deletes applied
  std::uint32_t skipped = 0;     ///< self-loops, duplicates, absent deletes
  std::uint32_t wedge_jobs = 0;  ///< delta-kernel intersections run
  bool recounted = false;        ///< CommitMode::kRecount took the full path
  simt::KernelStats stats;       ///< delta kernel's metered stats
};

/// How commit() re-establishes the triangle count and per-edge support.
/// kDelta pays work proportional to the batch (staged wedge intersections);
/// kRecount pays work proportional to the whole post-commit graph (a fresh
/// support recount, the seed constructor's path). Both produce bit-identical
/// snapshots; serve::Selector::mutation_cost models which side is cheaper
/// for a given (graph, batch) and the serving layer dispatches accordingly.
enum class CommitMode { kDelta, kRecount };

class DynamicGraph {
 public:
  struct Config {
    simt::GpuSpec spec = simt::GpuSpec::v100();
    /// Past snapshots retained (besides the head) for snapshot_at().
    std::size_t history = 4;
    std::uint32_t block = 256;  ///< delta-kernel block size
  };

  /// Seeds version 0 from an oriented DAG (u < v, rows sorted): symmetrizes
  /// the adjacency, computes per-edge support (tc::cpu_edge_support) and the
  /// triangle count, and assembles GraphStats identical to a fresh prepare.
  explicit DynamicGraph(const graph::Csr& dag) : DynamicGraph(dag, Config{}) {}
  DynamicGraph(const graph::Csr& dag, Config cfg);

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  /// Applies one batch in order and publishes a new snapshot (unless no op
  /// was effective, in which case the version does not move). Thread-safe;
  /// commits serialize. The one-argument form always takes the delta path.
  CommitResult commit(std::span<const EdgeOp> ops);
  CommitResult commit(std::span<const EdgeOp> ops, CommitMode mode);

  /// The current version's snapshot (immutable; hold it as long as needed).
  std::shared_ptr<const Snapshot> snapshot() const;
  /// A retained past version, or nullptr once it aged out of the history
  /// window (Config::history) — the snapshot lifetime rule callers own.
  std::shared_ptr<const Snapshot> snapshot_at(std::uint64_t version) const;

  std::uint64_t version() const;
  std::uint64_t triangles() const;
  const Config& config() const { return cfg_; }

 private:
  graph::GraphStats make_stats() const;

  Config cfg_;
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> head_;
  std::deque<std::shared_ptr<const Snapshot>> history_;  ///< newest at back

  // Incremental stats state (guarded by mu_): per-vertex degrees plus
  // histograms, so per-commit stats assembly is O(max_degree), not a sort.
  std::vector<graph::EdgeIndex> degree_;
  std::vector<graph::EdgeIndex> out_degree_;
  std::vector<std::uint64_t> deg_hist_;
  std::vector<std::uint64_t> out_hist_;
  std::uint64_t sum_out_sq_ = 0;
  std::uint64_t num_edges_ = 0;
};

}  // namespace tcgpu::stream
