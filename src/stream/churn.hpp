// Deterministic edge-churn workload generator for the streaming layer.
//
// Batches are sampled against a live Snapshot: deletes pick an existing
// edge (uniform vertex, then uniform neighbor), inserts pick uniform vertex
// pairs biased away from existing edges by a few retries. Seeded by
// SplitMix64, so a (seed, snapshot-sequence) pair reproduces the identical
// op stream on any platform — what the equivalence and determinism tests
// rely on, and what makes bench/stream_churn comparable across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/rng.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/snapshot.hpp"

namespace tcgpu::stream {

struct ChurnConfig {
  double insert_fraction = 0.5;  ///< probability an op is an insert
};

class ChurnGenerator {
 public:
  explicit ChurnGenerator(std::uint64_t seed, ChurnConfig cfg = {})
      : rng_(seed), cfg_(cfg) {}

  /// Samples `n` ops against `snap`'s topology. Ops within one batch can
  /// collide (duplicate inserts, deletes of an edge another op removes) —
  /// DynamicGraph::commit counts those as skipped, which is intentional
  /// coverage of the normalization path.
  std::vector<EdgeOp> next_batch(const Snapshot& snap, std::size_t n);

 private:
  gen::SplitMix64 rng_;
  ChurnConfig cfg_;
};

}  // namespace tcgpu::stream
