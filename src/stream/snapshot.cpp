#include "stream/snapshot.hpp"

#include <algorithm>

namespace tcgpu::stream {

namespace {

/// First index of row whose neighbor exceeds v — the start of v's oriented
/// out-suffix (ids are ranks, so "greater id" is the DAG direction).
std::size_t suffix_begin(std::span<const graph::VertexId> row, graph::VertexId v) {
  return static_cast<std::size_t>(
      std::upper_bound(row.begin(), row.end(), v) - row.begin());
}

}  // namespace

std::span<const graph::VertexId> Snapshot::neighbors(graph::VertexId v) const {
  const std::size_t s = v >> kSegmentShift;
  if (s >= segments_.size()) return {};
  const Segment& seg = *segments_[s];
  const std::uint32_t local = v & (kSegmentSize - 1);
  return {seg.adj.data() + seg.off[local], seg.adj.data() + seg.off[local + 1]};
}

std::span<const std::uint32_t> Snapshot::support_row(graph::VertexId v) const {
  const std::size_t s = v >> kSegmentShift;
  if (s >= segments_.size()) return {};
  const Segment& seg = *segments_[s];
  const std::uint32_t local = v & (kSegmentSize - 1);
  return {seg.sup.data() + seg.off[local], seg.sup.data() + seg.off[local + 1]};
}

graph::EdgeIndex Snapshot::degree(graph::VertexId v) const {
  return static_cast<graph::EdgeIndex>(neighbors(v).size());
}

graph::EdgeIndex Snapshot::out_degree(graph::VertexId v) const {
  const auto row = neighbors(v);
  return static_cast<graph::EdgeIndex>(row.size() - suffix_begin(row, v));
}

bool Snapshot::has_edge(graph::VertexId u, graph::VertexId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::uint32_t Snapshot::support(graph::VertexId u, graph::VertexId v) const {
  // Canonicalize to the DAG direction: the slot lives with the min endpoint.
  const graph::VertexId a = std::min(u, v), b = std::max(u, v);
  const auto row = neighbors(a);
  const auto it = std::lower_bound(row.begin(), row.end(), b);
  if (it == row.end() || *it != b) return 0;
  return support_row(a)[static_cast<std::size_t>(it - row.begin())];
}

graph::Csr Snapshot::materialize_dag() const {
  std::vector<graph::EdgeIndex> row_ptr(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    row_ptr[v + 1] = row_ptr[v] + out_degree(v);
  }
  std::vector<graph::VertexId> col;
  col.reserve(row_ptr.back());
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    const auto row = neighbors(v);
    col.insert(col.end(), row.begin() + suffix_begin(row, v), row.end());
  }
  return graph::Csr(std::move(row_ptr), std::move(col));
}

std::vector<std::uint32_t> Snapshot::materialize_support() const {
  std::vector<std::uint32_t> out;
  out.reserve(num_edges_);
  for (graph::VertexId v = 0; v < num_vertices_; ++v) {
    const auto row = neighbors(v);
    const auto sup = support_row(v);
    for (std::size_t k = suffix_begin(row, v); k < row.size(); ++k) {
      out.push_back(sup[k]);
    }
  }
  return out;
}

}  // namespace tcgpu::stream
