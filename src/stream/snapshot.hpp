// stream::Snapshot — one immutable, versioned view of a mutating graph.
//
// A DynamicGraph commit never edits a published snapshot: the adjacency is
// split into fixed-width vertex segments held by shared_ptr, and a commit
// rebuilds only the segments a batch touched while sharing the rest with the
// previous version (copy-on-write). An in-flight query therefore reads a
// consistent graph for as long as it holds the snapshot, no matter how many
// batches commit underneath it.
//
// Layout: per vertex the full sorted *undirected* neighbor list. Because the
// framework's prepared DAGs are relabeled so that u < v for every directed
// edge (rank == id), the oriented out-list of v is exactly the suffix of its
// undirected list where neighbors exceed v — one array serves both the
// wedge-delta kernel (which needs full neighborhoods) and materialize_dag()
// (which the static kernels consume). Per-edge triangle support is stored
// alongside, in the slot of the edge's min endpoint (its DAG direction), so
// k-truss-style maintenance rides the same copy-on-write unit.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/stats.hpp"
#include "graph/types.hpp"

namespace tcgpu::stream {

class Snapshot {
 public:
  /// Copy-on-write granularity: vertices per segment. Small enough that a
  /// batch touching k vertices copies O(k) segments, large enough that the
  /// shared_ptr overhead stays negligible against the adjacency itself.
  static constexpr std::uint32_t kSegmentShift = 8;
  static constexpr std::uint32_t kSegmentSize = 1u << kSegmentShift;

  /// One copy-on-write unit: the adjacency rows of kSegmentSize consecutive
  /// vertex ids (rows of ids at or past num_vertices() are empty).
  struct Segment {
    std::vector<graph::EdgeIndex> off;  ///< kSegmentSize + 1 row offsets
    std::vector<graph::VertexId> adj;   ///< sorted undirected neighbors
    /// Aligned with adj; meaningful only in DAG direction (adj[k] > vertex):
    /// triangles containing that edge. In-edge slots are zero.
    std::vector<std::uint32_t> sup;
  };

  std::uint64_t version() const { return version_; }
  graph::VertexId num_vertices() const { return num_vertices_; }
  /// Undirected edge count == oriented DAG edge count.
  std::uint64_t num_edges() const { return num_edges_; }
  std::uint64_t triangles() const { return triangles_; }
  const graph::GraphStats& stats() const { return stats_; }

  /// Sorted undirected neighbor list of v.
  std::span<const graph::VertexId> neighbors(graph::VertexId v) const;
  /// Support slots aligned with neighbors(v) (see Segment::sup).
  std::span<const std::uint32_t> support_row(graph::VertexId v) const;
  graph::EdgeIndex degree(graph::VertexId v) const;
  /// Oriented out-degree: neighbors of v greater than v.
  graph::EdgeIndex out_degree(graph::VertexId v) const;
  bool has_edge(graph::VertexId u, graph::VertexId v) const;
  /// Triangle support of undirected edge {u, v}; 0 when the edge is absent.
  std::uint32_t support(graph::VertexId u, graph::VertexId v) const;

  /// The oriented DAG (u < v, rows sorted) the static kernels consume —
  /// the suffix of every undirected row. This is what the serve layer hands
  /// to the Engine to answer queries at this version.
  graph::Csr materialize_dag() const;
  /// Per-edge support in materialize_dag()'s CSR edge order (the layout
  /// tc::count_edge_support produces).
  std::vector<std::uint32_t> materialize_support() const;

  std::size_t num_segments() const { return segments_.size(); }
  /// Exposed so tests can assert copy-on-write sharing across versions.
  std::shared_ptr<const Segment> segment(std::size_t i) const {
    return segments_[i];
  }

 private:
  friend class DynamicGraph;

  std::uint64_t version_ = 0;
  graph::VertexId num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t triangles_ = 0;
  graph::GraphStats stats_;
  std::vector<std::shared_ptr<const Segment>> segments_;
};

}  // namespace tcgpu::stream
