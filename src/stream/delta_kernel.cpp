#include "stream/delta_kernel.hpp"

#include <algorithm>

#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "tc/common.hpp"
#include "tc/intersect/merge.hpp"

namespace tcgpu::stream {

DeltaOutcome intersect_wedges(const simt::GpuSpec& spec,
                              std::span<const graph::VertexId> lists,
                              std::span<const WedgeJob> jobs,
                              std::uint32_t block) {
  DeltaOutcome out;
  const std::size_t num_jobs = jobs.size();
  out.match_off.assign(num_jobs + 1, 0);
  if (num_jobs == 0) return out;

  // Capacity prefix: job j can match at most min(|A|, |B|) elements; each
  // thread writes into its own disjoint slice, so no output atomics.
  std::vector<std::uint32_t> cap_off(num_jobs + 1, 0);
  for (std::size_t j = 0; j < num_jobs; ++j) {
    const std::uint32_t cap =
        std::min(jobs[j].a_hi - jobs[j].a_lo, jobs[j].b_hi - jobs[j].b_lo);
    cap_off[j + 1] = cap_off[j] + cap;
  }
  const std::uint32_t total_cap = cap_off.back();

  simt::Device dev;
  auto d_lists = dev.alloc<graph::VertexId>(lists.size(), "stream.lists");
  auto d_ranges = dev.alloc<std::uint32_t>(num_jobs * 4, "stream.ranges");
  auto d_out_off = dev.alloc<std::uint32_t>(num_jobs, "stream.out_off");
  auto d_matches = dev.alloc<graph::VertexId>(total_cap == 0 ? 1 : total_cap,
                                              "stream.matches");
  auto d_counts = dev.alloc<std::uint32_t>(num_jobs, "stream.counts");

  std::copy(lists.begin(), lists.end(), d_lists.host_span().begin());
  {
    auto ranges = d_ranges.host_span();
    auto off = d_out_off.host_span();
    for (std::size_t j = 0; j < num_jobs; ++j) {
      ranges[j * 4 + 0] = jobs[j].a_lo;
      ranges[j * 4 + 1] = jobs[j].a_hi;
      ranges[j * 4 + 2] = jobs[j].b_lo;
      ranges[j * 4 + 3] = jobs[j].b_hi;
      off[j] = cap_off[j];
    }
  }

  const std::uint32_t grid = tc::pick_grid(spec, num_jobs, 1, block);
  out.stats = simt::launch_threads(
      spec, grid, block, num_jobs, [&](simt::ThreadCtx& ctx, std::uint64_t j) {
        const std::uint32_t a_lo = ctx.load(d_ranges, j * 4 + 0, TCGPU_SITE());
        const std::uint32_t a_hi = ctx.load(d_ranges, j * 4 + 1, TCGPU_SITE());
        const std::uint32_t b_lo = ctx.load(d_ranges, j * 4 + 2, TCGPU_SITE());
        const std::uint32_t b_hi = ctx.load(d_ranges, j * 4 + 3, TCGPU_SITE());
        const std::uint32_t base = ctx.load(d_out_off, j, TCGPU_SITE());
        std::uint32_t found = 0;
        tc::intersect::merge_collect_probed(
            a_hi - a_lo, b_hi - b_lo,
            [&](std::uint32_t i) {
              return ctx.load(d_lists, a_lo + i, TCGPU_SITE());
            },
            [&](std::uint32_t i) {
              return ctx.load(d_lists, b_lo + i, TCGPU_SITE());
            },
            [&](graph::VertexId w, std::uint32_t, std::uint32_t) {
              ctx.store(d_matches, base + found, w, TCGPU_SITE());
              ++found;
            });
        ctx.store(d_counts, j, found, TCGPU_SITE());
      });

  // Read back and compact the capacity-spaced matches into a tight prefix.
  const auto counts = d_counts.host_span();
  const auto matches = d_matches.host_span();
  out.counts.assign(counts.begin(), counts.end());
  for (std::size_t j = 0; j < num_jobs; ++j) {
    out.match_off[j + 1] = out.match_off[j] + counts[j];
  }
  out.matches.reserve(out.match_off.back());
  for (std::size_t j = 0; j < num_jobs; ++j) {
    for (std::uint32_t k = 0; k < counts[j]; ++k) {
      out.matches.push_back(matches[cap_off[j] + k]);
    }
  }
  return out;
}

}  // namespace tcgpu::stream
