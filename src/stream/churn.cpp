#include "stream/churn.hpp"

#include <algorithm>

namespace tcgpu::stream {

std::vector<EdgeOp> ChurnGenerator::next_batch(const Snapshot& snap,
                                               std::size_t n) {
  std::vector<EdgeOp> ops;
  ops.reserve(n);
  const graph::VertexId V = snap.num_vertices();
  if (V < 2) return ops;

  for (std::size_t i = 0; i < n; ++i) {
    const bool want_insert =
        snap.num_edges() == 0 || rng_.chance(cfg_.insert_fraction);
    if (!want_insert) {
      // Delete: a uniform vertex with neighbors, then a uniform neighbor.
      // Bounded retries keep the generator total even on sparse tails.
      bool emitted = false;
      for (int attempt = 0; attempt < 32 && !emitted; ++attempt) {
        const auto u = static_cast<graph::VertexId>(rng_.uniform(V));
        const auto row = snap.neighbors(u);
        if (row.empty()) continue;
        ops.push_back({u, row[rng_.uniform(row.size())], /*insert=*/false});
        emitted = true;
      }
      if (emitted) continue;
      // All sampled vertices isolated: fall through to an insert so the
      // batch keeps its requested size.
    }
    EdgeOp op;
    op.insert = true;
    for (int attempt = 0; attempt < 8; ++attempt) {
      op.u = static_cast<graph::VertexId>(rng_.uniform(V));
      op.v = static_cast<graph::VertexId>(rng_.uniform(V));
      if (op.u != op.v && !snap.has_edge(op.u, op.v)) break;
    }
    if (op.u == op.v) op.v = (op.u + 1) % V;
    ops.push_back(op);
  }
  return ops;
}

}  // namespace tcgpu::stream
