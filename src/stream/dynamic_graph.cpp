#include "stream/dynamic_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "graph/prepare.hpp"
#include "stream/delta_kernel.hpp"
#include "tc/support.hpp"

namespace tcgpu::stream {

namespace {

/// Sanity cap on op vertex ids: a typo'd id must not allocate gigabytes of
/// per-vertex state. Ops past it are counted as skipped.
constexpr graph::VertexId kMaxVertices = 1u << 27;

std::uint64_t edge_key(graph::VertexId a, graph::VertexId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Accumulated support change for one surviving edge, folded in batch
/// order. `fresh` marks an edge (re)inserted this batch: its support
/// rebuilds from zero plus the insert job's match count, so contributions
/// from before a delete→reinsert are correctly discarded.
struct SupAcc {
  bool fresh = false;
  std::int64_t delta = 0;
};

graph::EdgeIndex hist_max(const std::vector<std::uint64_t>& h) {
  for (std::size_t d = h.size(); d-- > 0;) {
    if (h[d] != 0) return static_cast<graph::EdgeIndex>(d);
  }
  return 0;
}

/// Value at `idx` of the (conceptual) ascending sorted degree array —
/// matches graph::compute_stats' percentile definitions exactly.
graph::EdgeIndex hist_quantile(const std::vector<std::uint64_t>& h,
                               std::size_t idx) {
  std::uint64_t cum = 0;
  for (std::size_t d = 0; d < h.size(); ++d) {
    cum += h[d];
    if (cum > idx) return static_cast<graph::EdgeIndex>(d);
  }
  return hist_max(h);
}

void hist_move(std::vector<std::uint64_t>& h, graph::EdgeIndex from,
               graph::EdgeIndex to) {
  if (to >= h.size()) h.resize(to + 1, 0);
  --h[from];
  ++h[to];
}

std::vector<std::uint64_t> hist_of(const std::vector<graph::EdgeIndex>& deg) {
  std::vector<std::uint64_t> h(1, 0);
  for (const graph::EdgeIndex d : deg) {
    if (d >= h.size()) h.resize(d + 1, 0);
    ++h[d];
  }
  return h;
}

}  // namespace

DynamicGraph::DynamicGraph(const graph::Csr& dag, Config cfg)
    : cfg_(std::move(cfg)) {
  const graph::VertexId V = dag.num_vertices();
  // symmetrize_dag validates the id-orientation contract and hands back each
  // row as in-neighbors (< v) then out-neighbors (> v), ascending — exactly
  // the segment layout, so the seed is a row copy instead of a transpose.
  graph::Csr undirected;
  try {
    undirected = graph::symmetrize_dag(dag);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument(
        "DynamicGraph: DAG must be id-oriented (u < v) with sorted rows");
  }

  const auto sup = tc::cpu_edge_support(dag);
  std::uint64_t sup_sum = 0;
  for (const std::uint32_t s : sup) sup_sum += s;

  auto snap = std::make_shared<Snapshot>();
  snap->version_ = 0;
  snap->num_vertices_ = V;
  snap->num_edges_ = dag.num_edges();
  snap->triangles_ = sup_sum / 3;
  const std::size_t nseg =
      (static_cast<std::size_t>(V) + Snapshot::kSegmentSize - 1) >>
      Snapshot::kSegmentShift;
  snap->segments_.reserve(nseg);
  for (std::size_t s = 0; s < nseg; ++s) {
    auto seg = std::make_shared<Snapshot::Segment>();
    seg->off.assign(Snapshot::kSegmentSize + 1, 0);
    for (std::uint32_t local = 0; local < Snapshot::kSegmentSize; ++local) {
      const std::uint64_t id = (s << Snapshot::kSegmentShift) + local;
      if (id < V) {
        const auto v = static_cast<graph::VertexId>(id);
        const auto row = undirected.neighbors(v);
        std::size_t out_k = 0;  // support lives in the DAG-direction slots
        for (const graph::VertexId w : row) {
          seg->adj.push_back(w);
          seg->sup.push_back(w > v ? sup[dag.row_ptr()[v] + out_k++] : 0);
        }
      }
      seg->off[local + 1] = static_cast<graph::EdgeIndex>(seg->adj.size());
    }
    snap->segments_.push_back(std::move(seg));
  }

  degree_.assign(V, 0);
  out_degree_.assign(V, 0);
  for (graph::VertexId v = 0; v < V; ++v) {
    out_degree_[v] = dag.degree(v);
    degree_[v] = undirected.degree(v);
    sum_out_sq_ += static_cast<std::uint64_t>(out_degree_[v]) * out_degree_[v];
  }
  deg_hist_ = hist_of(degree_);
  out_hist_ = hist_of(out_degree_);
  num_edges_ = dag.num_edges();

  snap->stats_ = make_stats();
  head_ = std::move(snap);
}

graph::GraphStats DynamicGraph::make_stats() const {
  graph::GraphStats s;
  const auto V = static_cast<graph::VertexId>(degree_.size());
  s.num_vertices = V;
  s.num_undirected_edges = num_edges_;
  if (V == 0) return s;
  // Field definitions mirror graph::compute_stats / fold_dag_stats exactly,
  // so a snapshot's stats hash (serve's graph identity) agrees with what a
  // fresh prepare of the same graph would produce.
  const auto p99_idx =
      static_cast<std::size_t>(static_cast<double>(V - 1) * 0.99);
  s.max_degree = hist_max(deg_hist_);
  s.median_degree = hist_quantile(deg_hist_, V / 2);
  s.p99_degree = hist_quantile(deg_hist_, p99_idx);
  s.avg_degree =
      static_cast<double>(2 * num_edges_) / static_cast<double>(V);
  s.max_out_degree = hist_max(out_hist_);
  s.p99_out_degree = hist_quantile(out_hist_, p99_idx);
  s.avg_out_degree =
      static_cast<double>(num_edges_) / static_cast<double>(V);
  s.sum_out_degree_sq = sum_out_sq_;
  s.out_degree_skew =
      s.avg_out_degree > 0.0
          ? static_cast<double>(s.max_out_degree) / s.avg_out_degree
          : 0.0;
  return s;
}

CommitResult DynamicGraph::commit(std::span<const EdgeOp> ops) {
  return commit(ops, CommitMode::kDelta);
}

CommitResult DynamicGraph::commit(std::span<const EdgeOp> ops, CommitMode mode) {
  std::lock_guard lk(mu_);
  const std::shared_ptr<const Snapshot> base = head_;
  CommitResult res;
  res.version = base->version();
  res.triangles = base->triangles();

  const graph::VertexId base_V = base->num_vertices();
  graph::VertexId cur_V = base_V;

  // ---- pass 1: normalize ops and stage wedge jobs ------------------------
  // The overlay holds the evolving undirected rows of touched vertices;
  // every job captures its endpoints' neighborhoods at its point of the
  // batch, so the kernel's deltas compose exactly like sequential ops.
  std::unordered_map<graph::VertexId, std::vector<graph::VertexId>> overlay;
  auto base_row = [&](graph::VertexId x) -> std::span<const graph::VertexId> {
    return x < base_V ? base->neighbors(x)
                      : std::span<const graph::VertexId>{};
  };
  auto cur_row = [&](graph::VertexId x) -> std::span<const graph::VertexId> {
    const auto it = overlay.find(x);
    if (it != overlay.end()) return {it->second.data(), it->second.size()};
    return base_row(x);
  };
  auto mut_row = [&](graph::VertexId x) -> std::vector<graph::VertexId>& {
    auto it = overlay.find(x);
    if (it == overlay.end()) {
      const auto r = base_row(x);
      it = overlay.emplace(x, std::vector<graph::VertexId>(r.begin(), r.end()))
               .first;
    }
    return it->second;
  };

  struct StagedJob {
    graph::VertexId a, b;
    bool insert;
  };
  std::vector<graph::VertexId> staged;
  std::vector<StagedJob> jobs;
  std::vector<WedgeJob> ranges;

  for (const EdgeOp& op : ops) {
    const graph::VertexId a = std::min(op.u, op.v);
    const graph::VertexId b = std::max(op.u, op.v);
    if (a == b || b >= kMaxVertices) {
      ++res.skipped;
      continue;
    }
    const auto ra = cur_row(a);
    const bool present = std::binary_search(ra.begin(), ra.end(), b);
    if (op.insert == present) {  // duplicate insert or absent delete
      ++res.skipped;
      continue;
    }
    if (op.insert && b >= cur_V) {
      const graph::VertexId grown = b + 1 - cur_V;
      degree_.resize(b + 1, 0);
      out_degree_.resize(b + 1, 0);
      deg_hist_[0] += grown;
      out_hist_[0] += grown;
      cur_V = b + 1;
    }

    if (mode == CommitMode::kDelta) {
      // Stage the pre-op neighborhoods. Neither contains a common element
      // through the edge itself (w == a or w == b is impossible), so the
      // intersection is exactly the wedge set the op opens or closes.
      const auto rb = cur_row(b);
      WedgeJob w;
      w.a_lo = static_cast<std::uint32_t>(staged.size());
      staged.insert(staged.end(), ra.begin(), ra.end());
      w.a_hi = static_cast<std::uint32_t>(staged.size());
      w.b_lo = w.a_hi;
      staged.insert(staged.end(), rb.begin(), rb.end());
      w.b_hi = static_cast<std::uint32_t>(staged.size());
      ranges.push_back(w);
      jobs.push_back({a, b, op.insert});
    }

    auto& va = mut_row(a);
    auto& vb = mut_row(b);
    const graph::EdgeIndex oa = out_degree_[a];
    if (op.insert) {
      va.insert(std::lower_bound(va.begin(), va.end(), b), b);
      vb.insert(std::lower_bound(vb.begin(), vb.end(), a), a);
      hist_move(deg_hist_, degree_[a], degree_[a] + 1);
      hist_move(deg_hist_, degree_[b], degree_[b] + 1);
      ++degree_[a];
      ++degree_[b];
      hist_move(out_hist_, oa, oa + 1);  // the out-edge lives with min id
      sum_out_sq_ += 2ull * oa + 1;
      ++out_degree_[a];
      ++num_edges_;
      ++res.inserted;
    } else {
      va.erase(std::lower_bound(va.begin(), va.end(), b));
      vb.erase(std::lower_bound(vb.begin(), vb.end(), a));
      hist_move(deg_hist_, degree_[a], degree_[a] - 1);
      hist_move(deg_hist_, degree_[b], degree_[b] - 1);
      --degree_[a];
      --degree_[b];
      hist_move(out_hist_, oa, oa - 1);
      sum_out_sq_ -= 2ull * oa - 1;
      --out_degree_[a];
      --num_edges_;
      ++res.removed;
    }
  }

  res.wedge_jobs = static_cast<std::uint32_t>(jobs.size());
  if (res.inserted + res.removed == 0) {
    return res;  // nothing effective: version does not move
  }

  if (mode == CommitMode::kRecount) {
    // ---- recount path: rebuild everything from the post-commit rows ------
    // Materialize the new DAG (the u < v slots of every row) and recount
    // per-edge support from scratch — the seed constructor's path, so the
    // published snapshot is bit-identical to one the delta path would have
    // produced, at whole-graph instead of per-batch cost.
    std::vector<graph::EdgeIndex> rp(static_cast<std::size_t>(cur_V) + 1, 0);
    std::vector<graph::VertexId> col;
    for (graph::VertexId x = 0; x < cur_V; ++x) {
      const auto row = cur_row(x);
      col.insert(col.end(),
                 std::upper_bound(row.begin(), row.end(), x), row.end());
      rp[x + 1] = static_cast<graph::EdgeIndex>(col.size());
    }
    const graph::Csr dag(std::move(rp), std::move(col));
    const auto sup = tc::cpu_edge_support(dag);
    std::uint64_t sup_sum = 0;
    for (const std::uint32_t s : sup) sup_sum += s;

    auto snap = std::make_shared<Snapshot>();
    snap->version_ = base->version() + 1;
    snap->num_vertices_ = cur_V;
    snap->num_edges_ = num_edges_;
    snap->triangles_ = sup_sum / 3;
    snap->stats_ = make_stats();
    const std::size_t nseg =
        (static_cast<std::size_t>(cur_V) + Snapshot::kSegmentSize - 1) >>
        Snapshot::kSegmentShift;
    snap->segments_.reserve(nseg);
    for (std::size_t s = 0; s < nseg; ++s) {
      auto seg = std::make_shared<Snapshot::Segment>();
      seg->off.assign(Snapshot::kSegmentSize + 1, 0);
      for (std::uint32_t local = 0; local < Snapshot::kSegmentSize; ++local) {
        const std::uint64_t id = (s << Snapshot::kSegmentShift) + local;
        if (id < cur_V) {
          const auto x = static_cast<graph::VertexId>(id);
          std::size_t out_k = 0;
          for (const graph::VertexId y : cur_row(x)) {
            seg->adj.push_back(y);
            seg->sup.push_back(y > x ? sup[dag.row_ptr()[x] + out_k++] : 0);
          }
        }
        seg->off[local + 1] = static_cast<graph::EdgeIndex>(seg->adj.size());
      }
      snap->segments_.push_back(std::move(seg));
    }

    res.delta_triangles = static_cast<std::int64_t>(snap->triangles_) -
                          static_cast<std::int64_t>(base->triangles());
    history_.push_back(head_);
    while (history_.size() > cfg_.history) history_.pop_front();
    head_ = snap;
    res.changed = true;
    res.recounted = true;
    res.version = snap->version_;
    res.triangles = snap->triangles_;
    return res;
  }

  // ---- pass 2: the metered delta kernel ----------------------------------
  const DeltaOutcome delta =
      intersect_wedges(cfg_.spec, staged, ranges, cfg_.block);
  res.stats = delta.stats;

  // ---- pass 3: fold counts and per-edge support, in batch order ----------
  std::unordered_map<std::uint64_t, SupAcc> acc;
  std::int64_t dtri = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const StagedJob& job = jobs[j];
    const std::int64_t sign = job.insert ? 1 : -1;
    dtri += sign * delta.counts[j];
    if (job.insert) {
      acc[edge_key(job.a, job.b)] =
          SupAcc{true, static_cast<std::int64_t>(delta.counts[j])};
    } else {
      acc.erase(edge_key(job.a, job.b));  // a dead edge keeps no support
    }
    for (std::uint32_t k = delta.match_off[j]; k < delta.match_off[j + 1]; ++k) {
      const graph::VertexId w = delta.matches[k];
      for (const graph::VertexId x : {job.a, job.b}) {
        acc[edge_key(std::min(x, w), std::max(x, w))].delta += sign;
      }
    }
  }
  res.delta_triangles = dtri;

  // ---- pass 4: rebuild only the touched copy-on-write segments -----------
  // A segment is touched by an adjacency change (overlay), by a support
  // change on an untouched row (the wedge edge's min endpoint), or by
  // vertex growth; everything else shares the previous version's segment.
  std::unordered_set<graph::VertexId> sup_touched;
  for (const auto& [key, unused] : acc) {
    sup_touched.insert(static_cast<graph::VertexId>(key >> 32));
  }
  std::unordered_set<std::size_t> touched_segs;
  for (const auto& [v, unused] : overlay) {
    touched_segs.insert(v >> Snapshot::kSegmentShift);
  }
  for (const graph::VertexId v : sup_touched) {
    touched_segs.insert(v >> Snapshot::kSegmentShift);
  }
  const std::size_t old_nseg = base->num_segments();
  const std::size_t new_nseg =
      (static_cast<std::size_t>(cur_V) + Snapshot::kSegmentSize - 1) >>
      Snapshot::kSegmentShift;
  for (std::size_t s = old_nseg; s < new_nseg; ++s) touched_segs.insert(s);

  auto snap = std::make_shared<Snapshot>();
  snap->version_ = base->version() + 1;
  snap->num_vertices_ = cur_V;
  snap->num_edges_ = num_edges_;
  snap->triangles_ =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(base->triangles()) + dtri);
  snap->stats_ = make_stats();
  snap->segments_.resize(new_nseg);
  for (std::size_t s = 0; s < new_nseg; ++s) {
    if (s < old_nseg) snap->segments_[s] = base->segment(s);
  }
  for (const std::size_t s : touched_segs) {
    auto seg = std::make_shared<Snapshot::Segment>();
    seg->off.assign(Snapshot::kSegmentSize + 1, 0);
    for (std::uint32_t local = 0; local < Snapshot::kSegmentSize; ++local) {
      const std::uint64_t id = (s << Snapshot::kSegmentShift) + local;
      if (id < cur_V) {
        const auto x = static_cast<graph::VertexId>(id);
        const auto ov = overlay.find(x);
        if (ov == overlay.end() && sup_touched.count(x) == 0) {
          // Innocent neighbor in a touched segment: verbatim row copy.
          const auto row = base_row(x);
          const auto srow =
              x < base_V ? base->support_row(x) : std::span<const std::uint32_t>{};
          seg->adj.insert(seg->adj.end(), row.begin(), row.end());
          seg->sup.insert(seg->sup.end(), srow.begin(), srow.end());
        } else {
          const auto row = ov != overlay.end()
                               ? std::span<const graph::VertexId>(
                                     ov->second.data(), ov->second.size())
                               : base_row(x);
          for (const graph::VertexId y : row) {
            seg->adj.push_back(y);
            std::uint32_t val = 0;
            if (y > x) {  // support lives in the DAG-direction slot only
              const auto it = acc.find(edge_key(x, y));
              std::int64_t v64 = it != acc.end() && it->second.fresh
                                     ? 0
                                     : static_cast<std::int64_t>(base->support(x, y));
              if (it != acc.end()) v64 += it->second.delta;
              val = static_cast<std::uint32_t>(v64);
            }
            seg->sup.push_back(val);
          }
        }
      }
      seg->off[local + 1] = static_cast<graph::EdgeIndex>(seg->adj.size());
    }
    snap->segments_[s] = std::move(seg);
  }

  history_.push_back(head_);
  while (history_.size() > cfg_.history) history_.pop_front();
  head_ = snap;
  res.changed = true;
  res.version = snap->version_;
  res.triangles = snap->triangles_;
  return res;
}

std::shared_ptr<const Snapshot> DynamicGraph::snapshot() const {
  std::lock_guard lk(mu_);
  return head_;
}

std::shared_ptr<const Snapshot> DynamicGraph::snapshot_at(
    std::uint64_t version) const {
  std::lock_guard lk(mu_);
  if (head_->version() == version) return head_;
  for (const auto& s : history_) {
    if (s->version() == version) return s;
  }
  return nullptr;
}

std::uint64_t DynamicGraph::version() const {
  std::lock_guard lk(mu_);
  return head_->version();
}

std::uint64_t DynamicGraph::triangles() const {
  std::lock_guard lk(mu_);
  return head_->triangles();
}

}  // namespace tcgpu::stream
