#include <algorithm>
#include "apps/ktruss.hpp"

#include "graph/builder.hpp"
#include "simt/device.hpp"
#include "tc/support.hpp"

namespace tcgpu::apps {

KTrussResult ktruss_decompose(const graph::Csr& dag, const simt::GpuSpec& spec,
                              std::uint32_t chunk) {
  KTrussResult result;
  result.trussness.assign(dag.num_edges(), 2);

  // Live edge set, carrying each edge's id in the input DAG.
  struct LiveEdge {
    graph::VertexId u, v;
    std::uint32_t original;
  };
  std::vector<LiveEdge> live;
  live.reserve(dag.num_edges());
  {
    std::uint32_t e = 0;
    for (graph::VertexId u = 0; u < dag.num_vertices(); ++u) {
      for (const graph::VertexId v : dag.neighbors(u)) live.push_back({u, v, e++});
    }
  }

  for (std::uint32_t k = 3; !live.empty(); ++k) {
    bool removed_any = true;
    while (removed_any && !live.empty()) {
      // Rebuild the surviving DAG and recompute support on the device.
      std::vector<graph::Edge> edges;
      edges.reserve(live.size());
      for (const auto& le : live) edges.emplace_back(le.u, le.v);
      const graph::Csr sub = graph::build_directed_csr(dag.num_vertices(), edges);

      simt::Device dev;
      const tc::DeviceGraph dg = tc::DeviceGraph::upload(dev, sub);
      auto support = dev.alloc<std::uint32_t>(dg.num_edges, "ktruss_support");
      const auto sr = tc::count_edge_support(dev, spec, dg, support, chunk);
      result.gpu_stats += sr.stats;
      result.peel_rounds++;

      // The rebuilt CSR reorders edges; map (u,v)->support back onto `live`
      // by walking both in the same (u, v) sorted order.
      std::vector<std::uint32_t> order(live.size());
      for (std::uint32_t i = 0; i < live.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
        if (live[a].u != live[b].u) return live[a].u < live[b].u;
        return live[a].v < live[b].v;
      });

      std::vector<LiveEdge> next;
      next.reserve(live.size());
      removed_any = false;
      for (std::uint32_t pos = 0; pos < order.size(); ++pos) {
        const LiveEdge& le = live[order[pos]];
        if (support.host_data()[pos] + 2 < k) {
          result.trussness[le.original] = k - 1;
          removed_any = true;
        } else {
          next.push_back(le);
        }
      }
      live = std::move(next);
    }
    if (!live.empty()) {
      result.max_k = k;
      for (const auto& le : live) result.trussness[le.original] = k;
    }
  }
  return result;
}

std::vector<std::uint32_t> ktruss_edges(const KTrussResult& r, std::uint32_t k) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t e = 0; e < r.trussness.size(); ++e) {
    if (r.trussness[e] >= k) out.push_back(e);
  }
  return out;
}

}  // namespace tcgpu::apps
