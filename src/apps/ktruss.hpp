// k-truss decomposition — the application the paper's introduction uses to
// motivate triangle counting ("finding many applications like k-truss
// analysis"). The k-truss of a graph is the maximal subgraph in which every
// edge closes at least k-2 triangles; an edge's *trussness* is the largest
// k whose k-truss contains it.
//
// The decomposition peels iteratively: for k = 3, 4, ... recompute per-edge
// triangle support on the GPU (tc::count_edge_support, GroupTC-style
// kernel) and drop edges with support < k-2 until stable. The host rebuilds
// the shrinking DAG between rounds; all triangle counting runs on the
// simulated device.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "simt/metrics.hpp"
#include "simt/gpu_spec.hpp"

namespace tcgpu::apps {

struct KTrussResult {
  /// Largest k whose k-truss is non-empty (>= 2; 2 means triangle-free).
  std::uint32_t max_k = 2;
  /// Per input DAG edge (CSR order), the edge's trussness (>= 2).
  std::vector<std::uint32_t> trussness;
  /// Support-kernel launches performed across all peel rounds.
  std::uint64_t peel_rounds = 0;
  /// Accumulated GPU stats over every support kernel.
  simt::KernelStats gpu_stats;
};

/// Decomposes an oriented DAG (u < v per edge; see graph::orient).
KTrussResult ktruss_decompose(const graph::Csr& dag, const simt::GpuSpec& spec,
                              std::uint32_t chunk = 256);

/// Edges of the k-truss of `dag` (ids into the DAG's CSR edge order).
std::vector<std::uint32_t> ktruss_edges(const KTrussResult& r, std::uint32_t k);

}  // namespace tcgpu::apps
