#include "dist/runner.hpp"

#include <algorithm>

#include "framework/registry.hpp"

namespace tcgpu::dist {

/// One pooled multi-device image: the partitioning plus each shard uploaded
/// to its own device. Marks record the post-upload allocation state so
/// per-run scratch continues each shard's address layout — on N == 1 that
/// reproduces the single-device engine's address stream exactly.
struct MultiDeviceRunner::ShardSet {
  std::mutex m;
  bool ready = false;
  framework::Engine::GraphHandle keepalive;
  Partitioning parts;
  std::vector<std::unique_ptr<simt::Device>> devices;
  std::vector<tc::DeviceGraph> graphs;
  std::vector<simt::Device::Mark> marks;
};

MultiRunConfig MultiRunConfig::for_cluster(const simt::ClusterSpec& spec,
                                           PartitionStrategy strategy) {
  if (spec.hosts == 0 || spec.host.devices == 0) {
    throw std::invalid_argument(
        "MultiRunConfig::for_cluster: cluster must have >= 1 host with >= 1 "
        "device");
  }
  MultiRunConfig cfg;
  cfg.num_devices = spec.num_devices();
  cfg.strategy = strategy;
  cfg.interconnect = spec.host.intra;
  cfg.hosts = spec.hosts;
  cfg.inter = spec.inter;
  return cfg;
}

MultiDeviceRunner::MultiDeviceRunner(framework::Engine& engine, MultiRunConfig cfg)
    : engine_(engine), cfg_(cfg) {
  if (cfg_.num_devices == 0) {
    throw std::invalid_argument("MultiDeviceRunner: num_devices must be >= 1");
  }
  if (cfg_.hosts == 0 || cfg_.num_devices % cfg_.hosts != 0) {
    throw std::invalid_argument(
        "MultiDeviceRunner: num_devices must be a positive multiple of hosts");
  }
}

std::shared_ptr<MultiDeviceRunner::ShardSet> MultiDeviceRunner::acquire_shards(
    const framework::Engine::GraphHandle& graph) {
  std::shared_ptr<ShardSet> set;
  {
    std::lock_guard lk(pool_mu_);
    auto& slot = pool_[graph.get()];
    if (!slot) slot = std::make_shared<ShardSet>();
    set = slot;
  }
  std::lock_guard lk(set->m);
  if (!set->ready) {
    set->keepalive = graph;
    const Partitioner p(cfg_.strategy, cfg_.num_devices,
                        engine_.config().seed, cfg_.hosts);
    set->parts = p.partition(graph->dag);
    for (const Shard& s : set->parts.shards) {
      auto dev = std::make_unique<simt::Device>();
      set->graphs.push_back(tc::DeviceGraph::upload_shard(
          *dev, s.csr, s.edge_u, s.edge_v, s.anchors, s.use_anchor_list));
      set->marks.push_back(dev->mark());
      set->devices.push_back(std::move(dev));
    }
    set->ready = true;
  }
  return set;
}

double MultiDeviceRunner::baseline_ms(const tc::TriangleCounter& algo,
                                      const framework::Engine::GraphHandle& graph) {
  const auto key = std::make_pair(
      static_cast<const framework::PreparedGraph*>(graph.get()), algo.name());
  {
    std::lock_guard lk(baseline_mu_);
    const auto it = baselines_.find(key);
    if (it != baselines_.end()) return it->second;
  }
  const double ms = engine_.run(algo, graph).result.total.time_ms;
  std::lock_guard lk(baseline_mu_);
  return baselines_.emplace(key, ms).first->second;
}

MultiRunResult MultiDeviceRunner::run(const tc::TriangleCounter& algo,
                                      const framework::Engine::GraphHandle& graph) {
  const auto set = acquire_shards(graph);
  const simt::GpuSpec& spec = engine_.config().spec;
  const std::uint32_t n = cfg_.num_devices;

  MultiRunResult out;
  out.algorithm = algo.name();
  out.dataset = graph->name;
  out.num_devices = n;
  out.hosts = cfg_.hosts;
  out.strategy = cfg_.strategy;
  out.partition = set->parts.report;

  // ---- per-shard kernels (devices run in parallel; wall time is the max) ---
  std::vector<std::uint64_t> ghost_bytes(n, 0), ghost_messages(n, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    const Shard& shard = set->parts.shards[d];
    simt::Device scratch(set->marks[d].next_base);
    const framework::RunOutcome run = framework::run_on_device(
        algo, *graph, set->graphs[d], scratch, spec);

    DeviceRun dr;
    dr.device = d;
    dr.triangles = run.result.triangles;
    dr.owned_edges = shard.edge_u.size();
    dr.anchor_vertices =
        shard.use_anchor_list ? shard.anchors.size() : graph->dag.num_vertices();
    dr.stats = run.result.total;
    out.triangles += dr.triangles;
    out.combined += dr.stats;
    out.device_ms = std::max(out.device_ms, dr.stats.time_ms);
    ghost_bytes[d] = shard.recv_bytes();
    ghost_messages[d] = shard.recv_messages();
    out.devices.push_back(std::move(dr));
  }

  // ---- modeled communication ----------------------------------------------
  if (cfg_.hosts <= 1) {
    // Single host: the flat pre-cluster model, kept on its original code
    // path so every number stays bit-identical to the legacy runner.
    const simt::Interconnect net(cfg_.interconnect, n);
    out.ghost_exchange = net.scatter(ghost_bytes, ghost_messages);
    out.count_reduce = net.all_reduce(sizeof(std::uint64_t));
    out.comm_ms = out.ghost_exchange.time_ms + out.count_reduce.time_ms;
    out.total_ms = out.device_ms + out.comm_ms;
    out.flat_sync_ms = out.total_ms;
    out.flat_overlap_ms = out.total_ms;
    out.agg_sync_ms = out.total_ms;
    out.agg_overlap_ms = out.total_ms;
  } else {
    // Two-level cluster: price the partitioner's per-owner traffic matrix on
    // the link each pair actually crosses, under both message disciplines.
    std::vector<std::vector<std::uint64_t>> bytes(n), rows(n);
    for (std::uint32_t d = 0; d < n; ++d) {
      bytes[d] = set->parts.shards[d].recv_bytes_from;
      rows[d] = set->parts.shards[d].recv_rows_from;
    }
    simt::ClusterSpec cs;
    cs.hosts = cfg_.hosts;
    cs.host.devices = n / cfg_.hosts;
    cs.host.intra = cfg_.interconnect;
    cs.inter = cfg_.inter;
    const simt::ClusterInterconnect net(cs, n);
    const simt::ScatterModel flat =
        net.scatter(bytes, rows, /*aggregate=*/false, cfg_.flush_buffer_bytes);
    const simt::ScatterModel agg =
        net.scatter(bytes, rows, /*aggregate=*/true, cfg_.flush_buffer_bytes);
    out.count_reduce = net.all_reduce(sizeof(std::uint64_t));

    // Overlapped wall time: every shard races its kernel against its own
    // incoming scatter (owned-anchor work needs no ghosts, ghost-dependent
    // intersections schedule last), then the counts reduce.
    const auto overlapped_ms = [&](const simt::ScatterModel& m) {
      double shards_done = 0.0;
      for (std::uint32_t d = 0; d < n; ++d) {
        shards_done = std::max(
            shards_done, std::max(m.per_device_ms[d], out.devices[d].stats.time_ms));
      }
      return shards_done + out.count_reduce.time_ms;
    };
    out.flat_sync_ms =
        flat.total.time_ms + out.device_ms + out.count_reduce.time_ms;
    out.flat_overlap_ms = overlapped_ms(flat);
    out.agg_sync_ms =
        agg.total.time_ms + out.device_ms + out.count_reduce.time_ms;
    out.agg_overlap_ms = overlapped_ms(agg);

    const simt::ScatterModel& chosen = cfg_.aggregate ? agg : flat;
    out.ghost_exchange = chosen.total;
    out.intra_exchange = chosen.intra;
    out.inter_exchange = chosen.inter;
    for (std::uint32_t d = 0; d < n; ++d) {
      out.devices[d].recv_ms = chosen.per_device_ms[d];
    }
    out.comm_ms = out.ghost_exchange.time_ms + out.count_reduce.time_ms;
    out.total_ms = cfg_.aggregate
                       ? (cfg_.overlap ? out.agg_overlap_ms : out.agg_sync_ms)
                       : (cfg_.overlap ? out.flat_overlap_ms : out.flat_sync_ms);
  }

  // ---- imbalance + speedup -------------------------------------------------
  double sum_ms = 0.0;
  for (const DeviceRun& dr : out.devices) sum_ms += dr.stats.time_ms;
  if (sum_ms > 0.0) out.load_imbalance = out.device_ms * n / sum_ms;
  if (cfg_.measure_baseline) {
    out.single_device_ms = baseline_ms(algo, graph);
    if (out.total_ms > 0.0) out.speedup = out.single_device_ms / out.total_ms;
  }

  out.valid = out.triangles == graph->reference_triangles;
  if (!out.valid) {
    std::lock_guard lk(baseline_mu_);
    all_valid_ = false;
  }
  return out;
}

MultiRunResult MultiDeviceRunner::run(const std::string& algorithm,
                                      const framework::Engine::GraphHandle& graph) {
  return run(*framework::make_algorithm(algorithm), graph);
}

bool MultiDeviceRunner::all_valid() const {
  std::lock_guard lk(baseline_mu_);
  return all_valid_;
}

}  // namespace tcgpu::dist
