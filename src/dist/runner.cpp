#include "dist/runner.hpp"

#include <algorithm>

#include "framework/registry.hpp"

namespace tcgpu::dist {

/// One pooled multi-device image: the partitioning plus each shard uploaded
/// to its own device. Marks record the post-upload allocation state so
/// per-run scratch continues each shard's address layout — on N == 1 that
/// reproduces the single-device engine's address stream exactly.
struct MultiDeviceRunner::ShardSet {
  std::mutex m;
  bool ready = false;
  framework::Engine::GraphHandle keepalive;
  Partitioning parts;
  std::vector<std::unique_ptr<simt::Device>> devices;
  std::vector<tc::DeviceGraph> graphs;
  std::vector<simt::Device::Mark> marks;
};

MultiDeviceRunner::MultiDeviceRunner(framework::Engine& engine, MultiRunConfig cfg)
    : engine_(engine), cfg_(cfg) {
  if (cfg_.num_devices == 0) {
    throw std::invalid_argument("MultiDeviceRunner: num_devices must be >= 1");
  }
}

std::shared_ptr<MultiDeviceRunner::ShardSet> MultiDeviceRunner::acquire_shards(
    const framework::Engine::GraphHandle& graph) {
  std::shared_ptr<ShardSet> set;
  {
    std::lock_guard lk(pool_mu_);
    auto& slot = pool_[graph.get()];
    if (!slot) slot = std::make_shared<ShardSet>();
    set = slot;
  }
  std::lock_guard lk(set->m);
  if (!set->ready) {
    set->keepalive = graph;
    const Partitioner p(cfg_.strategy, cfg_.num_devices,
                        engine_.config().seed);
    set->parts = p.partition(graph->dag);
    for (const Shard& s : set->parts.shards) {
      auto dev = std::make_unique<simt::Device>();
      set->graphs.push_back(tc::DeviceGraph::upload_shard(
          *dev, s.csr, s.edge_u, s.edge_v, s.anchors, s.use_anchor_list));
      set->marks.push_back(dev->mark());
      set->devices.push_back(std::move(dev));
    }
    set->ready = true;
  }
  return set;
}

double MultiDeviceRunner::baseline_ms(const tc::TriangleCounter& algo,
                                      const framework::Engine::GraphHandle& graph) {
  const auto key = std::make_pair(
      static_cast<const framework::PreparedGraph*>(graph.get()), algo.name());
  {
    std::lock_guard lk(baseline_mu_);
    const auto it = baselines_.find(key);
    if (it != baselines_.end()) return it->second;
  }
  const double ms = engine_.run(algo, graph).result.total.time_ms;
  std::lock_guard lk(baseline_mu_);
  return baselines_.emplace(key, ms).first->second;
}

MultiRunResult MultiDeviceRunner::run(const tc::TriangleCounter& algo,
                                      const framework::Engine::GraphHandle& graph) {
  const auto set = acquire_shards(graph);
  const simt::GpuSpec& spec = engine_.config().spec;
  const std::uint32_t n = cfg_.num_devices;

  MultiRunResult out;
  out.algorithm = algo.name();
  out.dataset = graph->name;
  out.num_devices = n;
  out.strategy = cfg_.strategy;
  out.partition = set->parts.report;

  // ---- per-shard kernels (devices run in parallel; wall time is the max) ---
  std::vector<std::uint64_t> ghost_bytes(n, 0), ghost_messages(n, 0);
  for (std::uint32_t d = 0; d < n; ++d) {
    const Shard& shard = set->parts.shards[d];
    simt::Device scratch(set->marks[d].next_base);
    const framework::RunOutcome run = framework::run_on_device(
        algo, *graph, set->graphs[d], scratch, spec);

    DeviceRun dr;
    dr.device = d;
    dr.triangles = run.result.triangles;
    dr.owned_edges = shard.edge_u.size();
    dr.anchor_vertices =
        shard.use_anchor_list ? shard.anchors.size() : graph->dag.num_vertices();
    dr.stats = run.result.total;
    out.triangles += dr.triangles;
    out.combined += dr.stats;
    out.device_ms = std::max(out.device_ms, dr.stats.time_ms);
    ghost_bytes[d] = shard.recv_bytes();
    ghost_messages[d] = shard.recv_messages();
    out.devices.push_back(std::move(dr));
  }

  // ---- modeled communication ----------------------------------------------
  const simt::Interconnect net(cfg_.interconnect, n);
  out.ghost_exchange = net.scatter(ghost_bytes, ghost_messages);
  out.count_reduce = net.all_reduce(sizeof(std::uint64_t));
  out.comm_ms = out.ghost_exchange.time_ms + out.count_reduce.time_ms;
  out.total_ms = out.device_ms + out.comm_ms;

  // ---- imbalance + speedup -------------------------------------------------
  double sum_ms = 0.0;
  for (const DeviceRun& dr : out.devices) sum_ms += dr.stats.time_ms;
  if (sum_ms > 0.0) out.load_imbalance = out.device_ms * n / sum_ms;
  if (cfg_.measure_baseline) {
    out.single_device_ms = baseline_ms(algo, graph);
    if (out.total_ms > 0.0) out.speedup = out.single_device_ms / out.total_ms;
  }

  out.valid = out.triangles == graph->reference_triangles;
  if (!out.valid) {
    std::lock_guard lk(baseline_mu_);
    all_valid_ = false;
  }
  return out;
}

MultiRunResult MultiDeviceRunner::run(const std::string& algorithm,
                                      const framework::Engine::GraphHandle& graph) {
  return run(*framework::make_algorithm(algorithm), graph);
}

bool MultiDeviceRunner::all_valid() const {
  std::lock_guard lk(baseline_mu_);
  return all_valid_;
}

}  // namespace tcgpu::dist
