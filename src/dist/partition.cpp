#include "dist/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "gen/rng.hpp"

namespace tcgpu::dist {
namespace {

/// Per-ghost-row transfer cost: the entries plus an 8-byte (vertex id,
/// length) header the receiver needs to splice the row into its CSR.
constexpr std::uint64_t kRowHeaderBytes = 8;

std::uint32_t hash_owner(std::uint64_t seed, std::uint32_t u, std::uint32_t mod) {
  return static_cast<std::uint32_t>(gen::SplitMix64(seed + u).next() % mod);
}

/// Splits [0, V) into `parts` contiguous blocks balanced by the weight
/// prefix (size V+1, monotone). Returns the block boundaries (size parts+1).
std::vector<std::uint32_t> balanced_cuts(const std::vector<std::uint64_t>& prefix,
                                         std::uint32_t parts) {
  const auto num_vertices = static_cast<std::uint32_t>(prefix.size() - 1);
  const std::uint64_t total = prefix.back();
  std::vector<std::uint32_t> cuts(parts + 1, num_vertices);
  cuts[0] = 0;
  for (std::uint32_t k = 1; k < parts; ++k) {
    const std::uint64_t target = total * k / parts;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    const auto pos = static_cast<std::uint32_t>(it - prefix.begin());
    cuts[k] = std::max(cuts[k - 1], std::min(pos, num_vertices));
  }
  return cuts;
}

std::uint32_t block_of(const std::vector<std::uint32_t>& cuts, std::uint32_t u) {
  const auto it = std::upper_bound(cuts.begin() + 1, cuts.end(), u);
  return static_cast<std::uint32_t>(it - cuts.begin() - 1);
}

}  // namespace

std::string to_string(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kRange: return "range";
    case PartitionStrategy::kHash: return "hash";
    case PartitionStrategy::k2D: return "2d";
    case PartitionStrategy::kHostAware: return "host";
  }
  throw std::invalid_argument("unknown PartitionStrategy value");
}

PartitionStrategy partition_strategy_from_string(const std::string& name) {
  if (name == "range") return PartitionStrategy::kRange;
  if (name == "hash") return PartitionStrategy::kHash;
  if (name == "2d") return PartitionStrategy::k2D;
  if (name == "host") return PartitionStrategy::kHostAware;
  throw std::invalid_argument("unknown partition strategy '" + name +
                              "' (expected range|hash|2d|host)");
}

std::vector<PartitionStrategy> all_partition_strategies() {
  return {PartitionStrategy::kRange, PartitionStrategy::kHash,
          PartitionStrategy::k2D, PartitionStrategy::kHostAware};
}

std::uint64_t Shard::recv_bytes() const {
  return std::accumulate(recv_bytes_from.begin(), recv_bytes_from.end(),
                         std::uint64_t{0});
}

std::uint64_t Shard::recv_messages() const {
  return std::accumulate(recv_messages_from.begin(), recv_messages_from.end(),
                         std::uint64_t{0});
}

Partitioner::Partitioner(PartitionStrategy strategy, std::uint32_t num_devices,
                         std::uint64_t seed, std::uint32_t hosts)
    : strategy_(strategy), num_devices_(num_devices), seed_(seed), hosts_(hosts) {
  if (num_devices == 0) {
    throw std::invalid_argument("Partitioner: num_devices must be >= 1");
  }
  if (hosts == 0 || num_devices % hosts != 0) {
    throw std::invalid_argument(
        "Partitioner: num_devices must be a positive multiple of hosts");
  }
  if (strategy == PartitionStrategy::k2D) {
    // Squarest factorization rows * cols == N with rows <= cols.
    for (std::uint32_t r = 1; r * r <= num_devices; ++r) {
      if (num_devices % r == 0) grid_rows_ = r;
    }
  }
  grid_cols_ = num_devices / grid_rows_;
}

Partitioning Partitioner::partition(const graph::Csr& dag) const {
  const std::uint32_t num_vertices = dag.num_vertices();
  const std::uint64_t num_edges = dag.num_edges();
  const std::uint32_t n = num_devices_;

  Partitioning out;
  out.report.strategy = strategy_;
  out.report.num_devices = n;
  out.report.total_edges = num_edges;
  out.report.owned_edges.assign(n, 0);
  out.report.shard_entries.assign(n, 0);
  out.shards.resize(n);
  for (std::uint32_t d = 0; d < n; ++d) {
    out.shards[d].device = d;
    out.shards[d].recv_bytes_from.assign(n, 0);
    out.shards[d].recv_messages_from.assign(n, 0);
    out.shards[d].recv_rows_from.assign(n, 0);
  }

  if (n == 1) {
    // Identity shard: same CSR, edge list in upload()'s CSR order, no anchor
    // list — DeviceGraph::upload_shard reproduces upload() bit for bit.
    Shard& s = out.shards[0];
    s.csr = dag;
    s.edge_u.reserve(num_edges);
    s.edge_v.reserve(num_edges);
    for (std::uint32_t u = 0; u < num_vertices; ++u) {
      for (const std::uint32_t v : dag.neighbors(u)) {
        s.edge_u.push_back(u);
        s.edge_v.push_back(v);
      }
    }
    out.report.owned_edges[0] = num_edges;
    out.report.shard_entries[0] = num_edges;
    return out;
  }

  // ---- ownership maps ------------------------------------------------------
  // Out-degree prefix drives the range strategy and the 2d row blocks.
  std::vector<std::uint64_t> deg_prefix(num_vertices + 1, 0);
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    deg_prefix[u + 1] = deg_prefix[u] + dag.degree(u);
  }

  std::vector<std::uint32_t> range_cuts, row_cuts, col_cuts, host_cuts;
  if (strategy_ == PartitionStrategy::kRange) {
    range_cuts = balanced_cuts(deg_prefix, n);
  } else if (strategy_ == PartitionStrategy::kHostAware) {
    host_cuts = balanced_cuts(deg_prefix, hosts_);
  } else if (strategy_ == PartitionStrategy::k2D) {
    row_cuts = balanced_cuts(deg_prefix, grid_rows_);
    // Column blocks balance the *destination* side: weight each vertex by
    // its in-degree so every column of devices sees a similar edge volume.
    std::vector<std::uint64_t> indeg_prefix(num_vertices + 1, 0);
    {
      std::vector<std::uint32_t> indeg(num_vertices, 0);
      for (const std::uint32_t v : dag.col()) ++indeg[v];
      for (std::uint32_t v = 0; v < num_vertices; ++v) {
        indeg_prefix[v + 1] = indeg_prefix[v] + indeg[v];
      }
    }
    col_cuts = balanced_cuts(indeg_prefix, grid_cols_);
  }

  // Home device of a vertex (owns its anchor work and its adjacency row).
  const std::uint32_t per_host = n / hosts_;
  auto vertex_owner = [&](std::uint32_t u) -> std::uint32_t {
    switch (strategy_) {
      case PartitionStrategy::kRange: return block_of(range_cuts, u);
      case PartitionStrategy::kHash: return hash_owner(seed_, u, n);
      case PartitionStrategy::k2D:
        return block_of(row_cuts, u) * grid_cols_ +
               hash_owner(seed_, u, grid_cols_);
      case PartitionStrategy::kHostAware:
        // Host by degree-balanced range (contiguous, so neighbors — and
        // their ghost rows — cluster on one host), device within the host
        // by hash (balance where the link is cheap).
        return block_of(host_cuts, u) * per_host +
               (per_host == 1 ? 0 : hash_owner(seed_, u, per_host));
    }
    return 0;
  };
  // Owner of anchor edge (u, v).
  auto edge_owner = [&](std::uint32_t u, std::uint32_t v) -> std::uint32_t {
    if (strategy_ == PartitionStrategy::k2D) {
      return block_of(row_cuts, u) * grid_cols_ + block_of(col_cuts, v);
    }
    return vertex_owner(u);
  };

  std::vector<std::uint32_t> vowner(num_vertices);
  for (std::uint32_t u = 0; u < num_vertices; ++u) vowner[u] = vertex_owner(u);

  // ---- assign work, mark the rows each device must hold --------------------
  std::vector<std::vector<char>> needs(n, std::vector<char>(num_vertices, 0));
  for (std::uint32_t u = 0; u < num_vertices; ++u) {
    const std::uint32_t a = vowner[u];
    out.shards[a].anchors.push_back(u);
    needs[a][u] = 1;
    for (const std::uint32_t v : dag.neighbors(u)) {
      needs[a][v] = 1;  // vertex-anchored probe of adj(v)
      const std::uint32_t d = edge_owner(u, v);
      out.shards[d].edge_u.push_back(u);
      out.shards[d].edge_v.push_back(v);
      needs[d][u] = 1;  // edge-anchored intersection reads both rows
      needs[d][v] = 1;
    }
  }

  // ---- materialize shard CSRs + ghost accounting ---------------------------
  for (std::uint32_t d = 0; d < n; ++d) {
    Shard& s = out.shards[d];
    s.use_anchor_list = true;

    std::vector<graph::EdgeIndex> row_ptr(num_vertices + 1, 0);
    for (std::uint32_t v = 0; v < num_vertices; ++v) {
      row_ptr[v + 1] =
          row_ptr[v] + (needs[d][v] ? dag.degree(v) : graph::EdgeIndex{0});
    }
    std::vector<graph::VertexId> col;
    col.reserve(row_ptr.back());
    for (std::uint32_t v = 0; v < num_vertices; ++v) {
      if (!needs[d][v]) continue;
      const auto nbrs = dag.neighbors(v);
      col.insert(col.end(), nbrs.begin(), nbrs.end());
      if (vowner[v] != d) {
        ++s.ghost_vertices;
        s.ghost_entries += nbrs.size();
        s.recv_bytes_from[vowner[v]] +=
            nbrs.size() * sizeof(std::uint32_t) + kRowHeaderBytes;
        ++s.recv_rows_from[vowner[v]];
      }
    }
    s.csr = graph::Csr(std::move(row_ptr), std::move(col));

    // One bulk message per contributing owner (rows are batched per peer).
    for (std::uint32_t o = 0; o < n; ++o) {
      s.recv_messages_from[o] = s.recv_bytes_from[o] > 0 ? 1 : 0;
    }

    out.report.owned_edges[d] = s.edge_u.size();
    out.report.shard_entries[d] = s.csr.num_edges();
    out.report.ghost_vertices += s.ghost_vertices;
    out.report.ghost_entries += s.ghost_entries;
  }

  if (num_edges > 0) {
    const std::uint64_t total_entries =
        std::accumulate(out.report.shard_entries.begin(),
                        out.report.shard_entries.end(), std::uint64_t{0});
    out.report.replication_factor =
        static_cast<double>(total_entries) / static_cast<double>(num_edges);
    const std::uint64_t max_owned =
        *std::max_element(out.report.owned_edges.begin(),
                          out.report.owned_edges.end());
    out.report.edge_balance = static_cast<double>(max_owned) * n /
                              static_cast<double>(num_edges);
  }
  return out;
}

}  // namespace tcgpu::dist
