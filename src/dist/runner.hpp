// Simulated multi-GPU / multi-node execution of the single-device ITC
// kernels.
//
// MultiDeviceRunner shards a prepared graph with a Partitioner, keeps one
// resident device image per shard (the same pooled-upload + based-scratch
// discipline framework::Engine uses for single-device runs), launches the
// unmodified kernel on every shard, and models what the real systems pay
// on top of compute: a ghost-row scatter before the kernels and an
// all-reduce of the per-device counts after them. With hosts == 1 both are
// costed by the flat simt::Interconnect, exactly as before the cluster
// model existed; with hosts > 1 they ride simt::ClusterInterconnect — the
// two-level NVLink-within / network-between topology — and the runner
// additionally models buffered message aggregation (Galois-style bounded
// flush buffers vs one message per ghost row) and comm/compute overlap
// (each shard races its kernel against its incoming scatter). All four
// (aggregation, overlap) combinations are priced from the same kernel
// executions, so one run reports the flat synchronous baseline next to the
// pipelined path.
//
// Counts aggregate by plain summation — the partitioner assigns each
// anchor (edge or vertex) to exactly one shard, so per-device counts are
// disjoint. N == 1 degenerates to the single-device path bit-for-bit:
// same device addresses, same metrics, zero modeled communication.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dist/partition.hpp"
#include "framework/engine.hpp"
#include "simt/interconnect.hpp"

namespace tcgpu::dist {

struct MultiRunConfig {
  std::uint32_t num_devices = 1;
  PartitionStrategy strategy = PartitionStrategy::kRange;
  simt::InterconnectSpec interconnect = simt::InterconnectSpec::nvlink();
  /// Run the whole-graph single-device baseline per (graph, algorithm) for
  /// single_device_ms / speedup. The scaling benches want it; the fleet's
  /// serving path turns it off — it already has the selector's model and
  /// must not pay an extra full kernel per placed query.
  bool measure_baseline = true;

  // --- two-level cluster (hosts > 1 switches the comm model) ---------------
  /// Hosts the devices spread over, in contiguous blocks of
  /// num_devices / hosts. 1 = the single-host model above, bit-identical to
  /// the pre-cluster runner; > 1 prices ghost traffic per link level
  /// (`interconnect` within a host, `inter` between hosts) from the
  /// partitioner's per-owner traffic matrix.
  std::uint32_t hosts = 1;
  simt::InterconnectSpec inter = simt::InterconnectSpec::ib_edr();
  /// Buffered ghost scatter: coalesce per-destination updates into
  /// flush_buffer_bytes buffers (ceil(bytes / buffer) messages per peer
  /// pair) instead of one message per ghost row. Cluster path only.
  bool aggregate = true;
  std::uint64_t flush_buffer_bytes = simt::kFlushBufferBytes;
  /// Comm/compute overlap: each shard's kernel runs concurrently with its
  /// incoming scatter (owned-anchor work needs no ghosts), so the shard
  /// completes at max(recv, kernel) instead of recv + kernel. Cluster path
  /// only.
  bool overlap = true;

  /// The HostSpec x DeviceSpec entry point: a cluster-shaped config for
  /// `spec` (which must describe >= 1 device per host). Strategy defaults
  /// to host-aware — the partitioner that minimizes the inter-host cut.
  static MultiRunConfig for_cluster(
      const simt::ClusterSpec& spec,
      PartitionStrategy strategy = PartitionStrategy::kHostAware);
};

/// One shard's share of a run.
struct DeviceRun {
  std::uint32_t device = 0;
  std::uint64_t triangles = 0;       ///< triangles anchored in this shard
  std::uint64_t owned_edges = 0;     ///< anchor edges assigned to the shard
  std::uint64_t anchor_vertices = 0; ///< anchor vertices assigned
  simt::KernelStats stats;           ///< this shard's kernel launches
  /// Cluster path: this shard's own scatter-receive time under the
  /// configured aggregation — what its kernel overlaps against. Its
  /// serialized completion is recv_ms + stats.time_ms, its overlapped one
  /// max(recv_ms, stats.time_ms). Zero on the single-host path.
  double recv_ms = 0.0;
};

struct MultiRunResult {
  std::string algorithm;
  std::string dataset;
  std::uint32_t num_devices = 1;
  std::uint32_t hosts = 1;
  PartitionStrategy strategy = PartitionStrategy::kRange;

  std::uint64_t triangles = 0;  ///< sum over shards (modeled all-reduce)
  bool valid = false;           ///< triangles == CPU reference

  std::vector<DeviceRun> devices;
  simt::KernelStats combined;  ///< summed over shards (total simulated work)

  double device_ms = 0.0;  ///< max over shards — devices run in parallel
  simt::TransferStats ghost_exchange;  ///< pre-kernel ghost-row scatter
  simt::TransferStats count_reduce;    ///< post-kernel count all-reduce
  double comm_ms = 0.0;   ///< ghost_exchange + count_reduce time
  double total_ms = 0.0;  ///< modeled wall time under the configured flags

  /// Cluster path: the same run priced under every (aggregation, overlap)
  /// combination, so a sweep reports the flat synchronous baseline and the
  /// optimized path from one set of kernel executions. total_ms equals the
  /// combination the config selected. On the single-host path all four
  /// equal device_ms + comm_ms.
  double flat_sync_ms = 0.0;     ///< per-row messages, scatter then compute
  double flat_overlap_ms = 0.0;  ///< per-row messages hidden behind compute
  double agg_sync_ms = 0.0;      ///< buffered messages, scatter then compute
  double agg_overlap_ms = 0.0;   ///< buffered + hidden — the full pipeline
  /// Cluster path: ghost_exchange split by link level (intra + inter ==
  /// ghost_exchange bytes/messages). Empty on the single-host path.
  simt::TransferStats intra_exchange;
  simt::TransferStats inter_exchange;

  double single_device_ms = 0.0;  ///< same algorithm, whole graph, one device
  double speedup = 0.0;           ///< single_device_ms / total_ms
  double load_imbalance = 1.0;    ///< max / mean of per-shard kernel ms

  PartitionReport partition;
};

class MultiDeviceRunner {
 public:
  /// Borrows the engine for graph preparation, the single-device baseline,
  /// and its GpuSpec/seed; the engine must outlive the runner. The
  /// partition hash is seeded from the engine's configured seed.
  MultiDeviceRunner(framework::Engine& engine, MultiRunConfig cfg);

  /// Shards the graph (once per graph, pooled), runs the algorithm on every
  /// shard, and aggregates. Thread-safe; an aggregate mismatch against the
  /// CPU reference latches all_valid().
  MultiRunResult run(const tc::TriangleCounter& algo,
                     const framework::Engine::GraphHandle& graph);
  /// Same, by registry name.
  MultiRunResult run(const std::string& algorithm,
                     const framework::Engine::GraphHandle& graph);

  const MultiRunConfig& config() const { return cfg_; }
  bool all_valid() const;

 private:
  /// Resident images of one graph's shards (analogue of Engine::Resident).
  struct ShardSet;

  std::shared_ptr<ShardSet> acquire_shards(
      const framework::Engine::GraphHandle& graph);
  double baseline_ms(const tc::TriangleCounter& algo,
                     const framework::Engine::GraphHandle& graph);

  framework::Engine& engine_;
  MultiRunConfig cfg_;

  mutable std::mutex pool_mu_;  ///< guards pool_ map shape
  std::map<const framework::PreparedGraph*, std::shared_ptr<ShardSet>> pool_;

  mutable std::mutex baseline_mu_;  ///< guards baselines_ and all_valid_
  std::map<std::pair<const framework::PreparedGraph*, std::string>, double>
      baselines_;
  bool all_valid_ = true;
};

}  // namespace tcgpu::dist
