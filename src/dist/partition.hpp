// Graph sharding for the simulated multi-GPU runner (src/dist/).
//
// The single-device kernels count each triangle (u < v < w in DAG order)
// exactly once: edge-iterator kernels at its *anchor edge* (u, v),
// vertex-iterator kernels at its *anchor vertex* u. The partitioner keeps
// that invariant across N devices by assigning every anchor edge and every
// anchor vertex to exactly one shard; per-device counts then sum to the
// global count with no cross-device de-duplication pass.
//
// A shard's CSR keeps global vertex ids and a full-size row_ptr (V+1): rows
// the shard never reads stay empty, rows it does read — its own anchors'
// rows plus every row an intersection can probe — carry the full global
// adjacency. Rows homed on another device are *ghosts*; the partitioner
// reports their replication cost and the modeled bytes each device must
// receive over the interconnect to materialize them.
//
// Four strategies, mirroring the multi-GPU systems in the literature:
//   range — contiguous vertex ranges, balanced by out-degree (1D).
//   hash  — vertices hashed to devices with seeded SplitMix64, TRUST-style.
//   2d    — DistTC-flavored grid: anchor edge (u,v) goes to device
//           (row_block(u), col_block(v)); anchor *vertices* go to
//           (row_block(u), hash(u) mod cols), because a pure 2D edge split
//           would scatter adj(u) across a row of devices and break the
//           vertex-anchored kernels' pair enumeration (see DESIGN.md).
//   host  — two-level, for hosts x devices clusters: vertices go to hosts
//           in degree-balanced contiguous ranges (minimizes the inter-host
//           cut — ghosts of a contiguous range mostly live on the same
//           host), then hash to the host's devices (balances where
//           communication is cheap). With hosts == 1 it degenerates to
//           hash over the devices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace tcgpu::dist {

enum class PartitionStrategy { kRange, kHash, k2D, kHostAware };

/// CLI spelling ("range" / "hash" / "2d" / "host").
std::string to_string(PartitionStrategy s);
/// Inverse of to_string; throws std::invalid_argument on anything else.
PartitionStrategy partition_strategy_from_string(const std::string& name);

/// All strategies, in CLI/report order.
std::vector<PartitionStrategy> all_partition_strategies();

/// One device's slice of the graph, ready for tc::DeviceGraph::upload_shard.
struct Shard {
  std::uint32_t device = 0;

  graph::Csr csr;  ///< global ids, V+1 rows; unread rows empty

  /// Owned anchor edges in CSR order (what edge-iterator kernels walk).
  std::vector<std::uint32_t> edge_u;
  std::vector<std::uint32_t> edge_v;

  /// Owned anchor vertices, ascending (what vertex-iterator kernels walk).
  /// Left empty when use_anchor_list is false (single-device identity path).
  std::vector<std::uint32_t> anchors;
  bool use_anchor_list = false;

  /// Ghost rows: present in csr but homed on another device.
  std::uint64_t ghost_vertices = 0;
  std::uint64_t ghost_entries = 0;

  /// Modeled receive traffic to materialize the ghost rows, grouped by the
  /// owning device (one bulk message per contributing owner). Size N;
  /// entry [device] is always zero. recv_rows_from counts the ghost rows
  /// behind each owner's bytes — the message count of an *unbuffered*
  /// scatter, which is what the cluster model's flat baseline pays.
  std::vector<std::uint64_t> recv_bytes_from;
  std::vector<std::uint64_t> recv_messages_from;
  std::vector<std::uint64_t> recv_rows_from;

  std::uint64_t recv_bytes() const;
  std::uint64_t recv_messages() const;
};

/// Replication / balance summary across all shards of one partitioning.
struct PartitionReport {
  PartitionStrategy strategy = PartitionStrategy::kRange;
  std::uint32_t num_devices = 1;
  std::uint64_t total_edges = 0;  ///< global DAG edges

  std::vector<std::uint64_t> owned_edges;    ///< anchor edges per device
  std::vector<std::uint64_t> shard_entries;  ///< CSR entries per device

  /// sum(shard_entries) / total_edges — 1.0 means no ghost duplication.
  double replication_factor = 1.0;
  /// max(owned_edges) / mean(owned_edges) — 1.0 is a perfect split.
  double edge_balance = 1.0;

  std::uint64_t ghost_vertices = 0;  ///< summed over shards
  std::uint64_t ghost_entries = 0;
};

struct Partitioning {
  std::vector<Shard> shards;
  PartitionReport report;
};

class Partitioner {
 public:
  /// `seed` feeds the SplitMix64 vertex hash (hash, 2d and host-aware
  /// strategies); the same (strategy, num_devices, seed, hosts, graph)
  /// always yields the same shards on every platform and every OMP thread
  /// count. num_devices must be >= 1 and a multiple of `hosts`; devices are
  /// assigned to hosts in contiguous blocks (device d on host
  /// d / (num_devices / hosts)) — only the host-aware strategy reads the
  /// host count, the flat strategies ignore it.
  Partitioner(PartitionStrategy strategy, std::uint32_t num_devices,
              std::uint64_t seed, std::uint32_t hosts = 1);

  /// Shards an oriented DAG (graph::orient output). N == 1 returns one
  /// whole-graph shard with use_anchor_list == false, whose device image is
  /// bit-identical to DeviceGraph::upload's.
  Partitioning partition(const graph::Csr& dag) const;

  PartitionStrategy strategy() const { return strategy_; }
  std::uint32_t num_devices() const { return num_devices_; }
  std::uint32_t hosts() const { return hosts_; }

  /// The 2d strategy's device grid (rows * cols == num_devices); rows == 1
  /// for the other strategies.
  std::uint32_t grid_rows() const { return grid_rows_; }
  std::uint32_t grid_cols() const { return grid_cols_; }

 private:
  PartitionStrategy strategy_;
  std::uint32_t num_devices_;
  std::uint64_t seed_;
  std::uint32_t hosts_ = 1;
  std::uint32_t grid_rows_ = 1;
  std::uint32_t grid_cols_ = 1;
};

}  // namespace tcgpu::dist
