// Ablation of TRUST's degree-split heuristic (§III-H): the block/warp
// out-degree threshold (paper: 100) and the hash bucket counts
// (paper: 1024 for blocks, 32 for warps).
// All variants share one engine-resident graph: one prepare, one upload.
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "tc/trust.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
  const std::string dataset = opt.datasets.empty() ? "As-Skitter" : opt.datasets[0];
  framework::Engine engine(opt);
  const auto pg = engine.prepare(dataset);

  struct Variant {
    std::string name;
    tc::TrustCounter::Config cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"paper defaults (thr 100, 1024/32 buckets)", {}});
  for (const std::uint32_t thr : {16u, 48u, 256u, 1u << 30}) {
    tc::TrustCounter::Config c;
    c.block_threshold = thr;
    variants.push_back(
        {thr == (1u << 30) ? "warp kernel only" : "threshold " + std::to_string(thr),
         c});
  }
  for (const std::uint32_t buckets : {256u, 512u}) {
    tc::TrustCounter::Config c;
    c.block_buckets = buckets;
    variants.push_back({"block buckets " + std::to_string(buckets), c});
  }
  {
    tc::TrustCounter::Config c;
    c.warp_buckets = 16;
    c.warp_slots = 8;
    variants.push_back({"warp buckets 16", c});
  }

  framework::ResultTable table(
      {"variant", "time_ms", "valid", "gld_requests", "warp_eff_pct"});
  for (const auto& v : variants) {
    const auto out = engine.run(tc::TrustCounter(v.cfg), pg);
    table.add_row({v.name, framework::ResultTable::fmt(out.result.total.time_ms, 4),
                   out.valid ? "yes" : "NO",
                   std::to_string(out.result.total.metrics.global_load_requests),
                   framework::ResultTable::fmt(
                       out.result.total.metrics.warp_execution_efficiency() * 100, 1)});
  }
  framework::emit(table, opt, std::cout,
                  "TRUST ablation on " + dataset + " (E=" +
                      std::to_string(pg->stats.num_undirected_edges) + ")");
  return engine.exit_code();
}
