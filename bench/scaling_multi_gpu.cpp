// Multi-GPU strong scaling of the ITC kernels on the simulated interconnect.
//
// Sweeps device count x partition strategy x dataset for all nine kernels:
// each cell shards the prepared DAG (src/dist/), runs the unmodified kernel
// on every shard, and reports the modeled parallel time (slowest device +
// ghost scatter + count all-reduce), the speedup over the cached
// single-device baseline, the load imbalance (max/mean device kernel time)
// and the partition's replication cost.
//
// Defaults sweep N in {1, 2, 4, 8} on NVLink and all partition strategies;
// --gpus=N, --partition=range|hash|2d|host and --interconnect=NAME pin one
// of each. A cell whose aggregated count mismatches the CPU reference is
// flagged with '!' and fails the run. Machine-readable output shares its
// schema with the multi-node sweep (scaling_schema.hpp; this bench's rows
// are the single-host degenerate case — hosts=1, zero inter-host bytes).
#include <iostream>

#include "dist/runner.hpp"
#include "framework/engine.hpp"
#include "framework/report.hpp"
#include "scaling_schema.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  const std::vector<std::uint32_t> device_counts =
      opt.gpus ? std::vector<std::uint32_t>{opt.gpus}
               : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<dist::PartitionStrategy> strategies =
      opt.partition.empty()
          ? dist::all_partition_strategies()
          : std::vector<dist::PartitionStrategy>{
                dist::partition_strategy_from_string(opt.partition)};
  const simt::InterconnectSpec link = simt::interconnect_spec_from_string(
      opt.interconnect.empty() ? "nvlink" : opt.interconnect);

  const auto& algos = framework::extended_algorithms();
  framework::Engine engine(opt);

  framework::ResultTable table(bench::scaling_columns());

  bool all_valid = true;
  for (const auto& ds : gen::paper_datasets()) {
    if (!opt.datasets.empty()) {
      bool selected = false;
      for (const auto& want : opt.datasets) selected |= want == ds.name;
      if (!selected) continue;
    }
    const auto graph = engine.prepare(ds.name);
    std::cerr << "[scaling] " << graph->name << ": V=" << graph->stats.num_vertices
              << " E=" << graph->stats.num_undirected_edges
              << " tri=" << graph->reference_triangles << '\n';

    for (const auto strategy : strategies) {
      for (const std::uint32_t n : device_counts) {
        dist::MultiDeviceRunner runner(engine, {n, strategy, link});
        for (const auto& entry : algos) {
          const auto algo = entry.make();
          const dist::MultiRunResult r = runner.run(*algo, graph);
          all_valid &= r.valid;

          std::cerr << "  " << r.algorithm << " " << to_string(strategy) << " x"
                    << n << ": " << r.total_ms << " ms, speedup " << r.speedup
                    << ", per-device ms [";
          for (const auto& d : r.devices) {
            std::cerr << (d.device ? " " : "") << d.stats.time_ms;
          }
          std::cerr << ']' << (r.valid ? "" : "  ** COUNT MISMATCH **") << '\n';

          table.add_row(bench::scaling_row(r, link.name));
        }
      }
    }
  }

  framework::emit(table, opt, std::cout,
                  "Multi-GPU scaling (modeled " + link.name + "), " + opt.gpu +
                      ", edge cap " + std::to_string(opt.max_edges));
  if (!all_valid) {
    std::cerr << "WARNING: at least one aggregated count mismatched the CPU "
                 "reference\n";
  }
  return all_valid ? 0 : 1;
}
