// Figure 12: global_load_requests of every implementation over the 19
// datasets — the "total amount of work" factor the paper credits for
// Polak's small-dataset dominance (expected: Polak and GroupTC lowest,
// Hu highest).
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  const auto& algos = framework::all_algorithms();
  framework::Engine engine(opt);
  const auto rows = engine.sweep(algos, std::cerr);

  std::vector<std::string> cols = {"dataset", "E"};
  for (const auto& a : algos) cols.push_back(a.name);
  framework::ResultTable table(cols);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        row.graph->name, std::to_string(row.graph->stats.num_undirected_edges)};
    for (const auto& out : row.outcomes) {
      cells.push_back(std::to_string(out.result.total.metrics.global_load_requests));
    }
    table.add_row(std::move(cells));
  }
  framework::emit(table, opt, std::cout,
                  "Figure 12: global load requests, " + opt.gpu + ", edge cap " +
                      std::to_string(opt.max_edges));
  return engine.exit_code();
}
