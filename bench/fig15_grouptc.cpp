// Figure 15: GroupTC versus Polak and TRUST over the 19 datasets, with the
// speedup columns the paper quotes (GroupTC over Polak: 0.85-3.83x, losing
// only on the two smallest datasets; GroupTC over TRUST: 1.09-2.92x on
// small/medium, 0.94-1.01x on large).
#include <iostream>

#include "framework/engine.hpp"
#include "framework/report.hpp"

int main(int argc, char** argv) {
  using namespace tcgpu;
  framework::BenchOptions opt;
  try {
    opt = framework::BenchOptions::parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }

  const auto& algos = framework::headline_algorithms();  // Polak, TRUST, GroupTC
  framework::Engine engine(opt);
  const auto rows = engine.sweep(algos, std::cerr);

  framework::ResultTable table({"dataset", "E", "Polak", "TRUST", "GroupTC",
                                "GroupTC/Polak", "GroupTC/TRUST"});
  int grouptc_beats_polak = 0;
  for (const auto& row : rows) {
    const double polak = row.outcomes[0].result.total.time_ms;
    const double trust = row.outcomes[1].result.total.time_ms;
    const double grouptc = row.outcomes[2].result.total.time_ms;
    if (grouptc < polak) ++grouptc_beats_polak;
    table.add_row({row.graph->name,
                   std::to_string(row.graph->stats.num_undirected_edges),
                   framework::ResultTable::fmt(polak, 4),
                   framework::ResultTable::fmt(trust, 4),
                   framework::ResultTable::fmt(grouptc, 4),
                   framework::ResultTable::fmt(polak / grouptc, 2) + "x",
                   framework::ResultTable::fmt(trust / grouptc, 2) + "x"});
  }
  framework::emit(table, opt, std::cout,
                  "Figure 15: GroupTC vs Polak vs TRUST (ms), " + opt.gpu +
                      ", edge cap " + std::to_string(opt.max_edges));
  std::cout << "GroupTC beats Polak on " << grouptc_beats_polak << "/" << rows.size()
            << " datasets (paper: 17/19)\n";
  return engine.exit_code();
}
