// §II-B micro-benchmark: the four intersection primitives (Merge, Binary
// Search, Hash, BitMap) on synthetic sorted neighbor lists, across list
// sizes and size ratios. This is a host-CPU google-benchmark — it measures
// algorithmic work (comparisons/probes), the quantity the paper's
// "total amount of work" factor is about, not GPU scheduling.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gen/rng.hpp"

namespace {

using tcgpu::gen::SplitMix64;

/// Two sorted, duplicate-free lists with ~10% overlap, sizes n and n*ratio.
std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> make_lists(
    std::uint32_t n, std::uint32_t ratio, std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::uint32_t universe = n * ratio * 8;
  auto draw = [&](std::uint32_t count) {
    std::vector<std::uint32_t> v;
    v.reserve(count);
    while (v.size() < count) {
      const auto x = static_cast<std::uint32_t>(rng.uniform(universe));
      v.push_back(x);
    }
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
  };
  return {draw(n), draw(n * ratio)};
}

std::uint64_t intersect_merge(const std::vector<std::uint32_t>& a,
                              const std::vector<std::uint32_t>& b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t intersect_binsearch(const std::vector<std::uint32_t>& keys,
                                  const std::vector<std::uint32_t>& table) {
  std::uint64_t count = 0;
  for (const std::uint32_t k : keys) {
    count += std::binary_search(table.begin(), table.end(), k) ? 1 : 0;
  }
  return count;
}

std::uint64_t intersect_hash(const std::vector<std::uint32_t>& keys,
                             const std::vector<std::uint32_t>& to_hash) {
  // Chained hash with H-INDEX-style len/element rows.
  const std::uint32_t buckets = 1024;
  std::vector<std::vector<std::uint32_t>> table(buckets);
  for (const std::uint32_t x : to_hash) table[x % buckets].push_back(x);
  std::uint64_t count = 0;
  for (const std::uint32_t k : keys) {
    for (const std::uint32_t x : table[k % buckets]) count += x == k ? 1 : 0;
  }
  return count;
}

std::uint64_t intersect_bitmap(const std::vector<std::uint32_t>& keys,
                               const std::vector<std::uint32_t>& to_mark,
                               std::uint32_t universe) {
  std::vector<std::uint32_t> bits((universe + 31) / 32, 0);
  for (const std::uint32_t x : to_mark) bits[x >> 5] |= 1u << (x & 31);
  std::uint64_t count = 0;
  for (const std::uint32_t k : keys) {
    count += (bits[k >> 5] >> (k & 31)) & 1u;
  }
  return count;
}

void args(benchmark::internal::Benchmark* b) {
  for (const int n : {64, 1024, 16384}) {
    for (const int ratio : {1, 8}) b->Args({n, ratio});
  }
}

void BM_Merge(benchmark::State& state) {
  const auto [a, b] = make_lists(static_cast<std::uint32_t>(state.range(0)),
                                 static_cast<std::uint32_t>(state.range(1)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(intersect_merge(a, b));
}
BENCHMARK(BM_Merge)->Apply(args);

void BM_BinarySearch(benchmark::State& state) {
  const auto [a, b] = make_lists(static_cast<std::uint32_t>(state.range(0)),
                                 static_cast<std::uint32_t>(state.range(1)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(intersect_binsearch(a, b));
}
BENCHMARK(BM_BinarySearch)->Apply(args);

void BM_Hash(benchmark::State& state) {
  const auto [a, b] = make_lists(static_cast<std::uint32_t>(state.range(0)),
                                 static_cast<std::uint32_t>(state.range(1)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(intersect_hash(b, a));
}
BENCHMARK(BM_Hash)->Apply(args);

void BM_Bitmap(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto ratio = static_cast<std::uint32_t>(state.range(1));
  const auto [a, b] = make_lists(n, ratio, 1);
  const std::uint32_t universe = n * ratio * 8;
  for (auto _ : state) benchmark::DoNotOptimize(intersect_bitmap(b, a, universe));
}
BENCHMARK(BM_Bitmap)->Apply(args);

}  // namespace

BENCHMARK_MAIN();
